// Ablation — the paper's two deferred-copy techniques (section 4): "history
// objects to defer the copy of large data ... a per-virtual-page technique to copy
// relatively small amounts of data (e.g. an IPC message)."
//
// This bench sweeps copy sizes with each strategy pinned (plus eager copying as
// the baseline both defeat), measuring (a) copy setup and (b) setup plus touching
// a fraction of the data, to expose where each technique wins and where the kAuto
// threshold should sit.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gvm {
namespace bench {
namespace {

double MeasureCopy(CopyPolicy policy, size_t pages, size_t touched) {
  World world = World::Make(MmKind::kPvm, 4096);
  Cache* src = *world.mm->CacheCreate(nullptr, "src");
  std::vector<char> data(kPage, 's');
  for (size_t i = 0; i < pages; ++i) {
    (void)src->Write(i * kPage, data.data(), kPage);
  }
  return TimeNs([&] {
    Cache* dst = *world.mm->CacheCreate(nullptr, "dst");
    (void)src->CopyTo(*dst, 0, 0, pages * kPage, policy);
    // Touch (write) the first `touched` pages of the copy.
    char v = 'w';
    for (size_t i = 0; i < touched; ++i) {
      (void)dst->Write(i * kPage, &v, 1);
    }
    (void)dst->Destroy();
  });
}

void Run() {
  std::printf("==========================================================================\n");
  std::printf("Ablation: history objects vs per-virtual-page vs eager copy (section 4)\n");
  std::printf("==========================================================================\n");
  const size_t kSizes[] = {1, 2, 4, 8, 16, 32, 64, 128};

  std::printf("\nCopy setup only (no data touched afterwards):\n");
  std::printf("%-10s %14s %14s %14s\n", "pages", "history", "per-page", "eager");
  double history_setup_128 = 0;
  double perpage_setup_128 = 0;
  double eager_setup_128 = 0;
  for (size_t pages : kSizes) {
    double history = MeasureCopy(CopyPolicy::kHistory, pages, 0);
    double perpage = MeasureCopy(CopyPolicy::kPerPage, pages, 0);
    double eager = MeasureCopy(CopyPolicy::kEager, pages, 0);
    std::printf("%-10zu %14s %14s %14s\n", pages, FormatNs(history).c_str(),
                FormatNs(perpage).c_str(), FormatNs(eager).c_str());
    if (pages == 128) {
      history_setup_128 = history;
      perpage_setup_128 = perpage;
      eager_setup_128 = eager;
    }
  }

  std::printf("\nCopy + touch 25%% of the pages:\n");
  std::printf("%-10s %14s %14s %14s\n", "pages", "history", "per-page", "eager");
  for (size_t pages : kSizes) {
    size_t touched = pages / 4;
    double history = MeasureCopy(CopyPolicy::kHistory, pages, touched);
    double perpage = MeasureCopy(CopyPolicy::kPerPage, pages, touched);
    double eager = MeasureCopy(CopyPolicy::kEager, pages, touched);
    std::printf("%-10zu %14s %14s %14s\n", pages, FormatNs(history).c_str(),
                FormatNs(perpage).c_str(), FormatNs(eager).c_str());
  }

  std::printf("\nShape checks:\n");
  ShapeCheck check;
  // History setup is O(resident source pages) but with a tiny constant; per-page
  // creates a stub per page (bigger constant).  Both beat eager at size.
  check.Expect(history_setup_128 < eager_setup_128,
              "history-object copy setup beats eager copy at 128 pages");
  check.Expect(perpage_setup_128 < eager_setup_128,
              "per-page copy setup beats eager copy at 128 pages");
  check.Expect(history_setup_128 < perpage_setup_128,
              "history objects beat per-page at large sizes (the paper's rationale "
              "for using them on big data segments)");
  double history_1 = MeasureCopy(CopyPolicy::kHistory, 1, 1);
  double perpage_1 = MeasureCopy(CopyPolicy::kPerPage, 1, 1);
  check.Expect(perpage_1 < history_1 * 1.5,
              "per-page competitive at 1 page (the paper's IPC-message case)");
  std::printf("\n");
  if (check.failed != 0) {
    std::exit(1);
  }
}

void BM_CopyStrategy(::benchmark::State& state) {
  CopyPolicy policy = static_cast<CopyPolicy>(state.range(0));
  size_t pages = static_cast<size_t>(state.range(1));
  World world = World::Make(MmKind::kPvm, 4096);
  Cache* src = *world.mm->CacheCreate(nullptr, "src");
  std::vector<char> data(kPage, 's');
  for (size_t i = 0; i < pages; ++i) {
    (void)src->Write(i * kPage, data.data(), kPage);
  }
  for (auto _ : state) {
    Cache* dst = *world.mm->CacheCreate(nullptr, "dst");
    (void)src->CopyTo(*dst, 0, 0, pages * kPage, policy);
    (void)dst->Destroy();
  }
}
BENCHMARK(BM_CopyStrategy)
    ->Args({static_cast<long>(CopyPolicy::kHistory), 128})
    ->Args({static_cast<long>(CopyPolicy::kPerPage), 128})
    ->Args({static_cast<long>(CopyPolicy::kEager), 128})
    ->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Run();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
