// Table 7 — "Performance of copy-on-write" (paper section 5.3.1).
//
// "The second program creates a region, which is entirely allocated in real
// memory.  It then copies it, and modifies some of the data within the source
// region (in order to force a real copy).  ...  The source region is created and
// allocated before starting the measurement.  For each region size, the table
// shows the time elapsed for creating the copy region, forcing a copy of some
// amount of data, and deallocating and destroying the copy region."
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gvm {
namespace bench {
namespace {

constexpr Vaddr kSrcBase = 0x40000000;
constexpr Vaddr kCopyBase = 0x80000000;

struct CowFixture {
  World world;
  Cache* src_cache = nullptr;
  Region* src_region = nullptr;
  size_t region_bytes = 0;

  static CowFixture Make(MmKind kind, size_t region_bytes, bool huge = false) {
    CowFixture fx{.world = World::Make(kind, 4096, huge), .region_bytes = region_bytes};
    fx.src_cache = *fx.world.mm->CacheCreate(nullptr, "src");
    fx.src_region = *fx.world.mm->RegionCreate(*fx.world.context, kSrcBase, region_bytes,
                                               Prot::kReadWrite, *fx.src_cache, 0);
    // "a region, which is entirely allocated in real memory."
    AsId as = fx.world.context->address_space();
    for (size_t off = 0; off < region_bytes; off += kPage) {
      uint64_t value = off;
      (void)fx.world.mm->cpu().Write(as, kSrcBase + off, &value, sizeof(value));
    }
    return fx;
  }
};

// One Table 7 trial: deferred copy of the source into a fresh region, then write
// `dirty_pages` pages of the SOURCE to force real copies, then tear down the copy.
void CowTrial(CowFixture& fx, size_t dirty_pages) {
  Cache* copy_cache = *fx.world.mm->CacheCreate(nullptr, "cpy");
  Status copied = fx.src_cache->CopyTo(*copy_cache, 0, 0, fx.region_bytes,
                                       CopyPolicy::kHistory);
  (void)copied;
  Region* copy_region = *fx.world.mm->RegionCreate(*fx.world.context, kCopyBase,
                                                   fx.region_bytes, Prot::kReadWrite,
                                                   *copy_cache, 0);
  AsId as = fx.world.context->address_space();
  for (size_t i = 0; i < dirty_pages; ++i) {
    // "modifies some of the data within the source region (in order to force a
    // real copy)" — each write pushes the original page into the history object.
    uint64_t value = i;
    (void)fx.world.mm->cpu().Write(as, kSrcBase + i * kPage, &value, sizeof(value));
  }
  (void)copy_region->Destroy();
  (void)copy_cache->Destroy();
}

std::vector<std::vector<double>> MeasureMatrix(MmKind kind, const TableSpec& spec) {
  std::vector<std::vector<double>> cells(spec.region_kb.size(),
                                         std::vector<double>(spec.touched_pages.size(), 0));
  for (size_t r = 0; r < spec.region_kb.size(); ++r) {
    for (size_t c = 0; c < spec.touched_pages.size(); ++c) {
      if (!spec.CellValid(spec.region_kb[r], spec.touched_pages[c])) {
        continue;
      }
      CowFixture fx = CowFixture::Make(kind, spec.region_kb[r] * 1024);
      size_t pages = spec.touched_pages[c];
      cells[r][c] = TimeNs([&] { CowTrial(fx, pages); });
    }
  }
  return cells;
}

void RunPaperTable() {
  std::printf("==========================================================================\n");
  std::printf("Table 7: copy-on-write\n");
  std::printf("==========================================================================\n");
  TableSpec spec;
  auto chorus = MeasureMatrix(MmKind::kPvm, spec);
  auto mach = MeasureMatrix(MmKind::kShadow, spec);

  PrintMatrix("Chorus (PVM, history objects): copy-on-write (measured)", spec, chorus);
  std::printf("\n");
  static const double kPaperChorus[3][4] = {{0.4, 2.10, -1, -1},
                                            {0.7, 2.47, 55.7, -1},
                                            {2.4, 4.2, 57.2, 221.9}};
  PrintPaperTable("Chorus: copy-on-write", kPaperChorus);
  std::printf("\n");
  PrintMatrix("Mach (shadow objects): copy-on-write (measured)", spec, mach);
  std::printf("\n");
  static const double kPaperMach[3][4] = {{2.7, 4.82, -1, -1},
                                          {2.9, 5.12, 66.4, -1},
                                          {3.08, 5.18, 67.0, 256.41}};
  PrintPaperTable("Mach: copy-on-write", kPaperMach);

  std::printf("\nShape checks (the paper's qualitative claims):\n");
  ShapeCheck check;
  // 1. Deferred copy setup cost grows only mildly with region size (paper: 0.4 ->
  //    2.4 ms; the growth there is per-resident-page protection, 6x over 128x
  //    size increase).  Generous bound: sub-linear in region size.
  check.Expect(chorus[2][0] < chorus[0][0] * 64,
              "PVM: deferred copy setup is sub-linear in region size (128x size < 64x cost)");
  // 2. The real cost is proportional to the data actually copied.  (Generous
  //    bound: the single-core host shows ~50% run-to-run noise on the large
  //    memcpy-dominated cells.)
  double per_page_32 = (chorus[2][2] - chorus[2][0]) / 32;
  double per_page_128 = (chorus[2][3] - chorus[2][0]) / 128;
  check.Expect(per_page_128 < per_page_32 * 3 && per_page_32 < per_page_128 * 3,
              "PVM: per-page COW cost is linear (32- vs 128-page rates within 3x)");
  // 3. The structural difference the paper highlights: Mach allocates TWO shadow
  //    objects per deferred copy, so its copy *setup* is strictly more expensive
  //    at every region size (paper: 2.7 vs 0.4 ms and onward).
  bool setup_wins = true;
  for (size_t r = 0; r < spec.region_kb.size(); ++r) {
    if (chorus[r][0] >= mach[r][0]) {
      setup_wins = false;
    }
  }
  check.Expect(setup_wins,
              "Chorus deferred-copy setup strictly cheaper than Mach at every size");
  // 4. In the forced-copy cells the 8 KB page copy itself dominates both designs
  //    (paper: 221.9 vs 256.4 ms, a 16% gap); on this host those cells carry
  //    ~50% timer noise, so the check there is "no structural regression"
  //    (within 2x), while the setup column — where the designs actually differ —
  //    is compared strictly, summed.
  bool no_regression = true;
  double chorus_setup = 0;
  double mach_setup = 0;
  for (size_t r = 0; r < spec.region_kb.size(); ++r) {
    chorus_setup += chorus[r][0];
    mach_setup += mach[r][0];
    for (size_t c = 1; c < spec.touched_pages.size(); ++c) {
      if (!spec.CellValid(spec.region_kb[r], spec.touched_pages[c])) {
        continue;
      }
      if (chorus[r][c] > mach[r][c] * 2) {
        no_regression = false;
      }
    }
  }
  check.Expect(no_regression, "Chorus within 2x of Mach in every memcpy-dominated cell");
  check.Expect(chorus_setup * 1.5 < mach_setup,
              "Chorus deferred-copy setup beats Mach's by >1.5x summed over all sizes");
  std::printf("\n");
}

void BM_CopyOnWrite(::benchmark::State& state) {
  MmKind kind = static_cast<MmKind>(state.range(0));
  size_t region_bytes = static_cast<size_t>(state.range(1)) * 1024;
  size_t dirty_pages = static_cast<size_t>(state.range(2));
  CowFixture fx = CowFixture::Make(kind, region_bytes);
  for (auto _ : state) {
    CowTrial(fx, dirty_pages);
  }
  state.SetLabel(MmName(kind));
}

void RegisterAll() {
  TableSpec spec;
  for (MmKind kind : {MmKind::kPvm, MmKind::kShadow}) {
    for (size_t kb : spec.region_kb) {
      for (size_t pages : spec.touched_pages) {
        if (!spec.CellValid(kb, pages)) {
          continue;
        }
        ::benchmark::RegisterBenchmark("BM_CopyOnWrite", &BM_CopyOnWrite)
            ->Args({static_cast<long>(kind), static_cast<long>(kb),
                    static_cast<long>(pages)})
            ->Unit(::benchmark::kMicrosecond);
      }
    }
  }
}

// Machine-readable result: the representative 1024 KB / 128-pages PVM cell,
// A/B over transparent huge pages.  In the on-variant the fully-resident source
// promotes during setup, the deferred copy's write-protect demotes each span
// (split-on-COW), and every forced copy still moves exactly one base page.
void EmitJson() {
  for (bool huge : {false, true}) {
    CowFixture fx = CowFixture::Make(MmKind::kPvm, 1024 * 1024, huge);
    const size_t pages = 128;
    LatencyDist dist = MeasureDist([&] { CowTrial(fx, pages); });
    BenchJson json(huge ? "table7_copy_on_write.huge" : "table7_copy_on_write");
    json.Config("mm", "pvm");
    json.Config("region_kb", uint64_t{1024});
    json.Config("dirty_pages", uint64_t{pages});
    json.Config("page_size", uint64_t{kPage});
    json.Config("transparent_huge", huge);
    RecordPageSizes(json, *fx.world.mm);
    json.SetLatency(dist.p50_ns, dist.p99_ns);
    json.SetThroughput(dist.p50_ns > 0 ? 1e9 / dist.p50_ns : 0);
    AddWorldCounters(json, *fx.world.mm);
    json.WriteFile();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::RunPaperTable();
  gvm::bench::EmitJson();
  gvm::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
