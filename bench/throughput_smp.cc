// throughput_smp — multi-threaded fault-storm throughput of the PVM, and the
// 1→64-CPU scaling matrix for the batched-shootdown + frame-magazine work.
//
// N worker threads ("CPUs"), each with its own context/address space and its own
// anonymous segment, run a mixed workload of sequential 8-byte reads, random
// 8-byte writes, touches, and periodic fork-COW episodes (deferred copy of the
// whole working set, dirtying every 4th page of the copy, teardown).  The
// workload is exactly the per-access path the software TLB accelerates and the
// shootdown protocol must keep correct: COW episodes write-protect the source
// (downgrade shootdowns, batched into one fence by the gather) and the teardown
// unmaps en masse (range shootdowns).
//
// Two modes:
//   default      one cell; emits BENCH_throughput_smp.json (or .tlb_off).
//   --scale      the full matrix: threads in {1,2,4,...,64} x mmu in
//                {soft,hash} x fence in {membarrier,fenced}.  One
//                BENCH_throughput_scale.<cell>.json per cell plus a combined
//                BENCH_throughput_scale.json whose counters carry every cell's
//                ops/sec and shootdown/fault ratios (the CI gate input).
//
// Usage: throughput_smp [--threads=4] [--pages=64] [--seconds=1.0]
//                       [--tlb=on|off] [--mmu=soft|hash] [--seed=1]
//                       [--fence=auto|membarrier|fenced]
//                       [--scale] [--cell-seconds=0.4] [--max-threads=64]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/hal/hash_mmu.h"
#include "src/hal/phys_memory.h"
#include "src/hal/soft_mmu.h"
#include "src/hal/tlb.h"
#include "src/pvm/paged_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace bench {
namespace {

constexpr size_t kPageSize = 4096;
constexpr Vaddr kWorkBase = 0x10000000;
constexpr Vaddr kForkBase = 0x80000000;
constexpr int kBatch = 64;  // ops timed per latency sample

struct Config {
  int threads = 4;
  size_t pages = 64;       // working-set pages per thread
  double seconds = 1.0;
  bool tlb = true;
  std::string mmu = "soft";
  uint64_t seed = 1;
  int cow_every = 8192;    // simple ops between fork-COW episodes
  TlbMmu::FenceMode fence = TlbMmu::FenceMode::kAuto;
};

struct WorkerResult {
  uint64_t ops = 0;
  uint64_t episodes = 0;
  uint64_t errors = 0;
  std::vector<double> samples_ns;  // per-op latency, batch-averaged
};

// Aggregate metrics of one cell, for the scale matrix and the JSON writers.
struct CellResult {
  double ops_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double hit_rate = 0;
  uint64_t ops = 0;
  uint64_t episodes = 0;
  uint64_t errors = 0;
  Cpu::Stats cpu;
  MmStats mm;
  PhysicalMemory::Stats frames;
  const char* fence_name = "?";
  // Granule geometry of the cell's MMU, captured once at setup so every JSON
  // emitted from this cell is self-describing (bench_util RecordPageSizes).
  size_t base_page_size = kPageSize;
  size_t huge_page_size = 0;
  bool setup_failed = false;
};

const char* FenceName(TlbMmu::FenceMode mode) {
  switch (mode) {
    case TlbMmu::FenceMode::kFenced:
      return "fenced";
    case TlbMmu::FenceMode::kMembarrier:
      return "membarrier";
    case TlbMmu::FenceMode::kUniprocessor:
      return "uniprocessor";
    default:
      return "auto";
  }
}

uint64_t NextRand(uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// Frame budget for a run.  Three working sets per thread (the live set, the
// in-flight COW copy, and history pages awaiting collapse) plus the frames the
// per-CPU magazines may hold out of the shared pool at any instant — sized
// from the magazine geometry, not guessed — plus fixed slack for gather-parked
// frames during teardown.  The old `threads*pages*3 + 256` formula ignored the
// magazine capture and under-provisioned wide runs.
size_t FrameBudget(int threads, size_t pages) {
  const size_t working = static_cast<size_t>(threads) * pages * 3;
  const size_t magazines =
      PhysicalMemory::kMagazineSlots * 32;  // worst-case auto capacity per slot
  return working + magazines + 256;
}

// One fork-COW episode: deferred-copy the whole working set, dirty every 4th
// page of the copy (materializing private pages), read one back, tear down.
void ForkCowEpisode(MemoryManager& mm, Context& ctx, Cache& src, const Config& cfg,
                    uint64_t iter, WorkerResult& result) {
  Result<Cache*> copy = mm.CacheCreate(nullptr, "fork");
  if (!copy.ok()) {
    ++result.errors;
    return;
  }
  const size_t bytes = cfg.pages * kPageSize;
  if (src.CopyTo(**copy, 0, 0, bytes, CopyPolicy::kHistory) != Status::kOk) {
    ++result.errors;
    (void)(*copy)->Destroy();
    return;
  }
  Result<Region*> region =
      mm.RegionCreate(ctx, kForkBase, bytes, Prot::kReadWrite, **copy, 0);
  if (!region.ok()) {
    ++result.errors;
    (void)(*copy)->Destroy();
    return;
  }
  AsId as = ctx.address_space();
  for (size_t p = 0; p < cfg.pages; p += 4) {
    uint64_t value = iter + p;
    if (mm.cpu().Write(as, kForkBase + p * kPageSize, &value, sizeof(value)) != Status::kOk) {
      ++result.errors;
    }
  }
  uint64_t check = 0;
  (void)mm.cpu().Read(as, kForkBase + (cfg.pages / 2) * kPageSize, &check, sizeof(check));
  (void)(*region)->Destroy();
  (void)(*copy)->Destroy();
  ++result.episodes;
}

void Worker(int tid, MemoryManager& mm, Context& ctx, Cache& cache, const Config& cfg,
            std::atomic<int>& ready, std::atomic<bool>& go, std::atomic<bool>& stop,
            std::atomic<uint64_t>& setup_errors, WorkerResult& result) {
  using Clock = std::chrono::steady_clock;
  AsId as = ctx.address_space();
  uint64_t rng = cfg.seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(tid) + 1;
  // Materialize the working set (demand zero-fill) before the clock starts.
  // A failure here is a frame-budget bug, not workload noise: count it
  // separately so the run can fail fast instead of publishing garbage.
  for (size_t p = 0; p < cfg.pages; ++p) {
    uint64_t value = p;
    if (mm.cpu().Write(as, kWorkBase + p * kPageSize, &value, sizeof(value)) != Status::kOk) {
      setup_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ready.fetch_add(1, std::memory_order_release);
  while (!go.load(std::memory_order_acquire) && !stop.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
  size_t cursor = 0;
  // cfg.pages is rounded to a power of two by RunCell(), so the working set can
  // be walked with masks instead of divisions on the measured path.
  const size_t span_mask = cfg.pages * kPageSize - 1;
  const size_t page_mask = cfg.pages - 1;
  uint64_t since_episode = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    auto start = Clock::now();
    for (int b = 0; b < kBatch; ++b) {
      const uint64_t r = NextRand(rng);
      const uint64_t kind = r & 1023;  // <717: 70% read, <922: 20% write, else touch
      Status s = Status::kOk;
      if (kind < 717) {
        // Sequential read walk, 64-byte stride (the TLB-hit-dominated stream).
        cursor = (cursor + 64) & span_mask;
        uint64_t value;
        s = mm.cpu().Read(as, kWorkBase + cursor, &value, sizeof(value));
      } else if (kind < 922) {
        // Random 8-byte write within the working set.
        const size_t page = (r >> 10) & page_mask;
        const size_t offset = (r >> 32) & (kPageSize - sizeof(uint64_t));  // 8-aligned
        uint64_t value = r;
        s = mm.cpu().Write(as, kWorkBase + page * kPageSize + offset, &value, sizeof(value));
      } else {
        // Touch (translate-only path).
        const size_t page = (r >> 10) & page_mask;
        s = mm.cpu().Touch(as, kWorkBase + page * kPageSize, Access::kRead);
      }
      if (s != Status::kOk) {
        ++result.errors;
      }
    }
    auto end = Clock::now();
    result.ops += kBatch;
    since_episode += kBatch;
    if (result.samples_ns.size() < 50000) {
      result.samples_ns.push_back(
          std::chrono::duration<double, std::nano>(end - start).count() / kBatch);
    }
    if (since_episode >= static_cast<uint64_t>(cfg.cow_every)) {
      since_episode = 0;
      ForkCowEpisode(mm, ctx, cache, cfg, result.ops, result);
    }
  }
}

CellResult RunCell(Config cfg) {
  // Round the working set to a power of two so the worker's hot loop can use
  // masks (see Worker).
  size_t pow2 = 1;
  while (pow2 < cfg.pages) {
    pow2 <<= 1;
  }
  cfg.pages = pow2;
  PhysicalMemory memory(FrameBudget(cfg.threads, cfg.pages), kPageSize);
  std::unique_ptr<Mmu> mmu;
  if (cfg.mmu == "hash") {
    mmu = std::make_unique<HashMmu>(kPageSize);
  } else {
    mmu = std::make_unique<SoftMmu>(kPageSize);
  }
  PagedVm::Options options;
  options.enable_tlb = cfg.tlb;
  options.shootdown_fence = cfg.fence;
  options.pullin_cluster_pages = 8;
  PagedVm vm(memory, *mmu, options);
  TestSwapRegistry registry(kPageSize);
  vm.BindSegmentRegistry(&registry);

  // Per-thread context (its own hardware address space) + anonymous segment.
  // Hoisted out of the setup loop: the granule geometry is per-MMU, not
  // per-cell-thread — query it once instead of per context.
  const size_t ws_bytes = cfg.pages * vm.mmu().page_size();
  std::vector<Context*> contexts;
  std::vector<Cache*> caches;
  for (int t = 0; t < cfg.threads; ++t) {
    Context* ctx = *vm.ContextCreate();
    Cache* cache = *vm.CacheCreate(nullptr, "ws" + std::to_string(t));
    Region* region = *vm.RegionCreate(*ctx, kWorkBase, ws_bytes,
                                      Prot::kReadWrite, *cache, 0);
    (void)region;
    contexts.push_back(ctx);
    caches.push_back(cache);
  }

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> setup_errors{0};
  std::vector<WorkerResult> results(static_cast<size_t>(cfg.threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back(Worker, t, std::ref(vm), std::ref(*contexts[static_cast<size_t>(t)]),
                         std::ref(*caches[static_cast<size_t>(t)]), std::cref(cfg),
                         std::ref(ready), std::ref(go), std::ref(stop), std::ref(setup_errors),
                         std::ref(results[static_cast<size_t>(t)]));
  }
  // Wait for every worker to finish materializing, then start the clock: the
  // measured window contains only the steady-state workload.
  while (ready.load(std::memory_order_acquire) < cfg.threads) {
    std::this_thread::yield();
  }
  CellResult cell;
  cell.fence_name = FenceName(vm.tlb().fence_mode());
  cell.base_page_size = vm.mmu().page_size();
  cell.huge_page_size = vm.mmu().huge_page_size();
  if (setup_errors.load(std::memory_order_relaxed) > 0) {
    // Fail fast: the frame budget was wrong.  Publishing throughput for a run
    // that could not even materialize its working set would be a lie.
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& th : workers) {
      th.join();
    }
    std::fprintf(stderr,
                 "throughput_smp: FATAL: %llu working-set pages failed to materialize "
                 "(threads=%d pages=%zu frames=%zu magazine_capacity=%zu); "
                 "the frame budget in FrameBudget() is under-provisioned\n",
                 static_cast<unsigned long long>(setup_errors.load()), cfg.threads, cfg.pages,
                 memory.frame_count(), memory.magazine_capacity());
    cell.setup_failed = true;
    return cell;
  }
  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : workers) {
    th.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::vector<double> samples;
  for (const WorkerResult& r : results) {
    cell.ops += r.ops;
    cell.episodes += r.episodes;
    cell.errors += r.errors;
    samples.insert(samples.end(), r.samples_ns.begin(), r.samples_ns.end());
  }
  cell.ops_per_sec = static_cast<double>(cell.ops) / elapsed;
  cell.p50_ns = Percentile(samples, 0.5);
  cell.p99_ns = Percentile(samples, 0.99);

  cell.cpu = vm.cpu().SnapshotStats();
  cell.mm = vm.stats();
  cell.frames = vm.memory().stats();
  cell.hit_rate = cell.cpu.tlb_hits + cell.cpu.tlb_misses > 0
                      ? static_cast<double>(cell.cpu.tlb_hits) /
                            static_cast<double>(cell.cpu.tlb_hits + cell.cpu.tlb_misses)
                      : 0.0;

  std::printf("throughput_smp: threads=%d pages=%zu mmu=%s tlb=%s fence=%s\n", cfg.threads,
              cfg.pages, cfg.mmu.c_str(), cfg.tlb ? "on" : "off", cell.fence_name);
  std::printf("  ops=%llu (%.0f ops/sec)  p50=%s p99=%s  cow_episodes=%llu errors=%llu\n",
              static_cast<unsigned long long>(cell.ops), cell.ops_per_sec,
              FormatNs(cell.p50_ns).c_str(), FormatNs(cell.p99_ns).c_str(),
              static_cast<unsigned long long>(cell.episodes),
              static_cast<unsigned long long>(cell.errors));
  std::printf("  tlb_hits=%llu tlb_misses=%llu shootdowns=%llu shootdown_pages=%llu "
              "shootdown_ranges=%llu\n",
              static_cast<unsigned long long>(cell.cpu.tlb_hits),
              static_cast<unsigned long long>(cell.cpu.tlb_misses),
              static_cast<unsigned long long>(cell.cpu.tlb_shootdowns),
              static_cast<unsigned long long>(cell.cpu.tlb_shootdown_pages),
              static_cast<unsigned long long>(cell.cpu.tlb_shootdown_ranges));
  std::printf("  tlb_hit_rate=%.4f magazine_hits=%llu refills=%llu drains=%llu steals=%llu\n",
              cell.hit_rate, static_cast<unsigned long long>(cell.frames.magazine_hits),
              static_cast<unsigned long long>(cell.frames.magazine_refills),
              static_cast<unsigned long long>(cell.frames.magazine_drains),
              static_cast<unsigned long long>(cell.frames.magazine_steals));

  // Teardown (exercises the teardown shootdown path too).
  for (int t = 0; t < cfg.threads; ++t) {
    (void)caches[static_cast<size_t>(t)]->Destroy();
    (void)contexts[static_cast<size_t>(t)]->Destroy();
  }
  return cell;
}

void AddCellCounters(BenchJson& json, const CellResult& cell) {
  json.Counter("ops", cell.ops);
  json.Counter("cow_episodes", cell.episodes);
  json.Counter("op_errors", cell.errors);
  json.Counter("page_faults", cell.mm.page_faults);
  json.Counter("cow_copies", cell.mm.cow_copies);
  json.Counter("cpu_faults_taken", cell.cpu.faults_taken);
  json.Counter("tlb_hits", cell.cpu.tlb_hits);
  json.Counter("tlb_misses", cell.cpu.tlb_misses);
  json.Counter("tlb_shootdowns", cell.cpu.tlb_shootdowns);
  json.Counter("tlb_shootdown_pages", cell.cpu.tlb_shootdown_pages);
  json.Counter("tlb_shootdown_ranges", cell.cpu.tlb_shootdown_ranges);
  json.Counter("magazine_hits", cell.frames.magazine_hits);
  json.Counter("magazine_refills", cell.frames.magazine_refills);
  json.Counter("magazine_drains", cell.frames.magazine_drains);
  json.Counter("magazine_steals", cell.frames.magazine_steals);
}

int RunSingle(const Config& cfg) {
  CellResult cell = RunCell(cfg);
  if (cell.setup_failed) {
    return 2;
  }
  BenchJson json(cfg.tlb ? "throughput_smp" : "throughput_smp.tlb_off");
  json.Config("threads", static_cast<uint64_t>(cfg.threads));
  json.Config("pages_per_thread", static_cast<uint64_t>(cfg.pages));
  json.Config("seconds", static_cast<uint64_t>(cfg.seconds * 1000));  // milliseconds
  json.Config("tlb", cfg.tlb);
  json.Config("mmu", cfg.mmu);
  json.Config("shootdown_fence", std::string(cell.fence_name));
  json.Config("seed", cfg.seed);
  json.Config("page_size", static_cast<uint64_t>(kPageSize));
  json.Config("base_page_size", static_cast<uint64_t>(cell.base_page_size));
  json.Config("huge_page_size", static_cast<uint64_t>(cell.huge_page_size));
  json.SetThroughput(cell.ops_per_sec);
  json.SetLatency(cell.p50_ns, cell.p99_ns);
  AddCellCounters(json, cell);
  json.WriteFile();
  return cell.errors == 0 ? 0 : 1;
}

// The scaling matrix: threads x mmu x fence.  Emits one JSON per cell plus the
// combined BENCH_throughput_scale.json that the CI gate and EXPERIMENTS.md
// read: per-cell ops/sec and shootdowns-per-1k-faults as flat counters keyed
// `<metric>.t<threads>.<mmu>.<fence>`, with the host's true core count in the
// config (a 1-core host timeshares 64 workers; the gate must know that).
int RunScale(const Config& base, double cell_seconds, int max_threads) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) {
    thread_counts.push_back(t);
  }
  const std::vector<std::string> mmus = {"soft", "hash"};
  const std::vector<TlbMmu::FenceMode> fences = {TlbMmu::FenceMode::kMembarrier,
                                                 TlbMmu::FenceMode::kFenced};

  BenchJson combined("throughput_scale");
  combined.Config("pages_per_thread", static_cast<uint64_t>(base.pages));
  combined.Config("cell_seconds_ms", static_cast<uint64_t>(cell_seconds * 1000));
  combined.Config("seed", base.seed);
  combined.Config("page_size", static_cast<uint64_t>(kPageSize));
  // Hoisted out of the cell loop: the granule geometry is fixed for the whole
  // matrix (both MMU kinds carry the default second granule), so probe it once
  // here instead of re-deriving it per cell setup.
  {
    const SoftMmu probe(kPageSize);
    combined.Config("base_page_size", static_cast<uint64_t>(probe.page_size()));
    combined.Config("huge_page_size", static_cast<uint64_t>(probe.huge_page_size()));
  }
  combined.Config("hardware_concurrency", static_cast<uint64_t>(hw));
  combined.Config("max_threads", static_cast<uint64_t>(max_threads));

  int failures = 0;
  double best_ops = 0;
  for (const std::string& mmu : mmus) {
    for (TlbMmu::FenceMode fence : fences) {
      for (int threads : thread_counts) {
        Config cfg = base;
        cfg.threads = threads;
        cfg.seconds = cell_seconds;
        cfg.mmu = mmu;
        cfg.fence = fence;
        CellResult cell = RunCell(cfg);
        if (cell.setup_failed) {
          ++failures;
          continue;
        }
        const std::string tag =
            "t" + std::to_string(threads) + "." + mmu + "." + cell.fence_name;
        BenchJson json("throughput_scale." + tag);
        json.Config("threads", static_cast<uint64_t>(threads));
        json.Config("pages_per_thread", static_cast<uint64_t>(cfg.pages));
        json.Config("base_page_size", static_cast<uint64_t>(cell.base_page_size));
        json.Config("huge_page_size", static_cast<uint64_t>(cell.huge_page_size));
        json.Config("mmu", mmu);
        json.Config("shootdown_fence", std::string(cell.fence_name));
        json.Config("hardware_concurrency", static_cast<uint64_t>(hw));
        json.SetThroughput(cell.ops_per_sec);
        json.SetLatency(cell.p50_ns, cell.p99_ns);
        AddCellCounters(json, cell);
        json.WriteFile();

        combined.Counter("ops_per_sec." + tag, static_cast<uint64_t>(cell.ops_per_sec));
        combined.Counter("hit_rate_bp." + tag,
                         static_cast<uint64_t>(cell.hit_rate * 10000));  // basis points
        const uint64_t faults = cell.cpu.faults_taken > 0 ? cell.cpu.faults_taken : 1;
        combined.Counter("shootdowns_per_1k_faults." + tag,
                         cell.cpu.tlb_shootdowns * 1000 / faults);
        combined.Counter("shootdown_pages." + tag, cell.cpu.tlb_shootdown_pages);
        combined.Counter("shootdown_ranges." + tag, cell.cpu.tlb_shootdown_ranges);
        combined.Counter("magazine_hits." + tag, cell.frames.magazine_hits);
        if (cell.errors > 0) {
          ++failures;
        }
        if (cell.ops_per_sec > best_ops) {
          best_ops = cell.ops_per_sec;
        }
      }
    }
  }
  combined.SetThroughput(best_ops);  // headline: best cell in the matrix
  combined.WriteFile();
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Config cfg;
  bool scale = false;
  double cell_seconds = 0.4;
  int max_threads = 64;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--threads=", 0) == 0) {
      cfg.threads = std::stoi(value());
    } else if (arg.rfind("--pages=", 0) == 0) {
      cfg.pages = std::stoul(value());
    } else if (arg.rfind("--seconds=", 0) == 0) {
      cfg.seconds = std::stod(value());
    } else if (arg.rfind("--tlb=", 0) == 0) {
      cfg.tlb = value() != "off";
    } else if (arg.rfind("--mmu=", 0) == 0) {
      cfg.mmu = value();
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::stoull(value());
    } else if (arg.rfind("--cow-every=", 0) == 0) {
      cfg.cow_every = std::stoi(value());
    } else if (arg.rfind("--fence=", 0) == 0) {
      const std::string fence = value();
      if (fence == "membarrier") {
        cfg.fence = gvm::TlbMmu::FenceMode::kMembarrier;
      } else if (fence == "fenced") {
        cfg.fence = gvm::TlbMmu::FenceMode::kFenced;
      } else if (fence == "auto") {
        cfg.fence = gvm::TlbMmu::FenceMode::kAuto;
      } else {
        std::fprintf(stderr, "unknown fence mode: %s\n", fence.c_str());
        return 2;
      }
    } else if (arg == "--scale") {
      scale = true;
    } else if (arg.rfind("--cell-seconds=", 0) == 0) {
      cell_seconds = std::stod(value());
    } else if (arg.rfind("--max-threads=", 0) == 0) {
      max_threads = std::stoi(value());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (scale) {
    return gvm::bench::RunScale(cfg, cell_seconds, max_threads);
  }
  return gvm::bench::RunSingle(cfg);
}
