// throughput_smp — multi-threaded fault-storm throughput of the PVM.
//
// N worker threads ("CPUs"), each with its own context/address space and its own
// anonymous segment, run a mixed workload of sequential 8-byte reads, random
// 8-byte writes, touches, and periodic fork-COW episodes (deferred copy of the
// whole working set, dirtying every 4th page of the copy, teardown).  The
// workload is exactly the per-access path the software TLB accelerates and the
// shootdown protocol must keep correct: COW episodes write-protect the source
// (downgrade shootdowns) and the teardown unmaps en masse.
//
// The same binary measures the baseline with --tlb=off (the TLB wrapper then
// delegates straight to the locked MMU walk), emitting a separate JSON file so
// both configurations can be committed and compared:
//   BENCH_throughput_smp.json           (TLB on, sharded locks hot path)
//   BENCH_throughput_smp.tlb_off.json   (uncached baseline)
//
// Usage: throughput_smp [--threads=4] [--pages=64] [--seconds=1.0]
//                       [--tlb=on|off] [--mmu=soft|hash] [--seed=1]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/hal/hash_mmu.h"
#include "src/hal/phys_memory.h"
#include "src/hal/soft_mmu.h"
#include "src/hal/tlb.h"
#include "src/pvm/paged_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace bench {
namespace {

constexpr size_t kPageSize = 4096;
constexpr Vaddr kWorkBase = 0x10000000;
constexpr Vaddr kForkBase = 0x80000000;
constexpr int kBatch = 64;  // ops timed per latency sample

struct Config {
  int threads = 4;
  size_t pages = 64;       // working-set pages per thread
  double seconds = 1.0;
  bool tlb = true;
  std::string mmu = "soft";
  uint64_t seed = 1;
  int cow_every = 8192;    // simple ops between fork-COW episodes
};

struct WorkerResult {
  uint64_t ops = 0;
  uint64_t episodes = 0;
  uint64_t errors = 0;
  std::vector<double> samples_ns;  // per-op latency, batch-averaged
};

const char* FenceName(TlbMmu::FenceMode mode) {
  switch (mode) {
    case TlbMmu::FenceMode::kFenced:
      return "fenced";
    case TlbMmu::FenceMode::kMembarrier:
      return "membarrier";
    case TlbMmu::FenceMode::kUniprocessor:
      return "uniprocessor";
    default:
      return "auto";
  }
}

uint64_t NextRand(uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// One fork-COW episode: deferred-copy the whole working set, dirty every 4th
// page of the copy (materializing private pages), read one back, tear down.
void ForkCowEpisode(MemoryManager& mm, Context& ctx, Cache& src, const Config& cfg,
                    uint64_t iter, WorkerResult& result) {
  Result<Cache*> copy = mm.CacheCreate(nullptr, "fork");
  if (!copy.ok()) {
    ++result.errors;
    return;
  }
  const size_t bytes = cfg.pages * kPageSize;
  if (src.CopyTo(**copy, 0, 0, bytes, CopyPolicy::kHistory) != Status::kOk) {
    ++result.errors;
    (*copy)->Destroy();
    return;
  }
  Result<Region*> region =
      mm.RegionCreate(ctx, kForkBase, bytes, Prot::kReadWrite, **copy, 0);
  if (!region.ok()) {
    ++result.errors;
    (*copy)->Destroy();
    return;
  }
  AsId as = ctx.address_space();
  for (size_t p = 0; p < cfg.pages; p += 4) {
    uint64_t value = iter + p;
    if (mm.cpu().Write(as, kForkBase + p * kPageSize, &value, sizeof(value)) != Status::kOk) {
      ++result.errors;
    }
  }
  uint64_t check = 0;
  mm.cpu().Read(as, kForkBase + (cfg.pages / 2) * kPageSize, &check, sizeof(check));
  (*region)->Destroy();
  (*copy)->Destroy();
  ++result.episodes;
}

void Worker(int tid, MemoryManager& mm, Context& ctx, Cache& cache, const Config& cfg,
            std::atomic<bool>& stop, WorkerResult& result) {
  using Clock = std::chrono::steady_clock;
  AsId as = ctx.address_space();
  uint64_t rng = cfg.seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(tid) + 1;
  // Materialize the working set (demand zero-fill) before the clock starts.
  for (size_t p = 0; p < cfg.pages; ++p) {
    uint64_t value = p;
    if (mm.cpu().Write(as, kWorkBase + p * kPageSize, &value, sizeof(value)) != Status::kOk) {
      ++result.errors;
    }
  }
  size_t cursor = 0;
  // cfg.pages is rounded to a power of two by Run(), so the working set can be
  // walked with masks instead of divisions on the measured path.
  const size_t span_mask = cfg.pages * kPageSize - 1;
  const size_t page_mask = cfg.pages - 1;
  uint64_t since_episode = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    auto start = Clock::now();
    for (int b = 0; b < kBatch; ++b) {
      const uint64_t r = NextRand(rng);
      const uint64_t kind = r & 1023;  // <717: 70% read, <922: 20% write, else touch
      Status s = Status::kOk;
      if (kind < 717) {
        // Sequential read walk, 64-byte stride (the TLB-hit-dominated stream).
        cursor = (cursor + 64) & span_mask;
        uint64_t value;
        s = mm.cpu().Read(as, kWorkBase + cursor, &value, sizeof(value));
      } else if (kind < 922) {
        // Random 8-byte write within the working set.
        const size_t page = (r >> 10) & page_mask;
        const size_t offset = (r >> 32) & (kPageSize - sizeof(uint64_t));  // 8-aligned
        uint64_t value = r;
        s = mm.cpu().Write(as, kWorkBase + page * kPageSize + offset, &value, sizeof(value));
      } else {
        // Touch (translate-only path).
        const size_t page = (r >> 10) & page_mask;
        s = mm.cpu().Touch(as, kWorkBase + page * kPageSize, Access::kRead);
      }
      if (s != Status::kOk) {
        ++result.errors;
      }
    }
    auto end = Clock::now();
    result.ops += kBatch;
    since_episode += kBatch;
    if (result.samples_ns.size() < 50000) {
      result.samples_ns.push_back(
          std::chrono::duration<double, std::nano>(end - start).count() / kBatch);
    }
    if (since_episode >= static_cast<uint64_t>(cfg.cow_every)) {
      since_episode = 0;
      ForkCowEpisode(mm, ctx, cache, cfg, result.ops, result);
    }
  }
}

int Run(Config cfg) {
  // Round the working set to a power of two so the worker's hot loop can use
  // masks (see Worker).
  size_t pow2 = 1;
  while (pow2 < cfg.pages) {
    pow2 <<= 1;
  }
  cfg.pages = pow2;
  // Enough frames that the benchmark measures the access path, not page-out:
  // working sets + in-flight COW copies + slack.
  const size_t frames = static_cast<size_t>(cfg.threads) * cfg.pages * 3 + 256;
  PhysicalMemory memory(frames, kPageSize);
  std::unique_ptr<Mmu> mmu;
  if (cfg.mmu == "hash") {
    mmu = std::make_unique<HashMmu>(kPageSize);
  } else {
    mmu = std::make_unique<SoftMmu>(kPageSize);
  }
  PagedVm::Options options;
  options.enable_tlb = cfg.tlb;
  options.pullin_cluster_pages = 8;
  PagedVm vm(memory, *mmu, options);
  TestSwapRegistry registry(kPageSize);
  vm.BindSegmentRegistry(&registry);

  // Per-thread context (its own hardware address space) + anonymous segment.
  std::vector<Context*> contexts;
  std::vector<Cache*> caches;
  for (int t = 0; t < cfg.threads; ++t) {
    Context* ctx = *vm.ContextCreate();
    Cache* cache = *vm.CacheCreate(nullptr, "ws" + std::to_string(t));
    Region* region = *vm.RegionCreate(*ctx, kWorkBase, cfg.pages * kPageSize,
                                      Prot::kReadWrite, *cache, 0);
    (void)region;
    contexts.push_back(ctx);
    caches.push_back(cache);
  }

  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(static_cast<size_t>(cfg.threads));
  std::vector<std::thread> workers;
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back(Worker, t, std::ref(vm), std::ref(*contexts[static_cast<size_t>(t)]),
                         std::ref(*caches[static_cast<size_t>(t)]), std::cref(cfg),
                         std::ref(stop), std::ref(results[static_cast<size_t>(t)]));
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : workers) {
    th.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  uint64_t total_ops = 0;
  uint64_t episodes = 0;
  uint64_t errors = 0;
  std::vector<double> samples;
  for (const WorkerResult& r : results) {
    total_ops += r.ops;
    episodes += r.episodes;
    errors += r.errors;
    samples.insert(samples.end(), r.samples_ns.begin(), r.samples_ns.end());
  }
  const double ops_per_sec = total_ops / elapsed;
  const double p50 = Percentile(samples, 0.5);
  const double p99 = Percentile(samples, 0.99);

  const Cpu::Stats cs = vm.cpu().SnapshotStats();
  const double hit_rate = cs.tlb_hits + cs.tlb_misses > 0
                              ? static_cast<double>(cs.tlb_hits) /
                                    static_cast<double>(cs.tlb_hits + cs.tlb_misses)
                              : 0.0;

  std::printf("throughput_smp: threads=%d pages=%zu mmu=%s tlb=%s fence=%s\n", cfg.threads,
              cfg.pages, cfg.mmu.c_str(), cfg.tlb ? "on" : "off",
              FenceName(vm.tlb().fence_mode()));
  std::printf("  ops=%llu (%.0f ops/sec)  p50=%s p99=%s  cow_episodes=%llu errors=%llu\n",
              static_cast<unsigned long long>(total_ops), ops_per_sec, FormatNs(p50).c_str(),
              FormatNs(p99).c_str(), static_cast<unsigned long long>(episodes),
              static_cast<unsigned long long>(errors));
  std::printf("  tlb_hits=%llu tlb_misses=%llu shootdowns=%llu shootdown_pages=%llu\n",
              static_cast<unsigned long long>(cs.tlb_hits),
              static_cast<unsigned long long>(cs.tlb_misses),
              static_cast<unsigned long long>(cs.tlb_shootdowns),
              static_cast<unsigned long long>(cs.tlb_shootdown_pages));
  std::printf("  tlb_hit_rate=%.4f\n", hit_rate);

  BenchJson json(cfg.tlb ? "throughput_smp" : "throughput_smp.tlb_off");
  json.Config("threads", static_cast<uint64_t>(cfg.threads));
  json.Config("pages_per_thread", static_cast<uint64_t>(cfg.pages));
  json.Config("seconds", static_cast<uint64_t>(cfg.seconds * 1000));  // milliseconds
  json.Config("tlb", cfg.tlb);
  json.Config("mmu", cfg.mmu);
  json.Config("shootdown_fence", std::string(FenceName(vm.tlb().fence_mode())));
  json.Config("seed", cfg.seed);
  json.Config("page_size", static_cast<uint64_t>(kPageSize));
  json.SetThroughput(ops_per_sec);
  json.SetLatency(p50, p99);
  json.Counter("ops", total_ops);
  json.Counter("cow_episodes", episodes);
  json.Counter("op_errors", errors);
  AddWorldCounters(json, vm);
  json.Write();

  // Teardown (exercises the teardown shootdown path too).
  for (int t = 0; t < cfg.threads; ++t) {
    caches[static_cast<size_t>(t)]->Destroy();
    contexts[static_cast<size_t>(t)]->Destroy();
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--threads=", 0) == 0) {
      cfg.threads = std::stoi(value());
    } else if (arg.rfind("--pages=", 0) == 0) {
      cfg.pages = std::stoul(value());
    } else if (arg.rfind("--seconds=", 0) == 0) {
      cfg.seconds = std::stod(value());
    } else if (arg.rfind("--tlb=", 0) == 0) {
      cfg.tlb = value() != "off";
    } else if (arg.rfind("--mmu=", 0) == 0) {
      cfg.mmu = value();
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::stoull(value());
    } else if (arg.rfind("--cow-every=", 0) == 0) {
      cfg.cow_every = std::stoi(value());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  return gvm::bench::Run(cfg);
}
