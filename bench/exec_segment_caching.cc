// Ablation — segment caching (paper section 5.1.3): "This segment caching
// strategy has a very significant impact on the performance of program loading
// (Unix exec) when the same programs are loaded frequently, such as occurs during
// a large make."
//
// We run the same "make"-style workload — spawn/run/exit the same program N times
// — with the segment cache enabled and disabled, reporting exec latency and mapper
// traffic for both.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/mix/process_manager.h"

namespace gvm {
namespace bench {
namespace {

struct MixWorld {
  std::unique_ptr<PhysicalMemory> memory;
  std::unique_ptr<SoftMmu> mmu;
  std::unique_ptr<PagedVm> vm;
  std::unique_ptr<Nucleus> nucleus;
  std::unique_ptr<SwapMapper> swap;
  std::unique_ptr<FileMapper> files;
  std::unique_ptr<MapperServer> swap_server;
  std::unique_ptr<MapperServer> file_server;
  std::unique_ptr<ProcessManager> pm;

  static MixWorld Make(size_t cache_capacity) {
    MixWorld w;
    w.memory = std::make_unique<PhysicalMemory>(2048, kPage);
    w.mmu = std::make_unique<SoftMmu>(kPage);
    w.vm = std::make_unique<PagedVm>(*w.memory, *w.mmu);
    Nucleus::Options options;
    options.segment_manager.cache_capacity = cache_capacity;
    w.nucleus = std::make_unique<Nucleus>(*w.vm, options);
    w.swap = std::make_unique<SwapMapper>(kPage);
    w.files = std::make_unique<FileMapper>(kPage);
    w.swap_server = std::make_unique<MapperServer>(w.nucleus->ipc(), *w.swap);
    w.file_server = std::make_unique<MapperServer>(w.nucleus->ipc(), *w.files);
    w.nucleus->BindDefaultMapper(w.swap_server.get());
    w.nucleus->RegisterMapper(w.file_server.get());
    w.pm = std::make_unique<ProcessManager>(*w.nucleus, *w.files, w.file_server->port());
    // A "compiler": touches its text pages, writes some output, exits.
    VmAssembler a;
    a.Li32(2, static_cast<uint32_t>(ProcessLayout::kDataBase));
    a.Emit(VmOp::kLi, 4, 0, 64);
    size_t loop = a.Here();
    a.Emit(VmOp::kLi, 3, 0, 'x');
    a.Emit(VmOp::kStb, 3, 2, 0);
    a.Emit(VmOp::kAddi, 2, 0, 8);
    a.Emit(VmOp::kAddi, 4, 0, -1);
    size_t b = a.Here();
    a.Emit(VmOp::kBnez, 4, 0, 0);
    a.PatchBranch(b, loop);
    a.Emit(VmOp::kLi, 0, 0, 0);
    a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
    std::vector<std::byte> data(3 * kPage, std::byte{7});  // sizeable initialized data
    (void)w.pm->InstallProgram("/bin/cc", a, data, 4 * kPage, 2 * kPage);
    return w;
  }

  // One "make step": run /bin/cc to completion and reap it.
  void ExecOnce() {
    Pid pid = *pm->Spawn("/bin/cc");
    pm->Run(pid, 100000);
    pm->Wait(0);
    pm->Find(pid);
    // Reap the zombie so the process table stays small.
    for (auto* p = pm->Find(pid); p != nullptr; p = nullptr) {
      // Wait() with parent 0 reaps it (Spawn children have parent 0).
    }
    pm->Wait(0);
  }
};

void Run() {
  std::printf("==========================================================================\n");
  std::printf("Ablation: segment caching under a make-style exec loop (section 5.1.3)\n");
  std::printf("==========================================================================\n");
  constexpr int kExecs = 50;

  MixWorld cached = MixWorld::Make(/*cache_capacity=*/16);
  cached.ExecOnce();  // cold start
  int cached_cold_reads = cached.files->reads;
  double cached_ns = TimeNs([&] { cached.ExecOnce(); }, 8, 0.02);
  for (int i = 0; i < kExecs; ++i) {
    cached.ExecOnce();
  }
  int cached_reads = cached.files->reads - cached_cold_reads;

  MixWorld uncached = MixWorld::Make(/*cache_capacity=*/0);
  uncached.ExecOnce();
  int uncached_cold_reads = uncached.files->reads;
  double uncached_ns = TimeNs([&] { uncached.ExecOnce(); }, 8, 0.02);
  for (int i = 0; i < kExecs; ++i) {
    uncached.ExecOnce();
  }
  int uncached_reads = uncached.files->reads - uncached_cold_reads;

  std::printf("\n%-34s %16s %16s\n", "", "segment cache ON", "segment cache OFF");
  std::printf("%-34s %16s %16s\n", "exec+run latency (median)", FormatNs(cached_ns).c_str(),
              FormatNs(uncached_ns).c_str());
  std::printf("%-34s %16d %16d\n", "mapper reads over the exec loop", cached_reads,
              uncached_reads);
  std::printf("%-34s %16zu %16zu\n", "segment-cache hits",
              (size_t)cached.nucleus->segment_manager().stats().cache_hits,
              (size_t)uncached.nucleus->segment_manager().stats().cache_hits);

  std::printf("\nShape checks:\n");
  ShapeCheck check;
  check.Expect(cached_reads < uncached_reads / 4,
              "segment caching eliminates most mapper traffic for repeated execs");
  check.Expect(cached_ns < uncached_ns,
              "exec latency is lower with the segment cache (the paper's 'large make')");
  std::printf("\n");
  if (check.failed != 0) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Run();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
