// Ablation — section 4.2.5's structural argument, made measurable:
//
//   1. "When a Unix process forks repeatedly (as do Unix shells), the shadow must
//      be merged with the source after the child exits.  This garbage collection
//      is a major complication of the Mach algorithm."  We run a fork/exit loop
//      and count objects + GC work under both designs (and under Mach with the
//      collapse GC disabled, showing the unbounded chain).
//
//   2. The history-object weak spot the paper concedes: "a process forks and then
//      exits, while its child continues, forks and exits, and so on" — chains of
//      inactive history objects that must be merged.  We run that pattern and
//      show the PVM's collapse keeping the tree bounded.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gvm {
namespace bench {
namespace {

constexpr size_t kPages = 8;

Cache* FilledCache(World& world, const char* name) {
  Cache* cache = *world.mm->CacheCreate(nullptr, name);
  std::vector<char> data(kPage, 'd');
  for (size_t i = 0; i < kPages; ++i) {
    (void)cache->Write(i * kPage, data.data(), kPage);
  }
  return cache;
}

// Pattern 1: shell-style — the parent forks, the child exits, repeatedly.
// The parent writes a page each round (forcing deferred-copy work).
struct ShellLoopResult {
  size_t final_objects = 0;   // caches/memory objects alive at the end
  uint64_t gc_operations = 0; // collapses/merges performed
  double ns_per_round = 0;
};

ShellLoopResult ShellLoop(MmKind kind, bool collapse, int rounds) {
  World world;
  world.memory = std::make_unique<PhysicalMemory>(4096, kPage);
  world.mmu = std::make_unique<SoftMmu>(kPage);
  if (kind == MmKind::kPvm) {
    PagedVm::Options options;
    options.collapse_dying_caches = collapse;
    world.mm = std::make_unique<PagedVm>(*world.memory, *world.mmu, options);
  } else {
    ShadowVm::Options options;
    options.collapse_shadows = collapse;
    world.mm = std::make_unique<ShadowVm>(*world.memory, *world.mmu, options);
  }
  world.registry = std::make_unique<TestSwapRegistry>(kPage);
  world.mm->BindSegmentRegistry(world.registry.get());
  world.context = *world.mm->ContextCreate();

  Cache* shell = FilledCache(world, "shell");
  char v = 'x';
  int round = 0;
  ShellLoopResult result;
  result.ns_per_round = TimeNs([&] {
    Cache* child = *world.mm->CacheCreate(nullptr, "c" + std::to_string(round++));
    (void)shell->CopyTo(*child, 0, 0, kPages * kPage, CopyPolicy::kHistory);
    (void)shell->Write((round % kPages) * kPage, &v, 1);  // parent keeps working
    (void)child->Write(0, &v, 1);                          // child does something
    (void)child->Destroy();                                // child exits
  }, rounds, 0.0);
  if (kind == MmKind::kPvm) {
    auto* pvm = static_cast<PagedVm*>(world.mm.get());
    result.final_objects = pvm->CacheCount();
    result.gc_operations =
        pvm->detail_stats().caches_collapsed + pvm->detail_stats().caches_reaped;
  } else {
    auto* shadow = static_cast<ShadowVm*>(world.mm.get());
    result.final_objects = shadow->ObjectCount();
    result.gc_operations = world.mm->stats().shadow_collapses;
  }
  return result;
}

// Pattern 2: generational — each generation forks a child and exits; the child
// continues (the history scheme's own GC case).
size_t GenerationalLoop(bool collapse, int generations, uint64_t* gc_out) {
  World world;
  world.memory = std::make_unique<PhysicalMemory>(4096, kPage);
  world.mmu = std::make_unique<SoftMmu>(kPage);
  PagedVm::Options options;
  options.collapse_dying_caches = collapse;
  auto pvm = std::make_unique<PagedVm>(*world.memory, *world.mmu, options);
  PagedVm* vm = pvm.get();
  world.mm = std::move(pvm);
  world.registry = std::make_unique<TestSwapRegistry>(kPage);
  world.mm->BindSegmentRegistry(world.registry.get());
  world.context = *world.mm->ContextCreate();

  Cache* generation = FilledCache(world, "gen0");
  char v = 'y';
  for (int i = 1; i <= generations; ++i) {
    Cache* next = *world.mm->CacheCreate(nullptr, "gen" + std::to_string(i));
    (void)generation->CopyTo(*next, 0, 0, kPages * kPage, CopyPolicy::kHistory);
    (void)next->Write(0, &v, 1);
    (void)generation->Destroy();  // the parent exits; the child continues
    generation = next;
  }
  *gc_out = vm->detail_stats().caches_collapsed + vm->detail_stats().caches_reaped;
  return vm->CacheCount();
}

void Run() {
  std::printf("==========================================================================\n");
  std::printf("Ablation: fork/exit garbage collection (section 4.2.5)\n");
  std::printf("==========================================================================\n");
  constexpr int kRounds = 64;

  std::printf("\nPattern 1 — shell loop (parent forks, child exits) x%d:\n", kRounds);
  std::printf("%-34s %10s %10s %14s\n", "", "objects", "GC ops", "ns/round");
  ShellLoopResult pvm = ShellLoop(MmKind::kPvm, true, kRounds);
  ShellLoopResult mach = ShellLoop(MmKind::kShadow, true, kRounds);
  ShellLoopResult mach_nogc = ShellLoop(MmKind::kShadow, false, kRounds);
  std::printf("%-34s %10zu %10llu %14s\n", "Chorus (history objects)", pvm.final_objects,
              (unsigned long long)pvm.gc_operations, FormatNs(pvm.ns_per_round).c_str());
  std::printf("%-34s %10zu %10llu %14s\n", "Mach (shadows, GC on)", mach.final_objects,
              (unsigned long long)mach.gc_operations, FormatNs(mach.ns_per_round).c_str());
  std::printf("%-34s %10zu %10llu %14s\n", "Mach (shadows, GC OFF)",
              mach_nogc.final_objects, (unsigned long long)mach_nogc.gc_operations,
              FormatNs(mach_nogc.ns_per_round).c_str());

  std::printf("\nPattern 2 — generational fork-and-exit chain (64 generations, PVM):\n");
  uint64_t gc_on = 0;
  uint64_t gc_off = 0;
  size_t caches_on = GenerationalLoop(true, 64, &gc_on);
  size_t caches_off = GenerationalLoop(false, 64, &gc_off);
  std::printf("%-34s %10zu caches (%llu GC ops)\n", "with history-chain collapse", caches_on,
              (unsigned long long)gc_on);
  std::printf("%-34s %10zu caches (%llu GC ops)\n", "without collapse", caches_off,
              (unsigned long long)gc_off);

  std::printf("\nShape checks:\n");
  ShapeCheck check;
  // The paper's structural point: the history scheme needs NO GC work in the
  // shell pattern (the child's cache is simply discarded), while Mach must merge
  // shadows to avoid unbounded chains.
  check.Expect(mach_nogc.final_objects > mach.final_objects + kRounds / 2,
              "Mach without its collapse GC leaks a chain object per fork/exit round");
  check.Expect(pvm.final_objects <= 4,
              "Chorus shell loop leaves no garbage (the child cache is discarded)");
  check.Expect(mach.gc_operations >= static_cast<uint64_t>(kRounds) / 2,
              "Mach's GC has to run continuously in the shell loop (the 'major "
              "complication')");
  check.Expect(caches_on <= 4, "generational chains collapse in the PVM (bounded caches)");
  check.Expect(caches_off > 32, "without collapse the generational chain would grow");
  std::printf("\n");
  if (check.failed != 0) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Run();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
