// Figure 3 — "History objects for copy-on-write".
//
// The figure is a four-panel diagram (3.a–3.d) showing the history tree after
// specific sequences of copies and writes.  This binary *replays each scenario
// page-exactly*, renders the resulting tree in the figure's notation (grey/
// protected frames marked '*'), and asserts every frame-placement and protection
// statement in the figure's captions.  It is the executable form of the figure.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/bench_util.h"

namespace gvm {
namespace bench {
namespace {

struct Fig3World {
  World world;
  PagedVm* pvm;

  static Fig3World Make() {
    Fig3World w{.world = World::Make(MmKind::kPvm), .pvm = nullptr};
    w.pvm = static_cast<PagedVm*>(w.world.mm.get());
    return w;
  }

  Cache* FilledCache(const char* name, int pages) {
    Cache* cache = *world.mm->CacheCreate(nullptr, name);
    std::vector<char> data(kPage);
    for (int i = 0; i < pages; ++i) {
      // Page p holds the value 'p+1' everywhere ("1", "2", "3" in the figure).
      std::memset(data.data(), '1' + i, kPage);
      (void)cache->Write(i * kPage, data.data(), kPage);
    }
    return cache;
  }

  char ReadPage(Cache& cache, int page) {
    char c = 0;
    (void)cache.Read(page * kPage, &c, 1);
    return c;
  }

  void WritePage(Cache& cache, int page, char value) {
    // The figure's 2': a new value in the page.
    (void)cache.Write(page * kPage, &value, 1);
  }
};

void Expect(ShapeCheck& check, bool ok, const char* what) { check.Expect(ok, what); }

void ScenarioA(ShapeCheck& check) {
  std::printf("--- Figure 3.a: cpy1 is a copy-on-write of pages 1-3 of src ---\n");
  Fig3World w = Fig3World::Make();
  Cache* src = w.FilledCache("src", 3);
  Cache* cpy1 = *w.world.mm->CacheCreate(nullptr, "cpy1");
  (void)src->CopyTo(*cpy1, 0, 0, 3 * kPage, CopyPolicy::kHistory);
  // "Page 2 has been updated in src" -> the original 2 goes to cpy1.
  w.WritePage(*src, 1, '@');  // 2' in the figure
  // "page 3 has been updated in cpy1."
  w.WritePage(*cpy1, 2, '#');  // 3'
  std::printf("%s", w.pvm->DumpTree(*src).c_str());
  Expect(check, static_cast<PvmCache*>(src)->HistoryAt(0) == static_cast<PvmCache*>(cpy1),
        "3.a: cpy1 is src's history object");
  Expect(check, w.ReadPage(*src, 1) == '@', "3.a: src sees 2'");
  Expect(check, w.ReadPage(*cpy1, 1) == '2', "3.a: cpy1 holds the original 2");
  Expect(check, w.ReadPage(*cpy1, 2) == '#', "3.a: cpy1 sees its own 3'");
  Expect(check, w.ReadPage(*src, 2) == '3', "3.a: src keeps the original 3");
  // "A cache miss on page 1 in cpy1 is resolved by looking it up in src" —
  // without allocating a frame in cpy1.
  size_t resident = cpy1->ResidentPages();
  Expect(check, w.ReadPage(*cpy1, 0) == '1' && cpy1->ResidentPages() == resident,
        "3.a: cpy1 page 1 read through src, no frame allocated");
  Expect(check, w.pvm->CheckInvariants() == Status::kOk, "3.a: invariants hold");
}

void ScenarioB(ShapeCheck& check) {
  std::printf("--- Figure 3.b: then cpy1 is copied-on-write to copyOfCpy1 ---\n");
  Fig3World w = Fig3World::Make();
  Cache* src = w.FilledCache("src", 3);
  Cache* cpy1 = *w.world.mm->CacheCreate(nullptr, "cpy1");
  (void)src->CopyTo(*cpy1, 0, 0, 3 * kPage, CopyPolicy::kHistory);
  w.WritePage(*src, 1, '@');  // "Page 2 of src is modified."
  Cache* copy_of = *w.world.mm->CacheCreate(nullptr, "copyOfCpy1");
  (void)cpy1->CopyTo(*copy_of, 0, 0, 3 * kPage, CopyPolicy::kHistory);
  // "Page 3 of cpy1 is modified: both src and copyOfCpy1 get a page frame with
  // the original value."  (In the history scheme src already holds its original;
  // the complication is that copyOfCpy1 must get one too.)
  w.WritePage(*cpy1, 2, '#');
  std::printf("%s", w.pvm->DumpTree(*src).c_str());
  Expect(check, w.ReadPage(*cpy1, 2) == '#', "3.b: cpy1 sees 3'");
  Expect(check, w.ReadPage(*src, 2) == '3', "3.b: src keeps 3");
  Expect(check, w.ReadPage(*copy_of, 2) == '3',
        "3.b: copyOfCpy1 got its own copy of 3 (the 4.2.3 complication)");
  // "Page 1 of both copies is read from src."
  Expect(check, w.ReadPage(*cpy1, 0) == '1' && w.ReadPage(*copy_of, 0) == '1',
        "3.b: page 1 of both copies is read from src");
  // "Page 2 of copyOfCpy1 is read from cpy1."
  Expect(check, w.ReadPage(*copy_of, 1) == '2', "3.b: page 2 of copyOfCpy1 read from cpy1");
  Expect(check, w.pvm->CheckInvariants() == Status::kOk, "3.b: invariants hold");
}

void ScenarioC(ShapeCheck& check) {
  std::printf("--- Figure 3.c: pages 1-4 of src copied twice (cpy1, cpy2) ---\n");
  Fig3World w = Fig3World::Make();
  Cache* src = w.FilledCache("src", 4);
  Cache* cpy1 = *w.world.mm->CacheCreate(nullptr, "cpy1");
  Cache* cpy2 = *w.world.mm->CacheCreate(nullptr, "cpy2");
  (void)src->CopyTo(*cpy1, 0, 0, 4 * kPage, CopyPolicy::kHistory);
  (void)src->CopyTo(*cpy2, 0, 0, 4 * kPage, CopyPolicy::kHistory);
  // "A working history object w1 has been created and inserted in the tree."
  PvmCache* w1 = static_cast<PvmCache*>(src)->HistoryAt(0);
  Expect(check, w1 != nullptr && w1 != static_cast<PvmCache*>(cpy1) &&
                   w1 != static_cast<PvmCache*>(cpy2),
        "3.c: a working object w1 is src's history");
  Expect(check,
        static_cast<PvmCache*>(cpy1)->ParentAt(0) == w1 &&
            static_cast<PvmCache*>(cpy2)->ParentAt(0) == w1,
        "3.c: w1 is the parent of both cpy1 and cpy2");
  Expect(check, w1->ParentAt(0) == static_cast<PvmCache*>(src),
        "3.c: w1's parent is src");
  // "The following pages have been modified: page 3 of src, page 3 of cpy1, and
  // page 4 of cpy2."
  w.WritePage(*src, 2, '@');
  w.WritePage(*cpy1, 2, '#');
  w.WritePage(*cpy2, 3, '$');
  std::printf("%s", w.pvm->DumpTree(*src).c_str());
  Expect(check, w.ReadPage(*src, 2) == '@', "3.c: src sees 3'");
  Expect(check, w.ReadPage(*cpy1, 2) == '#', "3.c: cpy1 sees its own 3''");
  Expect(check, w.ReadPage(*cpy2, 2) == '3',
        "3.c: cpy2's miss on page 3 resolves in w1 (the original)");
  Expect(check, w.ReadPage(*cpy2, 3) == '$', "3.c: cpy2 sees 4'");
  Expect(check, w.ReadPage(*cpy1, 3) == '4', "3.c: cpy1's miss on page 4 resolves in src");
  Expect(check, w.pvm->CheckInvariants() == Status::kOk, "3.c: invariants hold");
}

void ScenarioD(ShapeCheck& check) {
  std::printf("--- Figure 3.d: src copied three times; two working objects ---\n");
  Fig3World w = Fig3World::Make();
  Cache* src = w.FilledCache("src", 4);
  Cache* copies[3];
  for (int i = 0; i < 3; ++i) {
    copies[i] = *w.world.mm->CacheCreate(nullptr, std::string("cpy") + char('1' + i));
    (void)src->CopyTo(*copies[i], 0, 0, 4 * kPage, CopyPolicy::kHistory);
  }
  std::printf("%s", w.pvm->DumpTree(*src).c_str());
  Expect(check, w.pvm->detail_stats().working_objects == 2,
        "3.d: exactly two working objects (w1, w2) were created");
  // The shape invariant: src has a single immediate descendant.
  PvmCache* w2 = static_cast<PvmCache*>(src)->HistoryAt(0);
  Expect(check, w2 != nullptr, "3.d: src has a single history (w2)");
  w.WritePage(*src, 0, '@');
  for (int i = 0; i < 3; ++i) {
    Expect(check, w.ReadPage(*copies[i], 0) == '1',
          "3.d: every copy still reads the original page 1");
  }
  Expect(check, w.pvm->CheckInvariants() == Status::kOk, "3.d: invariants hold");
}

void BM_Fig3FullSequence(::benchmark::State& state) {
  for (auto _ : state) {
    ShapeCheck sink;
    Fig3World w = Fig3World::Make();
    Cache* src = w.FilledCache("src", 4);
    Cache* a = *w.world.mm->CacheCreate(nullptr, "a");
    Cache* b = *w.world.mm->CacheCreate(nullptr, "b");
    (void)src->CopyTo(*a, 0, 0, 4 * kPage, CopyPolicy::kHistory);
    (void)src->CopyTo(*b, 0, 0, 4 * kPage, CopyPolicy::kHistory);
    w.WritePage(*src, 2, '@');
    w.WritePage(*a, 2, '#');
    ::benchmark::DoNotOptimize(w.ReadPage(*b, 2));
  }
}
BENCHMARK(BM_Fig3FullSequence)->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  std::printf("==========================================================================\n");
  std::printf("Figure 3: history objects for copy-on-write (executable reproduction)\n");
  std::printf("==========================================================================\n");
  std::printf("(page lists show page indices; '*' marks the figure's grey "
              "read-only-protected frames)\n\n");
  gvm::bench::ShapeCheck check;
  gvm::bench::ScenarioA(check);
  std::printf("\n");
  gvm::bench::ScenarioB(check);
  std::printf("\n");
  gvm::bench::ScenarioC(check);
  std::printf("\n");
  gvm::bench::ScenarioD(check);
  std::printf("\nFigure 3 assertions: %d passed, %d failed\n\n", check.passed, check.failed);
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return check.failed == 0 ? 0 : 1;
}
