// Ablation — IPC data transfer (paper section 5.1.6): the transit-segment path
// with per-page deferred copy on send and move semantics on receive, versus plain
// byte copies ("bcopy"), across message sizes up to the 64 KB limit.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "src/nucleus/nucleus.h"

namespace gvm {
namespace bench {
namespace {

struct IpcWorld {
  World world;
  std::unique_ptr<Nucleus> nucleus;
  std::unique_ptr<SwapMapper> swap;
  std::unique_ptr<MapperServer> swap_server;
  Actor* sender = nullptr;
  Actor* receiver = nullptr;
  PortId port = kInvalidPort;

  static IpcWorld Make() {
    IpcWorld w;
    w.world = World::Make(MmKind::kPvm, 2048);
    w.nucleus = std::make_unique<Nucleus>(*w.world.mm);
    w.swap = std::make_unique<SwapMapper>(kPage);
    w.swap_server = std::make_unique<MapperServer>(w.nucleus->ipc(), *w.swap);
    w.nucleus->BindDefaultMapper(w.swap_server.get());
    w.sender = *w.nucleus->ActorCreate("sender");
    w.receiver = *w.nucleus->ActorCreate("receiver");
    w.sender->RgnAllocate(0x10000, 16 * kPage, Prot::kReadWrite);
    w.receiver->RgnAllocate(0x20000, 16 * kPage, Prot::kReadWrite);
    // Make the payload resident on the sender side.
    std::vector<char> payload(16 * kPage, 'm');
    (void)w.sender->Write(0x10000, payload.data(), payload.size());
    w.port = w.nucleus->ipc().PortCreate();
    return w;
  }

  void TransferOnce(size_t bytes) {
    (void)nucleus->MsgSendFromRegion(*sender, port, 1, 0x10000, bytes);
    nucleus->MsgReceiveToRegion(*receiver, port, 0x20000, 16 * kPage);
  }

  void BcopyOnce(size_t bytes) {
    // The naive path: read everything out and write it back in.
    std::vector<char> bounce(bytes);
    (void)sender->Read(0x10000, bounce.data(), bytes);
    (void)receiver->Write(0x20000, bounce.data(), bytes);
  }
};

void Run() {
  std::printf("==========================================================================\n");
  std::printf("Ablation: IPC transfer via the transit segment (section 5.1.6)\n");
  std::printf("==========================================================================\n");
  std::printf("\n%-12s %18s %18s\n", "size", "transit (copy+move)", "plain bcopy x2");
  const size_t kSizes[] = {kPage, 2 * kPage, 4 * kPage, 8 * kPage};
  double transit_large = 0;
  double bcopy_large = 0;
  for (size_t bytes : kSizes) {
    IpcWorld w1 = IpcWorld::Make();
    double transit = TimeNs([&] { w1.TransferOnce(bytes); });
    IpcWorld w2 = IpcWorld::Make();
    double bcopy = TimeNs([&] { w2.BcopyOnce(bytes); });
    char label[32];
    std::snprintf(label, sizeof(label), "%zu KB", bytes / 1024);
    std::printf("%-12s %18s %18s\n", label, FormatNs(transit).c_str(),
                FormatNs(bcopy).c_str());
    if (bytes == 8 * kPage) {
      transit_large = transit;
      bcopy_large = bcopy;
    }
  }

  // Move-semantics accounting: an aligned transfer retargets whole pages.
  IpcWorld w = IpcWorld::Make();
  auto* pvm = static_cast<PagedVm*>(w.world.mm.get());
  uint64_t moves_before = pvm->detail_stats().move_retargets;
  uint64_t copies_before = w.world.memory->stats().frame_copies;
  w.TransferOnce(8 * kPage);
  std::printf("\n8-page transfer: %llu pages moved by retargeting, %llu frames copied\n",
              (unsigned long long)(pvm->detail_stats().move_retargets - moves_before),
              (unsigned long long)(w.world.memory->stats().frame_copies - copies_before));

  std::printf("\nShape checks:\n");
  ShapeCheck check;
  check.Expect(pvm->detail_stats().move_retargets - moves_before >= 8,
              "receive retargets real pages instead of copying (move semantics)");
  check.Expect(transit_large < bcopy_large * 1.5,
              "transit-segment path at least competitive with double bcopy at 64KB");
  std::printf("\n");
  if (check.failed != 0) {
    std::exit(1);
  }
}

void BM_IpcTransfer(::benchmark::State& state) {
  IpcWorld w = IpcWorld::Make();
  size_t bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    w.TransferOnce(bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_IpcTransfer)->Arg(kPage)->Arg(4 * kPage)->Arg(8 * kPage)
    ->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Run();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
