// Figure 2 — "PVM data structures".
//
// The figure shows: the global list of context descriptors; per-context sorted
// region lists; region descriptors pointing at cache descriptors with offsets;
// cache descriptors holding lists of real page descriptors; and the single global
// map hashing page descriptors by (cache, offset).  This binary builds the
// figure's configuration live, dumps the descriptor graph, and validates each
// structural property — including the section 4.1 size-independence claim.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/bench_util.h"

namespace gvm {
namespace bench {
namespace {

void Run() {
  std::printf("==========================================================================\n");
  std::printf("Figure 2: PVM data structures (live reconstruction)\n");
  std::printf("==========================================================================\n");
  World world = World::Make(MmKind::kPvm, 512);
  auto* pvm = static_cast<PagedVm*>(world.mm.get());

  // Two contexts; context 1 has two regions mapping two caches (the second region
  // windows into the middle of its segment), context 2 shares cache B.
  Context* ctx1 = world.context;
  Context* ctx2 = *world.mm->ContextCreate();
  Cache* cache_a = *world.mm->CacheCreate(nullptr, "cacheA");
  Cache* cache_b = *world.mm->CacheCreate(nullptr, "cacheB");
  Region* r1 = *world.mm->RegionCreate(*ctx1, 0x10000, 4 * kPage, Prot::kReadWrite,
                                       *cache_a, 0);
  Region* r2 = *world.mm->RegionCreate(*ctx1, 0x40000, 2 * kPage, Prot::kReadWrite,
                                       *cache_b, 2 * kPage);
  Region* r3 = *world.mm->RegionCreate(*ctx2, 0x90000, 4 * kPage, Prot::kRead, *cache_b, 0);
  (void)r1;
  (void)r3;

  // Touch some pages so the caches hold real page descriptors.
  AsId as1 = ctx1->address_space();
  uint64_t v = 1;
  (void)world.mm->cpu().Write(as1, 0x10000, &v, sizeof(v));           // cacheA page 0
  (void)world.mm->cpu().Write(as1, 0x10000 + 2 * kPage, &v, sizeof(v));  // cacheA page 2
  (void)world.mm->cpu().Write(as1, 0x40000, &v, sizeof(v));           // cacheB page 2 (window!)

  ShapeCheck check;

  // Context descriptors hold sorted region lists.
  auto regions1 = ctx1->GetRegionList();
  check.Expect(regions1.size() == 2 && regions1[0].address < regions1[1].address,
              "context descriptor holds its regions sorted by start address");
  std::printf("\ncontext 1 regions:\n");
  for (const RegionStatus& status : regions1) {
    std::printf("  region @0x%llx +%llu -> cache '%s' offset %llu prot %s\n",
                (unsigned long long)status.address, (unsigned long long)status.size,
                status.cache->name().c_str(), (unsigned long long)status.offset,
                ProtName(status.protection).c_str());
  }

  // Region descriptors hold start/size/prot + cache pointer and offset; two
  // regions may refer to the same cache descriptor.
  RegionStatus status2 = r2->GetStatus();
  check.Expect(status2.cache == cache_b && status2.offset == 2 * kPage,
              "region descriptor: cache pointer plus start offset in the segment");
  check.Expect(r3->GetStatus().cache == cache_b,
              "two different regions may refer to the same cache descriptor");

  // Cache descriptors hold the list of currently cached real pages.
  check.Expect(cache_a->ResidentPages() == 2, "cacheA holds exactly its two touched pages");
  check.Expect(cache_b->ResidentPages() == 1, "cacheB holds exactly its one touched page");

  // The global map finds pages by (cache, offset); faults on present pages are
  // recovered without new frames.
  size_t used = world.memory->used_frames();
  uint64_t got = 0;
  AsId as2 = ctx2->address_space();
  (void)world.mm->cpu().Read(as2, 0x90000 + 2 * kPage, &got, sizeof(got));
  check.Expect(got == 1 && world.memory->used_frames() == used,
              "global map lookup recovers a resident page without allocating");
  check.Expect(pvm->GlobalMapEntries() == 3, "one global-map entry per resident page");

  // Size-independence (section 4.1): an enormous sparse region costs nothing
  // until touched.
  const uint64_t kTiB = 1ull << 40;
  Cache* big = *world.mm->CacheCreate(nullptr, "huge");
  size_t entries = pvm->GlobalMapEntries();
  Region* huge = *world.mm->RegionCreate(*ctx1, 0x100000000ull, kTiB, Prot::kReadWrite,
                                         *big, 0);
  check.Expect(pvm->GlobalMapEntries() == entries && world.memory->used_frames() == used,
              "a 1 TiB sparse region allocates no descriptors and no frames");
  (void)world.mm->cpu().Write(as1, 0x100000000ull + (kTiB / 2), &v, sizeof(v));
  check.Expect(pvm->GlobalMapEntries() == entries + 1,
              "touching one page of it costs exactly one page descriptor");
  check.Expect(huge->Destroy() == Status::kOk && pvm->CheckInvariants() == Status::kOk,
              "destroying the sparse region is O(resident) and leaves a valid state");

  std::printf("\nFigure 2 assertions: %d passed, %d failed\n\n", check.passed, check.failed);
  if (check.failed != 0) {
    std::exit(1);
  }
}

void BM_GlobalMapLookupFault(::benchmark::State& state) {
  // The fault path of section 4.1.2 on a resident page: region lookup + global
  // map hit + MMU map.
  World world = World::Make(MmKind::kPvm);
  Cache* cache = *world.mm->CacheCreate(nullptr, "bench");
  Region* region = *world.mm->RegionCreate(*world.context, 0x10000, 64 * kPage,
                                           Prot::kReadWrite, *cache, 0);
  (void)region;
  AsId as = world.context->address_space();
  uint64_t v = 1;
  for (int i = 0; i < 64; ++i) {
    (void)world.mm->cpu().Write(as, 0x10000 + i * kPage, &v, sizeof(v));
  }
  int i = 0;
  for (auto _ : state) {
    // Unmap one page in the MMU so the next access faults and is recovered from
    // the global map.
    Vaddr va = 0x10000 + (i++ % 64) * kPage;
    (void)world.mmu->Unmap(as, va);
    uint64_t got = 0;
    (void)world.mm->cpu().Read(as, va, &got, sizeof(got));
    ::benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_GlobalMapLookupFault)->Unit(::benchmark::kNanosecond);

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Run();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
