// Sequential-touch translation-reach benchmark for transparent huge pages
// (DESIGN.md §16).
//
// The TLB holds 64 sets x 4 ways = 256 entries; at the 8 KB bench page that is
// 2 MB of base-granule reach.  A sequential walk over an 8 MB working set
// (1024 base pages, 16 x 512 KB huge spans) therefore misses on essentially
// every page at base granule — the classic capacity wall transparent large
// pages exist to fix.  With fault-time promotion on, the same working set is
// covered by 16 wide entries and the re-touch passes run out of the TLB.
//
// The A/B runs the identical workload with `Options::transparent_huge` off and
// on (same MMU, same TLB, same frame budget) and reports *TLB misses per page
// fault*: faults are the same in both variants (one zero-fill per page), so
// the ratio isolates translation-reach.  The committed JSON carries both
// variants; the CI gate asserts on <= 0.7x off (ISSUE: >= 30% fewer misses
// per fault with promotion on).
#include <cstdio>

#include "bench/bench_util.h"

namespace gvm {
namespace bench {
namespace {

constexpr Vaddr kBase = 0x40000000;
constexpr size_t kRegionBytes = 8u << 20;  // 4x the 2 MB base-granule TLB reach
constexpr int kTouchPasses = 8;

struct Variant {
  uint64_t faults = 0;
  uint64_t tlb_misses = 0;
  uint64_t tlb_hits = 0;
  uint64_t tlb_huge_hits = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  double touch_ns_per_page = 0;

  double MissesPerFault() const {
    return faults > 0 ? static_cast<double>(tlb_misses) / static_cast<double>(faults) : 0;
  }
};

Variant Run(bool huge) {
  // 8 MB working set = 1024 frames; leave room for promotion's contiguous
  // destination runs plus manager slack.
  World world = World::Make(MmKind::kPvm, 4096, huge);
  auto* pvm = dynamic_cast<PagedVm*>(world.mm.get());
  Cache* cache = *world.mm->CacheCreate(nullptr, "touch");
  Region* region = *world.mm->RegionCreate(*world.context, kBase, kRegionBytes,
                                           Prot::kReadWrite, *cache, 0);
  AsId as = world.context->address_space();
  const size_t pages = kRegionBytes / kPage;

  // Populate: one write per page, sequential.  Every page takes exactly one
  // zero-fill fault; with promotion on, each 512 KB span collapses to a wide
  // translation when its last base page materializes.
  for (size_t p = 0; p < pages; ++p) {
    uint64_t value = p;
    (void)world.mm->cpu().Write(as, kBase + p * kPage, &value, sizeof(value));
  }
  // Re-touch: sequential read walks over the whole set.  No faults — this is
  // the pure translation load the wide entries are meant to absorb.
  double ns = TimeNs(
      [&] {
        for (int pass = 0; pass < kTouchPasses; ++pass) {
          for (size_t p = 0; p < pages; ++p) {
            uint64_t value;
            (void)world.mm->cpu().Read(as, kBase + p * kPage, &value, sizeof(value));
          }
        }
      },
      4, 0.02);

  Variant v;
  const Cpu::Stats cs = world.mm->cpu().SnapshotStats();
  v.faults = cs.faults_taken;
  v.tlb_misses = cs.tlb_misses;
  v.tlb_hits = cs.tlb_hits;
  v.tlb_huge_hits = cs.tlb_huge_hits;
  if (pvm != nullptr) {
    v.promotions = pvm->detail_stats().promotions;
    v.demotions = pvm->detail_stats().demotions;
  }
  v.touch_ns_per_page = ns / static_cast<double>(kTouchPasses * pages);
  (void)region->Destroy();
  (void)cache->Destroy();
  return v;
}

int RunAll() {
  std::printf("==========================================================================\n");
  std::printf("huge_touch: sequential touch vs base-granule TLB reach\n");
  std::printf("==========================================================================\n");
  std::printf("region=%zu KB  pages=%zu  tlb_reach=%zu KB  passes=%d\n\n",
              kRegionBytes / 1024, kRegionBytes / kPage,
              TlbMmu::kSets * TlbMmu::kWays * kPage / 1024, kTouchPasses);

  Variant off = Run(false);
  Variant on = Run(true);

  auto print = [](const char* tag, const Variant& v) {
    std::printf("%s: faults=%llu tlb_misses=%llu tlb_hits=%llu huge_hits=%llu "
                "promotions=%llu demotions=%llu\n"
                "     misses/fault=%.2f  touch=%.0f ns/page\n",
                tag, static_cast<unsigned long long>(v.faults),
                static_cast<unsigned long long>(v.tlb_misses),
                static_cast<unsigned long long>(v.tlb_hits),
                static_cast<unsigned long long>(v.tlb_huge_hits),
                static_cast<unsigned long long>(v.promotions),
                static_cast<unsigned long long>(v.demotions), v.MissesPerFault(),
                v.touch_ns_per_page);
  };
  print("huge=off", off);
  print("huge=on ", on);

  const double ratio =
      off.MissesPerFault() > 0 ? on.MissesPerFault() / off.MissesPerFault() : 1.0;
  std::printf("\nmisses-per-fault ratio (on/off) = %.3f\n\n", ratio);

  std::printf("Shape checks:\n");
  ShapeCheck check;
  const size_t spans = kRegionBytes / (64 * kPage);
  check.Expect(on.promotions >= spans,
               "promotion on: every fully-touched 512KB span promoted");
  check.Expect(on.tlb_huge_hits > 0, "promotion on: wide entries actually serve hits");
  check.Expect(off.promotions == 0 && off.tlb_huge_hits == 0,
               "promotion off: no wide translations appear");
  check.Expect(ratio <= 0.7,
               "promotion cuts TLB misses per fault by >= 30% on the sequential walk");

  BenchJson json("huge_touch");
  json.Config("region_kb", static_cast<uint64_t>(kRegionBytes / 1024));
  json.Config("touch_passes", static_cast<uint64_t>(kTouchPasses));
  json.Config("tlb_entries", static_cast<uint64_t>(TlbMmu::kSets * TlbMmu::kWays));
  json.Config("base_page_size", static_cast<uint64_t>(kPage));
  json.Config("huge_page_size", static_cast<uint64_t>(64 * kPage));
  json.SetThroughput(on.touch_ns_per_page > 0 ? 1e9 / on.touch_ns_per_page : 0);
  json.SetLatency(on.touch_ns_per_page, off.touch_ns_per_page);
  // Both variants, flat counters: the CI gate reads misses_per_fault_milli.*
  // and asserts on <= 0.7x off.
  json.Counter("faults.off", off.faults);
  json.Counter("faults.on", on.faults);
  json.Counter("tlb_misses.off", off.tlb_misses);
  json.Counter("tlb_misses.on", on.tlb_misses);
  json.Counter("tlb_hits.off", off.tlb_hits);
  json.Counter("tlb_hits.on", on.tlb_hits);
  json.Counter("tlb_huge_hits.on", on.tlb_huge_hits);
  json.Counter("promotions.on", on.promotions);
  json.Counter("demotions.on", on.demotions);
  json.Counter("misses_per_fault_milli.off",
               static_cast<uint64_t>(off.MissesPerFault() * 1000));
  json.Counter("misses_per_fault_milli.on",
               static_cast<uint64_t>(on.MissesPerFault() * 1000));
  json.Counter("ratio_milli", static_cast<uint64_t>(ratio * 1000));
  json.WriteFile();

  return check.failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main() { return gvm::bench::RunAll(); }
