// pageout_throughput — steady-state eviction bandwidth of the working-set
// paging daemon, and the soft-fault ratio its standby queue buys.
//
// N worker threads, each with its own context and an anonymous working set,
// run a random read/write mix over a frame pool deliberately sized at a
// fraction of the total commit.  The paging daemon (plus the per-thread
// working-set limit) must continuously trim, batch dirty pages into multi-page
// pushOut writes, and park clean pages on the standby queue; workers re-fault
// pages the daemon evicted, and every standby hit is a soft fault that skips
// mapper I/O entirely.
//
// Reported:
//   - eviction bandwidth: pages pushed out per second of steady state
//   - soft-fault ratio:   soft_faults / (soft_faults + pull_ins) — how often a
//                         re-fault was satisfied from standby instead of swap
//   - op throughput and per-op latency of the worker mix under that churn
//
// Emits BENCH_pageout_throughput.json.
//
// Usage: pageout_throughput [--threads=4] [--pages=64] [--wslimit=24]
//                           [--overcommit=2] [--seconds=1.0] [--seed=1]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/hal/phys_memory.h"
#include "src/hal/soft_mmu.h"
#include "src/pvm/paged_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace bench {
namespace {

constexpr size_t kPageSize = 4096;
constexpr Vaddr kWorkBase = 0x10000000;
constexpr int kBatch = 64;  // ops timed per latency sample

struct Config {
  int threads = 4;
  size_t pages = 64;     // committed pages per thread
  size_t wslimit = 24;   // per-space working-set limit (feeds the queues)
  double overcommit = 2.0;  // commit / physical ratio
  double seconds = 1.0;
  uint64_t seed = 1;
};

struct WorkerResult {
  uint64_t ops = 0;
  uint64_t errors = 0;
  std::vector<double> samples_ns;
};

uint64_t NextRand(uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

void Worker(int tid, PagedVm& vm, Context& ctx, const Config& cfg, std::atomic<int>& ready,
            std::atomic<bool>& go, std::atomic<bool>& stop, WorkerResult& result) {
  using Clock = std::chrono::steady_clock;
  AsId as = ctx.address_space();
  uint64_t rng = cfg.seed * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(tid) + 1;
  // Materialize once before the clock starts; under overcommit this already
  // drives the daemon, so failures here are real errors, not setup noise.
  for (size_t p = 0; p < cfg.pages; ++p) {
    uint64_t value = p;
    if (vm.cpu().Write(as, kWorkBase + p * kPageSize, &value, sizeof(value)) != Status::kOk) {
      ++result.errors;
    }
  }
  ready.fetch_add(1, std::memory_order_release);
  while (!go.load(std::memory_order_acquire) && !stop.load(std::memory_order_relaxed)) {
    std::this_thread::yield();
  }
  while (!stop.load(std::memory_order_relaxed)) {
    auto start = Clock::now();
    for (int b = 0; b < kBatch; ++b) {
      const uint64_t r = NextRand(rng);
      const size_t page = (r >> 8) % cfg.pages;
      const Vaddr va = kWorkBase + page * kPageSize + ((r >> 40) & (kPageSize - 8));
      Status s;
      if ((r & 7) < 5) {  // 62% reads, 38% writes
        uint64_t value;
        s = vm.cpu().Read(as, va, &value, sizeof(value));
      } else {
        uint64_t value = r;
        s = vm.cpu().Write(as, va, &value, sizeof(value));
      }
      if (s != Status::kOk) {
        ++result.errors;
      }
    }
    auto end = Clock::now();
    result.ops += kBatch;
    if (result.samples_ns.size() < 50000) {
      result.samples_ns.push_back(
          std::chrono::duration<double, std::nano>(end - start).count() / kBatch);
    }
  }
}

int Run(const Config& cfg) {
  const size_t committed = static_cast<size_t>(cfg.threads) * cfg.pages;
  // Physical frames = commit / overcommit, with a small floor so the daemon's
  // water marks and the emergency reserve fit.
  size_t frames = static_cast<size_t>(static_cast<double>(committed) / cfg.overcommit);
  if (frames < 24) {
    frames = 24;
  }
  PhysicalMemory memory(frames, kPageSize);
  SoftMmu mmu(kPageSize);
  PagedVm::Options options;
  // Generous water marks: the daemon should absorb most of the eviction load
  // ahead of demand, leaving the synchronous sweep as the backstop it is.
  options.low_water_frames = frames / 16 > 4 ? frames / 16 : 4;
  options.high_water_frames = frames / 8 > 8 ? frames / 8 : 8;
  options.pageout_daemon = true;
  options.daemon_wake_frames = options.high_water_frames - 1;
  options.working_set_limit_pages = cfg.wslimit;
  PagedVm vm(memory, mmu, options);
  TestSwapRegistry registry(kPageSize);
  vm.BindSegmentRegistry(&registry);

  std::vector<Context*> contexts;
  std::vector<Cache*> caches;
  for (int t = 0; t < cfg.threads; ++t) {
    Context* ctx = *vm.ContextCreate();
    Cache* cache = *vm.CacheCreate(nullptr, "ws" + std::to_string(t));
    (void)*vm.RegionCreate(*ctx, kWorkBase, cfg.pages * kPageSize, Prot::kReadWrite, *cache, 0);
    contexts.push_back(ctx);
    caches.push_back(cache);
  }

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(static_cast<size_t>(cfg.threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < cfg.threads; ++t) {
    workers.emplace_back(Worker, t, std::ref(vm), std::ref(*contexts[static_cast<size_t>(t)]),
                         std::cref(cfg), std::ref(ready), std::ref(go), std::ref(stop),
                         std::ref(results[static_cast<size_t>(t)]));
  }
  while (ready.load(std::memory_order_acquire) < cfg.threads) {
    std::this_thread::yield();
  }
  // Steady state starts here: snapshot the counters after materialization so
  // the reported bandwidth covers only the measured window.
  const MmStats mm_before = vm.stats();
  const PvmDetailStats detail_before = vm.detail_stats();
  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(cfg.seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& th : workers) {
    th.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const MmStats mm_after = vm.stats();
  const PvmDetailStats detail = vm.detail_stats();
  vm.StopPageoutDaemon();

  uint64_t ops = 0;
  uint64_t errors = 0;
  std::vector<double> samples;
  for (const WorkerResult& r : results) {
    ops += r.ops;
    errors += r.errors;
    samples.insert(samples.end(), r.samples_ns.begin(), r.samples_ns.end());
  }
  const double ops_per_sec = static_cast<double>(ops) / elapsed;
  const double p50 = Percentile(samples, 0.5);
  const double p99 = Percentile(samples, 0.99);

  const uint64_t pushed = mm_after.push_outs - mm_before.push_outs;
  const uint64_t evicted = mm_after.pages_paged_out - mm_before.pages_paged_out;
  const uint64_t pulled = mm_after.pull_ins - mm_before.pull_ins;
  const uint64_t soft = detail.soft_faults - detail_before.soft_faults;
  const double evict_pages_per_sec = static_cast<double>(evicted) / elapsed;
  const double soft_ratio =
      soft + pulled > 0 ? static_cast<double>(soft) / static_cast<double>(soft + pulled) : 0.0;

  std::printf("pageout_throughput: threads=%d pages=%zu wslimit=%zu frames=%zu "
              "(%.1fx overcommit)\n",
              cfg.threads, cfg.pages, cfg.wslimit, frames,
              static_cast<double>(committed) / static_cast<double>(frames));
  std::printf("  ops=%llu (%.0f ops/sec)  p50=%s p99=%s  errors=%llu\n",
              static_cast<unsigned long long>(ops), ops_per_sec, FormatNs(p50).c_str(),
              FormatNs(p99).c_str(), static_cast<unsigned long long>(errors));
  std::printf("  evicted=%llu pages (%.0f pages/sec, %.2f MB/s)  pushes=%llu "
              "batches=%llu batch_pages=%llu\n",
              static_cast<unsigned long long>(evicted), evict_pages_per_sec,
              evict_pages_per_sec * static_cast<double>(kPageSize) / 1e6,
              static_cast<unsigned long long>(pushed),
              static_cast<unsigned long long>(detail.batch_pushes - detail_before.batch_pushes),
              static_cast<unsigned long long>(detail.batch_push_pages -
                                              detail_before.batch_push_pages));
  std::printf("  refaults: soft=%llu hard(pull_ins)=%llu  soft_ratio=%.3f  "
              "standby_hits=%llu ws_trims=%llu daemon_passes=%llu\n",
              static_cast<unsigned long long>(soft), static_cast<unsigned long long>(pulled),
              soft_ratio,
              static_cast<unsigned long long>(detail.standby_hits - detail_before.standby_hits),
              static_cast<unsigned long long>(detail.ws_trims - detail_before.ws_trims),
              static_cast<unsigned long long>(detail.daemon_passes -
                                              detail_before.daemon_passes));

  BenchJson json("pageout_throughput");
  json.Config("threads", static_cast<uint64_t>(cfg.threads));
  json.Config("pages_per_thread", static_cast<uint64_t>(cfg.pages));
  json.Config("working_set_limit", static_cast<uint64_t>(cfg.wslimit));
  json.Config("frames", static_cast<uint64_t>(frames));
  json.Config("overcommit_pct", static_cast<uint64_t>(
                                    static_cast<double>(committed) * 100.0 /
                                    static_cast<double>(frames)));
  json.Config("seconds", static_cast<uint64_t>(cfg.seconds * 1000));  // milliseconds
  json.Config("seed", cfg.seed);
  json.Config("page_size", static_cast<uint64_t>(kPageSize));
  RecordPageSizes(json, vm);
  json.SetThroughput(ops_per_sec);
  json.SetLatency(p50, p99);
  json.Counter("ops", ops);
  json.Counter("op_errors", errors);
  json.Counter("evicted_pages", evicted);
  json.Counter("evict_pages_per_sec", static_cast<uint64_t>(evict_pages_per_sec));
  json.Counter("push_outs", pushed);
  json.Counter("batch_pushes", detail.batch_pushes - detail_before.batch_pushes);
  json.Counter("batch_push_pages", detail.batch_push_pages - detail_before.batch_push_pages);
  json.Counter("soft_faults", soft);
  json.Counter("pull_ins", pulled);
  json.Counter("soft_fault_ratio_bp", static_cast<uint64_t>(soft_ratio * 10000));
  json.Counter("standby_hits", detail.standby_hits - detail_before.standby_hits);
  json.Counter("ws_trims", detail.ws_trims - detail_before.ws_trims);
  json.Counter("daemon_wakeups", detail.daemon_wakeups - detail_before.daemon_wakeups);
  json.Counter("daemon_passes", detail.daemon_passes - detail_before.daemon_passes);
  json.Counter("frames_reclaimed_daemon",
               detail.frames_reclaimed_daemon - detail_before.frames_reclaimed_daemon);
  json.Counter("sweeps_started", detail.sweeps_started - detail_before.sweeps_started);
  json.Counter("sweep_waits", detail.sweep_waits - detail_before.sweep_waits);
  json.Counter("reserve_grants", memory.stats().reserve_grants);
  json.WriteFile();

  for (int t = 0; t < cfg.threads; ++t) {
    (void)caches[static_cast<size_t>(t)]->Destroy();
    (void)contexts[static_cast<size_t>(t)]->Destroy();
  }
  if (vm.CheckInvariants() != Status::kOk) {
    std::fprintf(stderr, "pageout_throughput: invariants broken after run\n");
    return 2;
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--threads=", 0) == 0) {
      cfg.threads = std::stoi(value());
    } else if (arg.rfind("--pages=", 0) == 0) {
      cfg.pages = std::stoul(value());
    } else if (arg.rfind("--wslimit=", 0) == 0) {
      cfg.wslimit = std::stoul(value());
    } else if (arg.rfind("--overcommit=", 0) == 0) {
      cfg.overcommit = std::stod(value());
    } else if (arg.rfind("--seconds=", 0) == 0) {
      cfg.seconds = std::stod(value());
    } else if (arg.rfind("--seed=", 0) == 0) {
      cfg.seed = std::stoull(value());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  return gvm::bench::Run(cfg);
}
