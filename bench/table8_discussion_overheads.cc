// Section 5.3.2 ("Discussion") — the paper's derived overheads, computed with the
// paper's own formulas over our measurements:
//
//   * history-tree management overhead of a deferred copy  (paper: ~0.03 ms,
//     "10% of a simple region creation cost")
//   * per-page protection cost at copy time                 (paper: ~0.02 ms)
//   * copy-on-write overhead per page                       (paper: 0.31 ms)
//   * simple on-demand page allocation                      (paper: 0.27 ms)
//   * history-tree usage overhead vs plain demand-zero      (paper: "of the order
//     of 10%")
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gvm {
namespace bench {
namespace {

constexpr Vaddr kSrcBase = 0x40000000;
constexpr Vaddr kCopyBase = 0x80000000;

struct Measurements {
  double bcopy_page_ns = 0;   // real copy of one 8 KB page
  double bzero_page_ns = 0;   // zero-fill of one 8 KB page
  double create_0_ns = 0;     // create/destroy 1-page region, touch 0  (Table 6)
  double create128_0_ns = 0;  // create/destroy 128-page region, touch 0
  double zfill128_ns = 0;     // create/destroy 128-page region, touch 128
  double cow_0_of_128_ns = 0; // deferred copy of 128-page region, 0 forced
  double cow_1_of_1_ns = 0;   // deferred copy of 1-page region, 0 forced
  double cow128_ns = 0;       // deferred copy + 128 forced copies
};

Measurements Measure() {
  Measurements m;
  {
    PhysicalMemory memory(4, kPage);
    FrameIndex a = *memory.AllocateFrame();
    FrameIndex b = *memory.AllocateFrame();
    m.bcopy_page_ns = TimeNs([&] { memory.CopyFrame(b, a); });
    m.bzero_page_ns = TimeNs([&] { memory.ZeroFrame(a); });
  }
  auto zero_fill = [&](size_t pages, size_t touch) {
    World world = World::Make(MmKind::kPvm);
    return TimeNs([&] {
      Cache* cache = *world.mm->CacheCreate(nullptr, "bench");
      Region* region = *world.mm->RegionCreate(*world.context, kSrcBase, pages * kPage,
                                               Prot::kReadWrite, *cache, 0);
      AsId as = world.context->address_space();
      for (size_t i = 0; i < touch; ++i) {
        uint64_t v = i;
        (void)world.mm->cpu().Write(as, kSrcBase + i * kPage, &v, sizeof(v));
      }
      (void)region->Destroy();
      (void)cache->Destroy();
    });
  };
  m.create_0_ns = zero_fill(1, 0);
  m.create128_0_ns = zero_fill(128, 0);
  m.zfill128_ns = zero_fill(128, 128);

  auto cow = [&](size_t pages, size_t force) {
    World world = World::Make(MmKind::kPvm);
    Cache* src_cache = *world.mm->CacheCreate(nullptr, "src");
    Region* src_region = *world.mm->RegionCreate(*world.context, kSrcBase, pages * kPage,
                                                 Prot::kReadWrite, *src_cache, 0);
    (void)src_region;
    AsId as = world.context->address_space();
    for (size_t i = 0; i < pages; ++i) {
      uint64_t v = i;
      (void)world.mm->cpu().Write(as, kSrcBase + i * kPage, &v, sizeof(v));
    }
    return TimeNs([&] {
      Cache* copy = *world.mm->CacheCreate(nullptr, "cpy");
      (void)src_cache->CopyTo(*copy, 0, 0, pages * kPage, CopyPolicy::kHistory);
      Region* copy_region = *world.mm->RegionCreate(*world.context, kCopyBase, pages * kPage,
                                                    Prot::kReadWrite, *copy, 0);
      for (size_t i = 0; i < force; ++i) {
        uint64_t v = i;
        (void)world.mm->cpu().Write(as, kSrcBase + i * kPage, &v, sizeof(v));
      }
      (void)copy_region->Destroy();
      (void)copy->Destroy();
    });
  };
  m.cow_1_of_1_ns = cow(1, 0);
  m.cow_0_of_128_ns = cow(128, 0);
  m.cow128_ns = cow(128, 128);
  return m;
}

void Run() {
  std::printf("==========================================================================\n");
  std::printf("Section 5.3.2: derived overheads (the paper's formulas, our measurements)\n");
  std::printf("==========================================================================\n");
  Measurements m = Measure();

  // Paper: per-page protection overhead = (cow(128 pages, 0 forced) - cow(1 page,
  // 0 forced)) / 127.
  double per_page_protect = (m.cow_0_of_128_ns - m.cow_1_of_1_ns) / 127;
  // Paper: tree management overhead = cow(1 page, 0 forced) - create(1 page,
  // 0 touched) - per-page overhead.
  double tree_overhead = m.cow_1_of_1_ns - m.create_0_ns - per_page_protect;
  // Paper: COW overhead per page = (cow(128,128) - cow(128,0))/128 - bcopy.
  double cow_per_page =
      (m.cow128_ns - m.cow_0_of_128_ns) / 128 - m.bcopy_page_ns;
  // Paper: on-demand allocation = (zfill(128,128) - create(128,0))/128 - bzero.
  double demand_alloc =
      (m.zfill128_ns - m.create128_0_ns) / 128 - m.bzero_page_ns;

  std::printf("\n%-46s %14s %14s\n", "quantity (paper formula)", "measured", "paper");
  std::printf("%-46s %14s %14s\n", "bcopy of one 8KB page", FormatNs(m.bcopy_page_ns).c_str(),
              "1.4 ms");
  std::printf("%-46s %14s %14s\n", "bzero of one 8KB page", FormatNs(m.bzero_page_ns).c_str(),
              "0.87 ms");
  std::printf("%-46s %14s %14s\n", "1-page region create/destroy",
              FormatNs(m.create_0_ns).c_str(), "0.35 ms");
  std::printf("%-46s %14s %14s\n", "history-tree management per deferred copy",
              FormatNs(tree_overhead).c_str(), "0.03 ms");
  std::printf("%-46s %14s %14s\n", "per-page protection at copy time",
              FormatNs(per_page_protect).c_str(), "0.02 ms");
  std::printf("%-46s %14s %14s\n", "copy-on-write overhead per page (excl. bcopy)",
              FormatNs(cow_per_page).c_str(), "0.31 ms");
  std::printf("%-46s %14s %14s\n", "simple on-demand page allocation (excl. bzero)",
              FormatNs(demand_alloc).c_str(), "0.27 ms");

  std::printf("\nShape checks:\n");
  ShapeCheck check;
  // "The structural management overhead of a simple deferred copy initialization
  // is of the order of ... 10% of a simple region creation cost" — the key claim
  // is that tree setup is CHEAP relative to region creation.
  check.Expect(tree_overhead < m.create_0_ns * 2,
              "history-tree setup costs no more than ~a region create (paper: ~10% of "
              "one; our region create is itself far cheaper relative to a 1989 kernel's)");
  // "The overhead of the history tree using may be deduced by comparing [COW
  // per-page] with the cost of a simple on-demand page allocation ... the overhead
  // is of the order of 10%" — i.e. the two per-page costs are of the same order.
  check.Expect(cow_per_page < demand_alloc * 4 && demand_alloc < cow_per_page * 8,
              "per-page COW overhead is the same order as plain demand-zero (paper: +10%)");
  // Per-page protection is much cheaper than a page copy.
  check.Expect(per_page_protect < m.bcopy_page_ns * 2,
              "write-protecting a page is not more expensive than copying it");
  std::printf("\n");
}

void BM_DeferredCopySetup(::benchmark::State& state) {
  size_t pages = static_cast<size_t>(state.range(0));
  World world = World::Make(MmKind::kPvm);
  Cache* src = *world.mm->CacheCreate(nullptr, "src");
  AsId as = world.context->address_space();
  Region* region = *world.mm->RegionCreate(*world.context, kSrcBase, pages * kPage,
                                           Prot::kReadWrite, *src, 0);
  (void)region;
  for (size_t i = 0; i < pages; ++i) {
    uint64_t v = i;
    (void)world.mm->cpu().Write(as, kSrcBase + i * kPage, &v, sizeof(v));
  }
  for (auto _ : state) {
    Cache* copy = *world.mm->CacheCreate(nullptr, "cpy");
    (void)src->CopyTo(*copy, 0, 0, pages * kPage, CopyPolicy::kHistory);
    (void)copy->Destroy();
  }
  state.SetLabel("deferred copy setup only");
}
BENCHMARK(BM_DeferredCopySetup)->Arg(1)->Arg(32)->Arg(128)->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Run();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
