// Table 5 — "Chorus Memory Management Components Sizes".
//
// The paper reports lines of C++ per component, split into the machine-
// independent part (Nucleus MM part + PVM machine-independent, 3700 lines total)
// and the (small) MMU-dependent parts (790–1120 lines per port).  Its claim: the
// machine-dependent layer is a small fraction, which is what makes ports cheap
// ("about one man-month of work to port to a new MMU").
//
// We regenerate the same table over this repository: per-component line counts,
// with the MMU models playing the role of the machine-dependent parts.  The shape
// check asserts the paper's claim — each MMU model is a small fraction of the
// machine-independent whole.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

#ifndef GVM_SOURCE_DIR
#define GVM_SOURCE_DIR "."
#endif

namespace gvm {
namespace bench {
namespace {

namespace fs = std::filesystem;

struct Component {
  std::string label;
  std::vector<std::string> paths;  // relative to the source root
};

size_t CountLines(const fs::path& file) {
  std::ifstream in(file);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  return lines;
}

size_t ComponentLines(const Component& component) {
  size_t total = 0;
  for (const std::string& rel : component.paths) {
    fs::path path = fs::path(GVM_SOURCE_DIR) / rel;
    if (fs::is_regular_file(path)) {
      total += CountLines(path);
      continue;
    }
    if (!fs::is_directory(path)) {
      continue;
    }
    for (const auto& entry : fs::directory_iterator(path)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      auto ext = entry.path().extension();
      if (ext == ".h" || ext == ".cc") {
        total += CountLines(entry.path());
      }
    }
  }
  return total;
}

void Run() {
  std::printf("==========================================================================\n");
  std::printf("Table 5: memory management component sizes\n");
  std::printf("==========================================================================\n");
  std::printf(
      "Paper (lines of C++, including headers and comments):\n"
      "  Machine-independent:  Nucleus MM part 1820, PVM machine-independent 1980\n"
      "                        -> total 3700\n"
      "  MMU-dependent ports:  Sun 790, PMMU 1120, iAPX 386 980\n\n");

  std::vector<Component> independent = {
      {"GMI (generic interface)", {"src/gmi"}},
      {"MM common (contexts/regions)", {"src/vmbase"}},
      {"PVM: machine-independent", {"src/pvm"}},
      {"Nucleus MM part", {"src/nucleus"}},
  };
  std::vector<Component> dependent = {
      {"MMU model: SoftMmu (two-level)", {"src/hal/soft_mmu.h", "src/hal/soft_mmu.cc"}},
      {"MMU model: HashMmu (inverted)", {"src/hal/hash_mmu.h", "src/hal/hash_mmu.cc"}},
  };
  std::vector<Component> other = {
      {"Mach-style baseline (shadow)", {"src/shadow"}},
      {"Minimal real-time MM", {"src/minimal"}},
      {"Chorus/MIX (Unix layer)", {"src/mix"}},
      {"Distributed shared memory", {"src/dsm"}},
      {"Hardware substrate (rest of hal)",
       {"src/hal/phys_memory.h", "src/hal/phys_memory.cc", "src/hal/cpu.h", "src/hal/cpu.cc",
        "src/hal/mmu.h", "src/hal/types.h", "src/hal/types.cc"}},
  };

  size_t independent_total = 0;
  std::printf("This repository (lines of C++, including headers and comments):\n");
  std::printf("  Machine-independent part:\n");
  for (const Component& component : independent) {
    size_t lines = ComponentLines(component);
    independent_total += lines;
    std::printf("    %-38s %6zu lines\n", component.label.c_str(), lines);
  }
  std::printf("    %-38s %6zu lines\n", "total", independent_total);
  std::printf("  MMU-dependent part (one per 'port'):\n");
  std::vector<size_t> dependent_lines;
  for (const Component& component : dependent) {
    size_t lines = ComponentLines(component);
    dependent_lines.push_back(lines);
    std::printf("    %-38s %6zu lines\n", component.label.c_str(), lines);
  }
  std::printf("  Other subsystems (beyond the paper's table):\n");
  for (const Component& component : other) {
    size_t lines = ComponentLines(component);
    std::printf("    %-38s %6zu lines\n", component.label.c_str(), lines);
  }

  std::printf("\nShape checks:\n");
  ShapeCheck check;
  for (size_t i = 0; i < dependent.size(); ++i) {
    // Paper ratio: ~790-1120 machine-dependent vs 3700 machine-independent
    // (21%-30%).  Claim: the machine-dependent part is a small fraction.
    check.Expect(dependent_lines[i] * 2 < independent_total,
                (dependent[i].label + " is <50% of the machine-independent part").c_str());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Run();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
