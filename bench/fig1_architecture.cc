// Figure 1 — "Memory Management Architecture".
//
// The figure is a layer diagram: the kernel-dependent layer (system calls, IPC,
// synchronization) above the GMI; a particular memory manager (the PVM) below it;
// segments managed by external servers reached by upcalls.  This binary renders
// the layering of the running system and *validates the layering constraints by
// construction*: it builds a live stack (mapper <- segment manager <- GMI <- MM <-
// MMU) and demonstrates each arrow of the figure with a traced operation.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/bench_util.h"
#include "src/nucleus/nucleus.h"

namespace gvm {
namespace bench {
namespace {

// A tracing mapper: records which upcalls crossed the GMI boundary.
class TracingMapper final : public Mapper {
 public:
  explicit TracingMapper(size_t page_size) : inner_(page_size) {}

  Status Read(uint64_t key, SegOffset offset, size_t size,
              std::vector<std::byte>* out) override {
    ++pull_ins;
    return inner_.Read(key, offset, size, out);
  }
  Status Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) override {
    ++push_outs;
    return inner_.Write(key, offset, data, size);
  }
  Result<uint64_t> AllocateTemporary(size_t hint) override {
    ++segment_creates;
    return inner_.AllocateTemporary(hint);
  }

  int pull_ins = 0;
  int push_outs = 0;
  int segment_creates = 0;

 private:
  SwapMapper inner_;
};

void Run() {
  std::printf("==========================================================================\n");
  std::printf("Figure 1: memory management architecture (live layering demonstration)\n");
  std::printf("==========================================================================\n");
  std::printf(
      "\n"
      "      +--------------------------------------------------+\n"
      "      |  kernel-dependent layer: Nucleus (actors, IPC,   |\n"
      "      |  segment manager, rgn* operations)               |\n"
      "      +-------------------------+------------------------+\n"
      "          downcalls (Tables 1,2,4) |   upcalls (Table 3)\n"
      "      ======================== GMI boundary ==============\n"
      "      +-------------------------v------------------------+\n"
      "      |  memory manager below the GMI:  PVM | Shadow |   |\n"
      "      |  Minimal  (replaceable unit)                     |\n"
      "      +-------------------------+------------------------+\n"
      "          hardware-independent PVM interface\n"
      "      +-------------------------v------------------------+\n"
      "      |  machine-dependent layer: SoftMmu | HashMmu      |\n"
      "      +--------------------------------------------------+\n\n");

  // Build the full stack with a PVM below the GMI and a tracing mapper above it.
  PhysicalMemory memory(128, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  Nucleus nucleus(vm);
  TracingMapper mapper(kPage);
  MapperServer server(nucleus.ipc(), mapper);
  nucleus.BindDefaultMapper(&server);

  ShapeCheck check;

  // Arrow 1 (kernel -> GMI downcall): regionCreate through rgnAllocate.
  Actor* actor = *nucleus.ActorCreate("demo");
  Result<Region*> region = actor->RgnAllocate(0x10000, 4 * kPage, Prot::kReadWrite);
  check.Expect(region.ok(), "kernel layer maps memory only through GMI regionCreate");

  // Arrow 2 (hardware -> MM): a fault enters the MM, resolved without any upcall
  // (demand zero needs no segment).
  uint64_t value = 7;
  check.Expect(actor->Write(0x10000, &value, sizeof(value)) == Status::kOk &&
                  mapper.pull_ins == 0,
              "page fault resolved below the GMI (no upcall for demand-zero)");

  // Arrow 3 (MM -> segment manager upcall, Table 3): force a page-out by memory
  // pressure... simpler: explicit cache sync triggers segmentCreate + pushOut.
  RegionStatus status = (*region)->GetStatus();
  check.Expect(status.cache->Sync() == Status::kOk && mapper.push_outs >= 1 &&
                  mapper.segment_creates >= 1,
              "MM saves data via segmentCreate + pushOut upcalls across the GMI");

  // Arrow 4 (segment manager -> MM downcall, Table 4): invalidate, then re-read
  // pulls the data back in through the mapper.
  check.Expect(status.cache->Invalidate(0, kPage) == Status::kOk, "cache.invalidate (Table 4)");
  uint64_t back = 0;
  check.Expect(actor->Read(0x10000, &back, sizeof(back)) == Status::kOk && back == 7 &&
                  mapper.pull_ins >= 1,
              "re-access pulls the page back via the pullIn upcall; data intact");

  // Arrow 5 (replaceability): the identical kernel-layer code runs on the other
  // managers.
  for (MmKind kind : {MmKind::kShadow, MmKind::kMinimal}) {
    World world = World::Make(kind, 128);
    Nucleus other_nucleus(*world.mm);
    SwapMapper other_swap(kPage);
    MapperServer other_server(other_nucleus.ipc(), other_swap);
    other_nucleus.BindDefaultMapper(&other_server);
    Actor* other_actor = *other_nucleus.ActorCreate("demo");
    bool ok = other_actor->RgnAllocate(0x10000, 2 * kPage, Prot::kReadWrite).ok();
    uint64_t v = 9;
    ok = ok && other_actor->Write(0x10000, &v, sizeof(v)) == Status::kOk;
    uint64_t r = 0;
    ok = ok && other_actor->Read(0x10000, &r, sizeof(r)) == Status::kOk && r == 9;
    check.Expect(ok, (std::string("the MM below the GMI is replaceable: ") + MmName(kind))
                        .c_str());
  }

  std::printf("\nFigure 1 assertions: %d passed, %d failed\n\n", check.passed, check.failed);
  if (check.failed != 0) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::Run();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
