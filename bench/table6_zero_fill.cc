// Table 6 — "Performance for zero-filled memory allocation" (paper section 5.3.1).
//
// "The first benchmark program creates a region, accesses some of the data within
// the region in order to demand allocation of filled-zero memory and, finally,
// deallocates the region.  For each region size, the table shows the time elapsed
// for creating the region, allocating and deallocating some real memory, and
// destroying the region, averaged over some large number of iterations."
//
// Run on both the Chorus PVM and the Mach-style shadow baseline, with the paper's
// bcopy/bzero preamble first.  The absolute scale is host-dependent; the shape
// checks at the end assert the paper's qualitative claims.
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/bench_util.h"

namespace gvm {
namespace bench {
namespace {

constexpr Vaddr kBase = 0x40000000;

// One Table 6 trial: create region over a fresh temporary cache, touch N pages
// (demand zero-fill), destroy.
void ZeroFillTrial(World& world, size_t region_bytes, size_t touch_pages) {
  Cache* cache = *world.mm->CacheCreate(nullptr, "bench");
  Region* region =
      *world.mm->RegionCreate(*world.context, kBase, region_bytes, Prot::kReadWrite, *cache, 0);
  AsId as = world.context->address_space();
  for (size_t i = 0; i < touch_pages; ++i) {
    uint64_t value = i;
    (void)world.mm->cpu().Write(as, kBase + i * kPage, &value, sizeof(value));
  }
  (void)region->Destroy();
  (void)cache->Destroy();
}

std::vector<std::vector<double>> MeasureMatrix(MmKind kind, const TableSpec& spec) {
  std::vector<std::vector<double>> cells(spec.region_kb.size(),
                                         std::vector<double>(spec.touched_pages.size(), 0));
  for (size_t r = 0; r < spec.region_kb.size(); ++r) {
    for (size_t c = 0; c < spec.touched_pages.size(); ++c) {
      if (!spec.CellValid(spec.region_kb[r], spec.touched_pages[c])) {
        continue;
      }
      World world = World::Make(kind);
      size_t bytes = spec.region_kb[r] * 1024;
      size_t pages = spec.touched_pages[c];
      cells[r][c] = TimeNs([&] { ZeroFillTrial(world, bytes, pages); });
    }
  }
  return cells;
}

void RunPaperTable() {
  std::printf("==========================================================================\n");
  std::printf("Table 6: zero-filled memory allocation\n");
  std::printf("==========================================================================\n");

  // The paper's preamble: "A copy (Unix bcopy) of 8 Kbytes in real memory ...
  // takes 1.4 ms.  Filling 8 Kbytes of real memory with zeroes (bzero) takes
  // 0.87 ms."  Our equivalents on the simulated frames:
  {
    PhysicalMemory memory(4, kPage);
    FrameIndex a = *memory.AllocateFrame();
    FrameIndex b = *memory.AllocateFrame();
    double bcopy = TimeNs([&] { memory.CopyFrame(b, a); });
    double bzero = TimeNs([&] { memory.ZeroFrame(a); });
    std::printf("preamble: bcopy(8KB) = %s   (paper: 1.4 ms)\n", FormatNs(bcopy).c_str());
    std::printf("preamble: bzero(8KB) = %s   (paper: 0.87 ms)\n\n", FormatNs(bzero).c_str());
  }

  TableSpec spec;
  auto chorus = MeasureMatrix(MmKind::kPvm, spec);
  auto mach = MeasureMatrix(MmKind::kShadow, spec);

  PrintMatrix("Chorus (PVM): zero-filled memory allocation (measured)", spec, chorus);
  std::printf("\n");
  static const double kPaperChorus[3][4] = {{0.350, 1.50, -1, -1},
                                            {0.352, 1.60, 36.6, -1},
                                            {0.390, 1.63, 37.7, 145.9}};
  PrintPaperTable("Chorus: zero-filled memory allocation", kPaperChorus);
  std::printf("\n");
  PrintMatrix("Mach (shadow objects): zero-filled memory allocation (measured)", spec, mach);
  std::printf("\n");
  static const double kPaperMach[3][4] = {{1.57, 3.12, -1, -1},
                                          {1.81, 3.19, 46.8, -1},
                                          {1.89, 3.26, 47.0, 180.8}};
  PrintPaperTable("Mach: zero-filled memory allocation", kPaperMach);

  std::printf("\nShape checks (the paper's qualitative claims):\n");
  ShapeCheck check;
  // 1. "the cost of creating and destroying a region is practically independent of
  //    its size" — paper: 0.350 vs 0.390 ms (11%%); allow generous slack.
  check.Expect(chorus[2][0] < chorus[0][0] * 2.5,
              "PVM: region create/destroy cost is ~independent of region size "
              "(1024Kb <= 2.5x 8Kb)");
  // 2. Allocation cost is dominated by the touched pages, scaling linearly.
  double per_page_32 = (chorus[2][2] - chorus[2][0]) / 32;
  double per_page_128 = (chorus[2][3] - chorus[2][0]) / 128;
  check.Expect(per_page_128 < per_page_32 * 2 && per_page_32 < per_page_128 * 2,
              "PVM: per-page zero-fill cost is linear (32- vs 128-page rates within 2x)");
  // 3. Zero-fill involves no deferred-copy machinery in either design, so the two
  //    managers must be of the same order here.  (The paper's large absolute gap
  //    came from Mach's heavier fault-path layers — port-based pager checks and
  //    the pmap module — which the shadow baseline deliberately does not model;
  //    see EXPERIMENTS.md.)
  bool same_order = true;
  TableSpec s2;
  for (size_t r = 0; r < s2.region_kb.size(); ++r) {
    for (size_t c = 0; c < s2.touched_pages.size(); ++c) {
      if (s2.CellValid(s2.region_kb[r], s2.touched_pages[c]) &&
          (chorus[r][c] > mach[r][c] * 2.5 || mach[r][c] > chorus[r][c] * 2.5)) {
        same_order = false;
      }
    }
  }
  check.Expect(same_order,
              "Chorus and Mach zero-fill costs are the same order in every cell");
  // 4. Mach's region create is also ~size-independent (paper: 1.57 -> 1.89 ms).
  check.Expect(mach[2][0] < mach[0][0] * 2.5,
              "Mach: region create/destroy cost is ~independent of region size");
  std::printf("\n");
}

// google-benchmark registration over the same matrix.
void BM_ZeroFill(::benchmark::State& state) {
  MmKind kind = static_cast<MmKind>(state.range(0));
  size_t region_bytes = static_cast<size_t>(state.range(1)) * 1024;
  size_t touch_pages = static_cast<size_t>(state.range(2));
  World world = World::Make(kind);
  for (auto _ : state) {
    ZeroFillTrial(world, region_bytes, touch_pages);
  }
  state.SetLabel(MmName(kind));
}

void RegisterAll() {
  TableSpec spec;
  for (MmKind kind : {MmKind::kPvm, MmKind::kShadow}) {
    for (size_t kb : spec.region_kb) {
      for (size_t pages : spec.touched_pages) {
        if (!spec.CellValid(kb, pages)) {
          continue;
        }
        ::benchmark::RegisterBenchmark("BM_ZeroFill", &BM_ZeroFill)
            ->Args({static_cast<long>(kind), static_cast<long>(kb),
                    static_cast<long>(pages)})
            ->Unit(::benchmark::kMicrosecond);
      }
    }
  }
}

// Machine-readable result: the representative 1024 KB / 128-pages PVM cell,
// A/B over transparent huge pages (the on-variant promotes each fully-touched
// 512 KB span; see DESIGN.md §16).
void EmitJson() {
  for (bool huge : {false, true}) {
    World world = World::Make(MmKind::kPvm, 4096, huge);
    const size_t bytes = 1024 * 1024;
    const size_t pages = 128;
    LatencyDist dist = MeasureDist([&] { ZeroFillTrial(world, bytes, pages); });
    BenchJson json(huge ? "table6_zero_fill.huge" : "table6_zero_fill");
    json.Config("mm", "pvm");
    json.Config("region_kb", uint64_t{1024});
    json.Config("touched_pages", uint64_t{pages});
    json.Config("page_size", uint64_t{kPage});
    json.Config("transparent_huge", huge);
    RecordPageSizes(json, *world.mm);
    json.SetLatency(dist.p50_ns, dist.p99_ns);
    json.SetThroughput(dist.p50_ns > 0 ? 1e9 / dist.p50_ns : 0);
    AddWorldCounters(json, *world.mm);
    json.WriteFile();
  }
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  gvm::bench::RunPaperTable();
  gvm::bench::EmitJson();
  gvm::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
