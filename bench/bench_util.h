// Shared infrastructure for the paper-reproduction benchmarks.
//
// The measurements in section 5.3 of the paper were taken on a SUN-3/60 (8 MB
// memory, 8 KB pages, ~3 MIPS).  We reproduce the *structure* of each experiment —
// same region sizes, same touched-page counts, same operation sequences — on the
// simulated hardware, with both the Chorus PVM and the Mach-style shadow baseline
// running on identical substrates.  Absolute numbers differ (host nanoseconds vs
// 1989 milliseconds); the benches print both and check the paper's qualitative
// claims (who wins, size-independence, linear per-page terms).
#ifndef GVM_BENCH_BENCH_UTIL_H_
#define GVM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/gmi/memory_manager.h"
#include "src/hal/soft_mmu.h"
#include "src/minimal/minimal_mm.h"
#include "src/pvm/paged_vm.h"
#include "src/shadow/shadow_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace bench {

// The paper's hardware page size.
inline constexpr size_t kPage = 8192;

enum class MmKind { kPvm, kShadow, kMinimal };

inline const char* MmName(MmKind kind) {
  switch (kind) {
    case MmKind::kPvm:
      return "Chorus (PVM)";
    case MmKind::kShadow:
      return "Mach (shadow objects)";
    case MmKind::kMinimal:
      return "Minimal (real-time)";
  }
  return "?";
}

// A self-contained machine + memory manager for one benchmark run.
struct World {
  std::unique_ptr<PhysicalMemory> memory;
  std::unique_ptr<SoftMmu> mmu;
  std::unique_ptr<MemoryManager> mm;
  std::unique_ptr<TestSwapRegistry> registry;

  Context* context = nullptr;

  // `huge` opts the PVM into transparent huge pages (DESIGN.md §16); the MMU
  // always models the second granule (512 KB = 64 base pages at kPage), so the
  // A/B toggle is purely the manager-side promotion policy.
  static World Make(MmKind kind, size_t frames = 4096, bool huge = false) {
    World world;
    world.memory = std::make_unique<PhysicalMemory>(frames, kPage);
    world.mmu = std::make_unique<SoftMmu>(kPage);
    switch (kind) {
      case MmKind::kPvm: {
        PagedVm::Options options;
        options.transparent_huge = huge;
        world.mm = std::make_unique<PagedVm>(*world.memory, *world.mmu, options);
        break;
      }
      case MmKind::kShadow:
        world.mm = std::make_unique<ShadowVm>(*world.memory, *world.mmu);
        break;
      case MmKind::kMinimal:
        world.mm = std::make_unique<MinimalVm>(*world.memory, *world.mmu);
        break;
    }
    world.registry = std::make_unique<TestSwapRegistry>(kPage);
    world.mm->BindSegmentRegistry(world.registry.get());
    world.context = *world.mm->ContextCreate();
    return world;
  }
};

// Median-of-runs wall-clock timer, ns per operation.
inline double TimeNs(const std::function<void()>& op, int min_iters = 32,
                     double min_seconds = 0.01) {
  using Clock = std::chrono::steady_clock;
  // Warm up once.
  op();
  std::vector<double> samples;
  auto start_all = Clock::now();
  int iters = 0;
  while (iters < min_iters ||
         std::chrono::duration<double>(Clock::now() - start_all).count() < min_seconds) {
    auto start = Clock::now();
    op();
    auto end = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(end - start).count());
    ++iters;
    if (iters > 100000) {
      break;
    }
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Pretty-print helpers for the paper-style tables.
inline std::string FormatNs(double ns) {
  char buffer[64];
  if (ns < 1000) {
    std::snprintf(buffer, sizeof(buffer), "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", ns / 1e6);
  }
  return buffer;
}

struct TableSpec {
  // The paper's matrix: region sizes (KB) x actually-touched page counts.
  std::vector<size_t> region_kb = {8, 256, 1024};
  std::vector<size_t> touched_pages = {0, 1, 32, 128};

  bool CellValid(size_t region_kb_value, size_t pages) const {
    return pages * kPage / 1024 <= region_kb_value;
  }
};

// Print a matrix in the layout of the paper's Tables 6/7.
inline void PrintMatrix(const char* title, const TableSpec& spec,
                        const std::vector<std::vector<double>>& cells_ns) {
  std::printf("%s\n", title);
  std::printf("  %-12s", "region size");
  for (size_t pages : spec.touched_pages) {
    char head[32];
    std::snprintf(head, sizeof(head), "%zu pages", pages);
    std::printf(" | %12s", head);
  }
  std::printf("\n");
  for (size_t r = 0; r < spec.region_kb.size(); ++r) {
    char row[32];
    std::snprintf(row, sizeof(row), "%zu Kb", spec.region_kb[r]);
    std::printf("  %-12s", row);
    for (size_t c = 0; c < spec.touched_pages.size(); ++c) {
      if (spec.CellValid(spec.region_kb[r], spec.touched_pages[c])) {
        std::printf(" | %12s", FormatNs(cells_ns[r][c]).c_str());
      } else {
        std::printf(" | %12s", "-");
      }
    }
    std::printf("\n");
  }
}

// The paper's measured values (milliseconds), for side-by-side reporting.
inline void PrintPaperTable(const char* title, const double (&ms)[3][4]) {
  std::printf("%s (paper, SUN-3/60, ms)\n", title);
  std::printf("  %-12s | %12s | %12s | %12s | %12s\n", "region size", "0 pages", "1 page",
              "32 pages", "128 pages");
  const char* rows[3] = {"8 Kb", "256 Kb", "1024 Kb"};
  for (int r = 0; r < 3; ++r) {
    std::printf("  %-12s", rows[r]);
    for (int c = 0; c < 4; ++c) {
      if (ms[r][c] < 0) {
        std::printf(" | %12s", "-");
      } else {
        std::printf(" | %9.3f ms", ms[r][c]);
      }
    }
    std::printf("\n");
  }
}

struct ShapeCheck {
  int passed = 0;
  int failed = 0;

  void Expect(bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "OK " : "FAIL", what);
    (ok ? passed : failed)++;
  }
};

// ---------------------------------------------------------------------------
// Machine-readable results
// ---------------------------------------------------------------------------

// p-th percentile (0..1) of an unsorted sample set; 0 when empty.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
  return samples[index];
}

// Latency distribution of repeated runs of `op`, in ns per run.
struct LatencyDist {
  double p50_ns = 0;
  double p99_ns = 0;
  size_t runs = 0;
};

inline LatencyDist MeasureDist(const std::function<void()>& op, int min_iters = 64,
                               double min_seconds = 0.02) {
  using Clock = std::chrono::steady_clock;
  op();  // warm up
  std::vector<double> samples;
  auto start_all = Clock::now();
  int iters = 0;
  while (iters < min_iters ||
         std::chrono::duration<double>(Clock::now() - start_all).count() < min_seconds) {
    auto start = Clock::now();
    op();
    auto end = Clock::now();
    samples.push_back(std::chrono::duration<double, std::nano>(end - start).count());
    if (++iters > 100000) {
      break;
    }
  }
  LatencyDist dist;
  dist.runs = samples.size();
  dist.p50_ns = Percentile(samples, 0.5);
  dist.p99_ns = Percentile(samples, 0.99);
  return dist;
}

// Accumulates one benchmark result and writes it as BENCH_<name>.json at the
// repo root (schema: name, config, ops_per_sec, p50_ns, p99_ns, counters), so
// the bench trajectory is machine-readable.  The output directory defaults to
// the source tree (GVM_SOURCE_DIR, set by the build); override it with the
// GVM_BENCH_JSON_DIR environment variable.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, "\"" + Escape(value) + "\"");
  }
  // Without this overload a string literal binds to the bool overload and
  // renders as `true` (how "mm": "pvm" became "mm": true in early JSONs).
  void Config(const std::string& key, const char* value) {
    Config(key, std::string(value));
  }
  void Config(const std::string& key, uint64_t value) {
    config_.emplace_back(key, std::to_string(value));
  }
  void Config(const std::string& key, bool value) {
    config_.emplace_back(key, value ? "true" : "false");
  }
  void SetThroughput(double ops_per_sec) { ops_per_sec_ = ops_per_sec; }
  void SetLatency(double p50_ns, double p99_ns) {
    p50_ns_ = p50_ns;
    p99_ns_ = p99_ns;
  }
  void Counter(const std::string& key, uint64_t value) {
    counters_.emplace_back(key, std::to_string(value));
  }

  std::string Render() const {
    std::string out = "{\n  \"name\": \"" + Escape(name_) + "\",\n  \"config\": {";
    out += RenderPairs(config_, "    ");
    out += "},\n";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.1f", ops_per_sec_);
    out += std::string("  \"ops_per_sec\": ") + buffer + ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", p50_ns_);
    out += std::string("  \"p50_ns\": ") + buffer + ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", p99_ns_);
    out += std::string("  \"p99_ns\": ") + buffer + ",\n";
    out += "  \"counters\": {";
    out += RenderPairs(counters_, "    ");
    out += "}\n}\n";
    return out;
  }

  // Writes BENCH_<name>.json; returns true on success and prints the path.
  bool WriteFile() const {
    const char* env = std::getenv("GVM_BENCH_JSON_DIR");
#ifdef GVM_SOURCE_DIR
    std::string dir = env != nullptr ? env : GVM_SOURCE_DIR;
#else
    std::string dir = env != nullptr ? env : ".";
#endif
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return false;
    }
    std::string body = Render();
    std::fwrite(body.data(), 1, body.size(), file);
    std::fclose(file);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Escape(const std::string& in) {
    std::string out;
    for (char c : in) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  static std::string RenderPairs(const std::vector<std::pair<std::string, std::string>>& pairs,
                                 const char* indent) {
    if (pairs.empty()) {
      return "";
    }
    std::string out;
    for (size_t i = 0; i < pairs.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += indent;
      out += "\"" + Escape(pairs[i].first) + "\": " + pairs[i].second;
    }
    out += "\n  ";
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::string>> counters_;
  double ops_per_sec_ = 0;
  double p50_ns_ = 0;
  double p99_ns_ = 0;
};

// Record the granule geometry in the JSON config header.  Every BENCH JSON
// carries base_page_size and huge_page_size so a result is interpretable
// without knowing which world built it; huge_page_size equals base_page_size
// when the MMU has no second granule.
inline void RecordPageSizes(BenchJson& json, const Mmu& mmu) {
  json.Config("base_page_size", static_cast<uint64_t>(mmu.page_size()));
  json.Config("huge_page_size", static_cast<uint64_t>(mmu.huge_page_size()));
}
inline void RecordPageSizes(BenchJson& json, MemoryManager& mm) {
  RecordPageSizes(json, mm.cpu().mmu());
}

// Dump the standard counter set of a manager (MM + CPU + TLB + PVM detail)
// into the JSON counter section.
inline void AddWorldCounters(BenchJson& json, MemoryManager& mm) {
  const MmStats& s = mm.stats();
  json.Counter("page_faults", s.page_faults);
  json.Counter("zero_fills", s.zero_fills);
  json.Counter("pull_ins", s.pull_ins);
  json.Counter("push_outs", s.push_outs);
  json.Counter("cow_copies", s.cow_copies);
  json.Counter("pages_paged_out", s.pages_paged_out);
  if (auto* base = dynamic_cast<BaseMm*>(&mm)) {
    Cpu::Stats cs = base->cpu().SnapshotStats();
    json.Counter("cpu_faults_taken", cs.faults_taken);
    json.Counter("tlb_hits", cs.tlb_hits);
    json.Counter("tlb_huge_hits", cs.tlb_huge_hits);
    json.Counter("tlb_misses", cs.tlb_misses);
    json.Counter("tlb_shootdowns", cs.tlb_shootdowns);
    json.Counter("tlb_shootdown_pages", cs.tlb_shootdown_pages);
    json.Counter("tlb_shootdown_ranges", cs.tlb_shootdown_ranges);
    const PhysicalMemory::Stats ps = base->memory().stats();
    json.Counter("magazine_hits", ps.magazine_hits);
    json.Counter("magazine_refills", ps.magazine_refills);
    json.Counter("magazine_drains", ps.magazine_drains);
    json.Counter("magazine_steals", ps.magazine_steals);
  }
  if (auto* pvm = dynamic_cast<PagedVm*>(&mm)) {
    json.Counter("pullin_clustered", pvm->detail_stats().pullin_clustered);
    json.Counter("sync_stub_waits", pvm->detail_stats().sync_stub_waits);
    json.Counter("promotions", pvm->detail_stats().promotions);
    json.Counter("demotions", pvm->detail_stats().demotions);
    json.Counter("demote_cow", pvm->detail_stats().demote_cow);
    json.Counter("demote_pageout", pvm->detail_stats().demote_pageout);
  }
}

}  // namespace bench
}  // namespace gvm

#endif  // GVM_BENCH_BENCH_UTIL_H_
