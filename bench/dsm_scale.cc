// dsm_scale — scaling sweep of the fault-tolerant DSM directory protocol.
//
// A {sites} x {drop%} matrix: each cell builds a fresh DsmCluster with one
// worker thread per site, every thread hammering a shared segment (stores to
// its own single-writer slot, loads of random remote slots) while a local
// fork/COW storm runs on each site's PVM (deferred copy of a private working
// set, dirtying the copy, teardown) — the paper's section 4.2 machinery under
// coherence traffic.  Message loss is injected with the kNetDeliver fault site
// ("netdeliver:prob:P"); the per-link sequence numbers and dedup cache absorb
// it with retransmissions, so a cell's correctness check is exact: after the
// storm every slot must read back its writer's final value from site 0, and
// the WAL-replay oracle must agree with the live directory.
//
// Emits the standard BENCH JSON (BENCH_dsm_scale.json) with per-cell counters
// keyed s{sites}_d{drop}_*, plus aggregate throughput/latency.
//
// Usage: dsm_scale [--steps=160] [--seed=1] [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/dsm/dsm.h"
#include "src/fault/fault_injector.h"
#include "src/util/rng.h"

namespace gvm {
namespace bench {
namespace {

constexpr size_t kDsmPageSize = 1024;  // small pages: more protocol per byte
constexpr Vaddr kBase = 0x10000000;
constexpr int kCowEvery = 16;  // shared ops between fork/COW episodes

struct CellResult {
  bool ok = true;
  double seconds = 0;
  uint64_t ops = 0;
  uint64_t cow_episodes = 0;
  uint64_t failed_ops = 0;
  std::vector<double> samples_ns;  // per-shared-op latency
  DsmCluster::Stats stats;
};

// One fork/COW episode on a site's private PVM: deferred-copy a 4-page working
// set, dirty half the copy, read one page back, tear both down.
void ForkCowEpisode(DsmSite& site, int iteration, CellResult& result) {
  PagedVm& vm = site.vm();
  Result<Cache*> source = vm.CacheCreate(nullptr, "cow_src");
  Result<Cache*> copy = source.ok() ? vm.CacheCreate(nullptr, "cow_dst") : Status::kNoMemory;
  if (!source.ok() || !copy.ok()) {
    ++result.failed_ops;
    return;
  }
  const size_t pages = 4;
  const size_t page = vm.page_size();
  std::vector<char> data(page, static_cast<char>('a' + iteration % 26));
  bool ok = true;
  for (size_t p = 0; p < pages && ok; ++p) {
    ok = (*source)->Write(p * page, data.data(), data.size()) == Status::kOk;
  }
  ok = ok && (*source)->CopyTo(**copy, 0, 0, pages * page, CopyPolicy::kHistory) ==
                 Status::kOk;
  for (size_t p = 0; p < pages && ok; p += 2) {
    uint64_t value = static_cast<uint64_t>(iteration) + p;
    ok = (*copy)->Write(p * page, &value, sizeof(value)) == Status::kOk;
  }
  uint64_t check = 0;
  ok = ok && (*copy)->Read(page, &check, sizeof(check)) == Status::kOk;
  if (!ok) {
    ++result.failed_ops;
  } else {
    ++result.cow_episodes;
  }
  (void)(*copy)->Destroy();
  (void)(*source)->Destroy();
}

CellResult RunCell(int sites, int drop_percent, int steps, uint64_t seed) {
  CellResult result;
  DsmCluster cluster(kDsmPageSize);
  std::vector<DsmSite*> site_list;
  for (int i = 0; i < sites; ++i) {
    site_list.push_back(cluster.AddSite(/*frames=*/128));
  }
  const size_t slots = static_cast<size_t>(sites);
  const uint64_t seg_bytes = slots * kDsmPageSize;
  if (cluster.CreateSharedSegment("scale", seg_bytes) != Status::kOk) {
    result.ok = false;
    return result;
  }
  for (DsmSite* site : site_list) {
    if (!site->MapShared("scale", kBase, seg_bytes, Prot::kReadWrite).ok()) {
      result.ok = false;
      return result;
    }
  }

  FaultInjector injector(seed);
  if (drop_percent > 0) {
    std::string spec = "netdeliver:prob:" + std::to_string(drop_percent) +
                       ":seed=" + std::to_string(seed);
    std::string error;
    if (!injector.ApplySpec(spec, &error)) {
      std::fprintf(stderr, "bad spec %s: %s\n", spec.c_str(), error.c_str());
      result.ok = false;
      return result;
    }
    cluster.BindFaultInjector(&injector);
  }

  std::vector<CellResult> worker_results(static_cast<size_t>(sites));
  std::vector<std::thread> workers;
  auto start = std::chrono::steady_clock::now();
  for (int s = 0; s < sites; ++s) {
    workers.emplace_back([&, s] {
      using Clock = std::chrono::steady_clock;
      CellResult& local = worker_results[static_cast<size_t>(s)];
      DsmSite* site = site_list[static_cast<size_t>(s)];
      Rng rng(seed * 7919 + static_cast<uint64_t>(s));
      for (int step = 0; step < steps; ++step) {
        auto op_start = Clock::now();
        Status status;
        if (rng.Chance(1, 2)) {
          // Store to this site's own slot (single writer).
          Vaddr va = kBase + static_cast<Vaddr>(s) * kDsmPageSize;
          status = site->Store<uint64_t>(va, static_cast<uint64_t>(step) + 1);
        } else {
          // Load a random slot: pulls pages, triggers recalls at their owner.
          size_t slot = rng.Below(slots);
          status = site->Load<uint64_t>(kBase + slot * kDsmPageSize).status();
        }
        auto op_end = Clock::now();
        ++local.ops;
        if (status != Status::kOk) {
          ++local.failed_ops;
        }
        if (local.samples_ns.size() < 20000) {
          local.samples_ns.push_back(
              std::chrono::duration<double, std::nano>(op_end - op_start).count());
        }
        if (step % kCowEvery == kCowEvery - 1) {
          ForkCowEpisode(*site, step, local);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  for (const CellResult& local : worker_results) {
    result.ops += local.ops;
    result.cow_episodes += local.cow_episodes;
    result.failed_ops += local.failed_ops;
    result.samples_ns.insert(result.samples_ns.end(), local.samples_ns.begin(),
                             local.samples_ns.end());
  }

  // Correctness gate: with loss disarmed, write one final value per slot and
  // read it back from site 0, then let the oracle replay the WAL.
  injector.ClearAllPlans();
  injector.set_enabled(false);
  for (int s = 0; s < sites; ++s) {
    Vaddr va = kBase + static_cast<Vaddr>(s) * kDsmPageSize;
    const uint64_t want = 0xF00D0000u + static_cast<uint64_t>(s);
    if (site_list[static_cast<size_t>(s)]->Store<uint64_t>(va, want) != Status::kOk ||
        site_list[0]->Load<uint64_t>(va).value_or(0) != want) {
      result.ok = false;
    }
  }
  std::string diagnostic;
  if (cluster.OracleCheck(&diagnostic) != Status::kOk) {
    std::fprintf(stderr, "oracle: %s\n", diagnostic.c_str());
    result.ok = false;
  }
  result.stats = cluster.stats();
  return result;
}

int Run(int steps, uint64_t seed, bool quick) {
  const std::vector<int> site_axis = quick ? std::vector<int>{2, 8} : std::vector<int>{2, 8, 32};
  const std::vector<int> drop_axis = {0, 1, 10};

  BenchJson json("dsm_scale");
  json.Config("steps_per_site", static_cast<uint64_t>(steps));
  json.Config("seed", seed);
  json.Config("page_size", static_cast<uint64_t>(kDsmPageSize));
  {
    // Sites are created per cell below; record the granule geometry their
    // SoftMmu substrate will carry (DSM itself never maps the second granule).
    SoftMmu probe(kDsmPageSize);
    RecordPageSizes(json, probe);
  }
  json.Config("cow_every", static_cast<uint64_t>(kCowEvery));
  json.Config("sites_axis", quick ? std::string("2,8") : std::string("2,8,32"));
  json.Config("drop_axis", std::string("0,1,10"));

  std::printf("%6s %6s %12s %10s %10s %12s %10s %8s\n", "sites", "drop%", "ops/sec",
              "p50", "p99", "messages", "retrans", "ok");
  double total_ops = 0;
  double total_seconds = 0;
  std::vector<double> all_samples;
  bool all_ok = true;
  for (int sites : site_axis) {
    for (int drop : drop_axis) {
      CellResult cell = RunCell(sites, drop, steps, seed);
      const double ops_per_sec = cell.seconds > 0 ? cell.ops / cell.seconds : 0;
      const double p50 = Percentile(cell.samples_ns, 0.5);
      const double p99 = Percentile(cell.samples_ns, 0.99);
      std::printf("%6d %6d %12.0f %10s %10s %12llu %10llu %8s\n", sites, drop, ops_per_sec,
                  FormatNs(p50).c_str(), FormatNs(p99).c_str(),
                  (unsigned long long)cell.stats.network_messages,
                  (unsigned long long)cell.stats.network_retransmits,
                  cell.ok ? "yes" : "NO");
      const std::string key = "s" + std::to_string(sites) + "_d" + std::to_string(drop);
      json.Counter(key + "_ops_per_sec", static_cast<uint64_t>(ops_per_sec));
      json.Counter(key + "_p50_ns", static_cast<uint64_t>(p50));
      json.Counter(key + "_p99_ns", static_cast<uint64_t>(p99));
      json.Counter(key + "_messages", cell.stats.network_messages);
      json.Counter(key + "_drops", cell.stats.network_drops);
      json.Counter(key + "_retransmits", cell.stats.network_retransmits);
      json.Counter(key + "_dedup_replays", cell.stats.dedup_replays);
      json.Counter(key + "_transitions_aborted", cell.stats.transitions_aborted);
      json.Counter(key + "_wal_records", cell.stats.wal_records);
      json.Counter(key + "_cow_episodes", cell.cow_episodes);
      json.Counter(key + "_failed_ops", cell.failed_ops);
      json.Counter(key + "_ok", cell.ok ? 1 : 0);
      total_ops += static_cast<double>(cell.ops);
      total_seconds += cell.seconds;
      all_samples.insert(all_samples.end(), cell.samples_ns.begin(), cell.samples_ns.end());
      all_ok = all_ok && cell.ok;
    }
  }
  json.SetThroughput(total_seconds > 0 ? total_ops / total_seconds : 0);
  json.SetLatency(Percentile(all_samples, 0.5), Percentile(all_samples, 0.99));
  json.Counter("all_cells_ok", all_ok ? 1 : 0);
  json.WriteFile();
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace gvm

int main(int argc, char** argv) {
  int steps = 160;
  uint64_t seed = 1;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--steps=", 0) == 0) {
      steps = std::stoi(arg.substr(8));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  return gvm::bench::Run(steps, seed, quick);
}
