// Distributed shared memory example (paper section 3.3.3): three simulated sites
// cooperate on a shared work queue through ordinary loads and stores; the
// write-invalidate coherence protocol built from GMI cache-control operations
// (flush/sync/invalidate/setProtection) keeps them consistent.
//
//   $ ./examples/dsm_counter
#include <cstdio>

#include "src/dsm/dsm.h"

using namespace gvm;

int main() {
  constexpr size_t kPage = 8192;
  constexpr Vaddr kBase = 0x20000000;

  DsmCluster cluster(kPage);
  DsmSite* sites[3];
  for (auto*& site : sites) {
    site = cluster.AddSite(/*frames=*/128);
  }
  cluster.CreateSharedSegment("workspace", 4 * kPage);
  for (auto* site : sites) {
    site->MapShared("workspace", kBase, 4 * kPage, Prot::kReadWrite);
  }

  // Layout in the shared segment (page 0): [0] next work item, [8] results sum.
  std::printf("three sites pulling work items from a shared counter...\n");
  constexpr int kItems = 30;
  int executed[3] = {0, 0, 0};
  for (int turn = 0; sites[turn % 3]->Load<uint64_t>(kBase).value_or(kItems) <
                     static_cast<uint64_t>(kItems);
       ++turn) {
    DsmSite* site = sites[turn % 3];
    // claim the next item
    uint64_t item = *site->Load<uint64_t>(kBase);
    site->Store<uint64_t>(kBase, item + 1);
    // "process" it: add item^2 into the results slot
    uint64_t sum = *site->Load<uint64_t>(kBase + 8);
    site->Store<uint64_t>(kBase + 8, sum + item * item);
    executed[turn % 3]++;
  }

  uint64_t expected = 0;
  for (int i = 0; i < kItems; ++i) {
    expected += static_cast<uint64_t>(i) * i;
  }
  uint64_t total = *sites[0]->Load<uint64_t>(kBase + 8);
  std::printf("  items processed per site: %d / %d / %d\n", executed[0], executed[1],
              executed[2]);
  std::printf("  sum of squares: %llu (expected %llu) -> %s\n", (unsigned long long)total,
              (unsigned long long)expected, total == expected ? "correct" : "WRONG");

  // Independent per-site pages after the contention: no protocol traffic.
  std::printf("\nnow each site works on its own page (no sharing)...\n");
  uint64_t messages_before = cluster.stats().network_messages;
  for (int round = 0; round < 100; ++round) {
    for (int s = 0; s < 3; ++s) {
      sites[s]->Store<uint64_t>(kBase + (1 + s) * kPage, round);
    }
  }
  uint64_t quiet = cluster.stats().network_messages - messages_before;
  std::printf("  protocol messages for 300 private writes: %llu (after warm-up)\n",
              (unsigned long long)quiet);

  const DsmCluster::Stats& stats = cluster.stats();
  std::printf("\ncoherence protocol totals:\n");
  std::printf("  read faults served: %llu\n", (unsigned long long)stats.read_faults);
  std::printf("  ownership transfers: %llu\n", (unsigned long long)stats.write_grants);
  std::printf("  remote invalidations: %llu\n", (unsigned long long)stats.invalidations);
  std::printf("  dirty-page recalls: %llu\n", (unsigned long long)stats.recalls);
  std::printf("  simulated network: %llu messages, %llu bytes\n",
              (unsigned long long)stats.network_messages,
              (unsigned long long)stats.network_bytes);
  bool ok = total == expected;
  for (auto* site : sites) {
    ok = ok && site->vm().CheckInvariants() == Status::kOk;
  }
  std::printf("\n%s\n", ok ? "distributed shared memory: OK" : "FAILED");
  return ok ? 0 : 1;
}
