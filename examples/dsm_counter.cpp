// Distributed shared memory example (paper section 3.3.3): three simulated sites
// cooperate on a shared work queue through ordinary loads and stores; the
// write-invalidate coherence protocol built from GMI cache-control operations
// (flush/sync/invalidate/setProtection) keeps them consistent.
//
//   $ ./examples/dsm_counter
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/dsm/dsm.h"

using namespace gvm;

int main() {
  constexpr size_t kPage = 8192;
  constexpr Vaddr kBase = 0x20000000;

  DsmCluster cluster(kPage);
  DsmSite* sites[3];
  for (auto*& site : sites) {
    site = cluster.AddSite(/*frames=*/128);
  }
  (void)cluster.CreateSharedSegment("workspace", 4 * kPage);
  for (auto* site : sites) {
    site->MapShared("workspace", kBase, 4 * kPage, Prot::kReadWrite);
  }

  // Layout in the shared segment (page 0): [0] next work item, [8] results sum.
  std::printf("three sites pulling work items from a shared counter...\n");
  constexpr int kItems = 30;
  int executed[3] = {0, 0, 0};
  for (int turn = 0; sites[turn % 3]->Load<uint64_t>(kBase).value_or(kItems) <
                     static_cast<uint64_t>(kItems);
       ++turn) {
    DsmSite* site = sites[turn % 3];
    // claim the next item
    uint64_t item = *site->Load<uint64_t>(kBase);
    (void)site->Store<uint64_t>(kBase, item + 1);
    // "process" it: add item^2 into the results slot
    uint64_t sum = *site->Load<uint64_t>(kBase + 8);
    (void)site->Store<uint64_t>(kBase + 8, sum + item * item);
    executed[turn % 3]++;
  }

  uint64_t expected = 0;
  for (int i = 0; i < kItems; ++i) {
    expected += static_cast<uint64_t>(i) * i;
  }
  uint64_t total = *sites[0]->Load<uint64_t>(kBase + 8);
  std::printf("  items processed per site: %d / %d / %d\n", executed[0], executed[1],
              executed[2]);
  std::printf("  sum of squares: %llu (expected %llu) -> %s\n", (unsigned long long)total,
              (unsigned long long)expected, total == expected ? "correct" : "WRONG");

  // Independent per-site pages after the contention: no protocol traffic.
  std::printf("\nnow each site works on its own page (no sharing)...\n");
  uint64_t messages_before = cluster.stats().network_messages;
  for (int round = 0; round < 100; ++round) {
    for (int s = 0; s < 3; ++s) {
      (void)sites[s]->Store<uint64_t>(kBase + (1 + s) * kPage, round);
    }
  }
  uint64_t quiet = cluster.stats().network_messages - messages_before;
  std::printf("  protocol messages for 300 private writes: %llu (after warm-up)\n",
              (unsigned long long)quiet);

  // Fault tolerance: six counter threads (two per site) keep incrementing while
  // the interconnect partitions one site and another site crashes outright and
  // rejoins.  Each thread owns one slot (single writer), and an increment only
  // counts once SyncShared() has pushed it home — so the committed prefix of
  // every counter survives the crash, the partitioned site merely stalls until
  // its link heals, and the final tally is exact.
  std::printf("\nnow surviving a partition and a site crash/rejoin...\n");
  constexpr int kIncrements = 200;
  constexpr int kThreadsPerSite = 2;
  constexpr Vaddr kCtrBase = 0x30000000;
  constexpr int kSlots = 3 * kThreadsPerSite;
  bool fault_ok = true;
  if (cluster.CreateSharedSegment("counters", kSlots * kPage) != Status::kOk) {
    fault_ok = false;
  }
  for (auto* site : sites) {
    fault_ok = fault_ok &&
               site->MapShared("counters", kCtrBase, kSlots * kPage, Prot::kReadWrite).ok();
  }

  std::vector<std::thread> threads;
  for (int s = 0; s < 3; ++s) {
    for (int t = 0; t < kThreadsPerSite; ++t) {
      const int slot = s * kThreadsPerSite + t;
      threads.emplace_back([&, s, slot] {
        DsmSite* site = sites[s];
        const Vaddr va = kCtrBase + static_cast<Vaddr>(slot) * kPage;
        while (true) {
          Result<uint64_t> current = site->Load<uint64_t>(va);
          if (!current.ok()) {  // site crashed / link down: wait for recovery
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
          }
          if (*current >= kIncrements) {
            return;
          }
          if (site->Store<uint64_t>(va, *current + 1) != Status::kOk ||
              site->SyncShared() != Status::kOk) {
            // Partitioned or degraded: the increment is not committed until a
            // sync succeeds, so retry from the authoritative value.
            (void)site->SyncShared();
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
      });
    }
  }

  // Drive the faults from the side, pacing on real progress.  Slot 0 belongs
  // to a site-0 thread, so observe it through a *remote* site: that read goes
  // through the coherence protocol instead of racing the writer thread on the
  // same simulated RAM.  Partition site 2 once the counters are moving, then
  // crash site 1 after the heal.
  auto progress = [&](DsmSite* observer) {
    return observer->Load<uint64_t>(kCtrBase).value_or(0);
  };
  while (progress(sites[1]) < kIncrements / 4) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  std::printf("  cutting the link between site 2 and the home directory...\n");
  cluster.net().Partition(kHomeNode, sites[2]->id());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cluster.net().HealAll();
  std::printf("  link healed; crashing site 1...\n");
  while (progress(sites[2]) < kIncrements / 2) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  if (cluster.CrashSite(sites[1]->id()) != Status::kOk) {
    fault_ok = false;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Result<uint64_t> drained = cluster.RecoverSite(sites[1]->id());
  std::printf("  site 1 rejoined (pending grants drained: %llu)\n",
              drained.ok() ? (unsigned long long)*drained : 0ull);
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Every slot must have reached exactly kIncrements, from every site's view.
  uint64_t tally = 0;
  for (int slot = 0; slot < kSlots; ++slot) {
    const Vaddr va = kCtrBase + static_cast<Vaddr>(slot) * kPage;
    for (auto* site : sites) {
      Result<uint64_t> got = site->Load<uint64_t>(va);
      if (!got.ok() || *got != kIncrements) {
        std::printf("  slot %d WRONG at site %d: %llu\n", slot, site->id(),
                    got.ok() ? (unsigned long long)*got : ~0ull);
        fault_ok = false;
      }
    }
    tally += sites[0]->Load<uint64_t>(va).value_or(0);
  }
  std::printf("  final tally: %llu (expected %llu) -> %s\n", (unsigned long long)tally,
              (unsigned long long)(kSlots * kIncrements),
              fault_ok ? "correct" : "WRONG");

  const DsmCluster::Stats& stats = cluster.stats();
  std::printf("\ncoherence protocol totals:\n");
  std::printf("  read faults served: %llu\n", (unsigned long long)stats.read_faults);
  std::printf("  ownership transfers: %llu\n", (unsigned long long)stats.write_grants);
  std::printf("  remote invalidations: %llu\n", (unsigned long long)stats.invalidations);
  std::printf("  dirty-page recalls: %llu\n", (unsigned long long)stats.recalls);
  std::printf("  simulated network: %llu messages, %llu bytes\n",
              (unsigned long long)stats.network_messages,
              (unsigned long long)stats.network_bytes);
  std::printf("  site crashes: %llu, recoveries: %llu, WAL records: %llu\n",
              (unsigned long long)stats.site_crashes,
              (unsigned long long)stats.site_recoveries,
              (unsigned long long)stats.wal_records);
  bool ok = total == expected && fault_ok;
  for (auto* site : sites) {
    ok = ok && site->vm().CheckInvariants() == Status::kOk;
  }
  std::printf("\n%s\n", ok ? "distributed shared memory: OK" : "FAILED");
  return ok ? 0 : 1;
}
