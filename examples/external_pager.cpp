// External pager example: "Data management policies are delegated to external
// managers" (the paper's abstract).  A user-level mapper implements a segment
// whose pages are GENERATED on demand and verified on write-back — the classic
// external-pager trick (compressed stores, network file systems, checkpointing
// all look like this).
//
// The mapper below serves an "infinite" sequence segment: page p reads as a
// pattern derived from p.  Writes are journaled.  The memory manager, Nucleus and
// region code are completely unaware — they just see pullIn/pushOut traffic.
//
//   $ ./examples/external_pager
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"

using namespace gvm;

namespace {

constexpr size_t kPage = 8192;

// A synthetic, generative mapper: an endless segment whose page p is filled with
// the byte 'A' + (p % 26), unless the client overwrote it (then the overwrite is
// kept in a journal).
class GenerativeMapper final : public Mapper {
 public:
  Status Read(uint64_t key, SegOffset offset, size_t size,
              std::vector<std::byte>* out) override {
    (void)key;
    ++reads;
    out->resize(size);
    for (size_t done = 0; done < size; done += kPage) {
      SegOffset page = (offset + done) / kPage;
      auto journaled = journal_.find(page * kPage);
      if (journaled != journal_.end()) {
        std::memcpy(out->data() + done, journaled->second.data(),
                    std::min(kPage, size - done));
      } else {
        std::memset(out->data() + done, 'A' + static_cast<int>(page % 26),
                    std::min(kPage, size - done));
      }
    }
    return Status::kOk;
  }

  Status Write(uint64_t key, SegOffset offset, const std::byte* data, size_t size) override {
    (void)key;
    ++writes;
    for (size_t done = 0; done < size; done += kPage) {
      auto& page = journal_[offset + done];
      page.assign(data + done, data + done + std::min(kPage, size - done));
      page.resize(kPage);
    }
    return Status::kOk;
  }

  int reads = 0;
  int writes = 0;
  size_t JournaledPages() const { return journal_.size(); }

 private:
  std::map<SegOffset, std::vector<std::byte>> journal_;
};

}  // namespace

int main() {
  // A deliberately small machine: 24 frames, so the pager is exercised hard.
  PhysicalMemory memory(24, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 3;
  options.high_water_frames = 6;
  PagedVm vm(memory, mmu, options);
  Nucleus nucleus(vm);
  SwapMapper swap(kPage);
  MapperServer swap_server(nucleus.ipc(), swap);
  nucleus.BindDefaultMapper(&swap_server);

  GenerativeMapper pager;
  MapperServer pager_server(nucleus.ipc(), pager);
  nucleus.RegisterMapper(&pager_server);

  Actor* actor = *nucleus.ActorCreate("reader");
  // Map 64 pages of the generated segment into 24 frames of real memory.
  Capability segment{pager_server.port(), /*key=*/1};
  constexpr size_t kPages = 64;
  actor->RgnMap(0x100000, kPages * kPage, Prot::kReadWrite, segment, 0);

  std::printf("scanning %zu generated pages through %zu frames of memory...\n", kPages,
              memory.frame_count());
  size_t mismatches = 0;
  for (size_t p = 0; p < kPages; ++p) {
    char c = 0;
    (void)actor->Read(0x100000 + p * kPage + 17, &c, 1);
    if (c != static_cast<char>('A' + p % 26)) {
      ++mismatches;
    }
  }
  std::printf("  pattern mismatches: %zu (expect 0)\n", mismatches);
  std::printf("  pager reads: %d, pages paged out under pressure: %llu\n", pager.reads,
              (unsigned long long)vm.stats().pages_paged_out);

  // Overwrite every 8th page, then force everything out of memory by rescanning;
  // the journal must capture exactly the dirtied pages.
  const char msg[] = "journaled overwrite";
  for (size_t p = 0; p < kPages; p += 8) {
    (void)actor->Write(0x100000 + p * kPage, msg, sizeof(msg));
  }
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (size_t p = 0; p < kPages; ++p) {
      char c = 0;
      (void)actor->Read(0x100000 + p * kPage + 17, &c, 1);
    }
  }
  std::printf("\nafter dirtying every 8th page and thrashing the cache:\n");
  std::printf("  pager writes: %d, journaled pages: %zu (expect %zu)\n", pager.writes,
              pager.JournaledPages(), kPages / 8);

  // The overwritten data survives the round trip through the external pager.
  size_t survivors = 0;
  for (size_t p = 0; p < kPages; p += 8) {
    char buffer[sizeof(msg)] = {};
    (void)actor->Read(0x100000 + p * kPage, buffer, sizeof(msg));
    if (std::memcmp(buffer, msg, sizeof(msg)) == 0) {
      ++survivors;
    }
  }
  std::printf("  overwrites intact after write-back + re-pull: %zu/%zu\n", survivors,
              kPages / 8);
  bool ok = survivors == kPages / 8 && mismatches == 0 &&
            vm.CheckInvariants() == Status::kOk;
  std::printf("\n%s\n", ok ? "external pager round trip: OK" : "FAILED");
  return ok ? 0 : 1;
}
