// Chorus/MIX example (paper section 5.1.5): a Unix-like shell session on top of
// the Nucleus.  A parent program forks three children; each child computes a
// partial sum in its (copy-on-write) data segment and exits with it; the parent
// reaps them.  Every instruction executes through the simulated MMU, so the
// console output below is produced by genuine demand paging and deferred copies.
//
//   $ ./examples/unix_fork_exec
#include <cstdio>
#include <string>

#include "src/hal/soft_mmu.h"
#include "src/mix/process_manager.h"
#include "src/pvm/paged_vm.h"

using namespace gvm;

namespace {

constexpr size_t kPage = 8192;

// for (i = 1; i <= r5; ++i) sum += i;  exit(sum)
// The loop bound r5 is read from data[0], which each child writes differently
// after the fork — demonstrating that the children's data segments diverged.
VmAssembler WorkerProgram() {
  VmAssembler a;
  a.Li32(2, static_cast<uint32_t>(ProcessLayout::kDataBase));
  // fork #1, #2, #3: child i sets data[0] = 10 * i and falls through to the loop.
  for (int child = 1; child <= 3; ++child) {
    a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kFork));
    size_t parent_branch = a.Here();
    a.Emit(VmOp::kBnez, 0, 0, 0);  // parent skips the child setup (patched below)
    a.Emit(VmOp::kLi, 3, 0, static_cast<int16_t>(10 * child));
    a.Emit(VmOp::kSt, 3, 2, 0);  // data[0] = bound
    size_t to_loop = a.Here();
    a.Emit(VmOp::kJmp, 0, 0, 0);  // jump to the summing loop (patched below)
    a.PatchBranch(parent_branch, a.Here());
    // Remember where the child's jump needs to land (after all forks).
    a.Emit(VmOp::kMov, 9, 9);  // placeholder marker (no-op)
    // We will patch `to_loop` once the loop location is known; stash its index
    // by encoding it in a table below.
    (void)to_loop;
  }
  // Parent: exit(0).
  a.Emit(VmOp::kLi, 0, 0, 0);
  a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
  // The summing loop: r6 = sum, r7 = i, r5 = bound (from data[0]).
  size_t loop_entry = a.Here();
  a.Emit(VmOp::kLd, 5, 2, 0);  // r5 = data[0]
  a.Emit(VmOp::kLi, 6, 0, 0);
  a.Emit(VmOp::kLi, 7, 0, 0);
  size_t loop_top = a.Here();
  a.Emit(VmOp::kAddi, 7, 0, 1);
  a.Emit(VmOp::kAdd, 6, 7);
  size_t branch_back = a.Here();
  a.Emit(VmOp::kBlt, 7, 5, 0);
  a.PatchBranch(branch_back, loop_top);
  a.Emit(VmOp::kMov, 0, 6);
  a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
  // Patch each child's jump to the loop: scan for the kJmp placeholders.
  std::vector<uint32_t> words = a.words();
  VmAssembler fixed;
  for (size_t i = 0; i < words.size(); ++i) {
    VmDecoded d = VmDecode(words[i]);
    if (d.op == VmOp::kJmp && d.imm == 0) {
      fixed.Emit(VmOp::kJmp, 0, 0,
                 static_cast<int16_t>(static_cast<int32_t>(loop_entry) -
                                      static_cast<int32_t>(i) - 1));
    } else {
      fixed.Emit(d.op, d.ra, d.rb, d.imm);
    }
  }
  return fixed;
}

}  // namespace

int main() {
  PhysicalMemory memory(2048, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  Nucleus nucleus(vm);
  SwapMapper swap(kPage);
  FileMapper files(kPage);
  MapperServer swap_server(nucleus.ipc(), swap);
  MapperServer file_server(nucleus.ipc(), files);
  nucleus.BindDefaultMapper(&swap_server);
  nucleus.RegisterMapper(&file_server);
  ProcessManager pm(nucleus, files, file_server.port());

  (void)pm.InstallProgram("/bin/worker", WorkerProgram(), {}, 2 * kPage, 2 * kPage);
  Pid root = *pm.Spawn("/bin/worker");
  std::printf("spawned /bin/worker as pid %d; running the process table...\n", root);
  uint64_t steps = pm.RunAll(200, 1'000'000);
  std::printf("executed %llu VM instructions across %zu processes\n",
              (unsigned long long)steps, pm.ProcessCount());

  // Reap the children: each exited with sum(1..10*i) = 55, 210, 465.
  std::printf("\nchildren reaped by wait():\n");
  for (int i = 0; i < 3; ++i) {
    Result<std::pair<Pid, int>> reaped = pm.Wait(root);
    if (reaped.ok()) {
      std::printf("  pid %d exited with status %d\n", reaped->first, reaped->second);
    }
  }
  std::printf("\nmemory-management work performed by the fork/COW machinery:\n");
  std::printf("  page faults: %llu\n", (unsigned long long)vm.stats().page_faults);
  std::printf("  pages whose copy was deferred: %llu\n",
              (unsigned long long)vm.stats().deferred_copy_pages);
  std::printf("  physical copies actually performed: %llu\n",
              (unsigned long long)vm.stats().cow_copies);
  std::printf("  zero-fills: %llu\n", (unsigned long long)vm.stats().zero_fills);
  std::printf("  segment-cache hits in the segment manager: %llu\n",
              (unsigned long long)nucleus.segment_manager().stats().cache_hits);
  bool ok = vm.CheckInvariants() == Status::kOk;
  std::printf("invariants: %s\n", ok ? "all hold" : "VIOLATED");
  return ok ? 0 : 1;
}
