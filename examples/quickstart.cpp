// Quickstart: the Generic Memory management Interface in ~80 lines.
//
// Builds the full stack — simulated hardware, the PVM below the GMI, a Nucleus
// with a segment manager above it — then walks through the paper's core moves:
// demand-zero allocation, mapping a "file" segment, a deferred (copy-on-write)
// copy via history objects, and what happens when the source is modified.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <cstring>
#include <string>

#include "src/hal/soft_mmu.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"

using namespace gvm;

int main() {
  constexpr size_t kPage = 8192;  // the paper's Sun-3 page size

  // --- the simulated machine and the memory manager (below the GMI) ---
  PhysicalMemory memory(1024, kPage);  // 8 MB, like the paper's SUN-3/60
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);

  // --- the kernel layer (above the GMI): Nucleus + segment manager + mappers ---
  Nucleus nucleus(vm);
  SwapMapper swap(kPage);
  FileMapper files(kPage);
  MapperServer swap_server(nucleus.ipc(), swap);
  MapperServer file_server(nucleus.ipc(), files);
  nucleus.BindDefaultMapper(&swap_server);
  nucleus.RegisterMapper(&file_server);

  // --- an actor (address space) with an anonymous region: rgnAllocate ---
  Actor* actor = *nucleus.ActorCreate("demo");
  actor->RgnAllocate(0x10000, 4 * kPage, Prot::kReadWrite);
  const char note[] = "hello, demand-zero memory";
  (void)actor->Write(0x10000, note, sizeof(note));
  char read_back[64] = {};
  (void)actor->Read(0x10000, read_back, sizeof(note));
  std::printf("anonymous region: wrote and read back: \"%s\"\n", read_back);
  std::printf("  faults so far: %llu, frames in use: %zu\n",
              (unsigned long long)vm.stats().page_faults, memory.used_frames());

  // --- map a file segment: rgnMap ---
  std::string contents(2 * kPage, '.');
  std::snprintf(contents.data(), 32, "file data, page 0");
  uint64_t key = *files.CreateFile("/data/example", contents.data(), contents.size());
  Capability file{file_server.port(), key};
  actor->RgnMap(0x40000, 2 * kPage, Prot::kRead, file, 0);
  (void)actor->Read(0x40000, read_back, 18);
  std::printf("mapped file segment: \"%s\" (pulled in via the mapper)\n", read_back);

  // --- deferred copy with history objects: rgnInitFromActor (the fork shape) ---
  Actor* clone = *nucleus.ActorCreate("clone");
  clone->RgnInitFromActor(0x10000, 4 * kPage, Prot::kReadWrite, *actor, 0x10000,
                          CopyPolicy::kHistory);
  uint64_t copies_before = vm.stats().cow_copies;
  (void)clone->Read(0x10000, read_back, sizeof(note));
  std::printf("deferred copy reads the original through the history tree: \"%s\"\n",
              read_back);
  std::printf("  physical copies so far: %llu (none yet — it is deferred)\n",
              (unsigned long long)(vm.stats().cow_copies - copies_before));

  // The original writes: the old value is pushed into the history object first.
  const char update[] = "hello, modified original";
  (void)actor->Write(0x10000, update, sizeof(update));
  (void)clone->Read(0x10000, read_back, sizeof(note));
  std::printf("after the original was modified, the copy still sees: \"%s\"\n", read_back);
  std::printf("  physical copies now: %llu (exactly the touched page)\n",
              (unsigned long long)(vm.stats().cow_copies - copies_before));

  // --- the history tree, in the notation of the paper's Figure 3 ---
  RegionStatus region = actor->context().GetRegionList()[0];
  std::printf("\nhistory tree rooted at the original region's cache:\n%s",
              vm.DumpTree(*region.cache).c_str());

  std::printf("\ninvariants: %s\n",
              vm.CheckInvariants() == Status::kOk ? "all hold" : "VIOLATED");
  return vm.CheckInvariants() == Status::kOk ? 0 : 1;
}
