// Scratch debugging tool: replays the property schedule with per-step audits.
#include <cstring>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/pvm/paged_vm.h"
#include "src/util/rng.h"
#include "tests/crash_harness.h"
#include "tests/dsm_harness.h"
#include "tests/pressure_harness.h"
#include "tests/test_util.h"

using namespace gvm;
constexpr size_t kPage = 4096;
constexpr size_t kSegPages = 8;
constexpr size_t kSegBytes = kSegPages * kPage;

// A spec naming a DSM-class site switches the tool into the distributed
// coherence chaos world (tests/dsm_harness.h).  Checked before the mapper
// crash-class test below because crashsiterecall/crashsiteack also start
// with "crash".
bool IsDsmSpec(const std::string& spec) {
  return spec.rfind("netdeliver", 0) == 0 || spec.rfind("netpart", 0) == 0 ||
         spec.rfind("crashsiterecall", 0) == 0 || spec.rfind("crashsiteack", 0) == 0;
}

// A spec naming a crash-class site (crashwrite / crashmidwrite / crashreply)
// switches the tool into the mapper crash-recovery world: those sites live in
// the journaled mapper and its server, not in the PVM schedule below.
bool IsCrashSpec(const std::string& spec) { return spec.rfind("crash", 0) == 0; }

// A spec naming a pressure-class site switches the tool into the overcommit
// pressure-storm world (tests/pressure_harness.h), as does the bare
// "pressurestorm" keyword.  Checked before the crash-class test because
// crashmidbatch also starts with "crash".
bool IsPressureSpec(const std::string& spec) {
  return spec.rfind("lowmem", 0) == 0 || spec.rfind("pageoutstall", 0) == 0 ||
         spec.rfind("crashmidbatch", 0) == 0;
}

int RunPressureMode(uint64_t seed, const std::vector<std::string>& args) {
  PressureStormConfig config;
  config.seed = seed;
  for (const std::string& arg : args) {
    if (arg == "pressurestorm") {
      continue;  // mode keyword, not a knob
    } else if (arg.rfind("spaces=", 0) == 0) {
      config.address_spaces = atoi(arg.c_str() + 7);
    } else if (arg.rfind("steps=", 0) == 0) {
      config.steps_per_thread = atoi(arg.c_str() + 6);
    } else if (arg.rfind("frames=", 0) == 0) {
      config.frames = strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("pages=", 0) == 0) {
      config.commit_pages_per_space = strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("wslimit=", 0) == 0) {
      config.working_set_limit_pages = strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("thrash=", 0) == 0) {
      config.thrash_ewma_threshold = strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "ipc") {
      config.use_ipc_transport = true;
    } else {
      config.fault_specs.push_back(arg);
    }
  }
  printf("pressure mode: seed=%llu spaces=%d steps=%d frames=%zu pages/space=%zu "
         "wslimit=%zu thrash=%llu transport=%s\n",
         (unsigned long long)config.seed, config.address_spaces, config.steps_per_thread,
         config.frames, config.commit_pages_per_space, config.working_set_limit_pages,
         (unsigned long long)config.thrash_ewma_threshold,
         config.use_ipc_transport ? "ipc" : "in-process");
  PressureStormReport report = RunPressureStorm(config);
  printf("nomemory=%llu crashes=%llu recoveries=%llu mapper_reads=%llu mapper_writes=%llu\n",
         (unsigned long long)report.nomemory_errors, (unsigned long long)report.crashes,
         (unsigned long long)report.recoveries, (unsigned long long)report.mapper_reads,
         (unsigned long long)report.mapper_writes);
  const PvmDetailStats& d = report.detail;
  printf("sweeps=%llu waits=%llu daemon_passes=%llu reclaimed=%llu batches=%llu "
         "batch_pages=%llu\n",
         (unsigned long long)d.sweeps_started, (unsigned long long)d.sweep_waits,
         (unsigned long long)d.daemon_passes, (unsigned long long)d.frames_reclaimed_daemon,
         (unsigned long long)d.batch_pushes, (unsigned long long)d.batch_push_pages);
  printf("soft_faults=%llu standby_hits=%llu ws_trims=%llu throttles=%llu stalls=%llu "
         "lowmem=%llu\n",
         (unsigned long long)d.soft_faults, (unsigned long long)d.standby_hits,
         (unsigned long long)d.ws_trims, (unsigned long long)d.thrash_throttles,
         (unsigned long long)d.pageout_stalls, (unsigned long long)d.low_memory_faults);
  if (!report.ok) {
    printf("FAILED:\n%s\n", report.failure.c_str());
    return 1;
  }
  printf("no divergence\n");
  return 0;
}

int RunDsmMode(uint64_t seed, const std::vector<std::string>& args) {
  DsmChaosConfig config;
  config.seed = seed;
  for (const std::string& arg : args) {
    if (arg.rfind("sites=", 0) == 0) {
      config.sites = atoi(arg.c_str() + 6);
    } else if (arg.rfind("threads=", 0) == 0) {
      config.threads_per_site = atoi(arg.c_str() + 8);
    } else if (arg.rfind("steps=", 0) == 0) {
      config.steps_per_thread = atoi(arg.c_str() + 6);
    } else if (arg.rfind("pages=", 0) == 0) {
      config.pages = strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("frames=", 0) == 0) {
      config.frames_per_site = strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "partstorm") {
      config.partition_storm = true;
    } else if (arg == "crashstorm") {
      config.crash_storm = true;
    } else {
      config.fault_specs.push_back(arg);
    }
  }
  printf("dsm mode: seed=%llu sites=%d threads/site=%d steps=%d pages=%zu%s%s\n",
         (unsigned long long)config.seed, config.sites, config.threads_per_site,
         config.steps_per_thread, config.pages,
         config.partition_storm ? " partstorm" : "", config.crash_storm ? " crashstorm" : "");
  DsmChaosReport report = RunDsmChaos(config);
  printf("committed=%llu failed_ops=%llu crashes=%llu recoveries=%llu drained=%llu\n",
         (unsigned long long)report.committed_stores, (unsigned long long)report.failed_ops,
         (unsigned long long)report.crashes, (unsigned long long)report.recoveries,
         (unsigned long long)report.grants_drained);
  printf("drops=%llu retransmits=%llu dedup=%llu aborted=%llu wal=%llu\n",
         (unsigned long long)report.stats.network_drops,
         (unsigned long long)report.stats.network_retransmits,
         (unsigned long long)report.stats.dedup_replays,
         (unsigned long long)report.stats.transitions_aborted,
         (unsigned long long)report.stats.wal_records);
  if (!report.ok) {
    printf("FAILED:\n%s\n", report.failure.c_str());
    return 1;
  }
  printf("no divergence\n");
  return 0;
}

int RunCrashMode(uint64_t seed, const std::vector<std::string>& args) {
  CrashChaosConfig config;
  config.seed = seed;
  config.frames = 12;
  config.steps_per_thread = 200;
  for (const std::string& arg : args) {
    if (arg.rfind("frames=", 0) == 0) {
      config.frames = strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("threads=", 0) == 0) {
      config.threads = atoi(arg.c_str() + 8);
    } else if (arg.rfind("steps=", 0) == 0) {
      config.steps_per_thread = atoi(arg.c_str() + 6);
    } else if (arg.rfind("caches=", 0) == 0) {
      config.caches = atoi(arg.c_str() + 7);
    } else if (arg == "ipc") {
      config.use_ipc_transport = true;
    } else {
      config.fault_specs.push_back(arg);
    }
  }
  printf("crash mode: seed=%llu threads=%d steps=%d caches=%d frames=%zu transport=%s\n",
         (unsigned long long)config.seed, config.threads, config.steps_per_thread,
         config.caches, config.frames, config.use_ipc_transport ? "ipc" : "in-process");
  CrashChaosReport report = RunCrashChaos(config);
  printf("crashes=%llu recoveries=%llu replays=%llu discarded=%llu duplicates=%llu\n",
         (unsigned long long)report.crashes, (unsigned long long)report.recoveries,
         (unsigned long long)report.journal_replays,
         (unsigned long long)report.journal_records_discarded,
         (unsigned long long)report.duplicate_requests_ignored);
  if (!report.ok) {
    printf("FAILED:\n%s\n", report.failure.c_str());
    return 1;
  }
  printf("no divergence\n");
  return 0;
}

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? atoll(argv[1]) : 1;
  // Extra arguments are fault-plan specs (e.g. "write:prob:10" "swap:nth:4"),
  // replayed deterministically from the schedule seed, plus "frames=N" to shrink
  // physical memory — fault sites only fire on real pullIn/pushOut traffic, so a
  // meaningful storm needs eviction pressure.  Crash-class specs
  // ("crashwrite:prob:5", "crashreply:nth:3", ...) switch to the mapper
  // crash-recovery chaos world; there "threads=N", "steps=N", "caches=N" and
  // "ipc" tune the storm.  DSM-class specs ("netdeliver:prob:10",
  // "netpart:nth:2", "crashsiterecall:prob:3", "crashsiteack:nth:1") switch to
  // the distributed-coherence chaos world instead; there "sites=N",
  // "threads=N", "steps=N", "pages=N", "partstorm" and "crashstorm" shape it.
  // Pressure-class specs ("lowmem:prob:8", "pageoutstall:prob:10",
  // "crashmidbatch:prob:6") — or the bare "pressurestorm" keyword — switch to
  // the overcommit pressure-storm world; there "spaces=N", "steps=N",
  // "frames=N", "pages=N", "wslimit=N", "thrash=N" and "ipc" shape it.
  size_t frames = 2048;
  FaultInjector injector(seed);
  bool have_plans = false;
  std::vector<std::string> raw_args;
  bool crash_mode = false;
  bool dsm_mode = false;
  bool pressure_mode = false;
  for (int i = 2; i < argc; ++i) {
    raw_args.push_back(argv[i]);
    if (raw_args.back() == "pressurestorm" || IsPressureSpec(raw_args.back())) {
      pressure_mode = true;  // before IsCrashSpec: crashmidbatch also starts with "crash"
    } else if (IsDsmSpec(raw_args.back())) {
      dsm_mode = true;  // before IsCrashSpec: crashsite* also starts with "crash"
    } else if (IsCrashSpec(raw_args.back())) {
      crash_mode = true;
    }
  }
  for (const std::string& arg : raw_args) {
    if (arg.rfind("frames=", 0) == 0 || arg.rfind("threads=", 0) == 0 ||
        arg.rfind("steps=", 0) == 0 || arg.rfind("caches=", 0) == 0 ||
        arg.rfind("sites=", 0) == 0 || arg.rfind("pages=", 0) == 0 ||
        arg.rfind("spaces=", 0) == 0 || arg.rfind("wslimit=", 0) == 0 ||
        arg.rfind("thrash=", 0) == 0 || arg == "ipc" || arg == "partstorm" ||
        arg == "crashstorm" || arg == "pressurestorm") {
      continue;  // world shape, not a fault spec
    }
    std::string error;
    if (!injector.ApplySpec(arg, &error)) {
      fprintf(stderr, "bad fault spec '%s': %s\n", arg.c_str(), error.c_str());
      fprintf(stderr,
              "usage: %s [seed] [frames=N] [threads=N steps=N caches=N ipc] "
              "[sites=N pages=N partstorm crashstorm] "
              "[pressurestorm spaces=N wslimit=N thrash=N] [site:mode[:args]...]...\n",
              argv[0]);
      return 2;
    }
  }
  if (pressure_mode) {
    return RunPressureMode(seed, raw_args);
  }
  if (dsm_mode) {
    return RunDsmMode(seed, raw_args);
  }
  if (crash_mode) {
    return RunCrashMode(seed, raw_args);
  }
  for (const std::string& arg : raw_args) {
    if (arg.rfind("frames=", 0) == 0) {
      frames = strtoull(arg.c_str() + 7, nullptr, 10);
      if (frames < 16) {
        fprintf(stderr, "frames=%zu too small (min 16)\n", frames);
        return 2;
      }
      continue;
    }
    have_plans = true;
  }
  PhysicalMemory memory(frames, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);
  registry.injector = &injector;
  memory.BindFaultInjector(&injector);
  if (have_plans) {
    printf("fault plans: %s\n", injector.Describe().c_str());
  }

  std::map<int, std::vector<std::byte>> ref;
  std::map<int, Cache*> live;
  int next = 0;
  Rng rng(seed);
  auto create = [&] {
    ref[next] = std::vector<std::byte>(kSegBytes);
    live[next] = *vm.CacheCreate(nullptr, "seg" + std::to_string(next));
    return next++;
  };
  create();
  const CopyPolicy kPolicies[] = {CopyPolicy::kEager, CopyPolicy::kHistory,
                                  CopyPolicy::kHistoryOnRef, CopyPolicy::kPerPage,
                                  CopyPolicy::kAuto};
  const char* kPolicyNames[] = {"eager","history","cor","perpage","auto"};

  // A mutation that was not acknowledged with kOk may have partially applied:
  // resynchronize the reference from an authoritative read with injection
  // suspended (suspension does not advance the injector's RNG).
  auto resync = [&](int id) {
    injector.set_enabled(false);
    live[id]->Read(0, ref[id].data(), kSegBytes);
    injector.set_enabled(true);
  };

  auto audit = [&](int step) {
    injector.set_enabled(false);
    for (auto& [id, cache] : live) {
      std::vector<std::byte> got(kSegBytes);
      cache->Read(0, got.data(), kSegBytes);
      if (memcmp(got.data(), ref[id].data(), kSegBytes) != 0) {
        size_t i = 0;
        while (got[i] == ref[id][i]) ++i;
        printf("DIVERGE step=%d seg=%d first_byte=%zu (page %zu) got=%02x want=%02x\n",
               step, id, i, i / kPage, (unsigned)got[i], (unsigned)ref[id][i]);
        printf("%s\n", vm.DumpTree(*cache).c_str());
        injector.set_enabled(true);
        return false;
      }
    }
    injector.set_enabled(true);
    return true;
  };

  for (int step = 0; step < 300; ++step) {
    uint64_t roll = rng.Below(100);
    auto pick = [&]() -> int {
      auto it = live.begin();
      std::advance(it, rng.Below(live.size()));
      return it->first;
    };
    if (live.empty() || (roll < 10 && live.size() < 8)) {
      int id = create();
      printf("%3d create seg%d\n", step, id);
    } else if (roll < 40) {
      int id = pick();
      size_t off = rng.Below(kSegBytes - 1);
      size_t size = 1 + rng.Below(std::min<size_t>(kSegBytes - off, 3 * kPage));
      std::vector<std::byte> data(size);
      for (auto& b : data) b = (std::byte)rng.Below(256);
      Status s = live[id]->Write(off, data.data(), size);
      if (s == Status::kOk) {
        memcpy(ref[id].data() + off, data.data(), size);
      } else {
        resync(id);
      }
      printf("%3d write seg%d off=%zu size=%zu%s%s\n", step, id, off, size,
             s == Status::kOk ? "" : " !",
             s == Status::kOk ? "" : std::string(StatusName(s)).c_str());
    } else if (roll < 70 && live.size() >= 2) {
      int src = pick();
      int dst = pick();
      if (src == dst) continue;
      size_t pages = 1 + rng.Below(kSegPages);
      size_t sp = rng.Below(kSegPages - pages + 1);
      size_t dp = rng.Below(kSegPages - pages + 1);
      CopyPolicy policy = kPolicies[rng.Below(5)];
      Status s =
          live[src]->CopyTo(*live[dst], sp * kPage, dp * kPage, pages * kPage, policy);
      if (s == Status::kOk) {
        memmove(ref[dst].data() + dp * kPage, ref[src].data() + sp * kPage, pages * kPage);
      } else {
        resync(dst);
      }
      printf("%3d copy seg%d[%zu..%zu] -> seg%d[%zu..] policy=%s%s%s\n", step, src, sp,
             sp + pages - 1, dst, dp, kPolicyNames[(int)policy],
             s == Status::kOk ? "" : " !",
             s == Status::kOk ? "" : std::string(StatusName(s)).c_str());
    } else if (roll < 85) {
      int id = pick();
      size_t off = rng.Below(kSegBytes - 1);
      size_t size = 1 + rng.Below(std::min<size_t>(kSegBytes - off, 3 * kPage));
      std::vector<std::byte> got(size);
      live[id]->Read(off, got.data(), size);
      printf("%3d read seg%d off=%zu\n", step, id, off);
    } else if (roll < 95 && live.size() > 1) {
      int id = pick();
      live[id]->Destroy();
      live.erase(id);
      ref.erase(id);
      printf("%3d destroy seg%d\n", step, id);
    } else {
      int id = pick();
      std::vector<std::byte> got(kSegBytes);
      live[id]->Read(0, got.data(), kSegBytes);
      printf("%3d audit seg%d\n", step, id);
    }
    {
      printf("     ");
      for (auto& [id, cache] : live) {
        printf(" s%d:%zu", id, cache->ResidentPages());
      }
      printf("\n");
    }
    if (!audit(step)) {
      if (vm.CheckInvariants() != Status::kOk) printf("(invariants also broken)\n");
      return 1;
    }
  }
  if (have_plans) {
    const PvmDetailStats& d = vm.detail_stats();
    printf("fault triggers=%llu io_retries=%llu permanent=%llu requeues=%llu degraded=%llu\n",
           (unsigned long long)injector.total_triggers(), (unsigned long long)d.io_retries,
           (unsigned long long)d.io_permanent_failures, (unsigned long long)d.pushout_requeues,
           (unsigned long long)d.degraded_segments);
  }
  printf("no divergence\n");
  return 0;
}
