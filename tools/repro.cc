// Scratch debugging tool: replays the property schedule with per-step audits.
#include <cstring>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/pvm/paged_vm.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

using namespace gvm;
constexpr size_t kPage = 4096;
constexpr size_t kSegPages = 8;
constexpr size_t kSegBytes = kSegPages * kPage;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? atoll(argv[1]) : 1;
  PhysicalMemory memory(2048, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);

  std::map<int, std::vector<std::byte>> ref;
  std::map<int, Cache*> live;
  int next = 0;
  Rng rng(seed);
  auto create = [&] {
    ref[next] = std::vector<std::byte>(kSegBytes);
    live[next] = *vm.CacheCreate(nullptr, "seg" + std::to_string(next));
    return next++;
  };
  create();
  const CopyPolicy kPolicies[] = {CopyPolicy::kEager, CopyPolicy::kHistory,
                                  CopyPolicy::kHistoryOnRef, CopyPolicy::kPerPage,
                                  CopyPolicy::kAuto};
  const char* kPolicyNames[] = {"eager","history","cor","perpage","auto"};

  auto audit = [&](int step) {
    for (auto& [id, cache] : live) {
      std::vector<std::byte> got(kSegBytes);
      cache->Read(0, got.data(), kSegBytes);
      if (memcmp(got.data(), ref[id].data(), kSegBytes) != 0) {
        size_t i = 0;
        while (got[i] == ref[id][i]) ++i;
        printf("DIVERGE step=%d seg=%d first_byte=%zu (page %zu) got=%02x want=%02x\n",
               step, id, i, i / kPage, (unsigned)got[i], (unsigned)ref[id][i]);
        printf("%s\n", vm.DumpTree(*cache).c_str());
        return false;
      }
    }
    return true;
  };

  for (int step = 0; step < 300; ++step) {
    uint64_t roll = rng.Below(100);
    auto pick = [&]() -> int {
      auto it = live.begin();
      std::advance(it, rng.Below(live.size()));
      return it->first;
    };
    if (live.empty() || (roll < 10 && live.size() < 8)) {
      int id = create();
      printf("%3d create seg%d\n", step, id);
    } else if (roll < 40) {
      int id = pick();
      size_t off = rng.Below(kSegBytes - 1);
      size_t size = 1 + rng.Below(std::min<size_t>(kSegBytes - off, 3 * kPage));
      std::vector<std::byte> data(size);
      for (auto& b : data) b = (std::byte)rng.Below(256);
      live[id]->Write(off, data.data(), size);
      memcpy(ref[id].data() + off, data.data(), size);
      printf("%3d write seg%d off=%zu size=%zu\n", step, id, off, size);
    } else if (roll < 70 && live.size() >= 2) {
      int src = pick();
      int dst = pick();
      if (src == dst) continue;
      size_t pages = 1 + rng.Below(kSegPages);
      size_t sp = rng.Below(kSegPages - pages + 1);
      size_t dp = rng.Below(kSegPages - pages + 1);
      CopyPolicy policy = kPolicies[rng.Below(5)];
      live[src]->CopyTo(*live[dst], sp * kPage, dp * kPage, pages * kPage, policy);
      memmove(ref[dst].data() + dp * kPage, ref[src].data() + sp * kPage, pages * kPage);
      printf("%3d copy seg%d[%zu..%zu] -> seg%d[%zu..] policy=%s\n", step, src, sp,
             sp + pages - 1, dst, dp, kPolicyNames[(int)policy]);
    } else if (roll < 85) {
      int id = pick();
      size_t off = rng.Below(kSegBytes - 1);
      size_t size = 1 + rng.Below(std::min<size_t>(kSegBytes - off, 3 * kPage));
      std::vector<std::byte> got(size);
      live[id]->Read(off, got.data(), size);
      printf("%3d read seg%d off=%zu\n", step, id, off);
    } else if (roll < 95 && live.size() > 1) {
      int id = pick();
      live[id]->Destroy();
      live.erase(id);
      ref.erase(id);
      printf("%3d destroy seg%d\n", step, id);
    } else {
      int id = pick();
      std::vector<std::byte> got(kSegBytes);
      live[id]->Read(0, got.data(), kSegBytes);
      printf("%3d audit seg%d\n", step, id);
    }
    {
      printf("     ");
      for (auto& [id, cache] : live) {
        printf(" s%d:%zu", id, cache->ResidentPages());
      }
      printf("\n");
    }
    if (!audit(step)) {
      if (vm.CheckInvariants() != Status::kOk) printf("(invariants also broken)\n");
      return 1;
    }
  }
  printf("no divergence\n");
  return 0;
}
