// gvm-lint libTooling frontend (built only with -DGVM_LINT_WITH_CLANG=ON).
//
// Lowers real Clang ASTs into the same Project model the internal frontend
// produces (model.h), so rules.cc runs unchanged on either.  The payoff over
// the internal frontend is preprocessing fidelity: macros are expanded,
// templates are seen post-instantiation-independent, and headers are lowered
// exactly once through the TU that includes them.
//
// The lowering is intentionally event-shaped rather than CFG-shaped: we walk
// each function body in source order and emit the same kGuardAcquire /
// kGuardRelease / kGatherOpen / kCall stream the rule engine replays.  That
// keeps the two frontends diff-able against each other (`--frontend clang`
// vs the default) — any disagreement is a frontend bug, not a rule change.
#if defined(GVM_LINT_HAVE_CLANG)

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/raw_ostream.h"

#include "tools/lint/clang_frontend.h"

namespace gvmlint {
namespace {

using clang::dyn_cast;
using clang::isa;

std::string TypeHead(clang::QualType qt) {
  qt = qt.getNonReferenceType().getUnqualifiedType();
  if (const auto* rt = qt->getAs<clang::RecordType>()) {
    return rt->getDecl()->getQualifiedNameAsString();
  }
  return qt.getAsString();
}

bool IsMutexType(const std::string& head) {
  return head == "gvm::Mutex" || head == "gvm::SharedMutex" ||
         head == "Mutex" || head == "SharedMutex";
}

bool IsInternallySynced(const std::string& head) {
  return head.find("CondVar") != std::string::npos ||
         head.find("SleepQueue") != std::string::npos ||
         head.find("Notification") != std::string::npos;
}

bool IsGuardType(const std::string& head) {
  return head.find("MutexLock") != std::string::npos ||
         head.find("ReaderLock") != std::string::npos;
}

bool IsGatherType(const std::string& head) {
  return head.find("TlbGatherScope") != std::string::npos;
}

// Source text of an expression, used for lock_expr / args so the rule
// engine's key extraction (TrailingIdent) behaves identically.
std::string ExprText(const clang::Expr* e, const clang::ASTContext& ctx) {
  if (e == nullptr) return "";
  const clang::SourceManager& sm = ctx.getSourceManager();
  clang::CharSourceRange range =
      clang::CharSourceRange::getTokenRange(e->getSourceRange());
  bool invalid = false;
  llvm::StringRef text =
      clang::Lexer::getSourceText(range, sm, ctx.getLangOpts(), &invalid);
  return invalid ? "" : text.str();
}

// Walks one function body in source order, emitting events.  The scope
// open/close events come from CompoundStmt boundaries, matching the
// internal frontend's brace tracking.
class BodyLowerer : public clang::RecursiveASTVisitor<BodyLowerer> {
 public:
  BodyLowerer(clang::ASTContext& ctx, FunctionInfo* fn)
      : ctx_(ctx), fn_(fn) {}

  bool shouldVisitImplicitCode() const { return false; }

  bool TraverseCompoundStmt(clang::CompoundStmt* s) {
    // The outermost CompoundStmt is the function body itself: the internal
    // frontend treats it as depth 0, so only nested blocks emit scopes.
    if (depth_++ > 0) Emit(s->getLBracLoc(), Event::kScopeOpen);
    bool ok = RecursiveASTVisitor::TraverseCompoundStmt(s);
    if (--depth_ > 0) Emit(s->getRBracLoc(), Event::kScopeClose);
    return ok;
  }

  bool VisitDeclStmt(clang::DeclStmt* s) {
    for (const clang::Decl* d : s->decls()) {
      const auto* vd = dyn_cast<clang::VarDecl>(d);
      if (vd == nullptr) continue;
      const std::string head = TypeHead(vd->getType());
      if (IsGuardType(head)) {
        Event& e = Emit(vd->getLocation(), Event::kGuardAcquire);
        e.var = vd->getNameAsString();
        e.shared = head.find("Reader") != std::string::npos;
        if (const auto* init = dyn_cast_or_null<clang::CXXConstructExpr>(
                vd->getInit() ? vd->getInit()->IgnoreImplicit() : nullptr)) {
          if (init->getNumArgs() > 0) {
            e.lock_expr = ExprText(init->getArg(0), ctx_);
            e.lock_key = TrailingIdent(e.lock_expr);
          }
        }
      } else if (IsGatherType(head)) {
        Event& e = Emit(vd->getLocation(), Event::kGatherOpen);
        e.var = vd->getNameAsString();
      } else if (IsMutexType(head)) {
        Event& e = Emit(vd->getLocation(), Event::kLocalMutex);
        e.var = vd->getNameAsString();
        if (const auto* init = dyn_cast_or_null<clang::CXXConstructExpr>(
                vd->getInit() ? vd->getInit()->IgnoreImplicit() : nullptr)) {
          if (init->getNumArgs() > 0) {
            e.rank = ExprText(init->getArg(0), ctx_);
          }
        }
      }
    }
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* call) {
    const auto* method = call->getMethodDecl();
    if (method == nullptr) return true;
    const std::string name = method->getNameAsString();
    const clang::Expr* obj = call->getImplicitObjectArgument();
    const std::string recv_text = ExprText(obj, ctx_);
    const std::string recv_head = obj ? TypeHead(obj->getType()) : "";

    if (IsGuardType(recv_head) || IsMutexType(recv_head)) {
      Event::Kind kind;
      if (name == "unlock" || name == "Unlock" || name == "UnlockShared") {
        kind = Event::kGuardRelease;
      } else if (name == "lock" && IsGuardType(recv_head)) {
        kind = Event::kGuardReacquire;
      } else if (name == "Lock" || name == "LockShared") {
        kind = Event::kGuardAcquire;
      } else {
        return true;
      }
      Event& e = Emit(call->getExprLoc(), kind);
      if (IsGuardType(recv_head)) {
        e.var = TrailingIdent(recv_text);
      } else {
        e.lock_expr = recv_text;
        e.lock_key = TrailingIdent(recv_text);
      }
      e.shared = name.find("Shared") != std::string::npos;
      return true;
    }

    Event& e = Emit(call->getExprLoc(), Event::kCall);
    e.callee = name;
    e.receiver = recv_text;
    for (const clang::Expr* arg : call->arguments()) {
      e.args.push_back(ExprText(arg, ctx_));
    }
    if (!e.args.empty()) e.arg_key = TrailingIdent(e.args.back());
    // Discard detection: Clang knows exactly whether the full-expression
    // value is used, which the internal frontend approximates lexically.
    if (method->getReturnType().getAsString() == "Status" &&
        IsDiscarded(call)) {
      e.var = "<discarded>";
    }
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* call) {
    if (isa<clang::CXXMemberCallExpr>(call) ||
        isa<clang::CXXOperatorCallExpr>(call)) {
      return true;  // handled above / uninteresting
    }
    const auto* callee = call->getDirectCallee();
    if (callee == nullptr) return true;
    Event& e = Emit(call->getExprLoc(), Event::kCall);
    e.callee = callee->getNameAsString();
    for (const clang::Expr* arg : call->arguments()) {
      e.args.push_back(ExprText(arg, ctx_));
    }
    if (!e.args.empty()) e.arg_key = TrailingIdent(e.args.back());
    if (callee->getReturnType().getAsString() == "Status" &&
        IsDiscarded(call)) {
      e.var = "<discarded>";
    }
    return true;
  }

 private:
  Event& Emit(clang::SourceLocation loc, Event::Kind kind) {
    Event e;
    e.kind = kind;
    e.line = static_cast<int>(
        ctx_.getSourceManager().getSpellingLineNumber(loc));
    fn_->events.push_back(e);
    return fn_->events.back();
  }

  // True when the call's value is a full-expression statement (not assigned,
  // returned, compared, cast, or passed along).
  bool IsDiscarded(const clang::Expr* call) {
    const auto parents = ctx_.getParents(*call);
    for (const auto& p : parents) {
      if (const clang::Stmt* s = p.get<clang::Stmt>()) {
        if (isa<clang::CompoundStmt>(s)) return true;
        if (isa<clang::ExprWithCleanups>(s)) return IsDiscarded(
            dyn_cast<clang::Expr>(s));
      }
    }
    return false;
  }

  clang::ASTContext& ctx_;
  FunctionInfo* fn_;
  int depth_ = 0;
};

class TuLowerer : public clang::RecursiveASTVisitor<TuLowerer> {
 public:
  TuLowerer(clang::ASTContext& ctx, Project* project)
      : ctx_(ctx), project_(project) {}

  bool shouldVisitTemplateInstantiations() const { return false; }

  bool VisitCXXRecordDecl(clang::CXXRecordDecl* rd) {
    if (!rd->isThisDeclarationADefinition() || !InProject(rd->getLocation())) {
      return true;
    }
    ClassInfo& ci = project_->classes[rd->getNameAsString()];
    ci.name = rd->getNameAsString();
    ci.file = FileOf(rd->getLocation());
    ci.line = LineOf(rd->getLocation());
    if (rd->hasDefinition()) {
      for (const auto& base : rd->bases()) {
        ci.bases.push_back(TypeHead(base.getType()));
      }
    }
    for (const clang::FieldDecl* f : rd->fields()) {
      MemberInfo m;
      m.name = f->getNameAsString();
      m.type_head = TypeHead(f->getType());
      m.file = FileOf(f->getLocation());
      m.line = LineOf(f->getLocation());
      m.is_mutex = IsMutexType(m.type_head);
      m.is_const = f->getType().isConstQualified();
      m.is_reference = f->getType()->isReferenceType();
      m.is_atomic = m.type_head.find("atomic") != std::string::npos;
      m.is_internally_synced = IsInternallySynced(m.type_head);
      // GVM_GUARDED_BY expands to a clang thread-safety attribute when
      // compiled under -DGVM_LINT_CLANG_PASS, so the AST carries it.
      if (const auto* attr = f->getAttr<clang::GuardedByAttr>()) {
        m.guarded_by = true;
        m.guard_key = TrailingIdent(ExprText(attr->getArg(), ctx_));
      }
      ci.members.push_back(std::move(m));
    }
    return true;
  }

  bool VisitFunctionDecl(clang::FunctionDecl* fd) {
    if (!InProject(fd->getLocation()) || fd->isImplicit()) return true;
    const auto* method = dyn_cast<clang::CXXMethodDecl>(fd);
    const std::string class_name =
        method ? method->getParent()->getNameAsString() : "";

    MethodDecl decl;
    decl.name = fd->getNameAsString();
    decl.class_name = class_name;
    decl.file = FileOf(fd->getLocation());
    decl.line = LineOf(fd->getLocation());
    decl.returns_status = fd->getReturnType().getAsString() == "Status";
    decl.nodiscard = fd->hasAttr<clang::WarnUnusedResultAttr>();
    if (const auto* attr = fd->getAttr<clang::RequiresCapabilityAttr>()) {
      for (const clang::Expr* a : attr->args()) {
        decl.requires_keys.push_back(TrailingIdent(ExprText(a, ctx_)));
      }
    }
    for (const clang::ParmVarDecl* p : fd->parameters()) {
      if (IsGuardType(TypeHead(p->getType())) &&
          p->getType()->isReferenceType()) {
        decl.has_guard_param = true;
        decl.guard_param_name = p->getNameAsString();
      }
    }
    if (!class_name.empty()) {
      project_->classes[class_name].method_decls.push_back(decl);
    }

    if (!fd->doesThisDeclarationHaveABody()) return true;
    FileModel* fm = FileFor(decl.file);
    auto fn = std::make_unique<FunctionInfo>();
    fn->name = decl.name;
    fn->class_name = class_name;
    fn->file = decl.file;
    fn->line = decl.line;
    fn->requires_keys = decl.requires_keys;
    fn->has_guard_param = decl.has_guard_param;
    fn->guard_param_name = decl.guard_param_name;
    fn->returns_status = decl.returns_status;
    BodyLowerer lower(ctx_, fn.get());
    lower.TraverseStmt(fd->getBody());
    fm->functions.push_back(std::move(fn));
    return true;
  }

 private:
  bool InProject(clang::SourceLocation loc) {
    const clang::SourceManager& sm = ctx_.getSourceManager();
    return loc.isValid() && !sm.isInSystemHeader(loc);
  }
  std::string FileOf(clang::SourceLocation loc) {
    return ctx_.getSourceManager().getFilename(loc).str();
  }
  int LineOf(clang::SourceLocation loc) {
    return static_cast<int>(
        ctx_.getSourceManager().getSpellingLineNumber(loc));
  }
  FileModel* FileFor(const std::string& path) {
    for (auto& f : project_->files) {
      if (f->path == path) return f.get();
    }
    auto fm = std::make_unique<FileModel>();
    fm->path = path;
    fm->effective_path = path;
    project_->files.push_back(std::move(fm));
    return project_->files.back().get();
  }

  clang::ASTContext& ctx_;
  Project* project_;
};

class LowerAction : public clang::ASTFrontendAction {
 public:
  explicit LowerAction(Project* project) : project_(project) {}

  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    class Consumer : public clang::ASTConsumer {
     public:
      explicit Consumer(Project* project) : project_(project) {}
      void HandleTranslationUnit(clang::ASTContext& ctx) override {
        TuLowerer lower(ctx, project_);
        lower.TraverseDecl(ctx.getTranslationUnitDecl());
      }

     private:
      Project* project_;
    };
    return std::make_unique<Consumer>(project_);
  }

 private:
  Project* project_;
};

class LowerActionFactory : public clang::tooling::FrontendActionFactory {
 public:
  explicit LowerActionFactory(Project* project) : project_(project) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<LowerAction>(project_);
  }

 private:
  Project* project_;
};

}  // namespace

bool ClangFrontendAvailable() { return true; }

bool ClangParseFiles(const std::string& compdb_path,
                     const std::vector<std::string>& files, Project* project) {
  std::string err;
  auto compdb = clang::tooling::CompilationDatabase::loadFromDirectory(
      llvm::sys::path::parent_path(compdb_path).str(), err);
  if (compdb == nullptr) {
    llvm::errs() << "gvm-lint: " << err << "\n";
    return false;
  }
  clang::tooling::ClangTool tool(*compdb, files);
  LowerActionFactory factory(project);
  return tool.run(&factory) == 0;
}

}  // namespace gvmlint

#endif  // GVM_LINT_HAVE_CLANG
