// gvm-lint internal frontend: lowers a lexed file into the rule model.
//
// This is a structural parser, not a full C++ parser: it tracks namespaces,
// classes (with bases and members), function definitions, and inside bodies
// the lexical order of guard acquisitions/releases, gather scopes and call
// sites.  The tree's uniform style (one declaration per line, RAII guards,
// annotation macros) is what makes this tractable; anything the parser cannot
// classify it skips without emitting events, so unknown constructs can only
// cause missed diagnostics, never crashes.
#include "tools/lint/model.h"

#include <algorithm>
#include <cassert>

namespace gvmlint {
namespace {

using Toks = std::vector<Token>;

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",    "switch",  "return", "sizeof",
      "catch",  "new",      "delete",   "case",    "goto",   "else",
      "do",     "alignof",  "decltype", "throw",   "co_await"};
  return kKeywords.count(s) != 0;
}

bool IsGuardType(const std::string& s) {
  return s == "MutexLock" || s == "WriterLock" || s == "ReaderLock" ||
         s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

bool IsSharedGuardType(const std::string& s) {
  return s == "ReaderLock" || s == "shared_lock";
}

bool IsMutexType(const std::string& s) {
  return s == "Mutex" || s == "SharedMutex" || s == "mutex" ||
         s == "shared_mutex" || s == "recursive_mutex";
}

// Types that synchronize internally and are therefore exempt from the
// annotation-coverage rule when they appear as members.
bool IsInternallySyncedType(const std::string& head) {
  return head == "Mutex" || head == "SharedMutex" || head == "CondVar" ||
         head == "SleepQueue" || head == "std::mutex" ||
         head == "std::shared_mutex" || head == "std::condition_variable";
}

class Parser {
 public:
  Parser(const LexedFile& lexed, FileModel* file, Project* project)
      : toks_(lexed.tokens), file_(file), project_(project) {}

  void Run() {
    ParseOuter(/*class_name=*/"", toks_.size() - 1);
    for (size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind == Token::kIdent && toks_[i].text == "kRetry") {
        file_->kretry_lines.push_back(toks_[i].line);
      }
    }
  }

 private:
  const Toks& toks_;
  FileModel* file_;
  Project* project_;
  size_t pos_ = 0;

  const Token& Tok(size_t i) const {
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool Is(size_t i, const char* text) const { return Tok(i).text == text; }

  // Advances past a balanced group starting at an opener token; returns the
  // index one past the matching closer.
  size_t SkipBalanced(size_t i) const {
    const std::string& open = Tok(i).text;
    std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    for (; i < toks_.size() - 1; ++i) {
      const std::string& t = Tok(i).text;
      if (t == open) {
        ++depth;
      } else if (t == close) {
        if (--depth == 0) return i + 1;
      } else if (open != "{" && t == "{") {
        // Nested brace group inside parens (lambda body, brace-init).
        i = SkipBalanced(i) - 1;
      }
    }
    return toks_.size() - 1;
  }

  static std::string Textify(const Toks& toks, size_t from, size_t to) {
    std::string out;
    for (size_t i = from; i < to; ++i) {
      if (!out.empty() && toks[i].kind == Token::kIdent &&
          out.back() != ':' && out.back() != '.' && out.back() != '>' &&
          out.back() != '(' && out.back() != '*' && out.back() != '&') {
        out += ' ';
      }
      out += toks[i].text;
    }
    return out;
  }

  std::string LastIdentIn(size_t from, size_t to) const {
    for (size_t i = to; i-- > from;) {
      if (Tok(i).kind == Token::kIdent) return Tok(i).text;
    }
    return "";
  }

  // ---- outer (namespace / class) scope -----------------------------------

  // Parses declarations until the brace closing this scope (or EOF).
  void ParseOuter(const std::string& class_name, size_t hard_end) {
    while (pos_ < toks_.size() - 1 && pos_ < hard_end) {
      const Token& t = Tok(pos_);
      if (t.text == "}") {
        return;  // caller consumes
      }
      if (t.text == ";") {
        ++pos_;
        continue;
      }
      if (t.text == "namespace") {
        ParseNamespace(hard_end);
        continue;
      }
      if (t.text == "template") {
        ++pos_;
        if (Is(pos_, "<")) pos_ = SkipAngles(pos_);
        continue;  // the templated declaration follows
      }
      if ((t.text == "class" || t.text == "struct") && ClassHasBody()) {
        ParseClass();
        continue;
      }
      if (t.text == "enum") {
        SkipToSemicolonBalanced();
        continue;
      }
      if (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
          t.text == "extern") {
        SkipToSemicolonBalanced();
        continue;
      }
      if ((t.text == "public" || t.text == "private" || t.text == "protected") &&
          Is(pos_ + 1, ":")) {
        pos_ += 2;
        continue;
      }
      ParseDeclaration(class_name);
    }
  }

  size_t SkipAngles(size_t i) const {
    int depth = 0;
    for (; i < toks_.size() - 1; ++i) {
      const std::string& t = Tok(i).text;
      if (t == "<") ++depth;
      else if (t == ">") { if (--depth == 0) return i + 1; }
      else if (t == ">>") { depth -= 2; if (depth <= 0) return i + 1; }
      else if (t == "(" || t == "[" || t == "{") i = SkipBalanced(i) - 1;
      else if (t == ";") return i;  // bail: not a template list after all
    }
    return toks_.size() - 1;
  }

  void ParseNamespace(size_t hard_end) {
    ++pos_;  // 'namespace'
    while (Tok(pos_).kind == Token::kIdent || Is(pos_, "::")) ++pos_;
    if (Is(pos_, "=")) {  // namespace alias
      SkipToSemicolonBalanced();
      return;
    }
    if (Is(pos_, "{")) {
      ++pos_;
      ParseOuter("", hard_end);
      if (Is(pos_, "}")) ++pos_;
    }
  }

  // After `class`/`struct`, does a body follow (vs. a forward declaration or
  // an elaborated type in a member declaration)?
  bool ClassHasBody() const {
    size_t i = pos_ + 1;
    while (i < toks_.size() - 1) {
      const std::string& t = Tok(i).text;
      if (t == "{") return true;
      if (t == ";" || t == ")" || t == ">" || t == ",") return false;
      if (t == "(") {  // alignas(...) / GVM_CAPABILITY(...)
        i = SkipBalanced(i);
        continue;
      }
      ++i;
    }
    return false;
  }

  void ParseClass() {
    ++pos_;  // class/struct
    std::string name;
    std::vector<std::string> bases;
    int line = Tok(pos_).line;
    bool in_bases = false;
    while (pos_ < toks_.size() - 1 && !Is(pos_, "{")) {
      const Token& t = Tok(pos_);
      if (t.text == "(") {
        pos_ = SkipBalanced(pos_);
        continue;
      }
      if (t.text == ":") {
        in_bases = true;
      } else if (t.kind == Token::kIdent && t.text != "final" &&
                 t.text != "public" && t.text != "private" &&
                 t.text != "protected" && t.text != "virtual" &&
                 t.text != "alignas") {
        if (in_bases) {
          // Take the last component of qualified bases.
          if (!Is(pos_ + 1, "::")) bases.push_back(t.text);
        } else {
          name = t.text;
        }
      } else if (t.text == "<") {
        pos_ = SkipAngles(pos_);
        continue;
      }
      ++pos_;
    }
    if (!Is(pos_, "{")) return;
    ++pos_;  // {
    ClassInfo& info = project_->classes[name];
    if (info.name.empty()) {
      info.name = name;
      info.file = file_->effective_path;
      info.line = line;
    }
    for (const std::string& b : bases) info.bases.push_back(b);
    ParseOuter(name, toks_.size() - 1);
    if (Is(pos_, "}")) ++pos_;
    // Optional trailing declarator (`} instance_;`).
    SkipToSemicolonBalanced();
  }

  void SkipToSemicolonBalanced() {
    while (pos_ < toks_.size() - 1) {
      const std::string& t = Tok(pos_).text;
      if (t == ";") {
        ++pos_;
        return;
      }
      if (t == "(" || t == "{" || t == "[") {
        pos_ = SkipBalanced(pos_);
        continue;
      }
      if (t == "}") return;  // scope closer reached without ';'
      ++pos_;
    }
  }

  // ---- one declaration at class / namespace scope ------------------------

  struct DeclScan {
    size_t start = 0;
    size_t param_open = 0;   // index of the parameter-list '(' (0 = none)
    size_t param_close = 0;  // one past its ')'
    size_t body_open = 0;    // index of the function-body '{' (0 = none)
    size_t end = 0;          // one past ';' for non-definitions
    bool has_operator = false;
  };

  // Scans one declaration without consuming it; classifies parameter list and
  // body.  Returns false if the construct is unparseable (caller skips it).
  bool ScanDeclaration(DeclScan* out) {
    size_t i = pos_;
    out->start = pos_;
    bool seen_params = false;
    bool in_init_list = false;
    while (i < toks_.size() - 1) {
      const std::string& t = Tok(i).text;
      if (t == "operator") out->has_operator = true;
      if (t == ";") {
        out->end = i + 1;
        return true;
      }
      if (t == "}") {
        out->end = i;  // malformed / scope end; consume nothing past it
        return true;
      }
      if (t == "<" && Tok(i - 1).kind == Token::kIdent) {
        size_t after = SkipAngles(i);
        if (after > i + 1) {
          i = after;
          continue;
        }
      }
      if (t == "[") {
        i = SkipBalanced(i);
        continue;
      }
      if (t == "(") {
        const Token& prev = Tok(i - 1);
        bool skippable_group =
            prev.text == "alignas" || prev.text == "decltype" ||
            prev.text == "noexcept" ||
            (prev.kind == Token::kIdent && prev.text.rfind("GVM_", 0) == 0);
        if (!seen_params && prev.kind == Token::kIdent && !skippable_group &&
            !out->has_operator) {
          out->param_open = i;
          out->param_close = SkipBalanced(i);
          seen_params = true;
          i = out->param_close;
          continue;
        }
        i = SkipBalanced(i);
        continue;
      }
      if (t == ":" && seen_params && Tok(i - 1).text != ":") {
        in_init_list = true;
        ++i;
        continue;
      }
      if (t == "{") {
        const std::string& prev = Tok(i - 1).text;
        if (seen_params &&
            (in_init_list ? (prev == ")" || prev == "}")
                          : true)) {
          // Function body (possibly after trailing specifiers / init list).
          out->body_open = i;
          return true;
        }
        if (!seen_params || prev == "=" || Tok(i - 1).kind == Token::kIdent ||
            prev == ">" || prev == "]" || prev == ",") {
          // Brace initializer.
          i = SkipBalanced(i);
          continue;
        }
        out->body_open = i;
        return true;
      }
      ++i;
    }
    out->end = toks_.size() - 1;
    return true;
  }

  // Extracts GVM_REQUIRES keys and allow notes between the parameter list and
  // the terminator.
  void ScanTrailing(const DeclScan& d, std::vector<std::string>* requires_keys,
                    bool* nodiscard_unused) {
    (void)nodiscard_unused;
    size_t stop = d.body_open != 0 ? d.body_open : d.end;
    for (size_t i = d.param_close; i < stop; ++i) {
      const Token& t = Tok(i);
      if (t.kind == Token::kIdent &&
          (t.text == "GVM_REQUIRES" || t.text == "GVM_REQUIRES_SHARED") &&
          Is(i + 1, "(")) {
        size_t close = SkipBalanced(i + 1);
        SplitArgsTrailing(i + 2, close - 1, requires_keys);
        i = close - 1;
      }
    }
  }

  // Splits [from, to) at top-level commas; appends each piece's trailing
  // identifier.
  void SplitArgsTrailing(size_t from, size_t to, std::vector<std::string>* out) {
    size_t piece_start = from;
    size_t i = from;
    while (i < to) {
      const std::string& t = Tok(i).text;
      if (t == "(" || t == "[" || t == "{") {
        i = SkipBalanced(i);
        continue;
      }
      if (t == ",") {
        std::string id = LastIdentIn(piece_start, i);
        if (!id.empty()) out->push_back(id);
        piece_start = i + 1;
      }
      ++i;
    }
    if (piece_start < to) {
      std::string id = LastIdentIn(piece_start, to);
      if (!id.empty()) out->push_back(id);
    }
  }

  // Leading return-type check: skips specifiers and attributes, returns the
  // first type token.
  std::string LeadingType(const DeclScan& d, bool* nodiscard) const {
    size_t i = d.start;
    size_t stop = d.param_open != 0 ? d.param_open : d.end;
    while (i < stop) {
      const Token& t = Tok(i);
      if (t.text == "[" && Is(i + 1, "[")) {
        size_t close = SkipBalanced(i);
        for (size_t k = i; k < close; ++k) {
          if (Tok(k).text == "nodiscard") *nodiscard = true;
        }
        i = close;
        continue;
      }
      if (t.kind == Token::kIdent &&
          (t.text == "virtual" || t.text == "inline" || t.text == "static" ||
           t.text == "explicit" || t.text == "constexpr" ||
           t.text == "friend" || t.text == "mutable")) {
        ++i;
        continue;
      }
      if (t.kind == Token::kIdent) return t.text;
      ++i;
    }
    return "";
  }

  // Name chain immediately before the parameter list: `A::B::name` or `~X`.
  void FunctionName(const DeclScan& d, std::string* name,
                    std::string* qualifier) const {
    size_t i = d.param_open;
    std::vector<std::string> parts;
    size_t k = i;
    while (k > d.start) {
      const Token& prev = Tok(k - 1);
      if (prev.kind == Token::kIdent) {
        parts.push_back(prev.text);
        if (k >= 2 && Is(k - 2, "~")) {
          parts.back() = "~" + parts.back();
          --k;
        }
        if (k >= 2 && Is(k - 2, "::")) {
          k -= 2;
          continue;
        }
      } else if (prev.text == ">") {
        // Templated qualifier; give up on the qualifier chain.
      }
      break;
    }
    if (parts.empty()) return;
    *name = parts.front();
    std::vector<std::string> quals(parts.begin() + 1, parts.end());
    std::reverse(quals.begin(), quals.end());
    std::string q;
    for (const std::string& part : quals) {
      if (!q.empty()) q += "::";
      q += part;
    }
    *qualifier = q;
  }

  // Detects a `MutexLock&` parameter.
  void GuardParam(const DeclScan& d, bool* has, std::string* name) const {
    if (d.param_open == 0) return;
    for (size_t i = d.param_open + 1; i + 2 < d.param_close; ++i) {
      if (Tok(i).text == "MutexLock" && Is(i + 1, "&") &&
          Tok(i + 2).kind == Token::kIdent) {
        *has = true;
        *name = Tok(i + 2).text;
        return;
      }
    }
  }

  // Directives attach on the flagged line itself or as a comment on the line
  // directly above it.
  std::set<std::string> AllowsAt(int line) const {
    std::set<std::string> out;
    for (int l : {line, line - 1}) {
      auto it = file_->notes.find(l);
      if (it != file_->notes.end()) {
        out.insert(it->second.allows.begin(), it->second.allows.end());
      }
    }
    return out;
  }

  void ParseDeclaration(const std::string& class_name) {
    DeclScan d;
    if (!ScanDeclaration(&d)) {
      SkipToSemicolonBalanced();
      return;
    }
    if (d.param_open != 0 && !d.has_operator) {
      bool nodiscard = false;
      std::string type_head = LeadingType(d, &nodiscard);
      std::string name, qualifier;
      FunctionName(d, &name, &qualifier);
      std::vector<std::string> requires_keys;
      ScanTrailing(d, &requires_keys, &nodiscard);
      bool has_guard_param = false;
      std::string guard_param;
      GuardParam(d, &has_guard_param, &guard_param);
      std::string owner = !qualifier.empty() ? qualifier : class_name;
      int line = Tok(d.start).line;

      if (d.body_open != 0) {
        auto fn = std::make_unique<FunctionInfo>();
        fn->name = name;
        fn->class_name = owner;
        fn->file = file_->effective_path;
        fn->line = line;
        fn->returns_status = (type_head == "Status");
        fn->requires_keys = requires_keys;
        fn->has_guard_param = has_guard_param;
        fn->guard_param_name = guard_param;
        fn->allows = AllowsAt(line);
        {
          auto sig_allows = AllowsAt(Tok(d.param_open).line);
          fn->allows.insert(sig_allows.begin(), sig_allows.end());
        }
        pos_ = d.body_open;
        ParseBody(fn.get());
        // In-class definitions double as their own declaration.
        if (!class_name.empty() || !qualifier.empty()) {
          MethodDecl decl;
          decl.name = name;
          decl.class_name = owner;
          decl.file = file_->effective_path;
          decl.line = line;
          decl.returns_status = fn->returns_status;
          decl.requires_keys = requires_keys;
          decl.has_guard_param = has_guard_param;
          decl.guard_param_name = guard_param;
          decl.allows = fn->allows;
          decl.nodiscard = nodiscard;
          project_->classes[owner].method_decls.push_back(decl);
        }
        file_->functions.push_back(std::move(fn));
        return;
      }
      // Pure declaration.
      MethodDecl decl;
      decl.name = name;
      decl.class_name = owner;
      decl.file = file_->effective_path;
      decl.line = line;
      decl.returns_status = (type_head == "Status");
      decl.requires_keys = requires_keys;
      decl.has_guard_param = has_guard_param;
      decl.guard_param_name = guard_param;
      decl.allows = AllowsAt(line);
      decl.nodiscard = nodiscard;
      project_->classes[owner].method_decls.push_back(decl);
      pos_ = d.end;
      return;
    }
    // Not a function: a member (at class scope) or a namespace-scope variable.
    if (!class_name.empty() && !d.has_operator && d.body_open == 0) {
      ParseMember(class_name, d);
    }
    pos_ = d.body_open != 0 ? SkipBalanced(d.body_open) : d.end;
  }

  // ---- members -----------------------------------------------------------

  void ParseMember(const std::string& class_name, const DeclScan& d) {
    size_t from = d.start;
    size_t to = d.end > 0 ? d.end - 1 : d.start;  // excludes ';'
    if (to <= from) return;
    MemberInfo m;
    m.file = file_->effective_path;

    bool is_static = false;
    size_t i = from;
    // Leading qualifiers.
    while (i < to) {
      const std::string& t = Tok(i).text;
      if (t == "mutable" || t == "inline") {
        ++i;
      } else if (t == "static" || t == "constexpr") {
        is_static = true;
        ++i;
      } else {
        break;
      }
    }
    if (is_static || i >= to) return;

    // Annotation macro + init stripping while locating the name.
    size_t name_idx = 0;
    size_t init_start = to;
    size_t scan = i;
    std::vector<size_t> top_idents;
    while (scan < to) {
      const Token& t = Tok(scan);
      if (t.text == "GVM_GUARDED_BY" || t.text == "GVM_PT_GUARDED_BY") {
        m.guarded_by = true;
        if (Is(scan + 1, "(")) {
          size_t close = SkipBalanced(scan + 1);
          m.guard_key = LastIdentIn(scan + 2, close - 1);
          scan = close;
          continue;
        }
      }
      if (t.text == "=") {
        init_start = scan;
        break;
      }
      if (t.text == "<" && Tok(scan - 1).kind == Token::kIdent) {
        size_t after = SkipAngles(scan);
        if (after > scan + 1) {
          scan = after;
          continue;
        }
      }
      if (t.text == "{") {
        // Brace init: the member name is the identifier right before it.
        init_start = scan;
        break;
      }
      if (t.text == "[") {
        // Array bound: the name precedes it, but annotations (GUARDED_BY)
        // follow it — skip the bound and keep scanning.
        scan = SkipBalanced(scan);
        continue;
      }
      if (t.text == "(") {
        scan = SkipBalanced(scan);
        continue;
      }
      if (t.kind == Token::kIdent && t.text.rfind("GVM_", 0) != 0) {
        top_idents.push_back(scan);
      }
      ++scan;
    }
    if (top_idents.empty()) return;
    name_idx = top_idents.back();
    m.name = Tok(name_idx).text;
    m.line = Tok(name_idx).line;

    // Type region: [i, name_idx).
    bool saw_star = false;
    size_t last_const = 0;
    bool has_const = false;
    for (size_t k = i; k < name_idx; ++k) {
      const std::string& t = Tok(k).text;
      if (t == "*") saw_star = true;
      if (t == "&") m.is_reference = true;
      if (t == "const") {
        has_const = true;
        last_const = k;
      }
    }
    // `const T x` or `T* const x` is an immutable member; `const T* x` is a
    // mutable pointer to const and stays in scope for the coverage rule.
    if (has_const) {
      bool star_after_const = false;
      for (size_t k = last_const; k < name_idx; ++k) {
        if (Tok(k).text == "*") star_after_const = true;
      }
      m.is_const = !star_after_const && (!saw_star || last_const > i);
      if (saw_star && last_const == i) m.is_const = false;
    }
    // Type head: leading identifier chain.
    {
      size_t k = i;
      while (k < name_idx && Tok(k).text == "const") ++k;
      std::string head;
      while (k < name_idx &&
             (Tok(k).kind == Token::kIdent || Tok(k).text == "::")) {
        if (Tok(k).kind == Token::kIdent && Tok(k).text.rfind("GVM_", 0) == 0) break;
        head += Tok(k).text;
        ++k;
        if (k < name_idx && Tok(k).text != "::" &&
            Tok(k - 1).text != "::") {
          break;
        }
      }
      m.type_head = head;
    }
    for (size_t k = i; k < to; ++k) {
      if (Tok(k).text == "atomic") m.is_atomic = true;
    }
    std::string bare_head = m.type_head;
    size_t colon = bare_head.rfind("::");
    std::string last_head =
        colon == std::string::npos ? bare_head : bare_head.substr(colon + 2);
    m.is_mutex = !m.is_reference && !saw_star && IsMutexType(last_head);
    m.is_internally_synced = IsInternallySyncedType(m.type_head) ||
                             IsInternallySyncedType(last_head);
    // Mutex rank from the brace initializer: `{Rank::kFoo, "name"}`.
    if (m.is_mutex && init_start < to && Tok(init_start).text == "{") {
      for (size_t k = init_start; k < to && Tok(k).text != ","; ++k) {
        if (Tok(k).kind == Token::kIdent && Tok(k).text.rfind("k", 0) == 0 &&
            k >= 2 && Is(k - 1, "::") && Tok(k - 2).text == "Rank") {
          m.rank = Tok(k).text;
        }
      }
    }
    m.allows = AllowsAt(m.line);
    project_->classes[class_name].members.push_back(m);
  }

  // ---- function bodies ---------------------------------------------------

  struct ChainInfo {
    size_t start = 0;     // first token of the receiver chain
    std::string receiver; // textified chain before the final member access
  };

  // Walks the call chain backwards from the callee identifier at `callee_idx`.
  ChainInfo WalkChain(size_t callee_idx) const {
    ChainInfo out;
    size_t i = callee_idx;
    while (i > 0) {
      const std::string& sep = Tok(i - 1).text;
      if (sep != "." && sep != "->" && sep != "::") break;
      size_t j = i - 1;  // separator
      // The element before the separator: ident, (...), [...] or `this`.
      size_t k = j;
      while (k > 0) {
        const std::string& p = Tok(k - 1).text;
        if (p == ")" || p == "]") {
          // Balanced backward skip.
          const std::string open = p == ")" ? "(" : "[";
          int depth = 0;
          size_t b = k - 1;
          while (b > 0) {
            if (Tok(b).text == p) ++depth;
            else if (Tok(b).text == open && --depth == 0) break;
            --b;
          }
          // A discarding cast is not part of the receiver chain.
          if (p == ")" && Tok(b + 1).text == "void") break;
          k = b;
          continue;
        }
        if (Tok(k - 1).kind == Token::kIdent || p == "this") {
          k = k - 1;
          break;
        }
        break;
      }
      if (k == j) break;
      i = k;
    }
    out.start = i;
    out.receiver = i < callee_idx ? Textify(toks_, i, callee_idx - 1) : "";
    return out;
  }

  bool StatementStartBefore(size_t chain_start) const {
    if (chain_start == 0) return true;
    const Token& prev = Tok(chain_start - 1);
    if (prev.text == ";" || prev.text == "{" || prev.text == "}" ||
        prev.text == "else" || prev.text == "do") {
      return true;
    }
    // `case X: Foo();` is a statement context, but a ternary's `:` is not —
    // only treat the colon as a boundary when a `case`/`default` label owns it.
    if (prev.text == ":" && chain_start >= 2) {
      for (size_t b = chain_start - 1; b-- > 0;) {
        const std::string& t = Tok(b).text;
        if (t == "case" || t == "default") return true;
        if (t == ";" || t == "{" || t == "}" || t == "?" || t == ")") break;
      }
    }
    if (prev.text == ")") {
      // `if (...) Foo();` — statement context when the group closes a
      // control-flow condition; `(void)Foo()` is an explicit discard.
      int depth = 0;
      size_t b = chain_start - 1;
      while (b > 0) {
        if (Tok(b).text == ")") ++depth;
        else if (Tok(b).text == "(" && --depth == 0) break;
        --b;
      }
      if (b > 0) {
        const std::string& before = Tok(b - 1).text;
        if (before == "if" || before == "for" || before == "while" ||
            before == "switch") {
          return true;
        }
      }
    }
    return false;
  }

  void ParseBody(FunctionInfo* fn) {
    assert(Is(pos_, "{"));
    size_t end = SkipBalanced(pos_);
    size_t i = pos_ + 1;
    int depth = 1;
    while (i < end - 1) {
      const Token& t = Tok(i);
      if (t.text == "{") {
        ++depth;
        Event open;
        open.kind = Event::kScopeOpen;
        open.line = t.line;
        fn->events.push_back(open);
        ++i;
        continue;
      }
      if (t.text == "}") {
        --depth;
        Event close;
        close.kind = Event::kScopeClose;
        close.line = t.line;
        fn->events.push_back(close);
        ++i;
        continue;
      }
      if ((t.text == "class" || t.text == "struct") && LocalClassAt(i)) {
        // Function-local type: skip entirely (its methods run elsewhere).
        while (i < end - 1 && !Is(i, "{")) ++i;
        if (i < end - 1) i = SkipBalanced(i);
        while (i < end - 1 && !Is(i, ";")) ++i;
        continue;
      }
      // RAII guard declaration.
      if (t.kind == Token::kIdent && IsGuardType(t.text)) {
        size_t after_type = i + 1;
        if (Is(after_type, "<")) after_type = SkipAngles(after_type);
        if (Tok(after_type).kind == Token::kIdent &&
            (Is(after_type + 1, "(") || Is(after_type + 1, "{"))) {
          size_t open = after_type + 1;
          size_t close = SkipBalanced(open);
          Event e;
          e.kind = Event::kGuardAcquire;
          e.line = t.line;
          e.var = Tok(after_type).text;
          e.lock_expr = Textify(toks_, open + 1, close - 1);
          e.lock_key = LastIdentIn(open + 1, close - 1);
          e.shared = IsSharedGuardType(t.text);
          fn->events.push_back(e);
          i = close;
          continue;
        }
      }
      // TlbGatherScope declaration.
      if (t.text == "TlbGatherScope" && Tok(i + 1).kind == Token::kIdent &&
          (Is(i + 2, "(") || Is(i + 2, "{"))) {
        size_t close = SkipBalanced(i + 2);
        Event e;
        e.kind = Event::kGatherOpen;
        e.line = t.line;
        e.var = Tok(i + 1).text;
        fn->events.push_back(e);
        i = close;
        continue;
      }
      // Local mutex declaration (fixtures and ad-hoc test mutexes).
      if (t.kind == Token::kIdent && IsMutexType(t.text) &&
          Tok(i + 1).kind == Token::kIdent &&
          (Is(i + 2, ";") || Is(i + 2, "{"))) {
        Event e;
        e.kind = Event::kLocalMutex;
        e.line = t.line;
        e.var = Tok(i + 1).text;
        if (Is(i + 2, "{")) {
          size_t close = SkipBalanced(i + 2);
          for (size_t k = i + 2; k < close; ++k) {
            if (Tok(k).kind == Token::kIdent && k >= 2 && Is(k - 1, "::") &&
                Tok(k - 2).text == "Rank") {
              e.rank = Tok(k).text;
              break;
            }
          }
          i = close;
        } else {
          i += 2;
        }
        fn->events.push_back(e);
        continue;
      }
      // Call site.
      if (t.kind == Token::kIdent && Is(i + 1, "(") && !IsKeyword(t.text)) {
        ChainInfo chain = WalkChain(i);
        size_t close = SkipBalanced(i + 1);
        Event e;
        e.line = t.line;
        e.callee = t.text;
        e.receiver = chain.receiver;
        SplitArgsTrailing(i + 2, close - 1, &e.args);
        if (!e.args.empty()) e.arg_key = e.args.back();
        std::string recv_key = TrailingIdent(chain.receiver);

        if ((t.text == "Lock" || t.text == "LockShared") &&
            !chain.receiver.empty() && e.args.empty()) {
          e.kind = Event::kGuardAcquire;
          e.lock_expr = chain.receiver;
          e.lock_key = recv_key;
          e.shared = (t.text == "LockShared");
        } else if ((t.text == "Unlock" || t.text == "UnlockShared") &&
                   !chain.receiver.empty() && e.args.empty()) {
          e.kind = Event::kGuardRelease;
          e.lock_expr = chain.receiver;
          e.lock_key = recv_key;
        } else if (t.text == "unlock" && !chain.receiver.empty() &&
                   e.args.empty()) {
          e.kind = Event::kGuardRelease;
          e.var = recv_key;
        } else if (t.text == "lock" && !chain.receiver.empty() &&
                   e.args.empty()) {
          e.kind = Event::kGuardReacquire;
          e.var = recv_key;
        } else if (t.text == "BeginGather") {
          e.kind = Event::kGatherOpen;
        } else if (t.text == "EndGather") {
          e.kind = Event::kGatherClose;
        } else {
          e.kind = Event::kCall;
          if (StatementStartBefore(chain.start) && Is(close, ";")) {
            // Discarded expression statement; rules check the Status set.
            e.var = "<discarded>";
          }
        }
        fn->events.push_back(e);
        ++i;  // keep scanning inside the argument list for nested calls
        continue;
      }
      // Lambda introducer: treat the body as a nested scope (handled by the
      // generic brace events); nothing to do beyond skipping the capture.
      if (t.text == "[") {
        const Token& prev = Tok(i - 1);
        bool index_context = prev.kind == Token::kIdent || prev.text == ")" ||
                             prev.text == "]";
        if (index_context) {
          i = SkipBalanced(i);
          continue;
        }
        i = SkipBalanced(i);  // capture list
        continue;
      }
      ++i;
    }
    (void)depth;
    pos_ = end;
  }

  bool LocalClassAt(size_t i) const {
    // `struct X { ... }` with a body inside a function.
    size_t k = i + 1;
    while (k < toks_.size() - 1) {
      const std::string& t = Tok(k).text;
      if (t == "{") return true;
      if (t == ";" || t == "(" || t == ")" || t == "=") return false;
      ++k;
    }
    return false;
  }
};

}  // namespace

std::string TrailingIdent(const std::string& expr) {
  size_t end = expr.size();
  while (end > 0 && !IsIdentChar(expr[end - 1])) --end;
  size_t start = end;
  while (start > 0 && IsIdentChar(expr[start - 1])) --start;
  return expr.substr(start, end - start);
}

void ParseFile(const std::string& path, const std::string& display_path,
               const std::string& contents, Project* project) {
  (void)path;
  LexedFile lexed = Lex(contents);
  auto file = std::make_unique<FileModel>();
  file->path = display_path;
  file->effective_path =
      lexed.pretend_path.empty() ? display_path : lexed.pretend_path;
  file->notes = std::move(lexed.notes);
  FileModel* raw = file.get();
  project->files.push_back(std::move(file));
  Parser parser(lexed, raw, project);
  parser.Run();
}

void ParseRankTable(const std::string& contents, Project* project) {
  LexedFile lexed = Lex(contents);
  const auto& toks = lexed.tokens;
  // Find `enum class Rank {`.
  size_t i = 0;
  for (; i + 3 < toks.size(); ++i) {
    if (toks[i].text == "enum" && toks[i + 1].text == "class" &&
        toks[i + 2].text == "Rank" &&
        (toks[i + 3].text == "{" || toks[i + 3].text == ":")) {
      break;
    }
  }
  while (i < toks.size() && toks[i].text != "{") ++i;
  if (i >= toks.size()) return;
  ++i;
  int next_value = 0;
  while (i < toks.size() && toks[i].text != "}") {
    if (toks[i].kind == Token::kIdent) {
      std::string name = toks[i].text;
      int value = next_value;
      if (i + 1 < toks.size() && toks[i + 1].text == "=") {
        size_t v = i + 2;
        int sign = 1;
        if (v < toks.size() && toks[v].text == "-") {
          sign = -1;
          ++v;
        }
        if (v < toks.size() && toks[v].kind == Token::kNumber) {
          value = sign * std::stoi(toks[v].text);
          i = v;
        }
      }
      project->rank_values[name] = value;
      next_value = value + 1;
    }
    ++i;
  }
}

}  // namespace gvmlint
