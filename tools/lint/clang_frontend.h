// gvm-lint: optional libTooling frontend, gated on GVM_LINT_WITH_CLANG.
//
// When a Clang development toolchain is present (headers + libclang-cpp),
// clang_frontend.cc lowers a real AST into the same Project model the
// internal frontend produces, and `gvm_lint --frontend clang` selects it.
// Without the toolchain the build falls back to the internal frontend and
// this header's stubs report the frontend as unavailable.
#ifndef GVM_TOOLS_LINT_CLANG_FRONTEND_H_
#define GVM_TOOLS_LINT_CLANG_FRONTEND_H_

#include <string>
#include <vector>

#include "tools/lint/model.h"

namespace gvmlint {

#if defined(GVM_LINT_HAVE_CLANG)
bool ClangFrontendAvailable();
// Parses the given TUs with the compilation database at `compdb_path`,
// lowering each into `project`.  Returns false on a hard tooling error.
bool ClangParseFiles(const std::string& compdb_path,
                     const std::vector<std::string>& files, Project* project);
#else
inline bool ClangFrontendAvailable() { return false; }
inline bool ClangParseFiles(const std::string&, const std::vector<std::string>&,
                            Project*) {
  return false;
}
#endif

}  // namespace gvmlint

#endif  // GVM_TOOLS_LINT_CLANG_FRONTEND_H_
