// gvm-lint selftest fixture: gather-scope-atomicity, huge-demotion flavour.
// Splitting a huge span (DemoteHuge) retires a wide TLB entry covering many
// base pages; the split must happen inside an open TlbGatherScope so the
// mixed-size shootdown commits before the caller's base-granule mutations.
// gvm-lint-pretend-path: src/fixture/bad_huge_demote.cc

class Fixture {
 public:
  void DemoteWithNoGather() {
    MutexLock lock(mu_);
    (void)mmu_.DemoteHuge(as_, va_);  // EXPECT: gather-scope-atomicity
  }

  void DemoteAfterGatherClosed() {
    MutexLock lock(mu_);
    {
      TlbGatherScope gather(&tlb_);
    }
    (void)mmu_.DemoteHuge(as_, va_);  // EXPECT: gather-scope-atomicity
  }

  void DemoteInsideGatherIsFine() {
    MutexLock lock(mu_);
    TlbGatherScope gather(&tlb_);
    (void)mmu_.DemoteHuge(as_, va_);
  }

  void AllowedDemoteIsFine() {
    MutexLock lock(mu_);
    // gvm-lint: allow(gather-scope-atomicity): teardown path, AS already condemned
    (void)mmu_.DemoteHuge(as_, va_);
  }

 private:
  Mutex mu_;
  Mmu mmu_;        // gvm-lint: allow(annotation-coverage): internally synchronized
  TlbMmu tlb_;     // gvm-lint: allow(annotation-coverage): internally synchronized
  AsId as_ = 0;    // gvm-lint: allow(annotation-coverage): set once at construction
  Vaddr va_ = 0;   // gvm-lint: allow(annotation-coverage): set once at construction
};
