// gvm-lint selftest fixture: no-blocking-under-lock must fire on IPC, network
// and sleep primitives reached while a kernel lock is held — directly and
// through one level of inlining.
//
// Fixtures are standalone TUs for the internal frontend: the project idioms
// (MutexLock, Ipc, CondVar) are sketched locally, never included.
// gvm-lint-pretend-path: src/fixture/bad_blocking_under_lock.cc

struct Message {};

class Fixture {
 public:
  void DirectIpcUnderLock() {
    MutexLock lock(mu_);
    ipc_.Call(port_, Message{});  // EXPECT: no-blocking-under-lock
  }

  void DirectNetUnderLock() {
    MutexLock lock(mu_);
    net_.Call(0, 1, Message{});  // EXPECT: no-blocking-under-lock
  }

  void WaitOnForeignMutexUnderLock() {
    MutexLock lock(mu_);
    // Wait releases other_mu_, not mu_: the held lock spans the sleep.
    cv_.Wait(other_mu_);  // EXPECT: no-blocking-under-lock
  }

  void WaitOnOwnMutexIsFine() {
    MutexLock lock(mu_);
    cv_.Wait(mu_);  // the wait drops exactly the lock it runs under
  }

  // One level of inlining: the helper blocks, the caller holds the lock.
  void BlockingHelper() { ipc_.Call(port_, Message{}); }

  void InlinedIpcUnderLock() {
    MutexLock lock(mu_);
    BlockingHelper();  // EXPECT: no-blocking-under-lock
  }

  // The thread_safe_dispatch-style escape hatch: the author certifies the
  // call cannot re-enter the lock owner, so the rule stands down.
  // gvm-lint: allow(no-blocking-under-lock): dispatch serialized externally
  void CertifiedDispatchUnderLock() {
    MutexLock lock(mu_);
    ipc_.Call(port_, Message{});
  }

 private:
  Mutex mu_;
  Mutex other_mu_;
  CondVar cv_;
  Ipc& ipc_;
  SimNet& net_;
  const int port_ = 0;
};
