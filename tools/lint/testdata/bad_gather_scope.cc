// gvm-lint selftest fixture: gather-scope-atomicity.  A live TlbGatherScope
// must not span a drop of its serializing lock, and (in src/) must open with
// one held in the first place.
// gvm-lint-pretend-path: src/fixture/bad_gather_scope.cc

class Fixture {
 public:
  void UnlockUnderGather() {
    MutexLock lock(mu_);
    TlbGatherScope gather(&tlb_);
    lock.unlock();  // EXPECT: gather-scope-atomicity
    lock.lock();
  }

  void ManualUnlockUnderGather() {
    mu_.Lock();
    TlbGatherScope gather(&tlb_);
    mu_.Unlock();  // EXPECT: gather-scope-atomicity
  }

  void WaitDropsSerializingLock() {
    MutexLock lock(mu_);
    TlbGatherScope gather(&tlb_);
    // Wait releases mu_ while the gather is open: pending shootdowns are
    // deferred onto a commit the next lock holder never waits for.
    cv_.Wait(mu_);  // EXPECT: gather-scope-atomicity
  }

  void GatherWithNoLock() {
    TlbGatherScope gather(&tlb_);  // EXPECT: gather-scope-atomicity
  }

  void ScopedGatherIsFine() {
    MutexLock lock(mu_);
    {
      TlbGatherScope gather(&tlb_);
    }
    lock.unlock();  // the gather already closed; dropping is fine
    lock.lock();
  }

 private:
  Mutex mu_;
  CondVar cv_;
  TlbMmu tlb_;  // gvm-lint: allow(annotation-coverage): internally synchronized
};
