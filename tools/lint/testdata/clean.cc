// gvm-lint selftest fixture: a TU exercising the tree's sanctioned idioms.
// Every rule must stay silent here — a diagnostic on this file is a
// false-positive regression in the analyzer.
// gvm-lint-pretend-path: src/fixture/clean.cc

struct Message {};

Status Frob() { return Status::kOk; }

class Clean {
 public:
  // RAII guard with a transient drop, re-taken before the scope ends.
  void TransientDrop() {
    MutexLock lock(mu_);
    lock.unlock();
    ipc_.Call(port_, Message{});  // lock dropped: blocking is fine here
    lock.lock();
  }

  // The sleep protocol: Wait releases exactly the mutex it is handed.
  void SleepProtocol() {
    MutexLock lock(mu_);
    while (!ready_) {
      cv_.Wait(mu_);
    }
  }

  // Guard-param convention: the caller holds the lock; helpers that sleep on
  // the same mutex are the documented re-drive idiom.
  Status LockedHelper(MutexLock& lock, int n) {
    if (n == 0) {
      cv_.Wait(mu_);
    }
    return Status::kOk;
  }

  // Rank-descending nesting, with digit separators and a ternary consuming a
  // Status (both lexer regression cases).
  Status OrderedNesting(bool ok) {
    Mutex ipc{Rank::kIpc, "clean::ipc"};
    Mutex shard{Rank::kMmuShard, "clean::shard"};
    MutexLock a(ipc);
    MutexLock b(shard);
    int spins = 100'000;
    (void)spins;
    return ok ? Status::kOk : Frob();
  }

  // A gather under its serializing lock, closed before any drop.
  void GatheredMutation() {
    MutexLock lock(mu_);
    {
      TlbGatherScope gather(&tlb_);
    }
    lock.unlock();
    lock.lock();
  }

  void ConsumesEverything() {
    Status s = Frob();
    if (s != Status::kOk) {
      (void)s;
    }
    (void)Frob();
  }

 private:
  mutable Mutex mu_{Rank::kMmManager, "Clean::mu_"};
  CondVar cv_;
  Ipc& ipc_;
  TlbMmu tlb_;  // gvm-lint: allow(annotation-coverage): internally synchronized
  bool ready_ GVM_GUARDED_BY(mu_) = false;
  std::atomic<int> port_{0};
};
