// gvm-lint selftest fixture: status-discipline.  Every Status-returning call
// is consumed, and kRetry never appears outside the PVM-internal layer.
// gvm-lint-pretend-path: src/fixture/bad_status_discipline.cc

Status Frob() { return Status::kOk; }

class Fixture {
 public:
  Status Mend() { return Status::kOk; }

  void DiscardedFreeCall() {
    Frob();  // EXPECT: status-discipline
  }

  void DiscardedMethodCall() {
    Mend();  // EXPECT: status-discipline
  }

  void DiscardedInSwitch(int k) {
    switch (k) {
      case 0:
        Frob();  // EXPECT: status-discipline
        break;
      default:
        break;
    }
  }

  Status RetryOutsidePvm() {
    return Status::kRetry;  // EXPECT: status-discipline
  }

  void ConsumedIsFine() {
    Status s = Frob();
    if (s == Status::kOk) {
      (void)s;
    }
    (void)Mend();  // explicit discard with a cast is the sanctioned form
  }

  Status PropagatedIsFine() { return Frob(); }

  bool TernaryIsConsumed(bool ok) {
    // The ternary's value is the statement's value: not a discard.
    Status s = ok ? Status::kOk : Frob();
    return s == Status::kOk;
  }
};
