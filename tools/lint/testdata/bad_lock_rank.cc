// gvm-lint selftest fixture: lock-rank.  Guard nesting must strictly descend
// the rank table in src/sync/lock_rank.h (higher rank first is an inversion;
// so is equal rank, which covers recursive acquisition).
// gvm-lint-pretend-path: src/fixture/bad_lock_rank.cc

class Fixture {
 public:
  void Inversion() {
    Mutex shard{Rank::kMmuShard, "fixture::shard"};
    Mutex ipc{Rank::kIpc, "fixture::ipc"};
    MutexLock a(shard);
    MutexLock b(ipc);  // EXPECT: lock-rank
  }

  void EqualRank() {
    Mutex s0{Rank::kMmuShard, "fixture::s0"};
    Mutex s1{Rank::kMmuShard, "fixture::s1"};
    MutexLock a(s0);
    MutexLock b(s1);  // EXPECT: lock-rank
  }

  void MemberInversion() {
    // Member ranks resolve through the enclosing class.
    MutexLock a(high_);
    MutexLock b(low_);  // EXPECT: lock-rank
  }

  void CorrectOrder() {
    Mutex ipc{Rank::kIpc, "fixture::ipc"};
    Mutex shard{Rank::kMmuShard, "fixture::shard"};
    MutexLock a(ipc);
    MutexLock b(shard);  // rank 20 then rank 40: descending the table is fine
  }

  void UnrankedIsExempt() {
    Mutex plain;
    MutexLock a(high_);
    MutexLock b(plain);  // no rank, no ordering constraint
  }

 private:
  Mutex low_{Rank::kIpc, "fixture::low"};
  Mutex high_{Rank::kMmuShard, "fixture::high"};
};
