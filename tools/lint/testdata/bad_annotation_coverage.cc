// gvm-lint selftest fixture: annotation-coverage.  Mutable members of a
// mutex-owning class must carry GVM_GUARDED_BY or document why not.
// gvm-lint-pretend-path: src/fixture/bad_annotation_coverage.cc

class Widget {
 public:
  void Touch();

 private:
  Mutex mu_{Rank::kMmManager, "Widget::mu_"};
  int counter_ = 0;  // EXPECT: annotation-coverage
  char* buffer_ = nullptr;  // EXPECT: annotation-coverage

  int guarded_ GVM_GUARDED_BY(mu_) = 0;           // annotated: fine
  std::atomic<int> hits_{0};                      // atomic: fine
  const int capacity_ = 8;                        // immutable: fine
  CondVar cv_;                                    // internally synced: fine
  // gvm-lint: allow(annotation-coverage): written only during bring-up
  int tuned_ = 0;
};

// A class with no mutex of its own is outside this rule: its discipline is
// documented at its locking owner.
class Plain {
 private:
  int anything_ = 0;
  char* whatever_ = nullptr;
};
