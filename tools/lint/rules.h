// gvm-lint rule engine: evaluates the five project invariants over the model.
#ifndef GVM_TOOLS_LINT_RULES_H_
#define GVM_TOOLS_LINT_RULES_H_

#include <string>
#include <vector>

#include "tools/lint/model.h"

namespace gvmlint {

// Rule identifiers (used in diagnostics, allow() directives and EXPECT
// markers).  See DESIGN.md §14 for the rule -> origin-PR catalogue.
inline constexpr const char* kRuleNoBlockingUnderLock = "no-blocking-under-lock";
inline constexpr const char* kRuleGatherScopeAtomicity = "gather-scope-atomicity";
inline constexpr const char* kRuleLockRank = "lock-rank";
inline constexpr const char* kRuleStatusDiscipline = "status-discipline";
inline constexpr const char* kRuleAnnotationCoverage = "annotation-coverage";

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
  bool operator==(const Diagnostic& o) const {
    return file == o.file && line == o.line && rule == o.rule &&
           message == o.message;
  }
};

struct AnalysisStats {
  size_t files = 0;
  size_t functions = 0;
  size_t classes = 0;
  size_t status_apis = 0;
  size_t guard_nestings = 0;
};

// Runs all rules; returns diagnostics sorted by (file, line, rule).
std::vector<Diagnostic> RunRules(const Project& project, AnalysisStats* stats);

}  // namespace gvmlint

#endif  // GVM_TOOLS_LINT_RULES_H_
