// gvm-lint: C++ tokenizer for the internal frontend.
//
// The analyzer does not preprocess: each file is lexed as-written, with
// preprocessor directives skipped line-wise and comments mined for lint
// directives.  That is deliberate — the invariants gvm-lint enforces live in
// the project's own idioms (guard declarations, annotation macros, call
// shapes), which survive textual analysis because the tree's style is
// machine-enforced elsewhere (clang-format-ish uniformity, one declaration
// per line).  The optional libTooling frontend (clang_frontend.cc, gated on
// GVM_LINT_WITH_CLANG) lowers a real AST into the same model when a Clang
// development toolchain is present.
#ifndef GVM_TOOLS_LINT_LEXER_H_
#define GVM_TOOLS_LINT_LEXER_H_

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace gvmlint {

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct, kEnd };
  Kind kind = kEnd;
  std::string text;
  int line = 0;
};

// Per-line lint directives mined from comments.
struct LineNotes {
  // `// gvm-lint: allow(rule-id[, rule-id...])[: reason]` — suppress the named
  // rules on this line (and, for a declaration, on the declared entity).
  std::vector<std::string> allows;
  // `// EXPECT: rule-id` — selftest fixtures: a diagnostic for rule-id must
  // fire on exactly this line.
  std::vector<std::string> expects;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::map<int, LineNotes> notes;  // line -> directives
  // `// gvm-lint-pretend-path: src/...` — fixtures use this to opt into
  // path-scoped rules (kRetry containment, annotation coverage).
  std::string pretend_path;
};

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Two-character punctuators lexed as one token.  `::`, `->` matter for name
// chains; the comparison/shift group keeps template-argument scans from
// tripping over `<<` and `>>`.
inline bool IsTwoCharPunct(char a, char b) {
  static const char* kPairs[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                 "!=", "&&", "||", "+=", "-=", "*=", "/=",
                                 "|=", "&=", "^=", "++", "--"};
  for (const char* p : kPairs) {
    if (p[0] == a && p[1] == b) return true;
  }
  return false;
}

inline void MineComment(const std::string& comment, int line, LexedFile* out) {
  auto grab_list = [&](size_t at, std::vector<std::string>* into) {
    size_t open = comment.find('(', at);
    if (open == std::string::npos) return;
    size_t close = comment.find(')', open);
    if (close == std::string::npos) return;
    std::string inner = comment.substr(open + 1, close - open - 1);
    std::string cur;
    for (char c : inner) {
      if (c == ',') {
        if (!cur.empty()) into->push_back(cur);
        cur.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        cur += c;
      }
    }
    if (!cur.empty()) into->push_back(cur);
  };
  size_t at = comment.find("gvm-lint:");
  if (at != std::string::npos) {
    size_t allow = comment.find("allow", at);
    if (allow != std::string::npos) {
      grab_list(allow, &out->notes[line].allows);
    }
  }
  at = comment.find("gvm-lint-pretend-path:");
  if (at != std::string::npos) {
    size_t start = at + sizeof("gvm-lint-pretend-path:") - 1;
    while (start < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[start]))) {
      ++start;
    }
    size_t end = start;
    while (end < comment.size() &&
           !std::isspace(static_cast<unsigned char>(comment[end]))) {
      ++end;
    }
    out->pretend_path = comment.substr(start, end - start);
  }
  at = comment.find("EXPECT:");
  if (at != std::string::npos) {
    size_t start = at + sizeof("EXPECT:") - 1;
    while (start < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[start]))) {
      ++start;
    }
    size_t end = start;
    while (end < comment.size() &&
           !std::isspace(static_cast<unsigned char>(comment[end]))) {
      ++end;
    }
    if (end > start) {
      out->notes[line].expects.push_back(comment.substr(start, end - start));
    }
  }
}

inline LexedFile Lex(const std::string& src) {
  LexedFile out;
  size_t i = 0;
  int line = 1;
  const size_t n = src.size();
  auto peek = [&](size_t k) -> char { return i + k < n ? src[i + k] : '\0'; };
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the (continuation-joined) logical line.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      MineComment(src.substr(start, i - start), line, &out);
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      size_t start = i;
      int start_line = line;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i < n ? i + 2 : n;
      MineComment(src.substr(start, i - start), start_line, &out);
      continue;
    }
    // Raw string literal.
    if (c == 'R' && peek(1) == '"') {
      size_t delim_start = i + 2;
      size_t paren = src.find('(', delim_start);
      if (paren != std::string::npos) {
        std::string closer = ")" + src.substr(delim_start, paren - delim_start) + "\"";
        size_t end = src.find(closer, paren + 1);
        size_t stop = end == std::string::npos ? n : end + closer.size();
        for (size_t k = i; k < stop; ++k) {
          if (src[k] == '\n') ++line;
        }
        out.tokens.push_back({Token::kString, "R\"...\"", line});
        i = stop;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      size_t start = i;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({Token::kString, src.substr(start, i - start), line});
      continue;
    }
    if (IsIdentChar(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.tokens.push_back({Token::kIdent, src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' ||
                       (src[i] == '\'' && i + 1 < n &&
                        IsIdentChar(src[i + 1])) ||  // digit separator
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({Token::kNumber, src.substr(start, i - start), line});
      continue;
    }
    if (IsTwoCharPunct(c, peek(1))) {
      out.tokens.push_back({Token::kPunct, std::string() + c + peek(1), line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Token::kPunct, std::string(1, c), line});
    ++i;
  }
  out.tokens.push_back({Token::kEnd, "", line});
  return out;
}

}  // namespace gvmlint

#endif  // GVM_TOOLS_LINT_LEXER_H_
