// gvm-lint driver.
//
// Tree mode (the default):
//   gvm_lint --root <repo> [--compdb <build/compile_commands.json>] [dirs...]
// walks src/ tests/ bench/ (or the given dirs), lowers every header and TU
// into the analysis model and evaluates the five invariants (rules.cc).
// Translation units are taken from the compilation database when one is
// given — headers are discovered by the walk since no compdb lists them.
//
// Selftest mode:
//   gvm_lint --root <repo> --selftest <tools/lint/testdata>
// analyzes each fixture TU in isolation and requires its diagnostics to match
// the `// EXPECT: rule-id` markers exactly: every marker fires, nothing else
// does, and clean fixtures stay silent.
//
// Exit codes: 0 clean / selftest pass, 1 diagnostics / mismatch, 2 usage or
// I/O error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/clang_frontend.h"
#include "tools/lint/model.h"
#include "tools/lint/rules.h"

namespace fs = std::filesystem;
using gvmlint::AnalysisStats;
using gvmlint::Diagnostic;
using gvmlint::FileModel;
using gvmlint::Project;

namespace {

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

// Repo-relative with forward slashes, for stable diagnostics.
std::string RelPath(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  while (s.rfind("./", 0) == 0) s = s.substr(2);
  return s;
}

// Minimal scrape of compile_commands.json: the "file" values.  The internal
// frontend needs no flags, only the TU list, so a full JSON parser would be
// dead weight.
std::vector<std::string> CompdbFiles(const std::string& json) {
  std::vector<std::string> out;
  size_t at = 0;
  while ((at = json.find("\"file\"", at)) != std::string::npos) {
    size_t colon = json.find(':', at + 6);
    if (colon == std::string::npos) break;
    size_t open = json.find('"', colon + 1);
    if (open == std::string::npos) break;
    size_t close = open + 1;
    while (close < json.size() && json[close] != '"') {
      if (json[close] == '\\') ++close;
      ++close;
    }
    if (close >= json.size()) break;
    out.push_back(json.substr(open + 1, close - open - 1));
    at = close + 1;
  }
  return out;
}

bool LoadRankTable(const fs::path& root, Project* project) {
  std::string contents;
  if (!ReadFile(root / "src/sync/lock_rank.h", &contents)) return false;
  gvmlint::ParseRankTable(contents, project);
  return true;
}

int RunTree(const fs::path& root, const std::string& compdb_path,
            const std::vector<std::string>& dirs, bool use_clang,
            bool verbose) {
  Project project;
  if (!LoadRankTable(root, &project)) {
    std::fprintf(stderr,
                 "gvm-lint: warning: cannot read src/sync/lock_rank.h under "
                 "--root; lock-rank checks degraded\n");
  }

  auto in_scanned_dirs = [&](const std::string& rel) {
    for (const std::string& d : dirs) {
      if (rel.rfind(d + "/", 0) == 0) return true;
    }
    return false;
  };

  std::set<std::string> rel_paths;
  for (const std::string& d : dirs) {
    fs::path dir = root / d;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(dir, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (it->is_regular_file(ec) && IsSourceFile(it->path())) {
        rel_paths.insert(RelPath(root, it->path()));
      }
    }
  }
  if (!compdb_path.empty()) {
    std::string json;
    if (!ReadFile(compdb_path, &json)) {
      std::fprintf(stderr, "gvm-lint: error: cannot read compdb '%s'\n",
                   compdb_path.c_str());
      return 2;
    }
    size_t tus = 0;
    for (const std::string& f : CompdbFiles(json)) {
      std::string rel = RelPath(root, fs::path(f));
      if (in_scanned_dirs(rel) && IsSourceFile(fs::path(rel))) {
        rel_paths.insert(rel);
        ++tus;
      }
    }
    if (verbose) {
      std::fprintf(stderr, "gvm-lint: %zu TUs from %s\n", tus,
                   compdb_path.c_str());
    }
  }
  if (rel_paths.empty()) {
    std::fprintf(stderr, "gvm-lint: error: no sources found under --root %s\n",
                 root.string().c_str());
    return 2;
  }

  if (use_clang) {
    // Clang frontend: TUs go through libTooling (which sees headers via real
    // preprocessing), so only the .cc files are handed over.
    std::vector<std::string> tus;
    for (const std::string& rel : rel_paths) {
      if (fs::path(rel).extension() == ".cc") {
        tus.push_back((root / rel).string());
      }
    }
    if (!gvmlint::ClangParseFiles(compdb_path, tus, &project)) {
      std::fprintf(stderr, "gvm-lint: error: clang frontend failed\n");
      return 2;
    }
  } else {
    for (const std::string& rel : rel_paths) {
      std::string contents;
      if (!ReadFile(root / rel, &contents)) {
        std::fprintf(stderr, "gvm-lint: error: cannot read '%s'\n",
                     rel.c_str());
        return 2;
      }
      gvmlint::ParseFile(rel, rel, contents, &project);
    }
  }

  AnalysisStats stats;
  std::vector<Diagnostic> diags = gvmlint::RunRules(project, &stats);
  for (const Diagnostic& d : diags) {
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  std::fprintf(stderr,
               "gvm-lint: %zu files, %zu functions, %zu classes, %zu "
               "status APIs, %zu guard nestings checked: %zu diagnostic(s)\n",
               stats.files, stats.functions, stats.classes, stats.status_apis,
               stats.guard_nestings, diags.size());
  return diags.empty() ? 0 : 1;
}

int RunSelftest(const fs::path& root, const fs::path& testdata) {
  std::vector<fs::path> fixtures;
  std::error_code ec;
  for (auto it = fs::directory_iterator(testdata, ec);
       !ec && it != fs::directory_iterator(); it.increment(ec)) {
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      fixtures.push_back(it->path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  if (fixtures.empty()) {
    std::fprintf(stderr, "gvm-lint: error: no fixtures under '%s'\n",
                 testdata.string().c_str());
    return 2;
  }

  int failures = 0;
  size_t expected_total = 0;
  for (const fs::path& fixture : fixtures) {
    std::string contents;
    if (!ReadFile(fixture, &contents)) {
      std::fprintf(stderr, "gvm-lint: error: cannot read '%s'\n",
                   fixture.string().c_str());
      return 2;
    }
    Project project;
    LoadRankTable(root, &project);
    std::string display = fixture.filename().string();
    gvmlint::ParseFile(display, display, contents, &project);

    // Expected (line, rule) pairs from the EXPECT markers.
    std::set<std::pair<int, std::string>> expected;
    const FileModel& fm = *project.files.back();
    for (const auto& [line, notes] : fm.notes) {
      for (const std::string& rule : notes.expects) {
        expected.insert({line, rule});
      }
    }
    expected_total += expected.size();

    std::set<std::pair<int, std::string>> got;
    for (const Diagnostic& d : gvmlint::RunRules(project, nullptr)) {
      got.insert({d.line, d.rule});
    }

    bool ok = true;
    for (const auto& [line, rule] : expected) {
      if (got.count({line, rule}) == 0) {
        std::printf("FAIL %s:%d: expected [%s] did not fire\n",
                    display.c_str(), line, rule.c_str());
        ok = false;
      }
    }
    for (const auto& [line, rule] : got) {
      if (expected.count({line, rule}) == 0) {
        std::printf("FAIL %s:%d: unexpected [%s]\n", display.c_str(), line,
                    rule.c_str());
        ok = false;
      }
    }
    if (ok) {
      std::printf("PASS %s (%zu expected diagnostic(s))\n", display.c_str(),
                  expected.size());
    } else {
      ++failures;
    }
  }
  std::printf("gvm-lint selftest: %zu fixture(s), %zu expected diagnostic(s), "
              "%d failure(s)\n",
              fixtures.size(), expected_total, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string compdb;
  std::string selftest;
  std::string frontend = "internal";
  bool verbose = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "gvm-lint: --root needs a value\n");
        return 2;
      }
      root = v;
    } else if (arg == "--compdb") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "gvm-lint: --compdb needs a value\n");
        return 2;
      }
      compdb = v;
    } else if (arg == "--selftest") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "gvm-lint: --selftest needs a value\n");
        return 2;
      }
      selftest = v;
    } else if (arg == "--frontend") {
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "gvm-lint: --frontend needs a value\n");
        return 2;
      }
      frontend = v;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: gvm_lint --root <repo> [--compdb <json>] "
          "[--frontend internal|clang] [dirs...]\n"
          "       gvm_lint --root <repo> --selftest <testdata-dir>\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "gvm-lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  bool use_clang = false;
  if (frontend == "clang") {
    if (!gvmlint::ClangFrontendAvailable()) {
      std::fprintf(stderr,
                   "gvm-lint: error: this binary was built without the clang "
                   "frontend (configure with -DGVM_LINT_WITH_CLANG=ON and a "
                   "Clang dev toolchain)\n");
      return 2;
    }
    if (compdb.empty()) {
      std::fprintf(stderr,
                   "gvm-lint: error: --frontend clang requires --compdb\n");
      return 2;
    }
    use_clang = true;
  } else if (frontend != "internal") {
    std::fprintf(stderr, "gvm-lint: unknown frontend '%s'\n",
                 frontend.c_str());
    return 2;
  }
  if (!selftest.empty()) return RunSelftest(root, selftest);
  if (dirs.empty()) dirs = {"src", "tests", "bench"};
  return RunTree(root, compdb, dirs, use_clang, verbose);
}
