// gvm-lint: the translation-unit model both frontends lower into.
//
// The model is deliberately shaped around what the five rules need and
// nothing more: functions with their guard events and call sites in lexical
// order, classes with their members and mutex ranks, plus the per-line
// directive notes from the lexer.  See rules.cc for how it is consumed.
#ifndef GVM_TOOLS_LINT_MODEL_H_
#define GVM_TOOLS_LINT_MODEL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace gvmlint {

// One event in a function body, in lexical order.  The rule engine replays
// these with a scope stack to reconstruct which guards are live at each call.
struct Event {
  enum Kind {
    kScopeOpen,     // `{` of a nested scope (control flow, plain block, lambda)
    kScopeClose,    // matching `}` — guards/gathers declared inside die here
    kGuardAcquire,  // RAII guard declaration, or manual X.Lock()/LockShared()
    kGuardRelease,  // guard.unlock(), or manual X.Unlock()/UnlockShared()
    kGuardReacquire,  // guard.lock() after a transient drop
    kGatherOpen,    // TlbGatherScope declaration (or raw BeginGather())
    kGatherClose,   // raw EndGather()
    kCall,          // any other call site
    kLocalMutex,    // local Mutex/SharedMutex declaration (fixture support)
  };
  Kind kind = kCall;
  int line = 0;

  // kGuardAcquire / kGuardRelease / kGuardReacquire / kGatherOpen:
  std::string var;        // guard or gather variable name ("" for manual Lock)
  std::string lock_expr;  // full text of the lock expression
  std::string lock_key;   // trailing identifier of lock_expr ("mu_", "mu", ...)
  bool shared = false;    // reader acquisition (ReaderLock / LockShared)

  // kCall:
  std::string callee;             // last identifier of the call chain
  std::string receiver;           // chain before the final ./->/:: ("" if none)
  std::vector<std::string> args;  // top-level argument texts
  std::string arg_key;            // trailing identifier of the last argument

  // kLocalMutex:
  std::string rank;  // "Rank::kFoo" or "" (-> kUnranked)
};

struct FunctionInfo {
  std::string name;        // unqualified name
  std::string class_name;  // enclosing or explicit A::B qualifier ("" if free)
  std::string file;
  int line = 0;
  std::vector<Event> events;
  std::vector<std::string> requires_keys;  // GVM_REQUIRES(...) capability keys
  bool has_guard_param = false;  // takes a MutexLock& (runs with a lock held)
  std::string guard_param_name;  // name of that parameter
  std::set<std::string> allows;  // allow() directives on the signature line
  bool returns_status = false;   // return type is exactly `Status`
};

// A declared (not necessarily defined here) method — used to link decl-site
// annotations (REQUIRES, [[nodiscard]], Status return) onto out-of-line
// definitions, and to build the Status-returning API set.
struct MethodDecl {
  std::string name;
  std::string class_name;
  std::string file;
  int line = 0;
  bool returns_status = false;
  std::vector<std::string> requires_keys;
  bool has_guard_param = false;
  std::string guard_param_name;
  std::set<std::string> allows;
  bool nodiscard = false;
};

struct MemberInfo {
  std::string name;
  std::string type_head;  // leading type identifier chain ("std::atomic", "Mutex", ...)
  std::string file;
  int line = 0;
  bool is_mutex = false;         // Mutex / SharedMutex
  bool is_const = false;
  bool is_reference = false;
  bool is_atomic = false;
  bool is_internally_synced = false;  // CondVar, SleepQueue, Mutex-like, ...
  bool guarded_by = false;            // carries GVM_GUARDED_BY / GVM_PT_GUARDED_BY
  std::string guard_key;              // the capability it names (trailing ident)
  std::string rank;                   // mutex members: "Rank::kFoo" or ""
  std::set<std::string> allows;
};

struct ClassInfo {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<std::string> bases;
  std::vector<MemberInfo> members;
  std::vector<MethodDecl> method_decls;
};

struct FileModel {
  std::string path;           // repo-relative path used for diagnostics
  std::string effective_path; // pretend-path override for fixtures, else path
  std::map<int, LineNotes> notes;
  std::vector<int> kretry_lines;  // lines where the kRetry token appears
  std::vector<std::unique_ptr<FunctionInfo>> functions;
};

struct Project {
  std::vector<std::unique_ptr<FileModel>> files;
  // Class name -> info (merged across files; the tree has unique class names).
  std::map<std::string, ClassInfo> classes;
  // Rank enumerator name ("kMmManager") -> numeric value, parsed from
  // src/sync/lock_rank.h.  kUnranked is exempt from ordering.
  std::map<std::string, int> rank_values;
};

// Parses one file into the project model (internal frontend).
void ParseFile(const std::string& path, const std::string& display_path,
               const std::string& contents, Project* project);

// Parses the Rank enum out of lock_rank.h's contents.
void ParseRankTable(const std::string& contents, Project* project);

// Trailing identifier of an expression text ("a->b.mu_" -> "mu_").
std::string TrailingIdent(const std::string& expr);

}  // namespace gvmlint

#endif  // GVM_TOOLS_LINT_MODEL_H_
