// gvm-lint rules: the five machine-checked invariants.
//
//   no-blocking-under-lock   IPC / network / sleep primitives must not run
//                            with a kernel lock held (PR 4/5 protocol).
//   gather-scope-atomicity   a live TlbGatherScope never spans a drop of its
//                            serializing lock (PR 7 mmu_gather contract).
//   lock-rank                guard nesting must strictly descend the rank
//                            table in src/sync/lock_rank.h (PR 3 hierarchy).
//   status-discipline        Status returns are consumed; kRetry stays inside
//                            the PVM-internal layers (PR 1 contract).
//   annotation-coverage      mutable members of mutex-owning classes carry
//                            GVM_GUARDED_BY (PR 3 TSA coverage cannot rot).
//
// Suppression: `// gvm-lint: allow(rule-id): reason` on the flagged line (or
// on a function signature, for call sites resolved into that function).
#include "tools/lint/rules.h"

#include <algorithm>
#include <map>
#include <set>

namespace gvmlint {
namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ContainsWord(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool UnderSrc(const std::string& path) { return StartsWith(path, "src/"); }

// Which blocking family a call belongs to, judged at the call site.
enum class BlockKind { kNone, kRpc, kWaitFamily };

BlockKind PrimitiveKind(const Event& e) {
  if (e.callee == "Call" || e.callee == "Receive") {
    std::string key = TrailingIdent(e.receiver);
    for (char& c : key) c = static_cast<char>(std::tolower(c));
    if (ContainsWord(key, "ipc") || ContainsWord(key, "net")) {
      return BlockKind::kRpc;
    }
  }
  if (e.callee == "Wait" || e.callee == "WaitFor") return BlockKind::kWaitFamily;
  return BlockKind::kNone;
}

struct FnFacts {
  const FunctionInfo* fn = nullptr;
  bool rpc_blocking = false;       // directly performs an IPC/net round trip
  int rpc_line = 0;
  std::string rpc_what;
  std::set<std::string> wait_keys;  // mutexes its Wait-family calls release
  bool waits = false;
};

class Engine {
 public:
  explicit Engine(const Project& project) : project_(project) {}

  std::vector<Diagnostic> Run(AnalysisStats* stats) {
    BuildIndexes();
    for (const auto& file : project_.files) {
      for (const auto& fn : file->functions) {
        AnalyzeFunction(*file, *fn);
      }
      CheckRetryContainment(*file);
    }
    CheckAnnotationCoverage();
    if (stats != nullptr) {
      stats->files = project_.files.size();
      stats->classes = project_.classes.size();
      stats->status_apis = status_names_.size();
      for (const auto& file : project_.files) {
        stats->functions += file->functions.size();
      }
      stats->guard_nestings = guard_nestings_;
    }
    std::sort(diags_.begin(), diags_.end());
    diags_.erase(std::unique(diags_.begin(), diags_.end()), diags_.end());
    return std::move(diags_);
  }

 private:
  const Project& project_;
  std::vector<Diagnostic> diags_;
  std::set<std::string> status_names_;
  std::map<std::string, std::vector<FnFacts*>> defs_by_name_;
  std::map<const FunctionInfo*, FnFacts> facts_;
  size_t guard_nestings_ = 0;

  void BuildIndexes() {
    for (const auto& [cls, info] : project_.classes) {
      for (const MethodDecl& d : info.method_decls) {
        if (d.returns_status) status_names_.insert(d.name);
      }
    }
    for (const auto& file : project_.files) {
      for (const auto& fn : file->functions) {
        if (fn->returns_status) status_names_.insert(fn->name);
        FnFacts& f = facts_[fn.get()];
        f.fn = fn.get();
        for (const Event& e : fn->events) {
          if (e.kind != Event::kCall) continue;
          BlockKind kind = PrimitiveKind(e);
          if (kind == BlockKind::kRpc && !f.rpc_blocking) {
            f.rpc_blocking = true;
            f.rpc_line = e.line;
            f.rpc_what = (e.receiver.empty() ? "" : e.receiver + ".") + e.callee;
          } else if (kind == BlockKind::kWaitFamily) {
            f.waits = true;
            f.wait_keys.insert(e.args.begin(), e.args.end());
          }
        }
        defs_by_name_[fn->name].push_back(&f);
      }
    }
  }

  // Declaration-site facts (REQUIRES, allows) merged onto a definition.
  // A method can appear several times (header decl, out-of-line definition,
  // overloads); annotations live on whichever copy carries them, so the
  // union is taken.  Over-merging across overloads only ever suppresses
  // diagnostics — precision over recall.
  bool MergedDecl(const FunctionInfo& fn, MethodDecl* out) const {
    auto it = project_.classes.find(fn.class_name);
    if (it == project_.classes.end()) return false;
    bool found = false;
    for (const MethodDecl& d : it->second.method_decls) {
      if (d.name != fn.name) continue;
      found = true;
      out->returns_status |= d.returns_status;
      out->nodiscard |= d.nodiscard;
      out->allows.insert(d.allows.begin(), d.allows.end());
      for (const std::string& k : d.requires_keys) {
        if (std::find(out->requires_keys.begin(), out->requires_keys.end(),
                      k) == out->requires_keys.end()) {
          out->requires_keys.push_back(k);
        }
      }
      if (d.has_guard_param && !out->has_guard_param) {
        out->has_guard_param = true;
        out->guard_param_name = d.guard_param_name;
      }
    }
    return found;
  }

  // A directive suppresses on its own line or on the line directly below it
  // (comment-above-the-statement style).
  bool LineAllows(const FileModel& file, int line, const char* rule) const {
    for (int l : {line, line - 1}) {
      auto it = file.notes.find(l);
      if (it == file.notes.end()) continue;
      for (const std::string& r : it->second.allows) {
        if (r == rule || r == "all") return true;
      }
    }
    return false;
  }

  static bool SetAllows(const std::set<std::string>& allows, const char* rule) {
    return allows.count(rule) != 0 || allows.count("all") != 0;
  }

  // ---- lock-rank resolution ----------------------------------------------

  // Ranks a lock key can resolve to in the context of `class_name` (empty set
  // when unknown).  kUnranked resolutions are returned as -1.
  std::set<int> ResolveRanks(const std::string& class_name,
                             const std::string& key,
                             const std::map<std::string, std::string>& locals)
      const {
    std::set<int> out;
    auto rank_value = [&](const std::string& rank) {
      if (rank.empty()) return -1;
      auto it = project_.rank_values.find(rank);
      return it == project_.rank_values.end() ? -1 : it->second;
    };
    auto local = locals.find(key);
    if (local != locals.end()) {
      out.insert(rank_value(local->second));
      return out;
    }
    // Walk the class and its bases.
    std::set<std::string> seen;
    std::vector<std::string> queue;
    if (!class_name.empty()) queue.push_back(class_name);
    while (!queue.empty()) {
      std::string cls = queue.back();
      queue.pop_back();
      if (!seen.insert(cls).second) continue;
      auto it = project_.classes.find(cls);
      if (it == project_.classes.end()) continue;
      for (const MemberInfo& m : it->second.members) {
        if (m.is_mutex && m.name == key) out.insert(rank_value(m.rank));
      }
      for (const std::string& b : it->second.bases) queue.push_back(b);
    }
    if (!out.empty()) return out;
    // Fall back to every class with a mutex member of that name.
    for (const auto& [cls, info] : project_.classes) {
      for (const MemberInfo& m : info.members) {
        if (m.is_mutex && m.name == key) out.insert(rank_value(m.rank));
      }
    }
    return out;
  }

  // ---- per-function replay -----------------------------------------------

  struct LiveGuard {
    std::string var;
    std::string key;
    int line = 0;
    int scope_depth = 0;
    bool active = true;
    bool from_context = false;  // REQUIRES / MutexLock& parameter
  };
  struct LiveGather {
    std::string var;
    int line = 0;
    int scope_depth = 0;
    std::vector<size_t> serializing;  // indexes into guards at open time
  };

  void AnalyzeFunction(const FileModel& file, const FunctionInfo& fn) {
    std::vector<LiveGuard> guards;
    std::vector<LiveGather> gathers;
    std::map<std::string, std::string> local_mutex_ranks;
    int depth = 0;

    MethodDecl decl;
    bool has_decl = MergedDecl(fn, &decl);
    std::set<std::string> fn_allows = fn.allows;
    std::vector<std::string> requires_keys = fn.requires_keys;
    bool guard_param = fn.has_guard_param;
    std::string guard_param_name = fn.guard_param_name;
    if (has_decl) {
      fn_allows.insert(decl.allows.begin(), decl.allows.end());
      for (const std::string& k : decl.requires_keys) {
        if (std::find(requires_keys.begin(), requires_keys.end(), k) ==
            requires_keys.end()) {
          requires_keys.push_back(k);
        }
      }
      if (decl.has_guard_param && !guard_param) {
        guard_param = true;
        guard_param_name = decl.guard_param_name;
      }
    }
    // Context guards: the capabilities this function runs under.
    for (const std::string& k : requires_keys) {
      guards.push_back({guard_param ? guard_param_name : "", k, fn.line, 0,
                        true, true});
    }
    if (guard_param && requires_keys.empty()) {
      guards.push_back({guard_param_name, "", fn.line, 0, true, true});
    }

    auto active_guards = [&]() {
      std::vector<size_t> out;
      for (size_t i = 0; i < guards.size(); ++i) {
        if (guards[i].active) out.push_back(i);
      }
      return out;
    };
    auto describe = [&](const LiveGuard& g) {
      return g.key.empty() ? (g.var.empty() ? std::string("a lock")
                                            : "guard '" + g.var + "'")
                           : "'" + g.key + "'";
    };

    for (const Event& e : fn.events) {
      switch (e.kind) {
        case Event::kScopeOpen:
          ++depth;
          break;
        case Event::kScopeClose: {
          for (LiveGuard& g : guards) {
            if (g.scope_depth >= depth && !g.from_context) g.active = false;
          }
          // Guards die before gathers opened earlier in the same scope would,
          // and the RAII order inside one scope is reverse-declaration, so a
          // scope close cannot drop a serializing lock that predates the
          // gather; only explicit unlock()/Unlock() can (handled below).
          gathers.erase(
              std::remove_if(gathers.begin(), gathers.end(),
                             [&](const LiveGather& g) {
                               return g.scope_depth >= depth;
                             }),
              gathers.end());
          guards.erase(std::remove_if(guards.begin(), guards.end(),
                                      [&](const LiveGuard& g) {
                                        return !g.active && !g.from_context &&
                                               g.scope_depth >= depth;
                                      }),
                       guards.end());
          --depth;
          break;
        }
        case Event::kLocalMutex:
          local_mutex_ranks[e.var] = e.rank;
          break;
        case Event::kGuardAcquire: {
          // lock-rank: every already-held guard must rank strictly below.
          for (size_t gi : active_guards()) {
            ++guard_nestings_;
            CheckRankEdge(file, fn, guards[gi], e, local_mutex_ranks);
          }
          guards.push_back({e.var, e.lock_key, e.line, depth, true, false});
          break;
        }
        case Event::kGuardRelease: {
          LiveGuard* released = nullptr;
          for (size_t i = guards.size(); i-- > 0;) {
            LiveGuard& g = guards[i];
            if (!g.active) continue;
            if (!e.var.empty() ? g.var == e.var
                               : (!e.lock_key.empty() && g.key == e.lock_key)) {
              released = &g;
              break;
            }
          }
          if (released != nullptr) {
            // gather-scope-atomicity: dropping a serializing lock while a
            // gather is open defers concurrent shootdowns onto a commit the
            // new lock holder never waits for.
            for (const LiveGather& g : gathers) {
              for (size_t gi : g.serializing) {
                if (gi < guards.size() && &guards[gi] == released &&
                    !LineAllows(file, e.line, kRuleGatherScopeAtomicity)) {
                  diags_.push_back(
                      {file.path, e.line, kRuleGatherScopeAtomicity,
                       "lock " + describe(*released) +
                           " dropped while TlbGatherScope '" + g.var +
                           "' (opened line " + std::to_string(g.line) +
                           ") is still open"});
                }
              }
            }
            released->active = false;
          }
          break;
        }
        case Event::kGuardReacquire: {
          for (size_t i = guards.size(); i-- > 0;) {
            if (guards[i].var == e.var && !guards[i].active) {
              guards[i].active = true;
              break;
            }
          }
          break;
        }
        case Event::kGatherOpen: {
          LiveGather g;
          g.var = e.var.empty() ? "<BeginGather>" : e.var;
          g.line = e.line;
          g.scope_depth = depth;
          g.serializing = active_guards();
          // A gather with no serializing lock is an unserialized mutation
          // window (only the RAII form is checked; the raw Begin/EndGather
          // calls are the mechanism's own implementation and tests).
          if (!e.var.empty() && g.serializing.empty() &&
              UnderSrc(file.effective_path) &&
              !LineAllows(file, e.line, kRuleGatherScopeAtomicity) &&
              !SetAllows(fn_allows, kRuleGatherScopeAtomicity)) {
            diags_.push_back({file.path, e.line, kRuleGatherScopeAtomicity,
                              "TlbGatherScope '" + g.var +
                                  "' opened with no serializing lock held"});
          }
          gathers.push_back(g);
          break;
        }
        case Event::kGatherClose:
          if (!gathers.empty()) gathers.pop_back();
          break;
        case Event::kCall: {
          CheckCall(file, fn, fn_allows, e, guards, gathers, active_guards());
          break;
        }
      }
    }
  }

  void CheckRankEdge(const FileModel& file, const FunctionInfo& fn,
                     const LiveGuard& outer, const Event& inner,
                     const std::map<std::string, std::string>& locals) {
    if (LineAllows(file, inner.line, kRuleLockRank)) return;
    if (outer.key.empty() || inner.lock_key.empty()) return;
    std::set<int> outer_ranks = ResolveRanks(fn.class_name, outer.key, locals);
    std::set<int> inner_ranks =
        ResolveRanks(fn.class_name, inner.lock_key, locals);
    if (outer_ranks.empty() || inner_ranks.empty()) return;
    // kUnranked (-1) is exempt from ordering.
    bool all_inverted = true;
    for (int a : outer_ranks) {
      for (int b : inner_ranks) {
        if (a == -1 || b == -1 || a < b) all_inverted = false;
      }
    }
    if (!all_inverted) return;
    int a = *outer_ranks.begin();
    int b = *inner_ranks.begin();
    std::string what =
        (outer.key == inner.lock_key && a == b)
            ? "recursive/equal-rank acquisition of '" + inner.lock_key + "'"
            : "acquiring '" + inner.lock_key + "' (rank " + std::to_string(b) +
                  ") while holding '" + outer.key + "' (rank " +
                  std::to_string(a) + ") inverts the lock hierarchy";
    diags_.push_back({file.path, inner.line, kRuleLockRank, what});
  }

  void CheckCall(const FileModel& file, const FunctionInfo& fn,
                 const std::set<std::string>& fn_allows, const Event& e,
                 std::vector<LiveGuard>& guards,
                 const std::vector<LiveGather>& gathers,
                 const std::vector<size_t>& active) {
    // status-discipline (a): a discarded call to a Status-returning API.
    if (e.var == "<discarded>" && status_names_.count(e.callee) != 0 &&
        !LineAllows(file, e.line, kRuleStatusDiscipline)) {
      diags_.push_back({file.path, e.line, kRuleStatusDiscipline,
                        "result of Status-returning '" + e.callee +
                            "' is ignored (handle it or cast to void with a "
                            "reason)"});
    }

    // gather-scope-atomicity (huge demotion): splitting a huge span retires a
    // wide TLB entry covering many base pages — the split must publish inside
    // an open TlbGatherScope so the mixed-size shootdown commits before the
    // caller mutates any base page of the span (DESIGN.md §16).  The TlbMmu
    // wrapper's own delegation to the inner MMU is the mechanism itself.
    if (e.callee == "DemoteHuge" && gathers.empty() &&
        fn.class_name != "TlbMmu" && UnderSrc(file.effective_path) &&
        !LineAllows(file, e.line, kRuleGatherScopeAtomicity) &&
        !SetAllows(fn_allows, kRuleGatherScopeAtomicity)) {
      diags_.push_back({file.path, e.line, kRuleGatherScopeAtomicity,
                        "huge-span demotion '" + e.callee +
                            "' called with no TlbGatherScope open"});
    }

    const bool r1_line_ok = LineAllows(file, e.line, kRuleNoBlockingUnderLock) ||
                            SetAllows(fn_allows, kRuleNoBlockingUnderLock);

    auto flag_r1 = [&](const LiveGuard& g, const std::string& why) {
      if (r1_line_ok) return;
      std::string held =
          g.key.empty() ? (g.var.empty() ? "a lock" : "guard '" + g.var + "'")
                        : "'" + g.key + "'";
      diags_.push_back({file.path, e.line, kRuleNoBlockingUnderLock,
                        why + " while holding " + held});
    };

    BlockKind kind = PrimitiveKind(e);
    if (kind == BlockKind::kRpc) {
      for (size_t gi : active) {
        flag_r1(guards[gi], "blocking IPC/network call '" +
                                (e.receiver.empty() ? e.callee
                                                    : e.receiver + "." + e.callee) +
                                "'");
      }
      return;
    }
    if (kind == BlockKind::kWaitFamily) {
      std::set<std::string> wait_keys(e.args.begin(), e.args.end());
      for (size_t gi : active) {
        const LiveGuard& g = guards[gi];
        // A guard-param context (`MutexLock&`) has an unknown underlying
        // mutex — it cannot be proven distinct from the one Wait releases,
        // so only a known, different key is a violation.
        if (g.key.empty() && g.from_context) continue;
        if (!g.key.empty() && wait_keys.count(g.key) != 0) continue;
        flag_r1(g, "'" + e.callee + "' sleeps (releasing only its own mutex)");
      }
      // gather-scope-atomicity: Wait drops its mutex — if that mutex is a
      // gather's serializing lock, the gather spans the drop.
      for (const LiveGather& g : gathers) {
        for (size_t gi : g.serializing) {
          if (gi < guards.size() && guards[gi].active &&
              !guards[gi].key.empty() &&
              wait_keys.count(guards[gi].key) != 0 &&
              !LineAllows(file, e.line, kRuleGatherScopeAtomicity)) {
            diags_.push_back({file.path, e.line, kRuleGatherScopeAtomicity,
                              "'" + e.callee + "' releases '" + guards[gi].key +
                                  "' while TlbGatherScope '" + g.var +
                                  "' (opened line " + std::to_string(g.line) +
                                  ") is still open"});
          }
        }
      }
      return;
    }

    // One level of inlining: a call into a function that itself blocks.
    if (active.empty()) return;
    auto defs = defs_by_name_.find(e.callee);
    if (defs == defs_by_name_.end()) return;
    for (const FnFacts* f : defs->second) {
      if (f->fn == &fn) continue;  // recursion
      std::set<std::string> decl_allows = f->fn->allows;
      MethodDecl d;
      if (MergedDecl(*f->fn, &d)) {
        decl_allows.insert(d.allows.begin(), d.allows.end());
      }
      if (SetAllows(decl_allows, kRuleNoBlockingUnderLock)) continue;
      if (f->rpc_blocking) {
        for (size_t gi : active) {
          flag_r1(guards[gi],
                  "call into '" + f->fn->class_name +
                      (f->fn->class_name.empty() ? "" : "::") + f->fn->name +
                      "' which performs blocking '" + f->rpc_what + "' (line " +
                      std::to_string(f->rpc_line) + ")");
        }
        break;  // one diagnostic set per call site
      }
      if (f->waits) {
        std::set<std::string> exempt = f->wait_keys;
        exempt.insert(e.args.begin(), e.args.end());
        for (size_t gi : active) {
          const LiveGuard& g = guards[gi];
          if (g.key.empty() && g.from_context) continue;
          if (!g.key.empty() && exempt.count(g.key) != 0) continue;
          flag_r1(g, "call into '" + f->fn->class_name +
                         (f->fn->class_name.empty() ? "" : "::") +
                         f->fn->name + "' which sleeps (releasing only its "
                         "own mutex)");
        }
        break;
      }
    }
  }

  // ---- file-level rules --------------------------------------------------

  void CheckRetryContainment(const FileModel& file) {
    const std::string& p = file.effective_path;
    if (!UnderSrc(p)) return;
    if (StartsWith(p, "src/pvm/") || p == "src/util/status.h" ||
        p == "src/util/status.cc") {
      return;
    }
    std::set<int> seen;
    for (int line : file.kretry_lines) {
      if (!seen.insert(line).second) continue;
      if (LineAllows(file, line, kRuleStatusDiscipline)) continue;
      diags_.push_back({file.path, line, kRuleStatusDiscipline,
                        "kRetry must not escape the PVM-internal layer "
                        "(src/pvm/); it is a private 're-drive from re-derived "
                        "state' signal"});
    }
  }

  void CheckAnnotationCoverage() {
    for (const auto& [cls, info] : project_.classes) {
      bool owns_mutex = false;
      for (const MemberInfo& m : info.members) {
        if (m.is_mutex) owns_mutex = true;
      }
      if (!owns_mutex) continue;
      for (const MemberInfo& m : info.members) {
        if (!UnderSrc(m.file)) continue;
        if (m.is_mutex || m.is_const || m.is_reference || m.is_atomic ||
            m.is_internally_synced || m.guarded_by) {
          continue;
        }
        if (SetAllows(m.allows, kRuleAnnotationCoverage)) continue;
        diags_.push_back(
            {m.file, m.line, kRuleAnnotationCoverage,
             "mutable member '" + m.name + "' of mutex-owning class '" + cls +
                 "' lacks GVM_GUARDED_BY (annotate it, make it atomic/const, "
                 "or allow() it with the synchronization story)"});
      }
    }
  }
};

}  // namespace

std::vector<Diagnostic> RunRules(const Project& project, AnalysisStats* stats) {
  Engine engine(project);
  return engine.Run(stats);
}

}  // namespace gvmlint
