// Delta-debugging minimizer for PVM differential failures: records the random
// schedule as a trace, then greedily removes operations while the divergence (or
// invariant violation) persists.  Prints the minimal failing trace.
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/pvm/paged_vm.h"
#include "src/util/rng.h"
#include "tests/crash_harness.h"
#include "tests/dsm_harness.h"
#include "tests/pressure_harness.h"
#include "tests/test_util.h"

using namespace gvm;

constexpr size_t kPage = 4096;
constexpr size_t kSegPages = 8;
constexpr size_t kSegBytes = kSegPages * kPage;

struct Op {
  enum Kind { kCreate, kWrite, kCopy, kDestroy } kind;
  int a = 0, b = 0;
  size_t off = 0, size = 0;
  size_t src_off = 0;
  CopyPolicy policy = CopyPolicy::kEager;
  uint64_t data_seed = 0;
};

const char* PolicyName(CopyPolicy p) {
  switch (p) {
    case CopyPolicy::kAuto: return "kAuto";
    case CopyPolicy::kEager: return "kEager";
    case CopyPolicy::kHistory: return "kHistory";
    case CopyPolicy::kHistoryOnRef: return "kHistoryOnRef";
    case CopyPolicy::kPerPage: return "kPerPage";
  }
  return "?";
}

// Replays a trace; returns true if any audit diverges (the failure reproduces).
// Fault specs (if any) are applied to a fresh injector seeded from `fault_seed`
// on every replay, so each candidate trace sees an identical fault stream.
bool Replay(const std::vector<Op>& ops, bool verbose, uint64_t fault_seed,
            const std::vector<std::string>& fault_specs, size_t frames) {
  PhysicalMemory memory(frames, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);
  FaultInjector injector(fault_seed);
  for (const std::string& spec : fault_specs) {
    injector.ApplySpec(spec);  // validated once in main()
  }
  registry.injector = &injector;
  memory.BindFaultInjector(&injector);
  std::map<int, std::vector<std::byte>> ref;
  std::map<int, Cache*> live;

  // Unacknowledged mutations may have partially applied: take an authoritative
  // read with injection suspended (does not advance the injector's RNG).
  auto resync = [&](int id) {
    injector.set_enabled(false);
    live[id]->Read(0, ref[id].data(), kSegBytes);
    injector.set_enabled(true);
  };

  auto audit = [&]() -> bool {
    injector.set_enabled(false);
    struct Reenable {
      FaultInjector& inj;
      ~Reenable() { inj.set_enabled(true); }
    } reenable{injector};
    for (auto& [id, cache] : live) {
      std::vector<std::byte> got(kSegBytes);
      if (cache->Read(0, got.data(), kSegBytes) != Status::kOk) {
        return false;
      }
      if (std::memcmp(got.data(), ref[id].data(), kSegBytes) != 0) {
        if (verbose) {
          size_t i = 0;
          while (got[i] == ref[id][i]) ++i;
          printf("  -> diverged: seg%d byte %zu (page %zu) got=%02x want=%02x\n", id, i,
                 i / kPage, (unsigned)got[i], (unsigned)ref[id][i]);
          printf("%s\n", vm.DumpTree(*cache).c_str());
        }
        return false;
      }
    }
    return vm.CheckInvariants() == Status::kOk;
  };

  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kCreate:
        if (!live.contains(op.a)) {
          ref[op.a] = std::vector<std::byte>(kSegBytes);
          live[op.a] = *vm.CacheCreate(nullptr, "seg" + std::to_string(op.a));
        }
        break;
      case Op::kWrite: {
        if (!live.contains(op.a)) break;
        Rng data(op.data_seed);
        std::vector<std::byte> bytes(op.size);
        for (auto& c : bytes) c = (std::byte)data.Below(256);
        if (live[op.a]->Write(op.off, bytes.data(), op.size) == Status::kOk) {
          std::memcpy(ref[op.a].data() + op.off, bytes.data(), op.size);
        } else {
          resync(op.a);
        }
        break;
      }
      case Op::kCopy:
        if (!live.contains(op.a) || !live.contains(op.b)) break;
        if (live[op.a]->CopyTo(*live[op.b], op.src_off, op.off, op.size, op.policy) ==
            Status::kOk) {
          std::memmove(ref[op.b].data() + op.off, ref[op.a].data() + op.src_off, op.size);
        } else {
          resync(op.b);
        }
        break;
      case Op::kDestroy:
        if (!live.contains(op.a) || live.size() <= 1) break;
        live[op.a]->Destroy();
        live.erase(op.a);
        ref.erase(op.a);
        break;
    }
    if (verbose) {
      printf("after op: ");
      for (auto& [id, cache] : live) printf("seg%d:%zu ", id, cache->ResidentPages());
      printf("\n");
    }
    if (!audit()) {
      return true;  // failure reproduced
    }
  }
  return false;
}

void Print(const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kCreate:
        printf("create seg%d\n", op.a);
        break;
      case Op::kWrite:
        printf("write seg%d off=%zu size=%zu seed=%llu\n", op.a, op.off, op.size,
               (unsigned long long)op.data_seed);
        break;
      case Op::kCopy:
        printf("copy seg%d[%zu +%zu] -> seg%d[%zu] %s\n", op.a, op.src_off, op.size, op.b,
               op.off, PolicyName(op.policy));
        break;
      case Op::kDestroy:
        printf("destroy seg%d\n", op.a);
        break;
    }
  }
}

// Crash-mode minimization: the chaos harness is configuration-driven rather
// than trace-driven, so the minimizer shrinks the *configuration* — fewer
// steps, fewer threads, fewer caches, fewer fault specs — while the failure
// persists, and prints the smallest failing storm as a repro command line.
void PrintCrashConfig(const CrashChaosConfig& config) {
  printf("  repro_tool %llu", (unsigned long long)config.seed);
  for (const std::string& spec : config.fault_specs) printf(" %s", spec.c_str());
  printf(" threads=%d steps=%d caches=%d frames=%zu%s\n", config.threads,
         config.steps_per_thread, config.caches, config.frames,
         config.use_ipc_transport ? " ipc" : "");
}

int MinimizeCrashConfig(CrashChaosConfig config) {
  if (RunCrashChaos(config).ok) {
    printf("crash config does not fail; try another seed\n");
    return 1;
  }
  printf("initial failing crash config:\n");
  PrintCrashConfig(config);
  auto fails = [](const CrashChaosConfig& candidate) {
    return !RunCrashChaos(candidate).ok;
  };
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    CrashChaosConfig candidate = config;
    if (config.steps_per_thread > 1) {
      candidate.steps_per_thread = config.steps_per_thread / 2;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.threads > 1) {
      candidate.threads = config.threads - 1;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.caches > 1) {
      candidate.caches = config.caches - 1;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.use_ipc_transport) {
      candidate.use_ipc_transport = false;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    for (size_t i = 0; config.fault_specs.size() > 1 && i < config.fault_specs.size();
         ++i) {
      candidate = config;
      candidate.fault_specs.erase(candidate.fault_specs.begin() +
                                  static_cast<ptrdiff_t>(i));
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        break;
      }
    }
  }
  printf("minimal failing crash config:\n");
  PrintCrashConfig(config);
  CrashChaosReport report = RunCrashChaos(config);
  printf("%s\n", report.failure.c_str());
  return 0;
}

// DSM-mode minimization: like crash mode, shrinks the chaos *configuration* —
// fewer sites, threads, steps, pages, storms, fault specs — while the failure
// persists, then prints the smallest failing cluster as a repro command line.
void PrintDsmConfig(const DsmChaosConfig& config) {
  printf("  repro_tool %llu", (unsigned long long)config.seed);
  for (const std::string& spec : config.fault_specs) printf(" %s", spec.c_str());
  printf(" sites=%d threads=%d steps=%d pages=%zu frames=%zu%s%s\n", config.sites,
         config.threads_per_site, config.steps_per_thread, config.pages,
         config.frames_per_site, config.partition_storm ? " partstorm" : "",
         config.crash_storm ? " crashstorm" : "");
}

int MinimizeDsmConfig(DsmChaosConfig config) {
  if (RunDsmChaos(config).ok) {
    printf("dsm config does not fail; try another seed\n");
    return 1;
  }
  printf("initial failing dsm config:\n");
  PrintDsmConfig(config);
  auto fails = [](const DsmChaosConfig& candidate) { return !RunDsmChaos(candidate).ok; };
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    DsmChaosConfig candidate = config;
    if (config.steps_per_thread > 1) {
      candidate.steps_per_thread = config.steps_per_thread / 2;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.sites > 2) {
      candidate.sites = config.sites - 1;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.threads_per_site > 1) {
      candidate.threads_per_site = config.threads_per_site - 1;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.pages > 1) {
      candidate.pages = config.pages / 2;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.partition_storm) {
      candidate.partition_storm = false;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.crash_storm) {
      candidate.crash_storm = false;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    for (size_t i = 0; config.fault_specs.size() > 1 && i < config.fault_specs.size();
         ++i) {
      candidate = config;
      candidate.fault_specs.erase(candidate.fault_specs.begin() +
                                  static_cast<ptrdiff_t>(i));
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        break;
      }
    }
  }
  printf("minimal failing dsm config:\n");
  PrintDsmConfig(config);
  DsmChaosReport report = RunDsmChaos(config);
  printf("%s\n", report.failure.c_str());
  return 0;
}

// Pressure-mode minimization: like crash and DSM mode, shrinks the storm
// *configuration* — fewer steps, fewer address spaces, fewer committed pages,
// fewer fault specs, simpler features — while the failure persists, then
// prints the smallest failing storm as a repro command line.
void PrintPressureConfig(const PressureStormConfig& config) {
  printf("  repro_tool %llu pressurestorm", (unsigned long long)config.seed);
  for (const std::string& spec : config.fault_specs) printf(" %s", spec.c_str());
  printf(" spaces=%d steps=%d frames=%zu pages=%zu", config.address_spaces,
         config.steps_per_thread, config.frames, config.commit_pages_per_space);
  if (config.working_set_limit_pages != 0) {
    printf(" wslimit=%zu", config.working_set_limit_pages);
  }
  if (config.thrash_ewma_threshold != 0) {
    printf(" thrash=%llu", (unsigned long long)config.thrash_ewma_threshold);
  }
  printf("%s\n", config.use_ipc_transport ? " ipc" : "");
}

int MinimizePressureConfig(PressureStormConfig config) {
  if (RunPressureStorm(config).ok) {
    printf("pressure config does not fail; try another seed\n");
    return 1;
  }
  printf("initial failing pressure config:\n");
  PrintPressureConfig(config);
  auto fails = [](const PressureStormConfig& candidate) {
    return !RunPressureStorm(candidate).ok;
  };
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    PressureStormConfig candidate = config;
    if (config.steps_per_thread > 1) {
      candidate.steps_per_thread = config.steps_per_thread / 2;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.address_spaces > 1) {
      candidate.address_spaces = config.address_spaces - 1;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.commit_pages_per_space > 1) {
      candidate.commit_pages_per_space = config.commit_pages_per_space / 2;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.working_set_limit_pages != 0) {
      candidate.working_set_limit_pages = 0;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.thrash_ewma_threshold != 0) {
      candidate.thrash_ewma_threshold = 0;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    candidate = config;
    if (config.use_ipc_transport) {
      candidate.use_ipc_transport = false;
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        continue;
      }
    }
    for (size_t i = 0; config.fault_specs.size() > 1 && i < config.fault_specs.size();
         ++i) {
      candidate = config;
      candidate.fault_specs.erase(candidate.fault_specs.begin() +
                                  static_cast<ptrdiff_t>(i));
      if (fails(candidate)) {
        config = candidate;
        shrunk = true;
        break;
      }
    }
  }
  printf("minimal failing pressure config:\n");
  PrintPressureConfig(config);
  PressureStormReport report = RunPressureStorm(config);
  printf("%s\n", report.failure.c_str());
  return 0;
}

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? atoll(argv[1]) : 1;
  int steps = argc > 2 ? atoi(argv[2]) : 300;
  // Remaining arguments are fault-plan specs (recreated identically per replay)
  // or "frames=N" to shrink physical memory for eviction pressure.  A crash-class
  // spec (crashwrite / crashmidwrite / crashreply) switches to crash-config
  // minimization; there "threads=N", "caches=N" and "ipc" shape the storm.
  // A DSM-class spec (netdeliver / netpart / crashsiterecall / crashsiteack)
  // switches to dsm-config minimization; there "sites=N", "threads=N",
  // "pages=N", "partstorm" and "crashstorm" shape the cluster.
  // A pressure-class spec (lowmem / pageoutstall / crashmidbatch) — or the bare
  // "pressurestorm" keyword — switches to pressure-config minimization; there
  // "spaces=N", "frames=N", "pages=N", "wslimit=N", "thrash=N" and "ipc"
  // shape the storm.
  std::vector<std::string> fault_specs;
  size_t frames = 4096;
  CrashChaosConfig crash_config;
  crash_config.seed = seed;
  crash_config.steps_per_thread = steps;
  crash_config.frames = 12;
  DsmChaosConfig dsm_config;
  dsm_config.seed = seed;
  dsm_config.steps_per_thread = steps;
  PressureStormConfig pressure_config;
  pressure_config.seed = seed;
  pressure_config.steps_per_thread = steps;
  bool crash_mode = false;
  bool dsm_mode = false;
  bool pressure_mode = false;
  auto is_dsm_spec = [](const std::string& spec) {
    return spec.rfind("netdeliver", 0) == 0 || spec.rfind("netpart", 0) == 0 ||
           spec.rfind("crashsiterecall", 0) == 0 || spec.rfind("crashsiteack", 0) == 0;
  };
  auto is_pressure_spec = [](const std::string& spec) {
    return spec.rfind("lowmem", 0) == 0 || spec.rfind("pageoutstall", 0) == 0 ||
           spec.rfind("crashmidbatch", 0) == 0;
  };
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "pressurestorm") {
      pressure_mode = true;
      continue;
    }
    if (arg.rfind("frames=", 0) == 0) {
      frames = strtoull(arg.c_str() + 7, nullptr, 10);
      crash_config.frames = frames;
      dsm_config.frames_per_site = frames;
      pressure_config.frames = frames;
      continue;
    }
    if (arg.rfind("threads=", 0) == 0) {
      crash_config.threads = atoi(arg.c_str() + 8);
      dsm_config.threads_per_site = atoi(arg.c_str() + 8);
      continue;
    }
    if (arg.rfind("caches=", 0) == 0) {
      crash_config.caches = atoi(arg.c_str() + 7);
      continue;
    }
    if (arg.rfind("sites=", 0) == 0) {
      dsm_config.sites = atoi(arg.c_str() + 6);
      continue;
    }
    if (arg.rfind("spaces=", 0) == 0) {
      pressure_config.address_spaces = atoi(arg.c_str() + 7);
      continue;
    }
    if (arg.rfind("pages=", 0) == 0) {
      dsm_config.pages = strtoull(arg.c_str() + 6, nullptr, 10);
      pressure_config.commit_pages_per_space = strtoull(arg.c_str() + 6, nullptr, 10);
      continue;
    }
    if (arg.rfind("wslimit=", 0) == 0) {
      pressure_config.working_set_limit_pages = strtoull(arg.c_str() + 8, nullptr, 10);
      continue;
    }
    if (arg.rfind("thrash=", 0) == 0) {
      pressure_config.thrash_ewma_threshold = strtoull(arg.c_str() + 7, nullptr, 10);
      continue;
    }
    if (arg == "partstorm") {
      dsm_config.partition_storm = true;
      continue;
    }
    if (arg == "crashstorm") {
      dsm_config.crash_storm = true;
      continue;
    }
    if (arg == "ipc") {
      crash_config.use_ipc_transport = true;
      pressure_config.use_ipc_transport = true;
      continue;
    }
    FaultInjector probe;
    std::string error;
    if (!probe.ApplySpec(arg, &error)) {
      fprintf(stderr, "bad fault spec '%s': %s\n", arg.c_str(), error.c_str());
      fprintf(stderr,
              "usage: %s [seed] [steps] [frames=N] [threads=N caches=N ipc] "
              "[sites=N pages=N partstorm crashstorm] "
              "[pressurestorm spaces=N wslimit=N thrash=N] [site:mode[:args]...]...\n",
              argv[0]);
      return 2;
    }
    fault_specs.push_back(arg);
    if (is_pressure_spec(arg)) {
      pressure_mode = true;  // before the crash test: crashmidbatch starts with "crash"
    } else if (is_dsm_spec(arg)) {
      dsm_mode = true;  // before the crash test: crashsite* also starts with "crash"
    } else if (arg.rfind("crash", 0) == 0) {
      crash_mode = true;
    }
  }
  if (pressure_mode) {
    pressure_config.fault_specs = fault_specs;
    return MinimizePressureConfig(pressure_config);
  }
  if (dsm_mode) {
    dsm_config.fault_specs = fault_specs;
    return MinimizeDsmConfig(dsm_config);
  }
  if (crash_mode) {
    crash_config.fault_specs = fault_specs;
    return MinimizeCrashConfig(crash_config);
  }
  // Generate the schedule exactly like the property test.
  std::vector<Op> trace;
  {
    Rng rng(seed);
    std::vector<int> live;
    int next = 0;
    auto create = [&] {
      trace.push_back(Op{.kind = Op::kCreate, .a = next});
      live.push_back(next);
      return next++;
    };
    create();
    const CopyPolicy kPolicies[] = {CopyPolicy::kEager, CopyPolicy::kHistory,
                                    CopyPolicy::kHistoryOnRef, CopyPolicy::kPerPage,
                                    CopyPolicy::kAuto};
    for (int step = 0; step < steps; ++step) {
      uint64_t roll = rng.Below(100);
      auto pick = [&]() -> int { return live[rng.Below(live.size())]; };
      if (live.empty() || (roll < 10 && live.size() < 8)) {
        create();
      } else if (roll < 40) {
        int id = pick();
        size_t off = rng.Below(kSegBytes - 1);
        size_t size = 1 + rng.Below(std::min<size_t>(kSegBytes - off, 3 * kPage));
        uint64_t dseed = rng.Next();
        // consume data bytes deterministically via dseed instead
        trace.push_back(
            Op{.kind = Op::kWrite, .a = id, .off = off, .size = size, .data_seed = dseed});
      } else if (roll < 70 && live.size() >= 2) {
        int src = pick();
        int dst = pick();
        if (src == dst) continue;
        size_t pages = 1 + rng.Below(kSegPages);
        size_t sp = rng.Below(kSegPages - pages + 1);
        size_t dp = rng.Below(kSegPages - pages + 1);
        CopyPolicy policy = kPolicies[rng.Below(5)];
        trace.push_back(Op{.kind = Op::kCopy, .a = src, .b = dst, .off = dp * kPage,
                           .size = pages * kPage, .src_off = sp * kPage, .policy = policy});
      } else if (roll < 85) {
        pick();
        rng.Next();
        rng.Next();  // keep the stream roughly aligned (reads don't mutate)
      } else if (roll < 95 && live.size() > 1) {
        int id = pick();
        trace.push_back(Op{.kind = Op::kDestroy, .a = id});
        live.erase(std::find(live.begin(), live.end(), id));
      } else {
        pick();
      }
    }
  }
  if (!Replay(trace, false, seed, fault_specs, frames)) {
    printf("trace does not fail; try another seed\n");
    return 1;
  }
  printf("initial failing trace: %zu ops\n", trace.size());
  // Greedy minimization: repeatedly try dropping each op.
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (size_t i = 0; i < trace.size(); ++i) {
      std::vector<Op> candidate = trace;
      candidate.erase(candidate.begin() + i);
      if (Replay(candidate, false, seed, fault_specs, frames)) {
        trace = candidate;
        shrunk = true;
        break;
      }
    }
  }
  printf("minimal trace (%zu ops):\n", trace.size());
  Print(trace);
  printf("--- replaying verbosely ---\n");
  Replay(trace, true, seed, fault_specs, frames);
  return 0;
}
