// Distributed coherent virtual memory built on the GMI cache-control operations
// (section 3.3.3).  These tests drive mapped shared memory from multiple simulated
// sites and check single-writer/multiple-reader coherence — first on a perfect
// network, then through SimNet loss/partition/crash chaos with the shadow
// oracle (DESIGN.md §12) auditing every run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/dsm/net.h"
#include "src/fault/fault_injector.h"
#include "tests/dsm_harness.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;
constexpr Vaddr kBase = 0x10000000;

class DsmTest : public ::testing::Test {
 protected:
  DsmTest() : cluster_(kPage) {
    a_ = cluster_.AddSite();
    b_ = cluster_.AddSite();
    EXPECT_EQ(cluster_.CreateSharedSegment("shm", 8 * kPage), Status::kOk);
    EXPECT_TRUE(a_->MapShared("shm", kBase, 8 * kPage, Prot::kReadWrite).ok());
    EXPECT_TRUE(b_->MapShared("shm", kBase, 8 * kPage, Prot::kReadWrite).ok());
  }

  DsmCluster cluster_;
  DsmSite* a_;
  DsmSite* b_;
};

TEST_F(DsmTest, WriteOnOneSiteVisibleOnAnother) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 0xABCDEF), Status::kOk);
  Result<uint64_t> got = b_->Load<uint64_t>(kBase);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 0xABCDEFu);
}

TEST_F(DsmTest, OwnershipMovesToTheWriter) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 1), Status::kOk);
  EXPECT_EQ(cluster_.OwnerOf("shm", 0), a_->id());
  // B writes the same page: ownership must transfer and A must be invalidated.
  ASSERT_EQ(b_->Store<uint64_t>(kBase, 2), Status::kOk);
  EXPECT_EQ(cluster_.OwnerOf("shm", 0), b_->id());
  EXPECT_GE(cluster_.stats().invalidations, 1u);
  // A sees B's write.
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 2u);
}

TEST_F(DsmTest, ReadersShareWithoutInvalidation) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 7), Status::kOk);
  uint64_t invalidations = cluster_.stats().invalidations;
  // Both sites read: read sharing, no invalidations.
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 7u);
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 7u);
  EXPECT_EQ(*b_->Load<uint64_t>(kBase + 8), 0u);
  EXPECT_EQ(cluster_.stats().invalidations, invalidations);
  auto readers = cluster_.ReadersOf("shm", 0);
  EXPECT_TRUE(readers.contains(b_->id()));
}

TEST_F(DsmTest, PingPongCounter) {
  // The classic DSM ping-pong: two sites increment a shared counter in turns.
  // Every increment after a remote one costs an ownership transfer.
  for (int round = 0; round < 10; ++round) {
    DsmSite* site = (round % 2 == 0) ? a_ : b_;
    Result<uint64_t> value = site->Load<uint64_t>(kBase);
    ASSERT_TRUE(value.ok());
    ASSERT_EQ(site->Store<uint64_t>(kBase, *value + 1), Status::kOk);
  }
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 10u);
  EXPECT_GE(cluster_.stats().write_grants, 10u);
  EXPECT_GE(cluster_.stats().network_messages, 20u);
}

TEST_F(DsmTest, FalseSharingVsDisjointPages) {
  // Disjoint pages: each site owns its page; after warm-up, no more protocol
  // traffic for local writes.
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 1), Status::kOk);
  ASSERT_EQ(b_->Store<uint64_t>(kBase + kPage, 1), Status::kOk);
  uint64_t messages_after_warmup = cluster_.stats().network_messages;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(a_->Store<uint64_t>(kBase, i), Status::kOk);
    ASSERT_EQ(b_->Store<uint64_t>(kBase + kPage, i), Status::kOk);
  }
  EXPECT_EQ(cluster_.stats().network_messages, messages_after_warmup);

  // Same page ("false sharing"): every alternation costs messages.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(a_->Store<uint64_t>(kBase + 2 * kPage, i), Status::kOk);
    ASSERT_EQ(b_->Store<uint64_t>(kBase + 2 * kPage + 8, i), Status::kOk);
  }
  EXPECT_GT(cluster_.stats().network_messages, messages_after_warmup);
  // Coherence held anyway: the last writer's value wins on both.
  EXPECT_EQ(*a_->Load<uint64_t>(kBase + 2 * kPage + 8), 9u);
}

TEST_F(DsmTest, ThreeSites) {
  DsmSite* c = cluster_.AddSite();
  ASSERT_TRUE(c->MapShared("shm", kBase, 8 * kPage, Prot::kReadWrite).ok());
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 0x111), Status::kOk);
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 0x111u);
  EXPECT_EQ(*c->Load<uint64_t>(kBase), 0x111u);
  // C writes: both A and B get invalidated.
  uint64_t invalidations = cluster_.stats().invalidations;
  ASSERT_EQ(c->Store<uint64_t>(kBase, 0x333), Status::kOk);
  EXPECT_GE(cluster_.stats().invalidations, invalidations + 2);
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 0x333u);
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 0x333u);
}

TEST_F(DsmTest, SequentialConsistencyStressAlternating) {
  // A long alternating schedule over several pages; a per-page "last write wins"
  // model checks every read on both sites.
  std::vector<uint64_t> model(4, 0);
  for (int step = 0; step < 200; ++step) {
    DsmSite* site = (step % 3 == 0) ? b_ : a_;
    size_t page = step % 4;
    Vaddr va = kBase + page * kPage;
    if (step % 2 == 0) {
      uint64_t value = 0x5000 + step;
      ASSERT_EQ(site->Store<uint64_t>(va, value), Status::kOk);
      model[page] = value;
    } else {
      Result<uint64_t> got = site->Load<uint64_t>(va);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, model[page]) << "step " << step;
    }
  }
  EXPECT_EQ(a_->vm().CheckInvariants(), Status::kOk);
  EXPECT_EQ(b_->vm().CheckInvariants(), Status::kOk);
}

TEST_F(DsmTest, WalJournalsTransitionsAndOraclePasses) {
  for (int round = 0; round < 6; ++round) {
    DsmSite* site = (round % 2 == 0) ? a_ : b_;
    ASSERT_EQ(site->Store<uint64_t>(kBase, static_cast<uint64_t>(round)), Status::kOk);
  }
  EXPECT_GT(cluster_.WalRecordCount(), 0u);
  std::string diagnostic;
  EXPECT_EQ(cluster_.OracleCheck(&diagnostic), Status::kOk) << diagnostic;
}

TEST_F(DsmTest, StatsSnapshotIsConcurrencySafe) {
  // stats() returns a value snapshot; reading it while traffic runs must not
  // tear or race (TSan is the real judge here).
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      DsmCluster::Stats s = cluster_.stats();
      EXPECT_GE(s.network_messages, last);  // counters only grow
      last = s.network_messages;
    }
  });
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(a_->Store<uint64_t>(kBase, static_cast<uint64_t>(i)), Status::kOk);
    ASSERT_TRUE(b_->Load<uint64_t>(kBase).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

TEST_F(DsmTest, WriteBackFromNonOwnerIsRejected) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 0xAA), Status::kOk);
  // Forge a writeback from B for a page A owns: the directory must refuse it
  // rather than let a stale or malicious site corrupt authoritative bytes.
  NetMessage forged;
  forged.op = NetOp::kWriteBack;
  forged.key = 1;  // first created segment
  forged.offset = 0;
  forged.size = cluster_.page_size();
  forged.payload.assign(cluster_.page_size(), std::byte{0x5A});
  Result<NetMessage> reply = cluster_.net().Call(b_->id(), kHomeNode, std::move(forged));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status, Status::kPermissionDenied);
  EXPECT_GE(cluster_.stats().writebacks_rejected, 1u);
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 0xAAu);
}

// ---------------------------------------------------------------------------
// SimNet: loss, retransmission, dedup, partitions, node death
// ---------------------------------------------------------------------------

TEST(SimNetTest, DropIsAbsorbedByRetransmitWithExactlyOnceDelivery) {
  SimNet net(7);
  std::atomic<int> handled{0};
  net.Register(kHomeNode, [&](const NetMessage& m, NetMessage* r) {
    handled.fetch_add(1);
    r->arg = m.arg * 2;
  });
  net.Register(0, [](const NetMessage&, NetMessage*) {});
  FaultInjector injector(3);
  ASSERT_TRUE(injector.ApplySpec("netdeliver:nth:1"));
  net.BindFaultInjector(&injector);
  NetMessage m;
  m.op = NetOp::kReadReq;
  m.arg = 21;
  Result<NetMessage> reply = net.Call(0, kHomeNode, std::move(m));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->arg, 42u);
  // Whichever half the seeded drop ate (request or reply), the handler ran
  // exactly once and the caller still got its answer.
  EXPECT_EQ(handled.load(), 1);
  SimNet::Stats stats = net.stats();
  EXPECT_EQ(stats.drops, 1u);
  EXPECT_GE(stats.retransmits, 1u);
}

TEST(SimNetTest, HeavyLossNeverDuplicatesHandlerEffects) {
  SimNet net(11);
  std::atomic<int> handled{0};
  net.Register(kHomeNode, [&](const NetMessage&, NetMessage*) { handled.fetch_add(1); });
  net.Register(0, [](const NetMessage&, NetMessage*) {});
  FaultInjector injector(5);
  ASSERT_TRUE(injector.ApplySpec("netdeliver:prob:40:seed=5"));
  net.BindFaultInjector(&injector);
  constexpr int kCalls = 60;
  int delivered = 0;
  for (int i = 0; i < kCalls; ++i) {
    if (net.Call(0, kHomeNode, NetMessage{}).ok()) {
      ++delivered;
    }
  }
  // 40% per-attempt loss with 16 attempts: every call should get through, and
  // dedup must pin handler executions to one per *logical* call even though
  // many attempts were retransmissions of already-handled sequence numbers.
  EXPECT_EQ(delivered, kCalls);
  EXPECT_EQ(handled.load(), kCalls);
  EXPECT_GT(net.stats().drops, 0u);
}

TEST(SimNetTest, PartitionTimesOutThenHealsAndInjectedPartitionPersists) {
  SimNet net(1);
  net.Register(kHomeNode, [](const NetMessage&, NetMessage*) {});
  net.Register(0, [](const NetMessage&, NetMessage*) {});
  net.Partition(0, kHomeNode);
  Result<NetMessage> cut = net.Call(0, kHomeNode, NetMessage{});
  EXPECT_EQ(cut.status(), Status::kTimeout);
  EXPECT_GT(net.stats().partition_rejects, 0u);
  net.Heal(0, kHomeNode);
  EXPECT_TRUE(net.Call(0, kHomeNode, NetMessage{}).ok());

  // An injector-driven partition behaves like an explicit one: it stays down
  // until healed, it does not flicker per message.
  FaultInjector injector(9);
  ASSERT_TRUE(injector.ApplySpec("netpart:nth:1"));
  net.BindFaultInjector(&injector);
  EXPECT_EQ(net.Call(0, kHomeNode, NetMessage{}).status(), Status::kTimeout);
  EXPECT_EQ(net.stats().partitions_injected, 1u);
  EXPECT_EQ(net.Call(0, kHomeNode, NetMessage{}).status(), Status::kTimeout);
  net.HealAll();
  EXPECT_TRUE(net.Call(0, kHomeNode, NetMessage{}).ok());
}

TEST(SimNetTest, DeadNodeFailsFastBothDirections) {
  SimNet net(1);
  net.Register(kHomeNode, [](const NetMessage&, NetMessage*) {});
  net.Register(0, [](const NetMessage&, NetMessage*) {});
  net.SetNodeDead(0, true);
  EXPECT_EQ(net.Call(0, kHomeNode, NetMessage{}).status(), Status::kPortDead);
  EXPECT_EQ(net.Call(kHomeNode, 0, NetMessage{}).status(), Status::kPortDead);
  net.SetNodeDead(0, false);
  EXPECT_TRUE(net.Call(0, kHomeNode, NetMessage{}).ok());
}

// ---------------------------------------------------------------------------
// Cross-site crash recovery
// ---------------------------------------------------------------------------

class DsmRecoveryTest : public DsmTest {};

TEST_F(DsmRecoveryTest, CrashLosesUncommittedKeepsCommitted) {
  // Commit 1 home (B's read recalls it), then write 2 without committing.
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 1), Status::kOk);
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 1u);
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 2), Status::kOk);  // cached at A only
  ASSERT_EQ(cluster_.CrashSite(a_->id()), Status::kOk);
  EXPECT_TRUE(cluster_.SiteCrashed(a_->id()));
  // The uncommitted 2 died with A; the committed 1 is authoritative.
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 1u);
  Result<uint64_t> drained = cluster_.RecoverSite(a_->id());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 1u);  // A re-joins with home's view
  std::string diagnostic;
  EXPECT_EQ(cluster_.OracleCheck(&diagnostic), Status::kOk) << diagnostic;
}

TEST_F(DsmRecoveryTest, InjectedCrashMidRecallLosesOnlyUncommittedData) {
  FaultInjector injector(1);
  cluster_.BindFaultInjector(&injector);
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 5), Status::kOk);  // A owns, 5 uncommitted
  ASSERT_TRUE(injector.ApplySpec("crashsiterecall:nth:1"));
  // B's read recalls A; A dies *before* syncing: the recall fails with
  // kPortDead, the home serves its last committed bytes (still zero).
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 0u);
  EXPECT_TRUE(cluster_.SiteCrashed(a_->id()));
  EXPECT_EQ(cluster_.stats().site_crashes, 1u);
  ASSERT_TRUE(cluster_.RecoverSite(a_->id()).ok());
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 0u);
  std::string diagnostic;
  EXPECT_EQ(cluster_.OracleCheck(&diagnostic), Status::kOk) << diagnostic;
}

TEST_F(DsmRecoveryTest, InjectedCrashBeforeAckKeepsCommittedWriteback) {
  FaultInjector injector(1);
  cluster_.BindFaultInjector(&injector);
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 7), Status::kOk);
  ASSERT_TRUE(injector.ApplySpec("crashsiteack:nth:1"));
  // A dies *after* its writeback committed but before the recall ack: the ack
  // is lost, the data is not — B reads the recalled 7.
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 7u);
  EXPECT_TRUE(cluster_.SiteCrashed(a_->id()));
  ASSERT_TRUE(cluster_.RecoverSite(a_->id()).ok());
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 7u);
  std::string diagnostic;
  EXPECT_EQ(cluster_.OracleCheck(&diagnostic), Status::kOk) << diagnostic;
}

TEST_F(DsmRecoveryTest, PendingGrantDrainedExactlyOnceOnRejoin) {
  // Warm A as a sharer first (so its store goes straight to kAcquireWrite,
  // not a read fill), then slow the home<->B link: invalidating sharer B gives
  // a wide window in which A's grant is in flight; crash A inside it.
  ASSERT_EQ(b_->Store<uint64_t>(kBase, 1), Status::kOk);  // B owns page 0
  ASSERT_EQ(*a_->Load<uint64_t>(kBase), 1u);              // A and B now share it
  SimNet::LinkPolicy slow;
  slow.latency_us = 40'000;
  cluster_.net().SetLinkPolicy(kHomeNode, b_->id(), slow);
  std::thread writer([&] {
    (void)a_->Store<uint64_t>(kBase, 2);  // fails: A dies mid-transition
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(cluster_.CrashSite(a_->id()), Status::kOk);
  writer.join();
  cluster_.net().SetLinkPolicy(kHomeNode, b_->id(), SimNet::LinkPolicy{});

  ASSERT_GE(cluster_.stats().pending_grants_recorded, 1u);
  Result<uint64_t> first = cluster_.RecoverSite(a_->id());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, cluster_.stats().pending_grants_recorded);
  // A second crash/recovery cycle must not re-drain anything: the drain is
  // exactly-once per death.
  ASSERT_EQ(cluster_.CrashSite(a_->id()), Status::kOk);
  Result<uint64_t> second = cluster_.RecoverSite(a_->id());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 0u);
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 1u);  // B's committed value survived
  std::string diagnostic;
  EXPECT_EQ(cluster_.OracleCheck(&diagnostic), Status::kOk) << diagnostic;
}

TEST_F(DsmRecoveryTest, PartitionAbortsTransitionWithoutSplitBrain) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 3), Status::kOk);  // A owns page 0
  cluster_.net().Partition(kHomeNode, a_->id());
  // B cannot take ownership while the home cannot reach A: the grant must
  // abort (no second writer), not proceed on stale state.
  EXPECT_NE(b_->Store<uint64_t>(kBase, 4), Status::kOk);
  EXPECT_GE(cluster_.stats().transitions_aborted, 1u);
  EXPECT_EQ(cluster_.OwnerOf("shm", 0), a_->id());
  cluster_.net().HealAll();
  ASSERT_EQ(b_->Store<uint64_t>(kBase, 4), Status::kOk);
  EXPECT_EQ(cluster_.OwnerOf("shm", 0), b_->id());
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 4u);
  std::string diagnostic;
  EXPECT_EQ(cluster_.OracleCheck(&diagnostic), Status::kOk) << diagnostic;
}

// ---------------------------------------------------------------------------
// Multithreaded coherence hunters
// ---------------------------------------------------------------------------

TEST(DsmHunterTest, ConcurrentWritersOnAdjacentPages) {
  // One writer thread per site, each hammering its own page — all pages
  // adjacent, so every eviction/recall brushes against its neighbours'
  // transitions.  Each thread verifies its own read-back; the oracle audits
  // the directory afterwards.
  constexpr size_t kSmallPage = 512;
  DsmCluster cluster(kSmallPage);
  constexpr int kSites = 4;
  std::vector<DsmSite*> sites;
  for (int i = 0; i < kSites; ++i) {
    sites.push_back(cluster.AddSite(64));
  }
  const Vaddr base = 0x20000000;
  ASSERT_EQ(cluster.CreateSharedSegment("adj", kSites * kSmallPage), Status::kOk);
  for (DsmSite* site : sites) {
    ASSERT_TRUE(site->MapShared("adj", base, kSites * kSmallPage, Prot::kReadWrite).ok());
  }
  std::vector<std::string> failures(kSites);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSites; ++s) {
    threads.emplace_back([&, s] {
      Vaddr va = base + static_cast<size_t>(s) * kSmallPage;
      for (uint64_t i = 1; i <= 150; ++i) {
        if (sites[static_cast<size_t>(s)]->Store<uint64_t>(va, i) != Status::kOk) {
          failures[static_cast<size_t>(s)] = "store failed";
          return;
        }
        Result<uint64_t> got = sites[static_cast<size_t>(s)]->Load<uint64_t>(va);
        if (!got.ok() || *got != i) {
          failures[static_cast<size_t>(s)] =
              "read-back diverged at iteration " + std::to_string(i);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int s = 0; s < kSites; ++s) {
    EXPECT_TRUE(failures[static_cast<size_t>(s)].empty())
        << "site " << s << ": " << failures[static_cast<size_t>(s)];
  }
  std::string diagnostic;
  EXPECT_EQ(cluster.OracleCheck(&diagnostic), Status::kOk) << diagnostic;
}

TEST(DsmHunterTest, ReaderStormDuringRecalls) {
  // Two sites ping-pong ownership of one page (constant recalls) while a
  // third site's reader threads storm loads of it.  With a single
  // monotonically-increasing writer value, every reader must observe a
  // non-decreasing sequence — a stale regression means an invalidation or
  // recall was lost.
  constexpr size_t kSmallPage = 512;
  DsmCluster cluster(kSmallPage);
  DsmSite* w1 = cluster.AddSite(64);
  DsmSite* w2 = cluster.AddSite(64);
  DsmSite* r = cluster.AddSite(64);
  const Vaddr base = 0x30000000;
  ASSERT_EQ(cluster.CreateSharedSegment("storm", 2 * kSmallPage), Status::kOk);
  for (DsmSite* site : {w1, w2, r}) {
    ASSERT_TRUE(site->MapShared("storm", base, 2 * kSmallPage, Prot::kReadWrite).ok());
  }
  std::atomic<bool> stop{false};
  std::string writer_failure;
  std::thread writer([&] {
    for (uint64_t i = 1; i <= 120; ++i) {
      DsmSite* site = (i % 2 == 0) ? w1 : w2;
      if (site->Store<uint64_t>(base, i) != Status::kOk) {
        writer_failure = "ping-pong store failed at " + std::to_string(i);
        break;
      }
    }
    stop.store(true, std::memory_order_release);
  });
  constexpr int kReaders = 3;
  std::vector<std::string> reader_failures(kReaders);
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        Result<uint64_t> got = r->Load<uint64_t>(base);
        if (!got.ok()) {
          reader_failures[static_cast<size_t>(t)] = "load failed mid-storm";
          return;
        }
        if (*got < last) {
          reader_failures[static_cast<size_t>(t)] =
              "value regressed from " + std::to_string(last) + " to " +
              std::to_string(*got);
          return;
        }
        last = *got;
      }
    });
  }
  writer.join();
  for (std::thread& thread : readers) {
    thread.join();
  }
  EXPECT_TRUE(writer_failure.empty()) << writer_failure;
  for (int t = 0; t < kReaders; ++t) {
    EXPECT_TRUE(reader_failures[static_cast<size_t>(t)].empty())
        << "reader " << t << ": " << reader_failures[static_cast<size_t>(t)];
  }
  EXPECT_EQ(*r->Load<uint64_t>(base), 120u);
  std::string diagnostic;
  EXPECT_EQ(cluster.OracleCheck(&diagnostic), Status::kOk) << diagnostic;
}

// ---------------------------------------------------------------------------
// Seeded chaos: loss/partition matrices and crash storms, oracle-audited
// ---------------------------------------------------------------------------

TEST(DsmChaosTest, SeededDropAndPartitionMatrix) {
  // >= 8 seeded runs across a loss/partition matrix; each run must end with
  // every committed store intact and the WAL replay matching the live
  // directory bit-for-bit.
  const std::vector<std::vector<std::string>> spec_matrix = {
      {"netdeliver:prob:5:seed=2"},
      {"netdeliver:prob:15:seed=3"},
      {"netdeliver:prob:10:seed=4", "netpart:prob:1:seed=4"},
      {"netdeliver:prob:20:seed=5:latency=50"},
  };
  int runs = 0;
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    for (const auto& specs : spec_matrix) {
      DsmChaosConfig config;
      config.seed = seed;
      config.fault_specs = specs;
      config.sites = 3;
      config.threads_per_site = 2;
      config.steps_per_thread = 120;
      config.partition_storm = true;
      DsmChaosReport report = RunDsmChaos(config);
      ASSERT_TRUE(report.ok) << report.failure;
      EXPECT_GT(report.committed_stores, 0u);
      ++runs;
    }
  }
  EXPECT_GE(runs, 8);
}

TEST(DsmChaosTest, CrashStormWithLossAndRejoins) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    DsmChaosConfig config;
    config.seed = seed;
    config.fault_specs = {"netdeliver:prob:8:seed=" + std::to_string(seed),
                          "crashsiterecall:prob:4:seed=" + std::to_string(seed)};
    config.sites = 4;
    config.threads_per_site = 2;
    config.steps_per_thread = 100;
    config.crash_storm = true;
    config.partition_storm = true;
    DsmChaosReport report = RunDsmChaos(config);
    ASSERT_TRUE(report.ok) << report.failure;
    EXPECT_GT(report.committed_stores, 0u);
  }
}

// Crash-at-every-message-boundary sweep: run the same seeded workload with the
// fault site armed at hit 1, 2, 3, ... until a run completes without the plan
// firing — i.e. the boundary index walked past the last message of the run.
// Every intermediate run must satisfy the oracle.
void BoundarySweep(const std::string& site, int max_boundaries) {
  int n = 1;
  for (; n <= max_boundaries; ++n) {
    DsmChaosConfig config;
    config.seed = 42;
    config.fault_specs = {site + ":nth:" + std::to_string(n)};
    config.sites = 2;
    config.threads_per_site = 1;
    config.steps_per_thread = 10;
    config.pages = 4;
    DsmChaosReport report = RunDsmChaos(config);
    ASSERT_TRUE(report.ok) << site << " at boundary " << n << ": " << report.failure;
    if (report.faults_injected == 0) {
      break;  // the workload has fewer than n boundaries: sweep complete
    }
  }
  EXPECT_LE(n, max_boundaries) << site << " sweep did not converge";
}

TEST(DsmChaosTest, CrashSweepAtEveryRecallBoundaryMidRecall) {
  BoundarySweep("crashsiterecall", 200);
}

TEST(DsmChaosTest, CrashSweepAtEveryRecallBoundaryBeforeAck) {
  BoundarySweep("crashsiteack", 200);
}

TEST(DsmChaosTest, DropSweepAtEveryDeliveryBoundary) {
  BoundarySweep("netdeliver", 2000);
}

}  // namespace
}  // namespace gvm
