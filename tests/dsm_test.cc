// Distributed coherent virtual memory built on the GMI cache-control operations
// (section 3.3.3).  These tests drive mapped shared memory from multiple simulated
// sites and check single-writer/multiple-reader coherence.
#include <gtest/gtest.h>

#include <vector>

#include "src/dsm/dsm.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;
constexpr Vaddr kBase = 0x10000000;

class DsmTest : public ::testing::Test {
 protected:
  DsmTest() : cluster_(kPage) {
    a_ = cluster_.AddSite();
    b_ = cluster_.AddSite();
    EXPECT_EQ(cluster_.CreateSharedSegment("shm", 8 * kPage), Status::kOk);
    EXPECT_TRUE(a_->MapShared("shm", kBase, 8 * kPage, Prot::kReadWrite).ok());
    EXPECT_TRUE(b_->MapShared("shm", kBase, 8 * kPage, Prot::kReadWrite).ok());
  }

  DsmCluster cluster_;
  DsmSite* a_;
  DsmSite* b_;
};

TEST_F(DsmTest, WriteOnOneSiteVisibleOnAnother) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 0xABCDEF), Status::kOk);
  Result<uint64_t> got = b_->Load<uint64_t>(kBase);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 0xABCDEFu);
}

TEST_F(DsmTest, OwnershipMovesToTheWriter) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 1), Status::kOk);
  EXPECT_EQ(cluster_.OwnerOf("shm", 0), a_->id());
  // B writes the same page: ownership must transfer and A must be invalidated.
  ASSERT_EQ(b_->Store<uint64_t>(kBase, 2), Status::kOk);
  EXPECT_EQ(cluster_.OwnerOf("shm", 0), b_->id());
  EXPECT_GE(cluster_.stats().invalidations, 1u);
  // A sees B's write.
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 2u);
}

TEST_F(DsmTest, ReadersShareWithoutInvalidation) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 7), Status::kOk);
  uint64_t invalidations = cluster_.stats().invalidations;
  // Both sites read: read sharing, no invalidations.
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 7u);
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 7u);
  EXPECT_EQ(*b_->Load<uint64_t>(kBase + 8), 0u);
  EXPECT_EQ(cluster_.stats().invalidations, invalidations);
  auto readers = cluster_.ReadersOf("shm", 0);
  EXPECT_TRUE(readers.contains(b_->id()));
}

TEST_F(DsmTest, PingPongCounter) {
  // The classic DSM ping-pong: two sites increment a shared counter in turns.
  // Every increment after a remote one costs an ownership transfer.
  for (int round = 0; round < 10; ++round) {
    DsmSite* site = (round % 2 == 0) ? a_ : b_;
    Result<uint64_t> value = site->Load<uint64_t>(kBase);
    ASSERT_TRUE(value.ok());
    ASSERT_EQ(site->Store<uint64_t>(kBase, *value + 1), Status::kOk);
  }
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 10u);
  EXPECT_GE(cluster_.stats().write_grants, 10u);
  EXPECT_GE(cluster_.stats().network_messages, 20u);
}

TEST_F(DsmTest, FalseSharingVsDisjointPages) {
  // Disjoint pages: each site owns its page; after warm-up, no more protocol
  // traffic for local writes.
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 1), Status::kOk);
  ASSERT_EQ(b_->Store<uint64_t>(kBase + kPage, 1), Status::kOk);
  uint64_t messages_after_warmup = cluster_.stats().network_messages;
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(a_->Store<uint64_t>(kBase, i), Status::kOk);
    ASSERT_EQ(b_->Store<uint64_t>(kBase + kPage, i), Status::kOk);
  }
  EXPECT_EQ(cluster_.stats().network_messages, messages_after_warmup);

  // Same page ("false sharing"): every alternation costs messages.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(a_->Store<uint64_t>(kBase + 2 * kPage, i), Status::kOk);
    ASSERT_EQ(b_->Store<uint64_t>(kBase + 2 * kPage + 8, i), Status::kOk);
  }
  EXPECT_GT(cluster_.stats().network_messages, messages_after_warmup);
  // Coherence held anyway: the last writer's value wins on both.
  EXPECT_EQ(*a_->Load<uint64_t>(kBase + 2 * kPage + 8), 9u);
}

TEST_F(DsmTest, ThreeSites) {
  DsmSite* c = cluster_.AddSite();
  ASSERT_TRUE(c->MapShared("shm", kBase, 8 * kPage, Prot::kReadWrite).ok());
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 0x111), Status::kOk);
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 0x111u);
  EXPECT_EQ(*c->Load<uint64_t>(kBase), 0x111u);
  // C writes: both A and B get invalidated.
  uint64_t invalidations = cluster_.stats().invalidations;
  ASSERT_EQ(c->Store<uint64_t>(kBase, 0x333), Status::kOk);
  EXPECT_GE(cluster_.stats().invalidations, invalidations + 2);
  EXPECT_EQ(*a_->Load<uint64_t>(kBase), 0x333u);
  EXPECT_EQ(*b_->Load<uint64_t>(kBase), 0x333u);
}

TEST_F(DsmTest, SequentialConsistencyStressAlternating) {
  // A long alternating schedule over several pages; a per-page "last write wins"
  // model checks every read on both sites.
  std::vector<uint64_t> model(4, 0);
  for (int step = 0; step < 200; ++step) {
    DsmSite* site = (step % 3 == 0) ? b_ : a_;
    size_t page = step % 4;
    Vaddr va = kBase + page * kPage;
    if (step % 2 == 0) {
      uint64_t value = 0x5000 + step;
      ASSERT_EQ(site->Store<uint64_t>(va, value), Status::kOk);
      model[page] = value;
    } else {
      Result<uint64_t> got = site->Load<uint64_t>(va);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, model[page]) << "step " << step;
    }
  }
  EXPECT_EQ(a_->vm().CheckInvariants(), Status::kOk);
  EXPECT_EQ(b_->vm().CheckInvariants(), Status::kOk);
}

}  // namespace
}  // namespace gvm
