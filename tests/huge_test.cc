// Transparent huge pages (DESIGN.md §16): the second MMU granule and its
// promotion/demotion life cycle.
//
// Layer by layer: the inner MMUs' huge contract (per-page Lookup view, shared
// referenced/dirty bits with demotion fan-out, auto-demote on base-granule
// ops, the UnmapCollect huge report), the TLB's mixed-size caching (wide
// entries serving whole spans, every demotion path killing the wide entry),
// the PagedVm policy (fault-time promotion, split-on-COW demotion that still
// copies exactly one base page, pageout demotion before harvest), and — the
// part that earns its keep — a seeded 64-thread mixed-size stale-translation
// hunter racing promotion, split-on-COW demotion and condemned-AS teardown.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/hal/cpu.h"
#include "src/hal/hash_mmu.h"
#include "src/hal/phys_memory.h"
#include "src/hal/soft_mmu.h"
#include "src/hal/tlb.h"
#include "src/pvm/paged_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;
constexpr size_t kRatio = 4;  // test granule: 4 base pages per huge span

Vaddr PageVa(uint64_t vpn) { return vpn * kPage; }

// ---------------------------------------------------------------------------
// Inner-MMU huge contract, over both implementations.
// ---------------------------------------------------------------------------

struct MmuFactory {
  const char* name;
  std::function<std::unique_ptr<Mmu>(size_t huge_pages)> make;
};

class HugeMmuTest : public ::testing::TestWithParam<MmuFactory> {
 protected:
  std::unique_ptr<Mmu> MakeMmu(size_t huge_pages = kRatio) {
    return GetParam().make(huge_pages);
  }
};

TEST_P(HugeMmuTest, DisabledGranuleReportsUnsupported) {
  auto mmu = MakeMmu(/*huge_pages=*/1);  // <= 1 disables the second granule
  EXPECT_EQ(mmu->huge_page_size(), 0u);
  AsId as = *mmu->CreateAddressSpace();
  EXPECT_EQ(mmu->MapHuge(as, 0, 0, Prot::kRead), Status::kUnsupported);
  EXPECT_EQ(mmu->DemoteHuge(as, 0), Status::kNotFound);
}

TEST_P(HugeMmuTest, MapHugeRejectsUnalignedVa) {
  auto mmu = MakeMmu();
  ASSERT_EQ(mmu->huge_page_size(), kRatio * kPage);
  AsId as = *mmu->CreateAddressSpace();
  EXPECT_EQ(mmu->MapHuge(as, PageVa(1), 0, Prot::kRead), Status::kInvalidArgument);
  EXPECT_EQ(mmu->MapHuge(as, PageVa(kRatio), 8, Prot::kRead), Status::kOk);
}

TEST_P(HugeMmuTest, LookupShowsPerBasePageViewWithoutDemoting) {
  auto mmu = MakeMmu();
  AsId as = *mmu->CreateAddressSpace();
  ASSERT_EQ(mmu->MapHuge(as, 0, 16, Prot::kReadWrite), Status::kOk);
  for (size_t i = 0; i < kRatio; ++i) {
    Result<MmuEntry> entry = mmu->Lookup(as, PageVa(i));
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->frame, static_cast<FrameIndex>(16 + i));
    EXPECT_EQ(entry->prot, Prot::kReadWrite);
    EXPECT_TRUE(entry->huge);
  }
  // The audit view must not have split the span: a translation through any
  // page still resolves (and the entry still reports huge).
  EXPECT_EQ(*mmu->Translate(as, PageVa(2), Access::kRead), 18u);
  EXPECT_TRUE(mmu->Lookup(as, PageVa(0))->huge);
}

TEST_P(HugeMmuTest, SpanSharesOneReferencedAndOneDirtyBit) {
  auto mmu = MakeMmu();
  AsId as = *mmu->CreateAddressSpace();
  ASSERT_EQ(mmu->MapHuge(as, 0, 4, Prot::kReadWrite), Status::kOk);
  // A write through page 3 dirties the whole span: page 0's view reports it.
  ASSERT_TRUE(mmu->Translate(as, PageVa(3), Access::kWrite).ok());
  EXPECT_TRUE(mmu->Lookup(as, PageVa(0))->dirty);
  EXPECT_TRUE(mmu->Lookup(as, PageVa(2))->referenced);
  // The clock's clear through any page clears the span once.
  EXPECT_TRUE(*mmu->TestAndClearReferenced(as, PageVa(1)));
  EXPECT_FALSE(*mmu->TestAndClearReferenced(as, PageVa(3)));
}

TEST_P(HugeMmuTest, DemoteFansSharedBitsOutToEveryBasePte) {
  auto mmu = MakeMmu();
  AsId as = *mmu->CreateAddressSpace();
  ASSERT_EQ(mmu->MapHuge(as, 0, 8, Prot::kReadWrite), Status::kOk);
  ASSERT_TRUE(mmu->Translate(as, PageVa(1), Access::kWrite).ok());

  ASSERT_EQ(mmu->DemoteHuge(as, PageVa(2)), Status::kOk);  // any page of the span
  for (size_t i = 0; i < kRatio; ++i) {
    Result<MmuEntry> entry = mmu->Lookup(as, PageVa(i));
    ASSERT_TRUE(entry.ok());
    EXPECT_FALSE(entry->huge);
    EXPECT_EQ(entry->frame, static_cast<FrameIndex>(8 + i));
    EXPECT_EQ(entry->prot, Prot::kReadWrite);
    // The write through the wide entry could have landed in any base page of
    // the span: after the split every one of them must report dirty.
    EXPECT_TRUE(entry->dirty);
    EXPECT_TRUE(entry->referenced);
  }
  EXPECT_EQ(mmu->DemoteHuge(as, PageVa(0)), Status::kNotFound);  // already split
}

TEST_P(HugeMmuTest, BaseGranuleOpsInsideSpanAutoDemote) {
  auto mmu = MakeMmu();
  AsId as = *mmu->CreateAddressSpace();
  ASSERT_EQ(mmu->MapHuge(as, 0, 12, Prot::kReadWrite), Status::kOk);
  // Unmapping one base page splits the span and removes just that page.
  ASSERT_EQ(mmu->Unmap(as, PageVa(1)), Status::kOk);
  EXPECT_EQ(mmu->Lookup(as, PageVa(1)).status(), Status::kNotFound);
  for (size_t i : {size_t{0}, size_t{2}, size_t{3}}) {
    Result<MmuEntry> entry = mmu->Lookup(as, PageVa(i));
    ASSERT_TRUE(entry.ok());
    EXPECT_FALSE(entry->huge);
    EXPECT_EQ(entry->frame, static_cast<FrameIndex>(12 + i));
  }
  // A protection change on one page splits too, leaving the others untouched.
  ASSERT_EQ(mmu->MapHuge(as, PageVa(kRatio), 20, Prot::kReadWrite), Status::kOk);
  ASSERT_EQ(mmu->Protect(as, PageVa(kRatio + 1), Prot::kRead), Status::kOk);
  EXPECT_EQ(mmu->Lookup(as, PageVa(kRatio + 1))->prot, Prot::kRead);
  EXPECT_EQ(mmu->Lookup(as, PageVa(kRatio))->prot, Prot::kReadWrite);
  EXPECT_FALSE(mmu->Lookup(as, PageVa(kRatio))->huge);
}

TEST_P(HugeMmuTest, UnmapCollectReportsTheSplitAndTheFannedDirt) {
  auto mmu = MakeMmu();
  AsId as = *mmu->CreateAddressSpace();
  ASSERT_EQ(mmu->MapHuge(as, 0, 4, Prot::kReadWrite), Status::kOk);
  ASSERT_TRUE(mmu->Translate(as, PageVa(3), Access::kWrite).ok());

  // Collecting page 0 splits the span; the removed entry must carry both the
  // fanned-out dirty bit and the huge flag (TlbMmu widens its invalidation
  // exactly when that flag is set).
  Result<MmuEntry> removed = mmu->UnmapCollect(as, PageVa(0));
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed->huge);
  EXPECT_TRUE(removed->dirty);
  EXPECT_EQ(removed->frame, 4u);
  // The rest of the span survived as base pages; a second collect is plain.
  Result<MmuEntry> second = mmu->UnmapCollect(as, PageVa(1));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->huge);
  EXPECT_TRUE(second->dirty);  // fan-out happened at the split
}

TEST_P(HugeMmuTest, SameRunRemapKeepsBitsDifferentRunClearsThem) {
  auto mmu = MakeMmu();
  AsId as = *mmu->CreateAddressSpace();
  ASSERT_EQ(mmu->MapHuge(as, 0, 4, Prot::kReadWrite), Status::kOk);
  ASSERT_TRUE(mmu->Translate(as, PageVa(0), Access::kWrite).ok());
  // Same frame run: a protection change in place, bits survive.
  ASSERT_EQ(mmu->MapHuge(as, 0, 4, Prot::kRead), Status::kOk);
  EXPECT_TRUE(mmu->Lookup(as, PageVa(0))->dirty);
  EXPECT_EQ(mmu->Lookup(as, PageVa(0))->prot, Prot::kRead);
  // Different run: fresh translation, bits start clear.
  ASSERT_EQ(mmu->MapHuge(as, 0, 8, Prot::kReadWrite), Status::kOk);
  EXPECT_FALSE(mmu->Lookup(as, PageVa(0))->dirty);
}

INSTANTIATE_TEST_SUITE_P(
    Mmus, HugeMmuTest,
    ::testing::Values(
        MmuFactory{"soft",
                   [](size_t huge_pages) -> std::unique_ptr<Mmu> {
                     return std::make_unique<SoftMmu>(kPage, 10, huge_pages);
                   }},
        MmuFactory{"hash",
                   [](size_t huge_pages) -> std::unique_ptr<Mmu> {
                     return std::make_unique<HashMmu>(kPage, huge_pages);
                   }}),
    [](const ::testing::TestParamInfo<MmuFactory>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// TlbMmu: wide entries and the demotion shootdown rules.
// ---------------------------------------------------------------------------

TEST(TlbHugeTest, OneWideEntryServesTheWholeSpan) {
  SoftMmu inner(kPage, 10, kRatio);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.MapHuge(as, 0, 4, Prot::kRead), Status::kOk);

  // First touch misses and fills ONE wide entry; the remaining pages of the
  // span hit through it without ever walking the inner tables again.
  EXPECT_EQ(*tlb.Translate(as, PageVa(0), Access::kRead), 4u);
  const uint64_t walks = inner.stats().translations;
  for (size_t i = 0; i < kRatio; ++i) {
    EXPECT_EQ(*tlb.Translate(as, PageVa(i), Access::kRead),
              static_cast<FrameIndex>(4 + i));
  }
  EXPECT_EQ(inner.stats().translations, walks);
  TlbMmu::TlbStats stats = tlb.tlb_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.huge_hits, kRatio);
  EXPECT_EQ(stats.hits, stats.huge_hits);  // breakdown: every hit was wide
}

TEST(TlbHugeTest, DemotionKillsTheWideEntryImmediately) {
  SoftMmu inner(kPage, 10, kRatio);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.MapHuge(as, 0, 4, Prot::kRead), Status::kOk);
  ASSERT_TRUE(tlb.Translate(as, PageVa(1), Access::kRead).ok());  // cache wide

  ASSERT_EQ(tlb.DemoteHuge(as, PageVa(1)), Status::kOk);
  // After the split the inner MMU no longer reports huge for the span, so a
  // surviving wide entry could NEVER be invalidated by later base-granule
  // mutations — it must already be dead.  Unmap page 1 at base granule and
  // prove the old wide translation cannot resurrect it.
  ASSERT_EQ(tlb.Unmap(as, PageVa(1)), Status::kOk);
  EXPECT_EQ(tlb.Translate(as, PageVa(1), Access::kRead).status(),
            Status::kSegmentationFault);
  EXPECT_EQ(*tlb.Translate(as, PageVa(0), Access::kRead), 4u);  // rest intact
}

TEST(TlbHugeTest, BaseMapInsideSpanNeverLeavesAStaleWideEntry) {
  SoftMmu inner(kPage, 10, kRatio);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.MapHuge(as, 0, 4, Prot::kRead), Status::kOk);
  ASSERT_TRUE(tlb.Translate(as, PageVa(2), Access::kRead).ok());  // cache wide

  // Remapping one page at base granule auto-splits the span inside the inner
  // MMU; the cached wide entry must die with it even though the new mapping
  // itself is a fresh fill (normally a no-shootdown case).
  ASSERT_EQ(tlb.Map(as, PageVa(2), 30, Prot::kRead), Status::kOk);
  EXPECT_EQ(*tlb.Translate(as, PageVa(2), Access::kRead), 30u);
  EXPECT_EQ(*tlb.Translate(as, PageVa(3), Access::kRead), 7u);
}

TEST(TlbHugeTest, ProtectionSplitShootsTheWideEntry) {
  SoftMmu inner(kPage, 10, kRatio);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.MapHuge(as, 0, 4, Prot::kReadWrite), Status::kOk);
  ASSERT_TRUE(tlb.Translate(as, PageVa(0), Access::kWrite).ok());  // cache wide

  // The COW shape: write-protecting one page splits the span.  A stale wide
  // entry would keep serving writes to the whole span — including the page
  // that was just downgraded.
  ASSERT_EQ(tlb.Protect(as, PageVa(1), Prot::kRead), Status::kOk);
  EXPECT_EQ(tlb.Translate(as, PageVa(1), Access::kWrite).status(),
            Status::kProtectionFault);
  EXPECT_EQ(*tlb.Translate(as, PageVa(0), Access::kWrite), 4u);  // still writable
}

TEST(TlbHugeTest, AddressSpaceTeardownRetiresWideEntries) {
  SoftMmu inner(kPage, 10, kRatio);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.MapHuge(as, 0, 4, Prot::kRead), Status::kOk);
  ASSERT_TRUE(tlb.Translate(as, PageVa(1), Access::kRead).ok());  // cache wide
  ASSERT_EQ(tlb.DestroyAddressSpace(as), Status::kOk);
  EXPECT_EQ(tlb.Translate(as, PageVa(1), Access::kRead).status(),
            Status::kSegmentationFault);
}

// ---------------------------------------------------------------------------
// PagedVm: fault-time promotion, split-on-COW demotion, pageout demotion.
// ---------------------------------------------------------------------------

struct PvmHugeWorld {
  PhysicalMemory memory;
  SoftMmu mmu;
  PagedVm vm;
  TestSwapRegistry registry;
  Context* ctx;

  explicit PvmHugeWorld(size_t frames, PagedVm::Options options = MakeOptions())
      : memory(frames, kPage), mmu(kPage, 10, kRatio), vm(memory, mmu, options),
        registry(kPage) {
    vm.BindSegmentRegistry(&registry);
    ctx = *vm.ContextCreate();
  }

  static PagedVm::Options MakeOptions() {
    PagedVm::Options options;
    options.transparent_huge = true;
    return options;
  }
};

constexpr Vaddr kBase = 0x100000;  // huge-aligned for any small test ratio

TEST(PvmHugeTest, SequentialTouchPromotesEveryFullSpan) {
  PvmHugeWorld world(64);
  Cache* cache = *world.vm.CacheCreate(nullptr, "zero");
  const size_t pages = 4 * kRatio;
  Region* region = *world.vm.RegionCreate(*world.ctx, kBase, pages * kPage,
                                          Prot::kReadWrite, *cache, 0);
  AsId as = world.ctx->address_space();
  for (size_t p = 0; p < pages; ++p) {
    uint64_t value = 0xAB00 + p;
    ASSERT_EQ(world.vm.cpu().Write(as, kBase + p * kPage, &value, sizeof(value)),
              Status::kOk);
  }
  EXPECT_EQ(world.vm.detail_stats().promotions, 4u);
  // The MMU really holds wide translations with contiguous frame runs.
  for (size_t p = 0; p < pages; ++p) {
    Result<MmuEntry> entry = world.mmu.Lookup(as, kBase + p * kPage);
    ASSERT_TRUE(entry.ok());
    EXPECT_TRUE(entry->huge) << "page " << p;
  }
  // Data survived any promotion-time frame migration.
  for (size_t p = 0; p < pages; ++p) {
    uint64_t got = 0;
    ASSERT_EQ(world.vm.cpu().Read(as, kBase + p * kPage, &got, sizeof(got)),
              Status::kOk);
    EXPECT_EQ(got, 0xAB00 + p) << "page " << p;
  }
  EXPECT_EQ(world.vm.CheckInvariants(), Status::kOk);
  (void)region->Destroy();
  // Teardown demotes the spans before unmapping their base pages.
  EXPECT_EQ(world.vm.detail_stats().demotions, 4u);
  (void)cache->Destroy();
  EXPECT_EQ(world.vm.CheckInvariants(), Status::kOk);
}

TEST(PvmHugeTest, PartialSpanNeverPromotes) {
  PvmHugeWorld world(64);
  Cache* cache = *world.vm.CacheCreate(nullptr, "partial");
  Region* region = *world.vm.RegionCreate(*world.ctx, kBase, 2 * kRatio * kPage,
                                          Prot::kReadWrite, *cache, 0);
  AsId as = world.ctx->address_space();
  // Touch all but one page of each span.
  for (size_t p = 0; p < 2 * kRatio; ++p) {
    if (p % kRatio == kRatio - 1) {
      continue;
    }
    uint64_t value = p;
    ASSERT_EQ(world.vm.cpu().Write(as, kBase + p * kPage, &value, sizeof(value)),
              Status::kOk);
  }
  EXPECT_EQ(world.vm.detail_stats().promotions, 0u);
  (void)region->Destroy();
  (void)cache->Destroy();
}

TEST(PvmHugeTest, CowWriteDemotesTheSpanButCopiesExactlyOneBasePage) {
  PvmHugeWorld world(64);
  Cache* src = *world.vm.CacheCreate(nullptr, "src");
  const size_t pages = kRatio;
  Region* region = *world.vm.RegionCreate(*world.ctx, kBase, pages * kPage,
                                          Prot::kReadWrite, *src, 0);
  AsId as = world.ctx->address_space();
  for (size_t p = 0; p < pages; ++p) {
    uint64_t value = 0xC0DE + p;
    ASSERT_EQ(world.vm.cpu().Write(as, kBase + p * kPage, &value, sizeof(value)),
              Status::kOk);
  }
  ASSERT_EQ(world.vm.detail_stats().promotions, 1u);

  // Deferred copy write-protects the source: split-on-COW demotion.
  Cache* copy = *world.vm.CacheCreate(nullptr, "copy");
  ASSERT_EQ(src->CopyTo(*copy, 0, 0, pages * kPage, CopyPolicy::kHistory),
            Status::kOk);
  EXPECT_GE(world.vm.detail_stats().demote_cow, 1u);
  EXPECT_FALSE(world.mmu.Lookup(as, kBase)->huge);

  // One write to one page of the now-base-granule span...
  const uint64_t history_before = world.vm.detail_stats().history_pushes;
  uint64_t value = 0xFEED;
  ASSERT_EQ(world.vm.cpu().Write(as, kBase + kPage, &value, sizeof(value)),
            Status::kOk);
  // ...pushes exactly that one base page into the history object, not the span.
  EXPECT_EQ(world.vm.detail_stats().history_pushes, history_before + 1);

  // The copy still reads the old bytes everywhere; the source sees the write.
  Region* copy_region = *world.vm.RegionCreate(*world.ctx, kBase + 0x100000,
                                               pages * kPage, Prot::kRead, *copy, 0);
  for (size_t p = 0; p < pages; ++p) {
    uint64_t got = 0;
    ASSERT_EQ(world.vm.cpu().Read(as, kBase + 0x100000 + p * kPage, &got, sizeof(got)),
              Status::kOk);
    EXPECT_EQ(got, 0xC0DE + p) << "copy page " << p;
  }
  uint64_t got = 0;
  ASSERT_EQ(world.vm.cpu().Read(as, kBase + kPage, &got, sizeof(got)), Status::kOk);
  EXPECT_EQ(got, 0xFEED);
  EXPECT_EQ(world.vm.CheckInvariants(), Status::kOk);
  (void)copy_region->Destroy();
  (void)region->Destroy();
  (void)copy->Destroy();
  (void)src->Destroy();
}

TEST(PvmHugeTest, PageoutDemotesTheSpanBeforeHarvestingItsPages) {
  PagedVm::Options options = PvmHugeWorld::MakeOptions();
  options.low_water_frames = 4;
  options.high_water_frames = 8;
  PvmHugeWorld world(24, options);
  Cache* cache = *world.vm.CacheCreate(nullptr, "evict");
  const size_t pages = 4 * kRatio;  // 16 committed pages over 24 frames
  Region* region = *world.vm.RegionCreate(*world.ctx, kBase, pages * kPage,
                                          Prot::kReadWrite, *cache, 0);
  AsId as = world.ctx->address_space();
  for (size_t p = 0; p < pages; ++p) {
    uint64_t value = 0x9000 + p;
    ASSERT_EQ(world.vm.cpu().Write(as, kBase + p * kPage, &value, sizeof(value)),
              Status::kOk);
  }
  ASSERT_GT(world.vm.detail_stats().promotions, 0u);

  // A second region's faults push the pool below the low-water mark; reclaim
  // must demote promoted spans before unmapping their base pages.
  Cache* filler = *world.vm.CacheCreate(nullptr, "filler");
  Region* filler_region = *world.vm.RegionCreate(*world.ctx, kBase + 0x400000,
                                                 12 * kPage, Prot::kReadWrite,
                                                 *filler, 0);
  for (size_t p = 0; p < 12; ++p) {
    uint64_t value = p;
    ASSERT_EQ(world.vm.cpu().Write(as, kBase + 0x400000 + p * kPage, &value,
                                   sizeof(value)),
              Status::kOk);
  }
  EXPECT_GT(world.vm.detail_stats().demote_pageout, 0u);

  // Every acknowledged byte survives eviction and pull-back.
  for (size_t p = 0; p < pages; ++p) {
    uint64_t got = 0;
    ASSERT_EQ(world.vm.cpu().Read(as, kBase + p * kPage, &got, sizeof(got)),
              Status::kOk);
    EXPECT_EQ(got, 0x9000 + p) << "page " << p;
  }
  EXPECT_EQ(world.vm.CheckInvariants(), Status::kOk);
  (void)filler_region->Destroy();
  (void)region->Destroy();
  (void)filler->Destroy();
  (void)cache->Destroy();
}

TEST(PvmHugeTest, OptOutWorldNeverPromotes) {
  PagedVm::Options options;  // transparent_huge defaults to false
  PhysicalMemory memory(64, kPage);
  SoftMmu mmu(kPage, 10, kRatio);
  PagedVm vm(memory, mmu, options);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);
  Context* ctx = *vm.ContextCreate();
  Cache* cache = *vm.CacheCreate(nullptr, "off");
  Region* region =
      *vm.RegionCreate(*ctx, kBase, 2 * kRatio * kPage, Prot::kReadWrite, *cache, 0);
  AsId as = ctx->address_space();
  for (size_t p = 0; p < 2 * kRatio; ++p) {
    uint64_t value = p;
    ASSERT_EQ(vm.cpu().Write(as, kBase + p * kPage, &value, sizeof(value)), Status::kOk);
  }
  EXPECT_EQ(vm.detail_stats().promotions, 0u);
  EXPECT_FALSE(mmu.Lookup(as, kBase)->huge);
  (void)region->Destroy();
  (void)cache->Destroy();
}

// ---------------------------------------------------------------------------
// The 64-thread mixed-size stale-translation hunter.
//
// Spans of kHunterRatio base pages double-buffered over two contiguous frame
// runs each.  The mutator races three span life-cycle shapes against 63
// readers: promotion (MapHuge over the live base mappings), split-on-COW
// demotion (write-protect of one page inside the span), and migration /
// condemned-AS teardown (frames retired and poisoned after the shootdown
// commits).  A reader observing poison through a successful access means a
// wide or base translation outlived its shootdown.  Run under TSan in CI.
// ---------------------------------------------------------------------------

uint64_t LoadFrameWord(const std::byte* p) {
  uint64_t v;
  __atomic_load(reinterpret_cast<const uint64_t*>(p), &v, __ATOMIC_RELAXED);
  return v;
}
void StoreFrameWord(std::byte* p, uint64_t v) {
  __atomic_store(reinterpret_cast<uint64_t*>(p), &v, __ATOMIC_RELAXED);
}

TEST(HugeStaleHunterTest, MixedSizeShootdownsNeverLeakStaleHitsAt64Threads) {
  constexpr size_t kHunterRatio = 8;  // span size in base pages
  constexpr size_t kSpans = 4;
  constexpr size_t kPages = kSpans * kHunterRatio;
  constexpr int kReaders = 63;  // + the mutator = 64 threads
  constexpr int kMutations = 140;
  constexpr uint64_t kGood = 0x600D600D600D600Dull;
  constexpr uint64_t kPoison = 0xDEADDEADDEADDEADull;

  PhysicalMemory memory(2 * kPages + 4, kPage);
  SoftMmu inner(kPage, 10, kHunterRatio);
  TlbMmu tlb(inner, /*enabled=*/true, TlbMmu::FenceMode::kFenced);
  std::atomic<AsId> current_as{*tlb.CreateAddressSpace()};

  // Two contiguous frame runs per span; `run[s]` selects the live one.  The
  // whole live run carries kGood; a retired run is poisoned only after the
  // shootdown that unmapped it has committed.
  int run[kSpans];
  bool promoted[kSpans];
  auto run_frame = [](size_t span, int buddy) {
    return static_cast<FrameIndex>((span * 2 + static_cast<size_t>(buddy)) *
                                   kHunterRatio);
  };
  AsId as0 = current_as.load();
  for (size_t s = 0; s < kSpans; ++s) {
    run[s] = 0;
    promoted[s] = false;
    for (size_t i = 0; i < kHunterRatio; ++i) {
      StoreFrameWord(memory.FrameData(run_frame(s, 0) + i), kGood);
      ASSERT_EQ(tlb.Map(as0, PageVa(s * kHunterRatio + i), run_frame(s, 0) + i,
                        Prot::kReadWrite),
                Status::kOk);
    }
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> stale_observations{0};
  std::atomic<uint64_t> good_hits{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(7000 + r);  // seeded: reproducible interleavings
      while (!done.load(std::memory_order_relaxed)) {
        const AsId as = current_as.load(std::memory_order_acquire);
        const size_t p = rng() % kPages;
        uint64_t value = 0;
        const auto body = [&](FrameIndex frame) {
          value = LoadFrameWord(memory.FrameData(frame));
        };
        Result<FrameIndex> f =
            tlb.TranslateAndAccess(as, PageVa(p), Access::kRead, FrameBodyRef(body));
        // Faults are expected around unmaps, splits and AS swaps; observing
        // poison through a *successful* access never is.
        if (f.ok()) {
          if (value == kPoison) {
            stale_observations.fetch_add(1, std::memory_order_relaxed);
          } else if (value == kGood) {
            good_hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::mt19937_64 rng(99);
  for (int i = 0; i < kMutations; ++i) {
    AsId as = current_as.load();
    const size_t s = rng() % kSpans;
    const Vaddr span_va = PageVa(s * kHunterRatio);
    if (i % 10 == 9) {
      // Condemned teardown over a mix of promoted and base-mapped spans.
      {
        TlbGatherScope gather(&tlb);
        tlb.GatherCondemnAddressSpace(as);
        for (size_t p = 0; p < kPages; ++p) {
          (void)tlb.Unmap(as, PageVa(p));  // auto-demotes spans as it goes
        }
        ASSERT_EQ(tlb.DestroyAddressSpace(as), Status::kOk);
      }
      // Commit done: poison every live frame, rebuild base-mapped on buddies.
      AsId fresh = *tlb.CreateAddressSpace();
      for (size_t t = 0; t < kSpans; ++t) {
        for (size_t i2 = 0; i2 < kHunterRatio; ++i2) {
          StoreFrameWord(memory.FrameData(run_frame(t, run[t]) + i2), kPoison);
        }
        run[t] ^= 1;
        promoted[t] = false;
        for (size_t i2 = 0; i2 < kHunterRatio; ++i2) {
          StoreFrameWord(memory.FrameData(run_frame(t, run[t]) + i2), kGood);
          ASSERT_EQ(tlb.Map(fresh, PageVa(t * kHunterRatio + i2),
                            run_frame(t, run[t]) + i2, Prot::kReadWrite),
                    Status::kOk);
        }
      }
      current_as.store(fresh, std::memory_order_release);
    } else if (!promoted[s]) {
      // Promotion: collapse the live base run into one wide translation.
      ASSERT_EQ(tlb.MapHuge(as, span_va, run_frame(s, run[s]), Prot::kReadWrite),
                Status::kOk);
      promoted[s] = true;
    } else if (rng() % 2 == 0) {
      // Split-on-COW shape: write-protect one page inside the promoted span.
      // The span splits; the wide entry must die before Protect returns.
      const size_t inner_page = rng() % kHunterRatio;
      ASSERT_EQ(tlb.Protect(as, span_va + inner_page * kPage, Prot::kRead),
                Status::kOk);
      promoted[s] = false;
      // Restore writability (plain upgrades, no shootdown needed).
      ASSERT_EQ(tlb.Protect(as, span_va + inner_page * kPage, Prot::kReadWrite),
                Status::kOk);
    } else {
      // Migration: retire the promoted span wholesale onto its buddy run.
      // UnmapRange auto-demotes; after it returns no translation — wide or
      // base — may touch the old run.
      ASSERT_EQ(tlb.UnmapRange(as, span_va, kHunterRatio), Status::kOk);
      for (size_t i2 = 0; i2 < kHunterRatio; ++i2) {
        StoreFrameWord(memory.FrameData(run_frame(s, run[s]) + i2), kPoison);
      }
      run[s] ^= 1;
      promoted[s] = false;
      for (size_t i2 = 0; i2 < kHunterRatio; ++i2) {
        StoreFrameWord(memory.FrameData(run_frame(s, run[s]) + i2), kGood);
        ASSERT_EQ(tlb.Map(as, PageVa(s * kHunterRatio + i2),
                          run_frame(s, run[s]) + i2, Prot::kReadWrite),
                  Status::kOk);
      }
    }
  }
  // End on an all-promoted world, then keep it live until the readers have
  // demonstrably run AND demonstrably hit through a wide entry — on a loaded
  // host the readers can starve through the whole mutation window, so the
  // anti-vacuity evidence must be collectable after it.
  {
    AsId as = current_as.load();
    for (size_t s = 0; s < kSpans; ++s) {
      if (!promoted[s]) {
        ASSERT_EQ(tlb.MapHuge(as, PageVa(s * kHunterRatio),
                              run_frame(s, run[s]), Prot::kReadWrite),
                  Status::kOk);
        promoted[s] = true;
      }
    }
  }
  for (int spin = 0; spin < 2000000 &&
                     (good_hits.load() == 0 || tlb.tlb_stats().huge_hits == 0);
       ++spin) {
    std::this_thread::yield();
  }
  done = true;
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(stale_observations.load(), 0u);
  EXPECT_GT(good_hits.load(), 0u);
  // Wide entries must actually have been exercised for the hunt to mean much.
  EXPECT_GT(tlb.tlb_stats().huge_hits, 0u);
}

}  // namespace
}  // namespace gvm
