// GMI conformance suite: the behavioural contract of the Generic Memory
// management Interface (Tables 1, 2, 4), run against every implementation —
// PVM, the Mach-style shadow baseline, and the minimal real-time MM.  This is the
// "replaceable unit" property (section 5.2) as a parameterized test battery:
// clients written against the GMI must observe identical semantics on all three.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/hal/soft_mmu.h"
#include "src/minimal/minimal_mm.h"
#include "src/pvm/paged_vm.h"
#include "src/shadow/shadow_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

enum class Impl { kPvm, kShadow, kMinimal };

struct ConformanceWorld {
  std::unique_ptr<PhysicalMemory> memory;
  std::unique_ptr<SoftMmu> mmu;
  std::unique_ptr<MemoryManager> mm;
  std::unique_ptr<TestSwapRegistry> registry;
};

ConformanceWorld MakeWorld(Impl impl) {
  ConformanceWorld world;
  world.memory = std::make_unique<PhysicalMemory>(512, kPage);
  world.mmu = std::make_unique<SoftMmu>(kPage);
  switch (impl) {
    case Impl::kPvm:
      world.mm = std::make_unique<PagedVm>(*world.memory, *world.mmu);
      break;
    case Impl::kShadow:
      world.mm = std::make_unique<ShadowVm>(*world.memory, *world.mmu);
      break;
    case Impl::kMinimal:
      world.mm = std::make_unique<MinimalVm>(*world.memory, *world.mmu);
      break;
  }
  world.registry = std::make_unique<TestSwapRegistry>(kPage);
  world.mm->BindSegmentRegistry(world.registry.get());
  return world;
}

class GmiConformanceTest : public ::testing::TestWithParam<Impl> {
 protected:
  GmiConformanceTest() : world_(MakeWorld(GetParam())) {
    context_ = *world_.mm->ContextCreate();
  }

  MemoryManager& mm() { return *world_.mm; }
  Cpu& cpu() { return world_.mm->cpu(); }

  ConformanceWorld world_;
  Context* context_;
};

// ---- Table 2: contexts and regions ----

TEST_P(GmiConformanceTest, ContextCreateGivesEmptyAddressSpace) {
  Context* fresh = *mm().ContextCreate();
  EXPECT_TRUE(fresh->GetRegionList().empty());
  char c;
  EXPECT_EQ(cpu().Read(fresh->address_space(), 0x1000, &c, 1), Status::kSegmentationFault);
  EXPECT_EQ(fresh->Destroy(), Status::kOk);
}

TEST_P(GmiConformanceTest, RegionStatusReportsWhatWasCreated) {
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  Region* region =
      *mm().RegionCreate(*context_, 0x20000, 3 * kPage, Prot::kReadWrite, *cache, kPage);
  RegionStatus status = region->GetStatus();
  EXPECT_EQ(status.address, 0x20000u);
  EXPECT_EQ(status.size, 3 * kPage);
  EXPECT_EQ(status.protection, Prot::kReadWrite);
  EXPECT_EQ(status.cache, cache);
  EXPECT_EQ(status.offset, kPage);
  EXPECT_FALSE(status.locked);
}

TEST_P(GmiConformanceTest, FindRegionLocatesByAddress) {
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  Region* region =
      *mm().RegionCreate(*context_, 0x20000, 2 * kPage, Prot::kRead, *cache, 0);
  EXPECT_EQ(*context_->FindRegion(0x20000), region);
  EXPECT_EQ(*context_->FindRegion(0x20000 + 2 * kPage - 1), region);
  EXPECT_FALSE(context_->FindRegion(0x20000 + 2 * kPage).ok());
  EXPECT_FALSE(context_->FindRegion(0x1FFFF).ok());
}

TEST_P(GmiConformanceTest, SplitNeverHappensSpontaneously) {
  // "Splitting never occurs spontaneously; this allows the upper layers to keep
  // track easily of the status of a region."
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  Region* region =
      *mm().RegionCreate(*context_, 0x20000, 4 * kPage, Prot::kReadWrite, *cache, 0);
  uint32_t v = 5;
  ASSERT_EQ(cpu().Write(context_->address_space(), 0x20000 + kPage, &v, sizeof(v)),
            Status::kOk);
  EXPECT_EQ(context_->GetRegionList().size(), 1u);
  Region* upper = *region->Split(2 * kPage);
  EXPECT_EQ(context_->GetRegionList().size(), 2u);
  EXPECT_EQ(upper->GetStatus().offset, 2 * kPage);
}

TEST_P(GmiConformanceTest, DestroyedRegionFaults) {
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  Region* region =
      *mm().RegionCreate(*context_, 0x20000, kPage, Prot::kReadWrite, *cache, 0);
  uint32_t v = 1;
  ASSERT_EQ(cpu().Write(context_->address_space(), 0x20000, &v, sizeof(v)), Status::kOk);
  ASSERT_EQ(region->Destroy(), Status::kOk);
  EXPECT_EQ(cpu().Read(context_->address_space(), 0x20000, &v, sizeof(v)),
            Status::kSegmentationFault);
}

TEST_P(GmiConformanceTest, LockInMemoryThenAccessWithoutFaults) {
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  Region* region =
      *mm().RegionCreate(*context_, 0x20000, 2 * kPage, Prot::kReadWrite, *cache, 0);
  ASSERT_EQ(region->LockInMemory(), Status::kOk);
  uint64_t faults = cpu().stats().faults_taken;
  uint32_t v = 9;
  ASSERT_EQ(cpu().Write(context_->address_space(), 0x20000 + kPage, &v, sizeof(v)),
            Status::kOk);
  EXPECT_EQ(cpu().stats().faults_taken, faults);  // pinned: no faults
  EXPECT_TRUE(region->GetStatus().locked);
  ASSERT_EQ(region->Unlock(), Status::kOk);
}

TEST_P(GmiConformanceTest, RegionsOfDifferentProtectionViaSplit) {
  // "In order to set different attributes on parts of a region, it can be split
  // in two using the split operation."
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  Region* region =
      *mm().RegionCreate(*context_, 0x20000, 2 * kPage, Prot::kReadWrite, *cache, 0);
  Region* upper = *region->Split(kPage);
  ASSERT_EQ(upper->SetProtection(Prot::kRead), Status::kOk);
  AsId as = context_->address_space();
  uint32_t v = 3;
  EXPECT_EQ(cpu().Write(as, 0x20000, &v, sizeof(v)), Status::kOk);
  EXPECT_EQ(cpu().Write(as, 0x20000 + kPage, &v, sizeof(v)), Status::kProtectionFault);
  EXPECT_EQ(cpu().Read(as, 0x20000 + kPage, &v, sizeof(v)), Status::kOk);
}

// ---- Table 1: segment access ----

TEST_P(GmiConformanceTest, ExplicitReadWriteRoundTrip) {
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  const char msg[] = "explicit access";
  ASSERT_EQ(cache->Write(kPage + 100, msg, sizeof(msg)), Status::kOk);
  char buffer[sizeof(msg)] = {};
  ASSERT_EQ(cache->Read(kPage + 100, buffer, sizeof(buffer)), Status::kOk);
  EXPECT_STREQ(buffer, msg);
}

TEST_P(GmiConformanceTest, UnifiedCacheMappedAndExplicitAgree) {
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  ASSERT_TRUE(mm().RegionCreate(*context_, 0x20000, kPage, Prot::kReadWrite, *cache, 0).ok());
  AsId as = context_->address_space();
  uint32_t v = 0xABCD;
  ASSERT_EQ(cpu().Write(as, 0x20000 + 8, &v, sizeof(v)), Status::kOk);
  uint32_t through_cache = 0;
  ASSERT_EQ(cache->Read(8, &through_cache, sizeof(through_cache)), Status::kOk);
  EXPECT_EQ(through_cache, v);
  uint32_t w = 0xEF01;
  ASSERT_EQ(cache->Write(16, &w, sizeof(w)), Status::kOk);
  uint32_t through_map = 0;
  ASSERT_EQ(cpu().Read(as, 0x20000 + 16, &through_map, sizeof(through_map)), Status::kOk);
  EXPECT_EQ(through_map, w);
}

TEST_P(GmiConformanceTest, CopySemanticsForEveryPolicy) {
  for (CopyPolicy policy : {CopyPolicy::kEager, CopyPolicy::kHistory,
                            CopyPolicy::kHistoryOnRef, CopyPolicy::kPerPage,
                            CopyPolicy::kAuto}) {
    Cache* src = *mm().CacheCreate(nullptr, "src");
    Cache* dst = *mm().CacheCreate(nullptr, "dst");
    std::vector<char> data(2 * kPage);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<char>('a' + i % 26);
    }
    ASSERT_EQ(src->Write(0, data.data(), data.size()), Status::kOk);
    ASSERT_EQ(src->CopyTo(*dst, 0, 0, data.size(), policy), Status::kOk);
    // The copy is isolated in both directions, whatever the deferral mechanism.
    char x = 'X';
    ASSERT_EQ(src->Write(0, &x, 1), Status::kOk);
    ASSERT_EQ(dst->Write(kPage, &x, 1), Status::kOk);
    std::vector<char> got(data.size());
    ASSERT_EQ(dst->Read(0, got.data(), got.size()), Status::kOk);
    EXPECT_EQ(got[0], data[0]) << "policy " << static_cast<int>(policy);
    EXPECT_EQ(got[kPage], 'X') << "policy " << static_cast<int>(policy);
    std::vector<char> src_got(data.size());
    ASSERT_EQ(src->Read(0, src_got.data(), src_got.size()), Status::kOk);
    EXPECT_EQ(src_got[0], 'X');
    EXPECT_EQ(src_got[kPage], data[kPage]);
    ASSERT_EQ(dst->Destroy(), Status::kOk);
    ASSERT_EQ(src->Destroy(), Status::kOk);
  }
}

TEST_P(GmiConformanceTest, MoveLeavesSourceUndefinedAndDestinationDefined) {
  Cache* src = *mm().CacheCreate(nullptr, "src");
  Cache* dst = *mm().CacheCreate(nullptr, "dst");
  std::vector<char> data(kPage, 'm');
  ASSERT_EQ(src->Write(0, data.data(), data.size()), Status::kOk);
  ASSERT_EQ(src->MoveTo(*dst, 0, 0, kPage), Status::kOk);
  char c = 0;
  ASSERT_EQ(dst->Read(0, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'm');
}

// ---- Table 4: cache management ----

TEST_P(GmiConformanceTest, FillUpPrefetchesData) {
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  std::vector<char> page(kPage, 'f');
  ASSERT_EQ(cache->FillUp(0, page.data(), page.size()), Status::kOk);
  char c = 0;
  ASSERT_EQ(cache->Read(10, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'f');
}

TEST_P(GmiConformanceTest, CopyBackObservesCurrentContents) {
  Cache* cache = *mm().CacheCreate(nullptr, "c");
  const char msg[] = "copyBack sees me";
  ASSERT_EQ(cache->Write(0, msg, sizeof(msg)), Status::kOk);
  std::vector<char> out(kPage);
  ASSERT_EQ(cache->CopyBack(0, out.data(), kPage), Status::kOk);
  EXPECT_STREQ(out.data(), msg);
}

TEST_P(GmiConformanceTest, SyncThroughDriverAndFlushDiscard) {
  TestStoreDriver driver(kPage);
  Cache* cache = *mm().CacheCreate(&driver, "file");
  const char msg[] = "persist";
  ASSERT_EQ(cache->Write(0, msg, sizeof(msg)), Status::kOk);
  ASSERT_EQ(cache->Sync(), Status::kOk);
  EXPECT_GE(driver.push_outs, 1);
  ASSERT_TRUE(driver.HasPage(0));
  EXPECT_EQ(std::memcmp(driver.PageData(0).data(), msg, sizeof(msg)), 0);
  // After a flush, reads come back from the segment.
  ASSERT_EQ(cache->Flush(), Status::kOk);
  char buffer[sizeof(msg)] = {};
  ASSERT_EQ(cache->Read(0, buffer, sizeof(buffer)), Status::kOk);
  EXPECT_STREQ(buffer, msg);
}

TEST_P(GmiConformanceTest, DriverBackedMappedAccess) {
  TestStoreDriver driver(kPage);
  std::vector<char> file(2 * kPage, 'd');
  driver.Preload(0, file.data(), file.size());
  Cache* cache = *mm().CacheCreate(&driver, "file");
  ASSERT_TRUE(mm().RegionCreate(*context_, 0x30000, 2 * kPage, Prot::kRead, *cache, 0).ok());
  char c = 0;
  ASSERT_EQ(cpu().Read(context_->address_space(), 0x30000 + kPage, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'd');
  EXPECT_GE(driver.pull_ins, 1);
}

TEST_P(GmiConformanceTest, ManyRegionsManyContexts) {
  // "a given segment may be mapped into any number of regions, allocated to any
  // number of contexts."
  Cache* cache = *mm().CacheCreate(nullptr, "shared");
  std::vector<Context*> contexts;
  for (int i = 0; i < 4; ++i) {
    Context* ctx = *mm().ContextCreate();
    contexts.push_back(ctx);
    ASSERT_TRUE(
        mm().RegionCreate(*ctx, 0x20000 + i * 0x10000, kPage, Prot::kReadWrite, *cache, 0)
            .ok());
  }
  uint32_t v = 0x42;
  ASSERT_EQ(cpu().Write(contexts[0]->address_space(), 0x20000, &v, sizeof(v)), Status::kOk);
  for (int i = 1; i < 4; ++i) {
    uint32_t got = 0;
    ASSERT_EQ(cpu().Read(contexts[i]->address_space(), 0x20000 + i * 0x10000, &got,
                         sizeof(got)),
              Status::kOk);
    EXPECT_EQ(got, v) << "context " << i;
  }
  for (Context* ctx : contexts) {
    ASSERT_EQ(ctx->Destroy(), Status::kOk);
  }
}

// ---- Table 4 cache control over a delayed network (DSM-backed caches) ----
//
// The cache-control contract (sync saves, invalidate discards WITHOUT saving)
// must hold unchanged when the segment lives behind the simulated interconnect:
// a delayed link slows the operations down but never weakens their semantics.
class GmiNetworkDelayTest : public ::testing::Test {
 protected:
  static constexpr Vaddr kBase = 0x40000000;

  GmiNetworkDelayTest() : cluster_(kPage) {
    a_ = cluster_.AddSite();
    b_ = cluster_.AddSite();
    EXPECT_EQ(cluster_.CreateSharedSegment("delay", 2 * kPage), Status::kOk);
    EXPECT_TRUE(a_->MapShared("delay", kBase, 2 * kPage, Prot::kReadWrite).ok());
    EXPECT_TRUE(b_->MapShared("delay", kBase, 2 * kPage, Prot::kReadWrite).ok());
  }

  // The GMI cache backing a site's view of the shared segment.
  Cache* SharedCache(DsmSite* site) {
    Result<Region*> region = site->actor().context().FindRegion(kBase);
    EXPECT_TRUE(region.ok());
    return (*region)->GetStatus().cache;
  }

  void DelayLink(DsmSite* site, uint64_t latency_us) {
    SimNet::LinkPolicy slow;
    slow.latency_us = latency_us;
    cluster_.net().SetLinkPolicy(kHomeNode, site->id(), slow);
  }

  DsmCluster cluster_;
  DsmSite* a_ = nullptr;
  DsmSite* b_ = nullptr;
};

TEST_F(GmiNetworkDelayTest, SyncSavesDirtyBytesThroughDelayedLink) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 7), Status::kOk);
  DelayLink(a_, /*latency_us=*/15'000);

  // sync must push the dirty page home synchronously: it blocks for the link
  // latency and returns only once the home holds the bytes.
  auto start = std::chrono::steady_clock::now();
  ASSERT_EQ(SharedCache(a_)->Sync(), Status::kOk);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(), 15'000);

  // Proof the save was authoritative: the writer site dies, and the other site
  // still reads the synced value from home.
  ASSERT_EQ(cluster_.CrashSite(a_->id()), Status::kOk);
  Result<uint64_t> got = b_->Load<uint64_t>(kBase);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 7u);
}

TEST_F(GmiNetworkDelayTest, InvalidateDiscardsWithoutSavingUnderDelay) {
  // Commit 5 home, then leave 9 dirty in the site's cache.
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 5), Status::kOk);
  ASSERT_EQ(SharedCache(a_)->Sync(), Status::kOk);
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 9), Status::kOk);

  DelayLink(a_, /*latency_us=*/10'000);
  const uint64_t wal_before = cluster_.stats().wal_records;

  // invalidate discards the dirty copy WITHOUT saving it (Table 4) — it is a
  // purely local operation, so the delayed link cannot slow it down and the
  // home never learns the uncommitted value.
  ASSERT_EQ(SharedCache(a_)->Invalidate(0, 2 * kPage), Status::kOk);
  EXPECT_EQ(cluster_.stats().wal_records, wal_before);

  Result<uint64_t> again = a_->Load<uint64_t>(kBase);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 5u) << "refetch must restore the last synced value, not the discarded one";
  Result<uint64_t> remote = b_->Load<uint64_t>(kBase);
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(*remote, 5u);
}

TEST_F(GmiNetworkDelayTest, SyncOfCleanCacheSendsNoWriteback) {
  ASSERT_EQ(a_->Store<uint64_t>(kBase, 3), Status::kOk);
  ASSERT_EQ(SharedCache(a_)->Sync(), Status::kOk);
  DelayLink(a_, /*latency_us=*/10'000);

  // A second sync with nothing dirty must not pay the wire: same message count,
  // and it returns immediately despite the delayed link.
  const uint64_t messages_before = cluster_.stats().network_messages;
  auto start = std::chrono::steady_clock::now();
  ASSERT_EQ(SharedCache(a_)->Sync(), Status::kOk);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(cluster_.stats().network_messages, messages_before);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(), 10'000);
}

std::string ImplName(const ::testing::TestParamInfo<Impl>& info) {
  switch (info.param) {
    case Impl::kPvm:
      return "Pvm";
    case Impl::kShadow:
      return "Shadow";
    case Impl::kMinimal:
      return "Minimal";
  }
  return "?";
}

INSTANTIATE_TEST_SUITE_P(AllManagers, GmiConformanceTest,
                         ::testing::Values(Impl::kPvm, Impl::kShadow, Impl::kMinimal),
                         ImplName);

}  // namespace
}  // namespace gvm
