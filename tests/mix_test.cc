// Chorus/MIX (section 5.1.5): Unix processes on the Nucleus — exec layout, real
// program execution through the simulated MMU, fork with copy-on-write, exec with
// segment caching, wait/exit.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/mix/process_manager.h"
#include "src/pvm/paged_vm.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

class MixTest : public ::testing::Test {
 protected:
  MixTest()
      : memory_(512, kPage),
        mmu_(kPage),
        vm_(memory_, mmu_),
        nucleus_(vm_),
        swap_(kPage),
        files_(kPage),
        swap_server_(nucleus_.ipc(), swap_),
        file_server_(nucleus_.ipc(), files_),
        pm_(nucleus_, files_, file_server_.port()) {
    nucleus_.BindDefaultMapper(&swap_server_);
    nucleus_.RegisterMapper(&file_server_);
  }

  PhysicalMemory memory_;
  SoftMmu mmu_;
  PagedVm vm_;
  Nucleus nucleus_;
  SwapMapper swap_;
  FileMapper files_;
  MapperServer swap_server_;
  MapperServer file_server_;
  ProcessManager pm_;
};

// A program that writes "hi" to the console and exits with status 7.
VmAssembler HelloProgram() {
  VmAssembler assembler;
  // Store 'h','i' into the data segment, then write(dataBase, 2) and exit(7).
  assembler.Li32(2, static_cast<uint32_t>(ProcessLayout::kDataBase));
  assembler.Emit(VmOp::kLi, 3, 0, 'h');
  assembler.Emit(VmOp::kStb, 3, 2, 0);
  assembler.Emit(VmOp::kLi, 3, 0, 'i');
  assembler.Emit(VmOp::kStb, 3, 2, 1);
  assembler.Emit(VmOp::kMov, 0, 2);       // r0 = buffer
  assembler.Emit(VmOp::kLi, 1, 0, 2);     // r1 = len
  assembler.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kWrite));
  assembler.Emit(VmOp::kLi, 0, 0, 7);
  assembler.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
  return assembler;
}

TEST_F(MixTest, SpawnRunsAProgramToCompletion) {
  ASSERT_EQ(pm_.InstallProgram("/bin/hello", HelloProgram(), {}, kPage, 4 * kPage),
            Status::kOk);
  Result<Pid> pid = pm_.Spawn("/bin/hello");
  ASSERT_TRUE(pid.ok());
  Result<VmStop> stop = pm_.Run(*pid, 1000);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(*stop, VmStop::kHalted);
  Process* proc = pm_.Find(*pid);
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->console, "hi");
  EXPECT_EQ(proc->vm.exit_status, 7);
  EXPECT_EQ(proc->state, ProcState::kZombie);
  // The program really paged its text in from the file mapper.
  EXPECT_GE(files_.reads, 1);
}

TEST_F(MixTest, InitializedDataSegment) {
  // A program reading its initialized data: data[0..7] preloaded with 0x0123...,
  // program loads it and exits with (value & 0x7fff).
  std::vector<std::byte> data(16);
  uint64_t magic = 0x1122334455667788ull;
  std::memcpy(data.data(), &magic, sizeof(magic));
  VmAssembler assembler;
  assembler.Li32(2, static_cast<uint32_t>(ProcessLayout::kDataBase));
  assembler.Emit(VmOp::kLd, 0, 2, 0);  // r0 = data[0]
  // exit(r0 & 0xff) -- mask by storing byte and reloading.
  assembler.Emit(VmOp::kStb, 0, 2, 8);
  assembler.Emit(VmOp::kLdb, 0, 2, 8);
  assembler.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
  ASSERT_EQ(pm_.InstallProgram("/bin/data", assembler, data, kPage, kPage), Status::kOk);
  Pid pid = *pm_.Spawn("/bin/data");
  ASSERT_TRUE(pm_.Run(pid, 100).ok());
  EXPECT_EQ(pm_.Find(pid)->vm.exit_status, 0x88);
}

// A program that forks: the child writes 'C' into data[0] and exits with the
// value it read back; the parent waits... (no wait syscall: parent just reads
// data[0] after, exits with it) — demonstrating fork + COW isolation in-VM.
VmAssembler ForkProgram() {
  VmAssembler a;
  a.Li32(2, static_cast<uint32_t>(ProcessLayout::kDataBase));
  a.Emit(VmOp::kLi, 3, 0, 'P');
  a.Emit(VmOp::kStb, 3, 2, 0);                                  // data[0] = 'P'
  a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kFork)); // r0 = child? pid : 0
  size_t branch = a.Here();
  a.Emit(VmOp::kBnez, 0, 0, 0);  // parent jumps ahead (patched)
  // Child path: overwrite data[0] with 'C', exit(data[0]).
  a.Emit(VmOp::kLi, 3, 0, 'C');
  a.Emit(VmOp::kStb, 3, 2, 0);
  a.Emit(VmOp::kLdb, 0, 2, 0);
  a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
  // Parent path: spin a little (sheduler fairness), then exit(data[0]).
  size_t parent = a.Here();
  a.Emit(VmOp::kLi, 4, 0, 50);
  size_t loop = a.Here();
  a.Emit(VmOp::kAddi, 4, 0, -1);
  size_t back = a.Here();
  a.Emit(VmOp::kBnez, 4, 0, 0);
  a.PatchBranch(back, loop);
  a.Emit(VmOp::kLdb, 0, 2, 0);
  a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
  a.PatchBranch(branch, parent);
  return a;
}

TEST_F(MixTest, ForkGivesChildACopyOnWriteImage) {
  ASSERT_EQ(pm_.InstallProgram("/bin/forker", ForkProgram(), {}, kPage, 4 * kPage),
            Status::kOk);
  Pid root = *pm_.Spawn("/bin/forker");
  pm_.RunAll(100, 100000);
  // Both processes exited; the child saw its own 'C', the parent kept 'P'.
  Process* parent = pm_.Find(root);
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->state, ProcState::kZombie);
  EXPECT_EQ(parent->vm.exit_status, 'P');
  Result<std::pair<Pid, int>> reaped = pm_.Wait(root);
  ASSERT_TRUE(reaped.ok());
  EXPECT_EQ(reaped->second, 'C');
  EXPECT_GE(vm_.stats().cow_copies, 1u);  // the fork really was deferred
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(MixTest, ForkSharesTextThroughOneCache) {
  ASSERT_EQ(pm_.InstallProgram("/bin/forker", ForkProgram(), {}, kPage, 4 * kPage),
            Status::kOk);
  Pid root = *pm_.Spawn("/bin/forker");
  ASSERT_TRUE(pm_.Run(root, 10).ok());  // run up to the fork
  int reads_before_fork = files_.reads;
  Result<Pid> child = pm_.Fork(root);
  ASSERT_TRUE(child.ok());
  // Child executes: instruction fetches hit the shared text cache — no new
  // mapper reads for text.
  ASSERT_TRUE(pm_.Run(*child, 5).ok());
  EXPECT_EQ(files_.reads, reads_before_fork);
}

TEST_F(MixTest, ExecReplacesTheImage) {
  ASSERT_EQ(pm_.InstallProgram("/bin/hello", HelloProgram(), {}, kPage, 4 * kPage),
            Status::kOk);
  VmAssembler exiter;
  exiter.Emit(VmOp::kLi, 0, 0, 3);
  exiter.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
  ASSERT_EQ(pm_.InstallProgram("/bin/exiter", exiter, {}, kPage, kPage), Status::kOk);

  Pid pid = *pm_.Spawn("/bin/exiter");
  ASSERT_EQ(pm_.Exec(pid, "/bin/hello"), Status::kOk);
  ASSERT_TRUE(pm_.Run(pid, 1000).ok());
  EXPECT_EQ(pm_.Find(pid)->console, "hi");
  EXPECT_EQ(pm_.Find(pid)->vm.exit_status, 7);
}

TEST_F(MixTest, RepeatedExecHitsTheSegmentCache) {
  // Section 5.1.3: "This segment caching strategy has a very significant impact on
  // the performance of program loading (Unix exec) when the same programs are
  // loaded frequently, such as occurs during a large make."
  ASSERT_EQ(pm_.InstallProgram("/bin/cc", HelloProgram(), {}, kPage, kPage), Status::kOk);
  // First run: cold.
  Pid first = *pm_.Spawn("/bin/cc");
  ASSERT_TRUE(pm_.Run(first, 1000).ok());
  int cold_reads = files_.reads;
  ASSERT_TRUE(pm_.Wait(0).ok() || true);
  // Nine more runs of the same program: text pull-ins all hit the kept cache.
  for (int i = 0; i < 9; ++i) {
    Pid pid = *pm_.Spawn("/bin/cc");
    ASSERT_TRUE(pm_.Run(pid, 1000).ok());
  }
  // Only the per-exec header reads (cache hits too) — no repeated text reads.
  EXPECT_EQ(files_.reads, cold_reads);
  EXPECT_GE(nucleus_.segment_manager().stats().cache_hits, 9u);
}

TEST_F(MixTest, SbrkGrowsWithinReserve) {
  VmAssembler a;
  a.Emit(VmOp::kLi, 0, 0, 64);
  a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kSbrk));  // r0 = old brk
  a.Emit(VmOp::kMov, 2, 0);
  a.Emit(VmOp::kLi, 3, 0, 99);
  a.Emit(VmOp::kStb, 3, 2, 0);  // *old_brk = 99
  a.Emit(VmOp::kLdb, 0, 2, 0);
  a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
  ASSERT_EQ(pm_.InstallProgram("/bin/sbrk", a, {}, 4 * kPage, kPage), Status::kOk);
  Pid pid = *pm_.Spawn("/bin/sbrk");
  ASSERT_TRUE(pm_.Run(pid, 100).ok());
  EXPECT_EQ(pm_.Find(pid)->vm.exit_status, 99);
}

TEST_F(MixTest, SegfaultTurnsIntoExit) {
  VmAssembler a;
  a.Li32(2, 0x00000044);  // unmapped low address
  a.Emit(VmOp::kLd, 0, 2, 0);
  a.Emit(VmOp::kSys, 0, 0, static_cast<int16_t>(VmSys::kExit));
  ASSERT_EQ(pm_.InstallProgram("/bin/crash", a, {}, kPage, kPage), Status::kOk);
  Pid pid = *pm_.Spawn("/bin/crash");
  pm_.RunAll(100, 1000);
  EXPECT_EQ(pm_.Find(pid)->state, ProcState::kZombie);
  EXPECT_EQ(pm_.Find(pid)->vm.exit_status, -11);
}

TEST_F(MixTest, ForkStormMemoryIsReclaimed) {
  // A shell-like loop: fork, child exits, parent continues — ten generations.
  ASSERT_EQ(pm_.InstallProgram("/bin/sh", HelloProgram(), {}, kPage, 2 * kPage), Status::kOk);
  Pid shell = *pm_.Spawn("/bin/sh");
  // Touch the data/stack so the fork has resident pages to defer.
  Process* proc = pm_.Find(shell);
  uint32_t v = 42;
  ASSERT_EQ(proc->actor->Write(ProcessLayout::kDataBase, &v, sizeof(v)), Status::kOk);

  size_t frames_baseline = memory_.used_frames();
  for (int i = 0; i < 10; ++i) {
    Result<Pid> child = pm_.Fork(shell);
    ASSERT_TRUE(child.ok());
    // The child writes one page, then exits.
    Process* child_proc = pm_.Find(*child);
    uint32_t w = i;
    ASSERT_EQ(child_proc->actor->Write(ProcessLayout::kDataBase, &w, sizeof(w)), Status::kOk);
    ASSERT_EQ(pm_.Exit(*child, 0), Status::kOk);
    ASSERT_TRUE(pm_.Wait(shell).ok());
  }
  // Memory does not accumulate across generations (the paper's anti-shadow-chain
  // argument): within a small bound of the baseline.
  EXPECT_LE(memory_.used_frames(), frames_baseline + 4);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

}  // namespace
}  // namespace gvm
