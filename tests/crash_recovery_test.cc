// Mapper crash-recovery (DESIGN.md §11): the journaled swap mapper's
// write-ahead log (durability of committed records, discard of torn ones,
// idempotent replay, sequence-number deduplication), the IPC deadline and
// port-death machinery that turns a mapper crash into a prompt kPortDead, the
// kernel-side recovery protocol (degrade, re-bind, drain-exactly-once), and the
// seeded crash-loop chaos harness across all three crash sites.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/hal/soft_mmu.h"
#include "src/nucleus/journal_mapper.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"
#include "tests/crash_harness.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

std::vector<std::byte> Pattern(size_t size, uint8_t salt) {
  std::vector<std::byte> data(size);
  for (size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>(i * 31 + salt);
  }
  return data;
}

// ---------------------------------------------------------------------------
// Journal unit tests: crash at every record boundary
// ---------------------------------------------------------------------------

constexpr int kScriptWrites = 6;

// Deterministic script: one alloc (seq 1) then kScriptWrites whole-page writes
// (seq 2..).  Returns the journal length after each record — the candidate
// crash points.
uint64_t RunScript(JournalStore& store, std::vector<size_t>* boundaries) {
  JournaledSwapMapper mapper(store);
  uint64_t key = *mapper.AllocateTemporarySeq(kScriptWrites * kPage, /*seq=*/1);
  boundaries->push_back(store.JournalBytes());
  for (int i = 0; i < kScriptWrites; ++i) {
    std::vector<std::byte> data = Pattern(kPage, static_cast<uint8_t>(i));
    EXPECT_EQ(mapper.WriteSeq(key, i * kPage, data.data(), kPage,
                              /*seq=*/2 + static_cast<uint64_t>(i)),
              Status::kOk);
    boundaries->push_back(store.JournalBytes());
  }
  return key;
}

TEST(JournalMapperTest, FreshJournalRecoversToEmpty) {
  JournalStore store(kPage);
  JournaledSwapMapper mapper(store);
  JournaledSwapMapper::RecoveryReport report = mapper.Recover();
  EXPECT_EQ(report.records_replayed, 0u);
  EXPECT_EQ(report.records_discarded, 0u);
  EXPECT_EQ(report.bytes_truncated, 0u);
  EXPECT_EQ(store.JournalBytes(), 0u);
}

// The core durability property: simulate a crash at *every* record boundary
// and at points inside every record, wipe the checkpointed page area, and
// recover from the log alone.  A write whose record committed before the cut
// must read back intact; everything after the cut must be gone; a mid-record
// cut must be truncated as exactly one discarded record.
TEST(JournalMapperTest, CommittedWritesSurviveCrashAtEveryRecordBoundary) {
  std::vector<size_t> reference_boundaries;
  {
    JournalStore scratch(kPage);
    RunScript(scratch, &reference_boundaries);
  }
  ASSERT_EQ(reference_boundaries.size(), static_cast<size_t>(kScriptWrites) + 1);

  std::vector<size_t> cuts;
  size_t prev = 0;
  for (size_t boundary : reference_boundaries) {
    cuts.push_back(boundary);            // clean crash: record fully committed
    cuts.push_back(prev + 1);            // torn: one byte of the next record
    cuts.push_back((prev + boundary) / 2);  // torn: mid-record
    prev = boundary;
  }

  for (size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    JournalStore store(kPage);
    std::vector<size_t> boundaries;
    uint64_t key = RunScript(store, &boundaries);
    ASSERT_EQ(boundaries, reference_boundaries);

    store.TruncateJournal(cut);
    store.WipePageAreaForTest();
    JournaledSwapMapper recovered(store);
    JournaledSwapMapper::RecoveryReport report = recovered.Recover();

    size_t committed = 0;
    for (size_t boundary : boundaries) {
      if (boundary <= cut) {
        ++committed;
      }
    }
    bool clean_cut = committed > 0 && boundaries[committed - 1] == cut;
    EXPECT_EQ(report.records_replayed, committed);
    EXPECT_EQ(report.records_discarded, clean_cut || cut == 0 ? 0u : 1u);
    // Recovery truncated the torn tail: the journal ends at the last committed
    // record, so future appends land on a clean prefix.
    EXPECT_EQ(store.JournalBytes(), committed == 0 ? 0u : boundaries[committed - 1]);

    if (committed == 0) {
      // Even the alloc record was lost: the segment never existed.
      std::vector<std::byte> out;
      EXPECT_EQ(recovered.Read(key, 0, kPage, &out), Status::kNotFound);
      continue;
    }
    for (int i = 0; i < kScriptWrites; ++i) {
      std::vector<std::byte> out;
      ASSERT_EQ(recovered.Read(key, i * kPage, kPage, &out), Status::kOk);
      if (static_cast<size_t>(i) + 1 < committed) {
        // Committed before the crash: durable, byte for byte.
        std::vector<std::byte> expect = Pattern(kPage, static_cast<uint8_t>(i));
        EXPECT_EQ(std::memcmp(out.data(), expect.data(), kPage), 0) << "write " << i;
      } else {
        // Never committed: the write never happened (reads back as zeroes).
        EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                                [](std::byte b) { return b == std::byte{0}; }))
            << "write " << i << " leaked through the crash";
      }
    }
  }
}

TEST(JournalMapperTest, CrashBeforeWriteLeavesNothingDurable) {
  JournalStore store(kPage);
  JournaledSwapMapper mapper(store);
  FaultInjector injector;
  mapper.BindFaultInjector(&injector);
  uint64_t key = *mapper.AllocateTemporarySeq(kPage, /*seq=*/1);
  size_t journal_before = store.JournalBytes();

  ASSERT_TRUE(injector.ApplySpec("crashwrite:nth:1"));
  std::vector<std::byte> data = Pattern(kPage, 0xaa);
  EXPECT_EQ(mapper.WriteSeq(key, 0, data.data(), kPage, /*seq=*/2), Status::kPortDead);
  EXPECT_TRUE(mapper.ConsumeCrash());
  // Died before the intent reached the log: not a single byte appended.
  EXPECT_EQ(store.JournalBytes(), journal_before);

  JournaledSwapMapper::RecoveryReport report = mapper.Recover();
  EXPECT_EQ(report.records_replayed, 1u);  // just the alloc
  EXPECT_EQ(report.records_discarded, 0u);

  // The kernel never got an ack, so it re-issues with the same sequence
  // number; the write applies exactly once.
  EXPECT_EQ(mapper.WriteSeq(key, 0, data.data(), kPage, /*seq=*/2), Status::kOk);
  std::vector<std::byte> out;
  ASSERT_EQ(mapper.Read(key, 0, kPage, &out), Status::kOk);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kPage), 0);
}

TEST(JournalMapperTest, TornMidWriteRecordIsDiscardedByRecovery) {
  JournalStore store(kPage);
  JournaledSwapMapper mapper(store);
  FaultInjector injector;
  mapper.BindFaultInjector(&injector);
  uint64_t key = *mapper.AllocateTemporarySeq(kPage, /*seq=*/1);
  size_t journal_before = store.JournalBytes();

  ASSERT_TRUE(injector.ApplySpec("crashmidwrite:nth:1"));
  std::vector<std::byte> data = Pattern(kPage, 0x5c);
  EXPECT_EQ(mapper.WriteSeq(key, 0, data.data(), kPage, /*seq=*/2), Status::kPortDead);
  EXPECT_TRUE(mapper.ConsumeCrash());
  // A torn prefix (no commit marker) reached the log.
  size_t torn = store.JournalBytes();
  ASSERT_GT(torn, journal_before);

  JournaledSwapMapper::RecoveryReport report = mapper.Recover();
  EXPECT_EQ(report.records_replayed, 1u);
  EXPECT_EQ(report.records_discarded, 1u);
  EXPECT_EQ(report.bytes_truncated, torn - journal_before);
  EXPECT_EQ(store.JournalBytes(), journal_before);

  // The torn write never happened...
  std::vector<std::byte> out;
  ASSERT_EQ(mapper.Read(key, 0, kPage, &out), Status::kOk);
  EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                          [](std::byte b) { return b == std::byte{0}; }));
  // ...and its re-issue (same seq: the dedup entry died with the torn record)
  // applies normally.
  EXPECT_EQ(mapper.WriteSeq(key, 0, data.data(), kPage, /*seq=*/2), Status::kOk);
  ASSERT_EQ(mapper.Read(key, 0, kPage, &out), Status::kOk);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), kPage), 0);
}

TEST(JournalMapperTest, DoubleReplayIsIdempotent) {
  JournalStore store(kPage);
  std::vector<size_t> boundaries;
  uint64_t key = RunScript(store, &boundaries);

  JournaledSwapMapper recovered(store);
  JournaledSwapMapper::RecoveryReport first = recovered.Recover();
  JournaledSwapMapper::RecoveryReport second = recovered.Recover();
  EXPECT_EQ(first.records_replayed, static_cast<uint64_t>(kScriptWrites) + 1);
  EXPECT_EQ(second.records_replayed, first.records_replayed);
  EXPECT_EQ(second.records_discarded, 0u);
  EXPECT_EQ(store.JournalBytes(), boundaries.back());
  for (int i = 0; i < kScriptWrites; ++i) {
    std::vector<std::byte> out;
    std::vector<std::byte> expect = Pattern(kPage, static_cast<uint8_t>(i));
    ASSERT_EQ(recovered.Read(key, i * kPage, kPage, &out), Status::kOk);
    EXPECT_EQ(std::memcmp(out.data(), expect.data(), kPage), 0);
  }
}

TEST(JournalMapperTest, ReissuedWriteWithSeenSequenceIsNotAppliedTwice) {
  JournalStore store(kPage);
  JournaledSwapMapper mapper(store);
  uint64_t key = *mapper.AllocateTemporarySeq(kPage, /*seq=*/1);
  std::vector<std::byte> original = Pattern(kPage, 0x11);
  ASSERT_EQ(mapper.WriteSeq(key, 0, original.data(), kPage, /*seq=*/7), Status::kOk);
  uint64_t applied = store.applied_writes();
  size_t journal = store.JournalBytes();

  // Same sequence number, different payload: this models the kernel re-issuing
  // a request whose original was applied but whose ack was lost.  It must be
  // acknowledged without journaling or applying anything.
  std::vector<std::byte> imposter = Pattern(kPage, 0x99);
  EXPECT_EQ(mapper.WriteSeq(key, 0, imposter.data(), kPage, /*seq=*/7), Status::kOk);
  EXPECT_EQ(mapper.duplicate_requests_ignored(), 1u);
  EXPECT_EQ(store.applied_writes(), applied);
  EXPECT_EQ(store.JournalBytes(), journal);
  std::vector<std::byte> out;
  ASSERT_EQ(mapper.Read(key, 0, kPage, &out), Status::kOk);
  EXPECT_EQ(std::memcmp(out.data(), original.data(), kPage), 0);
}

TEST(JournalMapperTest, CorruptRecordTruncatesTailButKeepsPrefix) {
  JournalStore store(kPage);
  std::vector<size_t> boundaries;
  uint64_t key = RunScript(store, &boundaries);

  // Flip a byte inside the second write's record (after alloc + write 0).
  store.FlipJournalByte(boundaries[1] + 20);
  store.WipePageAreaForTest();
  JournaledSwapMapper recovered(store);
  JournaledSwapMapper::RecoveryReport report = recovered.Recover();
  EXPECT_EQ(report.records_replayed, 2u);  // alloc + write 0
  EXPECT_EQ(report.records_discarded, 1u);
  EXPECT_EQ(store.JournalBytes(), boundaries[1]);

  std::vector<std::byte> out;
  std::vector<std::byte> expect = Pattern(kPage, 0);
  ASSERT_EQ(recovered.Read(key, 0, kPage, &out), Status::kOk);
  EXPECT_EQ(std::memcmp(out.data(), expect.data(), kPage), 0);
  ASSERT_EQ(recovered.Read(key, kPage, kPage, &out), Status::kOk);
  EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                          [](std::byte b) { return b == std::byte{0}; }));

  // The log accepts fresh appends after truncation, and they are durable.
  std::vector<std::byte> fresh = Pattern(kPage, 0xd2);
  ASSERT_EQ(recovered.WriteSeq(key, kPage, fresh.data(), kPage, /*seq=*/50), Status::kOk);
  EXPECT_EQ(recovered.Recover().records_replayed, 3u);
  ASSERT_EQ(recovered.Read(key, kPage, kPage, &out), Status::kOk);
  EXPECT_EQ(std::memcmp(out.data(), fresh.data(), kPage), 0);
}

TEST(JournalMapperTest, ReissuedAllocationReturnsTheSameKeyAcrossRecovery) {
  JournalStore store(kPage);
  JournaledSwapMapper mapper(store);
  uint64_t key = *mapper.AllocateTemporarySeq(kPage, /*seq=*/3);

  // Re-issue before any crash: deduplicated in memory.
  EXPECT_EQ(*mapper.AllocateTemporarySeq(kPage, /*seq=*/3), key);
  EXPECT_EQ(mapper.duplicate_requests_ignored(), 1u);

  // Re-issue after a restart: the dedup table is rebuilt from the journal, so
  // the committed-but-unacked allocation is still not duplicated.
  mapper.Recover();
  size_t journal = store.JournalBytes();
  EXPECT_EQ(*mapper.AllocateTemporarySeq(kPage, /*seq=*/3), key);
  EXPECT_EQ(store.JournalBytes(), journal);  // no second alloc record
}

// ---------------------------------------------------------------------------
// IPC: deadlines, death links, revival
// ---------------------------------------------------------------------------

TEST(IpcDeadlineTest, ReceiveTimesOutOnAnEmptyPort) {
  Ipc ipc;
  PortId port = ipc.PortCreate();
  Result<Message> got = ipc.Receive(port, /*deadline_us=*/2000);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status(), Status::kTimeout);
}

TEST(IpcDeadlineTest, CallTimesOutWhenTheServerNeverReplies) {
  Ipc ipc;
  PortId port = ipc.PortCreate();  // alive, but nobody serves it
  Result<Message> got = ipc.Call(port, Message{}, /*deadline_us=*/2000);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status(), Status::kTimeout);
}

TEST(IpcDeadlineTest, CallFailsFastWhenTheServerPortDies) {
  Ipc ipc;
  PortId port = ipc.PortCreate();
  std::atomic<bool> calling{false};
  Result<Message> got = Status::kTimeout;
  std::thread caller([&] {
    calling.store(true);
    // No deadline: only the death link can end this call.
    got = ipc.Call(port, Message{}, /*deadline_us=*/0);
  });
  while (!calling.load()) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ipc.PortDestroy(port);
  caller.join();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status(), Status::kPortDead);
}

TEST(IpcDeadlineTest, ReplyQueuedBeforeDeathIsStillDelivered) {
  Ipc ipc;
  PortId port = ipc.PortCreate();
  std::thread server([&] {
    Result<Message> request = ipc.Receive(port);
    ASSERT_TRUE(request.ok());
    Message reply;
    reply.arg0 = 0xfeed;
    ASSERT_EQ(ipc.Send(request->reply_to.port, reply), Status::kOk);
    // The server dies immediately after replying; the reply must win over the
    // death notification because it was queued first.
    ipc.PortDestroy(port);
  });
  Result<Message> got = ipc.Call(port, Message{}, /*deadline_us=*/0);
  server.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->arg0, 0xfeedu);
}

TEST(IpcDeadlineTest, DeadPortIsDistinguishedFromUnknownPortAndCanBeRevived) {
  Ipc ipc;
  EXPECT_EQ(ipc.Send(0x7777, Message{}), Status::kNotFound);

  PortId port = ipc.PortCreate();
  ipc.PortDestroy(port);
  EXPECT_EQ(ipc.Send(port, Message{}), Status::kPortDead);
  Result<Message> got = ipc.Receive(port, /*deadline_us=*/1000);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status(), Status::kPortDead);

  // Revival keeps the PortId (capabilities naming it stay valid).
  ipc.PortRevive(port);
  Message message;
  message.arg0 = 42;
  EXPECT_EQ(ipc.Send(port, message), Status::kOk);
  got = ipc.Receive(port, /*deadline_us=*/1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->arg0, 42u);
}

// ---------------------------------------------------------------------------
// Kernel-side recovery protocol
// ---------------------------------------------------------------------------

struct CrashWorld {
  PhysicalMemory memory;
  SoftMmu mmu;
  PagedVm vm;
  Nucleus nucleus;
  JournalStore store;
  JournaledSwapMapper mapper;
  MapperServer server;
  FaultInjector injector;

  explicit CrashWorld(uint64_t seed = 1, bool use_ipc_transport = false)
      : memory(64, kPage),
        mmu(kPage),
        vm(memory, mmu),
        nucleus(vm, MakeOptions(use_ipc_transport)),
        store(kPage),
        mapper(store),
        server(nucleus.ipc(), mapper),
        injector(seed) {
    nucleus.BindDefaultMapper(&server);
    mapper.BindFaultInjector(&injector);
    server.BindFaultInjector(&injector);
    if (use_ipc_transport) {
      server.Start();
    }
  }

  static Nucleus::Options MakeOptions(bool use_ipc_transport) {
    Nucleus::Options options;
    options.segment_manager.use_ipc_transport = use_ipc_transport;
    options.segment_manager.rpc_deadline_us = 200'000;
    return options;
  }

  SegmentManager& sm() { return nucleus.segment_manager(); }
  JournaledSwapMapper::RecoveryReport Recover() {
    return RecoverAndRestart(mapper, server, sm());
  }
};

TEST(MapperCrashRecoveryTest, CrashBeforeReplyFailsFastAndRecoveryRestoresService) {
  CrashWorld w;
  Cache* cache = *w.sm().AcquireTemporaryCache("tmp");
  std::vector<std::byte> data = Pattern(kPage, 0x42);
  ASSERT_EQ(cache->Write(0, data.data(), data.size()), Status::kOk);

  // The mapper dies after applying the first request but before replying.  The
  // kernel must fail fast (no deadline stall), count the death, and degrade.
  ASSERT_TRUE(w.injector.ApplySpec("crashreply:nth:1"));
  EXPECT_NE(cache->Sync(), Status::kOk);
  EXPECT_TRUE(w.server.crashed());
  EXPECT_GE(w.sm().stats().rpc_port_deaths, 1u);
  EXPECT_GE(w.vm.detail_stats().mapper_crashes_observed, 1u);
  EXPECT_TRUE(static_cast<PvmCache*>(cache)->degraded());
  // Degraded: new writes are refused, resident reads still work.
  std::byte b{0x01};
  EXPECT_EQ(cache->Write(0, &b, 1), Status::kBusError);
  std::vector<std::byte> got(kPage);
  EXPECT_EQ(cache->Read(0, got.data(), got.size()), Status::kOk);
  EXPECT_EQ(std::memcmp(got.data(), data.data(), kPage), 0);

  // Recovery protocol: replay the journal, revive the port, re-bind.  The
  // requeued dirty page drains and degraded mode exits.
  w.Recover();
  EXPECT_FALSE(w.server.crashed());
  EXPECT_FALSE(static_cast<PvmCache*>(cache)->degraded());
  EXPECT_EQ(w.vm.detail_stats().recoveries_completed, 1u);
  EXPECT_EQ(w.sm().stats().recoveries, 1u);
  EXPECT_EQ(cache->Write(0, &b, 1), Status::kOk);
  EXPECT_EQ(cache->Sync(), Status::kOk);
  EXPECT_GE(w.store.applied_writes(), 1u);
  w.sm().Release(cache);
}

// The degraded-exit-under-load regression: dirty pages requeued by a crash
// drain exactly once on re-bind (sequence dedup plus single re-drive), while
// concurrent readers keep running throughout.
TEST(MapperCrashRecoveryTest, RecoveryDrainsRequeuedPagesExactlyOnceUnderLoad) {
  constexpr int kPages = 4;
  CrashWorld w;
  Cache* cache = *w.sm().AcquireTemporaryCache("tmp");
  std::vector<std::vector<std::byte>> pages;
  for (int i = 0; i < kPages; ++i) {
    pages.push_back(Pattern(kPage, static_cast<uint8_t>(0x60 + i)));
    ASSERT_EQ(cache->Write(i * kPage, pages.back().data(), kPage), Status::kOk);
  }
  ASSERT_EQ(cache->Sync(), Status::kOk);
  uint64_t durable_writes = w.store.applied_writes();
  ASSERT_EQ(durable_writes, static_cast<uint64_t>(kPages));

  // Re-dirty every page, then the mapper actor dies.
  for (int i = 0; i < kPages; ++i) {
    pages[i] = Pattern(kPage, static_cast<uint8_t>(0xa0 + i));
    ASSERT_EQ(cache->Write(i * kPage, pages[i].data(), kPage), Status::kOk);
  }
  w.server.CrashNow();

  // Concurrent read load across the whole degraded + recovery window.
  std::atomic<bool> stop{false};
  std::atomic<bool> read_failed{false};
  std::thread reader([&] {
    std::vector<std::byte> got(kPage);
    while (!stop.load()) {
      for (int i = 0; i < kPages; ++i) {
        if (cache->Read(i * kPage, got.data(), kPage) != Status::kOk) {
          read_failed.store(true);
        }
      }
    }
  });

  EXPECT_NE(cache->Sync(), Status::kOk);  // every push fails fast: port is dead
  EXPECT_TRUE(static_cast<PvmCache*>(cache)->degraded());
  std::byte b{0x01};
  EXPECT_EQ(cache->Write(0, &b, 1), Status::kBusError);

  // Recover.  Replay re-applies the committed history; the re-bind then drains
  // the requeued dirty pages — each exactly once.
  JournaledSwapMapper::RecoveryReport report = w.mapper.Recover();
  EXPECT_GE(report.records_replayed, static_cast<uint64_t>(kPages) + 1);
  uint64_t base = w.store.applied_writes();
  w.server.Restart();
  w.sm().MapperRecovered(&w.server, report.records_replayed, report.records_discarded);
  EXPECT_EQ(w.store.applied_writes(), base + kPages);

  stop.store(true);
  reader.join();
  EXPECT_FALSE(read_failed.load());  // resident reads never broke
  EXPECT_FALSE(static_cast<PvmCache*>(cache)->degraded());
  EXPECT_GE(w.vm.detail_stats().requests_reissued, 1u);

  // And the drained data is the re-dirtied data, durable in the store.
  for (int i = 0; i < kPages; ++i) {
    std::vector<std::byte> out;
    ASSERT_EQ(w.mapper.Read(1, i * kPage, kPage, &out), Status::kOk);
    EXPECT_EQ(std::memcmp(out.data(), pages[i].data(), kPage), 0) << "page " << i;
  }
  EXPECT_EQ(cache->Write(0, &b, 1), Status::kOk);
  w.sm().Release(cache);
}

TEST(MapperCrashRecoveryTest, IdleRecoveryNotificationIsHarmless) {
  CrashWorld w;
  // Recovery of a mapper with no routed caches must not disturb anything.
  w.server.CrashNow();
  w.Recover();
  EXPECT_EQ(w.sm().stats().recoveries, 1u);
  EXPECT_EQ(w.vm.detail_stats().recoveries_completed, 1u);
  EXPECT_EQ(w.vm.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Acceptance: seeded crash-loop chaos across all three crash sites
// ---------------------------------------------------------------------------

TEST(CrashChaosTest, AcknowledgedWritesSurviveCrashLoopAcrossAllSitesAndSeeds) {
  const char* sites[] = {"crashwrite", "crashmidwrite", "crashreply"};
  uint64_t total_crashes = 0;
  for (const char* site : sites) {
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      CrashChaosConfig config;
      config.seed = seed;
      config.fault_specs = {std::string(site) + ":prob:6"};
      config.threads = 1;
      config.steps_per_thread = 50;
      config.caches = 2;
      config.pages_per_cache = 8;
      config.frames = 12;  // < working set: evictions force pushOut traffic
      CrashChaosReport report = RunCrashChaos(config);
      ASSERT_TRUE(report.ok) << report.failure;
      total_crashes += report.crashes;
    }
  }
  // The storm must actually have exercised crash-recovery, not idled past it.
  EXPECT_GT(total_crashes, 0u);
}

TEST(CrashChaosTest, ConcurrentStormOverIpcTransportWithAllCrashSites) {
  CrashChaosConfig config;
  config.seed = 0xc0ffee;
  config.fault_specs = {"crashwrite:prob:4", "crashmidwrite:prob:4",
                        "crashreply:prob:4"};
  config.threads = 4;
  config.steps_per_thread = 60;
  config.caches = 4;
  config.pages_per_cache = 8;
  config.frames = 20;
  config.use_ipc_transport = true;
  CrashChaosReport report = RunCrashChaos(config);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_GT(report.crashes, 0u);
  EXPECT_GT(report.recoveries, 0u);
  EXPECT_GT(report.journal_replays, 0u);
}

}  // namespace
}  // namespace gvm
