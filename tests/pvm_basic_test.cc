// PVM fundamentals: contexts, regions, demand-zero, pull-in/push-out, explicit
// cache I/O (the unified cache of section 3.2), region split/protect/lock, and the
// size-independence property of section 4.1.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/pvm/paged_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

class PvmBasicTest : public ::testing::Test {
 protected:
  PvmBasicTest()
      : memory_(64, kPage),
        mmu_(kPage),
        vm_(memory_, mmu_),
        registry_(kPage),
        driver_(kPage) {
    vm_.BindSegmentRegistry(&registry_);
    context_ = *vm_.ContextCreate();
  }

  Context* context_ptr() { return context_; }

  PhysicalMemory memory_;
  SoftMmu mmu_;
  PagedVm vm_;
  TestSwapRegistry registry_;
  TestStoreDriver driver_;
  Context* context_ = nullptr;
};

TEST_F(PvmBasicTest, DemandZeroRegion) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  Region* region = *vm_.RegionCreate(*context_, 0x10000, 4 * kPage, Prot::kReadWrite,
                                     *cache, 0);
  ASSERT_NE(region, nullptr);

  AsId as = context_->address_space();
  // Reads of untouched memory are zero.
  uint64_t value = 1;
  ASSERT_EQ(vm_.cpu().Read(as, 0x10000, &value, sizeof(value)), Status::kOk);
  EXPECT_EQ(value, 0u);
  // Writes stick.
  value = 0x1122334455667788ull;
  ASSERT_EQ(vm_.cpu().Write(as, 0x10000 + kPage, &value, sizeof(value)), Status::kOk);
  uint64_t back = 0;
  ASSERT_EQ(vm_.cpu().Read(as, 0x10000 + kPage, &back, sizeof(back)), Status::kOk);
  EXPECT_EQ(back, value);
  EXPECT_GE(vm_.stats().page_faults, 2u);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmBasicTest, SegmentationFaultOutsideRegions) {
  char c = 0;
  EXPECT_EQ(vm_.cpu().Read(context_->address_space(), 0xdead0000, &c, 1),
            Status::kSegmentationFault);
}

TEST_F(PvmBasicTest, RegionProtectionIsEnforced) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  Region* region =
      *vm_.RegionCreate(*context_, 0x10000, kPage, Prot::kRead, *cache, 0);
  AsId as = context_->address_space();
  char c = 0;
  EXPECT_EQ(vm_.cpu().Read(as, 0x10000, &c, 1), Status::kOk);
  EXPECT_EQ(vm_.cpu().Write(as, 0x10000, &c, 1), Status::kProtectionFault);
  // Raising the protection makes the write possible.
  ASSERT_EQ(region->SetProtection(Prot::kReadWrite), Status::kOk);
  EXPECT_EQ(vm_.cpu().Write(as, 0x10000, &c, 1), Status::kOk);
  // Lowering it re-protects already-mapped pages.
  ASSERT_EQ(region->SetProtection(Prot::kRead), Status::kOk);
  EXPECT_EQ(vm_.cpu().Write(as, 0x10000, &c, 1), Status::kProtectionFault);
}

TEST_F(PvmBasicTest, RegionCreateRejectsOverlapAndMisalignment) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  ASSERT_TRUE(vm_.RegionCreate(*context_, 0x10000, 2 * kPage, Prot::kRead, *cache, 0).ok());
  EXPECT_EQ(vm_.RegionCreate(*context_, 0x10000 + kPage, kPage, Prot::kRead, *cache, 0)
                .status(),
            Status::kAlreadyExists);
  EXPECT_EQ(vm_.RegionCreate(*context_, 0x10001, kPage, Prot::kRead, *cache, 0).status(),
            Status::kInvalidArgument);
  EXPECT_EQ(vm_.RegionCreate(*context_, 0x20000, kPage / 2, Prot::kRead, *cache, 0).status(),
            Status::kInvalidArgument);
  EXPECT_EQ(vm_.RegionCreate(*context_, 0x20000, 0, Prot::kRead, *cache, 0).status(),
            Status::kInvalidArgument);
}

TEST_F(PvmBasicTest, PullInFromSegmentDriver) {
  std::vector<char> file_data(2 * kPage);
  for (size_t i = 0; i < file_data.size(); ++i) {
    file_data[i] = static_cast<char>('A' + (i % 26));
  }
  driver_.Preload(0, file_data.data(), file_data.size());

  Cache* cache = *vm_.CacheCreate(&driver_, "file");
  ASSERT_TRUE(vm_.RegionCreate(*context_, 0x40000, 2 * kPage, Prot::kRead, *cache, 0).ok());
  AsId as = context_->address_space();
  std::vector<char> read_back(file_data.size());
  ASSERT_EQ(vm_.cpu().Read(as, 0x40000, read_back.data(), read_back.size()), Status::kOk);
  EXPECT_EQ(read_back, file_data);
  EXPECT_EQ(driver_.pull_ins, 2);
  // Re-reading hits the cache: no more upcalls.
  ASSERT_EQ(vm_.cpu().Read(as, 0x40000, read_back.data(), read_back.size()), Status::kOk);
  EXPECT_EQ(driver_.pull_ins, 2);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmBasicTest, PullInFailureSurfacesAsBusError) {
  driver_.fail_pull_in = true;
  Cache* cache = *vm_.CacheCreate(&driver_, "file");
  ASSERT_TRUE(vm_.RegionCreate(*context_, 0x40000, kPage, Prot::kRead, *cache, 0).ok());
  char c = 0;
  EXPECT_EQ(vm_.cpu().Read(context_->address_space(), 0x40000, &c, 1), Status::kBusError);
  EXPECT_EQ(vm_.SyncStubCount(), 0u);  // the stub was cleaned up
}

TEST_F(PvmBasicTest, UnifiedCacheExplicitAndMappedAccessAgree) {
  // The dual-caching problem of section 3.2 cannot occur: mapped writes are
  // visible through explicit reads and vice versa, with no flush in between.
  Cache* cache = *vm_.CacheCreate(&driver_, "file");
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x50000, kPage, Prot::kReadWrite, *cache, 0).ok());
  AsId as = context_->address_space();

  const char via_map[] = "written through the mapping";
  ASSERT_EQ(vm_.cpu().Write(as, 0x50000, via_map, sizeof(via_map)), Status::kOk);
  char via_cache[sizeof(via_map)] = {};
  ASSERT_EQ(cache->Read(0, via_cache, sizeof(via_cache)), Status::kOk);
  EXPECT_STREQ(via_cache, via_map);

  const char via_copy[] = "written through cache.write";
  ASSERT_EQ(cache->Write(100, via_copy, sizeof(via_copy)), Status::kOk);
  char back[sizeof(via_copy)] = {};
  ASSERT_EQ(vm_.cpu().Read(as, 0x50000 + 100, back, sizeof(back)), Status::kOk);
  EXPECT_STREQ(back, via_copy);
}

TEST_F(PvmBasicTest, RegionSplitKeepsBothHalvesWorking) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  Region* region =
      *vm_.RegionCreate(*context_, 0x60000, 4 * kPage, Prot::kReadWrite, *cache, 0);
  AsId as = context_->address_space();
  // Touch a page in each half before splitting.
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(as, 0x60000, 0xaaaa), Status::kOk);
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(as, 0x60000 + 3 * kPage, 0xbbbb), Status::kOk);

  Region* upper = *region->Split(2 * kPage);
  RegionStatus lower_status = region->GetStatus();
  RegionStatus upper_status = upper->GetStatus();
  EXPECT_EQ(lower_status.size, 2 * kPage);
  EXPECT_EQ(upper_status.address, 0x60000 + 2 * kPage);
  EXPECT_EQ(upper_status.offset, 2 * kPage);

  // Both halves still read their data.
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(as, 0x60000), 0xaaaau);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(as, 0x60000 + 3 * kPage), 0xbbbbu);

  // Protections become independent.
  ASSERT_EQ(upper->SetProtection(Prot::kRead), Status::kOk);
  EXPECT_EQ(vm_.cpu().Store<uint32_t>(as, 0x60000 + 3 * kPage, 1), Status::kProtectionFault);
  EXPECT_EQ(vm_.cpu().Store<uint32_t>(as, 0x60000, 1), Status::kOk);

  // Destroying one half leaves the other intact.
  ASSERT_EQ(upper->Destroy(), Status::kOk);
  EXPECT_EQ(vm_.cpu().Load<uint32_t>(as, 0x60000 + 3 * kPage).status(),
            Status::kSegmentationFault);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(as, 0x60000), 1u);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmBasicTest, SplitValidation) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  Region* region =
      *vm_.RegionCreate(*context_, 0x60000, 2 * kPage, Prot::kRead, *cache, 0);
  EXPECT_EQ(region->Split(0).status(), Status::kInvalidArgument);
  EXPECT_EQ(region->Split(2 * kPage).status(), Status::kInvalidArgument);
  EXPECT_EQ(region->Split(kPage / 2).status(), Status::kInvalidArgument);
}

TEST_F(PvmBasicTest, GetRegionListIsSorted) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  ASSERT_TRUE(vm_.RegionCreate(*context_, 0x30000, kPage, Prot::kRead, *cache, 0).ok());
  ASSERT_TRUE(vm_.RegionCreate(*context_, 0x10000, kPage, Prot::kRead, *cache, kPage).ok());
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x20000, kPage, Prot::kRead, *cache, 2 * kPage).ok());
  auto list = context_->GetRegionList();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].address, 0x10000u);
  EXPECT_EQ(list[1].address, 0x20000u);
  EXPECT_EQ(list[2].address, 0x30000u);
}

TEST_F(PvmBasicTest, ContextDestroyReclaimsEverything) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x10000, 4 * kPage, Prot::kReadWrite, *cache, 0).ok());
  AsId as = context_->address_space();
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(vm_.cpu().Store<uint32_t>(as, 0x10000 + i * kPage, i), Status::kOk);
  }
  size_t used_before = memory_.used_frames();
  EXPECT_GE(used_before, 4u);
  ASSERT_EQ(context_->Destroy(), Status::kOk);
  context_ = *vm_.ContextCreate();
  // The cache still holds the pages (regions only unmap); destroy it too.
  ASSERT_EQ(cache->Destroy(), Status::kOk);
  EXPECT_EQ(memory_.used_frames(), 0u);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmBasicTest, CacheDestroyWhileMappedIsBusy) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  Region* region = *vm_.RegionCreate(*context_, 0x10000, kPage, Prot::kRead, *cache, 0);
  EXPECT_EQ(cache->Destroy(), Status::kBusy);
  ASSERT_EQ(region->Destroy(), Status::kOk);
  EXPECT_EQ(cache->Destroy(), Status::kOk);
}

TEST_F(PvmBasicTest, SharedCacheBetweenContexts) {
  // "A given segment may be mapped into any number of regions, allocated to any
  // number of contexts" (section 3.2).
  Cache* cache = *vm_.CacheCreate(nullptr, "shared");
  Context* other = *vm_.ContextCreate();
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x10000, kPage, Prot::kReadWrite, *cache, 0).ok());
  ASSERT_TRUE(vm_.RegionCreate(*other, 0x90000, kPage, Prot::kReadWrite, *cache, 0).ok());

  ASSERT_EQ(vm_.cpu().Store<uint32_t>(context_->address_space(), 0x10000, 0xfeed),
            Status::kOk);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(other->address_space(), 0x90000), 0xfeedu);
  // And the other way.
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(other->address_space(), 0x90000, 0xf00d), Status::kOk);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(context_->address_space(), 0x10000), 0xf00du);
  ASSERT_EQ(other->Destroy(), Status::kOk);
}

TEST_F(PvmBasicTest, WindowedMappingUsesRegionOffset) {
  // A region may be "a window into part of" a segment.
  Cache* cache = *vm_.CacheCreate(&driver_, "file");
  std::vector<char> data(4 * kPage);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i / kPage + 1);
  }
  driver_.Preload(0, data.data(), data.size());
  // Map only pages 2..3 of the segment.
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x70000, 2 * kPage, Prot::kRead, *cache, 2 * kPage).ok());
  char c = 0;
  ASSERT_EQ(vm_.cpu().Read(context_->address_space(), 0x70000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 3);  // page index 2 has value 3
}

TEST_F(PvmBasicTest, SizeIndependenceOfSparseRegions) {
  // Section 4.1: structures scale with resident memory, not with region size.
  Cache* cache = *vm_.CacheCreate(nullptr, "huge");
  const uint64_t kHuge = 1ull << 40;  // 1 TiB region
  Region* region = *vm_.RegionCreate(*context_, 0x100000, kHuge, Prot::kReadWrite, *cache, 0);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(vm_.GlobalMapEntries(), 0u);
  EXPECT_EQ(memory_.used_frames(), 0u);
  // Touch three scattered pages.
  AsId as = context_->address_space();
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(as, 0x100000, 1), Status::kOk);
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(as, 0x100000 + (1ull << 30), 2), Status::kOk);
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(as, 0x100000 + (1ull << 39), 3), Status::kOk);
  EXPECT_EQ(vm_.GlobalMapEntries(), 3u);
  EXPECT_EQ(memory_.used_frames(), 3u);
  // Destroying the region is O(resident), and works.
  ASSERT_EQ(region->Destroy(), Status::kOk);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmBasicTest, LockInMemoryPreventsEviction) {
  // Small memory + pageout enabled; a locked region's pages must survive pressure.
  PhysicalMemory small(8, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 2;
  options.high_water_frames = 3;
  PagedVm vm(small, mmu, options);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);
  Context* ctx = *vm.ContextCreate();
  Cache* locked_cache = *vm.CacheCreate(nullptr, "locked");
  Cache* churn_cache = *vm.CacheCreate(nullptr, "churn");
  Region* locked =
      *vm.RegionCreate(*ctx, 0x10000, 2 * kPage, Prot::kReadWrite, *locked_cache, 0);
  ASSERT_TRUE(
      vm.RegionCreate(*ctx, 0x80000, 16 * kPage, Prot::kReadWrite, *churn_cache, 0).ok());

  AsId as = ctx->address_space();
  ASSERT_EQ(vm.cpu().Store<uint32_t>(as, 0x10000, 0x11), Status::kOk);
  ASSERT_EQ(vm.cpu().Store<uint32_t>(as, 0x10000 + kPage, 0x22), Status::kOk);
  ASSERT_EQ(locked->LockInMemory(), Status::kOk);

  // Churn through more memory than exists.
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(vm.cpu().Store<uint32_t>(as, 0x80000 + i * kPage, i), Status::kOk);
  }
  // The locked pages never faulted out: accesses must not call the fault handler.
  uint64_t faults_before = vm.stats().page_faults;
  EXPECT_EQ(*vm.cpu().Load<uint32_t>(as, 0x10000), 0x11u);
  EXPECT_EQ(*vm.cpu().Load<uint32_t>(as, 0x10000 + kPage), 0x22u);
  EXPECT_EQ(vm.stats().page_faults, faults_before);

  ASSERT_EQ(locked->Unlock(), Status::kOk);
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

TEST_F(PvmBasicTest, PageOutAndBackThroughSwap) {
  PhysicalMemory small(6, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 2;
  options.high_water_frames = 3;
  PagedVm vm(small, mmu, options);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);
  Context* ctx = *vm.ContextCreate();
  Cache* cache = *vm.CacheCreate(nullptr, "anon");
  ASSERT_TRUE(vm.RegionCreate(*ctx, 0x10000, 12 * kPage, Prot::kReadWrite, *cache, 0).ok());
  AsId as = ctx->address_space();
  // Write 12 pages into 6 frames of memory: page-out must kick in.
  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(vm.cpu().Store<uint32_t>(as, 0x10000 + i * kPage, 0xC0DE0000 + i), Status::kOk);
  }
  EXPECT_GE(vm.stats().pages_paged_out, 6u);
  EXPECT_GE(registry.segments_created, 1);
  // Everything reads back correctly (pull-ins from swap).
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(*vm.cpu().Load<uint32_t>(as, 0x10000 + i * kPage), 0xC0DE0000u + i) << i;
  }
  EXPECT_GE(vm.stats().pull_ins, 1u);
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

TEST_F(PvmBasicTest, GetWriteAccessUpcallOnReadOnlyFill) {
  driver_.read_only_fills = true;
  Cache* cache = *vm_.CacheCreate(&driver_, "coherent");
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x10000, kPage, Prot::kReadWrite, *cache, 0).ok());
  AsId as = context_->address_space();
  char c = 0;
  ASSERT_EQ(vm_.cpu().Read(as, 0x10000, &c, 1), Status::kOk);
  // Write triggers the getWriteAccess upcall; the driver grants it.
  ASSERT_EQ(vm_.cpu().Write(as, 0x10000, &c, 1), Status::kOk);
  EXPECT_EQ(driver_.write_access_requests, 1);
  // Denied write access surfaces as a protection fault.
  driver_.grant_write_access = false;
  Cache* cache2 = *vm_.CacheCreate(&driver_, "coherent2");
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x20000, kPage, Prot::kReadWrite, *cache2, 0).ok());
  ASSERT_EQ(vm_.cpu().Read(as, 0x20000, &c, 1), Status::kOk);
  EXPECT_EQ(vm_.cpu().Write(as, 0x20000, &c, 1), Status::kProtectionFault);
}

TEST_F(PvmBasicTest, FlushPushesDataToSegment) {
  Cache* cache = *vm_.CacheCreate(&driver_, "file");
  const char msg[] = "persist me";
  ASSERT_EQ(cache->Write(0, msg, sizeof(msg)), Status::kOk);
  EXPECT_EQ(driver_.push_outs, 0);
  ASSERT_EQ(cache->Sync(), Status::kOk);
  EXPECT_EQ(driver_.push_outs, 1);
  ASSERT_TRUE(driver_.HasPage(0));
  EXPECT_EQ(std::memcmp(driver_.PageData(0).data(), msg, sizeof(msg)), 0);
  // Sync keeps the page cached; Flush discards it.
  EXPECT_EQ(cache->ResidentPages(), 1u);
  ASSERT_EQ(cache->Flush(), Status::kOk);
  EXPECT_EQ(cache->ResidentPages(), 0u);
  // Data still readable (pull-in).
  char back[sizeof(msg)] = {};
  ASSERT_EQ(cache->Read(0, back, sizeof(back)), Status::kOk);
  EXPECT_STREQ(back, msg);
}

TEST_F(PvmBasicTest, InvalidateDiscardsWithoutSaving) {
  Cache* cache = *vm_.CacheCreate(&driver_, "file");
  const char original[] = "original";
  driver_.Preload(0, original, sizeof(original));
  const char modified[] = "modified";
  ASSERT_EQ(cache->Write(0, modified, sizeof(modified)), Status::kOk);
  ASSERT_EQ(cache->Invalidate(0, kPage), Status::kOk);
  char back[sizeof(original)] = {};
  ASSERT_EQ(cache->Read(0, back, sizeof(back)), Status::kOk);
  EXPECT_STREQ(back, original);  // the modification was dropped
}

TEST_F(PvmBasicTest, HardOutOfMemoryWithoutPager) {
  PhysicalMemory tiny(2, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 0;  // no pager
  PagedVm vm(tiny, mmu, options);
  Context* ctx = *vm.ContextCreate();
  Cache* cache = *vm.CacheCreate(nullptr, "anon");
  ASSERT_TRUE(vm.RegionCreate(*ctx, 0x10000, 4 * kPage, Prot::kReadWrite, *cache, 0).ok());
  AsId as = ctx->address_space();
  ASSERT_EQ(vm.cpu().Store<uint32_t>(as, 0x10000, 1), Status::kOk);
  ASSERT_EQ(vm.cpu().Store<uint32_t>(as, 0x10000 + kPage, 2), Status::kOk);
  EXPECT_EQ(vm.cpu().Store<uint32_t>(as, 0x10000 + 2 * kPage, 3), Status::kNoMemory);
}

}  // namespace
}  // namespace gvm
