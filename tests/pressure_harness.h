// Seeded overcommit-pressure chaos harness, shared by tests/pressure_test.cc
// and the tools/ repro+minimize drivers.
//
// One run builds a full kernel world with the paging daemon armed — PagedVm
// over a deliberately tiny frame pool, Nucleus, a JournaledSwapMapper behind a
// MapperServer as the default mapper — then commits several times physical
// memory across many address spaces and hammers it from one worker thread per
// space.  Each worker keeps a private shadow oracle of every acknowledged
// 8-byte write (spaces are disjoint, so every oracle has a single writer); the
// run fails if an acknowledged value is ever lost, if the world deadlocks, or
// if the PVM's structural invariants break at quiesce.  Optional fault specs
// (lowmem / pageoutstall / crashmidbatch / the crash-class sites) turn the
// storm into a chaos run; a supervisor thread recovers the mapper whenever it
// dies, exactly as in tests/crash_harness.h.
#ifndef GVM_TESTS_PRESSURE_HARNESS_H_
#define GVM_TESTS_PRESSURE_HARNESS_H_

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/hal/soft_mmu.h"
#include "src/nucleus/journal_mapper.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"
#include "src/util/rng.h"
#include "tests/crash_harness.h"

namespace gvm {

struct PressureStormConfig {
  uint64_t seed = 1;
  // Injector plan specs, e.g. {"lowmem:prob:16"}; see FaultInjector::ApplySpec.
  std::vector<std::string> fault_specs;
  int address_spaces = 8;  // one worker thread per space
  int steps_per_thread = 200;
  size_t frames = 32;
  // Pages mapped per space; the default commits 8*12 = 96 pages over 32
  // frames — 3x overcommit.
  size_t commit_pages_per_space = 12;
  size_t working_set_limit_pages = 0;   // 0 = uncapped
  uint64_t thrash_ewma_threshold = 0;   // 0 = throttle off
  bool use_ipc_transport = false;
  bool enable_tlb = true;
  // Transparent huge pages (DESIGN.md §16): huge_pages sets the MMU's second
  // granule in base pages (0 = no second granule), transparent_huge arms
  // fault-time promotion.  Both on makes the storm race promotion, split-on-
  // COW demotion and pageout demotion against the acknowledged-write oracle.
  size_t huge_pages = 0;
  bool transparent_huge = false;
};

struct PressureStormReport {
  bool ok = false;
  std::string failure;  // empty when ok; includes a stats dump otherwise
  uint64_t nomemory_errors = 0;  // kNoMemory surfaced to a worker access
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t mapper_reads = 0;
  uint64_t mapper_writes = 0;
  PvmDetailStats detail;  // snapshot at quiesce
};

inline PressureStormReport RunPressureStorm(const PressureStormConfig& config) {
  constexpr size_t kPage = 4096;
  PressureStormReport report;

  PhysicalMemory memory(config.frames, kPage);
  SoftMmu mmu(kPage, 10, config.huge_pages);
  PagedVm::Options options;
  options.enable_tlb = config.enable_tlb;
  options.transparent_huge = config.transparent_huge;
  options.low_water_frames = 4;
  options.high_water_frames = 8;
  options.pageout_daemon = true;
  options.daemon_wake_frames = 6;
  options.working_set_limit_pages = config.working_set_limit_pages;
  options.thrash_ewma_threshold = config.thrash_ewma_threshold;
  PagedVm vm(memory, mmu, options);
  Nucleus::Options nucleus_options;
  nucleus_options.segment_manager.use_ipc_transport = config.use_ipc_transport;
  nucleus_options.segment_manager.rpc_deadline_us = 200'000;
  Nucleus nucleus(vm, nucleus_options);
  JournalStore store(kPage);
  JournaledSwapMapper mapper(store);
  MapperServer server(nucleus.ipc(), mapper);
  nucleus.BindDefaultMapper(&server);
  if (config.use_ipc_transport) {
    server.Start();
  }
  FaultInjector injector(config.seed);
  mapper.BindFaultInjector(&injector);
  server.BindFaultInjector(&injector);
  // The PagedVm pressure sites (lowmem, pageoutstall) are evaluated through
  // the memory's bound injector.
  memory.BindFaultInjector(&injector);
  for (const std::string& spec : config.fault_specs) {
    std::string error;
    if (!injector.ApplySpec(spec, &error)) {
      report.failure = "bad fault spec '" + spec + "': " + error;
      return report;
    }
  }
  SegmentManager& sm = nucleus.segment_manager();

  // The daemon upcalls into the segment manager, so it must be quiesced
  // before the Nucleus above dies: this guard, declared after the Nucleus,
  // destructs first.
  struct DaemonStopGuard {
    PagedVm* vm;
    ~DaemonStopGuard() { vm->StopPageoutDaemon(); }
  } daemon_guard{&vm};

  // Build the overcommitted worlds: one context + temporary cache + region
  // per space.
  const size_t span_pages = config.commit_pages_per_space;
  const Vaddr base = 0x100000;
  std::vector<Context*> contexts;
  std::vector<Cache*> caches;
  std::vector<Region*> regions;
  for (int i = 0; i < config.address_spaces; ++i) {
    Result<Context*> ctx = vm.ContextCreate();
    Result<Cache*> cache = sm.AcquireTemporaryCache("press" + std::to_string(i));
    if (!ctx.ok() || !cache.ok()) {
      report.failure = "world setup failed";
      return report;
    }
    Result<Region*> region =
        vm.RegionCreate(**ctx, base, span_pages * kPage, Prot::kReadWrite, **cache, 0);
    if (!region.ok()) {
      report.failure = "RegionCreate failed";
      return report;
    }
    contexts.push_back(*ctx);
    caches.push_back(*cache);
    regions.push_back(*region);
  }

  // The supervisor: revive the mapper whenever a chaos plan kills it.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> recoveries{0};
  std::thread supervisor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (server.crashed()) {
        RecoverAndRestart(mapper, server, sm);
        recoveries.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::atomic<bool> failed{false};
  std::atomic<uint64_t> nomemory{0};
  std::vector<std::string> thread_failures(static_cast<size_t>(config.address_spaces));
  std::vector<std::vector<uint64_t>> oracles(
      static_cast<size_t>(config.address_spaces),
      std::vector<uint64_t>(span_pages, 0));  // 0 = never written (zero-fill)
  std::vector<std::thread> workers;
  for (int t = 0; t < config.address_spaces; ++t) {
    workers.emplace_back([&, t] {
      const AsId as = contexts[static_cast<size_t>(t)]->address_space();
      std::vector<uint64_t>& oracle = oracles[static_cast<size_t>(t)];
      Rng rng(config.seed * 9176 + static_cast<uint64_t>(t) + 1);
      uint64_t next_value = (static_cast<uint64_t>(t) << 48) | 1;
      for (int step = 0; step < config.steps_per_thread && !failed.load(); ++step) {
        const size_t p = rng.Below(span_pages);
        const Vaddr va = base + p * kPage;  // one slot per page, page-aligned
        if (rng.Below(100) < 60) {
          const uint64_t value = next_value++;
          Status s = vm.cpu().Write(as, va, &value, sizeof(value));
          if (s == Status::kOk) {
            oracle[p] = value;  // acknowledged: must never be lost
          } else if (s == Status::kNoMemory) {
            nomemory.fetch_add(1, std::memory_order_relaxed);
          }
          // Other errors (degraded segment mid-crash) leave the slot intact:
          // an 8-byte in-page write either faults in fully or not at all.
        } else {
          uint64_t got = 0;
          Status s = vm.cpu().Read(as, va, &got, sizeof(got));
          if (s == Status::kOk && got != oracle[p]) {
            std::ostringstream msg;
            msg << "space " << t << " page " << p << " read " << got
                << " but acknowledged history says " << oracle[p] << " (step "
                << step << ")";
            thread_failures[static_cast<size_t>(t)] = msg.str();
            failed.store(true);
            return;
          }
          if (s == Status::kNoMemory) {
            nomemory.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  // Quiesce: stop injecting, let the supervisor finish any outstanding
  // recovery, then verify every acknowledged value survived the storm.
  injector.ClearAllPlans();
  for (int attempt = 0; attempt < 2000 && server.crashed(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  std::string verify_failure;
  for (int t = 0; t < config.address_spaces && verify_failure.empty(); ++t) {
    const AsId as = contexts[static_cast<size_t>(t)]->address_space();
    for (size_t p = 0; p < span_pages; ++p) {
      uint64_t got = 0;
      Status s = Status::kBusError;
      for (int attempt = 0; attempt < 2000; ++attempt) {
        s = vm.cpu().Read(as, base + p * kPage, &got, sizeof(got));
        if (s == Status::kOk) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      if (s != Status::kOk) {
        verify_failure = "final read never succeeded for space " + std::to_string(t);
        break;
      }
      if (got != oracles[static_cast<size_t>(t)][p]) {
        std::ostringstream msg;
        msg << "dirty data lost: space " << t << " page " << p << " holds " << got
            << " but acknowledged history says " << oracles[static_cast<size_t>(t)][p];
        verify_failure = msg.str();
        break;
      }
    }
  }
  stop.store(true, std::memory_order_release);
  supervisor.join();
  if (config.use_ipc_transport) {
    server.Stop();
  }

  report.crashes = server.crashes();
  report.recoveries = recoveries.load();
  report.nomemory_errors = nomemory.load();
  report.detail = vm.detail_stats();
  report.mapper_reads = sm.stats().mapper_reads;
  report.mapper_writes = sm.stats().mapper_writes;

  std::ostringstream failure;
  for (const std::string& tf : thread_failures) {
    if (!tf.empty()) {
      failure << tf << "; ";
    }
  }
  if (!verify_failure.empty()) {
    failure << verify_failure << "; ";
  }
  if (vm.InTransitCount() != 0) {
    failure << "pages left in transit; ";
  }
  if (vm.SyncStubCount() != 0) {
    failure << "sync stubs leaked; ";
  }
  if (vm.CheckInvariants() != Status::kOk) {
    failure << "PVM invariants violated; ";
  }
  for (Region* region : regions) {
    (void)region->Destroy();
  }
  for (Context* ctx : contexts) {
    (void)ctx->Destroy();
  }
  for (Cache* cache : caches) {
    sm.Release(cache);
  }
  if (failure.str().empty()) {
    report.ok = true;
  } else {
    std::ostringstream out;
    out << "pressure storm failed (seed=" << config.seed
        << " spaces=" << config.address_spaces << " frames=" << config.frames
        << " commit=" << span_pages << "p/space specs=[";
    for (const std::string& spec : config.fault_specs) {
      out << spec << " ";
    }
    out << "]): " << failure.str() << "\n"
        << "crashes=" << report.crashes << " recoveries=" << report.recoveries
        << " nomemory=" << report.nomemory_errors << "\n"
        << vm.DumpStats();
    report.failure = out.str();
  }
  return report;
}

}  // namespace gvm

#endif  // GVM_TESTS_PRESSURE_HARNESS_H_
