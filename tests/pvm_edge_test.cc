// PVM edge cases: interactions between the mechanisms — windows + deferred copies,
// mixed per-page/history policies on the same caches, locking against copies,
// move with dependants, swapped-out sources of deferred copies, stressed
// fragment arithmetic.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/pvm/paged_vm.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

class PvmEdgeTest : public ::testing::Test {
 protected:
  PvmEdgeTest() : memory_(256, kPage), mmu_(kPage), vm_(memory_, mmu_), registry_(kPage) {
    vm_.BindSegmentRegistry(&registry_);
    context_ = *vm_.ContextCreate();
  }

  Cache* MakeFilled(const std::string& name, int pages, char tag) {
    Cache* cache = *vm_.CacheCreate(nullptr, name);
    std::vector<char> data(kPage);
    for (int i = 0; i < pages; ++i) {
      std::memset(data.data(), tag + i, kPage);
      EXPECT_EQ(cache->Write(i * kPage, data.data(), kPage), Status::kOk);
    }
    return cache;
  }

  char At(Cache& cache, SegOffset off) {
    char c = 0;
    EXPECT_EQ(cache.Read(off, &c, 1), Status::kOk);
    return c;
  }

  PhysicalMemory memory_;
  SoftMmu mmu_;
  PagedVm vm_;
  TestSwapRegistry registry_;
  Context* context_;
};

TEST_F(PvmEdgeTest, WindowRegionOverDeferredCopy) {
  // Map a window into the middle of a cache that is itself a deferred copy.
  Cache* src = MakeFilled("src", 4, 'a');
  Cache* copy = *vm_.CacheCreate(nullptr, "copy");
  ASSERT_EQ(src->CopyTo(*copy, 0, 0, 4 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x10000, 2 * kPage, Prot::kReadWrite, *copy, kPage).ok());
  AsId as = context_->address_space();
  char c = 0;
  ASSERT_EQ(vm_.cpu().Read(as, 0x10000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'b');  // page 1 of the copy, via the window
  // Write through the window; only the copy diverges.
  c = 'Z';
  ASSERT_EQ(vm_.cpu().Write(as, 0x10000 + kPage, &c, 1), Status::kOk);
  EXPECT_EQ(At(*copy, 2 * kPage), 'Z');
  EXPECT_EQ(At(*src, 2 * kPage), 'c');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, MixedPoliciesOnTheSamePair) {
  // History copy over one range, per-page copy over another, same src -> dst.
  Cache* src = MakeFilled("src", 6, 'a');
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  ASSERT_EQ(src->CopyTo(*dst, 0, 0, 3 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_EQ(src->CopyTo(*dst, 3 * kPage, 3 * kPage, 3 * kPage, CopyPolicy::kPerPage),
            Status::kOk);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(At(*dst, i * kPage), static_cast<char>('a' + i)) << i;
  }
  // Writes on both sides of both ranges keep everyone isolated.
  char v = 'X';
  ASSERT_EQ(src->Write(kPage, &v, 1), Status::kOk);       // history range
  ASSERT_EQ(src->Write(4 * kPage, &v, 1), Status::kOk);   // per-page range
  ASSERT_EQ(dst->Write(2 * kPage, &v, 1), Status::kOk);
  ASSERT_EQ(dst->Write(5 * kPage, &v, 1), Status::kOk);
  EXPECT_EQ(At(*dst, kPage), 'b');
  EXPECT_EQ(At(*dst, 4 * kPage), 'e');
  EXPECT_EQ(At(*src, 2 * kPage), 'c');
  EXPECT_EQ(At(*src, 5 * kPage), 'f');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, LockedRegionSurvivesBecomingACopySource) {
  Cache* cache = MakeFilled("locked", 2, 'a');
  Region* region =
      *vm_.RegionCreate(*context_, 0x10000, 2 * kPage, Prot::kReadWrite, *cache, 0);
  ASSERT_EQ(region->LockInMemory(), Status::kOk);
  // Copy the locked cache: its pages get COW-protected, but they may not be
  // evicted and data stays correct.
  Cache* copy = *vm_.CacheCreate(nullptr, "copy");
  ASSERT_EQ(cache->CopyTo(*copy, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  AsId as = context_->address_space();
  char v = 'W';
  // Writing the locked region now takes a COW fault (documented deviation from
  // hard real-time), but must succeed and preserve the copy's snapshot.
  ASSERT_EQ(vm_.cpu().Write(as, 0x10000, &v, 1), Status::kOk);
  EXPECT_EQ(At(*copy, 0), 'a');
  EXPECT_EQ(At(*cache, 0), 'W');
  ASSERT_EQ(region->Unlock(), Status::kOk);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, CannotDestroyLockedRegion) {
  Cache* cache = *vm_.CacheCreate(nullptr, "c");
  Region* region =
      *vm_.RegionCreate(*context_, 0x10000, kPage, Prot::kReadWrite, *cache, 0);
  ASSERT_EQ(region->LockInMemory(), Status::kOk);
  EXPECT_EQ(region->Destroy(), Status::kLocked);
  EXPECT_EQ(region->Split(0).status(), Status::kInvalidArgument);
  ASSERT_EQ(region->Unlock(), Status::kOk);
  EXPECT_EQ(region->Destroy(), Status::kOk);
}

TEST_F(PvmEdgeTest, CacheLevelLockPinsAgainstEviction) {
  PhysicalMemory small(8, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 2;
  options.high_water_frames = 3;
  PagedVm vm(small, mmu, options);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);
  Cache* pinned = *vm.CacheCreate(nullptr, "pinned");
  char v = 'p';
  ASSERT_EQ(pinned->Write(0, &v, 1), Status::kOk);
  ASSERT_EQ(pinned->LockInMemory(0, kPage), Status::kOk);
  Cache* churn = *vm.CacheCreate(nullptr, "churn");
  std::vector<char> junk(kPage, 'j');
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(churn->Write(i * kPage, junk.data(), kPage), Status::kOk);
  }
  EXPECT_EQ(pinned->ResidentPages(), 1u);  // never evicted
  ASSERT_EQ(pinned->Unlock(0, kPage), Status::kOk);
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, DeferredCopyOfASwappedOutSource) {
  // The section 4.2 caveat made real: the source's pages are on swap when the
  // copy is taken and when its values are demanded.
  PhysicalMemory small(10, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 2;
  options.high_water_frames = 3;
  PagedVm vm(small, mmu, options);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);

  Cache* src = *vm.CacheCreate(nullptr, "src");
  std::vector<char> data(kPage);
  for (int i = 0; i < 4; ++i) {
    std::memset(data.data(), 'a' + i, kPage);
    ASSERT_EQ(src->Write(i * kPage, data.data(), kPage), Status::kOk);
  }
  // Push src out of memory.
  Cache* churn = *vm.CacheCreate(nullptr, "churn");
  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(churn->Write(i * kPage, data.data(), kPage), Status::kOk);
  }
  // Copy the (now non-resident) source, then write to it; the copy still sees
  // the swap-resident originals.
  Cache* copy = *vm.CacheCreate(nullptr, "copy");
  ASSERT_EQ(src->CopyTo(*copy, 0, 0, 4 * kPage, CopyPolicy::kHistory), Status::kOk);
  char v = 'Z';
  ASSERT_EQ(src->Write(0, &v, 1), Status::kOk);
  char c = 0;
  ASSERT_EQ(copy->Read(0, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'a');
  ASSERT_EQ(copy->Read(3 * kPage, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'd');
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, MoveOutFromUnderAHistoryChild) {
  // Source has a deferred-copy child; then the source's content is moved away.
  // The child must keep its snapshot (secured before the move).
  Cache* src = MakeFilled("src", 2, 'a');
  Cache* child = *vm_.CacheCreate(nullptr, "child");
  ASSERT_EQ(src->CopyTo(*child, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  Cache* sink = *vm_.CacheCreate(nullptr, "sink");
  ASSERT_EQ(src->MoveTo(*sink, 0, 0, 2 * kPage), Status::kOk);
  EXPECT_EQ(At(*sink, 0), 'a');
  EXPECT_EQ(At(*child, 0), 'a');
  EXPECT_EQ(At(*child, kPage), 'b');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, ChainedPerPageStubs) {
  // dst2 copies from dst1 which itself holds stubs onto src: stub chains must
  // flatten to the shared source page.
  Cache* src = MakeFilled("src", 1, 'a');
  Cache* dst1 = *vm_.CacheCreate(nullptr, "dst1");
  ASSERT_EQ(src->CopyTo(*dst1, 0, 0, kPage, CopyPolicy::kPerPage), Status::kOk);
  Cache* dst2 = *vm_.CacheCreate(nullptr, "dst2");
  ASSERT_EQ(dst1->CopyTo(*dst2, 0, 0, kPage, CopyPolicy::kPerPage), Status::kOk);
  EXPECT_EQ(At(*dst2, 0), 'a');
  char v = 'X';
  ASSERT_EQ(src->Write(0, &v, 1), Status::kOk);
  EXPECT_EQ(At(*dst1, 0), 'a');
  EXPECT_EQ(At(*dst2, 0), 'a');
  EXPECT_EQ(At(*src, 0), 'X');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, SelfCopyWithinACacheIsEager) {
  Cache* cache = MakeFilled("c", 3, 'a');
  // Overlapping self-copy must behave like memmove.
  ASSERT_EQ(cache->CopyTo(*cache, 0, kPage, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  EXPECT_EQ(At(*cache, 0), 'a');
  EXPECT_EQ(At(*cache, kPage), 'a');
  EXPECT_EQ(At(*cache, 2 * kPage), 'b');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, MutualCopiesBetweenTwoCaches) {
  // A then B, B then A — the walk crosses both parent lists without cycling.
  Cache* a = MakeFilled("A", 2, 'a');
  Cache* b = MakeFilled("B", 2, 'p');
  ASSERT_EQ(a->CopyTo(*b, 0, 0, kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_EQ(b->CopyTo(*a, kPage, kPage, kPage, CopyPolicy::kHistory), Status::kOk);
  EXPECT_EQ(At(*b, 0), 'a');      // from A
  EXPECT_EQ(At(*a, kPage), 'q');  // from B page 1
  char v = '!';
  ASSERT_EQ(a->Write(0, &v, 1), Status::kOk);
  ASSERT_EQ(b->Write(kPage, &v, 1), Status::kOk);
  EXPECT_EQ(At(*b, 0), 'a');
  EXPECT_EQ(At(*a, kPage), 'q');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, RandomFragmentCopyStress) {
  // Dense random sub-page-range copies across a small cache population, checked
  // against a byte-level model (like the property test but with unaligned eager
  // ranges interleaved with aligned deferred ones, same seed both sides).
  constexpr size_t kBytes = 6 * kPage;
  Rng rng(2024);
  std::vector<std::vector<char>> model(4, std::vector<char>(kBytes, 0));
  std::vector<Cache*> caches;
  for (int i = 0; i < 4; ++i) {
    caches.push_back(*vm_.CacheCreate(nullptr, "s" + std::to_string(i)));
  }
  for (int step = 0; step < 120; ++step) {
    int op = static_cast<int>(rng.Below(3));
    int x = static_cast<int>(rng.Below(4));
    int y = static_cast<int>(rng.Below(4));
    if (op == 0) {
      size_t off = rng.Below(kBytes - 64);
      char v = static_cast<char>(rng.Below(256));
      std::vector<char> chunk(1 + rng.Below(64), v);
      ASSERT_EQ(caches[x]->Write(off, chunk.data(), chunk.size()), Status::kOk);
      std::memcpy(model[x].data() + off, chunk.data(), chunk.size());
    } else if (op == 1 && x != y) {
      // Aligned deferred copy.
      size_t pages = 1 + rng.Below(3);
      size_t sp = rng.Below(6 - pages + 1);
      size_t dp = rng.Below(6 - pages + 1);
      CopyPolicy policy = rng.Chance(1, 2) ? CopyPolicy::kHistory : CopyPolicy::kPerPage;
      ASSERT_EQ(caches[x]->CopyTo(*caches[y], sp * kPage, dp * kPage, pages * kPage, policy),
                Status::kOk);
      std::memmove(model[y].data() + dp * kPage, model[x].data() + sp * kPage,
                   pages * kPage);
    } else if (x != y) {
      // Unaligned eager copy.
      size_t size = 1 + rng.Below(2 * kPage);
      size_t sp = rng.Below(kBytes - size);
      size_t dp = rng.Below(kBytes - size);
      ASSERT_EQ(caches[x]->CopyTo(*caches[y], sp, dp, size, CopyPolicy::kEager), Status::kOk);
      std::memmove(model[y].data() + dp, model[x].data() + sp, size);
    }
  }
  for (int i = 0; i < 4; ++i) {
    std::vector<char> got(kBytes);
    ASSERT_EQ(caches[i]->Read(0, got.data(), kBytes), Status::kOk);
    ASSERT_EQ(std::memcmp(got.data(), model[i].data(), kBytes), 0) << "cache " << i;
  }
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, HugeOffsetsDeepInTheSegment) {
  // Segments are large and sparse: offsets far beyond 4 GiB work.
  Cache* cache = *vm_.CacheCreate(nullptr, "deep");
  const SegOffset kDeep = (1ull << 42) + 7 * kPage;
  char v = 'D';
  ASSERT_EQ(cache->Write(kDeep, &v, 1), Status::kOk);
  EXPECT_EQ(At(*cache, kDeep), 'D');
  EXPECT_EQ(cache->ResidentPages(), 1u);
  // Deferred-copy the deep fragment to offset 0 of another cache.
  Cache* copy = *vm_.CacheCreate(nullptr, "copy");
  ASSERT_EQ(cache->CopyTo(*copy, kDeep - 7, 0, kPage, CopyPolicy::kEager), Status::kOk);
  EXPECT_EQ(At(*copy, 7), 'D');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, DestroyWithDependentsKeepsDataReachable) {
  Cache* src = MakeFilled("src", 1, 'a');
  Cache* copy = *vm_.CacheCreate(nullptr, "copy");
  ASSERT_EQ(src->CopyTo(*copy, 0, 0, kPage, CopyPolicy::kHistory), Status::kOk);
  // Destroy invalidates the handle: the cache either dies in place (kept for the
  // copy) or is collapsed into it — either way the copy's data survives.
  ASSERT_EQ(src->Destroy(), Status::kOk);
  EXPECT_EQ(At(*copy, 0), 'a');
  char v = 'Q';
  ASSERT_EQ(copy->Write(0, &v, 1), Status::kOk);
  EXPECT_EQ(At(*copy, 0), 'Q');
  ASSERT_EQ(copy->Destroy(), Status::kOk);
  EXPECT_EQ(vm_.CacheCount(), 0u);
  EXPECT_EQ(memory_.used_frames(), 0u);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmEdgeTest, ZeroLengthAndFullRangeCopies) {
  Cache* src = MakeFilled("src", 2, 'a');
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  EXPECT_EQ(src->CopyTo(*dst, 0, 0, 0, CopyPolicy::kHistory), Status::kOk);  // no-op
  EXPECT_EQ(dst->ResidentPages(), 0u);
  // Unaligned deferred copy is rejected, eager accepted.
  EXPECT_EQ(src->CopyTo(*dst, 1, 0, kPage, CopyPolicy::kHistory), Status::kInvalidArgument);
  EXPECT_EQ(src->CopyTo(*dst, 1, 0, kPage, CopyPolicy::kEager), Status::kOk);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

}  // namespace
}  // namespace gvm
