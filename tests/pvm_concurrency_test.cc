// Concurrency: the synchronization-page-stub machinery of section 4.1.2 — "While
// a pullIn or a pushOut operation is in progress, any concurrent access to the
// fragment is suspended, until the operation terminates" — exercised with an
// asynchronous mapper and with racing faulting threads.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/pvm/paged_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

// Every scenario runs twice: with the per-CPU software TLB interposed (the
// default configuration, where unmaps/downgrades go through the shootdown
// protocol) and with pure delegation — so a TLB coherence bug cannot hide
// behind the baseline, nor a baseline bug behind the TLB.
class PvmConcurrencyTest : public ::testing::TestWithParam<bool> {
 protected:
  PagedVm::Options BaseOptions() const {
    PagedVm::Options options;
    options.enable_tlb = GetParam();
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(TlbOnOff, PvmConcurrencyTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "TlbOn" : "TlbOff";
                         });

// A driver whose PullIn parks until released, then fills from another thread —
// the shape of a real disk read completing via interrupt.
class AsyncDriver final : public SegmentDriver {
 public:
  explicit AsyncDriver(size_t page_size) : page_size_(page_size) {}

  Status PullIn(Cache& cache, SegOffset offset, size_t size, Access access) override {
    (void)access;
    ++pull_ins;
    {
      std::unique_lock<std::mutex> lock(mu_);
      pending_ = true;
      started_.notify_all();
      released_.wait(lock, [&] { return release_; });
      release_ = false;
      pending_ = false;
    }
    std::vector<std::byte> data(size, std::byte{'A'});
    return cache.FillUp(offset, data.data(), data.size());
  }

  Status GetWriteAccess(Cache&, SegOffset, size_t) override { return Status::kOk; }

  Status PushOut(Cache& cache, SegOffset offset, size_t size) override {
    std::vector<std::byte> buffer(size);
    return cache.CopyBack(offset, buffer.data(), size);
  }

  void WaitForPullInStart() {
    std::unique_lock<std::mutex> lock(mu_);
    started_.wait(lock, [&] { return pending_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    release_ = true;
    released_.notify_all();
  }

  std::atomic<int> pull_ins{0};

 private:
  const size_t page_size_;
  std::mutex mu_;
  std::condition_variable started_;
  std::condition_variable released_;
  bool pending_ = false;
  bool release_ = false;
};

TEST_P(PvmConcurrencyTest, AccessSleepsOnSyncStubUntilFillArrives) {
  PhysicalMemory memory(64, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu, BaseOptions());
  AsyncDriver driver(kPage);
  Cache* cache = *vm.CacheCreate(&driver, "slow");
  Context* ctx = *vm.ContextCreate();
  ASSERT_TRUE(vm.RegionCreate(*ctx, 0x10000, kPage, Prot::kRead, *cache, 0).ok());

  std::atomic<bool> first_done{false};
  std::atomic<bool> second_done{false};
  std::thread faulting([&] {
    char c = 0;
    ASSERT_EQ(vm.cpu().Read(ctx->address_space(), 0x10000, &c, 1), Status::kOk);
    EXPECT_EQ(c, 'A');
    first_done = true;
  });
  driver.WaitForPullInStart();
  // A second accessor must find the synchronization stub and sleep on it, not
  // trigger a second pullIn.
  std::thread racer([&] {
    char c = 0;
    ASSERT_EQ(cache->Read(5, &c, 1), Status::kOk);
    EXPECT_EQ(c, 'A');
    second_done = true;
  });
  // Give the racer time to reach the stub; neither can have finished.
  for (int i = 0; i < 50 && vm.SyncStubCount() == 0; ++i) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(first_done.load());
  EXPECT_FALSE(second_done.load());
  driver.Release();
  faulting.join();
  racer.join();
  EXPECT_EQ(driver.pull_ins.load(), 1);  // the stub absorbed the second access
  EXPECT_EQ(vm.SyncStubCount(), 0u);
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

TEST_P(PvmConcurrencyTest, ParallelZeroFillFaultsOnOneCache) {
  PhysicalMemory memory(512, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu, BaseOptions());
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);
  Cache* cache = *vm.CacheCreate(nullptr, "shared");

  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 32;
  std::vector<std::thread> threads;
  std::vector<Context*> contexts(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    contexts[t] = *vm.ContextCreate();
    ASSERT_TRUE(vm.RegionCreate(*contexts[t], 0x10000,
                                kThreads * kPagesPerThread * kPage, Prot::kReadWrite,
                                *cache, 0)
                    .ok());
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      AsId as = contexts[t]->address_space();
      // Each thread writes its own page range, then reads a neighbour's.
      for (int i = 0; i < kPagesPerThread; ++i) {
        uint64_t value = (static_cast<uint64_t>(t) << 32) | i;
        Vaddr va = 0x10000 + (t * kPagesPerThread + i) * kPage;
        ASSERT_EQ(vm.cpu().Write(as, va, &value, sizeof(value)), Status::kOk);
      }
      for (int i = 0; i < kPagesPerThread; ++i) {
        uint64_t got = 0;
        Vaddr va = 0x10000 + (t * kPagesPerThread + i) * kPage;
        ASSERT_EQ(vm.cpu().Read(as, va, &got, sizeof(got)), Status::kOk);
        ASSERT_EQ(got, (static_cast<uint64_t>(t) << 32) | i);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Cross-check: all threads see all pages (shared cache).
  for (int t = 0; t < kThreads; ++t) {
    for (int u = 0; u < kThreads; ++u) {
      uint64_t got = 0;
      Vaddr va = 0x10000 + (u * kPagesPerThread) * kPage;
      ASSERT_EQ(vm.cpu().Read(contexts[t]->address_space(), va, &got, sizeof(got)),
                Status::kOk);
      EXPECT_EQ(got, static_cast<uint64_t>(u) << 32);
    }
  }
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

TEST_P(PvmConcurrencyTest, ConcurrentCowWritersDiverge) {
  // One source, several copies, all written concurrently through mappings.
  PhysicalMemory memory(1024, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu, BaseOptions());
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);

  constexpr int kCopies = 4;
  constexpr size_t kPages = 16;
  Cache* src = *vm.CacheCreate(nullptr, "src");
  std::vector<char> data(kPage, 's');
  for (size_t i = 0; i < kPages; ++i) {
    ASSERT_EQ(src->Write(i * kPage, data.data(), kPage), Status::kOk);
  }
  struct Copy {
    Cache* cache;
    Context* ctx;
  };
  std::vector<Copy> copies(kCopies);
  for (int i = 0; i < kCopies; ++i) {
    copies[i].cache = *vm.CacheCreate(nullptr, "copy" + std::to_string(i));
    ASSERT_EQ(src->CopyTo(*copies[i].cache, 0, 0, kPages * kPage, CopyPolicy::kHistory),
              Status::kOk);
    copies[i].ctx = *vm.ContextCreate();
    ASSERT_TRUE(vm.RegionCreate(*copies[i].ctx, 0x10000, kPages * kPage, Prot::kReadWrite,
                                *copies[i].cache, 0)
                    .ok());
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < kCopies; ++i) {
    threads.emplace_back([&, i] {
      AsId as = copies[i].ctx->address_space();
      for (size_t p = 0; p < kPages; p += 2) {  // write every other page
        char v = static_cast<char>('0' + i);
        ASSERT_EQ(vm.cpu().Write(as, 0x10000 + p * kPage, &v, 1), Status::kOk);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Each copy sees its own writes and the originals elsewhere; the source is
  // untouched.
  for (int i = 0; i < kCopies; ++i) {
    for (size_t p = 0; p < kPages; ++p) {
      char c = 0;
      ASSERT_EQ(copies[i].cache->Read(p * kPage, &c, 1), Status::kOk);
      EXPECT_EQ(c, p % 2 == 0 ? static_cast<char>('0' + i) : 's') << i << " " << p;
    }
  }
  for (size_t p = 0; p < kPages; ++p) {
    char c = 0;
    ASSERT_EQ(src->Read(p * kPage, &c, 1), Status::kOk);
    EXPECT_EQ(c, 's');
  }
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

TEST_P(PvmConcurrencyTest, ConcurrentFaultsUnderMemoryPressure) {
  // Two threads churn through more memory than exists; page-out runs under them.
  PhysicalMemory memory(32, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options = BaseOptions();
  options.low_water_frames = 4;
  options.high_water_frames = 8;
  PagedVm vm(memory, mmu, options);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);

  constexpr int kThreads = 2;
  constexpr size_t kPages = 48;
  std::vector<std::thread> threads;
  std::vector<Context*> contexts(kThreads);
  std::vector<Cache*> caches(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    contexts[t] = *vm.ContextCreate();
    caches[t] = *vm.CacheCreate(nullptr, "t" + std::to_string(t));
    ASSERT_TRUE(vm.RegionCreate(*contexts[t], 0x10000, kPages * kPage, Prot::kReadWrite,
                                *caches[t], 0)
                    .ok());
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      AsId as = contexts[t]->address_space();
      for (int round = 0; round < 3; ++round) {
        for (size_t p = 0; p < kPages; ++p) {
          uint64_t value = (static_cast<uint64_t>(t) << 40) | (round << 20) | p;
          ASSERT_EQ(vm.cpu().Write(as, 0x10000 + p * kPage, &value, sizeof(value)),
                    Status::kOk);
        }
        for (size_t p = 0; p < kPages; ++p) {
          uint64_t got = 0;
          ASSERT_EQ(vm.cpu().Read(as, 0x10000 + p * kPage, &got, sizeof(got)), Status::kOk);
          ASSERT_EQ(got, (static_cast<uint64_t>(t) << 40) | (round << 20) | p);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_GE(vm.stats().pages_paged_out, 10u);
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

}  // namespace
}  // namespace gvm
