// Seeded mapper crash-loop chaos harness, shared by tests/crash_recovery_test.cc
// and the tools/ repro+minimize drivers.
//
// One run builds a full kernel world — PagedVm under frame pressure, Nucleus,
// a JournaledSwapMapper behind a MapperServer as the default mapper — arms the
// crash-class fault sites from a seeded injector, and drives random cache
// traffic from worker threads while a supervisor thread plays the role of the
// actor-manager: whenever the mapper dies it replays the journal, revives the
// port and tells the segment manager, exactly the recovery protocol of
// DESIGN.md §11.  A per-cache byte oracle tracks every acknowledged write
// (caches are partitioned across workers, so each model has a single writer);
// the run fails if an acknowledged byte is ever lost or a read disagrees with
// the acknowledged history.
#ifndef GVM_TESTS_CRASH_HARNESS_H_
#define GVM_TESTS_CRASH_HARNESS_H_

#include <atomic>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/hal/soft_mmu.h"
#include "src/nucleus/journal_mapper.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"
#include "src/util/rng.h"

namespace gvm {

struct CrashChaosConfig {
  uint64_t seed = 1;
  // Injector plan specs, e.g. {"crashwrite:prob:8"}; see FaultInjector::ApplySpec.
  std::vector<std::string> fault_specs;
  int threads = 1;
  int steps_per_thread = 80;
  int caches = 2;
  size_t pages_per_cache = 8;
  size_t frames = 24;  // small pool => eviction pressure => pushOut traffic
  bool use_ipc_transport = false;
};

struct CrashChaosReport {
  bool ok = false;
  std::string failure;  // empty when ok; includes a journal dump otherwise
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t journal_replays = 0;
  uint64_t journal_records_discarded = 0;
  uint64_t duplicate_requests_ignored = 0;
};

namespace crash_harness_internal {
inline constexpr size_t kPage = 4096;
}  // namespace crash_harness_internal

// The supervisor's recovery protocol, also usable directly from tests: replay
// the durable journal into a fresh mapper incarnation, revive the port, then
// let the kernel re-drive the affected caches.
inline JournaledSwapMapper::RecoveryReport RecoverAndRestart(
    JournaledSwapMapper& mapper, MapperServer& server, SegmentManager& sm) {
  JournaledSwapMapper::RecoveryReport report = mapper.Recover();
  server.Restart();
  sm.MapperRecovered(&server, report.records_replayed, report.records_discarded);
  return report;
}

inline CrashChaosReport RunCrashChaos(const CrashChaosConfig& config) {
  using crash_harness_internal::kPage;
  CrashChaosReport report;

  PhysicalMemory memory(config.frames, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  Nucleus::Options nucleus_options;
  nucleus_options.segment_manager.use_ipc_transport = config.use_ipc_transport;
  nucleus_options.segment_manager.rpc_deadline_us = 200'000;
  Nucleus nucleus(vm, nucleus_options);
  JournalStore store(kPage);
  JournaledSwapMapper mapper(store);
  MapperServer server(nucleus.ipc(), mapper);
  nucleus.BindDefaultMapper(&server);
  if (config.use_ipc_transport) {
    server.Start();
  }
  FaultInjector injector(config.seed);
  mapper.BindFaultInjector(&injector);
  server.BindFaultInjector(&injector);
  for (const std::string& spec : config.fault_specs) {
    std::string error;
    if (!injector.ApplySpec(spec, &error)) {
      report.failure = "bad fault spec '" + spec + "': " + error;
      return report;
    }
  }
  SegmentManager& sm = nucleus.segment_manager();

  const size_t seg_bytes = config.pages_per_cache * kPage;
  std::vector<Cache*> caches;
  for (int i = 0; i < config.caches; ++i) {
    Result<Cache*> cache = sm.AcquireTemporaryCache("chaos" + std::to_string(i));
    if (!cache.ok()) {
      report.failure = "AcquireTemporaryCache failed";
      return report;
    }
    caches.push_back(*cache);
  }

  // The supervisor: detect death, recover, restart, notify — then the kernel
  // re-issues what it still owes (requeued dirty pages drain via Sync).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> recoveries{0};
  std::thread supervisor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (server.crashed()) {
        RecoverAndRestart(mapper, server, sm);
        recoveries.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Workers own disjoint cache groups (cache i belongs to thread i % threads),
  // so each oracle model has exactly one writer and verification is exact.
  std::atomic<bool> failed{false};
  std::vector<std::string> thread_failures(static_cast<size_t>(config.threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < config.threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(config.seed * 1000003 + static_cast<uint64_t>(t));
      std::vector<size_t> mine;
      for (size_t i = 0; i < caches.size(); ++i) {
        if (static_cast<int>(i % static_cast<size_t>(config.threads)) == t) {
          mine.push_back(i);
        }
      }
      if (mine.empty()) {
        return;
      }
      std::vector<std::vector<std::byte>> model(
          mine.size(), std::vector<std::byte>(seg_bytes, std::byte{0}));

      // After an unacknowledged mutation the cache state is indeterminate:
      // resynchronize the model from an authoritative read, riding out any
      // crashes the read itself provokes (the supervisor keeps reviving).
      auto resync = [&](size_t m) -> bool {
        for (int attempt = 0; attempt < 2000; ++attempt) {
          if (caches[mine[m]]->Read(0, model[m].data(), seg_bytes) == Status::kOk) {
            return true;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
        return false;
      };

      for (int step = 0; step < config.steps_per_thread && !failed.load(); ++step) {
        size_t m = rng.Below(mine.size());
        Cache* cache = caches[mine[m]];
        uint64_t roll = rng.Below(100);
        if (roll < 50) {
          size_t off = rng.Below(seg_bytes - 1);
          size_t size = 1 + rng.Below(std::min<size_t>(seg_bytes - off, 2 * kPage));
          std::vector<std::byte> data(size);
          for (auto& b : data) b = static_cast<std::byte>(rng.Below(256));
          Status s = cache->Write(off, data.data(), size);
          if (s == Status::kOk) {
            std::memcpy(model[m].data() + off, data.data(), size);
          } else if (!resync(m)) {
            thread_failures[t] = "resync after failed write never succeeded (step " +
                                 std::to_string(step) + ")";
            failed.store(true);
            return;
          }
        } else if (roll < 85) {
          size_t off = rng.Below(seg_bytes - 1);
          size_t size = 1 + rng.Below(std::min<size_t>(seg_bytes - off, 2 * kPage));
          std::vector<std::byte> got(size);
          Status s = cache->Read(off, got.data(), size);
          if (s == Status::kOk &&
              std::memcmp(got.data(), model[m].data() + off, size) != 0) {
            thread_failures[t] = "read diverged from acknowledged history at step " +
                                 std::to_string(step);
            failed.store(true);
            return;
          }
        } else {
          (void)cache->Sync();  // failures are fine; data must not be lost
        }
      }

      // The storm is over for this worker: verify every acknowledged byte.
      // Plans may still be firing from other workers, so ride out failures.
      for (size_t m = 0; m < mine.size(); ++m) {
        std::vector<std::byte> got(seg_bytes);
        bool read_ok = false;
        for (int attempt = 0; attempt < 2000 && !failed.load(); ++attempt) {
          if (caches[mine[m]]->Read(0, got.data(), seg_bytes) == Status::kOk) {
            read_ok = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        }
        if (!read_ok) {
          thread_failures[t] = "final read never succeeded for cache " +
                               std::to_string(mine[m]);
          failed.store(true);
          return;
        }
        if (std::memcmp(got.data(), model[m].data(), seg_bytes) != 0) {
          thread_failures[t] =
              "acknowledged data lost in cache " + std::to_string(mine[m]);
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  // Quiesce: stop injecting, run one final recovery if the last crash is still
  // outstanding, and drain every cache to the store.
  injector.ClearAllPlans();
  std::string drain_failure;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    if (server.crashed()) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      continue;  // supervisor is on it
    }
    bool all_ok = true;
    for (Cache* cache : caches) {
      if (cache->Sync() != Status::kOk) {
        all_ok = false;
      }
    }
    if (all_ok) {
      drain_failure.clear();
      break;
    }
    drain_failure = "final Sync did not converge";
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  stop.store(true, std::memory_order_release);
  supervisor.join();
  if (config.use_ipc_transport) {
    server.Stop();
  }

  report.crashes = server.crashes();
  report.recoveries = recoveries.load();
  PvmDetailStats detail = vm.detail_stats();
  report.journal_replays = detail.journal_replays;
  report.journal_records_discarded = detail.journal_records_discarded;
  report.duplicate_requests_ignored = mapper.duplicate_requests_ignored();

  std::ostringstream failure;
  for (const std::string& tf : thread_failures) {
    if (!tf.empty()) {
      failure << tf << "; ";
    }
  }
  if (!drain_failure.empty()) {
    failure << drain_failure << "; ";
  }
  if (vm.InTransitCount() != 0) {
    failure << "pages left in transit; ";
  }
  if (vm.SyncStubCount() != 0) {
    failure << "sync stubs leaked; ";
  }
  if (vm.CheckInvariants() != Status::kOk) {
    failure << "PVM invariants violated; ";
  }
  for (Cache* cache : caches) {
    sm.Release(cache);
  }
  if (failure.str().empty()) {
    report.ok = true;
  } else {
    // Everything a postmortem needs: the config, the counters, the record walk.
    std::ostringstream out;
    out << "crash chaos failed (seed=" << config.seed << " threads=" << config.threads
        << " transport=" << (config.use_ipc_transport ? "ipc" : "in-process") << " specs=[";
    for (const std::string& spec : config.fault_specs) {
      out << spec << " ";
    }
    out << "]): " << failure.str() << "\n"
        << "crashes=" << report.crashes << " recoveries=" << report.recoveries << "\n"
        << store.DebugDump() << vm.DumpStats();
    report.failure = out.str();
  }
  return report;
}

}  // namespace gvm

#endif  // GVM_TESTS_CRASH_HARNESS_H_
