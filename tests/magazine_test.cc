// Per-CPU frame magazines (src/hal/phys_memory.h): batched refill/drain,
// cross-magazine raiding, drain-under-pressure, and — the invariant everything
// else leans on — exact free-frame accounting whatever the frames' distribution
// between the shared pool and the magazines.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "src/hal/phys_memory.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

// Allocate until exhaustion; returns how many frames were handed out.  This is
// the strongest accounting oracle: magazines, raids, and the shared pool must
// together surface every last frame, then report kNoMemory truthfully.
size_t DrainDry(PhysicalMemory& mem, std::vector<FrameIndex>& out) {
  while (true) {
    Result<FrameIndex> frame = mem.AllocateFrame();
    if (!frame.ok()) {
      EXPECT_EQ(frame.status(), Status::kNoMemory);
      return out.size();
    }
    out.push_back(*frame);
  }
}

TEST(MagazineTest, AutoCapacityScalesWithPoolAndDisablesForTinyPools) {
  // Tiny pools get no magazine layer (capacity 0): nothing to batch, and the
  // seed tests' 4-frame worlds must keep exact LIFO behaviour.
  EXPECT_EQ(PhysicalMemory(4, kPage).magazine_capacity(), 0u);
  EXPECT_EQ(PhysicalMemory(15, kPage).magazine_capacity(), 0u);
  EXPECT_EQ(PhysicalMemory(64, kPage).magazine_capacity(), 4u);
  EXPECT_EQ(PhysicalMemory(1024, kPage).magazine_capacity(), 32u);
  // Far past 16*32 frames the cap pins at 32.
  EXPECT_EQ(PhysicalMemory(4096, kPage).magazine_capacity(), 32u);
  // Explicit capacity overrides the heuristic.
  EXPECT_EQ(PhysicalMemory(1024, kPage, 8).magazine_capacity(), 8u);
  EXPECT_EQ(PhysicalMemory(1024, kPage, 0).magazine_capacity(), 0u);
}

TEST(MagazineTest, BatchedRefillThenHitsWithoutTouchingSharedPool) {
  PhysicalMemory mem(1024, kPage);  // capacity 32, refill batch 17
  ASSERT_EQ(mem.magazine_capacity(), 32u);

  // First allocation takes the shared-pool lock once and pulls a batch.
  FrameIndex first = *mem.AllocateFrame();
  PhysicalMemory::Stats stats = mem.stats();
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.magazine_refills, 1u);
  EXPECT_EQ(stats.magazine_hits, 0u);
  EXPECT_EQ(mem.free_frames(), 1023u);  // magazine frames still count as free

  // The rest of the batch serves subsequent allocations lock-free-ish.
  const size_t batch_left = mem.magazine_capacity() / 2;  // 17 pulled, 1 returned
  for (size_t i = 0; i < batch_left; ++i) {
    ASSERT_TRUE(mem.AllocateFrame().ok());
  }
  stats = mem.stats();
  EXPECT_EQ(stats.magazine_hits, batch_left);
  EXPECT_EQ(stats.magazine_refills, 1u);
  EXPECT_EQ(mem.free_frames(), 1023u - batch_left);
  (void)first;
}

TEST(MagazineTest, SingleThreadedAllocationOrderMatchesPreMagazineLifo) {
  // The refill preserves ascending frame order (the batch is reversed into the
  // magazine), so single-threaded allocation starts at frame 0 and counts up —
  // the order every existing test and bench was written against.
  PhysicalMemory mem(256, kPage);
  ASSERT_GT(mem.magazine_capacity(), 0u);
  for (FrameIndex expect = 0; expect < 40; ++expect) {
    EXPECT_EQ(*mem.AllocateFrame(), expect);
  }
}

TEST(MagazineTest, OverfullMagazineDrainsBackToSharedPool) {
  PhysicalMemory mem(1024, kPage);  // capacity 32
  std::vector<FrameIndex> held;
  DrainDry(mem, held);
  ASSERT_EQ(held.size(), 1024u);
  // Free everything from one thread: the magazine fills to capacity, then each
  // further free drains half back to the shared pool instead of growing.
  for (FrameIndex f : held) {
    mem.FreeFrame(f);
  }
  PhysicalMemory::Stats stats = mem.stats();
  EXPECT_GT(stats.magazine_drains, 0u);
  EXPECT_EQ(mem.free_frames(), 1024u);  // exact, wherever the frames sit
}

TEST(MagazineTest, PressureBypassesMagazinesSoTheLastFramesStayVisible) {
  // 64 frames, capacity 4, pressure floor 8: once the shared pool is nearly
  // dry, frees must go straight back to it (not hide in this thread's
  // magazine) and refills shrink to single frames.
  PhysicalMemory mem(64, kPage);
  ASSERT_EQ(mem.magazine_capacity(), 4u);
  std::vector<FrameIndex> held;
  DrainDry(mem, held);
  ASSERT_EQ(held.size(), 64u);

  // Under full pressure a free/alloc pair must round-trip through the shared
  // pool: the freed frame is immediately allocatable by anyone, and the
  // accounting never strands it.
  const PhysicalMemory::Stats before = mem.stats();
  mem.FreeFrame(held.back());
  held.pop_back();
  EXPECT_EQ(mem.free_frames(), 1u);
  Result<FrameIndex> again = mem.AllocateFrame();
  ASSERT_TRUE(again.ok());
  held.push_back(*again);
  EXPECT_EQ(mem.free_frames(), 0u);
  // No batching happened down here: no new refills were paid.
  EXPECT_EQ(mem.stats().magazine_refills, before.magazine_refills);

  for (FrameIndex f : held) {
    mem.FreeFrame(f);
  }
  EXPECT_EQ(mem.free_frames(), 64u);
}

TEST(MagazineTest, RaidStealsFromAnotherThreadsMagazine) {
  PhysicalMemory mem(64, kPage);  // capacity 4
  // A worker thread loads its own magazine (alloc a batch, free it back), then
  // exits; its magazine keeps the frames.
  std::thread worker([&] {
    std::vector<FrameIndex> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back(*mem.AllocateFrame());
    }
    for (FrameIndex f : batch) {
      mem.FreeFrame(f);
    }
  });
  worker.join();

  // Draining the whole pool from this thread must raid the worker's magazine
  // for the stranded frames — all 64 frames surface.
  std::vector<FrameIndex> held;
  EXPECT_EQ(DrainDry(mem, held), 64u);
  EXPECT_GT(mem.stats().magazine_steals, 0u);
  for (FrameIndex f : held) {
    mem.FreeFrame(f);
  }
  EXPECT_EQ(mem.free_frames(), 64u);
}

TEST(MagazineTest, DrainMagazinesReturnsEveryFrameToTheSharedPool) {
  PhysicalMemory mem(256, kPage);
  std::vector<FrameIndex> held;
  for (int i = 0; i < 32; ++i) {
    held.push_back(*mem.AllocateFrame());
  }
  for (FrameIndex f : held) {
    mem.FreeFrame(f);  // parks some in this thread's magazine
  }
  mem.DrainMagazines();
  // After an explicit drain the shared pool holds everything: a capacity-zero
  // observer (the global free list) can satisfy the whole pool without raids.
  const PhysicalMemory::Stats stats = mem.stats();
  EXPECT_EQ(mem.free_frames(), 256u);
  std::vector<FrameIndex> all;
  EXPECT_EQ(DrainDry(mem, all), 256u);
  // The refill after the drain pulled from the shared pool, not via raids.
  EXPECT_EQ(mem.stats().magazine_steals, stats.magazine_steals);
  for (FrameIndex f : all) {
    mem.FreeFrame(f);
  }
}

TEST(MagazineTest, CapacityZeroKeepsTheOldGlobalPathExactly) {
  PhysicalMemory mem(64, kPage, /*magazine_capacity=*/0);
  std::vector<FrameIndex> held;
  EXPECT_EQ(DrainDry(mem, held), 64u);
  for (FrameIndex f : held) {
    mem.FreeFrame(f);
  }
  const PhysicalMemory::Stats stats = mem.stats();
  EXPECT_EQ(stats.magazine_hits, 0u);
  EXPECT_EQ(stats.magazine_refills, 0u);
  EXPECT_EQ(stats.magazine_drains, 0u);
  EXPECT_EQ(stats.magazine_steals, 0u);
  EXPECT_EQ(stats.allocations, 64u);
  EXPECT_EQ(stats.frees, 64u);
}

TEST(MagazineTest, StatsSnapshotIsByValueAndResets) {
  PhysicalMemory mem(256, kPage);
  FrameIndex f = *mem.AllocateFrame();
  const PhysicalMemory::Stats snap = mem.stats();
  EXPECT_EQ(snap.allocations, 1u);
  mem.FreeFrame(f);
  // The snapshot is a value, not a live view.
  EXPECT_EQ(snap.frees, 0u);
  EXPECT_EQ(mem.stats().frees, 1u);
  mem.ResetStats();
  EXPECT_EQ(mem.stats().allocations, 0u);
  EXPECT_EQ(mem.stats().frees, 0u);
  // Resetting counters must not touch the actual frame accounting.
  EXPECT_EQ(mem.free_frames(), 256u);
}

// The concurrency oracle: hammer alloc/free from many threads, then verify not
// one frame was double-handed-out, lost, or double-freed.  (Double handouts
// surface as duplicate FrameIndexes below; losses as a short final count.)
TEST(MagazineTest, ConcurrentChaosConservesEveryFrame) {
  constexpr size_t kFrames = 512;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  PhysicalMemory mem(kFrames, kPage);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(7000 + t);  // seeded: reproducible interleavings
      std::vector<FrameIndex> mine;
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (mine.empty() || (rng() & 1)) {
          Result<FrameIndex> frame = mem.AllocateFrame();
          if (frame.ok()) {
            mine.push_back(*frame);
          }
        } else {
          const size_t pick = rng() % mine.size();
          mem.FreeFrame(mine[pick]);
          mine[pick] = mine.back();
          mine.pop_back();
        }
      }
      for (FrameIndex f : mine) {
        mem.FreeFrame(f);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(mem.free_frames(), kFrames);

  // Every frame is allocatable exactly once, and no index repeats.
  std::vector<FrameIndex> all;
  EXPECT_EQ(DrainDry(mem, all), kFrames);
  std::vector<bool> seen(kFrames, false);
  for (FrameIndex f : all) {
    ASSERT_LT(f, kFrames);
    EXPECT_FALSE(seen[f]) << "frame " << f << " handed out twice";
    seen[f] = true;
  }
  for (FrameIndex f : all) {
    mem.FreeFrame(f);
  }
  EXPECT_EQ(mem.free_frames(), kFrames);
}

}  // namespace
}  // namespace gvm
