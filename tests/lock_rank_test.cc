// Tests for the runtime lock-rank validator (src/sync/lock_rank.{h,cc}).
//
// The build default is RelWithDebInfo (NDEBUG), where enforcement is off, so
// every test turns it on explicitly via SetEnforced(true) — the same switch CI
// debug builds get for free.  Death tests use the "threadsafe" style because
// some of them spawn threads inside the dying statement.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>

#include "src/sync/annotated_mutex.h"
#include "src/sync/lock_rank.h"

namespace gvm {
namespace {

// Bodies of the death tests live outside EXPECT_DEATH because brace-init
// commas (Mutex m{rank, name}) confuse the macro's argument splitting.

void InversionBody() {
  lock_rank::SetEnforced(true);
  Mutex shard{Rank::kMmuShard, "death::shard"};
  Mutex ipc{Rank::kIpc, "death::ipc"};
  MutexLock a(shard);
  MutexLock b(ipc);  // rank 20 after rank 40: inversion (gvm-lint: allow(lock-rank): death-test payload)
}

void EqualRankBody() {
  lock_rank::SetEnforced(true);
  SharedMutex s0{Rank::kMmuShard, "death::shard0"};
  SharedMutex s1{Rank::kMmuShard, "death::shard1"};
  WriterLock a(s0);
  WriterLock b(s1);  // two shards at once: equal rank is an inversion too (gvm-lint: allow(lock-rank): death-test payload)
}

void RecursiveBody() {
  lock_rank::SetEnforced(true);
  Mutex mu{Rank::kMmManager, "death::recursive"};
  mu.Lock();
  mu.Lock();  // self-deadlock; must abort, not hang (gvm-lint: allow(lock-rank): death-test payload)
}

void AssertNotHeldBody() {
  lock_rank::SetEnforced(true);
  Mutex mu{Rank::kMmManager, "death::assert"};
  mu.AssertHeld();
}

void UnrankedRecursiveBody() {
  lock_rank::SetEnforced(true);
  Mutex mu{Rank::kUnranked, "death::adhoc"};
  mu.Lock();
  mu.Lock();
}

// The DSM ranks: directory (7) under net (8) under the coherent mapper's
// store/WAL rank (kClient, 10).  Taking the mapper-side lock first and then
// reaching back into the directory is the ABBA the rank table exists to kill —
// exactly the nesting a coherent-mapper callback would create if it called
// into directory state while holding its own store mutex.
void DsmDirectoryUnderMapperBody() {
  lock_rank::SetEnforced(true);
  Mutex wal{Rank::kClient, "death::dsm_wal"};
  Mutex directory{Rank::kDsmDirectory, "death::dsm_directory"};
  MutexLock a(wal);
  MutexLock b(directory);  // rank 7 after rank 10: inversion (gvm-lint: allow(lock-rank): death-test payload)
}

void DsmNetUnderDirectoryReversedBody() {
  lock_rank::SetEnforced(true);
  Mutex net{Rank::kDsmNet, "death::dsm_net"};
  Mutex directory{Rank::kDsmDirectory, "death::dsm_directory"};
  MutexLock a(net);
  MutexLock b(directory);  // rank 7 after rank 8: inversion (gvm-lint: allow(lock-rank): death-test payload)
}

// The deadlock hunter: two threads take two equal-rank "shards" in opposite
// orders, the classic ABBA deadlock.  The validator must abort on the second
// acquisition of whichever thread gets there first — *before* blocking — so
// the child process dies instead of hanging.  Seeded so a failure replays.
void ShardCrossingHunterBody() {
  lock_rank::SetEnforced(true);
  constexpr int kShards = 4;
  static SharedMutex shards[kShards] = {
      SharedMutex{Rank::kMmuShard, "hunt::shard0"},
      SharedMutex{Rank::kMmuShard, "hunt::shard1"},
      SharedMutex{Rank::kMmuShard, "hunt::shard2"},
      SharedMutex{Rank::kMmuShard, "hunt::shard3"},
  };
  std::atomic<bool> go{false};
  auto hunter = [&](uint64_t seed, bool forward) {
    std::mt19937_64 rng(seed);
    while (!go.load()) {
    }
    for (int round = 0; round < 1000; ++round) {
      int a = static_cast<int>(rng() % kShards);
      int b = static_cast<int>(rng() % (kShards - 1));
      if (b >= a) ++b;  // distinct shards
      if (!forward) std::swap(a, b);
      WriterLock first(shards[a]);
      WriterLock second(shards[b]);  // must abort here, every round
    }
  };
  std::thread t1(hunter, /*seed=*/0xC0FFEE, /*forward=*/true);
  std::thread t2(hunter, /*seed=*/0xC0FFEE, /*forward=*/false);
  go.store(true);
  t1.join();
  t2.join();
}

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    lock_rank::SetEnforced(true);
  }
  void TearDown() override { lock_rank::SetEnforced(false); }
};

TEST_F(LockRankTest, InOrderAcquisitionPasses) {
  Mutex client{Rank::kClient, "test::client"};
  Mutex ipc{Rank::kIpc, "test::ipc"};
  Mutex manager{Rank::kMmManager, "test::manager"};
  SharedMutex shard{Rank::kMmuShard, "test::shard"};

  EXPECT_EQ(lock_rank::HeldCount(), 0);
  {
    MutexLock a(client);
    MutexLock b(ipc);
    MutexLock c(manager);
    WriterLock d(shard);
    EXPECT_EQ(lock_rank::HeldCount(), 4);
  }
  EXPECT_EQ(lock_rank::HeldCount(), 0);

  // Shared acquisitions rank exactly like exclusive ones.
  {
    MutexLock c(manager);
    ReaderLock d(shard);
    EXPECT_EQ(lock_rank::HeldCount(), 2);
  }
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST_F(LockRankTest, ReleaseOutOfOrderIsFine) {
  Mutex low{Rank::kIpc, "test::low"};
  Mutex high{Rank::kMmManager, "test::high"};
  low.Lock();
  high.Lock();
  low.Unlock();  // release the *older* lock first: legal, stack compacts
  EXPECT_EQ(lock_rank::HeldCount(), 1);
  high.Unlock();
  EXPECT_EQ(lock_rank::HeldCount(), 0);
}

TEST_F(LockRankTest, InversionAborts) {
  EXPECT_DEATH(InversionBody(), "lock-rank violation: rank inversion");
}

TEST_F(LockRankTest, EqualRankCountsAsInversion) {
  EXPECT_DEATH(EqualRankBody(), "lock-rank violation: rank inversion");
}

TEST_F(LockRankTest, RecursiveAcquisitionAborts) {
  EXPECT_DEATH(RecursiveBody(), "lock-rank violation: recursive acquisition");
}

TEST_F(LockRankTest, AssertHeldAbortsWhenNotHeld) {
  EXPECT_DEATH(AssertNotHeldBody(), "required but not held");
}

TEST_F(LockRankTest, UnrankedIsExemptFromOrderingButNotRecursion) {
  Mutex adhoc{Rank::kUnranked, "test::adhoc"};
  Mutex manager{Rank::kMmManager, "test::manager"};
  {
    // Unranked under and over ranked locks: both directions legal.
    MutexLock a(manager);
    MutexLock b(adhoc);
  }
  EXPECT_DEATH(UnrankedRecursiveBody(),
               "lock-rank violation: recursive acquisition");
}

TEST_F(LockRankTest, DisabledEnforcementDoesNotAbort) {
  lock_rank::SetEnforced(false);
  Mutex shard{Rank::kMmuShard, "test::shard"};
  Mutex ipc{Rank::kIpc, "test::ipc"};
  {
    MutexLock a(shard);
    MutexLock b(ipc);  // inversion, but unchecked (gvm-lint: allow(lock-rank): enforcement disabled here)
  }
  lock_rank::SetEnforced(true);
}

TEST_F(LockRankTest, DsmDirectoryUnderNetUnderMapperInOrderPasses) {
  // The legal DSM nesting: dir_mu_ (7) held while sending on the net (8), the
  // receiving end appending to the mapper-side WAL (kClient, 10).
  Mutex directory{Rank::kDsmDirectory, "test::dsm_directory"};
  Mutex net{Rank::kDsmNet, "test::dsm_net"};
  Mutex wal{Rank::kClient, "test::dsm_wal"};
  MutexLock a(directory);
  MutexLock b(net);
  MutexLock c(wal);
  EXPECT_EQ(lock_rank::HeldCount(), 3);
}

TEST_F(LockRankTest, DsmDirectoryUnderMapperAborts) {
  EXPECT_DEATH(DsmDirectoryUnderMapperBody(), "lock-rank violation: rank inversion");
}

TEST_F(LockRankTest, DsmDirectoryUnderNetAborts) {
  EXPECT_DEATH(DsmNetUnderDirectoryReversedBody(),
               "lock-rank violation: rank inversion");
}

TEST_F(LockRankTest, TwoThreadShardCrossingHunterTripsBeforeDeadlock) {
  EXPECT_DEATH(ShardCrossingHunterBody(),
               "lock-rank violation: rank inversion");
}

}  // namespace
}  // namespace gvm
