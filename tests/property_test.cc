// Property-based differential tests: random copy/write/read/destroy schedules are
// driven simultaneously through each memory manager and a trivial deep-copy
// reference model; every read must agree byte-for-byte.  This is the strongest
// check that the deferred-copy machinery (history trees, working objects, per-page
// stubs, shadow chains) is semantically invisible — the paper's core claim.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/hal/hash_mmu.h"
#include "src/hal/soft_mmu.h"
#include "src/minimal/minimal_mm.h"
#include "src/pvm/paged_vm.h"
#include "src/shadow/shadow_vm.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;
constexpr size_t kSegPages = 8;          // each model segment covers 8 pages
constexpr size_t kSegBytes = kSegPages * kPage;

// The reference: segments are plain byte arrays; every copy is a deep copy.
class RefModel {
 public:
  int Create() {
    segs_[next_] = std::vector<std::byte>(kSegBytes);
    return next_++;
  }
  void Destroy(int id) { segs_.erase(id); }
  void Write(int id, size_t off, const void* data, size_t size) {
    std::memcpy(segs_[id].data() + off, data, size);
  }
  void Read(int id, size_t off, void* data, size_t size) {
    std::memcpy(data, segs_[id].data() + off, size);
  }
  void Copy(int src, size_t src_off, int dst, size_t dst_off, size_t size) {
    std::memmove(segs_[dst].data() + dst_off, segs_[src].data() + src_off, size);
  }

 private:
  int next_ = 0;
  std::map<int, std::vector<std::byte>> segs_;
};

enum class MmKind { kPvm, kPvmHashMmu, kPvmSmallMemory, kShadow, kMinimal };

struct World {
  std::unique_ptr<PhysicalMemory> memory;
  std::unique_ptr<Mmu> mmu;
  std::unique_ptr<MemoryManager> mm;
  std::unique_ptr<TestSwapRegistry> registry;
  PagedVm* pvm = nullptr;  // set when the MM is a PagedVm (for CheckInvariants)
};

World MakeWorld(MmKind kind) {
  World world;
  world.registry = std::make_unique<TestSwapRegistry>(kPage);
  switch (kind) {
    case MmKind::kPvm: {
      world.memory = std::make_unique<PhysicalMemory>(2048, kPage);
      world.mmu = std::make_unique<SoftMmu>(kPage);
      auto pvm = std::make_unique<PagedVm>(*world.memory, *world.mmu);
      world.pvm = pvm.get();
      world.mm = std::move(pvm);
      break;
    }
    case MmKind::kPvmHashMmu: {
      world.memory = std::make_unique<PhysicalMemory>(2048, kPage);
      world.mmu = std::make_unique<HashMmu>(kPage);
      auto pvm = std::make_unique<PagedVm>(*world.memory, *world.mmu);
      world.pvm = pvm.get();
      world.mm = std::move(pvm);
      break;
    }
    case MmKind::kPvmSmallMemory: {
      // Heavy memory pressure: constant page-out traffic through the swap
      // registry while the same schedule runs.
      world.memory = std::make_unique<PhysicalMemory>(24, kPage);
      world.mmu = std::make_unique<SoftMmu>(kPage);
      PagedVm::Options options;
      options.low_water_frames = 3;
      options.high_water_frames = 6;
      auto pvm = std::make_unique<PagedVm>(*world.memory, *world.mmu, options);
      world.pvm = pvm.get();
      world.mm = std::move(pvm);
      break;
    }
    case MmKind::kShadow: {
      world.memory = std::make_unique<PhysicalMemory>(4096, kPage);
      world.mmu = std::make_unique<SoftMmu>(kPage);
      world.mm = std::make_unique<ShadowVm>(*world.memory, *world.mmu);
      break;
    }
    case MmKind::kMinimal: {
      world.memory = std::make_unique<PhysicalMemory>(4096, kPage);
      world.mmu = std::make_unique<SoftMmu>(kPage);
      world.mm = std::make_unique<MinimalVm>(*world.memory, *world.mmu);
      break;
    }
  }
  world.mm->BindSegmentRegistry(world.registry.get());
  return world;
}

struct Param {
  MmKind kind;
  uint64_t seed;
};

class DifferentialTest : public ::testing::TestWithParam<Param> {};

TEST_P(DifferentialTest, RandomScheduleMatchesReferenceModel) {
  const Param param = GetParam();
  World world = MakeWorld(param.kind);
  RefModel ref;
  Rng rng(param.seed);

  std::map<int, Cache*> live;
  int created = 0;
  auto create = [&] {
    int id = ref.Create();
    live[id] = *world.mm->CacheCreate(nullptr, "seg" + std::to_string(id));
    ++created;
    return id;
  };
  create();

  const CopyPolicy kPolicies[] = {CopyPolicy::kEager, CopyPolicy::kHistory,
                                  CopyPolicy::kHistoryOnRef, CopyPolicy::kPerPage,
                                  CopyPolicy::kAuto};

  for (int step = 0; step < 300; ++step) {
    uint64_t roll = rng.Below(100);
    auto pick = [&]() -> int {
      auto it = live.begin();
      std::advance(it, rng.Below(live.size()));
      return it->first;
    };
    if (live.empty() || (roll < 10 && live.size() < 8)) {
      create();
    } else if (roll < 40) {
      // Random write: arbitrary offset/length.
      int id = pick();
      size_t off = rng.Below(kSegBytes - 1);
      size_t size = 1 + rng.Below(std::min<size_t>(kSegBytes - off, 3 * kPage));
      std::vector<std::byte> data(size);
      for (auto& b : data) {
        b = static_cast<std::byte>(rng.Below(256));
      }
      ASSERT_EQ(live[id]->Write(off, data.data(), size), Status::kOk) << "step " << step;
      (void)ref.Write(id, off, data.data(), size);
    } else if (roll < 70 && live.size() >= 2) {
      // Page-aligned copy with a random policy (deferred policies need alignment).
      int src = pick();
      int dst = pick();
      if (src == dst) {
        continue;
      }
      size_t pages = 1 + rng.Below(kSegPages);
      size_t src_page = rng.Below(kSegPages - pages + 1);
      size_t dst_page = rng.Below(kSegPages - pages + 1);
      CopyPolicy policy = kPolicies[rng.Below(std::size(kPolicies))];
      ASSERT_EQ(live[src]->CopyTo(*live[dst], src_page * kPage, dst_page * kPage,
                                  pages * kPage, policy),
                Status::kOk)
          << "step " << step;
      ref.Copy(src, src_page * kPage, dst, dst_page * kPage, pages * kPage);
    } else if (roll < 85) {
      // Random read, compared byte for byte.
      int id = pick();
      size_t off = rng.Below(kSegBytes - 1);
      size_t size = 1 + rng.Below(std::min<size_t>(kSegBytes - off, 3 * kPage));
      std::vector<std::byte> got(size);
      std::vector<std::byte> want(size);
      ASSERT_EQ(live[id]->Read(off, got.data(), size), Status::kOk) << "step " << step;
      (void)ref.Read(id, off, want.data(), size);
      ASSERT_EQ(std::memcmp(got.data(), want.data(), size), 0)
          << "divergence at step " << step << " seg " << id << " off " << off;
    } else if (roll < 95 && live.size() > 1) {
      int id = pick();
      ASSERT_EQ(live[id]->Destroy(), Status::kOk) << "step " << step;
      live.erase(id);
      (void)ref.Destroy(id);
    } else {
      // Full-segment audit of a random segment.
      int id = pick();
      std::vector<std::byte> got(kSegBytes);
      std::vector<std::byte> want(kSegBytes);
      ASSERT_EQ(live[id]->Read(0, got.data(), kSegBytes), Status::kOk);
      (void)ref.Read(id, 0, want.data(), kSegBytes);
      ASSERT_EQ(std::memcmp(got.data(), want.data(), kSegBytes), 0)
          << "audit divergence at step " << step << " seg " << id;
    }
    if (world.pvm != nullptr && step % 50 == 49) {
      ASSERT_EQ(world.pvm->CheckInvariants(), Status::kOk) << "step " << step;
    }
  }
  // Final audit of everything.
  for (auto& [id, cache] : live) {
    std::vector<std::byte> got(kSegBytes);
    std::vector<std::byte> want(kSegBytes);
    ASSERT_EQ(cache->Read(0, got.data(), kSegBytes), Status::kOk);
    (void)ref.Read(id, 0, want.data(), kSegBytes);
    ASSERT_EQ(std::memcmp(got.data(), want.data(), kSegBytes), 0) << "final audit seg " << id;
  }
  if (world.pvm != nullptr) {
    ASSERT_EQ(world.pvm->CheckInvariants(), Status::kOk);
  }
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string kind;
  switch (info.param.kind) {
    case MmKind::kPvm:
      kind = "Pvm";
      break;
    case MmKind::kPvmHashMmu:
      kind = "PvmHashMmu";
      break;
    case MmKind::kPvmSmallMemory:
      kind = "PvmSmallMemory";
      break;
    case MmKind::kShadow:
      kind = "Shadow";
      break;
    case MmKind::kMinimal:
      kind = "Minimal";
      break;
  }
  return kind + "Seed" + std::to_string(info.param.seed);
}

std::vector<Param> AllParams() {
  std::vector<Param> params;
  for (MmKind kind : {MmKind::kPvm, MmKind::kPvmHashMmu, MmKind::kPvmSmallMemory,
                      MmKind::kShadow, MmKind::kMinimal}) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      params.push_back(Param{kind, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Schedules, DifferentialTest, ::testing::ValuesIn(AllParams()),
                         ParamName);

// ---------------------------------------------------------------------------
// Mapped-access differential test (PVM): fork-like context trees under pressure.
// ---------------------------------------------------------------------------

class MappedDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MappedDifferentialTest, ForkWriteReadSchedules) {
  Rng rng(GetParam());
  PhysicalMemory memory(48, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 4;
  options.high_water_frames = 8;
  options.per_page_threshold_pages = 2;  // exercise both techniques
  PagedVm vm(memory, mmu, options);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);

  constexpr Vaddr kBase = 0x100000;
  constexpr size_t kPages = 6;

  struct Proc {
    Context* context;
    Cache* cache;
    Region* region;
    std::vector<std::byte> model;  // reference copy of the address space
  };
  std::vector<std::unique_ptr<Proc>> procs;

  auto spawn = [&](Proc* parent) {
    auto proc = std::make_unique<Proc>();
    proc->context = *vm.ContextCreate();
    proc->cache = *vm.CacheCreate(nullptr, "p" + std::to_string(procs.size()));
    if (parent != nullptr) {
      CopyPolicy policy = rng.Chance(1, 2) ? CopyPolicy::kHistory : CopyPolicy::kPerPage;
      EXPECT_EQ(parent->cache->CopyTo(*proc->cache, 0, 0, kPages * kPage, policy),
                Status::kOk);
      proc->model = parent->model;
    } else {
      proc->model.resize(kPages * kPage);
    }
    proc->region = *vm.RegionCreate(*proc->context, kBase, kPages * kPage, Prot::kReadWrite,
                                    *proc->cache, 0);
    procs.push_back(std::move(proc));
  };
  spawn(nullptr);

  for (int step = 0; step < 400; ++step) {
    uint64_t roll = rng.Below(100);
    Proc* proc = procs[rng.Below(procs.size())].get();
    if (roll < 10 && procs.size() < 6) {
      spawn(proc);  // fork
    } else if (roll < 55) {
      // Mapped write of a small random span.
      size_t off = rng.Below(kPages * kPage - 8);
      uint64_t value = rng.Next();
      ASSERT_EQ(vm.cpu().Write(proc->context->address_space(), kBase + off, &value, 8),
                Status::kOk)
          << "step " << step;
      std::memcpy(proc->model.data() + off, &value, 8);
    } else if (roll < 90) {
      // Mapped read compared against the model.
      size_t off = rng.Below(kPages * kPage - 8);
      uint64_t got = 0;
      ASSERT_EQ(vm.cpu().Read(proc->context->address_space(), kBase + off, &got, 8),
                Status::kOk)
          << "step " << step;
      uint64_t want = 0;
      std::memcpy(&want, proc->model.data() + off, 8);
      ASSERT_EQ(got, want) << "step " << step << " off " << off;
    } else if (procs.size() > 1) {
      // Exit: tear down a random process.
      size_t index = rng.Below(procs.size());
      Proc* victim = procs[index].get();
      ASSERT_EQ(victim->context->Destroy(), Status::kOk);
      ASSERT_EQ(victim->cache->Destroy(), Status::kOk);
      procs.erase(procs.begin() + index);
    }
  }
  ASSERT_EQ(vm.CheckInvariants(), Status::kOk);
  // Final audit: every process sees exactly its model.
  for (auto& proc : procs) {
    std::vector<std::byte> got(kPages * kPage);
    ASSERT_EQ(vm.cpu().Read(proc->context->address_space(), kBase, got.data(), got.size()),
              Status::kOk);
    ASSERT_EQ(std::memcmp(got.data(), proc->model.data(), got.size()), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappedDifferentialTest, ::testing::Range<uint64_t>(1, 9),
                         [](const auto& info) { return "Seed" + std::to_string(info.param); });

}  // namespace
}  // namespace gvm
