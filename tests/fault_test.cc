// Fault injection and recovery: the FaultInjector itself, the PVM's bounded
// retry / requeue / degraded-mode machinery around pullIn and pushOut, the
// segment manager's mapper-RPC retry policy, graceful degradation under frame
// and swap exhaustion, and a fixed-seed chaos run asserting zero data loss for
// acknowledged writes.  (See DESIGN.md "Fault model and recovery semantics".)
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/hal/soft_mmu.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"
#include "src/util/rng.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

// ---------------------------------------------------------------------------
// FaultInjector unit tests
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, FailNthFiresExactlyOnce) {
  FaultInjector injector;
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kFailNth;
  plan.nth = 3;
  injector.SetPlan(FaultSite::kMapperRead, plan);

  EXPECT_EQ(injector.Check(FaultSite::kMapperRead), Status::kOk);
  EXPECT_EQ(injector.Check(FaultSite::kMapperRead), Status::kOk);
  EXPECT_EQ(injector.Check(FaultSite::kMapperRead), Status::kBusError);
  EXPECT_EQ(injector.Check(FaultSite::kMapperRead), Status::kOk);
  EXPECT_EQ(injector.counters(FaultSite::kMapperRead).hits, 4u);
  EXPECT_EQ(injector.counters(FaultSite::kMapperRead).triggers, 1u);
  // Other sites are untouched.
  EXPECT_EQ(injector.counters(FaultSite::kMapperWrite).hits, 0u);
  EXPECT_EQ(injector.total_triggers(), 1u);
}

TEST(FaultInjectorTest, BurstFailsConsecutivelyThenHeals) {
  FaultInjector injector;
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kFailNth;
  plan.nth = 1;
  plan.burst = 3;
  plan.error = Status::kNoSwap;
  injector.SetPlan(FaultSite::kSwapAlloc, plan);

  EXPECT_EQ(injector.Check(FaultSite::kSwapAlloc), Status::kNoSwap);
  EXPECT_EQ(injector.Check(FaultSite::kSwapAlloc), Status::kNoSwap);
  EXPECT_EQ(injector.Check(FaultSite::kSwapAlloc), Status::kNoSwap);
  EXPECT_EQ(injector.Check(FaultSite::kSwapAlloc), Status::kOk);
  EXPECT_EQ(injector.counters(FaultSite::kSwapAlloc).triggers, 3u);
}

TEST(FaultInjectorTest, PermanentPlanNeverHeals) {
  FaultInjector injector;
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kFailNth;
  plan.nth = 2;
  plan.permanent = true;
  injector.SetPlan(FaultSite::kMapperWrite, plan);

  EXPECT_EQ(injector.Check(FaultSite::kMapperWrite), Status::kOk);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.Check(FaultSite::kMapperWrite), Status::kBusError);
  }
  injector.ClearPlan(FaultSite::kMapperWrite);
  EXPECT_EQ(injector.Check(FaultSite::kMapperWrite), Status::kOk);
}

TEST(FaultInjectorTest, ProbabilityIsSeedDeterministic) {
  auto pattern = [](uint64_t seed) {
    FaultInjector injector(seed);
    FaultPlan plan;
    plan.mode = FaultPlan::Mode::kProbability;
    plan.num = 30;
    plan.den = 100;
    injector.SetPlan(FaultSite::kMapperRead, plan);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(injector.Check(FaultSite::kMapperRead) != Status::kOk);
    }
    return fired;
  };
  EXPECT_EQ(pattern(42), pattern(42));  // bit-identical replay from the seed
  EXPECT_NE(pattern(42), pattern(43));
  // ~30% of 64 hits should fire; allow a wide band.
  auto fired = pattern(42);
  int count = 0;
  for (bool f : fired) count += f;
  EXPECT_GT(count, 4);
  EXPECT_LT(count, 48);
}

TEST(FaultInjectorTest, DisabledInjectorIsInvisible) {
  FaultInjector injector;
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kFailNth;
  plan.nth = 1;
  plan.permanent = true;
  injector.SetPlan(FaultSite::kMapperRead, plan);
  injector.set_enabled(false);
  // No failures, no hit counting, no RNG perturbation while disabled.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(injector.Check(FaultSite::kMapperRead), Status::kOk);
  }
  EXPECT_EQ(injector.counters(FaultSite::kMapperRead).hits, 0u);
  injector.set_enabled(true);
  EXPECT_EQ(injector.Check(FaultSite::kMapperRead), Status::kBusError);
}

TEST(FaultInjectorTest, ApplySpecParsesTheReplayGrammar) {
  FaultInjector injector;
  std::string error;
  EXPECT_TRUE(injector.ApplySpec("write:nth:3", &error)) << error;
  EXPECT_TRUE(injector.ApplySpec("read:prob:10:burst=2", &error)) << error;
  EXPECT_TRUE(injector.ApplySpec("swap:nth:1:perm:error=noswap", &error)) << error;
  EXPECT_TRUE(injector.ApplySpec("send:prob:1/8:latency=5", &error)) << error;
  std::string described = injector.Describe();
  EXPECT_NE(described.find("write:nth:3"), std::string::npos) << described;
  EXPECT_NE(described.find("swap:nth:1"), std::string::npos) << described;

  // Malformed specs are rejected, not half-applied.
  EXPECT_FALSE(injector.ApplySpec("bogus:nth:1", &error));
  EXPECT_FALSE(injector.ApplySpec("read", &error));
  EXPECT_FALSE(injector.ApplySpec("read:sometimes", &error));
  EXPECT_FALSE(injector.ApplySpec("read:nth:zero", &error));
  EXPECT_FALSE(injector.ApplySpec("read:prob:5/0", &error));
  EXPECT_FALSE(injector.ApplySpec("read:nth:1:error=sparkles", &error));
}

// ---------------------------------------------------------------------------
// PVM-level fault handling
// ---------------------------------------------------------------------------

// A small world with the injector threaded through every layer that hosts a
// site: the test driver (pullIn/pushOut), the swap registry (segmentCreate) and
// physical memory (frame allocation).
struct World {
  PhysicalMemory memory;
  SoftMmu mmu;
  PagedVm vm;
  TestSwapRegistry registry;
  TestStoreDriver driver;
  FaultInjector injector;

  explicit World(size_t frames, PagedVm::Options options = {}, uint64_t seed = 1)
      : memory(frames, kPage),
        mmu(kPage),
        vm(memory, mmu, options),
        registry(kPage),
        driver(kPage),
        injector(seed) {
    vm.BindSegmentRegistry(&registry);
    registry.injector = &injector;
    driver.injector = &injector;
    memory.BindFaultInjector(&injector);
  }
};

// Writes a page of recognizable data, pushes it to the segment and drops the
// resident copy, so the next Read must pullIn.
void PushAndDrop(World&, Cache& cache, std::vector<std::byte>* data_out) {
  std::vector<std::byte> data(kPage);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 7 + 3);
  }
  ASSERT_EQ(cache.Write(0, data.data(), data.size()), Status::kOk);
  ASSERT_EQ(cache.Sync(), Status::kOk);
  ASSERT_EQ(cache.Invalidate(0, kPage), Status::kOk);
  ASSERT_EQ(cache.ResidentPages(), 0u);
  *data_out = std::move(data);
}

TEST(FaultPvmTest, TransientPullInFailureIsAbsorbedByRetry) {
  World w(64);
  Cache* cache = *w.vm.CacheCreate(&w.driver, "seg");
  std::vector<std::byte> data;
  PushAndDrop(w, *cache, &data);

  ASSERT_TRUE(w.injector.ApplySpec("read:nth:1"));  // fail the next pullIn once
  std::vector<std::byte> got(kPage);
  EXPECT_EQ(cache->Read(0, got.data(), got.size()), Status::kOk);
  EXPECT_EQ(std::memcmp(got.data(), data.data(), kPage), 0);
  EXPECT_GE(w.vm.detail_stats().io_retries, 1u);
  EXPECT_EQ(w.vm.detail_stats().io_permanent_failures, 0u);
  EXPECT_EQ(w.vm.SyncStubCount(), 0u);
  EXPECT_EQ(w.vm.CheckInvariants(), Status::kOk);
}

TEST(FaultPvmTest, PermanentPullInFailureSurfacesCleanlyAndRecovers) {
  World w(64);
  Cache* cache = *w.vm.CacheCreate(&w.driver, "seg");
  std::vector<std::byte> data;
  PushAndDrop(w, *cache, &data);

  ASSERT_TRUE(w.injector.ApplySpec("read:nth:1:perm"));
  std::vector<std::byte> got(kPage);
  EXPECT_EQ(cache->Read(0, got.data(), got.size()), Status::kBusError);
  // The failed transfer leaves no debris: no stranded stub, nothing in transit.
  EXPECT_EQ(w.vm.SyncStubCount(), 0u);
  EXPECT_EQ(w.vm.InTransitCount(), 0u);
  EXPECT_GE(w.vm.detail_stats().io_permanent_failures, 1u);
  EXPECT_EQ(w.vm.CheckInvariants(), Status::kOk);

  // Once the "device" heals the same read succeeds: the error was not sticky.
  w.injector.ClearAllPlans();
  EXPECT_EQ(cache->Read(0, got.data(), got.size()), Status::kOk);
  EXPECT_EQ(std::memcmp(got.data(), data.data(), kPage), 0);
}

TEST(FaultPvmTest, PullInFailureWakesConcurrentSleepersWithBusError) {
  PagedVm::Options options;
  options.io_retry_limit = 0;  // one attempt, so the latency window is bounded
  World w(64, options);
  Cache* cache = *w.vm.CacheCreate(&w.driver, "seg");
  std::vector<std::byte> data;
  PushAndDrop(w, *cache, &data);

  // Slow *and* permanently failing pullIn: the second reader arrives while the
  // first is inside the upcall, sleeps on the sync stub, and must be woken with
  // a clean bus error instead of hanging on a stub nobody will resolve.
  ASSERT_TRUE(w.injector.ApplySpec("read:nth:1:perm:latency=20000"));
  Status first = Status::kOk;
  Status second = Status::kOk;
  std::thread t1([&] {
    std::byte b;
    first = cache->Read(0, &b, 1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::thread t2([&] {
    std::byte b;
    second = cache->Read(0, &b, 1);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(first, Status::kBusError);
  EXPECT_EQ(second, Status::kBusError);
  EXPECT_EQ(w.vm.SyncStubCount(), 0u);
  EXPECT_EQ(w.vm.InTransitCount(), 0u);
  EXPECT_EQ(w.vm.CheckInvariants(), Status::kOk);
}

TEST(FaultPvmTest, TransientPushOutFailureIsAbsorbedAndDataReachesStore) {
  World w(64);
  Cache* cache = *w.vm.CacheCreate(&w.driver, "seg");
  std::vector<std::byte> data(kPage, std::byte{0x5a});
  ASSERT_EQ(cache->Write(0, data.data(), data.size()), Status::kOk);

  ASSERT_TRUE(w.injector.ApplySpec("write:nth:1"));  // fail the next pushOut once
  EXPECT_EQ(cache->Sync(), Status::kOk);
  EXPECT_GE(w.vm.detail_stats().io_retries, 1u);
  EXPECT_EQ(w.vm.detail_stats().io_permanent_failures, 0u);
  ASSERT_TRUE(w.driver.HasPage(0));
  EXPECT_EQ(std::memcmp(w.driver.PageData(0).data(), data.data(), kPage), 0);
  EXPECT_EQ(w.vm.InTransitCount(), 0u);
}

TEST(FaultPvmTest, FailedPushOutRequeuesDirtyPageWithoutDataLoss) {
  PagedVm::Options options;
  options.io_retry_limit = 0;
  World w(64, options);
  Cache* cache = *w.vm.CacheCreate(&w.driver, "seg");
  // Dirty the page through a *mapping*, so its dirtiness initially lives only in
  // the MMU dirty bit that PushOutPageLocked's unmap destroys — the regression
  // this test pins is a failed push clean-dropping such a page.
  Context* context = *w.vm.ContextCreate();
  Region* region =
      *w.vm.RegionCreate(*context, 0x10000, kPage, Prot::kReadWrite, *cache, 0);
  ASSERT_NE(region, nullptr);
  std::vector<std::byte> data(kPage, std::byte{0xc4});
  ASSERT_EQ(w.vm.cpu().Write(context->address_space(), 0x10000, data.data(), 64),
            Status::kOk);

  ASSERT_TRUE(w.injector.ApplySpec("write:nth:1:perm"));
  EXPECT_EQ(cache->Sync(), Status::kBusError);
  EXPECT_GE(w.vm.detail_stats().pushout_requeues, 1u);
  EXPECT_EQ(w.vm.InTransitCount(), 0u);

  // The page is still resident, still dirty, and the next Sync after the device
  // heals writes the *modified* bytes — nothing was clean-dropped.
  w.injector.ClearAllPlans();
  EXPECT_EQ(cache->Sync(), Status::kOk);
  ASSERT_TRUE(w.driver.HasPage(0));
  EXPECT_EQ(std::memcmp(w.driver.PageData(0).data(), data.data(), 64), 0);
  EXPECT_EQ(w.vm.CheckInvariants(), Status::kOk);
}

TEST(FaultPvmTest, RepeatedPushOutFailuresDegradeTheSegmentAndSyncRecoversIt) {
  PagedVm::Options options;
  options.io_retry_limit = 0;
  options.degrade_after_failures = 3;
  World w(64, options);
  auto* cache = static_cast<PvmCache*>(*w.vm.CacheCreate(&w.driver, "seg"));
  std::vector<std::byte> data(kPage, std::byte{0x77});
  ASSERT_EQ(cache->Write(0, data.data(), data.size()), Status::kOk);

  ASSERT_TRUE(w.injector.ApplySpec("write:nth:1:perm"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cache->Sync(), Status::kBusError);
  }
  EXPECT_TRUE(cache->degraded());
  EXPECT_EQ(w.vm.detail_stats().degraded_segments, 1u);

  // Degraded: new writes are refused so unsaveable dirty data stops growing...
  std::byte b{0x01};
  EXPECT_EQ(cache->Write(64, &b, 1), Status::kBusError);
  // ... but reads still serve the resident copy.
  std::vector<std::byte> got(kPage);
  EXPECT_EQ(cache->Read(0, got.data(), got.size()), Status::kOk);
  EXPECT_EQ(std::memcmp(got.data(), data.data(), kPage), 0);

  // The first successful pushOut (a Sync once the mapper heals) is proof of
  // recovery: the cache accepts writes again.
  w.injector.ClearAllPlans();
  EXPECT_EQ(cache->Sync(), Status::kOk);
  EXPECT_FALSE(cache->degraded());
  EXPECT_EQ(cache->Write(64, &b, 1), Status::kOk);
  ASSERT_TRUE(w.driver.HasPage(0));
  EXPECT_EQ(std::memcmp(w.driver.PageData(0).data(), data.data(), kPage), 0);
}

TEST(FaultPvmTest, SwapExhaustionSurfacesAsNoSwapAndHealsWithoutDataLoss) {
  World w(64);
  Cache* cache = *w.vm.CacheCreate(nullptr, "anon");  // MM-created, swap-backed
  std::vector<std::byte> data(kPage, std::byte{0x3c});
  ASSERT_EQ(cache->Write(0, data.data(), data.size()), Status::kOk);

  // segmentCreate fails: the backing store is exhausted.  kNoSwap is an answer,
  // not line noise — it must surface immediately, not be retried.
  ASSERT_TRUE(w.injector.ApplySpec("swap:nth:1:perm:error=noswap"));
  EXPECT_EQ(cache->Sync(), Status::kNoSwap);
  EXPECT_EQ(w.injector.counters(FaultSite::kSwapAlloc).triggers, 1u);

  // The data survived in memory; once swap frees up the Sync goes through.
  w.injector.ClearAllPlans();
  EXPECT_EQ(cache->Sync(), Status::kOk);
  std::vector<std::byte> got(kPage);
  ASSERT_EQ(cache->Invalidate(0, kPage), Status::kOk);
  EXPECT_EQ(cache->Read(0, got.data(), got.size()), Status::kOk);
  EXPECT_EQ(std::memcmp(got.data(), data.data(), kPage), 0);
}

TEST(FaultPvmTest, DeferredCopySurvivesSwapAllocFailureDuringMaterialization) {
  World w(64);
  Cache* src = *w.vm.CacheCreate(&w.driver, "src");
  std::vector<std::byte> original(4 * kPage);
  for (size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::byte>(i % 251);
  }
  ASSERT_EQ(src->Write(0, original.data(), original.size()), Status::kOk);

  // Deferred copy into an MM-created cache, then modify the copy so it owns
  // dirty pages that need a swap segment the moment they must be pushed.
  Cache* dst = *w.vm.CacheCreate(nullptr, "copy");
  ASSERT_EQ(src->CopyTo(*dst, 0, 0, 4 * kPage, CopyPolicy::kHistory), Status::kOk);
  std::vector<std::byte> patch(kPage, std::byte{0xee});
  ASSERT_EQ(dst->Write(kPage, patch.data(), patch.size()), Status::kOk);

  ASSERT_TRUE(w.injector.ApplySpec("swap:nth:1:perm:error=noswap"));
  EXPECT_EQ(dst->Sync(), Status::kNoSwap);

  // Graceful degradation: the copy's contents are fully intact after the
  // failure, and a later Sync (swap available again) succeeds.
  w.injector.ClearAllPlans();
  std::vector<std::byte> got(4 * kPage);
  ASSERT_EQ(dst->Read(0, got.data(), got.size()), Status::kOk);
  std::vector<std::byte> expect = original;
  std::memcpy(expect.data() + kPage, patch.data(), kPage);
  EXPECT_EQ(std::memcmp(got.data(), expect.data(), expect.size()), 0);
  EXPECT_EQ(dst->Sync(), Status::kOk);
  EXPECT_EQ(w.vm.CheckInvariants(), Status::kOk);
}

TEST(FaultPvmTest, TransientFrameAllocationFailureIsAbsorbedByPressureRetry) {
  World w(64);
  Cache* cache = *w.vm.CacheCreate(&w.driver, "seg");
  // Two consecutive allocation failures: the fast path and the first pressure
  // round both fail, the second pressure round succeeds.
  ASSERT_TRUE(w.injector.ApplySpec("frame:nth:1:burst=2"));
  std::vector<std::byte> data(kPage, std::byte{0x11});
  EXPECT_EQ(cache->Write(0, data.data(), data.size()), Status::kOk);
  EXPECT_GE(w.vm.detail_stats().alloc_pressure_retries, 1u);
  EXPECT_EQ(w.injector.counters(FaultSite::kFrameAlloc).triggers, 2u);
  std::vector<std::byte> got(kPage);
  EXPECT_EQ(cache->Read(0, got.data(), got.size()), Status::kOk);
  EXPECT_EQ(std::memcmp(got.data(), data.data(), kPage), 0);
}

// ---------------------------------------------------------------------------
// Satellite regression: the CacheRead livelock cap
// ---------------------------------------------------------------------------

// A driver whose pushOut blocks until released, holding the page in_transit.
class BlockingPushOutDriver : public TestStoreDriver {
 public:
  using TestStoreDriver::TestStoreDriver;

  Status PushOut(Cache& cache, SegOffset offset, size_t size) override {
    {
      std::unique_lock<std::mutex> lk(mu_);
      blocked_ = true;
      cv_.notify_all();
      cv_.wait(lk, [&] { return release_; });
    }
    return TestStoreDriver::PushOut(cache, offset, size);
  }

  void WaitUntilBlocked() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return blocked_; });
  }
  void Release() {
    std::unique_lock<std::mutex> lk(mu_);
    release_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = false;
  bool release_ = false;
};

TEST(FaultPvmTest, CacheReadLivelockCapSurfacesBusyInsteadOfSkippingData) {
  PhysicalMemory memory(64, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  TestSwapRegistry registry(kPage);
  BlockingPushOutDriver driver(kPage);
  vm.BindSegmentRegistry(&registry);
  Cache* cache = *vm.CacheCreate(&driver, "seg");

  std::vector<std::byte> data(kPage, std::byte{0x42});
  ASSERT_EQ(cache->Write(0, data.data(), data.size()), Status::kOk);

  // A Sync wedges inside the driver with the page in_transit.
  Status sync_result = Status::kOk;
  std::thread syncer([&] { sync_result = cache->Sync(); });
  driver.WaitUntilBlocked();

  // A concurrent reader sleeps on the in-transit page.  SleepQueue::Wait permits
  // spurious wakeups by contract, so poking the sleeper burns through the
  // reader's settle-loop cap without the transfer ever finishing.  The read must
  // then surface kBusy — the pre-fix code advanced past the chunk and returned
  // kOk for bytes it never copied.
  std::atomic<bool> reader_done{false};
  Status read_result = Status::kOk;
  std::vector<std::byte> got(kPage, std::byte{0});
  std::thread reader([&] {
    read_result = cache->Read(0, got.data(), got.size());
    reader_done.store(true);
  });
  while (!reader_done.load()) {
    vm.PokeSleepers(*cache, 0);
    std::this_thread::yield();
  }
  reader.join();
  EXPECT_EQ(read_result, Status::kBusy);

  driver.Release();
  syncer.join();
  EXPECT_EQ(sync_result, Status::kOk);
  // After the transfer completes, the same read succeeds with the real bytes.
  EXPECT_EQ(cache->Read(0, got.data(), got.size()), Status::kOk);
  EXPECT_EQ(std::memcmp(got.data(), data.data(), kPage), 0);
  EXPECT_EQ(vm.InTransitCount(), 0u);
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Satellite audit: kRetry never escapes a public GMI entry point
// ---------------------------------------------------------------------------

TEST(FaultPvmTest, KRetryNeverEscapesUnderConcurrentFaultyTraffic) {
  World w(32);
  Cache* cache = *w.vm.CacheCreate(&w.driver, "seg");
  std::vector<std::byte> base(8 * kPage, std::byte{0xab});
  ASSERT_EQ(cache->Write(0, base.data(), base.size()), Status::kOk);

  ASSERT_TRUE(w.injector.ApplySpec("read:prob:15"));
  ASSERT_TRUE(w.injector.ApplySpec("write:prob:15"));

  std::atomic<int> retry_escapes{0};
  auto worker = [&](uint64_t seed) {
    Rng rng(seed);
    std::vector<std::byte> buf(kPage);
    for (int i = 0; i < 60; ++i) {
      SegOffset off = rng.Below(8) * kPage;
      Status s;
      switch (rng.Below(4)) {
        case 0:
          s = cache->Write(off, buf.data(), buf.size());
          break;
        case 1:
          s = cache->Sync();
          break;
        default:
          s = cache->Read(off, buf.data(), buf.size());
          break;
      }
      if (s == Status::kRetry) {
        retry_escapes.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 4; ++t) {
    threads.emplace_back(worker, t + 100);
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(retry_escapes.load(), 0);

  w.injector.ClearAllPlans();
  EXPECT_EQ(cache->Sync(), Status::kOk);
  EXPECT_EQ(w.vm.SyncStubCount(), 0u);
  EXPECT_EQ(w.vm.InTransitCount(), 0u);
  EXPECT_EQ(w.vm.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Nucleus / segment-manager RPC retry and IPC faults
// ---------------------------------------------------------------------------

TEST(FaultNucleusTest, MapperRpcRetryAbsorbsTransientReadFaults) {
  PhysicalMemory memory(64, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  Nucleus nucleus(vm);
  FileMapper files(kPage);
  MapperServer file_server(nucleus.ipc(), files);
  nucleus.RegisterMapper(&file_server);
  FaultInjector injector;
  nucleus.segment_manager().BindFaultInjector(&injector);

  std::string contents(kPage, 'R');
  auto key = files.CreateFile("/r", contents.data(), contents.size());
  Capability cap{file_server.port(), *key};
  Actor* actor = *nucleus.ActorCreate("a");
  ASSERT_TRUE(actor->RgnMap(0x400000, kPage, Prot::kRead, cap, 0).ok());

  ASSERT_TRUE(injector.ApplySpec("read:nth:1"));  // first mapper read RPC fails
  char c = 0;
  ASSERT_EQ(actor->Read(0x400000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'R');
  EXPECT_GE(nucleus.segment_manager().stats().io_retries, 1u);
  EXPECT_EQ(nucleus.segment_manager().stats().io_permanent_failures, 0u);
}

TEST(FaultNucleusTest, PermanentAllocTempFailureSurfacesAsNoSwap) {
  PhysicalMemory memory(64, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  Nucleus nucleus(vm);
  SwapMapper swap(kPage);
  MapperServer swap_server(nucleus.ipc(), swap);
  nucleus.BindDefaultMapper(&swap_server);
  FaultInjector injector;
  nucleus.segment_manager().BindFaultInjector(&injector);

  Result<Cache*> cache = nucleus.segment_manager().AcquireTemporaryCache("tmp");
  ASSERT_TRUE(cache.ok());
  std::vector<std::byte> data(kPage, std::byte{0x9d});
  ASSERT_EQ((*cache)->Write(0, data.data(), data.size()), Status::kOk);

  // The default mapper cannot allocate a swap segment.  kNoSwap is not retried
  // (it is an answer, not a transport error) and surfaces on the first attempt.
  ASSERT_TRUE(injector.ApplySpec("alloctemp:nth:1:perm:error=noswap"));
  EXPECT_EQ((*cache)->Sync(), Status::kNoSwap);
  EXPECT_EQ(injector.counters(FaultSite::kMapperAllocTemp).triggers, 1u);

  // Data intact; Sync succeeds once the mapper can allocate again.
  injector.ClearAllPlans();
  EXPECT_EQ((*cache)->Sync(), Status::kOk);
  EXPECT_GT(swap.StoredBytes(1), 0u);
  nucleus.segment_manager().Release(*cache);
}

TEST(FaultNucleusTest, IpcTransportSendFaultIsRetriedEndToEnd) {
  Nucleus::Options options;
  options.segment_manager.use_ipc_transport = true;
  PhysicalMemory memory(64, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  Nucleus nucleus(vm, options);
  FileMapper files(kPage);
  MapperServer file_server(nucleus.ipc(), files);
  nucleus.RegisterMapper(&file_server);
  file_server.Start();
  FaultInjector injector;
  nucleus.ipc().BindFaultInjector(&injector);

  std::string contents(kPage, 'X');
  auto key = files.CreateFile("/x", contents.data(), contents.size());
  Capability cap{file_server.port(), *key};
  Actor* actor = *nucleus.ActorCreate("a");
  ASSERT_TRUE(actor->RgnMap(0x400000, kPage, Prot::kRead, cap, 0).ok());

  // The first IPC send (the mapper-read request) is dropped on the floor; the
  // segment manager's whole-RPC retry resends it.  Mapper RPCs are idempotent,
  // so this is always safe.
  ASSERT_TRUE(injector.ApplySpec("send:nth:1"));
  char c = 0;
  ASSERT_EQ(actor->Read(0x400000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'X');
  EXPECT_GE(nucleus.segment_manager().stats().io_retries, 1u);
  injector.ClearAllPlans();
  file_server.Stop();
}

// ---------------------------------------------------------------------------
// Acceptance: fixed-seed chaos run with a byte-for-byte audit
// ---------------------------------------------------------------------------

TEST(FaultChaosTest, AcknowledgedWritesSurviveSeededFaultStorm) {
  constexpr size_t kSegPages = 16;
  constexpr size_t kSegBytes = kSegPages * kPage;
  World w(24, PagedVm::Options{}, /*seed=*/0xfau);  // heavy eviction pressure

  // Two victims: a mapper-backed segment and an MM-created swap-backed one.
  std::vector<Cache*> caches = {*w.vm.CacheCreate(&w.driver, "mapped"),
                                *w.vm.CacheCreate(nullptr, "anon")};
  std::vector<std::vector<std::byte>> model(
      caches.size(), std::vector<std::byte>(kSegBytes, std::byte{0}));

  // Transient faults on every I/O path, plus occasional swap exhaustion.
  ASSERT_TRUE(w.injector.ApplySpec("read:prob:12"));
  ASSERT_TRUE(w.injector.ApplySpec("write:prob:12"));
  ASSERT_TRUE(w.injector.ApplySpec("swap:prob:1/16:error=noswap"));

  // When a mutation is not acknowledged with kOk its effect is indeterminate
  // (it may have partially applied).  Resynchronize the reference model from an
  // authoritative read taken with injection suspended — suspension does not
  // advance the RNG, so the fault stream itself replays bit-identically.
  auto resync = [&](size_t i) {
    w.injector.set_enabled(false);
    ASSERT_EQ(caches[i]->Read(0, model[i].data(), kSegBytes), Status::kOk);
    w.injector.set_enabled(true);
  };

  Rng rng(20260807);
  for (int step = 0; step < 400; ++step) {
    size_t i = rng.Below(caches.size());
    uint64_t roll = rng.Below(100);
    if (roll < 45) {
      size_t off = rng.Below(kSegBytes - 1);
      size_t size = 1 + rng.Below(std::min<size_t>(kSegBytes - off, 3 * kPage));
      std::vector<std::byte> data(size);
      for (auto& b : data) b = static_cast<std::byte>(rng.Below(256));
      Status s = caches[i]->Write(off, data.data(), size);
      ASSERT_NE(s, Status::kRetry);
      if (s == Status::kOk) {
        std::memcpy(model[i].data() + off, data.data(), size);  // acknowledged
      } else {
        resync(i);
      }
    } else if (roll < 80) {
      size_t off = rng.Below(kSegBytes - 1);
      size_t size = 1 + rng.Below(std::min<size_t>(kSegBytes - off, 3 * kPage));
      std::vector<std::byte> got(size);
      Status s = caches[i]->Read(off, got.data(), size);
      ASSERT_NE(s, Status::kRetry);
      if (s == Status::kOk) {
        // A successful read must agree with the acknowledged history.
        ASSERT_EQ(std::memcmp(got.data(), model[i].data() + off, size), 0)
            << "read diverged at step " << step;
      }
    } else {
      Status s = caches[i]->Sync();  // failures are fine; data must not be lost
      ASSERT_NE(s, Status::kRetry);
    }
  }

  // The storm passes.  Everything must drain cleanly and every acknowledged
  // write must still be readable, byte for byte.
  w.injector.ClearAllPlans();
  for (size_t i = 0; i < caches.size(); ++i) {
    EXPECT_EQ(caches[i]->Sync(), Status::kOk);
    std::vector<std::byte> got(kSegBytes);
    ASSERT_EQ(caches[i]->Read(0, got.data(), kSegBytes), Status::kOk);
    ASSERT_EQ(std::memcmp(got.data(), model[i].data(), kSegBytes), 0)
        << "data loss in cache " << i;
  }
  EXPECT_GT(w.injector.total_triggers(), 0u);          // the storm was real
  EXPECT_GT(w.vm.detail_stats().io_retries, 0u);       // and transients absorbed
  EXPECT_EQ(w.vm.SyncStubCount(), 0u);
  EXPECT_EQ(w.vm.InTransitCount(), 0u);
  EXPECT_EQ(w.vm.CheckInvariants(), Status::kOk);
}

}  // namespace
}  // namespace gvm
