// History-object deferred copy (section 4.2): the Figure 3 scenarios, the 4.2.3
// complication, successive copies with working objects, source-deleted-first
// semantics (4.2.5), copy-on-reference, and the per-virtual-page technique (4.3).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/pvm/paged_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

class PvmHistoryTest : public ::testing::Test {
 protected:
  PvmHistoryTest() : memory_(256, kPage), mmu_(kPage), vm_(memory_, mmu_), registry_(kPage) {
    vm_.BindSegmentRegistry(&registry_);
    context_ = *vm_.ContextCreate();
  }

  // Make a temporary cache whose pages 0..n-1 hold a recognizable pattern, fully
  // resident, via a scratch region.
  Cache* MakeFilledCache(const std::string& name, int pages, char tag) {
    Cache* cache = *vm_.CacheCreate(nullptr, name);
    std::vector<char> data(kPage);
    for (int i = 0; i < pages; ++i) {
      std::memset(data.data(), tag + i, kPage);
      EXPECT_EQ(cache->Write(i * kPage, data.data(), kPage), Status::kOk);
    }
    return cache;
  }

  char ReadByte(Cache& cache, SegOffset offset) {
    char c = 0;
    EXPECT_EQ(cache.Read(offset, &c, 1), Status::kOk);
    return c;
  }

  void WriteByte(Cache& cache, SegOffset offset, char value) {
    EXPECT_EQ(cache.Write(offset, &value, 1), Status::kOk);
  }

  // Write through a mapping (exercises the MMU fault path rather than the
  // explicit-I/O path).
  void MapAndWrite(Cache& cache, SegOffset offset, char value) {
    Region* region = *vm_.RegionCreate(*context_, 0xA00000, kPage, Prot::kReadWrite, cache,
                                       offset / kPage * kPage);
    ASSERT_EQ(vm_.cpu().Write(context_->address_space(), 0xA00000 + offset % kPage, &value, 1),
              Status::kOk);
    ASSERT_EQ(region->Destroy(), Status::kOk);
  }

  PhysicalMemory memory_;
  SoftMmu mmu_;
  PagedVm vm_;
  TestSwapRegistry registry_;
  Context* context_ = nullptr;
};

// ---------------------------------------------------------------------------
// Figure 3.a: the simple case
// ---------------------------------------------------------------------------

TEST_F(PvmHistoryTest, Fig3aSimpleCopyOnWrite) {
  Cache* src = MakeFilledCache("src", 3, 'a');  // pages hold 'a', 'b', 'c'
  Cache* cpy1 = *vm_.CacheCreate(nullptr, "cpy1");

  // Deferred copy of pages 1..3 (the figure copies a 3-page fragment).
  ASSERT_EQ(src->CopyTo(*cpy1, 0, 0, 3 * kPage, CopyPolicy::kHistory), Status::kOk);
  size_t frames_after_copy = memory_.used_frames();

  // cpy1 is src's history; cpy1's parent is src.
  auto* src_pvm = static_cast<PvmCache*>(src);
  auto* cpy1_pvm = static_cast<PvmCache*>(cpy1);
  EXPECT_EQ(src_pvm->HistoryAt(0), cpy1_pvm);
  EXPECT_EQ(cpy1_pvm->ParentAt(0), src_pvm);

  // A cache miss on page 0 in cpy1 is resolved by looking it up in src — without
  // allocating a frame.
  EXPECT_EQ(ReadByte(*cpy1, 0), 'a');
  EXPECT_EQ(memory_.used_frames(), frames_after_copy);

  // "Page 2 has been updated in src": the original goes to cpy1's frame.
  WriteByte(*src, kPage + 10, 'B');
  EXPECT_EQ(ReadByte(*src, kPage + 10), 'B');
  EXPECT_EQ(ReadByte(*cpy1, kPage + 10), 'b');  // cpy1 sees the original
  EXPECT_EQ(ReadByte(*cpy1, kPage), 'b');

  // "Page 3 has been updated in cpy1": a private frame in cpy1.
  WriteByte(*cpy1, 2 * kPage, 'C');
  EXPECT_EQ(ReadByte(*cpy1, 2 * kPage), 'C');
  EXPECT_EQ(ReadByte(*src, 2 * kPage), 'c');  // src is untouched

  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
  EXPECT_GE(vm_.detail_stats().history_pushes, 1u);
}

TEST_F(PvmHistoryTest, CopyDeletedFirstIsTheCheapCase) {
  // "When the copy segment is deleted, its cache may simply be discarded.  This is
  // the normal case in Unix."
  Cache* src = MakeFilledCache("src", 2, 'a');
  Cache* cpy1 = *vm_.CacheCreate(nullptr, "cpy1");
  ASSERT_EQ(src->CopyTo(*cpy1, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  WriteByte(*src, 0, 'X');  // push one original into cpy1
  size_t caches_before = vm_.CacheCount();
  ASSERT_EQ(cpy1->Destroy(), Status::kOk);
  EXPECT_EQ(vm_.CacheCount(), caches_before - 1);
  // src is fully functional and writable without faults piling up.
  EXPECT_EQ(ReadByte(*src, 0), 'X');
  WriteByte(*src, kPage, 'Y');
  EXPECT_EQ(ReadByte(*src, kPage), 'Y');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, SourceDeletedFirstKeepsDataForCopy) {
  // Section 4.2.5: "remaining unmodified source data must be kept until the copy
  // is deleted" (parent exits, child continues).
  Cache* src = MakeFilledCache("src", 2, 'a');
  Cache* cpy1 = *vm_.CacheCreate(nullptr, "cpy1");
  ASSERT_EQ(src->CopyTo(*cpy1, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_EQ(src->Destroy(), Status::kOk);
  // cpy1 still reads src's data.
  EXPECT_EQ(ReadByte(*cpy1, 0), 'a');
  EXPECT_EQ(ReadByte(*cpy1, kPage), 'b');
  WriteByte(*cpy1, 0, 'Z');
  EXPECT_EQ(ReadByte(*cpy1, 0), 'Z');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
  // Deleting the copy finally reaps the dying source.
  ASSERT_EQ(cpy1->Destroy(), Status::kOk);
  EXPECT_EQ(vm_.CacheCount(), 0u);
  EXPECT_EQ(memory_.used_frames(), 0u);
}

// ---------------------------------------------------------------------------
// Figure 3.b: copy of a copy (the 4.2.3 complication)
// ---------------------------------------------------------------------------

TEST_F(PvmHistoryTest, Fig3bCopyOfCopy) {
  Cache* src = MakeFilledCache("src", 3, 'a');
  Cache* cpy1 = *vm_.CacheCreate(nullptr, "cpy1");
  ASSERT_EQ(src->CopyTo(*cpy1, 0, 0, 3 * kPage, CopyPolicy::kHistory), Status::kOk);

  // "Page 2 of src is modified."
  WriteByte(*src, kPage, 'B');

  // "Then cpy1 is copied-on-write to copyOfCpy1."
  Cache* copy_of_cpy1 = *vm_.CacheCreate(nullptr, "copyOfCpy1");
  ASSERT_EQ(cpy1->CopyTo(*copy_of_cpy1, 0, 0, 3 * kPage, CopyPolicy::kHistory), Status::kOk);

  auto* cpy1_pvm = static_cast<PvmCache*>(cpy1);
  EXPECT_EQ(cpy1_pvm->HistoryAt(0), static_cast<PvmCache*>(copy_of_cpy1));

  // "Page 3 of cpy1 is modified: both src and copyOfCpy1 get a page frame with the
  // original value."  (src keeps its own original; our structures let src keep the
  // page and give copyOfCpy1 its snapshot.)
  WriteByte(*cpy1, 2 * kPage, 'C');
  EXPECT_EQ(ReadByte(*cpy1, 2 * kPage), 'C');
  EXPECT_EQ(ReadByte(*src, 2 * kPage), 'c');
  EXPECT_EQ(ReadByte(*copy_of_cpy1, 2 * kPage), 'c');  // the 4.2.3 complication

  // "Page 1 of both copies is read from src."
  EXPECT_EQ(ReadByte(*cpy1, 0), 'a');
  EXPECT_EQ(ReadByte(*copy_of_cpy1, 0), 'a');

  // "Page 2 of copyOfCpy1 is read from cpy1" (the original of src's update).
  EXPECT_EQ(ReadByte(*copy_of_cpy1, kPage), 'b');
  EXPECT_EQ(ReadByte(*cpy1, kPage), 'b');
  EXPECT_EQ(ReadByte(*src, kPage), 'B');

  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Figures 3.c / 3.d: second and third copies insert working objects
// ---------------------------------------------------------------------------

TEST_F(PvmHistoryTest, Fig3cSecondCopyInsertsWorkingObject) {
  Cache* src = MakeFilledCache("src", 4, 'a');  // 'a' 'b' 'c' 'd'
  Cache* cpy1 = *vm_.CacheCreate(nullptr, "cpy1");
  ASSERT_EQ(src->CopyTo(*cpy1, 0, 0, 4 * kPage, CopyPolicy::kHistory), Status::kOk);

  Cache* cpy2 = *vm_.CacheCreate(nullptr, "cpy2");
  ASSERT_EQ(src->CopyTo(*cpy2, 0, 0, 4 * kPage, CopyPolicy::kHistory), Status::kOk);
  EXPECT_EQ(vm_.detail_stats().working_objects, 1u);

  // Tree shape: src -> w1 -> {cpy1, cpy2}.
  auto* src_pvm = static_cast<PvmCache*>(src);
  auto* cpy1_pvm = static_cast<PvmCache*>(cpy1);
  auto* cpy2_pvm = static_cast<PvmCache*>(cpy2);
  PvmCache* w1 = src_pvm->HistoryAt(0);
  ASSERT_NE(w1, nullptr);
  EXPECT_NE(w1, cpy1_pvm);
  EXPECT_NE(w1, cpy2_pvm);
  EXPECT_EQ(cpy1_pvm->ParentAt(0), w1);
  EXPECT_EQ(cpy2_pvm->ParentAt(0), w1);
  EXPECT_EQ(w1->ParentAt(0), src_pvm);

  // "The following pages have been modified: page 3 of src, page 3 of cpy1, and
  // page 4 of cpy2."
  WriteByte(*src, 2 * kPage, 'C');   // original 'c' goes into w1
  WriteByte(*cpy1, 2 * kPage, '3');  // private copy in cpy1
  WriteByte(*cpy2, 3 * kPage, '4');  // private copy in cpy2

  // Everyone sees the right bytes.
  EXPECT_EQ(ReadByte(*src, 2 * kPage), 'C');
  EXPECT_EQ(ReadByte(*cpy1, 2 * kPage), '3');
  EXPECT_EQ(ReadByte(*cpy2, 2 * kPage), 'c');  // via w1
  EXPECT_EQ(ReadByte(*cpy2, 3 * kPage), '4');
  EXPECT_EQ(ReadByte(*cpy1, 3 * kPage), 'd');  // via w1 -> src
  EXPECT_EQ(ReadByte(*src, 3 * kPage), 'd');
  EXPECT_EQ(ReadByte(*cpy1, 0), 'a');
  EXPECT_EQ(ReadByte(*cpy2, 0), 'a');

  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, Fig3dThirdCopyStacksWorkingObjects) {
  Cache* src = MakeFilledCache("src", 2, 'a');
  Cache* cpy1 = *vm_.CacheCreate(nullptr, "cpy1");
  Cache* cpy2 = *vm_.CacheCreate(nullptr, "cpy2");
  Cache* cpy3 = *vm_.CacheCreate(nullptr, "cpy3");
  ASSERT_EQ(src->CopyTo(*cpy1, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_EQ(src->CopyTo(*cpy2, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_EQ(src->CopyTo(*cpy3, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  EXPECT_EQ(vm_.detail_stats().working_objects, 2u);  // w1 and w2

  // Values diverge at src only; all copies see originals.
  WriteByte(*src, 0, 'X');
  EXPECT_EQ(ReadByte(*cpy1, 0), 'a');
  EXPECT_EQ(ReadByte(*cpy2, 0), 'a');
  EXPECT_EQ(ReadByte(*cpy3, 0), 'a');
  EXPECT_EQ(ReadByte(*src, 0), 'X');

  // Each copy can diverge independently.
  WriteByte(*cpy1, 0, '1');
  WriteByte(*cpy2, 0, '2');
  EXPECT_EQ(ReadByte(*cpy1, 0), '1');
  EXPECT_EQ(ReadByte(*cpy2, 0), '2');
  EXPECT_EQ(ReadByte(*cpy3, 0), 'a');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, WriteBetweenSuccessiveCopiesSnapshotsCorrectly) {
  // src is copied, modified, copied again: the two copies must see different
  // snapshots.
  Cache* src = MakeFilledCache("src", 1, 'a');
  Cache* cpy1 = *vm_.CacheCreate(nullptr, "cpy1");
  ASSERT_EQ(src->CopyTo(*cpy1, 0, 0, kPage, CopyPolicy::kHistory), Status::kOk);
  WriteByte(*src, 0, 'b');  // original 'a' lands in cpy1
  Cache* cpy2 = *vm_.CacheCreate(nullptr, "cpy2");
  ASSERT_EQ(src->CopyTo(*cpy2, 0, 0, kPage, CopyPolicy::kHistory), Status::kOk);
  WriteByte(*src, 0, 'c');  // original 'b' lands in w1

  EXPECT_EQ(ReadByte(*cpy1, 0), 'a');
  EXPECT_EQ(ReadByte(*cpy2, 0), 'b');
  EXPECT_EQ(ReadByte(*src, 0), 'c');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Fragments (4.2.4)
// ---------------------------------------------------------------------------

TEST_F(PvmHistoryTest, FragmentCopiesFromDifferentSources) {
  // Copy different fragments from two different sources into one destination:
  // "individual fragments may have different, arbitrary, parents."
  Cache* src_a = MakeFilledCache("srcA", 2, 'a');
  Cache* src_b = MakeFilledCache("srcB", 2, 'p');
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  ASSERT_EQ(src_a->CopyTo(*dst, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_EQ(src_b->CopyTo(*dst, 0, 2 * kPage, 2 * kPage, CopyPolicy::kHistory), Status::kOk);

  EXPECT_EQ(ReadByte(*dst, 0), 'a');
  EXPECT_EQ(ReadByte(*dst, kPage), 'b');
  EXPECT_EQ(ReadByte(*dst, 2 * kPage), 'p');
  EXPECT_EQ(ReadByte(*dst, 3 * kPage), 'q');

  auto* dst_pvm = static_cast<PvmCache*>(dst);
  EXPECT_EQ(dst_pvm->ParentAt(0), static_cast<PvmCache*>(src_a));
  EXPECT_EQ(dst_pvm->ParentAt(2 * kPage), static_cast<PvmCache*>(src_b));

  WriteByte(*src_a, 0, 'X');
  WriteByte(*src_b, 0, 'Y');
  EXPECT_EQ(ReadByte(*dst, 0), 'a');
  EXPECT_EQ(ReadByte(*dst, 2 * kPage), 'p');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, CopyIntoMiddleOfExistingCopy) {
  // Overwrite the middle fragment of an existing deferred copy (section 4.2.4).
  Cache* src_a = MakeFilledCache("srcA", 4, 'a');  // a b c d
  Cache* src_b = MakeFilledCache("srcB", 1, 'z');
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  ASSERT_EQ(src_a->CopyTo(*dst, 0, 0, 4 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_EQ(src_b->CopyTo(*dst, 0, kPage, kPage, CopyPolicy::kHistory), Status::kOk);

  EXPECT_EQ(ReadByte(*dst, 0), 'a');
  EXPECT_EQ(ReadByte(*dst, kPage), 'z');  // replaced fragment
  EXPECT_EQ(ReadByte(*dst, 2 * kPage), 'c');
  EXPECT_EQ(ReadByte(*dst, 3 * kPage), 'd');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, CopyIntoSegmentThatIsACopySource) {
  // dst was copied to child; then dst's range is overwritten by a new copy.  The
  // child must keep dst's ORIGINAL values (materialized into it during the clear).
  Cache* src = MakeFilledCache("src", 2, 'a');
  Cache* dst = MakeFilledCache("dst", 2, 'm');  // 'm' 'n'
  Cache* child = *vm_.CacheCreate(nullptr, "child");
  ASSERT_EQ(dst->CopyTo(*child, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_EQ(src->CopyTo(*dst, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);

  EXPECT_EQ(ReadByte(*dst, 0), 'a');
  EXPECT_EQ(ReadByte(*dst, kPage), 'b');
  EXPECT_EQ(ReadByte(*child, 0), 'm');  // the pre-overwrite snapshot
  EXPECT_EQ(ReadByte(*child, kPage), 'n');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Copy-on-reference
// ---------------------------------------------------------------------------

TEST_F(PvmHistoryTest, CopyOnReferenceMaterializesOnFirstTouch) {
  Cache* src = MakeFilledCache("src", 2, 'a');
  Cache* cpy = *vm_.CacheCreate(nullptr, "cor");
  ASSERT_EQ(src->CopyTo(*cpy, 0, 0, 2 * kPage, CopyPolicy::kHistoryOnRef), Status::kOk);

  // Map the copy and read through the mapping: the page is materialized privately
  // rather than shared read-only.
  Region* region =
      *vm_.RegionCreate(*context_, 0x200000, 2 * kPage, Prot::kReadWrite, *cpy, 0);
  (void)region;
  AsId as = context_->address_space();
  char c = 0;
  ASSERT_EQ(vm_.cpu().Read(as, 0x200000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'a');
  EXPECT_EQ(static_cast<Cache*>(cpy)->ResidentPages(), 1u);  // private frame exists

  // Because the page is private, a subsequent write does not fault again.
  uint64_t faults = vm_.stats().page_faults;
  ASSERT_EQ(vm_.cpu().Write(as, 0x200000, &c, 1), Status::kOk);
  EXPECT_EQ(vm_.stats().page_faults, faults);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Per-virtual-page copy (4.3)
// ---------------------------------------------------------------------------

TEST_F(PvmHistoryTest, PerPageCopyBasics) {
  Cache* src = MakeFilledCache("src", 3, 'a');
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  ASSERT_EQ(src->CopyTo(*dst, 0, 0, 3 * kPage, CopyPolicy::kPerPage), Status::kOk);
  EXPECT_EQ(vm_.CowStubCount(), 3u);
  EXPECT_EQ(vm_.detail_stats().per_page_stubs, 3u);

  // Reads are satisfied through the stubs (source pages, no copies).
  size_t frames = memory_.used_frames();
  EXPECT_EQ(ReadByte(*dst, 0), 'a');
  EXPECT_EQ(ReadByte(*dst, kPage), 'b');
  EXPECT_EQ(memory_.used_frames(), frames);

  // "When a write violation occurs on a copy-on-write page stub, a new page frame
  // is allocated with a copy of the source page."
  WriteByte(*dst, kPage, 'B');
  EXPECT_EQ(ReadByte(*dst, kPage), 'B');
  EXPECT_EQ(ReadByte(*src, kPage), 'b');
  EXPECT_EQ(vm_.CowStubCount(), 2u);
  EXPECT_EQ(vm_.detail_stats().stub_resolutions, 1u);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, PerPageSourceWriteDetachesStubs) {
  Cache* src = MakeFilledCache("src", 1, 'a');
  Cache* dst1 = *vm_.CacheCreate(nullptr, "dst1");
  Cache* dst2 = *vm_.CacheCreate(nullptr, "dst2");
  ASSERT_EQ(src->CopyTo(*dst1, 0, 0, kPage, CopyPolicy::kPerPage), Status::kOk);
  ASSERT_EQ(src->CopyTo(*dst2, 0, 0, kPage, CopyPolicy::kPerPage), Status::kOk);

  // Source write must first give the stubs the original value.
  WriteByte(*src, 0, 'X');
  EXPECT_EQ(ReadByte(*src, 0), 'X');
  EXPECT_EQ(ReadByte(*dst1, 0), 'a');
  EXPECT_EQ(ReadByte(*dst2, 0), 'a');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, PerPageStubSurvivesSourceEviction) {
  // Stub source page evicted to swap: the stub flips to its non-resident form and
  // resolution pulls the page back in.
  PhysicalMemory small(8, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 2;
  options.high_water_frames = 3;
  PagedVm vm(small, mmu, options);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);

  Cache* src = *vm.CacheCreate(nullptr, "src");
  std::vector<char> page_data(kPage, 's');
  ASSERT_EQ(src->Write(0, page_data.data(), kPage), Status::kOk);
  Cache* dst = *vm.CacheCreate(nullptr, "dst");
  ASSERT_EQ(src->CopyTo(*dst, 0, 0, kPage, CopyPolicy::kPerPage), Status::kOk);

  // Churn memory to evict the source page.
  Cache* churn = *vm.CacheCreate(nullptr, "churn");
  std::vector<char> junk(kPage, 'j');
  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(churn->Write(i * kPage, junk.data(), kPage), Status::kOk);
  }
  // The stub still resolves (write materializes a private copy).
  char v = 0;
  ASSERT_EQ(dst->Read(0, &v, 1), Status::kOk);
  EXPECT_EQ(v, 's');
  char w = 'D';
  ASSERT_EQ(dst->Write(10, &w, 1), Status::kOk);
  ASSERT_EQ(dst->Read(10, &v, 1), Status::kOk);
  EXPECT_EQ(v, 'D');
  ASSERT_EQ(src->Read(10, &v, 1), Status::kOk);
  EXPECT_EQ(v, 's');
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Move semantics
// ---------------------------------------------------------------------------

TEST_F(PvmHistoryTest, MoveRetargetsFramesInsteadOfCopying) {
  Cache* src = MakeFilledCache("src", 4, 'a');
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  uint64_t copies_before = memory_.stats().frame_copies;
  ASSERT_EQ(src->MoveTo(*dst, 0, 0, 4 * kPage), Status::kOk);
  EXPECT_EQ(memory_.stats().frame_copies, copies_before);  // zero bytes copied
  EXPECT_EQ(vm_.detail_stats().move_retargets, 4u);
  EXPECT_EQ(ReadByte(*dst, 0), 'a');
  EXPECT_EQ(ReadByte(*dst, 3 * kPage), 'd');
  EXPECT_EQ(static_cast<Cache*>(src)->ResidentPages(), 0u);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Deferred copy through mappings (the Unix fork shape)
// ---------------------------------------------------------------------------

TEST_F(PvmHistoryTest, ForkLikeMappedCowBothDirections) {
  // Parent's "data segment" mapped and resident; child created by deferred copy;
  // both processes write through their mappings.
  Cache* parent_cache = *vm_.CacheCreate(nullptr, "parent");
  Region* parent_region = *vm_.RegionCreate(*context_, 0x300000, 4 * kPage,
                                            Prot::kReadWrite, *parent_cache, 0);
  (void)parent_region;
  AsId parent_as = context_->address_space();
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(vm_.cpu().Store<uint32_t>(parent_as, 0x300000 + i * kPage, 0xAA00 + i),
              Status::kOk);
  }

  Context* child_ctx = *vm_.ContextCreate();
  Cache* child_cache = *vm_.CacheCreate(nullptr, "child");
  ASSERT_EQ(parent_cache->CopyTo(*child_cache, 0, 0, 4 * kPage, CopyPolicy::kHistory),
            Status::kOk);
  ASSERT_TRUE(vm_.RegionCreate(*child_ctx, 0x300000, 4 * kPage, Prot::kReadWrite,
                               *child_cache, 0)
                  .ok());
  AsId child_as = child_ctx->address_space();

  // Child reads see parent values (shared read-only frames).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(*vm_.cpu().Load<uint32_t>(child_as, 0x300000 + i * kPage), 0xAA00u + i);
  }
  // Parent writes page 0: child still sees the original.
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(parent_as, 0x300000, 0xBEEF), Status::kOk);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(child_as, 0x300000), 0xAA00u);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(parent_as, 0x300000), 0xBEEFu);

  // Child writes page 1: parent still sees the original.
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(child_as, 0x300000 + kPage, 0xCAFE), Status::kOk);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(parent_as, 0x300000 + kPage), 0xAA01u);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(child_as, 0x300000 + kPage), 0xCAFEu);

  // Page 2, untouched, is physically shared.
  EXPECT_GE(vm_.stats().cow_copies, 2u);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
  ASSERT_EQ(child_ctx->Destroy(), Status::kOk);
  ASSERT_EQ(child_cache->Destroy(), Status::kOk);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, RepeatedForkExitDoesNotAccumulateCaches) {
  // The paper's point against Mach's shadow chains: a shell forking repeatedly
  // must not build up garbage (section 4.2.5, problem 1).
  Cache* parent = MakeFilledCache("parent", 2, 'a');
  size_t baseline = vm_.CacheCount();
  for (int round = 0; round < 10; ++round) {
    Cache* child = *vm_.CacheCreate(nullptr, "child" + std::to_string(round));
    ASSERT_EQ(parent->CopyTo(*child, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
    WriteByte(*parent, 0, static_cast<char>('A' + round));
    char c = ReadByte(*child, 0);
    EXPECT_EQ(c, round == 0 ? 'a' : static_cast<char>('A' + round - 1));
    ASSERT_EQ(child->Destroy(), Status::kOk);
  }
  // All children and any working objects were reclaimed.
  EXPECT_EQ(vm_.CacheCount(), baseline);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, ForkChainWithExitsCollapses) {
  // Child forks and exits while its own child continues, repeatedly: the dying
  // middle caches collapse into their single live child (4.2.5, destination GC).
  Cache* generation = MakeFilledCache("gen0", 2, 'a');
  for (int i = 1; i <= 6; ++i) {
    Cache* next = *vm_.CacheCreate(nullptr, "gen" + std::to_string(i));
    ASSERT_EQ(generation->CopyTo(*next, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
    WriteByte(*next, 0, static_cast<char>('0' + i));
    ASSERT_EQ(generation->Destroy(), Status::kOk);
    generation = next;
  }
  EXPECT_EQ(ReadByte(*generation, 0), '6');
  EXPECT_EQ(ReadByte(*generation, kPage), 'b');
  // Collapse keeps the cache count bounded (the live leaf plus at most a couple of
  // still-condemned ancestors, not one per generation).
  EXPECT_GE(vm_.detail_stats().caches_collapsed + vm_.detail_stats().caches_reaped, 4u);
  EXPECT_LE(vm_.CacheCount(), 3u);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, AutoPolicyPicksTechniqueBySize) {
  PagedVm::Options options;
  // Default threshold: 8 pages.
  PhysicalMemory mem(128, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(mem, mmu, options);
  Cache* small_src = *vm.CacheCreate(nullptr, "small");
  Cache* small_dst = *vm.CacheCreate(nullptr, "small_dst");
  std::vector<char> buf(kPage, 'x');
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(small_src->Write(i * kPage, buf.data(), kPage), Status::kOk);
  }
  ASSERT_EQ(small_src->CopyTo(*small_dst, 0, 0, 2 * kPage, CopyPolicy::kAuto), Status::kOk);
  EXPECT_EQ(vm.detail_stats().per_page_stubs, 2u);  // small -> per-page

  Cache* big_src = *vm.CacheCreate(nullptr, "big");
  Cache* big_dst = *vm.CacheCreate(nullptr, "big_dst");
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(big_src->Write(i * kPage, buf.data(), kPage), Status::kOk);
  }
  ASSERT_EQ(big_src->CopyTo(*big_dst, 0, 0, 16 * kPage, CopyPolicy::kAuto), Status::kOk);
  EXPECT_EQ(vm.detail_stats().per_page_stubs, 2u);  // unchanged: big used history
  EXPECT_EQ(static_cast<PvmCache*>(big_src)->HistoryAt(0),
            static_cast<PvmCache*>(big_dst));
}

TEST_F(PvmHistoryTest, EagerCopyForUnalignedRanges) {
  Cache* src = MakeFilledCache("src", 2, 'a');
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  // Unaligned copy must fall back to eager and still be correct.
  ASSERT_EQ(src->CopyTo(*dst, 100, 50, kPage, CopyPolicy::kAuto), Status::kOk);
  EXPECT_EQ(ReadByte(*dst, 50), 'a');
  EXPECT_EQ(ReadByte(*dst, 50 + kPage - 101), 'a');
  EXPECT_EQ(ReadByte(*dst, 50 + kPage - 100), 'b');
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(PvmHistoryTest, DumpTreeShowsStructure) {
  Cache* src = MakeFilledCache("src", 2, 'a');
  Cache* cpy1 = *vm_.CacheCreate(nullptr, "cpy1");
  Cache* cpy2 = *vm_.CacheCreate(nullptr, "cpy2");
  ASSERT_EQ(src->CopyTo(*cpy1, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_EQ(src->CopyTo(*cpy2, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  std::string dump = vm_.DumpTree(*src);
  EXPECT_NE(dump.find("src"), std::string::npos);
  EXPECT_NE(dump.find("cpy1"), std::string::npos);
  EXPECT_NE(dump.find("cpy2"), std::string::npos);
  EXPECT_NE(dump.find("w1"), std::string::npos);
  EXPECT_NE(dump.find("history={"), std::string::npos);
}

}  // namespace
}  // namespace gvm
