// Seeded DSM cluster chaos harness, shared by tests/dsm_test.cc and the
// tools/ repro+minimize drivers.
//
// One run builds a DsmCluster — several sites, one shared segment crossed by
// a lossy SimNet — arms the net/site-crash fault sites from a seeded injector,
// and drives random loads/stores from per-site worker threads while a
// supervisor thread optionally cuts links and crashes/recovers whole sites.
// The workload is single-writer-per-slot (page p is written only by site
// p % sites), so verification is exact:
//   * during the storm, every successful load must read a value the slot's
//     writer actually issued (monotonic counters: got <= issued);
//   * after the storm — links healed, sites recovered, plans cleared — a
//     determinization round writes one final value per slot and every site
//     must read it back (committed stores survive crashes; uncommitted ones
//     died with their site, never having been acknowledged home);
//   * DsmCluster::OracleCheck replays the directory WAL from empty and
//     checks single-writer/valid-sharer invariants plus byte-exact agreement
//     between the replay and the authoritative store.
#ifndef GVM_TESTS_DSM_HARNESS_H_
#define GVM_TESTS_DSM_HARNESS_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/fault/fault_injector.h"
#include "src/util/rng.h"

namespace gvm {

struct DsmChaosConfig {
  uint64_t seed = 1;
  // Injector plan specs, e.g. {"netdeliver:prob:10"}; see FaultInjector::ApplySpec.
  std::vector<std::string> fault_specs;
  int sites = 3;
  int threads_per_site = 2;
  int steps_per_thread = 200;
  size_t pages = 8;          // shared-segment pages == writer slots
  size_t page_size = 512;
  size_t frames_per_site = 96;
  // Supervisor storms (both seeded): random link cuts healed after heal_us,
  // random single-site crashes recovered after heal_us.
  bool partition_storm = false;
  bool crash_storm = false;
  uint64_t heal_us = 3000;
};

struct DsmChaosReport {
  bool ok = false;
  std::string failure;  // empty when ok
  uint64_t committed_stores = 0;  // Stores acknowledged to a worker
  uint64_t failed_ops = 0;        // loads/stores refused during the storm
  uint64_t crashes = 0;           // whole-site deaths (storm + injected)
  uint64_t recoveries = 0;
  uint64_t grants_drained = 0;    // pending grants drained at re-join
  uint64_t faults_injected = 0;   // injector triggers over the whole run
  DsmCluster::Stats stats;
};

inline DsmChaosReport RunDsmChaos(const DsmChaosConfig& config) {
  DsmChaosReport report;

  DsmCluster cluster(config.page_size);
  std::vector<DsmSite*> sites;
  for (int i = 0; i < config.sites; ++i) {
    sites.push_back(cluster.AddSite(config.frames_per_site));
  }
  const uint64_t seg_bytes = config.pages * config.page_size;
  const Vaddr base = 0x10000000;
  if (cluster.CreateSharedSegment("chaos", seg_bytes) != Status::kOk) {
    report.failure = "CreateSharedSegment failed";
    return report;
  }
  for (DsmSite* site : sites) {
    if (!site->MapShared("chaos", base, seg_bytes, Prot::kReadWrite).ok()) {
      report.failure = "MapShared failed";
      return report;
    }
  }

  FaultInjector injector(config.seed);
  for (const std::string& spec : config.fault_specs) {
    std::string error;
    if (!injector.ApplySpec(spec, &error)) {
      report.failure = "bad fault spec '" + spec + "': " + error;
      return report;
    }
  }
  cluster.BindFaultInjector(&injector);

  // Per-slot monotonic counters: `issued` advances before the store attempt,
  // so any value a reader can ever observe is <= issued at that moment.
  std::vector<std::atomic<uint64_t>> issued(config.pages);
  for (auto& value : issued) {
    value.store(0);
  }
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> failed_ops{0};
  std::atomic<bool> value_error{false};
  std::vector<std::string> thread_failures(
      static_cast<size_t>(config.sites * config.threads_per_site));

  std::atomic<bool> stop_supervisor{false};
  std::atomic<uint64_t> storm_crashes{0};
  std::atomic<uint64_t> storm_recoveries{0};
  std::thread supervisor([&] {
    Rng rng(config.seed ^ 0xC4A0BEEF);
    while (!stop_supervisor.load(std::memory_order_acquire)) {
      // Recover anything dead first (storm-crashed or fault-site-crashed), so
      // injected site deaths never strand the cluster.
      for (DsmSite* site : sites) {
        if (cluster.SiteCrashed(site->id())) {
          Result<uint64_t> drained = cluster.RecoverSite(site->id());
          if (drained.ok()) {
            storm_recoveries.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      cluster.net().HealAll();
      if (config.partition_storm && rng.Chance(1, 2)) {
        NodeId a = static_cast<NodeId>(rng.Below(static_cast<uint64_t>(config.sites)));
        NodeId b = rng.Chance(1, 2)
                       ? kHomeNode
                       : static_cast<NodeId>(rng.Below(static_cast<uint64_t>(config.sites)));
        if (a != b) {
          cluster.net().Partition(a, b);
        }
      }
      if (config.crash_storm && rng.Chance(1, 3)) {
        SiteId victim = static_cast<SiteId>(rng.Below(static_cast<uint64_t>(config.sites)));
        if (cluster.CrashSite(victim) == Status::kOk) {
          storm_crashes.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(config.heal_us));
    }
  });

  std::vector<std::thread> workers;
  for (int s = 0; s < config.sites; ++s) {
    for (int t = 0; t < config.threads_per_site; ++t) {
      const int worker_id = s * config.threads_per_site + t;
      workers.emplace_back([&, s, t, worker_id] {
        DsmSite* site = sites[static_cast<size_t>(s)];
        Rng rng(config.seed * 1000003 + static_cast<uint64_t>(worker_id));
        for (int step = 0; step < config.steps_per_thread; ++step) {
          size_t slot = rng.Below(config.pages);
          Vaddr va = base + slot * config.page_size;
          // Slot ownership is per *thread*: the writer site is slot % sites and
          // within it the writer thread is (slot / sites) % threads.  Two
          // threads of one site share a physical frame, and the simulated RAM
          // is plain host memory — concurrent same-site accesses to one slot
          // would be a host-level data race that real word-granular hardware
          // does not have.  Cross-site accesses are fine: they run on separate
          // physical memories with the protocol copying bytes under locks.
          bool site_matches =
              static_cast<int>(slot % static_cast<size_t>(config.sites)) == s;
          bool is_writer =
              site_matches &&
              static_cast<int>((slot / static_cast<size_t>(config.sites)) %
                               static_cast<size_t>(config.threads_per_site)) == t;
          if (site_matches && !is_writer) {
            continue;  // a sibling thread owns this slot's frame
          }
          if (is_writer && rng.Chance(1, 2)) {
            uint64_t value = issued[slot].fetch_add(1, std::memory_order_relaxed) + 1;
            if (site->Store<uint64_t>(va, value) == Status::kOk) {
              committed.fetch_add(1, std::memory_order_relaxed);
            } else {
              failed_ops.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            Result<uint64_t> got = site->Load<uint64_t>(va);
            if (!got.ok()) {
              failed_ops.fetch_add(1, std::memory_order_relaxed);
            } else if (*got > issued[slot].load(std::memory_order_relaxed)) {
              thread_failures[static_cast<size_t>(worker_id)] =
                  "slot " + std::to_string(slot) + " read value " +
                  std::to_string(*got) + " that its writer never issued (step " +
                  std::to_string(step) + ")";
              value_error.store(true, std::memory_order_relaxed);
              return;
            }
          }
        }
      });
    }
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  // Quiesce: stop the storm, heal every link, revive every site, disarm plans.
  stop_supervisor.store(true, std::memory_order_release);
  supervisor.join();
  report.faults_injected = injector.total_triggers();
  injector.ClearAllPlans();
  injector.set_enabled(false);
  cluster.net().HealAll();
  uint64_t drained_total = 0;
  for (DsmSite* site : sites) {
    if (cluster.SiteCrashed(site->id())) {
      Result<uint64_t> drained = cluster.RecoverSite(site->id());
      if (drained.ok()) {
        drained_total += *drained;
        storm_recoveries.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // Sites whose writebacks failed during the storm tripped into degraded mode
  // (writes refused); on the healed network one successful sync recovers them.
  for (DsmSite* site : sites) {
    for (int attempt = 0; attempt < 3 && site->SyncShared() != Status::kOk; ++attempt) {
    }
  }

  std::ostringstream failure;
  for (const std::string& tf : thread_failures) {
    if (!tf.empty()) {
      failure << tf << "; ";
    }
  }

  // Determinization round: on a healthy cluster, one final value per slot must
  // commit and be visible from every site — committed data survived the storm,
  // lost sites forgot only what was never acknowledged home.
  for (size_t slot = 0; slot < config.pages && !value_error.load(); ++slot) {
    DsmSite* writer = sites[slot % static_cast<size_t>(config.sites)];
    Vaddr va = base + slot * config.page_size;
    uint64_t final_value = issued[slot].fetch_add(1, std::memory_order_relaxed) + 1;
    if (writer->Store<uint64_t>(va, final_value) != Status::kOk) {
      failure << "final store on healthy cluster failed for slot " << slot << "; ";
      continue;
    }
    for (DsmSite* site : sites) {
      Result<uint64_t> got = site->Load<uint64_t>(va);
      if (!got.ok()) {
        failure << "final load failed at site " << site->id() << " slot " << slot
                << "; ";
      } else if (*got != final_value) {
        failure << "slot " << slot << " diverged at site " << site->id() << ": got "
                << *got << " want " << final_value << "; ";
      }
    }
  }

  // Shadow oracle: structural invariants + WAL replay against live state.
  std::string oracle_diagnostic;
  if (cluster.OracleCheck(&oracle_diagnostic) != Status::kOk) {
    failure << "oracle: " << oracle_diagnostic << "; ";
  }
  for (DsmSite* site : sites) {
    if (site->vm().CheckInvariants() != Status::kOk) {
      failure << "PVM invariants violated at site " << site->id() << "; ";
    }
  }

  report.stats = cluster.stats();
  report.committed_stores = committed.load();
  report.failed_ops = failed_ops.load();
  report.crashes = report.stats.site_crashes;
  report.recoveries = report.stats.site_recoveries;
  report.grants_drained = report.stats.pending_grants_drained;
  if (failure.str().empty()) {
    report.ok = true;
  } else {
    std::ostringstream out;
    out << "dsm chaos failed (seed=" << config.seed << " sites=" << config.sites
        << " threads/site=" << config.threads_per_site << " specs=[";
    for (const std::string& spec : config.fault_specs) {
      out << spec << " ";
    }
    out << "] partition_storm=" << config.partition_storm
        << " crash_storm=" << config.crash_storm << "): " << failure.str() << "\n"
        << "committed=" << report.committed_stores << " failed_ops=" << report.failed_ops
        << " crashes=" << report.crashes << " recoveries=" << report.recoveries
        << " drops=" << report.stats.network_drops
        << " retransmits=" << report.stats.network_retransmits
        << " dedup=" << report.stats.dedup_replays
        << " aborted=" << report.stats.transitions_aborted
        << " wal=" << report.stats.wal_records;
    report.failure = out.str();
  }
  return report;
}

}  // namespace gvm

#endif  // GVM_TESTS_DSM_HARNESS_H_
