// Shared fixtures for the memory-manager tests: an in-memory segment driver and a
// small world (physical memory + MMU + manager) builder.
#ifndef GVM_TESTS_TEST_UTIL_H_
#define GVM_TESTS_TEST_UTIL_H_

#include <atomic>
#include <cstring>
#include <map>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/sync/annotated_mutex.h"
#include "src/gmi/cache.h"
#include "src/gmi/segment_driver.h"

namespace gvm {

// A segment driver backed by an in-process sparse byte store.  Mimics a mapper: on
// pullIn it fills the cache from the store (zero for holes); on pushOut it copies
// the cache data back.  Counts upcalls so tests can assert on traffic.
//
// Thread-safe like a real mapper must be: global page-out can push out one
// thread's pages from another thread's fault, so a driver sees concurrent
// upcalls even when each cache has its own driver.
class TestStoreDriver : public SegmentDriver {
 public:
  explicit TestStoreDriver(size_t page_size) : page_size_(page_size) {}

  Status PullIn(Cache& cache, SegOffset offset, size_t size, Access access_mode) override {
    ++pull_ins;
    if (fail_pull_in) {
      return Status::kBusError;
    }
    if (injector != nullptr) {
      Status injected = injector->Check(FaultSite::kMapperRead);
      if (injected != Status::kOk) {
        return injected;
      }
    }
    std::vector<std::byte> buffer(size);
    {
      MutexLock guard(mu_);
      for (size_t i = 0; i < size; i += page_size_) {
        auto it = store_.find(offset + i);
        if (it != store_.end()) {
          std::memcpy(buffer.data() + i, it->second.data(),
                      std::min(page_size_, size - i));
        }
      }
    }
    Prot prot = read_only_fills ? Prot::kReadExecute : Prot::kAll;
    (void)access_mode;
    return cache.FillUp(offset, buffer.data(), size, prot);
  }

  Status GetWriteAccess(Cache& cache, SegOffset offset, size_t size) override {
    ++write_access_requests;
    (void)cache;
    (void)offset;
    (void)size;
    return grant_write_access ? Status::kOk : Status::kPermissionDenied;
  }

  Status PushOut(Cache& cache, SegOffset offset, size_t size) override {
    ++push_outs;
    if (fail_push_out) {
      return Status::kBusError;
    }
    if (injector != nullptr) {
      Status injected = injector->Check(FaultSite::kMapperWrite);
      if (injected != Status::kOk) {
        return injected;
      }
    }
    std::vector<std::byte> buffer(size);
    Status s = cache.CopyBack(offset, buffer.data(), size);
    if (s != Status::kOk) {
      return s;
    }
    MutexLock guard(mu_);
    for (size_t i = 0; i < size; i += page_size_) {
      auto& page = store_[offset + i];
      page.assign(buffer.data() + i,
                  buffer.data() + i + std::min(page_size_, size - i));
      page.resize(page_size_);
    }
    return Status::kOk;
  }

  // Pre-populate the backing store.
  void Preload(SegOffset offset, const void* data, size_t size) {
    const auto* bytes = static_cast<const std::byte*>(data);
    MutexLock guard(mu_);
    for (size_t i = 0; i < size; i += page_size_) {
      auto& page = store_[offset + i];
      page.assign(bytes + i, bytes + i + std::min(page_size_, size - i));
      page.resize(page_size_);
    }
  }

  bool HasPage(SegOffset offset) const {
    MutexLock guard(mu_);
    return store_.contains(offset);
  }
  const std::vector<std::byte>& PageData(SegOffset offset) {
    MutexLock guard(mu_);
    return store_[offset];
  }

  std::atomic<int> pull_ins{0};
  std::atomic<int> push_outs{0};
  std::atomic<int> write_access_requests{0};
  bool fail_pull_in = false;
  bool fail_push_out = false;
  bool grant_write_access = true;
  bool read_only_fills = false;
  // Optional fault injection on kMapperRead/kMapperWrite (the driver stands in
  // for the mapper's I/O path); null disables it.
  FaultInjector* injector = nullptr;

 private:
  const size_t page_size_;
  // kClient: the store lock is taken during mapper upcalls, with no kernel lock
  // held (the managers drop theirs around pullIn/pushOut), and is always
  // released before FillUp/CopyBack re-enter the manager (kMmManager).
  mutable Mutex mu_{Rank::kClient, "TestStoreDriver::mu_"};
  std::map<SegOffset, std::vector<std::byte>> store_ GVM_GUARDED_BY(mu_);  // page-aligned keys
};

// A SegmentRegistry handing out swap drivers for MM-created caches.
class TestSwapRegistry : public SegmentRegistry {
 public:
  explicit TestSwapRegistry(size_t page_size) : page_size_(page_size) {}

  SegmentDriver* SegmentCreate(Cache& cache) override {
    (void)cache;
    if (injector != nullptr && injector->Check(FaultSite::kSwapAlloc) != Status::kOk) {
      return nullptr;  // backing store exhausted: the MM sees kNoSwap
    }
    ++segments_created;
    // PVM drops its lock around this upcall and only serializes per cache
    // (driver_requested_), so two threads evicting pages of *different*
    // caches land here concurrently.
    MutexLock guard(mu_);
    drivers_.push_back(std::make_unique<TestStoreDriver>(page_size_));
    drivers_.back()->injector = injector;
    return drivers_.back().get();
  }

  std::atomic<int> segments_created{0};
  // Optional fault injection: kSwapAlloc here, propagated to created drivers
  // for their kMapperRead/kMapperWrite sites.
  FaultInjector* injector = nullptr;

 private:
  const size_t page_size_;
  mutable Mutex mu_{Rank::kClient, "TestSwapRegistry::mu_"};
  std::vector<std::unique_ptr<TestStoreDriver>> drivers_ GVM_GUARDED_BY(mu_);
};

}  // namespace gvm

#endif  // GVM_TESTS_TEST_UTIL_H_
