// Hardware-model tests: physical memory, both MMU implementations (parameterized —
// the PVM portability claim starts here), and the CPU access path.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>

#include "src/hal/cpu.h"
#include "src/hal/hash_mmu.h"
#include "src/hal/phys_memory.h"
#include "src/hal/soft_mmu.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

TEST(PhysicalMemoryTest, AllocateFreeCycle) {
  PhysicalMemory mem(4, kPage);
  EXPECT_EQ(mem.free_frames(), 4u);
  auto f0 = mem.AllocateFrame();
  ASSERT_TRUE(f0.ok());
  EXPECT_EQ(mem.free_frames(), 3u);
  EXPECT_TRUE(mem.IsAllocated(*f0));
  mem.FreeFrame(*f0);
  EXPECT_EQ(mem.free_frames(), 4u);
  EXPECT_FALSE(mem.IsAllocated(*f0));
}

TEST(PhysicalMemoryTest, ExhaustionReturnsNoMemory) {
  PhysicalMemory mem(2, kPage);
  ASSERT_TRUE(mem.AllocateFrame().ok());
  ASSERT_TRUE(mem.AllocateFrame().ok());
  EXPECT_EQ(mem.AllocateFrame().status(), Status::kNoMemory);
}

TEST(PhysicalMemoryTest, FramesAreDistinctStorage) {
  PhysicalMemory mem(2, kPage);
  FrameIndex a = *mem.AllocateFrame();
  FrameIndex b = *mem.AllocateFrame();
  std::memset(mem.FrameData(a), 0xAA, kPage);
  std::memset(mem.FrameData(b), 0x55, kPage);
  EXPECT_EQ(static_cast<unsigned char>(mem.FrameData(a)[0]), 0xAAu);
  EXPECT_EQ(static_cast<unsigned char>(mem.FrameData(b)[kPage - 1]), 0x55u);
}

TEST(PhysicalMemoryTest, CopyAndZeroFrame) {
  PhysicalMemory mem(2, kPage);
  FrameIndex a = *mem.AllocateFrame();
  FrameIndex b = *mem.AllocateFrame();
  std::memset(mem.FrameData(a), 0x7F, kPage);
  mem.CopyFrame(b, a);
  EXPECT_EQ(std::memcmp(mem.FrameData(a), mem.FrameData(b), kPage), 0);
  mem.ZeroFrame(a);
  EXPECT_EQ(static_cast<unsigned char>(mem.FrameData(a)[100]), 0u);
  EXPECT_EQ(mem.stats().frame_copies, 1u);
  EXPECT_EQ(mem.stats().zero_fills, 1u);
}

// ---------------------------------------------------------------------------
// Both MMU models must behave identically: parameterized over factories.
// ---------------------------------------------------------------------------

using MmuFactory = std::function<std::unique_ptr<Mmu>(size_t)>;

class MmuTest : public ::testing::TestWithParam<std::pair<const char*, MmuFactory>> {
 protected:
  void SetUp() override { mmu_ = GetParam().second(kPage); }
  std::unique_ptr<Mmu> mmu_;
};

TEST_P(MmuTest, MapTranslateUnmap) {
  AsId as = *mmu_->CreateAddressSpace();
  EXPECT_EQ(mmu_->Translate(as, 0x1000, Access::kRead).status(), Status::kSegmentationFault);
  ASSERT_EQ(mmu_->Map(as, 0x1000, 7, Prot::kReadWrite), Status::kOk);
  EXPECT_EQ(*mmu_->Translate(as, 0x1000, Access::kRead), 7u);
  EXPECT_EQ(*mmu_->Translate(as, 0x1FFF, Access::kWrite), 7u);  // same page
  ASSERT_EQ(mmu_->Unmap(as, 0x1000), Status::kOk);
  EXPECT_EQ(mmu_->Translate(as, 0x1000, Access::kRead).status(), Status::kSegmentationFault);
}

TEST_P(MmuTest, ProtectionFaults) {
  AsId as = *mmu_->CreateAddressSpace();
  ASSERT_EQ(mmu_->Map(as, 0, 3, Prot::kRead), Status::kOk);
  EXPECT_TRUE(mmu_->Translate(as, 0, Access::kRead).ok());
  EXPECT_EQ(mmu_->Translate(as, 0, Access::kWrite).status(), Status::kProtectionFault);
  EXPECT_EQ(mmu_->Translate(as, 0, Access::kExecute).status(), Status::kProtectionFault);
  ASSERT_EQ(mmu_->Protect(as, 0, Prot::kReadWrite), Status::kOk);
  EXPECT_TRUE(mmu_->Translate(as, 0, Access::kWrite).ok());
}

TEST_P(MmuTest, ReferencedAndDirtyBits) {
  AsId as = *mmu_->CreateAddressSpace();
  ASSERT_EQ(mmu_->Map(as, 0x2000, 1, Prot::kReadWrite), Status::kOk);
  MmuEntry entry = *mmu_->Lookup(as, 0x2000);
  EXPECT_FALSE(entry.referenced);
  EXPECT_FALSE(entry.dirty);
  ASSERT_TRUE(mmu_->Translate(as, 0x2000, Access::kRead).ok());
  entry = *mmu_->Lookup(as, 0x2000);
  EXPECT_TRUE(entry.referenced);
  EXPECT_FALSE(entry.dirty);
  ASSERT_TRUE(mmu_->Translate(as, 0x2000, Access::kWrite).ok());
  entry = *mmu_->Lookup(as, 0x2000);
  EXPECT_TRUE(entry.dirty);
  // Test-and-clear drives the clock hand.
  EXPECT_TRUE(*mmu_->TestAndClearReferenced(as, 0x2000));
  EXPECT_FALSE(*mmu_->TestAndClearReferenced(as, 0x2000));
}

TEST_P(MmuTest, SameFrameRemapPreservesReferencedAndDirty) {
  AsId as = *mmu_->CreateAddressSpace();
  ASSERT_EQ(mmu_->Map(as, 0x4000, 7, Prot::kReadWrite), Status::kOk);
  ASSERT_TRUE(mmu_->Translate(as, 0x4000, Access::kWrite).ok());
  ASSERT_TRUE((*mmu_->Lookup(as, 0x4000)).dirty);

  // Re-mapping the same frame is a protection change in place: the
  // accessed/modified bits must survive (TlbMmu's write-hit path depends on a
  // same-frame, non-downgrading re-map not wiping the dirty bit).
  ASSERT_EQ(mmu_->Map(as, 0x4000, 7, Prot::kAll), Status::kOk);
  MmuEntry entry = *mmu_->Lookup(as, 0x4000);
  EXPECT_TRUE(entry.referenced);
  EXPECT_TRUE(entry.dirty);

  // Installing a different frame is a fresh mapping: bits start clear.
  ASSERT_EQ(mmu_->Map(as, 0x4000, 8, Prot::kReadWrite), Status::kOk);
  entry = *mmu_->Lookup(as, 0x4000);
  EXPECT_FALSE(entry.referenced);
  EXPECT_FALSE(entry.dirty);
}

TEST_P(MmuTest, AddressSpaceIsolation) {
  AsId a = *mmu_->CreateAddressSpace();
  AsId b = *mmu_->CreateAddressSpace();
  ASSERT_EQ(mmu_->Map(a, 0x5000, 11, Prot::kRead), Status::kOk);
  EXPECT_TRUE(mmu_->Translate(a, 0x5000, Access::kRead).ok());
  EXPECT_EQ(mmu_->Translate(b, 0x5000, Access::kRead).status(), Status::kSegmentationFault);
}

TEST_P(MmuTest, DestroyAddressSpaceDropsMappings) {
  AsId as = *mmu_->CreateAddressSpace();
  ASSERT_EQ(mmu_->Map(as, 0x3000, 2, Prot::kRead), Status::kOk);
  ASSERT_EQ(mmu_->DestroyAddressSpace(as), Status::kOk);
  EXPECT_EQ(mmu_->Map(as, 0x3000, 2, Prot::kRead), Status::kNotFound);
  EXPECT_EQ(mmu_->DestroyAddressSpace(as), Status::kNotFound);
}

TEST_P(MmuTest, SparseHugeAddresses) {
  AsId as = *mmu_->CreateAddressSpace();
  // Map pages scattered over a 2^40 range: must work and stay cheap.
  for (uint64_t i = 0; i < 64; ++i) {
    Vaddr va = (i * 0x40000000ull) + 0x1000;
    ASSERT_EQ(mmu_->Map(as, va, static_cast<FrameIndex>(i), Prot::kRead), Status::kOk);
  }
  for (uint64_t i = 0; i < 64; ++i) {
    Vaddr va = (i * 0x40000000ull) + 0x1000;
    EXPECT_EQ(*mmu_->Translate(as, va, Access::kRead), i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMmus, MmuTest,
    ::testing::Values(
        std::make_pair("SoftMmu",
                       MmuFactory([](size_t page) -> std::unique_ptr<Mmu> {
                         return std::make_unique<SoftMmu>(page);
                       })),
        std::make_pair("HashMmu", MmuFactory([](size_t page) -> std::unique_ptr<Mmu> {
                         return std::make_unique<HashMmu>(page);
                       }))),
    [](const auto& info) { return info.param.first; });

TEST(SoftMmuTest, LeafTablesAreReclaimed) {
  SoftMmu mmu(kPage, /*leaf_bits=*/4);
  AsId as = *mmu.CreateAddressSpace();
  ASSERT_EQ(mmu.Map(as, 0x0000, 0, Prot::kRead), Status::kOk);
  ASSERT_EQ(mmu.Map(as, 0x100000, 1, Prot::kRead), Status::kOk);
  EXPECT_EQ(mmu.LeafTableCount(as), 2u);
  ASSERT_EQ(mmu.Unmap(as, 0x100000), Status::kOk);
  EXPECT_EQ(mmu.LeafTableCount(as), 1u);
}

// ---------------------------------------------------------------------------
// CPU access path
// ---------------------------------------------------------------------------

class CountingHandler : public FaultHandler {
 public:
  CountingHandler(Mmu& mmu, PhysicalMemory& mem) : mmu_(mmu), mem_(mem) {}

  Status HandleFault(const PageFault& fault) override {
    ++faults;
    if (fail_with != Status::kOk) {
      return fail_with;
    }
    auto frame = mem_.AllocateFrame();
    if (!frame.ok()) {
      return frame.status();
    }
    mem_.ZeroFrame(*frame);
    Vaddr page_va = fault.address & ~(mem_.page_size() - 1);
    return mmu_.Map(fault.address_space, page_va, *frame, Prot::kAll);
  }

  int faults = 0;
  Status fail_with = Status::kOk;

 private:
  Mmu& mmu_;
  PhysicalMemory& mem_;
};

TEST(CpuTest, DemandZeroThroughFaultHandler) {
  PhysicalMemory mem(8, kPage);
  SoftMmu mmu(kPage);
  Cpu cpu(mem, mmu);
  CountingHandler handler(mmu, mem);
  cpu.BindFaultHandler(&handler);
  AsId as = *mmu.CreateAddressSpace();

  uint32_t value = 0xdeadbeef;
  ASSERT_EQ(cpu.Write(as, 0x1000, &value, sizeof(value)), Status::kOk);
  EXPECT_EQ(handler.faults, 1);
  uint32_t back = 0;
  ASSERT_EQ(cpu.Read(as, 0x1000, &back, sizeof(back)), Status::kOk);
  EXPECT_EQ(back, value);
  EXPECT_EQ(handler.faults, 1);  // second access hits the installed mapping
}

TEST(CpuTest, AccessSpanningPages) {
  PhysicalMemory mem(8, kPage);
  SoftMmu mmu(kPage);
  Cpu cpu(mem, mmu);
  CountingHandler handler(mmu, mem);
  cpu.BindFaultHandler(&handler);
  AsId as = *mmu.CreateAddressSpace();

  std::vector<char> data(kPage * 2, 'x');
  ASSERT_EQ(cpu.Write(as, kPage / 2, data.data(), data.size()), Status::kOk);
  EXPECT_EQ(handler.faults, 3);  // touches three pages
  std::vector<char> back(data.size());
  ASSERT_EQ(cpu.Read(as, kPage / 2, back.data(), back.size()), Status::kOk);
  EXPECT_EQ(back, data);
}

TEST(CpuTest, UnrecoverableFaultSurfaces) {
  PhysicalMemory mem(2, kPage);
  SoftMmu mmu(kPage);
  Cpu cpu(mem, mmu);
  CountingHandler handler(mmu, mem);
  handler.fail_with = Status::kSegmentationFault;
  cpu.BindFaultHandler(&handler);
  AsId as = *mmu.CreateAddressSpace();
  char c = 0;
  EXPECT_EQ(cpu.Read(as, 0x9000, &c, 1), Status::kSegmentationFault);
}

TEST(CpuTest, TypedLoadStore) {
  PhysicalMemory mem(4, kPage);
  SoftMmu mmu(kPage);
  Cpu cpu(mem, mmu);
  CountingHandler handler(mmu, mem);
  cpu.BindFaultHandler(&handler);
  AsId as = *mmu.CreateAddressSpace();
  ASSERT_EQ(cpu.Store<uint64_t>(as, 0x4000, 0x0123456789abcdefull), Status::kOk);
  EXPECT_EQ(*cpu.Load<uint64_t>(as, 0x4000), 0x0123456789abcdefull);
}

}  // namespace
}  // namespace gvm
