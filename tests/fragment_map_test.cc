// FragmentMap is the bedrock of the section 4.2.4 per-fragment parent/history
// lists; these tests pin down its replace/split/clip semantics exactly.
#include <gtest/gtest.h>

#include "src/pvm/fragment_map.h"

namespace gvm {
namespace {

struct Target {
  int id = 0;
  SegOffset base = 0;

  Target Advanced(uint64_t delta) const { return Target{id, base + delta}; }
  bool operator==(const Target&) const = default;
};

using Map = FragmentMap<Target>;

TEST(FragmentMapTest, EmptyFindsNothing) {
  Map map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(1000), nullptr);
}

TEST(FragmentMapTest, InsertAndFindBoundaries) {
  Map map;
  map.Insert(100, 50, Target{1, 0});
  EXPECT_EQ(map.Find(99), nullptr);
  ASSERT_NE(map.Find(100), nullptr);
  EXPECT_EQ(map.Find(100)->value.id, 1);
  ASSERT_NE(map.Find(149), nullptr);
  EXPECT_EQ(map.Find(150), nullptr);
}

TEST(FragmentMapTest, InsertReplacesOverlap) {
  Map map;
  map.Insert(0, 100, Target{1, 0});
  map.Insert(40, 20, Target{2, 0});
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(map.Find(0)->value.id, 1);
  EXPECT_EQ(map.Find(39)->value.id, 1);
  EXPECT_EQ(map.Find(40)->value.id, 2);
  EXPECT_EQ(map.Find(59)->value.id, 2);
  EXPECT_EQ(map.Find(60)->value.id, 1);
  EXPECT_EQ(map.fragment_count(), 3u);
}

TEST(FragmentMapTest, SplitAdvancesValueBase) {
  Map map;
  // Fragment [0,100) maps to target offsets starting at 1000.
  map.Insert(0, 100, Target{1, 1000});
  // Punch a hole in the middle.
  map.Erase(40, 20);
  // Left part keeps its base; right tail is advanced by the cut (60).
  ASSERT_NE(map.Find(10), nullptr);
  EXPECT_EQ(map.Find(10)->value.base, 1000u);
  EXPECT_EQ(map.Find(40), nullptr);
  EXPECT_EQ(map.Find(59), nullptr);
  ASSERT_NE(map.Find(60), nullptr);
  EXPECT_EQ(map.Find(60)->value.base, 1060u);
  EXPECT_EQ(map.Find(60)->start, 60u);
  EXPECT_EQ(map.Find(60)->size, 40u);
}

TEST(FragmentMapTest, EraseAcrossMultipleFragments) {
  Map map;
  map.Insert(0, 10, Target{1, 0});
  map.Insert(10, 10, Target{2, 0});
  map.Insert(20, 10, Target{3, 0});
  map.Erase(5, 20);  // cuts into 1, removes 2, cuts into 3
  EXPECT_EQ(map.Find(4)->value.id, 1);
  EXPECT_EQ(map.Find(5), nullptr);
  EXPECT_EQ(map.Find(24), nullptr);
  EXPECT_EQ(map.Find(25)->value.id, 3);
  EXPECT_EQ(map.Find(25)->value.base, 5u);  // advanced by the clip
}

TEST(FragmentMapTest, OverlappingClipsToRange) {
  Map map;
  map.Insert(0, 100, Target{1, 500});
  auto overlaps = map.Overlapping(30, 40);
  ASSERT_EQ(overlaps.size(), 1u);
  EXPECT_EQ(overlaps[0].start, 30u);
  EXPECT_EQ(overlaps[0].size, 40u);
  EXPECT_EQ(overlaps[0].value.base, 530u);  // advanced by 30
}

TEST(FragmentMapTest, OverlappingSpanningSeveral) {
  Map map;
  map.Insert(0, 10, Target{1, 0});
  map.Insert(20, 10, Target{2, 0});
  map.Insert(40, 10, Target{3, 0});
  auto overlaps = map.Overlapping(5, 40);  // [5, 45)
  ASSERT_EQ(overlaps.size(), 3u);
  EXPECT_EQ(overlaps[0].value.id, 1);
  EXPECT_EQ(overlaps[0].start, 5u);
  EXPECT_EQ(overlaps[0].size, 5u);
  EXPECT_EQ(overlaps[1].value.id, 2);
  EXPECT_EQ(overlaps[1].size, 10u);
  EXPECT_EQ(overlaps[2].value.id, 3);
  EXPECT_EQ(overlaps[2].start, 40u);
  EXPECT_EQ(overlaps[2].size, 5u);
}

TEST(FragmentMapTest, InsertOverExactRangeReplaces) {
  Map map;
  map.Insert(0, 10, Target{1, 0});
  map.Insert(0, 10, Target{2, 0});
  EXPECT_EQ(map.fragment_count(), 1u);
  EXPECT_EQ(map.Find(5)->value.id, 2);
}

TEST(FragmentMapTest, InsertCoveringEverythingReplacesAll) {
  Map map;
  map.Insert(10, 10, Target{1, 0});
  map.Insert(30, 10, Target{2, 0});
  map.Insert(0, 100, Target{3, 0});
  EXPECT_EQ(map.fragment_count(), 1u);
  EXPECT_EQ(map.Find(15)->value.id, 3);
  EXPECT_EQ(map.Find(35)->value.id, 3);
}

TEST(FragmentMapTest, ForEachIsSorted) {
  Map map;
  map.Insert(50, 10, Target{2, 0});
  map.Insert(0, 10, Target{1, 0});
  map.Insert(90, 10, Target{3, 0});
  std::vector<SegOffset> starts;
  map.ForEach([&](const Map::Fragment& f) { starts.push_back(f.start); });
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0u);
  EXPECT_EQ(starts[1], 50u);
  EXPECT_EQ(starts[2], 90u);
}

}  // namespace
}  // namespace gvm
