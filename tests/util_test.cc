#include <gtest/gtest.h>

#include "src/util/align.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace gvm {
namespace {

TEST(StatusTest, NamesAreStable) {
  EXPECT_EQ(StatusName(Status::kOk), "kOk");
  EXPECT_EQ(StatusName(Status::kNoMemory), "kNoMemory");
  EXPECT_EQ(StatusName(Status::kSegmentationFault), "kSegmentationFault");
  EXPECT_EQ(StatusName(Status::kRetry), "kRetry");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::kOk);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::kNoMemory;
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), Status::kNoMemory);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(*r);
  EXPECT_EQ(*taken, 7);
}

TEST(AlignTest, PowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(8192));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(8191));
}

TEST(AlignTest, UpDown) {
  EXPECT_EQ(AlignDown(8191, 4096), 4096u);
  EXPECT_EQ(AlignDown(8192, 4096), 8192u);
  EXPECT_EQ(AlignUp(1, 4096), 4096u);
  EXPECT_EQ(AlignUp(4096, 4096), 4096u);
  EXPECT_EQ(AlignUp(0, 4096), 0u);
  EXPECT_TRUE(IsAligned(0, 8192));
  EXPECT_FALSE(IsAligned(1, 8192));
}

TEST(AlignTest, PagesFor) {
  EXPECT_EQ(PagesFor(0, 8192), 0u);
  EXPECT_EQ(PagesFor(1, 8192), 1u);
  EXPECT_EQ(PagesFor(8192, 8192), 1u);
  EXPECT_EQ(PagesFor(8193, 8192), 2u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace gvm
