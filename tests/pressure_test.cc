// Memory-pressure robustness (DESIGN.md §15): the working-set pageout daemon,
// the modified/standby queues and soft faults, the single-sweeper gate, the
// emergency reserve, bounded-wait allocation, and the overcommit chaos storm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/nucleus/journal_mapper.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"
#include "tests/pressure_harness.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

// A full kernel world (PagedVm + Nucleus + journaled swap mapper) for the
// deterministic pressure tests; the storm tests use RunPressureStorm instead.
struct PressureWorld {
  PhysicalMemory memory;
  SoftMmu mmu;
  PagedVm vm;
  Nucleus nucleus;
  JournalStore store;
  JournaledSwapMapper mapper;
  MapperServer server;
  FaultInjector injector;

  PressureWorld(size_t frames, const PagedVm::Options& options, uint64_t seed = 1)
      : memory(frames, kPage),
        mmu(kPage),
        vm(memory, mmu, options),
        nucleus(vm, Nucleus::Options{}),
        store(kPage),
        mapper(store),
        server(nucleus.ipc(), mapper),
        injector(seed) {
    nucleus.BindDefaultMapper(&server);
    mapper.BindFaultInjector(&injector);
    server.BindFaultInjector(&injector);
    memory.BindFaultInjector(&injector);
  }
  // Members destruct in reverse order, so the Nucleus (and the mapper the
  // daemon pushes through) dies before the PagedVm: quiesce the daemon first.
  ~PressureWorld() { vm.StopPageoutDaemon(); }

  SegmentManager& sm() { return nucleus.segment_manager(); }
};

// ---------------------------------------------------------------------------
// Satellite (a): the single-sweeper gate under an allocation storm
// ---------------------------------------------------------------------------

// Eight threads fault far more pages than there are frames.  Before the gate,
// every thread below low water ran its own clock sweep concurrently — evicting
// each other's pages and multiplying pushOut traffic.  Now exactly one thread
// sweeps at a time and the rest sleep on the pass: under this storm at least
// one thread must have taken the wait path, and the world stays consistent.
TEST(PressureGate, SingleSweeperUnderAllocationStorm) {
  constexpr int kThreads = 8;
  constexpr size_t kPagesPerThread = 8;
  PhysicalMemory memory(24, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 4;
  options.high_water_frames = 8;
  PagedVm vm(memory, mmu, options);
  TestStoreDriver driver(kPage);
  // Slow every push-out (without failing it) so each sweep takes long enough
  // that the other storm threads reliably arrive while it runs.
  FaultInjector slowdown(1);
  std::string spec_error;
  ASSERT_TRUE(slowdown.ApplySpec("write:prob:0:latency=300", &spec_error))
      << spec_error;
  driver.injector = &slowdown;

  std::vector<Context*> contexts(kThreads);
  std::vector<Cache*> caches(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    contexts[t] = *vm.ContextCreate();
    caches[t] = *vm.CacheCreate(&driver, "storm" + std::to_string(t));
    ASSERT_TRUE(vm.RegionCreate(*contexts[t], 0x10000, kPagesPerThread * kPage,
                                Prot::kReadWrite, *caches[t], 0)
                    .ok());
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AsId as = contexts[t]->address_space();
      for (int round = 0; round < 6; ++round) {
        for (size_t p = 0; p < kPagesPerThread; ++p) {
          uint64_t value = (static_cast<uint64_t>(t) << 32) | (round * 100 + p);
          ASSERT_EQ(vm.cpu().Write(as, 0x10000 + p * kPage, &value, sizeof(value)),
                    Status::kOk);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  const PvmDetailStats detail = vm.detail_stats();
  EXPECT_GE(detail.sweeps_started, 1u);
  EXPECT_GT(detail.sweep_waits, 0u)
      << "an 8-thread storm over 24 frames never parked a thread on the gate";
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Tentpole: queues, soft faults, and batched daemon pushes
// ---------------------------------------------------------------------------

// Dirtied pages whose region dies land on the modified queue; one reclaim pass
// pushes them in batches (one mapper write per batch — which the journaling
// mapper commits as ONE record) and moves them to standby.  Re-faulting a
// standby page is a soft fault: rescued from the queue with zero mapper reads.
TEST(PressureQueues, BatchedPushesAndStandbySoftFaults) {
  constexpr size_t kFrames = 64;
  constexpr size_t kPages = 20;
  PagedVm::Options options;
  options.low_water_frames = 4;
  options.high_water_frames = 50;  // far above usage: the pass pushes + frees a few
  options.pushout_batch_pages = 8;
  PressureWorld world(kFrames, options);

  Context* ctx = *world.vm.ContextCreate();
  Cache* cache = *world.sm().AcquireTemporaryCache("queues");
  Region* region =
      *world.vm.RegionCreate(*ctx, 0x40000, kPages * kPage, Prot::kReadWrite, *cache, 0);
  const AsId as = ctx->address_space();

  // Resolve the swap segment up front so every daemon push below is batched.
  uint64_t v0 = 7;
  ASSERT_EQ(world.vm.cpu().Write(as, 0x40000, &v0, sizeof(v0)), Status::kOk);
  ASSERT_EQ(cache->Sync(), Status::kOk);

  for (size_t p = 0; p < kPages; ++p) {
    const uint64_t value = 1000 + p;
    ASSERT_EQ(world.vm.cpu().Write(as, 0x40000 + p * kPage, &value, sizeof(value)),
              Status::kOk);
  }
  ASSERT_EQ(region->Destroy(), Status::kOk);  // unmap hooks feed the modified queue
  EXPECT_EQ(world.vm.ModifiedQueueLength(), kPages);
  EXPECT_EQ(world.vm.WorkingSetPages(as), 0u);

  const uint64_t writes_before = world.sm().stats().mapper_writes;
  world.vm.RunPageoutPassForTest();
  const uint64_t writes_after = world.sm().stats().mapper_writes;

  const PvmDetailStats after_pass = world.vm.detail_stats();
  EXPECT_EQ(world.vm.ModifiedQueueLength(), 0u);
  EXPECT_GE(after_pass.batch_pushes, 2u);
  EXPECT_GE(after_pass.batch_push_pages, 16u);
  // 20 contiguous dirty pages, batch cap 8: three mapper writes (8+8+4), not
  // twenty.  Each write is one WAL commit record in the journaled mapper.
  EXPECT_EQ(writes_after - writes_before, 3u);
  // Phase 4 harvested standby only down to the high-water target; the rest
  // stayed resident awaiting rescue.
  EXPECT_GT(world.vm.StandbyQueueLength(), 0u);

  // Re-fault every page: standby rescues must not touch the mapper.
  region = *world.vm.RegionCreate(*ctx, 0x40000, kPages * kPage, Prot::kReadWrite, *cache, 0);
  uint64_t soft_rescues = 0;
  for (size_t p = 0; p < kPages; ++p) {
    const uint64_t reads_before = world.sm().stats().mapper_reads;
    const uint64_t hits_before = world.vm.detail_stats().standby_hits;
    uint64_t got = 0;
    ASSERT_EQ(world.vm.cpu().Read(as, 0x40000 + p * kPage, &got, sizeof(got)),
              Status::kOk);
    EXPECT_EQ(got, 1000 + p) << "page " << p << " lost its value across pageout";
    const uint64_t reads_delta = world.sm().stats().mapper_reads - reads_before;
    const uint64_t hits_delta = world.vm.detail_stats().standby_hits - hits_before;
    if (hits_delta > 0) {
      ++soft_rescues;
      EXPECT_EQ(reads_delta, 0u)
          << "standby re-fault of page " << p << " issued mapper I/O";
    }
  }
  EXPECT_GT(soft_rescues, 0u) << "no re-fault was ever served from the standby queue";
  EXPECT_GT(world.vm.detail_stats().soft_faults, 0u);
  EXPECT_EQ(world.vm.CheckInvariants(), Status::kOk);
  ASSERT_EQ(region->Destroy(), Status::kOk);
  (void)ctx->Destroy();
  world.sm().Release(cache);
}

// The fault-time working-set trim keeps each address space at its configured
// cap no matter how many pages it touches.
TEST(PressureQueues, WorkingSetLimitCapsResidency) {
  constexpr size_t kLimit = 4;
  constexpr size_t kPages = 16;
  PhysicalMemory memory(64, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.working_set_limit_pages = kLimit;
  PagedVm vm(memory, mmu, options);
  TestStoreDriver driver(kPage);

  Context* ctx = *vm.ContextCreate();
  Cache* cache = *vm.CacheCreate(&driver, "ws");
  ASSERT_TRUE(
      vm.RegionCreate(*ctx, 0x10000, kPages * kPage, Prot::kReadWrite, *cache, 0).ok());
  const AsId as = ctx->address_space();

  for (size_t p = 0; p < kPages; ++p) {
    uint64_t value = p;
    ASSERT_EQ(vm.cpu().Write(as, 0x10000 + p * kPage, &value, sizeof(value)), Status::kOk);
    EXPECT_LE(vm.WorkingSetPages(as), kLimit);
  }
  EXPECT_GT(vm.detail_stats().ws_trims, 0u);
  // Trimmed pages were only unmapped, never lost: re-reads see every value.
  for (size_t p = 0; p < kPages; ++p) {
    uint64_t got = ~0ull;
    ASSERT_EQ(vm.cpu().Read(as, 0x10000 + p * kPage, &got, sizeof(got)), Status::kOk);
    EXPECT_EQ(got, p);
  }
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Graceful degradation: reserve, bounded wait, fault sites
// ---------------------------------------------------------------------------

// Only kEmergency allocations (the reclaim path) may dip below the reserve.
TEST(PressureReserve, EmergencyReserveServesReclaimerOnly) {
  PhysicalMemory memory(16, kPage, /*magazine_capacity=*/0);
  memory.SetEmergencyReserve(4);
  int normal = 0;
  while (memory.AllocateFrame(PhysicalMemory::AllocClass::kNormal).ok()) {
    ++normal;
  }
  EXPECT_EQ(normal, 12);
  EXPECT_EQ(memory.free_frames(), 4u);
  int emergency = 0;
  while (memory.AllocateFrame(PhysicalMemory::AllocClass::kEmergency).ok()) {
    ++emergency;
  }
  EXPECT_EQ(emergency, 4);
  EXPECT_EQ(memory.stats().reserve_grants, 4u);
  EXPECT_FALSE(memory.AllocateFrame(PhysicalMemory::AllocClass::kEmergency).ok());
}

// kNoMemory may only surface after reclaim demonstrably failed: with no swap
// registry every push fails, and the allocator runs its full budget of reclaim
// rounds before giving up.
TEST(PressureReserve, NoMemoryOnlyAfterReclaimFailure) {
  constexpr size_t kFrames = 8;
  PhysicalMemory memory(kFrames, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 2;
  options.high_water_frames = 4;
  PagedVm vm(memory, mmu, options);  // no registry: dirty pages cannot be paged out

  Context* ctx = *vm.ContextCreate();
  Cache* cache = *vm.CacheCreate(nullptr, "doomed");
  ASSERT_TRUE(
      vm.RegionCreate(*ctx, 0x10000, 2 * kFrames * kPage, Prot::kReadWrite, *cache, 0).ok());
  const AsId as = ctx->address_space();

  Status last = Status::kOk;
  size_t written = 0;
  for (size_t p = 0; p < 2 * kFrames; ++p) {
    uint64_t value = p;
    last = vm.cpu().Write(as, 0x10000 + p * kPage, &value, sizeof(value));
    if (last != Status::kOk) {
      break;
    }
    ++written;
  }
  EXPECT_EQ(last, Status::kNoMemory);
  EXPECT_GE(written, 4u);  // made real progress before the pool pinned dirty
  const PvmDetailStats detail = vm.detail_stats();
  EXPECT_GE(detail.sweeps_started, 1u) << "kNoMemory without ever attempting reclaim";
  EXPECT_GE(detail.alloc_pressure_retries, 1u)
      << "kNoMemory without a demonstrated failed reclaim round";
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

// A crash injected mid-append of a multi-page batch leaves a torn record;
// recovery must discard the whole batch (all-or-nothing) and the kernel's
// requeued pages must re-push every byte after the mapper restarts.
TEST(PressureFaults, CrashMidBatchIsAllOrNothing) {
  constexpr size_t kFrames = 64;
  constexpr size_t kPages = 12;
  PagedVm::Options options;
  options.low_water_frames = 4;
  options.high_water_frames = 60;  // above free (52): the pass must push
  options.pushout_batch_pages = 8;
  PressureWorld world(kFrames, options, /*seed=*/3);

  Context* ctx = *world.vm.ContextCreate();
  Cache* cache = *world.sm().AcquireTemporaryCache("midbatch");
  Region* region =
      *world.vm.RegionCreate(*ctx, 0x40000, kPages * kPage, Prot::kReadWrite, *cache, 0);
  const AsId as = ctx->address_space();

  uint64_t v0 = 7;
  ASSERT_EQ(world.vm.cpu().Write(as, 0x40000, &v0, sizeof(v0)), Status::kOk);
  ASSERT_EQ(cache->Sync(), Status::kOk);  // resolve the swap segment

  for (size_t p = 0; p < kPages; ++p) {
    const uint64_t value = 5000 + p;
    ASSERT_EQ(world.vm.cpu().Write(as, 0x40000 + p * kPage, &value, sizeof(value)),
              Status::kOk);
  }
  ASSERT_EQ(region->Destroy(), Status::kOk);

  std::string error;
  ASSERT_TRUE(world.injector.ApplySpec("crashmidbatch:nth:1", &error)) << error;
  world.vm.RunPageoutPassForTest();  // first batch dies mid-append
  EXPECT_GE(world.vm.detail_stats().mapper_crashes_observed, 1u);
  EXPECT_GT(world.vm.ModifiedQueueLength(), 0u) << "failed batch must requeue";

  ASSERT_TRUE(world.server.crashed());
  JournaledSwapMapper::RecoveryReport recovery =
      RecoverAndRestart(world.mapper, world.server, world.sm());
  EXPECT_GE(recovery.records_discarded, 1u)
      << "the torn batch record survived recovery";

  world.vm.RunPageoutPassForTest();  // re-drive the requeued batch
  EXPECT_EQ(world.vm.ModifiedQueueLength(), 0u);

  region = *world.vm.RegionCreate(*ctx, 0x40000, kPages * kPage, Prot::kReadWrite, *cache, 0);
  for (size_t p = 0; p < kPages; ++p) {
    uint64_t got = 0;
    ASSERT_EQ(world.vm.cpu().Read(as, 0x40000 + p * kPage, &got, sizeof(got)),
              Status::kOk);
    EXPECT_EQ(got, 5000 + p) << "batch page " << p << " lost across mid-batch crash";
  }
  EXPECT_EQ(world.vm.CheckInvariants(), Status::kOk);
  ASSERT_EQ(region->Destroy(), Status::kOk);
  (void)ctx->Destroy();
  world.sm().Release(cache);
}

// ---------------------------------------------------------------------------
// The overcommit chaos storm (3x physical memory across 8 spaces)
// ---------------------------------------------------------------------------

TEST(PressureStorm, OvercommitThreeTimesPhysical) {
  uint64_t total_soft = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    PressureStormConfig config;
    config.seed = seed;
    config.steps_per_thread = 150;
    // Half the seeds cap working sets so the daemon's trims feed the
    // modified/standby queues (the soft-fault path); the other half leave
    // residency uncapped and stress the raw sweeper instead.
    if (seed % 2 == 0) {
      config.working_set_limit_pages = 8;
    }
    PressureStormReport report = RunPressureStorm(config);
    ASSERT_TRUE(report.ok) << report.failure;
    EXPECT_EQ(report.nomemory_errors, 0u)
        << "seed " << seed << ": kNoMemory surfaced although reclaim could run";
    total_soft += report.detail.soft_faults;
  }
  EXPECT_GT(total_soft, 0u) << "no storm ever rescued a page from the queues";
}

TEST(PressureStorm, LowMemSiteForcesSlowPath) {
  PressureStormConfig config;
  config.seed = 11;
  config.steps_per_thread = 120;
  config.fault_specs = {"lowmem:prob:8"};
  PressureStormReport report = RunPressureStorm(config);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_GT(report.detail.low_memory_faults, 0u);
  EXPECT_EQ(report.nomemory_errors, 0u);
}

TEST(PressureStorm, PageoutStallSiteSkipsBatches) {
  PressureStormConfig config;
  config.seed = 12;
  config.steps_per_thread = 120;
  // Cap working sets so trims keep the modified queue populated — the stall
  // site is only consulted when the daemon actually has batch work to do.
  config.working_set_limit_pages = 6;
  config.fault_specs = {"pageoutstall:prob:10"};
  PressureStormReport report = RunPressureStorm(config);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_GT(report.detail.pageout_stalls, 0u);
}

TEST(PressureStorm, SurvivesMidBatchMapperCrashes) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PressureStormConfig config;
    config.seed = seed;
    config.steps_per_thread = 100;
    config.fault_specs = {"crashmidbatch:prob:6"};
    PressureStormReport report = RunPressureStorm(config);
    ASSERT_TRUE(report.ok) << report.failure;
  }
}

TEST(PressureStorm, WorkingSetLimitsAndThrottleUnderOvercommit) {
  uint64_t total_trims = 0;
  uint64_t total_throttles = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PressureStormConfig config;
    config.seed = seed + 40;
    config.steps_per_thread = 150;
    config.working_set_limit_pages = 6;
    config.thrash_ewma_threshold = 1;  // any re-fault marks the space a thrasher
    PressureStormReport report = RunPressureStorm(config);
    ASSERT_TRUE(report.ok) << report.failure;
    total_trims += report.detail.ws_trims;
    total_throttles += report.detail.thrash_throttles;
  }
  EXPECT_GT(total_trims, 0u);
  // The throttle path needs free < low water at fault time with the daemon
  // live, which every overcommitted seed reaches in practice; the decay
  // guarantees the throttled spaces all made progress (the storms passed).
  EXPECT_GT(total_throttles, 0u);
}

// Transparent huge pages under 3x overcommit (DESIGN.md §16): a 16 KB second
// granule over a 32-frame pool, so fault-time promotion, split demotion and
// pageout demotion all race the daemon, the sweeper and the acknowledged-write
// oracle.  Promotion is opportunistic (a dry AllocateRun silently declines),
// so the shape assertions accumulate across seeds rather than per run.
TEST(PressureStorm, TransparentHugePagesSurviveOvercommit) {
  uint64_t total_promotions = 0;
  uint64_t total_demote_pageout = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    PressureStormConfig config;
    config.seed = seed + 70;
    config.steps_per_thread = 150;
    config.huge_pages = 4;          // 3 full spans per 12-page space
    config.transparent_huge = true;
    PressureStormReport report = RunPressureStorm(config);
    ASSERT_TRUE(report.ok) << report.failure;
    EXPECT_EQ(report.nomemory_errors, 0u)
        << "seed " << config.seed
        << ": kNoMemory surfaced although reclaim could run";
    total_promotions += report.detail.promotions;
    total_demote_pageout += report.detail.demote_pageout;
  }
  EXPECT_GT(total_promotions, 0u) << "no storm ever collapsed a span";
  EXPECT_GT(total_demote_pageout, 0u)
      << "reclaim never demoted a promoted span under 3x overcommit";
}

}  // namespace
}  // namespace gvm
