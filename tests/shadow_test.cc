// ShadowVm (Mach baseline) behaviour: chain construction, both-sides shadow
// allocation, chain growth under repeated copies, and the collapse GC — the exact
// structural story of section 4.2.5.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/shadow/shadow_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

class ShadowTest : public ::testing::Test {
 protected:
  ShadowTest() : memory_(256, kPage), mmu_(kPage), vm_(memory_, mmu_) {
    context_ = *vm_.ContextCreate();
  }

  Cache* MakeFilledCache(const std::string& name, int pages, char tag) {
    Cache* cache = *vm_.CacheCreate(nullptr, name);
    std::vector<char> data(kPage);
    for (int i = 0; i < pages; ++i) {
      std::memset(data.data(), tag + i, kPage);
      EXPECT_EQ(cache->Write(i * kPage, data.data(), kPage), Status::kOk);
    }
    return cache;
  }

  char ReadByte(Cache& cache, SegOffset offset) {
    char c = 0;
    EXPECT_EQ(cache.Read(offset, &c, 1), Status::kOk);
    return c;
  }

  void WriteByte(Cache& cache, SegOffset offset, char value) {
    EXPECT_EQ(cache.Write(offset, &value, 1), Status::kOk);
  }

  PhysicalMemory memory_;
  SoftMmu mmu_;
  ShadowVm vm_;
  Context* context_ = nullptr;
};

TEST_F(ShadowTest, DemandZeroAndMappedAccess) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x10000, 2 * kPage, Prot::kReadWrite, *cache, 0).ok());
  AsId as = context_->address_space();
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(as, 0x10000), 0u);
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(as, 0x10000, 0x1234), Status::kOk);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(as, 0x10000), 0x1234u);
}

TEST_F(ShadowTest, CopyAllocatesTwoShadowObjects) {
  // "two new memory objects, the shadow objects, are created."
  Cache* src = MakeFilledCache("src", 2, 'a');
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  size_t objects_before = vm_.ObjectCount();
  ASSERT_EQ(src->CopyTo(*dst, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  EXPECT_EQ(vm_.ObjectCount(), objects_before + 2);
  EXPECT_EQ(vm_.stats().shadow_objects, 4u);  // 2 roots + 2 shadows
}

TEST_F(ShadowTest, CowSemanticsBothDirections) {
  Cache* src = MakeFilledCache("src", 3, 'a');
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  ASSERT_EQ(src->CopyTo(*dst, 0, 0, 3 * kPage, CopyPolicy::kHistory), Status::kOk);

  // Copy reads originals.
  EXPECT_EQ(ReadByte(*dst, 0), 'a');
  EXPECT_EQ(ReadByte(*dst, 2 * kPage), 'c');

  // Source writes land in the source's shadow; the copy keeps the original.
  WriteByte(*src, 0, 'X');
  EXPECT_EQ(ReadByte(*src, 0), 'X');
  EXPECT_EQ(ReadByte(*dst, 0), 'a');

  // Copy writes land in the copy's shadow; the source is unaffected.
  WriteByte(*dst, kPage, 'Y');
  EXPECT_EQ(ReadByte(*dst, kPage), 'Y');
  EXPECT_EQ(ReadByte(*src, kPage), 'b');
}

TEST_F(ShadowTest, MappedCowAcrossContexts) {
  Cache* parent = *vm_.CacheCreate(nullptr, "parent");
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x20000, 2 * kPage, Prot::kReadWrite, *parent, 0).ok());
  AsId parent_as = context_->address_space();
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(parent_as, 0x20000, 0xAAAA), Status::kOk);

  Context* child_ctx = *vm_.ContextCreate();
  Cache* child = *vm_.CacheCreate(nullptr, "child");
  ASSERT_EQ(parent->CopyTo(*child, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  ASSERT_TRUE(
      vm_.RegionCreate(*child_ctx, 0x20000, 2 * kPage, Prot::kReadWrite, *child, 0).ok());
  AsId child_as = child_ctx->address_space();

  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(child_as, 0x20000), 0xAAAAu);
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(parent_as, 0x20000, 0xBBBB), Status::kOk);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(child_as, 0x20000), 0xAAAAu);
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(child_as, 0x20000, 0xCCCC), Status::kOk);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(parent_as, 0x20000), 0xBBBBu);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(child_as, 0x20000), 0xCCCCu);
}

TEST_F(ShadowTest, RepeatedCopiesGrowTheChain) {
  // The paper's problem 1: "If successive copies occur, a chain of shadows may
  // build up" — visible via ChainDepth.
  Cache* src = MakeFilledCache("src", 1, 'a');
  auto* src_shadow = static_cast<ShadowCache*>(src);
  EXPECT_EQ(src_shadow->ChainDepth(), 0u);
  std::vector<Cache*> copies;
  for (int i = 0; i < 5; ++i) {
    Cache* copy = *vm_.CacheCreate(nullptr, "c" + std::to_string(i));
    ASSERT_EQ(src->CopyTo(*copy, 0, 0, kPage, CopyPolicy::kHistory), Status::kOk);
    copies.push_back(copy);
  }
  EXPECT_EQ(src_shadow->ChainDepth(), 5u);  // one shadow per copy, stacked
  // Data is still right everywhere.
  WriteByte(*src, 0, 'Z');
  for (Cache* copy : copies) {
    EXPECT_EQ(ReadByte(*copy, 0), 'a');
  }
  EXPECT_EQ(ReadByte(*src, 0), 'Z');
}

TEST_F(ShadowTest, DestroyedCopiesCollapseChains) {
  // Fork-and-exit loops: Mach must merge shadows back ("this garbage collection is
  // a major complication").
  Cache* src = MakeFilledCache("src", 2, 'a');
  for (int round = 0; round < 8; ++round) {
    Cache* copy = *vm_.CacheCreate(nullptr, "c" + std::to_string(round));
    ASSERT_EQ(src->CopyTo(*copy, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
    WriteByte(*src, 0, static_cast<char>('A' + round));
    EXPECT_EQ(ReadByte(*copy, 0), round == 0 ? 'a' : static_cast<char>('A' + round - 1));
    ASSERT_EQ(copy->Destroy(), Status::kOk);
  }
  EXPECT_GE(vm_.stats().shadow_collapses, 4u);
  // The chain under src stays bounded.
  EXPECT_LE(static_cast<ShadowCache*>(src)->ChainDepth(), 2u);
  EXPECT_EQ(ReadByte(*src, 0), 'H');
  EXPECT_EQ(ReadByte(*src, kPage), 'b');
}

TEST_F(ShadowTest, ChainGrowthWithoutCollapse) {
  // Ablation knob: with the GC off, destroy leaves chains in place.
  PhysicalMemory mem(256, kPage);
  SoftMmu mmu(kPage);
  ShadowVm::Options options;
  options.collapse_shadows = false;
  ShadowVm vm(mem, mmu, options);
  Cache* src = *vm.CacheCreate(nullptr, "src");
  char v = 'a';
  ASSERT_EQ(src->Write(0, &v, 1), Status::kOk);
  for (int round = 0; round < 8; ++round) {
    Cache* copy = *vm.CacheCreate(nullptr, "c" + std::to_string(round));
    ASSERT_EQ(src->CopyTo(*copy, 0, 0, kPage, CopyPolicy::kHistory), Status::kOk);
    char w = static_cast<char>('A' + round);
    ASSERT_EQ(src->Write(0, &w, 1), Status::kOk);
    ASSERT_EQ(copy->Destroy(), Status::kOk);
  }
  EXPECT_EQ(vm.stats().shadow_collapses, 0u);
  EXPECT_GE(static_cast<ShadowCache*>(src)->ChainDepth(), 8u);
}

TEST_F(ShadowTest, PullInFromDriverAtChainRoot) {
  TestStoreDriver driver(kPage);
  std::vector<char> file(2 * kPage, 'f');
  driver.Preload(0, file.data(), file.size());
  Cache* cache = *vm_.CacheCreate(&driver, "file");
  EXPECT_EQ(ReadByte(*cache, kPage), 'f');
  EXPECT_GE(driver.pull_ins, 1);

  // After a copy, the copy pulls through the chain to the same root.
  Cache* copy = *vm_.CacheCreate(nullptr, "copy");
  ASSERT_EQ(cache->CopyTo(*copy, 0, 0, 2 * kPage, CopyPolicy::kHistory), Status::kOk);
  EXPECT_EQ(ReadByte(*copy, 0), 'f');
}

TEST_F(ShadowTest, SyncWritesBackThroughDriver) {
  TestStoreDriver driver(kPage);
  Cache* cache = *vm_.CacheCreate(&driver, "file");
  const char msg[] = "mach sync";
  ASSERT_EQ(cache->Write(0, msg, sizeof(msg)), Status::kOk);
  ASSERT_EQ(cache->Sync(), Status::kOk);
  EXPECT_GE(driver.push_outs, 1);
  ASSERT_TRUE(driver.HasPage(0));
  EXPECT_EQ(std::memcmp(driver.PageData(0).data(), msg, sizeof(msg)), 0);
}

TEST_F(ShadowTest, PartialRangeCopyLeavesRestOfDestination) {
  Cache* src = MakeFilledCache("src", 1, 's');
  Cache* dst = MakeFilledCache("dst", 3, 'x');  // x y z
  ASSERT_EQ(src->CopyTo(*dst, 0, kPage, kPage, CopyPolicy::kHistory), Status::kOk);
  EXPECT_EQ(ReadByte(*dst, 0), 'x');
  EXPECT_EQ(ReadByte(*dst, kPage), 's');
  EXPECT_EQ(ReadByte(*dst, 2 * kPage), 'z');
}

TEST_F(ShadowTest, RegionLifecycle) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  Region* region =
      *vm_.RegionCreate(*context_, 0x10000, 4 * kPage, Prot::kReadWrite, *cache, 0);
  AsId as = context_->address_space();
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(as, 0x10000 + kPage, 7), Status::kOk);
  Region* upper = *region->Split(2 * kPage);
  ASSERT_EQ(upper->SetProtection(Prot::kRead), Status::kOk);
  EXPECT_EQ(vm_.cpu().Store<uint32_t>(as, 0x10000 + 3 * kPage, 1), Status::kProtectionFault);
  ASSERT_EQ(upper->Destroy(), Status::kOk);
  ASSERT_EQ(region->Destroy(), Status::kOk);
  EXPECT_EQ(cache->Destroy(), Status::kOk);
}

}  // namespace
}  // namespace gvm
