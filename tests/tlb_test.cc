// The per-CPU software TLB (src/hal/tlb.h): fill/hit/evict mechanics, the
// shootdown protocol (unmap, protection downgrade, replacing map, address-space
// teardown), the no-flush guarantees (upgrades and fresh fills), and — the part
// that actually earns its keep — multithreaded stale-translation hunters that
// fail if an unmap or downgrade on one CPU is ever followed by a stale TLB hit
// on another.
#include "src/hal/tlb.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "src/hal/cpu.h"
#include "src/hal/phys_memory.h"
#include "src/hal/soft_mmu.h"
#include "src/pvm/paged_vm.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

Vaddr PageVa(uint64_t vpn) { return vpn * kPage; }

// ---------------------------------------------------------------------------
// Fill / hit / evict mechanics
// ---------------------------------------------------------------------------

TEST(TlbTest, FillThenHit) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(1), 7, Prot::kRead), Status::kOk);

  ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 7u);  // miss + fill
  const uint64_t inner_walks = inner.stats().translations;
  ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 7u);  // hit
  ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 7u);  // hit

  EXPECT_EQ(inner.stats().translations, inner_walks);  // hits bypassed the walk
  TlbMmu::TlbStats stats = tlb.tlb_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.fills, 1u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(TlbTest, ConflictEvictionFallsBackToInnerWalk) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  // vpn, vpn + kSets, vpn + 2*kSets, ... all land in the same set; overfilling
  // the ways evicts the oldest entry, which then re-misses — correctly.
  const size_t conflicting = TlbMmu::kWays + 2;
  for (size_t i = 0; i < conflicting; ++i) {
    uint64_t vpn = 3 + i * TlbMmu::kSets;
    ASSERT_EQ(tlb.Map(as, PageVa(vpn), static_cast<FrameIndex>(100 + i), Prot::kRead),
              Status::kOk);
    ASSERT_EQ(*tlb.Translate(as, PageVa(vpn), Access::kRead),
              static_cast<FrameIndex>(100 + i));
  }
  // Every conflicting page still translates to the right frame, evicted or not.
  for (size_t i = 0; i < conflicting; ++i) {
    uint64_t vpn = 3 + i * TlbMmu::kSets;
    EXPECT_EQ(*tlb.Translate(as, PageVa(vpn), Access::kRead),
              static_cast<FrameIndex>(100 + i));
  }
  EXPECT_GE(tlb.tlb_stats().misses, conflicting + (conflicting - TlbMmu::kWays));
}

TEST(TlbTest, DisabledTlbDelegatesEverything) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner, /*enabled=*/false);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(1), 5, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 5u);
  ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 5u);
  TlbMmu::TlbStats stats = tlb.tlb_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.shootdowns, 0u);
  EXPECT_EQ(inner.stats().translations, 2u);
}

// ---------------------------------------------------------------------------
// Shootdown triggers — and the cases that must NOT flush
// ---------------------------------------------------------------------------

TEST(TlbTest, UnmapShootsDownCachedEntry) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(2), 9, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(2), Access::kRead), 9u);  // cached

  ASSERT_EQ(tlb.Unmap(as, PageVa(2)), Status::kOk);
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 1u);
  EXPECT_EQ(tlb.tlb_stats().shootdown_pages, 1u);
  // The cached entry must not serve the dead translation.
  EXPECT_EQ(tlb.Translate(as, PageVa(2), Access::kRead).status(),
            Status::kSegmentationFault);
}

TEST(TlbTest, ProtectionDowngradeShootsDown) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(4), 11, Prot::kReadWrite), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(4), Access::kWrite), 11u);  // cached, dirty_ok

  ASSERT_EQ(tlb.Protect(as, PageVa(4), Prot::kRead), Status::kOk);  // downgrade
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 1u);
  // A write must now fault instead of hitting the stale writable entry.
  EXPECT_EQ(tlb.Translate(as, PageVa(4), Access::kWrite).status(),
            Status::kProtectionFault);
  // Reads still work (re-filled with the narrowed rights).
  EXPECT_EQ(*tlb.Translate(as, PageVa(4), Access::kRead), 11u);
}

TEST(TlbTest, UpgradeAndFreshFillDoNotFlush) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(6), 13, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(6), Access::kRead), 13u);  // cached

  // Protection upgrade: widening rights must not shoot down.
  ASSERT_EQ(tlb.Protect(as, PageVa(6), Prot::kReadWrite), Status::kOk);
  // Fresh fill of an unmapped page: must not shoot down either.
  ASSERT_EQ(tlb.Map(as, PageVa(7), 14, Prot::kRead), Status::kOk);
  // Re-mapping the same frame with the same rights: no change, no shootdown.
  ASSERT_EQ(tlb.Map(as, PageVa(6), 13, Prot::kReadWrite), Status::kOk);
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 0u);

  // The cached read entry survived and still hits.
  const uint64_t misses_before = tlb.tlb_stats().misses;
  EXPECT_EQ(*tlb.Translate(as, PageVa(6), Access::kRead), 13u);
  EXPECT_EQ(tlb.tlb_stats().misses, misses_before);
}

TEST(TlbTest, ReplacingMapInvalidatesOldFrame) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(8), 21, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(8), Access::kRead), 21u);  // cached: frame 21

  // The COW-resolution shape: the same page silently re-points at a new frame.
  ASSERT_EQ(tlb.Map(as, PageVa(8), 22, Prot::kRead), Status::kOk);
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 1u);
  EXPECT_EQ(*tlb.Translate(as, PageVa(8), Access::kRead), 22u);
}

TEST(TlbTest, AddressSpaceTeardownFlushesItsEntriesOnly) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId dying = *tlb.CreateAddressSpace();
  AsId surviving = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(dying, PageVa(1), 31, Prot::kRead), Status::kOk);
  ASSERT_EQ(tlb.Map(surviving, PageVa(1), 32, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(dying, PageVa(1), Access::kRead), 31u);
  ASSERT_EQ(*tlb.Translate(surviving, PageVa(1), Access::kRead), 32u);

  ASSERT_EQ(tlb.DestroyAddressSpace(dying), Status::kOk);
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 1u);
  EXPECT_EQ(tlb.tlb_stats().shootdown_pages, 0u);  // AS-wide, not single-page
  EXPECT_EQ(tlb.Translate(dying, PageVa(1), Access::kRead).status(),
            Status::kSegmentationFault);
  // The surviving address space's entry still hits (per-AS generations:
  // teardown of one context does not flush another — unless their AsIds
  // collide in the hashed AS-generation table, which these two cannot).
  ASSERT_NE(TlbMmu::AsGenIndex(dying), TlbMmu::AsGenIndex(surviving));
  const uint64_t misses_before = tlb.tlb_stats().misses;
  EXPECT_EQ(*tlb.Translate(surviving, PageVa(1), Access::kRead), 32u);
  EXPECT_EQ(tlb.tlb_stats().misses, misses_before);
}

TEST(TlbTest, WriteHitRequiresDirtyProvenFill) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(9), 41, Prot::kReadWrite), Status::kOk);

  // A read fill proves kRead but not the dirty bit: the first write must go to
  // the inner MMU (so the PTE dirty bit is set), not hit the cached entry.
  ASSERT_EQ(*tlb.Translate(as, PageVa(9), Access::kRead), 41u);
  ASSERT_FALSE((*inner.Lookup(as, PageVa(9))).dirty);
  const uint64_t misses_before = tlb.tlb_stats().misses;
  ASSERT_EQ(*tlb.Translate(as, PageVa(9), Access::kWrite), 41u);
  EXPECT_EQ(tlb.tlb_stats().misses, misses_before + 1);  // forced through
  EXPECT_TRUE((*inner.Lookup(as, PageVa(9))).dirty);

  // Now the write right and dirty bit are proven: further writes hit.
  const uint64_t misses_after = tlb.tlb_stats().misses;
  ASSERT_EQ(*tlb.Translate(as, PageVa(9), Access::kWrite), 41u);
  EXPECT_EQ(tlb.tlb_stats().misses, misses_after);
}

TEST(TlbTest, SameFrameRemapDoesNotLoseDirtyUnderWriteHits) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(3), 17, Prot::kReadWrite), Status::kOk);
  // Write fill: proves the write right and sets the inner dirty bit.
  ASSERT_EQ(*tlb.Translate(as, PageVa(3), Access::kWrite), 17u);
  ASSERT_TRUE((*inner.Lookup(as, PageVa(3))).dirty);

  // The racing-fault shape (PagedVm::MapPage's "same page, new protection"
  // path): re-map the same frame without downgrading.  No shootdown — the
  // cached write entry stays live — so the inner MMU must preserve the dirty
  // bit, or eviction would see an actively-written page as clean and drop it.
  ASSERT_EQ(tlb.Map(as, PageVa(3), 17, Prot::kReadWrite), Status::kOk);
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 0u);

  // Subsequent writes hit the TLB without walking the inner tables...
  const uint64_t misses_before = tlb.tlb_stats().misses;
  ASSERT_EQ(*tlb.Translate(as, PageVa(3), Access::kWrite), 17u);
  EXPECT_EQ(tlb.tlb_stats().misses, misses_before);
  // ...and the page still reads as dirty (the write-hit invariant holds).
  EXPECT_TRUE((*inner.Lookup(as, PageVa(3))).dirty);
}

TEST(TlbTest, DroppedThreadBindingRefindsSlotInsteadOfLeaking) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(1), 7, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 7u);  // claim + fill
  ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 7u);  // hit

  // Simulate the t_refs size cap dropping this thread's bindings, repeatedly.
  // Each re-access must re-find the already-claimed slot — whose cache still
  // holds the entry — rather than claim a fresh empty one.  A leak would show
  // up twice over: the re-accesses would miss (fresh slots start empty), and
  // after kMaxCpus re-claims the thread would exhaust the slots and bypass
  // the TLB entirely.
  for (size_t i = 0; i < TlbMmu::kMaxCpus + 8; ++i) {
    tlb_internal::ForgetThreadBindings();
    ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 7u);
  }
  TlbMmu::TlbStats stats = tlb.tlb_stats();
  EXPECT_EQ(stats.misses, 1u);  // only the very first access walked the tables
  EXPECT_EQ(stats.hits, 1u + TlbMmu::kMaxCpus + 8);
}

TEST(TlbTest, TestAndClearReferencedDoesNotFlush) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(5), 51, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(5), Access::kRead), 51u);
  ASSERT_TRUE(*tlb.TestAndClearReferenced(as, PageVa(5)));  // clock hand sweep
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 0u);
  const uint64_t misses_before = tlb.tlb_stats().misses;
  EXPECT_EQ(*tlb.Translate(as, PageVa(5), Access::kRead), 51u);  // still cached
  EXPECT_EQ(tlb.tlb_stats().misses, misses_before);
}

TEST(TlbTest, ResetTlbStatsZeroesDerivedCounters) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(1), 3, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 3u);
  ASSERT_EQ(*tlb.Translate(as, PageVa(1), Access::kRead), 3u);
  ASSERT_EQ(tlb.Unmap(as, PageVa(1)), Status::kOk);
  TlbMmu::TlbStats before = tlb.tlb_stats();
  EXPECT_GT(before.hits + before.misses + before.shootdowns, 0u);

  tlb.ResetTlbStats();
  TlbMmu::TlbStats after = tlb.tlb_stats();
  EXPECT_EQ(after.hits, 0u);
  EXPECT_EQ(after.misses, 0u);
  EXPECT_EQ(after.fills, 0u);
  EXPECT_EQ(after.shootdowns, 0u);
  EXPECT_EQ(after.shootdown_pages, 0u);
}

TEST(TlbTest, FenceModeResolution) {
  SoftMmu inner(kPage);
  // kAuto must resolve to a concrete mode at construction — and never to
  // kUniprocessor, which is an explicit caller assertion: the online-CPU
  // count is a snapshot that cpusets or hotplug can grow later.
  const TlbMmu::FenceMode resolved = TlbMmu(inner).fence_mode();
  EXPECT_NE(resolved, TlbMmu::FenceMode::kAuto);
  EXPECT_NE(resolved, TlbMmu::FenceMode::kUniprocessor);
  // The portable fallback is always honoured as requested.
  EXPECT_EQ(TlbMmu(inner, true, TlbMmu::FenceMode::kFenced).fence_mode(),
            TlbMmu::FenceMode::kFenced);
  // kMembarrier may legitimately fall back to kFenced (kernel without the
  // syscall); it must never silently become uniprocessor.
  TlbMmu::FenceMode m = TlbMmu(inner, true, TlbMmu::FenceMode::kMembarrier).fence_mode();
  EXPECT_TRUE(m == TlbMmu::FenceMode::kMembarrier || m == TlbMmu::FenceMode::kFenced);
}

// ---------------------------------------------------------------------------
// Batched range shootdowns: one fence per contiguous run.
// ---------------------------------------------------------------------------

TEST(TlbRangeTest, UnmapRangeBatchesManyPagesIntoOneShootdown) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  constexpr size_t kCount = 16;
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(tlb.Map(as, PageVa(10 + i), static_cast<FrameIndex>(100 + i), Prot::kRead),
              Status::kOk);
    ASSERT_EQ(*tlb.Translate(as, PageVa(10 + i), Access::kRead),
              static_cast<FrameIndex>(100 + i));  // cache every page
  }
  tlb.ResetTlbStats();

  ASSERT_EQ(tlb.UnmapRange(as, PageVa(10), kCount), Status::kOk);
  TlbMmu::TlbStats stats = tlb.tlb_stats();
  EXPECT_EQ(stats.shootdowns, 1u);  // one fence+drain for the whole run
  EXPECT_EQ(stats.shootdown_ranges, 1u);
  EXPECT_EQ(stats.shootdown_pages, kCount);
  // No cached entry may survive: every page of the run now faults.
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(tlb.Translate(as, PageVa(10 + i), Access::kRead).status(),
              Status::kSegmentationFault);
  }
}

TEST(TlbRangeTest, UnmapRangeSkipsHolesAndNeighbours) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  // Pages 20 and 22 mapped, 21 is a hole; 23 mapped but outside the range.
  ASSERT_EQ(tlb.Map(as, PageVa(20), 1, Prot::kRead), Status::kOk);
  ASSERT_EQ(tlb.Map(as, PageVa(22), 2, Prot::kRead), Status::kOk);
  ASSERT_EQ(tlb.Map(as, PageVa(23), 3, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(23), Access::kRead), 3u);  // cached

  ASSERT_EQ(tlb.UnmapRange(as, PageVa(20), 3), Status::kOk);  // hole no-ops
  EXPECT_EQ(tlb.Translate(as, PageVa(20), Access::kRead).status(),
            Status::kSegmentationFault);
  EXPECT_EQ(tlb.Translate(as, PageVa(22), Access::kRead).status(),
            Status::kSegmentationFault);
  // The neighbour past the range still hits its cached entry.
  const uint64_t misses_before = tlb.tlb_stats().misses;
  EXPECT_EQ(*tlb.Translate(as, PageVa(23), Access::kRead), 3u);
  EXPECT_EQ(tlb.tlb_stats().misses, misses_before);
}

TEST(TlbRangeTest, ProtectRangeDowngradeBatchesOneShootdown) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  constexpr size_t kCount = 8;
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(tlb.Map(as, PageVa(30 + i), static_cast<FrameIndex>(50 + i), Prot::kReadWrite),
              Status::kOk);
    ASSERT_EQ(*tlb.Translate(as, PageVa(30 + i), Access::kWrite),
              static_cast<FrameIndex>(50 + i));  // cached with write rights
  }
  tlb.ResetTlbStats();

  ASSERT_EQ(tlb.ProtectRange(as, PageVa(30), kCount, Prot::kRead), Status::kOk);
  TlbMmu::TlbStats stats = tlb.tlb_stats();
  EXPECT_EQ(stats.shootdowns, 1u);
  EXPECT_EQ(stats.shootdown_ranges, 1u);
  // Writes must fault everywhere in the run; reads refill with narrowed rights.
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(tlb.Translate(as, PageVa(30 + i), Access::kWrite).status(),
              Status::kProtectionFault);
    EXPECT_EQ(*tlb.Translate(as, PageVa(30 + i), Access::kRead),
              static_cast<FrameIndex>(50 + i));
  }
}

TEST(TlbRangeTest, ProtectRangeUpgradeDoesNotFence) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  constexpr size_t kCount = 4;
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(tlb.Map(as, PageVa(40 + i), static_cast<FrameIndex>(60 + i), Prot::kRead),
              Status::kOk);
    ASSERT_EQ(*tlb.Translate(as, PageVa(40 + i), Access::kRead),
              static_cast<FrameIndex>(60 + i));
  }
  tlb.ResetTlbStats();

  // Widening rights shoots down nothing; the cached read entries survive.
  ASSERT_EQ(tlb.ProtectRange(as, PageVa(40), kCount, Prot::kReadWrite), Status::kOk);
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 0u);
  const uint64_t misses_before = tlb.tlb_stats().misses;
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(*tlb.Translate(as, PageVa(40 + i), Access::kRead),
              static_cast<FrameIndex>(60 + i));
  }
  EXPECT_EQ(tlb.tlb_stats().misses, misses_before);
}

TEST(TlbRangeTest, HugeRangeCollapsesToAddressSpaceBump) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(5), 9, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(as, PageVa(5), Access::kRead), 9u);  // cached
  tlb.ResetTlbStats();

  // A run covering every generation slot degenerates to one AS-wide bump:
  // cheaper than kGenSlots individual bumps, and safely over-invalidating —
  // the cached entry outside the run re-misses instead of surviving.
  tlb.ShootdownRange(as, PageVa(100) / kPage, TlbMmu::kGenSlots);
  TlbMmu::TlbStats stats = tlb.tlb_stats();
  EXPECT_EQ(stats.shootdowns, 1u);
  EXPECT_EQ(stats.shootdown_ranges, 1u);
  const uint64_t misses_before = tlb.tlb_stats().misses;
  EXPECT_EQ(*tlb.Translate(as, PageVa(5), Access::kRead), 9u);
  EXPECT_EQ(tlb.tlb_stats().misses, misses_before + 1);  // re-missed, not stale
}

// ---------------------------------------------------------------------------
// Deferred teardown flushes (the software mmu_gather).
// ---------------------------------------------------------------------------

TEST(TlbGatherTest, GatherCoalescesShootdownsIntoOneFence) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  constexpr size_t kCount = 8;
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(tlb.Map(as, PageVa(i), static_cast<FrameIndex>(70 + i), Prot::kRead),
              Status::kOk);
    ASSERT_EQ(*tlb.Translate(as, PageVa(i), Access::kRead),
              static_cast<FrameIndex>(70 + i));
  }
  tlb.ResetTlbStats();
  {
    TlbGatherScope gather(&tlb);
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(tlb.Unmap(as, PageVa(i)), Status::kOk);
    }
    // Publishes are immediate — a fresh lookup inside the scope already
    // misses — but the fence is deferred: no shootdown has been paid yet.
    EXPECT_EQ(tlb.tlb_stats().shootdowns, 0u);
    EXPECT_EQ(tlb.Translate(as, PageVa(0), Access::kRead).status(),
              Status::kSegmentationFault);
  }
  // Scope closed: exactly one fence retired all eight unmaps.
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 1u);
  EXPECT_EQ(tlb.tlb_stats().shootdown_pages, kCount);
}

TEST(TlbGatherTest, NestedGatherCommitsAtOutermostScope) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(1), 5, Prot::kRead), Status::kOk);
  ASSERT_EQ(tlb.Map(as, PageVa(2), 6, Prot::kRead), Status::kOk);
  tlb.ResetTlbStats();
  {
    TlbGatherScope outer(&tlb);
    ASSERT_EQ(tlb.Unmap(as, PageVa(1)), Status::kOk);
    {
      TlbGatherScope nested(&tlb);
      ASSERT_EQ(tlb.Unmap(as, PageVa(2)), Status::kOk);
    }
    // The nested scope closed but the outer one is still open: still no fence.
    EXPECT_EQ(tlb.tlb_stats().shootdowns, 0u);
  }
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 1u);
}

TEST(TlbGatherTest, FreeFrameAfterFlushParksUntilCommit) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  PhysicalMemory memory(8, kPage);
  FrameIndex frame = *memory.AllocateFrame();
  const size_t free_before = memory.free_frames();
  {
    TlbGatherScope gather(&tlb);
    tlb.FreeFrameAfterFlush(memory, frame);
    // The frame is parked, not freed: a stale translation drained by the
    // commit fence could still be reading it.
    EXPECT_EQ(tlb.GatherParkedFrames(), 1u);
    EXPECT_EQ(memory.free_frames(), free_before);
    EXPECT_TRUE(memory.IsAllocated(frame));
  }
  EXPECT_EQ(tlb.GatherParkedFrames(), 0u);
  EXPECT_EQ(memory.free_frames(), free_before + 1);
  EXPECT_FALSE(memory.IsAllocated(frame));
}

TEST(TlbGatherTest, FreeFrameAfterFlushOutsideGatherFreesDirectly) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  PhysicalMemory memory(8, kPage);
  FrameIndex frame = *memory.AllocateFrame();
  const size_t free_before = memory.free_frames();
  tlb.FreeFrameAfterFlush(memory, frame);
  EXPECT_EQ(memory.free_frames(), free_before + 1);
}

TEST(TlbGatherTest, CondemnedAddressSpaceIsFlushedAtCommit) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId dying = *tlb.CreateAddressSpace();
  AsId surviving = *tlb.CreateAddressSpace();
  ASSERT_NE(TlbMmu::AsGenIndex(dying), TlbMmu::AsGenIndex(surviving));
  ASSERT_EQ(tlb.Map(dying, PageVa(1), 11, Prot::kRead), Status::kOk);
  ASSERT_EQ(tlb.Map(surviving, PageVa(1), 12, Prot::kRead), Status::kOk);
  ASSERT_EQ(*tlb.Translate(dying, PageVa(1), Access::kRead), 11u);
  ASSERT_EQ(*tlb.Translate(surviving, PageVa(1), Access::kRead), 12u);
  tlb.ResetTlbStats();
  {
    TlbGatherScope gather(&tlb);
    tlb.GatherCondemnAddressSpace(dying);
    // Per-page publishes for the condemned AS are subsumed by the one AS-wide
    // bump at commit; the teardown unmaps pay no per-slot stores.
    ASSERT_EQ(tlb.Unmap(dying, PageVa(1)), Status::kOk);
    ASSERT_EQ(tlb.DestroyAddressSpace(dying), Status::kOk);
    EXPECT_EQ(tlb.tlb_stats().shootdowns, 0u);  // fence still deferred
  }
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 1u);
  // The dead AS faults; the survivor's cached entry still hits.
  EXPECT_EQ(tlb.Translate(dying, PageVa(1), Access::kRead).status(),
            Status::kSegmentationFault);
  const uint64_t misses_before = tlb.tlb_stats().misses;
  EXPECT_EQ(*tlb.Translate(surviving, PageVa(1), Access::kRead), 12u);
  EXPECT_EQ(tlb.tlb_stats().misses, misses_before);
}

TEST(TlbGatherTest, FlushGatherPaysFenceWithoutClosingScope) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner);
  AsId as = *tlb.CreateAddressSpace();
  ASSERT_EQ(tlb.Map(as, PageVa(1), 5, Prot::kRead), Status::kOk);
  ASSERT_EQ(tlb.Map(as, PageVa(2), 6, Prot::kRead), Status::kOk);
  tlb.ResetTlbStats();
  {
    TlbGatherScope gather(&tlb);
    ASSERT_EQ(tlb.Unmap(as, PageVa(1)), Status::kOk);
    (void)gather.Flush();
    EXPECT_EQ(tlb.tlb_stats().shootdowns, 1u);
    EXPECT_TRUE(tlb.GatherActive());
    // More work in the still-open scope defers to the close again.
    ASSERT_EQ(tlb.Unmap(as, PageVa(2)), Status::kOk);
    EXPECT_EQ(tlb.tlb_stats().shootdowns, 1u);
  }
  EXPECT_EQ(tlb.tlb_stats().shootdowns, 2u);
  EXPECT_FALSE(tlb.GatherActive());
}

TEST(TlbGatherTest, DisabledTlbMakesGatherANoOp) {
  SoftMmu inner(kPage);
  TlbMmu tlb(inner, /*enabled=*/false);
  PhysicalMemory memory(8, kPage);
  FrameIndex frame = *memory.AllocateFrame();
  {
    TlbGatherScope gather(&tlb);
    EXPECT_FALSE(tlb.GatherActive());
    tlb.FreeFrameAfterFlush(memory, frame);  // must not park: nothing commits
    EXPECT_FALSE(memory.IsAllocated(frame));
  }
}

// ---------------------------------------------------------------------------
// Multithreaded stale-translation hunters.
//
// These are the dedicated cross-CPU coherence tests: a mutator revokes a
// translation (unmap+poison, or write-protect) and, because Unmap/Protect only
// return after the shootdown protocol completes, anything a reader does with
// the old translation *after* that return is a protocol violation the test
// detects through the data itself.  Run under ASan in CI.
//
// kFenced is used explicitly: it is the portable reader-side protocol, and
// kAuto would normally resolve to kMembarrier and leave the reader-side fence
// path unexercised.
// ---------------------------------------------------------------------------

TEST(TlbStaleHunterTest, UnmapNeverFollowedByStaleHitOnAnotherCpu) {
  constexpr size_t kPages = 16;
  constexpr int kReaders = 3;
  constexpr int kMutations = 3000;
  constexpr uint64_t kPoison = 0xDEADDEADDEADDEADull;

  PhysicalMemory memory(kPages * 2 + 4, kPage);
  SoftMmu inner(kPage);
  TlbMmu tlb(inner, /*enabled=*/true, TlbMmu::FenceMode::kFenced);
  AsId as = *tlb.CreateAddressSpace();

  // Double-buffered frames per page: the live frame carries the page's serial,
  // the retired one is poisoned after its unmap completes.
  FrameIndex frames[kPages][2];
  uint64_t serial[kPages] = {};
  for (size_t p = 0; p < kPages; ++p) {
    frames[p][0] = static_cast<FrameIndex>(2 * p);
    frames[p][1] = static_cast<FrameIndex>(2 * p + 1);
    std::memcpy(memory.FrameData(frames[p][0]), &serial[p], sizeof(uint64_t));
    ASSERT_EQ(tlb.Map(as, PageVa(p), frames[p][0], Prot::kRead), Status::kOk);
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> stale_observations{0};
  std::atomic<uint64_t> good_hits{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(1000 + r);  // seeded: reproducible interleavings
      while (!done.load(std::memory_order_relaxed)) {
        const size_t p = rng() % kPages;
        uint64_t value = 0;
        const auto body = [&](FrameIndex frame) {
          std::memcpy(&value, memory.FrameData(frame), sizeof(uint64_t));
        };
        Result<FrameIndex> f = tlb.TranslateAndAccess(as, PageVa(p), Access::kRead,
                                                      FrameBodyRef(body));
        if (f.ok()) {
          // Any successful access must observe a live serial, never poison.
          if (value == kPoison) {
            stale_observations.fetch_add(1, std::memory_order_relaxed);
          } else {
            good_hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::mt19937_64 rng(42);
  for (int i = 0; i < kMutations; ++i) {
    const size_t p = rng() % kPages;
    const FrameIndex old_frame = frames[p][0];
    const FrameIndex new_frame = frames[p][1];
    // Retire the page: after Unmap returns, the shootdown guarantees no access
    // through the old translation is in flight or can start — so poisoning the
    // old frame is only observable if the TLB leaked a stale hit.
    ASSERT_EQ(tlb.Unmap(as, PageVa(p)), Status::kOk);
    uint64_t poison = kPoison;
    std::memcpy(memory.FrameData(old_frame), &poison, sizeof(uint64_t));
    // Re-arm the page on the other frame with a fresh serial.
    serial[p] += 2;
    std::memcpy(memory.FrameData(new_frame), &serial[p], sizeof(uint64_t));
    ASSERT_EQ(tlb.Map(as, PageVa(p), new_frame, Prot::kRead), Status::kOk);
    frames[p][0] = new_frame;
    frames[p][1] = old_frame;
  }
  // On a loaded single-core host the mutation loop can finish before any reader
  // is ever scheduled; keep the world live (mappings stable now) until the
  // readers have demonstrably run, so the good_hits sanity check below means
  // something.  Bounded: readers always make progress once scheduled.
  for (int spin = 0; spin < 100000 && good_hits.load() == 0; ++spin) {
    std::this_thread::yield();
  }
  done = true;
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(stale_observations.load(), 0u);
  EXPECT_GT(good_hits.load(), 0u);
  EXPECT_GE(tlb.tlb_stats().shootdowns, static_cast<uint64_t>(kMutations));
}

// Two simulated CPUs may write the same frame word at once (both legitimately
// hold write permission); model that hardware-racy-but-defined access with
// relaxed atomics so TSan checks the *kernel*, not the test's RAM model.
uint64_t LoadFrameWord(const std::byte* p) {
  uint64_t v;
  __atomic_load(reinterpret_cast<const uint64_t*>(p), &v, __ATOMIC_RELAXED);
  return v;
}
void StoreFrameWord(std::byte* p, uint64_t v) {
  __atomic_store(reinterpret_cast<uint64_t*>(p), &v, __ATOMIC_RELAXED);
}

TEST(TlbStaleHunterTest, DowngradeNeverFollowedByStaleWriteOnAnotherCpu) {
  constexpr size_t kPages = 8;
  constexpr int kWriters = 3;
  constexpr int kCycles = 300;

  PhysicalMemory memory(kPages + 2, kPage);
  SoftMmu inner(kPage);
  TlbMmu tlb(inner, /*enabled=*/true, TlbMmu::FenceMode::kFenced);
  AsId as = *tlb.CreateAddressSpace();
  for (size_t p = 0; p < kPages; ++p) {
    std::memset(memory.FrameData(static_cast<FrameIndex>(p)), 0, kPage);
    ASSERT_EQ(tlb.Map(as, PageVa(p), static_cast<FrameIndex>(p), Prot::kReadWrite),
              Status::kOk);
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::mt19937_64 rng(2000 + w);  // seeded: reproducible interleavings
      uint64_t stamp = 1;
      while (!done.load(std::memory_order_relaxed)) {
        const size_t p = rng() % kPages;
        const uint64_t value = (static_cast<uint64_t>(w + 1) << 56) | stamp++;
        const auto body = [&](FrameIndex frame) {
          StoreFrameWord(memory.FrameData(frame), value);
        };
        // Protection faults are expected while the page is read-only; what may
        // never happen is the write landing after Protect(kRead) returned.
        (void)tlb.TranslateAndAccess(as, PageVa(p), Access::kWrite, FrameBodyRef(body));
      }
    });
  }

  std::mt19937_64 rng(43);
  for (int i = 0; i < kCycles; ++i) {
    const size_t p = rng() % kPages;
    // Downgrade: once Protect returns, the shootdown has drained every in-flight
    // writer; the frame bytes must now be frozen.
    ASSERT_EQ(tlb.Protect(as, PageVa(p), Prot::kRead), Status::kOk);
    const uint64_t snapshot = LoadFrameWord(memory.FrameData(static_cast<FrameIndex>(p)));
    // Each yield donates a scheduler quantum to the spinning writers, so even
    // a handful of iterations gives every writer a chance to land a stale
    // write; more just multiplies runtime on a loaded host.
    for (int spin = 0; spin < 8; ++spin) {
      std::this_thread::yield();
      const uint64_t now = LoadFrameWord(memory.FrameData(static_cast<FrameIndex>(p)));
      ASSERT_EQ(now, snapshot) << "write landed after downgrade completed (cycle "
                               << i << ", page " << p << ")";
    }
    // Re-arm for the next round.
    ASSERT_EQ(tlb.Protect(as, PageVa(p), Prot::kReadWrite), Status::kOk);
  }
  done = true;
  for (auto& t : writers) {
    t.join();
  }
  EXPECT_GE(tlb.tlb_stats().shootdowns, static_cast<uint64_t>(kCycles));
}

// The scaled hunter for the batched protocol: 64 threads total (the ISSUE's
// many-core target), a mutator mixing *range* unmaps with *gathered* teardown
// flushes, and readers hammering every page.  Poison is written only after the
// range/gather commit returns — any reader that then observes it caught a
// stale translation surviving a batched shootdown.  kFenced keeps the
// reader-side fence path under test (kMembarrier would be a weaker oracle on
// hosts without the syscall anyway).
TEST(TlbStaleHunterTest, RangeAndGatheredShootdownsNeverLeakStaleHitsAt64Threads) {
  constexpr size_t kPages = 32;
  constexpr int kReaders = 63;  // + the mutator = 64 threads
  constexpr int kMutations = 150;
  constexpr uint64_t kGood = 0x600D600D600D600Dull;
  constexpr uint64_t kPoison = 0xDEADDEADDEADDEADull;

  PhysicalMemory memory(kPages * 2 + 4, kPage);
  SoftMmu inner(kPage);
  TlbMmu tlb(inner, /*enabled=*/true, TlbMmu::FenceMode::kFenced);
  std::atomic<AsId> current_as{*tlb.CreateAddressSpace()};

  // Double-buffered frames per page: live carries kGood, the retired buddy is
  // poisoned only once the batched shootdown has committed.
  FrameIndex frames[kPages][2];
  for (size_t p = 0; p < kPages; ++p) {
    frames[p][0] = static_cast<FrameIndex>(2 * p);
    frames[p][1] = static_cast<FrameIndex>(2 * p + 1);
    StoreFrameWord(memory.FrameData(frames[p][0]), kGood);
    ASSERT_EQ(tlb.Map(current_as.load(), PageVa(p), frames[p][0], Prot::kRead),
              Status::kOk);
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> stale_observations{0};
  std::atomic<uint64_t> good_hits{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(5000 + r);  // seeded: reproducible interleavings
      while (!done.load(std::memory_order_relaxed)) {
        const AsId as = current_as.load(std::memory_order_acquire);
        const size_t p = rng() % kPages;
        uint64_t value = 0;
        const auto body = [&](FrameIndex frame) {
          value = LoadFrameWord(memory.FrameData(frame));
        };
        Result<FrameIndex> f =
            tlb.TranslateAndAccess(as, PageVa(p), Access::kRead, FrameBodyRef(body));
        // Faults are expected around unmaps and AS swaps; observing poison
        // through a *successful* access never is.
        if (f.ok()) {
          if (value == kPoison) {
            stale_observations.fetch_add(1, std::memory_order_relaxed);
          } else if (value == kGood) {
            good_hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::mt19937_64 rng(44);
  for (int i = 0; i < kMutations; ++i) {
    AsId as = current_as.load();
    if (i % 8 == 7) {
      // Teardown flavour: condemn the whole AS inside a gather (exec-replace /
      // process-exit shape) — per-page publishes skipped, one AS bump + one
      // fence at scope close.
      {
        TlbGatherScope gather(&tlb);
        tlb.GatherCondemnAddressSpace(as);
        for (size_t p = 0; p < kPages; ++p) {
          ASSERT_EQ(tlb.Unmap(as, PageVa(p)), Status::kOk);
        }
        ASSERT_EQ(tlb.DestroyAddressSpace(as), Status::kOk);
      }
      // Commit done: no stale access can be in flight; poison every old frame
      // and rebuild the world in a fresh address space on the buddy frames.
      for (size_t p = 0; p < kPages; ++p) {
        StoreFrameWord(memory.FrameData(frames[p][0]), kPoison);
        std::swap(frames[p][0], frames[p][1]);
        StoreFrameWord(memory.FrameData(frames[p][0]), kGood);
      }
      AsId fresh = *tlb.CreateAddressSpace();
      for (size_t p = 0; p < kPages; ++p) {
        ASSERT_EQ(tlb.Map(fresh, PageVa(p), frames[p][0], Prot::kRead), Status::kOk);
      }
      current_as.store(fresh, std::memory_order_release);
    } else {
      // Range flavour: retire a contiguous run with one batched shootdown.
      const size_t start = rng() % kPages;
      const size_t len = 1 + rng() % std::min<size_t>(8, kPages - start);
      ASSERT_EQ(tlb.UnmapRange(as, PageVa(start), len), Status::kOk);
      for (size_t p = start; p < start + len; ++p) {
        StoreFrameWord(memory.FrameData(frames[p][0]), kPoison);
        std::swap(frames[p][0], frames[p][1]);
        StoreFrameWord(memory.FrameData(frames[p][0]), kGood);
        ASSERT_EQ(tlb.Map(as, PageVa(p), frames[p][0], Prot::kRead), Status::kOk);
      }
    }
  }
  // Keep the (now stable) world live until the readers have demonstrably run.
  for (int spin = 0; spin < 100000 && good_hits.load() == 0; ++spin) {
    std::this_thread::yield();
  }
  done = true;
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(stale_observations.load(), 0u);
  EXPECT_GT(good_hits.load(), 0u);
  // The batching must be visible in the counters: far fewer fences than pages.
  TlbMmu::TlbStats stats = tlb.tlb_stats();
  EXPECT_GT(stats.shootdown_ranges, 0u);
  EXPECT_GT(stats.shootdown_pages, stats.shootdowns);
}

// ---------------------------------------------------------------------------
// Through the full stack: PagedVm under eviction pressure, TLB enabled —
// page-out (unmap) and refault churn with a byte-level audit.
// ---------------------------------------------------------------------------

TEST(TlbPvmTest, EvictionStormUnderTlbKeepsBytesCoherent) {
  PhysicalMemory memory(48, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.low_water_frames = 4;
  options.high_water_frames = 8;
  options.enable_tlb = true;
  PagedVm vm(memory, mmu, options);
  TestSwapRegistry registry(kPage);
  vm.BindSegmentRegistry(&registry);
  ASSERT_TRUE(vm.tlb().enabled());

  constexpr int kThreads = 3;
  constexpr size_t kPages = 40;  // per thread; deliberately >> resident budget
  std::vector<Context*> contexts(kThreads);
  std::vector<Cache*> caches(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    contexts[t] = *vm.ContextCreate();
    caches[t] = *vm.CacheCreate(nullptr, "tlb-storm" + std::to_string(t));
    ASSERT_TRUE(vm.RegionCreate(*contexts[t], 0x100000, kPages * kPage,
                                Prot::kReadWrite, *caches[t], 0)
                    .ok());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      AsId as = contexts[t]->address_space();
      std::mt19937_64 rng(3000 + t);  // seeded
      for (int round = 0; round < 4; ++round) {
        for (size_t p = 0; p < kPages; ++p) {
          uint64_t value = (static_cast<uint64_t>(t) << 48) | (round << 16) | p;
          ASSERT_EQ(vm.cpu().Write(as, 0x100000 + p * kPage, &value, sizeof(value)),
                    Status::kOk);
        }
        // Random-order readback: every byte must match the last write even as
        // the pager unmaps (shooting down) and refaults pages underneath.
        for (size_t n = 0; n < kPages; ++n) {
          size_t p = rng() % kPages;
          uint64_t got = 0;
          ASSERT_EQ(vm.cpu().Read(as, 0x100000 + p * kPage, &got, sizeof(got)),
                    Status::kOk);
          ASSERT_EQ(got, (static_cast<uint64_t>(t) << 48) | (round << 16) | p);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(vm.stats().pages_paged_out, 0u);
  Cpu::Stats cpu_stats = vm.cpu().SnapshotStats();
  EXPECT_GT(cpu_stats.tlb_hits, 0u);
  EXPECT_GT(cpu_stats.tlb_shootdowns, 0u);
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

// ---------------------------------------------------------------------------
// Pull-in clustering (fault-around)
// ---------------------------------------------------------------------------

TEST(TlbPvmTest, ClusteredPullInMapsNeighboursOnOneFault) {
  PhysicalMemory memory(64, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options options;
  options.pullin_cluster_pages = 8;
  PagedVm vm(memory, mmu, options);
  TestStoreDriver driver(kPage);

  constexpr size_t kPages = 16;
  std::vector<std::byte> data(kPages * kPage);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>('a' + (i / kPage) % 26);
  }
  driver.Preload(0, data.data(), data.size());

  Cache* cache = *vm.CacheCreate(&driver, "clustered");
  Context* ctx = *vm.ContextCreate();
  ASSERT_TRUE(vm.RegionCreate(*ctx, 0x200000, kPages * kPage, Prot::kRead, *cache, 0).ok());
  AsId as = ctx->address_space();

  // One read at page 0: the primary fault pulls page 0 and fault-around
  // materializes + maps the next 7 — one fault, eight resident pages.
  char c = 0;
  ASSERT_EQ(vm.cpu().Read(as, 0x200000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'a');
  EXPECT_EQ(vm.cpu().stats().faults_taken, 1u);
  EXPECT_EQ(vm.detail_stats().pullin_clustered, 7u);

  // Touching the clustered neighbours takes no further faults.
  for (size_t p = 1; p < 8; ++p) {
    ASSERT_EQ(vm.cpu().Read(as, 0x200000 + p * kPage, &c, 1), Status::kOk);
    EXPECT_EQ(c, static_cast<char>('a' + p));
  }
  EXPECT_EQ(vm.cpu().stats().faults_taken, 1u);

  // Page 8 is outside the cluster: it faults (and clusters again).
  ASSERT_EQ(vm.cpu().Read(as, 0x200000 + 8 * kPage, &c, 1), Status::kOk);
  EXPECT_EQ(c, static_cast<char>('a' + 8));
  EXPECT_EQ(vm.cpu().stats().faults_taken, 2u);
  EXPECT_EQ(vm.CheckInvariants(), Status::kOk);
}

}  // namespace
}  // namespace gvm
