#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/sync/annotated_mutex.h"
#include "src/sync/sleep_queue.h"

namespace gvm {
namespace {

TEST(SleepQueueTest, WakeAllReleasesSleepers) {
  SleepQueue queue;
  Mutex mu{Rank::kClient, "sync_test::mu"};
  std::atomic<int> woken{0};
  std::atomic<bool> ready{false};

  auto sleeper = [&] {
    MutexLock lock(mu);
    while (!ready.load()) {
      queue.Wait(42, mu);
    }
    ++woken;
  };
  std::thread t1(sleeper);
  std::thread t2(sleeper);

  // Wait until both threads are asleep.
  while (queue.SleeperCount() < 2) {
    std::this_thread::yield();
  }
  {
    MutexLock lock(mu);
    ready = true;
    queue.WakeAll(42, mu);
  }
  t1.join();
  t2.join();
  EXPECT_EQ(woken.load(), 2);
  EXPECT_EQ(queue.SleeperCount(), 0u);
}

TEST(SleepQueueTest, WakeIsKeySpecific) {
  SleepQueue queue;
  Mutex mu{Rank::kClient, "sync_test::mu"};
  std::atomic<bool> ready{false};
  std::atomic<int> wakeups{0};

  std::thread t([&] {
    MutexLock lock(mu);
    while (!ready.load()) {
      queue.Wait(1, mu);
      ++wakeups;
    }
  });
  while (queue.SleeperCount() < 1) {
    std::this_thread::yield();
  }
  {
    // Waking a different key must not (deterministically) release the sleeper;
    // after this the sleeper is still waiting on key 1.
    MutexLock lock(mu);
    queue.WakeAll(2, mu);
  }
  EXPECT_EQ(queue.SleeperCount(), 1u);
  {
    MutexLock lock(mu);
    ready = true;
    queue.WakeAll(1, mu);
  }
  t.join();
  EXPECT_GE(wakeups.load(), 1);
}

TEST(SleepQueueTest, WakeWithNoSleepersIsNoop) {
  SleepQueue queue;
  Mutex mu{Rank::kClient, "sync_test::mu"};
  MutexLock lock(mu);
  queue.WakeAll(99, mu);
  EXPECT_EQ(queue.SleeperCount(), 0u);
}

}  // namespace
}  // namespace gvm
