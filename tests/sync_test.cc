#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "src/sync/sleep_queue.h"

namespace gvm {
namespace {

TEST(SleepQueueTest, WakeAllReleasesSleepers) {
  SleepQueue queue;
  std::mutex mu;
  std::atomic<int> woken{0};
  std::atomic<bool> ready{false};

  auto sleeper = [&] {
    std::unique_lock<std::mutex> lock(mu);
    while (!ready.load()) {
      queue.Wait(42, lock);
    }
    ++woken;
  };
  std::thread t1(sleeper);
  std::thread t2(sleeper);

  // Wait until both threads are asleep.
  while (queue.SleeperCount() < 2) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    ready = true;
    queue.WakeAll(42);
  }
  t1.join();
  t2.join();
  EXPECT_EQ(woken.load(), 2);
  EXPECT_EQ(queue.SleeperCount(), 0u);
}

TEST(SleepQueueTest, WakeIsKeySpecific) {
  SleepQueue queue;
  std::mutex mu;
  std::atomic<bool> ready{false};
  std::atomic<int> wakeups{0};

  std::thread t([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (!ready.load()) {
      queue.Wait(1, lock);
      ++wakeups;
    }
  });
  while (queue.SleeperCount() < 1) {
    std::this_thread::yield();
  }
  {
    // Waking a different key must not (deterministically) release the sleeper;
    // after this the sleeper is still waiting on key 1.
    std::lock_guard<std::mutex> lock(mu);
    queue.WakeAll(2);
  }
  EXPECT_EQ(queue.SleeperCount(), 1u);
  {
    std::lock_guard<std::mutex> lock(mu);
    ready = true;
    queue.WakeAll(1);
  }
  t.join();
  EXPECT_GE(wakeups.load(), 1);
}

TEST(SleepQueueTest, WakeWithNoSleepersIsNoop) {
  SleepQueue queue;
  queue.WakeAll(99);
  EXPECT_EQ(queue.SleeperCount(), 0u);
}

}  // namespace
}  // namespace gvm
