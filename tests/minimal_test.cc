// MinimalVm (embedded/real-time implementation, section 5.2): eager allocation,
// fault-free access, physical copies — same GMI surface.
#include <gtest/gtest.h>

#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/minimal/minimal_mm.h"
#include "tests/test_util.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

class MinimalTest : public ::testing::Test {
 protected:
  MinimalTest() : memory_(64, kPage), mmu_(kPage), vm_(memory_, mmu_) {
    context_ = *vm_.ContextCreate();
  }

  PhysicalMemory memory_;
  SoftMmu mmu_;
  MinimalVm vm_;
  Context* context_ = nullptr;
};

TEST_F(MinimalTest, RegionsAreEagerAndFaultFree) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  ASSERT_TRUE(
      vm_.RegionCreate(*context_, 0x10000, 4 * kPage, Prot::kReadWrite, *cache, 0).ok());
  // All four pages were allocated at creation time.
  EXPECT_EQ(memory_.used_frames(), 4u);
  // No fault is ever taken.
  AsId as = context_->address_space();
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(as, 0x10000 + 3 * kPage, 9), Status::kOk);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(as, 0x10000 + 3 * kPage), 9u);
  EXPECT_EQ(vm_.stats().page_faults, 0u);
  EXPECT_EQ(vm_.cpu().stats().faults_taken, 0u);
}

TEST_F(MinimalTest, DriverBackedRegionLoadsAtCreate) {
  TestStoreDriver driver(kPage);
  std::vector<char> file(2 * kPage, 'm');
  driver.Preload(0, file.data(), file.size());
  Cache* cache = *vm_.CacheCreate(&driver, "file");
  ASSERT_TRUE(vm_.RegionCreate(*context_, 0x20000, 2 * kPage, Prot::kRead, *cache, 0).ok());
  EXPECT_GE(driver.pull_ins, 2);
  char c = 0;
  ASSERT_EQ(vm_.cpu().Read(context_->address_space(), 0x20000 + kPage, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'm');
}

TEST_F(MinimalTest, CopiesArePhysical) {
  Cache* src = *vm_.CacheCreate(nullptr, "src");
  char v = 'p';
  ASSERT_EQ(src->Write(0, &v, 1), Status::kOk);
  Cache* dst = *vm_.CacheCreate(nullptr, "dst");
  // Whatever policy is requested, the copy is eager.
  ASSERT_EQ(src->CopyTo(*dst, 0, 0, kPage, CopyPolicy::kHistory), Status::kOk);
  char w = 'q';
  ASSERT_EQ(src->Write(0, &w, 1), Status::kOk);
  char back = 0;
  ASSERT_EQ(dst->Read(0, &back, 1), Status::kOk);
  EXPECT_EQ(back, 'p');  // unaffected by the later source write
}

TEST_F(MinimalTest, SharedMappingsSeeEachOther) {
  Cache* cache = *vm_.CacheCreate(nullptr, "shm");
  Context* other = *vm_.ContextCreate();
  ASSERT_TRUE(vm_.RegionCreate(*context_, 0x10000, kPage, Prot::kReadWrite, *cache, 0).ok());
  ASSERT_TRUE(vm_.RegionCreate(*other, 0x50000, kPage, Prot::kReadWrite, *cache, 0).ok());
  ASSERT_EQ(vm_.cpu().Store<uint32_t>(context_->address_space(), 0x10000, 0x77), Status::kOk);
  EXPECT_EQ(*vm_.cpu().Load<uint32_t>(other->address_space(), 0x50000), 0x77u);
}

TEST_F(MinimalTest, LockInMemoryIsAlwaysSatisfied) {
  Cache* cache = *vm_.CacheCreate(nullptr, "rt");
  Region* region =
      *vm_.RegionCreate(*context_, 0x10000, 2 * kPage, Prot::kReadWrite, *cache, 0);
  EXPECT_EQ(region->LockInMemory(), Status::kOk);
  EXPECT_EQ(region->Unlock(), Status::kOk);
}

TEST_F(MinimalTest, DestroyReclaimsFrames) {
  Cache* cache = *vm_.CacheCreate(nullptr, "anon");
  Region* region =
      *vm_.RegionCreate(*context_, 0x10000, 4 * kPage, Prot::kReadWrite, *cache, 0);
  EXPECT_EQ(memory_.used_frames(), 4u);
  ASSERT_EQ(region->Destroy(), Status::kOk);
  ASSERT_EQ(cache->Destroy(), Status::kOk);
  EXPECT_EQ(memory_.used_frames(), 0u);
}

}  // namespace
}  // namespace gvm
