// Nucleus layer: IPC, mappers (both transports), segment manager with segment
// caching (section 5.1.3), the rgn* operations (5.1.4), and the transit-segment
// IPC data path (5.1.6).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/hal/soft_mmu.h"
#include "src/nucleus/nucleus.h"
#include "src/pvm/paged_vm.h"

namespace gvm {
namespace {

constexpr size_t kPage = 4096;

TEST(IpcTest, SendReceiveFifo) {
  Ipc ipc;
  PortId port = ipc.PortCreate();
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.operation = 100 + i;
    ASSERT_EQ(ipc.Send(port, std::move(m)), Status::kOk);
  }
  EXPECT_EQ(ipc.QueueDepth(port), 3u);
  for (int i = 0; i < 3; ++i) {
    Result<Message> m = ipc.Receive(port);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->operation, 100u + i);
  }
}

TEST(IpcTest, MessageSizeLimit) {
  // "Messages are of limited size (64 Kbytes in the current implementation)."
  Ipc ipc;
  PortId port = ipc.PortCreate();
  Message m;
  m.data.resize(Message::kMaxBytes + 1);
  EXPECT_EQ(ipc.Send(port, std::move(m)), Status::kInvalidArgument);
  Message fits;
  fits.data.resize(Message::kMaxBytes);
  EXPECT_EQ(ipc.Send(port, std::move(fits)), Status::kOk);
}

TEST(IpcTest, SendToUnknownPortFails) {
  Ipc ipc;
  Message m;
  EXPECT_EQ(ipc.Send(12345, std::move(m)), Status::kNotFound);
}

TEST(IpcTest, CrossThreadReceive) {
  Ipc ipc;
  PortId port = ipc.PortCreate();
  std::thread receiver([&] {
    Result<Message> m = ipc.Receive(port);  // blocks until the send below
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->operation, 7u);
  });
  Message m;
  m.operation = 7;
  ASSERT_EQ(ipc.Send(port, std::move(m)), Status::kOk);
  receiver.join();
}

class NucleusTest : public ::testing::Test {
 protected:
  NucleusTest()
      : memory_(256, kPage),
        mmu_(kPage),
        vm_(memory_, mmu_),
        nucleus_(vm_),
        swap_(kPage),
        files_(kPage),
        swap_server_(nucleus_.ipc(), swap_),
        file_server_(nucleus_.ipc(), files_) {
    nucleus_.BindDefaultMapper(&swap_server_);
    nucleus_.RegisterMapper(&file_server_);
  }

  Capability FileCapability(const std::string& name, const std::string& contents) {
    auto key = files_.CreateFile(name, contents.data(), contents.size());
    EXPECT_TRUE(key.ok());
    return Capability{file_server_.port(), *key};
  }

  PhysicalMemory memory_;
  SoftMmu mmu_;
  PagedVm vm_;
  Nucleus nucleus_;
  SwapMapper swap_;
  FileMapper files_;
  MapperServer swap_server_;
  MapperServer file_server_;
};

TEST_F(NucleusTest, RgnAllocateGivesZeroFilledMemory) {
  Actor* actor = *nucleus_.ActorCreate("a");
  ASSERT_TRUE(actor->RgnAllocate(0x10000, 4 * kPage, Prot::kReadWrite).ok());
  uint64_t v = 1;
  ASSERT_EQ(actor->Read(0x10000 + kPage, &v, sizeof(v)), Status::kOk);
  EXPECT_EQ(v, 0u);
  v = 42;
  ASSERT_EQ(actor->Write(0x10000, &v, sizeof(v)), Status::kOk);
  uint64_t back = 0;
  ASSERT_EQ(actor->Read(0x10000, &back, sizeof(back)), Status::kOk);
  EXPECT_EQ(back, 42u);
  ASSERT_EQ(nucleus_.ActorDestroy(actor), Status::kOk);
}

TEST_F(NucleusTest, RgnMapReadsThroughFileMapper) {
  std::string contents(2 * kPage, 'f');
  contents[kPage] = 'G';
  Capability file = FileCapability("/bin/tool", contents);
  Actor* actor = *nucleus_.ActorCreate("a");
  ASSERT_TRUE(actor->RgnMap(0x400000, 2 * kPage, Prot::kReadExecute, file, 0).ok());
  char c = 0;
  ASSERT_EQ(actor->Read(0x400000 + kPage, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'G');
  EXPECT_GE(files_.reads, 1);
  // The region is execute-protected but not writable.
  EXPECT_EQ(actor->Write(0x400000, &c, 1), Status::kProtectionFault);
}

TEST_F(NucleusTest, RgnMapSharesOneLocalCache) {
  // "a given segment may be mapped into any number of regions, allocated to any
  // number of contexts" — through ONE local cache (the segment manager's table).
  Capability file = FileCapability("/bin/shared", std::string(kPage, 's'));
  Actor* a = *nucleus_.ActorCreate("a");
  Actor* b = *nucleus_.ActorCreate("b");
  ASSERT_TRUE(a->RgnMap(0x400000, kPage, Prot::kRead, file, 0).ok());
  ASSERT_TRUE(b->RgnMap(0x800000, kPage, Prot::kRead, file, 0).ok());
  EXPECT_EQ(nucleus_.segment_manager().stats().caches_created, 1u);
  char c = 0;
  ASSERT_EQ(a->Read(0x400000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 's');
  // b's read hits the shared cache: no extra mapper read.
  int reads_before = files_.reads;
  ASSERT_EQ(b->Read(0x800000, &c, 1), Status::kOk);
  EXPECT_EQ(files_.reads, reads_before);
}

TEST_F(NucleusTest, RgnInitIsACopyNotASharing) {
  std::string contents(kPage, 'o');
  Capability file = FileCapability("/data/base", contents);
  Actor* actor = *nucleus_.ActorCreate("a");
  ASSERT_TRUE(
      actor->RgnInit(0x500000, kPage, Prot::kReadWrite, file, 0, CopyPolicy::kHistory).ok());
  char c = 0;
  ASSERT_EQ(actor->Read(0x500000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'o');
  // Writing the region must not write the file.
  c = 'X';
  ASSERT_EQ(actor->Write(0x500000, &c, 1), Status::kOk);
  EXPECT_EQ(files_.writes, 0);
  ASSERT_EQ(actor->Read(0x500000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'X');
}

TEST_F(NucleusTest, SegmentCachingSpeedsReacquisition) {
  // Section 5.1.3: releasing a segment keeps its cache; re-acquiring hits it and
  // the data is still resident (no mapper traffic).
  Capability file = FileCapability("/bin/make", std::string(4 * kPage, 'm'));
  Actor* actor = *nucleus_.ActorCreate("a");
  Region* region = *actor->RgnMap(0x400000, 4 * kPage, Prot::kRead, file, 0);
  char c = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(actor->Read(0x400000 + i * kPage, &c, 1), Status::kOk);
  }
  int reads_after_first = files_.reads;
  ASSERT_EQ(actor->RgnFree(region), Status::kOk);
  EXPECT_EQ(nucleus_.segment_manager().CachedSegmentCount(), 1u);

  // "exec" again: remap and touch — all cache hits.
  ASSERT_TRUE(actor->RgnMap(0x400000, 4 * kPage, Prot::kRead, file, 0).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(actor->Read(0x400000 + i * kPage, &c, 1), Status::kOk);
  }
  EXPECT_EQ(files_.reads, reads_after_first);
  EXPECT_GE(nucleus_.segment_manager().stats().cache_hits, 1u);
}

TEST_F(NucleusTest, SegmentCachePoolIsBounded) {
  Nucleus::Options options;
  options.segment_manager.cache_capacity = 2;
  PhysicalMemory memory(256, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  Nucleus nucleus(vm, options);
  SwapMapper swap(kPage);
  FileMapper files(kPage);
  MapperServer swap_server(nucleus.ipc(), swap);
  MapperServer file_server(nucleus.ipc(), files);
  nucleus.BindDefaultMapper(&swap_server);
  nucleus.RegisterMapper(&file_server);

  Actor* actor = *nucleus.ActorCreate("a");
  for (int i = 0; i < 5; ++i) {
    std::string name = "/f" + std::to_string(i);
    auto key = files.CreateFile(name, name.data(), name.size());
    Capability cap{file_server.port(), *key};
    Region* region = *actor->RgnMap(0x400000, kPage, Prot::kRead, cap, 0);
    ASSERT_EQ(actor->RgnFree(region), Status::kOk);
  }
  EXPECT_LE(nucleus.segment_manager().CachedSegmentCount(), 2u);
  EXPECT_GE(nucleus.segment_manager().stats().caches_discarded, 3u);
}

TEST_F(NucleusTest, SwapBackedPageoutThroughDefaultMapper) {
  // Small memory: anonymous pages must be pushed to swap segments allocated
  // lazily from the default mapper.
  PhysicalMemory memory(8, kPage);
  SoftMmu mmu(kPage);
  PagedVm::Options vm_options;
  vm_options.low_water_frames = 2;
  vm_options.high_water_frames = 3;
  PagedVm vm(memory, mmu, vm_options);
  Nucleus nucleus(vm);
  SwapMapper swap(kPage);
  MapperServer swap_server(nucleus.ipc(), swap);
  nucleus.BindDefaultMapper(&swap_server);

  Actor* actor = *nucleus.ActorCreate("a");
  ASSERT_TRUE(actor->RgnAllocate(0x10000, 12 * kPage, Prot::kReadWrite).ok());
  for (int i = 0; i < 12; ++i) {
    uint32_t v = 0xBEEF0000u + i;
    ASSERT_EQ(actor->Write(0x10000 + i * kPage, &v, sizeof(v)), Status::kOk);
  }
  EXPECT_GE(swap.SegmentCount(), 1u);
  EXPECT_GE(nucleus.segment_manager().stats().temp_segments, 1u);
  for (int i = 0; i < 12; ++i) {
    uint32_t v = 0;
    ASSERT_EQ(actor->Read(0x10000 + i * kPage, &v, sizeof(v)), Status::kOk);
    EXPECT_EQ(v, 0xBEEF0000u + i) << i;
  }
}

TEST_F(NucleusTest, ForkRecipeFromActor) {
  // The section 5.1.5 fork recipe: share text, copy data.
  Capability text = FileCapability("/bin/sh", std::string(2 * kPage, 't'));
  Actor* parent = *nucleus_.ActorCreate("parent");
  ASSERT_TRUE(parent->RgnMap(0x400000, 2 * kPage, Prot::kReadExecute, text, 0).ok());
  ASSERT_TRUE(parent->RgnAllocate(0x600000, 2 * kPage, Prot::kReadWrite).ok());
  uint32_t v = 0x11;
  ASSERT_EQ(parent->Write(0x600000, &v, sizeof(v)), Status::kOk);

  Actor* child = *nucleus_.ActorCreate("child");
  ASSERT_TRUE(
      child->RgnMapFromActor(0x400000, 2 * kPage, Prot::kReadExecute, *parent, 0x400000)
          .ok());
  ASSERT_TRUE(child
                  ->RgnInitFromActor(0x600000, 2 * kPage, Prot::kReadWrite, *parent,
                                     0x600000, CopyPolicy::kHistory)
                  .ok());
  // Text is shared (one cache).
  char c = 0;
  ASSERT_EQ(child->Read(0x400000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 't');
  // Data is copy-on-write.
  uint32_t got = 0;
  ASSERT_EQ(child->Read(0x600000, &got, sizeof(got)), Status::kOk);
  EXPECT_EQ(got, 0x11u);
  uint32_t child_value = 0x22;
  ASSERT_EQ(child->Write(0x600000, &child_value, sizeof(child_value)), Status::kOk);
  ASSERT_EQ(parent->Read(0x600000, &got, sizeof(got)), Status::kOk);
  EXPECT_EQ(got, 0x11u);
  ASSERT_EQ(nucleus_.ActorDestroy(child), Status::kOk);
  ASSERT_EQ(nucleus_.ActorDestroy(parent), Status::kOk);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(NucleusTest, TransitSegmentIpcAlignedUsesDeferredCopyAndMove) {
  Actor* sender = *nucleus_.ActorCreate("send");
  Actor* receiver = *nucleus_.ActorCreate("recv");
  ASSERT_TRUE(sender->RgnAllocate(0x10000, 4 * kPage, Prot::kReadWrite).ok());
  ASSERT_TRUE(receiver->RgnAllocate(0x20000, 4 * kPage, Prot::kReadWrite).ok());
  std::vector<char> payload(2 * kPage, 'p');
  payload[kPage] = 'Q';
  ASSERT_EQ(sender->Write(0x10000, payload.data(), payload.size()), Status::kOk);

  PortId port = nucleus_.ipc().PortCreate();
  uint64_t moves_before = vm_.detail_stats().move_retargets;
  ASSERT_EQ(nucleus_.MsgSendFromRegion(*sender, port, 1, 0x10000, payload.size()),
            Status::kOk);
  Result<Message> m = nucleus_.MsgReceiveToRegion(*receiver, port, 0x20000, 4 * kPage);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->arg1, payload.size());

  std::vector<char> got(payload.size());
  ASSERT_EQ(receiver->Read(0x20000, got.data(), got.size()), Status::kOk);
  EXPECT_EQ(got, payload);
  // The receive used move semantics (page retargeting).
  EXPECT_GT(vm_.detail_stats().move_retargets, moves_before);
  // All transit slots free again.
  EXPECT_EQ(nucleus_.transit().FreeSlots(), 8u);
  EXPECT_EQ(vm_.CheckInvariants(), Status::kOk);
}

TEST_F(NucleusTest, TransitSegmentIpcUnalignedFallsBackToBcopy) {
  Actor* sender = *nucleus_.ActorCreate("send");
  Actor* receiver = *nucleus_.ActorCreate("recv");
  ASSERT_TRUE(sender->RgnAllocate(0x10000, kPage, Prot::kReadWrite).ok());
  ASSERT_TRUE(receiver->RgnAllocate(0x20000, kPage, Prot::kReadWrite).ok());
  const char payload[] = "short unaligned message";
  ASSERT_EQ(sender->Write(0x10000 + 100, payload, sizeof(payload)), Status::kOk);

  PortId port = nucleus_.ipc().PortCreate();
  ASSERT_EQ(nucleus_.MsgSendFromRegion(*sender, port, 2, 0x10000 + 100, sizeof(payload)),
            Status::kOk);
  Result<Message> m = nucleus_.MsgReceiveToRegion(*receiver, port, 0x20000 + 8, kPage - 8);
  ASSERT_TRUE(m.ok());
  char got[sizeof(payload)] = {};
  ASSERT_EQ(receiver->Read(0x20000 + 8, got, sizeof(got)), Status::kOk);
  EXPECT_STREQ(got, payload);
}

TEST_F(NucleusTest, IpcTransportModeServesMappersOverPorts) {
  // The fully message-based mapper transport with a served port (threaded).
  Nucleus::Options options;
  options.segment_manager.use_ipc_transport = true;
  PhysicalMemory memory(64, kPage);
  SoftMmu mmu(kPage);
  PagedVm vm(memory, mmu);
  Nucleus nucleus(vm, options);
  FileMapper files(kPage);
  MapperServer file_server(nucleus.ipc(), files);
  nucleus.RegisterMapper(&file_server);
  file_server.Start();

  std::string contents(kPage, 'T');
  auto key = files.CreateFile("/t", contents.data(), contents.size());
  Capability cap{file_server.port(), *key};
  Actor* actor = *nucleus.ActorCreate("a");
  ASSERT_TRUE(actor->RgnMap(0x400000, kPage, Prot::kRead, cap, 0).ok());
  char c = 0;
  ASSERT_EQ(actor->Read(0x400000, &c, 1), Status::kOk);
  EXPECT_EQ(c, 'T');
  EXPECT_GE(file_server.requests_served(), 1u);
  file_server.Stop();
}

TEST_F(NucleusTest, LocalCacheCapabilityRoundTrip) {
  Capability file = FileCapability("/cap", std::string(kPage, 'c'));
  Result<Cache*> cache = nucleus_.segment_manager().AcquireCache(file);
  ASSERT_TRUE(cache.ok());
  Result<Capability> local = nucleus_.segment_manager().LocalCacheCapability(*cache);
  ASSERT_TRUE(local.ok());
  Result<Cache*> resolved = nucleus_.segment_manager().ResolveLocalCache(*local);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, *cache);
  // A forged capability does not resolve.
  Capability forged{local->port, local->key + 999};
  EXPECT_FALSE(nucleus_.segment_manager().ResolveLocalCache(forged).ok());
  nucleus_.segment_manager().Release(*cache);
}

}  // namespace
}  // namespace gvm
