// Status codes used across the whole memory-management stack.
//
// The GMI paper (section 3.3) notes that logical errors (out-of-bounds offsets
// and the like) are checked by the upper layers of the kernel, while resource
// exhaustion and faults cause error returns from the memory manager.  We model
// both kinds with a single small enum: kernels do not throw.
#ifndef GVM_SRC_UTIL_STATUS_H_
#define GVM_SRC_UTIL_STATUS_H_

#include <string_view>

namespace gvm {

enum class Status {
  kOk = 0,
  // Resource exhaustion.
  kNoMemory,        // no free page frames / descriptor space
  kNoSwap,          // backing store full
  // Faults surfaced to the caller (the simulated "exceptions" of section 4.1.2).
  kSegmentationFault,  // no region covers the faulting address
  kProtectionFault,    // region protection forbids the access
  kBusError,           // mapper could not provide the data (I/O error analogue)
  kPortDead,           // the server's port died mid-request (mapper crash)
  kTimeout,            // a bounded send/receive deadline expired
  // Logical errors (normally filtered by the upper layers; returned, not asserted,
  // so that tests can probe the boundaries).
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kPermissionDenied,  // capability check failed
  // State errors.
  kBusy,       // e.g. destroying a cache with active mappings
  kLocked,     // operation conflicts with lockInMemory
  kUnsupported,
  // Internal to the memory managers: the operation blocked (slept on an in-transit
  // page, or dropped the manager lock to evict/pull in) and must be re-driven from
  // re-derived state.  Never escapes a public GMI entry point.
  kRetry,
};

// Human-readable name, for logs and test failure messages.
std::string_view StatusName(Status s);

inline bool IsOk(Status s) { return s == Status::kOk; }

}  // namespace gvm

#endif  // GVM_SRC_UTIL_STATUS_H_
