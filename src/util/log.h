// Tiny leveled logger.  Off by default so benchmarks stay quiet; tests and the
// examples turn it up to watch fault handling and history-tree surgery.
#ifndef GVM_SRC_UTIL_LOG_H_
#define GVM_SRC_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace gvm {

enum class LogLevel : int { kNone = 0, kError = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

// Global log threshold; messages above it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Sink for a fully formatted line (adds its own newline).
void LogLine(LogLevel level, const std::string& line);

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define GVM_LOG(level)                                              \
  if (static_cast<int>(::gvm::GetLogLevel()) <                      \
      static_cast<int>(::gvm::LogLevel::k##level)) {                \
  } else                                                            \
    ::gvm::log_internal::LogMessage(::gvm::LogLevel::k##level, __FILE__, __LINE__).stream()

}  // namespace gvm

#endif  // GVM_SRC_UTIL_LOG_H_
