// Deterministic pseudo-random generator for workload generators and property tests.
// SplitMix64: tiny, fast, and reproducible across platforms (unlike std::mt19937
// distributions, whose results may differ between standard library versions).
#ifndef GVM_SRC_UTIL_RNG_H_
#define GVM_SRC_UTIL_RNG_H_

#include <cstdint>

namespace gvm {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).  bound must be nonzero.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace gvm

#endif  // GVM_SRC_UTIL_RNG_H_
