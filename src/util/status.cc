#include "src/util/status.h"

namespace gvm {

std::string_view StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "kOk";
    case Status::kNoMemory:
      return "kNoMemory";
    case Status::kNoSwap:
      return "kNoSwap";
    case Status::kSegmentationFault:
      return "kSegmentationFault";
    case Status::kProtectionFault:
      return "kProtectionFault";
    case Status::kBusError:
      return "kBusError";
    case Status::kPortDead:
      return "kPortDead";
    case Status::kTimeout:
      return "kTimeout";
    case Status::kInvalidArgument:
      return "kInvalidArgument";
    case Status::kNotFound:
      return "kNotFound";
    case Status::kAlreadyExists:
      return "kAlreadyExists";
    case Status::kOutOfRange:
      return "kOutOfRange";
    case Status::kPermissionDenied:
      return "kPermissionDenied";
    case Status::kBusy:
      return "kBusy";
    case Status::kLocked:
      return "kLocked";
    case Status::kUnsupported:
      return "kUnsupported";
    case Status::kRetry:
      return "kRetry";
  }
  return "<unknown>";
}

}  // namespace gvm
