// A minimal Result<T> (value-or-Status) for fallible operations, in the spirit of
// zx::result / absl::StatusOr.  Kernel-style code: no exceptions, explicit checks.
#ifndef GVM_SRC_UTIL_RESULT_H_
#define GVM_SRC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace gvm {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error status keeps call sites terse:
  //   Result<Frame> f = Status::kNoMemory;     // error
  //   Result<Frame> f = frame;                 // success
  Result(T value) : status_(Status::kOk), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(status) {                            // NOLINT
    assert(status != Status::kOk && "use the value constructor for success");
  }

  bool ok() const { return status_ == Status::kOk; }
  Status status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate an error Status from an expression returning Status.
#define GVM_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::gvm::Status gvm_status_ = (expr);          \
    if (gvm_status_ != ::gvm::Status::kOk) {     \
      return gvm_status_;                        \
    }                                            \
  } while (0)

// Assign the value of a Result expression or propagate its error.
#define GVM_ASSIGN_OR_RETURN(lhs, expr)       \
  auto gvm_result_##__LINE__ = (expr);        \
  if (!gvm_result_##__LINE__.ok()) {          \
    return gvm_result_##__LINE__.status();    \
  }                                           \
  lhs = std::move(gvm_result_##__LINE__.value())

}  // namespace gvm

#endif  // GVM_SRC_UTIL_RESULT_H_
