// Page/alignment arithmetic helpers shared by the MMU models and the memory managers.
#ifndef GVM_SRC_UTIL_ALIGN_H_
#define GVM_SRC_UTIL_ALIGN_H_

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace gvm {

constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  assert(IsPowerOfTwo(alignment));
  return value & ~(alignment - 1);
}

constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  assert(IsPowerOfTwo(alignment));
  return (value + alignment - 1) & ~(alignment - 1);
}

constexpr bool IsAligned(uint64_t value, uint64_t alignment) {
  return AlignDown(value, alignment) == value;
}

// Number of pages needed to cover `size` bytes.
constexpr uint64_t PagesFor(uint64_t size, uint64_t page_size) {
  return AlignUp(size, page_size) / page_size;
}

}  // namespace gvm

#endif  // GVM_SRC_UTIL_ALIGN_H_
