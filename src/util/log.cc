#include "src/util/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "src/sync/annotated_mutex.h"

namespace gvm {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kError)};
// kLog is the highest rank: logging is legal with any kernel lock held.
Mutex g_log_mutex{Rank::kLog, "g_log_mutex"};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
    default:
      return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void LogLine(LogLevel level, const std::string& line) {
  MutexLock lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), line.c_str());
}

namespace log_internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << (base != nullptr ? base + 1 : file) << ":" << line << " ";
}

LogMessage::~LogMessage() { LogLine(level_, stream_.str()); }

}  // namespace log_internal

}  // namespace gvm
