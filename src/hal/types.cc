#include "src/hal/types.h"

namespace gvm {

std::string ProtName(Prot p) {
  std::string out;
  out += ProtAllows(p, Prot::kRead) ? 'r' : '-';
  out += ProtAllows(p, Prot::kWrite) ? 'w' : '-';
  out += ProtAllows(p, Prot::kExecute) ? 'x' : '-';
  return out;
}

std::string AccessName(Access a) {
  switch (a) {
    case Access::kRead:
      return "read";
    case Access::kWrite:
      return "write";
    case Access::kExecute:
      return "execute";
  }
  return "<unknown>";
}

}  // namespace gvm
