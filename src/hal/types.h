// Fundamental machine-level types shared by the hardware layer and the memory
// managers: virtual addresses, frame numbers, protections and access kinds.
#ifndef GVM_SRC_HAL_TYPES_H_
#define GVM_SRC_HAL_TYPES_H_

#include <cstdint>
#include <string>

namespace gvm {

// A virtual address inside a context.
using Vaddr = uint64_t;

// A byte offset inside a segment (segments may be large and sparse; 64 bits).
using SegOffset = uint64_t;

// Index of a physical page frame in the simulated PhysicalMemory.
using FrameIndex = uint32_t;
inline constexpr FrameIndex kInvalidFrame = ~FrameIndex{0};

// Identifier of a hardware address space (one per context).
using AsId = uint32_t;
inline constexpr AsId kInvalidAsId = ~AsId{0};

// Hardware protection bits associated with a mapping or region.
enum class Prot : uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kExecute = 4,
  kReadWrite = kRead | kWrite,
  kReadExecute = kRead | kExecute,
  kAll = kRead | kWrite | kExecute,
};

constexpr Prot operator|(Prot a, Prot b) {
  return static_cast<Prot>(static_cast<uint8_t>(a) | static_cast<uint8_t>(b));
}
constexpr Prot operator&(Prot a, Prot b) {
  return static_cast<Prot>(static_cast<uint8_t>(a) & static_cast<uint8_t>(b));
}
constexpr Prot operator~(Prot a) {
  return static_cast<Prot>(~static_cast<uint8_t>(a) & static_cast<uint8_t>(Prot::kAll));
}
constexpr bool ProtAllows(Prot have, Prot want) { return (have & want) == want; }

// The kind of memory access being performed (the accessMode of GMI pullIn).
enum class Access : uint8_t { kRead, kWrite, kExecute };

// The protection an access requires.
constexpr Prot AccessProt(Access a) {
  switch (a) {
    case Access::kRead:
      return Prot::kRead;
    case Access::kWrite:
      return Prot::kWrite;
    case Access::kExecute:
      return Prot::kExecute;
  }
  return Prot::kNone;
}

std::string ProtName(Prot p);
std::string AccessName(Access a);

// Description of a page fault, as the hardware would report it (section 4.1.2:
// "the hardware page fault descriptor holds the virtual address of the fault").
struct PageFault {
  AsId address_space = kInvalidAsId;
  Vaddr address = 0;
  Access access = Access::kRead;
  // True when a mapping existed but its protection forbade the access
  // (a "write violation" in the paper's terms); false for a missing mapping.
  bool protection_violation = false;
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_TYPES_H_
