#include "src/hal/cpu.h"

#include <cassert>
#include <cstring>

#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

Result<FrameIndex> Cpu::TranslateWithFaults(AsId as, Vaddr va, Access access) {
  return AccessWithFaults(as, va, access, nullptr);
}

Result<FrameIndex> Cpu::AccessWithFaults(AsId as, Vaddr va, Access access,
                                         const std::function<void(FrameIndex)>* body) {
  // Bound the number of fault retries: a correct memory manager makes progress on
  // every round (a pull-in completes, a frame is materialized, an eviction frees
  // memory), but a buggy one must not hang the simulation.  Deferred-copy chains
  // can legitimately take several rounds (pull in an ancestor, push the original
  // to a history object, materialize the private copy), hence the generous bound.
  constexpr int kMaxRetries = 64;
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    Result<FrameIndex> frame = body != nullptr
                                   ? mmu_.TranslateAndAccess(as, va, access, *body)
                                   : mmu_.Translate(as, va, access);
    if (frame.ok()) {
      return frame;
    }
    if (handler_ == nullptr) {
      return frame.status();
    }
    ++stats_.faults_taken;
    PageFault fault{
        .address_space = as,
        .address = va,
        .access = access,
        .protection_violation = frame.status() == Status::kProtectionFault,
    };
    Status handled = handler_->HandleFault(fault);
    if (handled != Status::kOk) {
      return handled;  // unrecoverable: surfaced as the user-visible exception
    }
  }
  GVM_LOG(Error) << "fault loop did not converge at va=0x" << std::hex << va;
  return Status::kBusError;
}

Status Cpu::Touch(AsId as, Vaddr va, Access access) {
  Result<FrameIndex> frame = TranslateWithFaults(as, va, access);
  return frame.ok() ? Status::kOk : frame.status();
}

Status Cpu::AccessBytes(AsId as, Vaddr va, void* buffer, size_t size, Access access) {
  const size_t page_size = mmu_.page_size();
  auto* bytes = static_cast<std::byte*>(buffer);
  size_t done = 0;
  while (done < size) {
    Vaddr addr = va + done;
    size_t in_page = page_size - (addr & (page_size - 1));
    size_t chunk = size - done < in_page ? size - done : in_page;
    // The copy runs inside the MMU's atomic translate-and-access step: a pager
    // thread completing an unmap is then guaranteed no store is still landing in
    // the frame it is about to recycle.
    const std::function<void(FrameIndex)> copy = [&](FrameIndex frame) {
      std::byte* phys = memory_.FrameData(frame) + (addr & (page_size - 1));
      if (access == Access::kWrite) {
        std::memcpy(phys, bytes + done, chunk);
      } else {
        std::memcpy(bytes + done, phys, chunk);
      }
    };
    Result<FrameIndex> frame = AccessWithFaults(as, addr, access, &copy);
    if (!frame.ok()) {
      return frame.status();
    }
    done += chunk;
  }
  if (access == Access::kWrite) {
    ++stats_.writes;
    stats_.bytes_written += size;
  } else {
    ++stats_.reads;
    stats_.bytes_read += size;
  }
  return Status::kOk;
}

}  // namespace gvm
