#include "src/hal/cpu.h"

#include <cassert>
#include <cstring>

#include "src/hal/tlb.h"
#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

Cpu::Cpu(PhysicalMemory& memory, Mmu& mmu)
    : memory_(memory),
      mmu_(mmu),
      tlb_(dynamic_cast<TlbMmu*>(&mmu)),
      page_size_(mmu.page_size()) {}

unsigned Cpu::ThreadStatSlot() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

Result<FrameIndex> Cpu::TranslateWithFaults(AsId as, Vaddr va, Access access) {
  return AccessWithFaults(as, va, access, nullptr);
}

Result<FrameIndex> Cpu::TranslateOnce(AsId as, Vaddr va, Access access,
                                      const FrameBodyRef* body) {
  // Through tlb_ (a final class) the calls below are direct, not virtual.
  if (tlb_ != nullptr) {
    return body != nullptr ? tlb_->TranslateAndAccess(as, va, access, *body)
                           : tlb_->Translate(as, va, access);
  }
  return body != nullptr ? mmu_.TranslateAndAccess(as, va, access, *body)
                         : mmu_.Translate(as, va, access);
}

Result<FrameIndex> Cpu::AccessWithFaults(AsId as, Vaddr va, Access access,
                                         const FrameBodyRef* body) {
  Result<FrameIndex> frame = TranslateOnce(as, va, access, body);
  if (frame.ok()) {
    return frame;
  }
  return FaultRetry(as, va, access, body, frame.status());
}

Result<FrameIndex> Cpu::FaultRetry(AsId as, Vaddr va, Access access, const FrameBodyRef* body,
                                   Status first_failure) {
  // Bound the number of fault retries: a correct memory manager makes progress on
  // every round (a pull-in completes, a frame is materialized, an eviction frees
  // memory), but a buggy one must not hang the simulation.  Deferred-copy chains
  // can legitimately take several rounds (pull in an ancestor, push the original
  // to a history object, materialize the private copy), hence the generous bound.
  constexpr int kMaxRetries = 64;
  Status failure = first_failure;
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    if (handler_ == nullptr) {
      return failure;
    }
    MyShard().faults_taken.fetch_add(1, std::memory_order_relaxed);
    PageFault fault{
        .address_space = as,
        .address = va,
        .access = access,
        .protection_violation = failure == Status::kProtectionFault,
    };
    Status handled = handler_->HandleFault(fault);
    if (handled != Status::kOk) {
      return handled;  // unrecoverable: surfaced as the user-visible exception
    }
    Result<FrameIndex> frame = TranslateOnce(as, va, access, body);
    if (frame.ok()) {
      return frame;
    }
    failure = frame.status();
  }
  GVM_LOG(Error) << "fault loop did not converge at va=0x" << std::hex << va;
  return Status::kBusError;
}

Cpu::Stats Cpu::SnapshotStats() const {
  Stats out = stats();
  if (const TlbMmu* tlb = tlb_) {
    TlbMmu::TlbStats ts = tlb->tlb_stats();
    out.tlb_hits = ts.hits;
    out.tlb_misses = ts.misses;
    out.tlb_huge_hits = ts.huge_hits;
    out.tlb_shootdowns = ts.shootdowns;
    out.tlb_shootdown_pages = ts.shootdown_pages;
    out.tlb_shootdown_ranges = ts.shootdown_ranges;
  }
  return out;
}

Status Cpu::Touch(AsId as, Vaddr va, Access access) {
  // Same fast-path shape as AccessBytes, with an empty body.
  Result<FrameIndex> frame = tlb_ != nullptr
                                 ? tlb_->AccessFast(as, va, access, TlbMmu::NoBody{})
                                 : mmu_.Translate(as, va, access);
  if (!frame.ok()) [[unlikely]] {
    frame = FaultRetry(as, va, access, nullptr, frame.status());
  }
  return frame.ok() ? Status::kOk : frame.status();
}

Status Cpu::AccessBytes(AsId as, Vaddr va, void* buffer, size_t size, Access access) {
  const size_t page_size = page_size_;
  auto* bytes = static_cast<std::byte*>(buffer);
  // Fast path: the access is contained in one page and a TLB fronts the MMU —
  // the common case, word-sized loads/stores from the simulated programs.
  // Everything the copy needs is captured by value, so the inlined TLB hit
  // keeps it in registers instead of round-tripping the closure through the
  // stack; the closure object itself only materializes on the cold fault path.
  if (tlb_ != nullptr && size <= page_size - (va & (page_size - 1))) {
    std::byte* const storage = memory_.FrameData(0);  // frames are contiguous
    const size_t off = va & (page_size - 1);
    const auto copy = [=](FrameIndex frame) {
      std::byte* phys = storage + static_cast<size_t>(frame) * page_size + off;
      std::byte* dst = access == Access::kWrite ? phys : bytes;
      const std::byte* src = access == Access::kWrite ? bytes : phys;
      if (size == sizeof(uint64_t)) {
        // Word-sized accesses dominate; a constant-size copy compiles to a
        // register move instead of a libc call.
        std::memcpy(dst, src, sizeof(uint64_t));
      } else {
        std::memcpy(dst, src, size);
      }
    };
    Result<FrameIndex> frame = tlb_->AccessFast(as, va, access, copy);
    if (!frame.ok()) [[unlikely]] {
      const FrameBodyRef retry_body(copy);
      frame = FaultRetry(as, va, access, &retry_body, frame.status());
      if (!frame.ok()) {
        return frame.status();
      }
    }
    if (access == Access::kWrite) {
      AtomicStats& shard = MyShard();
      shard.writes.fetch_add(1, std::memory_order_relaxed);
      shard.bytes_written.fetch_add(size, std::memory_order_relaxed);
    } else {
      AtomicStats& shard = MyShard();
      shard.reads.fetch_add(1, std::memory_order_relaxed);
      shard.bytes_read.fetch_add(size, std::memory_order_relaxed);
    }
    return Status::kOk;
  }
  size_t done = 0;
  Vaddr addr = va;
  size_t chunk = 0;
  // The copy runs inside the MMU's atomic translate-and-access step: a pager
  // thread completing an unmap is then guaranteed no store is still landing in
  // the frame it is about to recycle.  Built once per call (not per page chunk):
  // the loop below mutates addr/done/chunk, which the callable reads by
  // reference through the non-owning FrameBodyRef.
  const auto copy = [&](FrameIndex frame) {
    std::byte* phys = memory_.FrameData(frame) + (addr & (page_size - 1));
    std::byte* dst = access == Access::kWrite ? phys : bytes + done;
    const std::byte* src = access == Access::kWrite ? bytes + done : phys;
    if (chunk == sizeof(uint64_t)) {
      // Word-sized accesses dominate simulated load/store traffic; a
      // constant-size copy compiles to a register move instead of a libc call.
      std::memcpy(dst, src, sizeof(uint64_t));
    } else {
      std::memcpy(dst, src, chunk);
    }
  };
  const FrameBodyRef body(copy);
  while (done < size) {
    addr = va + done;
    size_t in_page = page_size - (addr & (page_size - 1));
    chunk = size - done < in_page ? size - done : in_page;
    // Hot path: the templated AccessFast inlines the whole TLB hit (probe,
    // validate, copy) into this loop; misses and faults leave through the
    // out-of-line slow paths.
    Result<FrameIndex> frame = tlb_ != nullptr
                                   ? tlb_->AccessFast(as, addr, access, copy)
                                   : mmu_.TranslateAndAccess(as, addr, access, body);
    if (!frame.ok()) [[unlikely]] {
      frame = FaultRetry(as, addr, access, &body, frame.status());
      if (!frame.ok()) {
        return frame.status();
      }
    }
    done += chunk;
  }
  if (access == Access::kWrite) {
    AtomicStats& shard = MyShard();
    shard.writes.fetch_add(1, std::memory_order_relaxed);
    shard.bytes_written.fetch_add(size, std::memory_order_relaxed);
  } else {
    AtomicStats& shard = MyShard();
    shard.reads.fetch_add(1, std::memory_order_relaxed);
    shard.bytes_read.fetch_add(size, std::memory_order_relaxed);
  }
  return Status::kOk;
}

}  // namespace gvm
