#include "src/hal/tlb.h"

#include <bit>
#include <cassert>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "src/hal/phys_memory.h"
#include "src/util/align.h"

namespace gvm {

namespace tlb_internal {
thread_local ThreadTlbRef t_last;
}  // namespace tlb_internal

namespace {

std::atomic<uint64_t> g_next_instance_id{1};

// membarrier(2) constants, declared locally so no kernel headers are required.
#if defined(__linux__) && defined(SYS_membarrier)
constexpr int kMembarrierCmdQuery = 0;
constexpr int kMembarrierCmdPrivateExpedited = 1 << 3;
constexpr int kMembarrierCmdRegisterPrivateExpedited = 1 << 4;

bool MembarrierAvailable() {
  const long cmds = syscall(SYS_membarrier, kMembarrierCmdQuery, 0);
  if (cmds < 0 || (cmds & kMembarrierCmdPrivateExpedited) == 0) {
    return false;
  }
  return syscall(SYS_membarrier, kMembarrierCmdRegisterPrivateExpedited, 0) == 0;
}

// Forces every running thread of this process to execute a full memory
// barrier before the call returns — the software analogue of a shootdown IPI.
void MembarrierAllThreads() { syscall(SYS_membarrier, kMembarrierCmdPrivateExpedited, 0); }
#else
bool MembarrierAvailable() { return false; }
void MembarrierAllThreads() {}
#endif

TlbMmu::FenceMode ResolveFence(TlbMmu::FenceMode requested) {
  switch (requested) {
    case TlbMmu::FenceMode::kAuto:
      // Never auto-select kUniprocessor: the online-CPU count is a snapshot
      // (cpusets and hotplug can add CPUs later), and a fence-free reader on
      // what has become an SMP host could keep using a stale translation
      // across a shootdown.  Fence-free mode is an explicit caller assertion.
      return MembarrierAvailable() ? TlbMmu::FenceMode::kMembarrier : TlbMmu::FenceMode::kFenced;
    case TlbMmu::FenceMode::kMembarrier:
      // Registration is required before PRIVATE_EXPEDITED may be used.
      return MembarrierAvailable() ? TlbMmu::FenceMode::kMembarrier : TlbMmu::FenceMode::kFenced;
    default:
      return requested;
  }
}

// A thread typically talks to one TlbMmu at a time, so the single-entry
// t_last cache fronts this small vector of (instance, slot) bindings.
thread_local std::vector<tlb_internal::ThreadTlbRef> t_refs;

// Process-unique thread ids for slot ownership (0 is reserved for "unclaimed",
// and ids are never reused, so a slot's owner field can only ever match the
// thread that claimed it).
std::atomic<uint64_t> g_next_thread_id{1};

uint64_t ThisThreadTlbId() {
  thread_local const uint64_t id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

namespace tlb_internal {
void ForgetThreadBindings() {
  t_last = ThreadTlbRef{};
  t_refs.clear();
}
}  // namespace tlb_internal

namespace {

// log2 of base pages per huge page, or 0 when the inner MMU has no second
// granule (huge_page_size() == 0 or degenerate).
unsigned ResolveHugeShift(const Mmu& inner) {
  const size_t huge = inner.huge_page_size();
  if (huge <= inner.page_size()) {
    return 0;
  }
  return static_cast<unsigned>(std::countr_zero(huge / inner.page_size()));
}

}  // namespace

TlbMmu::TlbMmu(Mmu& inner, bool enabled, FenceMode fence)
    : inner_(inner),
      enabled_(enabled),
      page_shift_(static_cast<unsigned>(std::countr_zero(inner.page_size()))),
      huge_shift_(ResolveHugeShift(inner)),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)),
      fence_(ResolveFence(fence)),
      reader_fences_(fence_ == FenceMode::kFenced),
      name_(std::string("Tlb(") + inner.name() + ")") {
  assert(IsPowerOfTwo(inner.page_size()));
  cpus_ = std::make_unique<CpuSlot[]>(kMaxCpus);
}

TlbMmu::~TlbMmu() {
  assert(gather_depth_ == 0 && "TlbMmu destroyed inside an open gather scope");
  assert(gather_frames_.empty() && "parked frames leaked past the last gather commit");
}

TlbMmu::CpuSlot* TlbMmu::ThisCpuSlow() {
  for (const tlb_internal::ThreadTlbRef& ref : t_refs) {
    if (ref.mmu == this && ref.id == instance_id_) {
      tlb_internal::t_last = ref;
      return static_cast<CpuSlot*>(ref.slot);
    }
  }
  // The binding may have been dropped (the t_refs size cap below), but slot
  // ownership is also recorded in the slot itself: re-find before claiming
  // anew, otherwise every dropped binding would leak a slot and the thread
  // would eventually exhaust all kMaxCpus and bypass the TLB forever.  Only
  // this thread's own prior claim can match (ids are unique and never reused),
  // so relaxed loads suffice — a match reads this thread's own earlier writes.
  const uint64_t tid = ThisThreadTlbId();
  const size_t rehigh = claimed_high_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < rehigh; ++i) {
    if (cpus_[i].owner.load(std::memory_order_relaxed) == tid) {
      tlb_internal::ThreadTlbRef ref{this, instance_id_, &cpus_[i]};
      t_refs.push_back(ref);
      tlb_internal::t_last = ref;
      return &cpus_[i];
    }
  }
  // First access from this thread: claim a slot.  seq_cst so that a shootdown
  // that misses the claim is guaranteed the claimer's later generation read
  // observes the bump (see Shootdown).
  for (size_t i = 0; i < kMaxCpus; ++i) {
    bool expected = false;
    if (cpus_[i].claimed.compare_exchange_strong(expected, true, std::memory_order_seq_cst)) {
      cpus_[i].owner.store(tid, std::memory_order_relaxed);
      // Publish the scan watermark (seq_cst RMW: either a shootdown's scan sees
      // this slot, or our later generation reads see its bump — same argument
      // as the claim itself).
      size_t high = claimed_high_.load(std::memory_order_seq_cst);
      while (high < i + 1 &&
             !claimed_high_.compare_exchange_weak(high, i + 1, std::memory_order_seq_cst)) {
      }
      // Drop bindings to dead incarnations of this address, and cap unbounded
      // growth across many short-lived managers (orphaned slots stay claimed,
      // which is safe: their entries can never hit again in a new instance).
      // Dropping a binding to a still-live instance is also safe: the owner
      // scan above re-finds its claimed slot on the next access.
      std::erase_if(t_refs,
                    [this](const tlb_internal::ThreadTlbRef& r) { return r.mmu == this; });
      if (t_refs.size() > 256) {
        t_refs.clear();
      }
      tlb_internal::ThreadTlbRef ref{this, instance_id_, &cpus_[i]};
      t_refs.push_back(ref);
      tlb_internal::t_last = ref;
      return &cpus_[i];
    }
  }
  return nullptr;  // more concurrent threads than slots: bypass the TLB
}

void TlbMmu::Fill(CpuSlot& cpu, AsId as, uint64_t vpn, FrameIndex frame, Access access,
                  uint64_t gen, bool huge) {
  // Huge fills index and tag by the huge vpn and record the span's first
  // frame; the hit path adds the in-span page offset back on.
  const size_t s = SetIndex(as, vpn);
  Entry* way = ProbeMutable(cpu, as, vpn, huge);
  if (way != nullptr && way->frame == frame && way->gen == gen) {
    // Same translation, re-proven: accumulate the newly demonstrated right.
    // A write translation also proves the inner PTE dirty bit is now set, so
    // later write hits cannot lose dirty information.  (For a wide entry the
    // inner dirty bit is the span's shared bit, so this stays exact.)
    way->prot = way->prot | AccessProt(access);
    way->dirty_ok = way->dirty_ok || access == Access::kWrite;
    return;
  }
  if (way == nullptr) {
    for (size_t w = 0; w < kWays; ++w) {
      if (!cpu.entries[s][w].valid) {
        way = &cpu.entries[s][w];
        break;
      }
    }
  }
  if (way == nullptr) {
    way = &cpu.entries[s][cpu.next_way[s]];
    cpu.next_way[s] = static_cast<uint8_t>((cpu.next_way[s] + 1) % kWays);
  }
  *way = Entry{.vpn = vpn,
               .gen = gen,
               .as = as,
               .frame = frame,
               .prot = AccessProt(access),
               .dirty_ok = access == Access::kWrite,
               .huge = huge,
               .valid = true};
  Bump(cpu.fills);
}

void TlbMmu::Shootdown(AsId as, uint64_t vpn, bool single_page, bool huge_also) {
  // Publish the invalidation first: any translation that starts after this
  // point revalidates against the new generation sum and must miss.  A
  // single-page operation (the software invlpg) bumps only the page slot its
  // (as, vpn) hashes to — widened to the covering huge slot when the mutation
  // split a span; address-space teardown bumps the AS generation, flushing
  // that context (both granules: GenSumHuge includes it) without disturbing
  // other address spaces' entries.
  if (single_page) {
    if (!GatherCondemned(as)) {  // condemned: subsumed by the commit-time AS bump
      gen_[GenIndex(as, vpn)].fetch_add(1, std::memory_order_seq_cst);
      if (huge_also && huge_shift_ != 0) {
        hgen_[GenIndex(as, vpn >> huge_shift_)].fetch_add(1, std::memory_order_seq_cst);
      }
    }
    shootdown_pages_.fetch_add(1, std::memory_order_relaxed);
  } else if (gather_depth_ > 0) {
    // Whole-AS flush inside a gather (teardown path): accumulate into one
    // deferred bump per AS slot instead of bumping per call.
    gather_as_mask_ |= uint64_t{1} << AsGenIndex(as);
  } else {
    as_gen_[AsGenIndex(as)].fetch_add(1, std::memory_order_seq_cst);
  }
  if (gather_depth_ > 0) {
    gather_pending_ = true;  // commit owes the fence
    return;
  }
  FenceAndDrain();
}

void TlbMmu::FenceAndDrain() {
  // The expensive half of the asymmetric barrier (the "IPI").  After this,
  // every reader's epoch store — a plain store the reader never fences — is
  // visible to us, and every reader still short of its generation check will
  // observe the bump (an interrupted load replays after the barrier).  On a
  // uniprocessor host neither is needed: we are running, so no reader is, and
  // its last context switch already ordered its stores before ours.
  if (fence_ == FenceMode::kMembarrier) {
    MembarrierAllThreads();
  }
  // Then wait out every CPU currently inside its critical window (odd epoch).
  // A CPU observed at an odd epoch either read the old generation (its access
  // is concurrent with — i.e. ordered before — this mutation, like a store
  // that raced an IPI on real hardware) or the new one; once its epoch moves
  // on, any *later* access revalidates and misses.  This mirrors a hardware
  // inter-processor shootdown: bump, send IPI, spin on acknowledgements.
  const size_t high = claimed_high_.load(std::memory_order_seq_cst);
  for (size_t i = 0; i < high; ++i) {
    CpuSlot& cpu = cpus_[i];
    const uint64_t observed = cpu.epoch.load(std::memory_order_seq_cst);
    if ((observed & 1) == 0) {
      continue;  // quiescent: its next access sees the new generation
    }
    while (cpu.epoch.load(std::memory_order_seq_cst) == observed) {
      std::this_thread::yield();  // bounded: the window only spans a page copy
    }
  }
  shootdowns_.fetch_add(1, std::memory_order_relaxed);
}

void TlbMmu::ShootdownRange(AsId as, uint64_t vpn, size_t count) {
  if (!enabled_ || count == 0) {
    return;
  }
  shootdown_ranges_.fetch_add(1, std::memory_order_relaxed);
  shootdown_pages_.fetch_add(count, std::memory_order_relaxed);
  if (!GatherCondemned(as)) {
    if (count >= kGenSlots) {
      // The run covers every page-generation slot, so per-slot bumps would
      // invalidate everything anyway: one AS-wide bump is strictly cheaper.
      if (gather_depth_ > 0) {
        gather_as_mask_ |= uint64_t{1} << AsGenIndex(as);
      } else {
        as_gen_[AsGenIndex(as)].fetch_add(1, std::memory_order_seq_cst);
      }
    } else {
      // Consecutive vpns hit distinct generation slots (GenIndex xors a
      // constant, preserving low-bit distinctness), so no dedup is needed and
      // each affected slot is bumped exactly once.
      for (size_t i = 0; i < count; ++i) {
        gen_[GenIndex(as, vpn + i)].fetch_add(1, std::memory_order_seq_cst);
      }
    }
  }
  if (gather_depth_ > 0) {
    gather_pending_ = true;
    return;
  }
  FenceAndDrain();
}

void TlbMmu::PublishHugeRange(AsId as, uint64_t hvpn_first, uint64_t hvpn_last) {
  if (GatherCondemned(as)) {
    return;  // subsumed by the commit-time AS bump
  }
  // Consecutive huge vpns hit distinct hgen slots (same GenIndex argument as
  // base runs); a run longer than kGenSlots wraps, and double-bumping a
  // monotonic slot is merely redundant, never wrong.
  for (uint64_t h = hvpn_first; h <= hvpn_last; ++h) {
    hgen_[GenIndex(as, h)].fetch_add(1, std::memory_order_seq_cst);
  }
}

void TlbMmu::FinishRangeShootdown(AsId as, bool any, uint64_t first, uint64_t last,
                                  bool any_huge, uint64_t hfirst, uint64_t hlast) {
  // Publish the huge slots first so the single fence below retires wide
  // entries together with the base run.
  if (any_huge && huge_shift_ != 0) {
    PublishHugeRange(as, hfirst, hlast);
  }
  if (any) {
    ShootdownRange(as, first, last - first + 1);
    return;
  }
  if (any_huge && huge_shift_ != 0) {
    // Only wide entries were invalidated (e.g. the run's pages all resolved
    // through spans with no base PTEs left behind); still owe the fence.
    if (gather_depth_ > 0) {
      gather_pending_ = true;
      return;
    }
    FenceAndDrain();
  }
}

void TlbMmu::BeginGather() {
  if (!enabled_) {
    return;
  }
  ++gather_depth_;
}

void TlbMmu::EndGather() {
  if (!enabled_) {
    return;
  }
  assert(gather_depth_ > 0 && "EndGather without BeginGather");
  if (--gather_depth_ == 0) {
    CommitGather();
  }
}

void TlbMmu::FlushGather() {
  if (enabled_ && gather_depth_ > 0) {
    CommitGather();
  }
}

void TlbMmu::CommitGather() {
  // Publish the deferred whole-AS bumps (teardowns condemn their AS instead
  // of bumping per page; every condemned slot pays exactly one bump here).
  if (gather_as_mask_ != 0) {
    for (size_t slot = 0; slot < kAsGenSlots; ++slot) {
      if ((gather_as_mask_ >> slot) & 1) {
        as_gen_[slot].fetch_add(1, std::memory_order_seq_cst);
      }
    }
    gather_as_mask_ = 0;
    gather_pending_ = true;
  }
  // One fence+drain retires every shootdown issued inside the scope.
  if (gather_pending_) {
    gather_pending_ = false;
    FenceAndDrain();
  }
  // Only now — no stale translation can reach them — release parked frames.
  if (!gather_frames_.empty()) {
    for (const auto& [memory, frame] : gather_frames_) {
      memory->FreeFrame(frame);
    }
    gather_frames_.clear();
  }
}

void TlbMmu::FreeFrameAfterFlush(PhysicalMemory& memory, FrameIndex frame) {
  if (enabled_ && gather_depth_ > 0) {
    gather_frames_.emplace_back(&memory, frame);
    return;
  }
  memory.FreeFrame(frame);
}

void TlbMmu::GatherCondemnAddressSpace(AsId as) {
  if (!enabled_ || gather_depth_ == 0) {
    return;  // nothing to defer to; the eventual DestroyAddressSpace flushes
  }
  gather_as_mask_ |= uint64_t{1} << AsGenIndex(as);
  gather_pending_ = true;
}

Result<FrameIndex> TlbMmu::Miss(CpuSlot& cpu, AsId as, Vaddr va, Access access,
                                FrameBodyRef body) {
  Bump(cpu.misses);
  // ---- walk the real tables (the inner MMU provides its own atomicity) ----
  // Read the generations *before* the walk: if a shootdown lands in between,
  // the filled entry is stale on arrival (its recorded generation mismatches)
  // rather than stale after the shootdown completed.  Both dimensions are read
  // up front because the walk itself tells us which kind of entry to fill.
  const uint64_t vpn = va >> page_shift_;
  const uint64_t gen = GenSum(as, vpn);
  if (huge_shift_ != 0) {
    const uint64_t hvpn = vpn >> huge_shift_;
    const uint64_t hgen = GenSumHuge(as, hvpn);
    MmuTranslateInfo info;
    Result<FrameIndex> frame = inner_.TranslateAndAccessInfo(as, va, access, body, &info);
    if (frame.ok()) {
      if (info.huge) {
        Fill(cpu, as, hvpn, info.huge_frame, access, hgen, /*huge=*/true);
      } else {
        Fill(cpu, as, vpn, *frame, access, gen, /*huge=*/false);
      }
    }
    return frame;
  }
  Result<FrameIndex> frame = inner_.TranslateAndAccess(as, va, access, body);
  if (frame.ok()) {
    Fill(cpu, as, vpn, *frame, access, gen, /*huge=*/false);
  }
  return frame;
}

Result<FrameIndex> TlbMmu::Bypass(AsId as, Vaddr va, Access access, FrameBodyRef body) {
  return inner_.TranslateAndAccess(as, va, access, body);
}

Result<FrameIndex> TlbMmu::TranslateAndAccess(AsId as, Vaddr va, Access access,
                                              FrameBodyRef body) {
  return AccessFast(as, va, access, body);
}

Result<FrameIndex> TlbMmu::Translate(AsId as, Vaddr va, Access access) {
  return AccessFast(as, va, access, NoBody{});
}

Result<AsId> TlbMmu::CreateAddressSpace() { return inner_.CreateAddressSpace(); }

Status TlbMmu::DestroyAddressSpace(AsId as) {
  Status s = inner_.DestroyAddressSpace(as);
  if (s == Status::kOk && enabled_) {
    Shootdown(as, 0, /*single_page=*/false);
  }
  return s;
}

// The mutation wrappers peek at the current entry to decide whether a flush is
// required.  The lookup+mutate pair is not atomic, which is fine: the memory
// managers serialize mutations of any given page under their own lock, and
// concurrent *translations* are exactly what the generation check handles.
//
// A same-frame, non-downgrading re-map deliberately does not shoot down, so a
// cached write entry (dirty_ok) can stay live across it.  That is sound only
// because Mmu::Map preserves the referenced/dirty bits on a same-frame re-map:
// if the re-map wiped the dirty bit, later write hits would never re-set it
// and an actively-written page would look clean to eviction.
Status TlbMmu::Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  bool invalidate = false;
  bool was_huge = false;
  if (enabled_) {
    Result<MmuEntry> old = inner_.Lookup(as, va);
    // A replacing map must flush when it changes the frame (e.g. a COW private
    // copy superseding the ancestor's page) or removes a right; a fresh fill
    // or a pure widening must not.  A map inside a huge span demotes it, and
    // the wide cached entry must ALWAYS die with the span — after the split,
    // Lookup no longer reports huge, so no later base-granular mutation would
    // ever reach the huge slot again and the wide entry would be stale forever.
    was_huge = old.ok() && old->huge;
    invalidate =
        (old.ok() && (old->frame != frame || !ProtAllows(prot, old->prot))) || was_huge;
  }
  Status s = inner_.Map(as, va, frame, prot);
  if (s == Status::kOk && invalidate) {
    Shootdown(as, va >> page_shift_, /*single_page=*/true, /*huge_also=*/was_huge);
  }
  return s;
}

Status TlbMmu::Unmap(AsId as, Vaddr va) {
  bool mapped = false;
  bool was_huge = false;
  if (enabled_) {
    Result<MmuEntry> old = inner_.Lookup(as, va);
    mapped = old.ok();
    was_huge = old.ok() && old->huge;
  }
  Status s = inner_.Unmap(as, va);
  if (s == Status::kOk && mapped) {
    Shootdown(as, va >> page_shift_, /*single_page=*/true, /*huge_also=*/was_huge);
  }
  return s;
}

Result<MmuEntry> TlbMmu::UnmapCollect(AsId as, Vaddr va) {
  // The inner MMU does the atomic remove-and-read; this wrapper only owes the
  // invalidation, exactly as in Unmap (the removed entry doubles as the
  // was-mapped test, and its huge flag tells us the unmap split a span, so
  // the wide cached entry dies with the base one).
  Result<MmuEntry> removed = inner_.UnmapCollect(as, va);
  if (enabled_ && removed.ok()) {
    Shootdown(as, va >> page_shift_, /*single_page=*/true, /*huge_also=*/removed->huge);
  }
  return removed;
}

Status TlbMmu::Protect(AsId as, Vaddr va, Prot prot) {
  bool downgrade = false;
  bool was_huge = false;
  if (enabled_) {
    Result<MmuEntry> old = inner_.Lookup(as, va);
    downgrade = old.ok() && !ProtAllows(prot, old->prot);
    // Even an upgrade demotes a covering span, and the wide entry must die
    // with the span (see Map): later base-granular mutations can no longer
    // reach the huge slot once Lookup stops reporting huge.
    was_huge = old.ok() && old->huge;
  }
  Status s = inner_.Protect(as, va, prot);
  if (s == Status::kOk && (downgrade || was_huge)) {
    Shootdown(as, va >> page_shift_, /*single_page=*/true, /*huge_also=*/was_huge);
  }
  return s;
}

// The range forms mutate the inner tables page by page (the inner MMU has no
// range primitive) but pay for the invalidation once: the mapped sub-run is
// covered by a single ShootdownRange after all inner mutations are in place.
// Publishing after the whole batch is safe for the same reason the per-page
// wrappers' lookup+mutate pair is: mutations of these pages are serialized by
// the calling manager, and a translation racing the batch either misses in the
// inner walk (already unmapped) or is retired by the range shootdown.
Status TlbMmu::UnmapRange(AsId as, Vaddr va, size_t count) {
  if (!enabled_) {
    return inner_.UnmapRange(as, va, count);
  }
  const size_t page = size_t{1} << page_shift_;
  uint64_t first = 0;
  uint64_t last = 0;
  bool any = false;
  uint64_t hfirst = 0;
  uint64_t hlast = 0;
  bool any_huge = false;
  for (size_t i = 0; i < count; ++i) {
    const Vaddr v = va + i * page;
    Result<MmuEntry> old = inner_.Lookup(as, v);
    Status s = inner_.Unmap(as, v);
    if (s != Status::kOk) {
      FinishRangeShootdown(as, any, first, last, any_huge, hfirst, hlast);
      return s;
    }
    if (old.ok()) {
      const uint64_t vpn = v >> page_shift_;
      if (!any) {
        first = vpn;
        any = true;
      }
      last = vpn;
      if (old->huge) {
        // The unmap split a span; its wide cached entry must die with it.
        const uint64_t hvpn = vpn >> huge_shift_;
        if (!any_huge) {
          hfirst = hvpn;
          any_huge = true;
        }
        hlast = hvpn;
      }
    }
  }
  FinishRangeShootdown(as, any, first, last, any_huge, hfirst, hlast);
  return Status::kOk;
}

Status TlbMmu::UnmapRangeCollect(AsId as, Vaddr va, size_t count, uint64_t* dirty_mask) {
  if (!enabled_) {
    return inner_.UnmapRangeCollect(as, va, count, dirty_mask);
  }
  const size_t page = size_t{1} << page_shift_;
  uint64_t mask = 0;
  uint64_t first = 0;
  uint64_t last = 0;
  bool any = false;
  uint64_t hfirst = 0;
  uint64_t hlast = 0;
  bool any_huge = false;
  for (size_t i = 0; i < count && i < 64; ++i) {
    const Vaddr v = va + i * page;
    // Per-page atomic remove-and-read; the run pays one ranged invalidation.
    Result<MmuEntry> removed = inner_.UnmapCollect(as, v);
    if (!removed.ok()) {
      continue;  // range contract: holes are skipped
    }
    if (removed->dirty) {
      mask |= uint64_t{1} << i;
    }
    const uint64_t vpn = v >> page_shift_;
    if (!any) {
      first = vpn;
      any = true;
    }
    last = vpn;
    if (removed->huge) {
      // The collect split a span (the first covered page demotes it; the rest
      // of the run then removes plain base PTEs): kill the wide entry too.
      const uint64_t hvpn = vpn >> huge_shift_;
      if (!any_huge) {
        hfirst = hvpn;
        any_huge = true;
      }
      hlast = hvpn;
    }
  }
  *dirty_mask = mask;
  FinishRangeShootdown(as, any, first, last, any_huge, hfirst, hlast);
  return Status::kOk;
}

Status TlbMmu::ProtectRange(AsId as, Vaddr va, size_t count, Prot prot) {
  if (!enabled_) {
    return inner_.ProtectRange(as, va, count, prot);
  }
  const size_t page = size_t{1} << page_shift_;
  uint64_t first = 0;
  uint64_t last = 0;
  bool any = false;
  uint64_t hfirst = 0;
  uint64_t hlast = 0;
  bool any_huge = false;
  for (size_t i = 0; i < count; ++i) {
    const Vaddr v = va + i * page;
    Result<MmuEntry> old = inner_.Lookup(as, v);
    if (!old.ok()) {
      continue;  // range contract: holes are skipped
    }
    const bool downgrade = !ProtAllows(prot, old->prot);
    Status s = inner_.Protect(as, v, prot);
    if (s != Status::kOk && s != Status::kNotFound) {
      FinishRangeShootdown(as, any, first, last, any_huge, hfirst, hlast);
      return s;
    }
    if (s == Status::kOk) {
      const uint64_t vpn = v >> page_shift_;
      if (downgrade) {
        if (!any) {
          first = vpn;
          any = true;
        }
        last = vpn;
      }
      if (old->huge) {
        // The protect demoted a covering span (even on an upgrade); the wide
        // entry must die with it, under the same single fence as the run.
        const uint64_t hvpn = vpn >> huge_shift_;
        if (!any_huge) {
          hfirst = hvpn;
          any_huge = true;
        }
        hlast = hvpn;
      }
    }
  }
  FinishRangeShootdown(as, any, first, last, any_huge, hfirst, hlast);
  return Status::kOk;
}

Status TlbMmu::MapHuge(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  if (!enabled_ || huge_shift_ == 0) {
    return inner_.MapHuge(as, va, frame, prot);
  }
  // The wide map absorbs every base translation in the span.  A cached base
  // entry stays correct only if the new wide translation resolves its page to
  // the same frame with no right removed; collect the sub-run of pages where
  // that does not hold, plus whether an existing differing span is replaced.
  const size_t page = size_t{1} << page_shift_;
  const size_t ratio = size_t{1} << huge_shift_;
  uint64_t first = 0;
  uint64_t last = 0;
  bool any = false;
  bool huge_stale = false;
  for (size_t i = 0; i < ratio; ++i) {
    Result<MmuEntry> old = inner_.Lookup(as, va + i * page);
    if (!old.ok()) {
      continue;
    }
    if (old->frame != frame + i || !ProtAllows(prot, old->prot)) {
      const uint64_t vpn = (va + i * page) >> page_shift_;
      if (!any) {
        first = vpn;
        any = true;
      }
      last = vpn;
      if (old->huge) {
        huge_stale = true;
      }
    }
  }
  Status s = inner_.MapHuge(as, va, frame, prot);
  if (s != Status::kOk) {
    return s;
  }
  const uint64_t hvpn = (va >> page_shift_) >> huge_shift_;
  FinishRangeShootdown(as, any, first, last, huge_stale, hvpn, hvpn);
  return s;
}

Status TlbMmu::DemoteHuge(AsId as, Vaddr va) {
  Status s = inner_.DemoteHuge(as, va);
  if (s == Status::kOk && enabled_ && huge_shift_ != 0) {
    // The split base PTEs translate identically, so no base slot moves — but
    // the wide cached entry must be retired now: once the span is gone, no
    // later base-granular mutation would ever bump the huge slot again.
    const uint64_t hvpn = (va >> page_shift_) >> huge_shift_;
    if (!GatherCondemned(as)) {
      hgen_[GenIndex(as, hvpn)].fetch_add(1, std::memory_order_seq_cst);
    }
    shootdown_pages_.fetch_add(1, std::memory_order_relaxed);
    if (gather_depth_ > 0) {
      gather_pending_ = true;
    } else {
      FenceAndDrain();
    }
  }
  return s;
}

Result<MmuEntry> TlbMmu::Lookup(AsId as, Vaddr va) const { return inner_.Lookup(as, va); }

// Clearing the referenced bit does not flush: real TLBs keep accessed bits in
// the page tables, set on the walk, so clock hands racing TLB hits is faithful
// hardware behaviour (eviction then unmaps, which *does* shoot down, and the
// refault re-sets the bit).
Result<bool> TlbMmu::TestAndClearReferenced(AsId as, Vaddr va) {
  return inner_.TestAndClearReferenced(as, va);
}

void TlbMmu::ResetStats() {
  inner_.ResetStats();
  ResetTlbStats();
}

TlbMmu::TlbStats TlbMmu::tlb_stats() const {
  TlbStats out;
  for (size_t i = 0; i < kMaxCpus; ++i) {
    const CpuSlot& cpu = cpus_[i];
    // The hit path only advances the epoch, so hits are derived: lookups
    // (epoch/2, flooring out an in-flight access) minus the explicitly counted
    // misses, relative to the last reset.  Clamp against transient skew while
    // other threads are mid-access.
    const uint64_t lookups = cpu.epoch.load(std::memory_order_relaxed) / 2;
    const uint64_t base = cpu.lookup_base.load(std::memory_order_relaxed);
    const uint64_t misses = cpu.misses.load(std::memory_order_relaxed);
    const uint64_t since_reset = lookups > base ? lookups - base : 0;
    out.hits += since_reset > misses ? since_reset - misses : 0;
    out.huge_hits += cpu.huge_hits.load(std::memory_order_relaxed);
    out.misses += misses;
    out.fills += cpu.fills.load(std::memory_order_relaxed);
  }
  out.shootdowns = shootdowns_.load(std::memory_order_relaxed);
  out.shootdown_pages = shootdown_pages_.load(std::memory_order_relaxed);
  out.shootdown_ranges = shootdown_ranges_.load(std::memory_order_relaxed);
  return out;
}

void TlbMmu::ResetTlbStats() {
  for (size_t i = 0; i < kMaxCpus; ++i) {
    cpus_[i].lookup_base.store(cpus_[i].epoch.load(std::memory_order_relaxed) / 2,
                               std::memory_order_relaxed);
    cpus_[i].misses.store(0, std::memory_order_relaxed);
    cpus_[i].fills.store(0, std::memory_order_relaxed);
    cpus_[i].huge_hits.store(0, std::memory_order_relaxed);
  }
  shootdowns_.store(0, std::memory_order_relaxed);
  shootdown_pages_.store(0, std::memory_order_relaxed);
  shootdown_ranges_.store(0, std::memory_order_relaxed);
}

}  // namespace gvm
