// SoftMmu: a two-level page-table MMU model (PMMU / i386 style).
//
// The top level is a sparse map from "directory" index to a leaf table of PTEs, so
// that an address space with a handful of mappings spread across a huge virtual
// range costs only a few leaf tables — the size-independence property of section
// 4.1 holds at the hardware-model level too.
//
// Internal state is sharded by address space: concurrent CPUs working in
// different address spaces (the common SMP case — one space per context) take
// different locks and stop serializing on the table walk.
#ifndef GVM_SRC_HAL_SOFT_MMU_H_
#define GVM_SRC_HAL_SOFT_MMU_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/hal/mmu.h"
#include "src/sync/annotated_mutex.h"

namespace gvm {

class SoftMmu final : public Mmu {
 public:
  // Number of independent lock shards; address spaces hash onto them by id.
  static constexpr size_t kLockShards = 16;

  // `page_size` must be a power of two.  `leaf_bits` is the number of VPN bits
  // resolved by a leaf table (default 10, i.e. 1024 PTEs per leaf).
  // `huge_pages` is the second granule in base pages (power of two); 0 picks
  // the default of 512KB / page_size, and a value <= 1 disables huge pages.
  explicit SoftMmu(size_t page_size, unsigned leaf_bits = 10, size_t huge_pages = 0);

  Result<AsId> CreateAddressSpace() override;
  [[nodiscard]] Status DestroyAddressSpace(AsId as) override;
  [[nodiscard]] Status Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) override;
  [[nodiscard]] Status Unmap(AsId as, Vaddr va) override;
  [[nodiscard]] Result<MmuEntry> UnmapCollect(AsId as, Vaddr va) override;
  [[nodiscard]] Status Protect(AsId as, Vaddr va, Prot prot) override;
  Result<FrameIndex> Translate(AsId as, Vaddr va, Access access) override;
  Result<FrameIndex> TranslateAndAccess(AsId as, Vaddr va, Access access,
                                        FrameBodyRef body) override;
  Result<MmuEntry> Lookup(AsId as, Vaddr va) const override;
  Result<bool> TestAndClearReferenced(AsId as, Vaddr va) override;

  size_t huge_page_size() const override {
    return huge_ratio_ > 1 ? page_size_ * huge_ratio_ : 0;
  }
  [[nodiscard]] Status MapHuge(AsId as, Vaddr va, FrameIndex frame, Prot prot) override;
  [[nodiscard]] Status DemoteHuge(AsId as, Vaddr va) override;
  Result<FrameIndex> TranslateAndAccessInfo(AsId as, Vaddr va, Access access, FrameBodyRef body,
                                            MmuTranslateInfo* info) override;

  size_t page_size() const override { return page_size_; }
  // Aggregates the per-shard counters; a consistent total only at quiescence.
  Stats stats() const override;
  void ResetStats() override;
  const char* name() const override { return "SoftMmu(two-level)"; }

  // Number of leaf tables currently allocated in `as` (for size-independence tests).
  size_t LeafTableCount(AsId as) const;

 private:
  struct Pte {
    FrameIndex frame = kInvalidFrame;
    Prot prot = Prot::kNone;
    bool valid = false;
    bool referenced = false;
    bool dirty = false;
  };
  struct LeafTable {
    std::vector<Pte> entries;
    size_t valid_count = 0;
  };
  // One huge translation: a huge-aligned virtual span backed by the contiguous
  // frame run [frame, frame + huge_ratio_).  One shared referenced/dirty bit
  // for the whole span — a write through the wide entry can land anywhere in
  // it, so per-base-page bits would under-report; demotion fans the shared
  // bits out to every base PTE (the Mmu huge-granule contract).
  struct HugePte {
    FrameIndex frame = kInvalidFrame;
    Prot prot = Prot::kNone;
    bool referenced = false;
    bool dirty = false;
  };
  struct AddressSpace {
    std::unordered_map<uint64_t, std::unique_ptr<LeafTable>> directory;
    // Keyed by huge virtual page number (vpn >> huge_shift_).
    std::unordered_map<uint64_t, HugePte> huge;
  };
  // Hardware walks PTEs atomically with respect to kernel updates; the software
  // model gets the same property from the shard lock.  SoftMmu never calls out
  // while holding one, so the kernel-lock -> MMU-lock order is acyclic, and no
  // operation ever holds two shards at once (all shards share rank kMmuShard,
  // so the lock-rank validator aborts if one ever does).  Read-only operations
  // (Lookup, stats, LeafTableCount) take the shard shared.
  struct alignas(64) Shard {
    mutable SharedMutex mu{Rank::kMmuShard, "SoftMmu::Shard::mu"};
    std::unordered_map<AsId, AddressSpace> spaces GVM_GUARDED_BY(mu);
    Stats stats GVM_GUARDED_BY(mu);
  };

  uint64_t Vpn(Vaddr va) const { return va >> page_shift_; }
  uint64_t DirIndex(Vaddr va) const { return Vpn(va) >> leaf_bits_; }
  uint64_t LeafIndex(Vaddr va) const { return Vpn(va) & ((1ull << leaf_bits_) - 1); }
  uint64_t Hvpn(Vaddr va) const { return Vpn(va) >> huge_shift_; }

  Shard& ShardFor(AsId as) const { return shards_[as % kLockShards]; }
  static AddressSpace* FindSpace(Shard& shard, AsId as) GVM_REQUIRES_SHARED(shard.mu);
  Pte* FindPte(Shard& shard, AsId as, Vaddr va) const GVM_REQUIRES_SHARED(shard.mu);
  Result<FrameIndex> TranslateLocked(Shard& shard, AsId as, Vaddr va, Access access,
                                     MmuTranslateInfo* info) GVM_REQUIRES(shard.mu);
  // Installs one base Pte (creating the leaf table if needed) without touching
  // counters; shared by the demotion fan-out.
  void InstallPteLocked(Shard& shard, AddressSpace* space, Vaddr va,
                        const Pte& pte) GVM_REQUIRES(shard.mu);
  // Splits the huge span `hvpn` of `space` into base PTEs.  Returns true if a
  // span existed (auto-demote sites use it to widen UnmapCollect's report).
  bool SplitHugeLocked(Shard& shard, AddressSpace* space, uint64_t hvpn) GVM_REQUIRES(shard.mu);

  const size_t page_size_;
  const unsigned page_shift_;
  const unsigned leaf_bits_;
  const size_t huge_ratio_;   // base pages per huge page; <= 1 means disabled
  const unsigned huge_shift_;
  std::atomic<AsId> next_as_{0};
  mutable std::array<Shard, kLockShards> shards_;
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_SOFT_MMU_H_
