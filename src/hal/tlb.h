// TlbMmu: a per-CPU software TLB layered in front of any Mmu implementation.
//
// Real MMUs cache translations per CPU and require the kernel to run a shootdown
// protocol before an unmap or protection downgrade may be considered complete
// (the paper's machine-dependent layer hides exactly this; see also the
// break-before-make discipline of relaxed virtual-memory models).  This wrapper
// models that hardware faithfully in software:
//
//   * Each accessing thread ("CPU") owns a small set-associative cache of
//     (AsId, vpn) -> (frame, protection) entries.  The hit path takes no lock:
//     it publishes an odd per-CPU epoch, validates the entry against a
//     generation counter, runs the access body against the cached frame, then
//     publishes an even epoch.
//   * Every unmap, protection downgrade, replacing map and address-space
//     teardown bumps a generation (invalidating the cached entries hashing to
//     it at once) and then waits for all CPUs currently inside the critical
//     window to leave it.  When the mutating call returns, no stale
//     translation can be used again and no in-flight access is still touching
//     the old frame — which is what lets the PVM recycle the frame.
//     Generations come in two dimensions, both hashed: per (AsId, vpn) — so a
//     single-page shootdown (the software invlpg) only invalidates entries
//     sharing its hash slot — and per AsId, so address-space teardown (the
//     full flush of one context) leaves other address spaces' entries alone.
//     An entry caches the sum of both counters at fill time and is valid
//     while the sum is unchanged.
//   * Protection upgrades and fresh fills do NOT flush: a cached entry only
//     ever under-approximates the real rights, so widening them cannot make it
//     unsafe.
//   * The epoch/generation handshake needs a store-load barrier between the
//     reader's epoch publication and its generation check.  Paying a full
//     fence per access would make hits nearly as expensive as the locked walk
//     they replace, so the barrier is asymmetric, exactly like a hardware
//     shootdown IPI (and like Linux's sys_membarrier / mmu_gather): readers
//     execute plain stores with only a compiler barrier, and the shootdown
//     side forces a barrier onto every running thread — via
//     membarrier(PRIVATE_EXPEDITED) on Linux, via nothing at all when the
//     caller explicitly asserts a uniprocessor host (a context switch is a
//     full barrier; never auto-detected, because the online-CPU count is a
//     snapshot that cpusets or hotplug can grow later), and by falling back
//     to a per-access seq_cst fence where neither applies.
//
// Entries are written exclusively by their owning CPU; cross-CPU invalidation
// is purely logical (a generation mismatch), so the hit path is data-race-free
// without atomics on the entry fields themselves.
#ifndef GVM_SRC_HAL_TLB_H_
#define GVM_SRC_HAL_TLB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/hal/mmu.h"

namespace gvm {

namespace tlb_internal {
// Per-thread binding of the most recently used TlbMmu to its CPU slot; keeps
// the per-access slot lookup to two compares.  Defined in tlb.cc.
struct ThreadTlbRef {
  const void* mmu = nullptr;
  uint64_t id = 0;
  void* slot = nullptr;
};
extern thread_local ThreadTlbRef t_last;
// Test hook: drops all of this thread's cached (instance, slot) bindings,
// simulating the binding-list size cap; the next access through any TlbMmu
// must re-find the thread's already-claimed slot rather than claim a new one.
void ForgetThreadBindings();
}  // namespace tlb_internal

class TlbMmu final : public Mmu {
 public:
  struct TlbStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fills = 0;
    uint64_t shootdowns = 0;       // invalidation events (unmap/downgrade/remap/teardown)
    uint64_t shootdown_pages = 0;  // how many of those were single-page operations
  };

  static constexpr size_t kSets = 64;
  static constexpr size_t kWays = 4;
  static constexpr size_t kMaxCpus = 64;    // distinct accessing threads; extras bypass
  static constexpr size_t kGenSlots = 1024; // page generations, hashed by (AsId, vpn)
  static constexpr size_t kAsGenSlots = 64; // address-space generations, hashed by AsId

  // How the store-load barrier between a reader's epoch publication and its
  // generation check is realised (see file comment).
  enum class FenceMode {
    kAuto,         // resolve at construction: kMembarrier when available, else kFenced
    kFenced,       // reader pays a seq_cst fence on every access (portable)
    kMembarrier,   // readers fence-free; shootdown runs membarrier(PRIVATE_EXPEDITED)
    kUniprocessor, // readers fence-free; caller asserts a single-CPU host for the
                   // process lifetime (never auto-selected: the online-CPU count
                   // is a snapshot that cpusets or hotplug can grow later)
  };

  // When `enabled` is false every call delegates straight to `inner` (used by
  // benchmarks to measure the uncached baseline with the same binary).
  explicit TlbMmu(Mmu& inner, bool enabled = true, FenceMode fence = FenceMode::kAuto);
  ~TlbMmu() override;

  Result<AsId> CreateAddressSpace() override;
  Status DestroyAddressSpace(AsId as) override;
  Status Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) override;
  Status Unmap(AsId as, Vaddr va) override;
  Status Protect(AsId as, Vaddr va, Prot prot) override;
  Result<FrameIndex> Translate(AsId as, Vaddr va, Access access) override;
  Result<FrameIndex> TranslateAndAccess(AsId as, Vaddr va, Access access,
                                        FrameBodyRef body) override;
  Result<MmuEntry> Lookup(AsId as, Vaddr va) const override;
  Result<bool> TestAndClearReferenced(AsId as, Vaddr va) override;

  size_t page_size() const override { return inner_.page_size(); }
  Stats stats() const override { return inner_.stats(); }
  void ResetStats() override;
  const char* name() const override { return name_.c_str(); }

  bool enabled() const { return enabled_; }
  Mmu& inner() { return inner_; }
  // The fence mode actually in effect (kAuto resolved at construction).
  FenceMode fence_mode() const { return fence_; }

  // Aggregated snapshot across all CPUs (counters are owner-written, so the
  // snapshot is approximate while threads are running and exact at quiescence).
  TlbStats tlb_stats() const;
  void ResetTlbStats();

  // Set index for (as, vpn); exposed so tests can construct set conflicts.
  static size_t SetIndex(AsId as, uint64_t vpn) {
    return static_cast<size_t>(vpn ^ (static_cast<uint64_t>(as) * 0x9e3779b9u)) & (kSets - 1);
  }
  // Generation slot indices for (as, vpn) / as; exposed for the same reason.
  static size_t GenIndex(AsId as, uint64_t vpn) {
    return static_cast<size_t>(vpn ^ (static_cast<uint64_t>(as) * 0x9e3779b9u)) &
           (kGenSlots - 1);
  }
  static size_t AsGenIndex(AsId as) { return static_cast<size_t>(as) & (kAsGenSlots - 1); }

  // The simulated CPU's per-access entry point: translate + run `body(frame)`
  // under shootdown protection, as one unit.  A template so the whole hit path
  // (probe, validate, body) inlines into the caller; misses, faults, bypass
  // and the disabled configuration leave through the out-of-line slow paths.
  // `body` is any callable void(FrameIndex); pass NoBody{} for translate-only.
  struct NoBody {
    void operator()(FrameIndex) const {}
  };
  template <typename Body>
  Result<FrameIndex> AccessFast(AsId as, Vaddr va, Access access, const Body& body) {
    if (enabled_) {
      CpuSlot* cpu = ThisCpu();
      if (cpu != nullptr) {
        const uint64_t vpn = va >> page_shift_;
        // Enter the critical window (odd epoch) *before* validating the
        // generation: either a shootdown sees our odd epoch and waits for the
        // access body to finish, or we see its generation bump and miss.  The
        // store-load barrier that makes this a total order is asymmetric (see
        // the file comment): the signal fence only pins the compiler, and the
        // hardware barrier is supplied by the shootdown side — except in
        // kFenced mode, where we pay it here.
        cpu->epoch.store(++cpu->epoch_local, std::memory_order_relaxed);
        std::atomic_signal_fence(std::memory_order_seq_cst);
        if (reader_fences_) {
          std::atomic_thread_fence(std::memory_order_seq_cst);
        }
        const Entry* e = Probe(*cpu, as, vpn);
        if (e != nullptr && e->gen == GenSum(as, vpn) &&
            ProtAllows(e->prot, AccessProt(access)) &&
            (access != Access::kWrite || e->dirty_ok)) {
          const FrameIndex frame = e->frame;
          body(frame);
          // Release: the frame contents written by `body` happen-before
          // anything a shootdown-then-recycle does with the frame.
          cpu->epoch.store(++cpu->epoch_local, std::memory_order_release);
          return frame;
        }
        cpu->epoch.store(++cpu->epoch_local, std::memory_order_release);
        return Miss(*cpu, as, va, access, FrameBodyRef(body));
      }
    }
    return Bypass(as, va, access, FrameBodyRef(body));
  }

 private:
  struct Entry {
    uint64_t vpn = 0;
    uint64_t gen = 0;           // generation at fill time; mismatch == invalid
    AsId as = kInvalidAsId;
    FrameIndex frame = kInvalidFrame;
    Prot prot = Prot::kNone;    // rights proven by successful inner translations
    bool dirty_ok = false;      // inner PTE dirty bit known set: write hits allowed
    bool valid = false;
  };

  struct alignas(64) CpuSlot {
    // Odd while the owning thread is inside probe+access; even when quiescent.
    // Advances by two per lookup, so epoch/2 is also the lookup count.
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> claimed{false};
    // Process-unique id of the claiming thread (0 = unclaimed; ids are never
    // reused).  Ownership lives in the slot, not only in the thread-local
    // binding list, so a dropped binding re-finds its slot instead of leaking
    // it by claiming a fresh one.
    std::atomic<uint64_t> owner{0};
    uint64_t epoch_local = 0;  // owner-thread copy, avoids an atomic load to bump
    // Owner-written cold-path counters (plain stores; readers aggregate
    // relaxed loads).  Hits are derived: epoch/2 - lookup_base - misses.
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> fills{0};
    std::atomic<uint64_t> lookup_base{0};  // lookups at the last ResetTlbStats
    Entry entries[kSets][kWays];
    uint8_t next_way[kSets] = {};
  };

  // Finds (or claims) this thread's slot; nullptr when all slots are taken, in
  // which case the thread simply bypasses the TLB.
  CpuSlot* ThisCpu() {
    const tlb_internal::ThreadTlbRef& last = tlb_internal::t_last;
    if (last.mmu == this && last.id == instance_id_) {
      return static_cast<CpuSlot*>(last.slot);
    }
    return ThisCpuSlow();
  }
  CpuSlot* ThisCpuSlow();
  // An entry is valid while neither its page generation nor its address
  // space's generation has moved.  Both counters are monotonic, so caching
  // their sum at fill time and comparing sums is equivalent to comparing both
  // — and keeps Entry::gen a single word.
  uint64_t GenSum(AsId as, uint64_t vpn) const {
    // The arrays live inline in the object (not behind a pointer) so each load
    // is one this-relative access, not a base-pointer chase.
    return as_gen_[AsGenIndex(as)].load(std::memory_order_seq_cst) +
           gen_[GenIndex(as, vpn)].load(std::memory_order_seq_cst);
  }
  const Entry* Probe(const CpuSlot& cpu, AsId as, uint64_t vpn) const {
    const Entry* set = cpu.entries[SetIndex(as, vpn)];
    for (size_t w = 0; w < kWays; ++w) {
      if (set[w].valid && set[w].as == as && set[w].vpn == vpn) {
        return &set[w];
      }
    }
    return nullptr;
  }
  Entry* ProbeMutable(CpuSlot& cpu, AsId as, uint64_t vpn) {
    return const_cast<Entry*>(Probe(cpu, as, vpn));
  }
  void Fill(CpuSlot& cpu, AsId as, uint64_t vpn, FrameIndex frame, Access access, uint64_t gen);
  // Out-of-line slow paths for AccessFast.
  Result<FrameIndex> Miss(CpuSlot& cpu, AsId as, Vaddr va, Access access, FrameBodyRef body);
  Result<FrameIndex> Bypass(AsId as, Vaddr va, Access access, FrameBodyRef body);
  // Bumps the generation(s) covering (as, vpn) — all slots when single_page is
  // false — and waits for every CPU currently inside the critical window to
  // exit it; on return no stale translation can be used.
  void Shootdown(AsId as, uint64_t vpn, bool single_page);
  static void Bump(std::atomic<uint64_t>& counter) {
    counter.store(counter.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  Mmu& inner_;
  const bool enabled_;
  const unsigned page_shift_;
  const uint64_t instance_id_;  // globally unique; defeats address-reuse aliasing
  const FenceMode fence_;       // resolved, never kAuto
  const bool reader_fences_;    // fence_ == kFenced, tested on the hit path
  const std::string name_;
  std::unique_ptr<CpuSlot[]> cpus_;
  mutable std::atomic<uint64_t> gen_[kGenSlots] = {};        // page generations
  mutable std::atomic<uint64_t> as_gen_[kAsGenSlots] = {};   // address-space generations
  // Slots are claimed densely from index 0 and never released, so the scan in
  // Shootdown only needs to cover [0, claimed_high_).
  std::atomic<size_t> claimed_high_{0};
  std::atomic<uint64_t> shootdowns_{0};
  std::atomic<uint64_t> shootdown_pages_{0};
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_TLB_H_
