// TlbMmu: a per-CPU software TLB layered in front of any Mmu implementation.
//
// Real MMUs cache translations per CPU and require the kernel to run a shootdown
// protocol before an unmap or protection downgrade may be considered complete
// (the paper's machine-dependent layer hides exactly this; see also the
// break-before-make discipline of relaxed virtual-memory models).  This wrapper
// models that hardware faithfully in software:
//
//   * Each accessing thread ("CPU") owns a small set-associative cache of
//     (AsId, vpn) -> (frame, protection) entries.  The hit path takes no lock:
//     it publishes an odd per-CPU epoch, validates the entry against a
//     generation counter, runs the access body against the cached frame, then
//     publishes an even epoch.
//   * Every unmap, protection downgrade, replacing map and address-space
//     teardown bumps a generation (invalidating the cached entries hashing to
//     it at once) and then waits for all CPUs currently inside the critical
//     window to leave it.  When the mutating call returns, no stale
//     translation can be used again and no in-flight access is still touching
//     the old frame — which is what lets the PVM recycle the frame.
//     Generations come in two dimensions, both hashed: per (AsId, vpn) — so a
//     single-page shootdown (the software invlpg) only invalidates entries
//     sharing its hash slot — and per AsId, so address-space teardown (the
//     full flush of one context) leaves other address spaces' entries alone.
//     An entry caches the sum of both counters at fill time and is valid
//     while the sum is unchanged.
//   * Protection upgrades and fresh fills do NOT flush: a cached entry only
//     ever under-approximates the real rights, so widening them cannot make it
//     unsafe.
//   * The epoch/generation handshake needs a store-load barrier between the
//     reader's epoch publication and its generation check.  Paying a full
//     fence per access would make hits nearly as expensive as the locked walk
//     they replace, so the barrier is asymmetric, exactly like a hardware
//     shootdown IPI (and like Linux's sys_membarrier / mmu_gather): readers
//     execute plain stores with only a compiler barrier, and the shootdown
//     side forces a barrier onto every running thread — via
//     membarrier(PRIVATE_EXPEDITED) on Linux, via nothing at all when the
//     caller explicitly asserts a uniprocessor host (a context switch is a
//     full barrier; never auto-detected, because the online-CPU count is a
//     snapshot that cpusets or hotplug can grow later), and by falling back
//     to a per-access seq_cst fence where neither applies.
//
// Entries are written exclusively by their owning CPU; cross-CPU invalidation
// is purely logical (a generation mismatch), so the hit path is data-race-free
// without atomics on the entry fields themselves.
#ifndef GVM_SRC_HAL_TLB_H_
#define GVM_SRC_HAL_TLB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/hal/mmu.h"

namespace gvm {

class PhysicalMemory;

namespace tlb_internal {
// Per-thread binding of the most recently used TlbMmu to its CPU slot; keeps
// the per-access slot lookup to two compares.  Defined in tlb.cc.
struct ThreadTlbRef {
  const void* mmu = nullptr;
  uint64_t id = 0;
  void* slot = nullptr;
};
extern thread_local ThreadTlbRef t_last;
// Test hook: drops all of this thread's cached (instance, slot) bindings,
// simulating the binding-list size cap; the next access through any TlbMmu
// must re-find the thread's already-claimed slot rather than claim a new one.
void ForgetThreadBindings();
}  // namespace tlb_internal

class TlbMmu final : public Mmu {
 public:
  struct TlbStats {
    uint64_t hits = 0;              // includes huge_hits (a breakdown, not a disjoint count)
    uint64_t huge_hits = 0;         // hits served by a wide (huge-granule) entry
    uint64_t misses = 0;
    uint64_t fills = 0;
    uint64_t shootdowns = 0;        // fence+drain events actually paid (the "IPIs")
    uint64_t shootdown_pages = 0;   // pages invalidated by page-granular shootdowns
    uint64_t shootdown_ranges = 0;  // multi-page runs batched into one shootdown
  };

  static constexpr size_t kSets = 64;
  static constexpr size_t kWays = 4;
  static constexpr size_t kMaxCpus = 64;    // distinct accessing threads; extras bypass
  static constexpr size_t kGenSlots = 1024; // page generations, hashed by (AsId, vpn)
  static constexpr size_t kAsGenSlots = 64; // address-space generations, hashed by AsId

  // How the store-load barrier between a reader's epoch publication and its
  // generation check is realised (see file comment).
  enum class FenceMode {
    kAuto,         // resolve at construction: kMembarrier when available, else kFenced
    kFenced,       // reader pays a seq_cst fence on every access (portable)
    kMembarrier,   // readers fence-free; shootdown runs membarrier(PRIVATE_EXPEDITED)
    kUniprocessor, // readers fence-free; caller asserts a single-CPU host for the
                   // process lifetime (never auto-selected: the online-CPU count
                   // is a snapshot that cpusets or hotplug can grow later)
  };

  // When `enabled` is false every call delegates straight to `inner` (used by
  // benchmarks to measure the uncached baseline with the same binary).
  explicit TlbMmu(Mmu& inner, bool enabled = true, FenceMode fence = FenceMode::kAuto);
  ~TlbMmu() override;

  Result<AsId> CreateAddressSpace() override;
  [[nodiscard]] Status DestroyAddressSpace(AsId as) override;
  [[nodiscard]] Status Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) override;
  [[nodiscard]] Status Unmap(AsId as, Vaddr va) override;
  [[nodiscard]] Result<MmuEntry> UnmapCollect(AsId as, Vaddr va) override;
  [[nodiscard]] Status Protect(AsId as, Vaddr va, Prot prot) override;
  // Range forms batch the invalidation: the whole contiguous run pays one
  // shootdown (one generation-publish sweep + one fence epoch) instead of one
  // per page — the software analogue of a ranged TLBI.
  [[nodiscard]] Status UnmapRange(AsId as, Vaddr va, size_t count) override;
  [[nodiscard]] Status UnmapRangeCollect(AsId as, Vaddr va, size_t count,
                                         uint64_t* dirty_mask) override;
  [[nodiscard]] Status ProtectRange(AsId as, Vaddr va, size_t count, Prot prot) override;
  // Huge-granule pass-throughs.  The TLB caches wide entries in a second
  // generation dimension (hgen_), so mixed-size shootdowns stay precise: a
  // base-page invalidation bumps its page slot, and widens to the covering
  // huge slot only when the mutation actually split a span (old/removed entry
  // reports huge).  MapHuge over differing base translations invalidates the
  // covered sub-run with one ranged shootdown; DemoteHuge retires the wide
  // entry (the split base PTEs translate identically, but a surviving wide
  // entry would be unreachable by later base-granular bumps).
  size_t huge_page_size() const override { return inner_.huge_page_size(); }
  [[nodiscard]] Status MapHuge(AsId as, Vaddr va, FrameIndex frame, Prot prot) override;
  [[nodiscard]] Status DemoteHuge(AsId as, Vaddr va) override;
  Result<FrameIndex> Translate(AsId as, Vaddr va, Access access) override;
  Result<FrameIndex> TranslateAndAccess(AsId as, Vaddr va, Access access,
                                        FrameBodyRef body) override;
  Result<MmuEntry> Lookup(AsId as, Vaddr va) const override;
  Result<bool> TestAndClearReferenced(AsId as, Vaddr va) override;

  size_t page_size() const override { return inner_.page_size(); }
  Stats stats() const override { return inner_.stats(); }
  void ResetStats() override;
  const char* name() const override { return name_.c_str(); }

  bool enabled() const { return enabled_; }
  Mmu& inner() { return inner_; }
  // The fence mode actually in effect (kAuto resolved at construction).
  FenceMode fence_mode() const { return fence_; }

  // Aggregated snapshot across all CPUs (counters are owner-written, so the
  // snapshot is approximate while threads are running and exact at quiescence).
  TlbStats tlb_stats() const;
  void ResetTlbStats();

  // Invalidates `count` consecutive pages starting at `vpn` with a single
  // shootdown.  For runs up to kGenSlots the per-page generation slots of a
  // contiguous VPN run are provably distinct (GenIndex xors a per-AS constant
  // into the low bits, which preserves the distinctness of `count` consecutive
  // values), so each slot is bumped exactly once; longer runs fall back to one
  // address-space-wide bump, trading precision for a single publish.  Either
  // way exactly one fence+drain epoch is paid (zero if a gather is open).
  void ShootdownRange(AsId as, uint64_t vpn, size_t count);

  // ---- Deferred ("gathered") shootdowns — the software mmu_gather ----
  //
  // A gather scope batches the *fence* half of every shootdown issued inside
  // it into one epoch at commit, while the *publish* half (generation bumps)
  // still happens immediately, so any translation starting after the mutation
  // already misses.  The stale window this opens — a reader that cached the
  // translation before the bump may keep using it until commit — is exactly
  // the window hardware batching (Linux's mmu_gather / arm64 ranged TLBI+DSB)
  // opens, and it is safe under the same two conditions the caller must hold:
  //   1. The whole scope is one logical mutation: nobody may observe its
  //      intermediate states as complete.  Concretely, the serializing lock
  //      may never be dropped while a scope is open — another thread entering
  //      the manager would find gather_depth_ > 0 and have its own shootdowns
  //      silently deferred onto ours.  Close the scope first (or FlushGather
  //      *and* EndGather); a flush alone does not end the deferral window.
  //   2. Frames unmapped inside the scope are not recycled until commit:
  //      route them through FreeFrameAfterFlush, which parks them on the
  //      gather and frees them only after the fence retires every possible
  //      stale access.
  // Gather state is intentionally unsynchronized: shootdowns are already
  // required to be serialized by the caller (the managers' single mutation
  // lock), and gathers only ever nest within one mutator.
  void BeginGather();
  // Closes one nesting level; the outermost close commits (publishes any
  // deferred AS bumps, pays the single fence+drain, then releases parked
  // frames).
  void EndGather();
  // Commits the pending work *now* without closing the scope — required
  // before the caller drops the lock that serializes mutations.
  void FlushGather();
  bool GatherActive() const { return gather_depth_ > 0; }
  // Frames parked by FreeFrameAfterFlush and not yet released; an allocator
  // balancing free-memory targets must count these as free-to-be.
  size_t GatherParkedFrames() const { return gather_frames_.size(); }
  // Frees `frame` back to `memory` once no stale translation can reach it:
  // immediately when no gather is open (the preceding shootdown already
  // fenced), at commit otherwise.
  void FreeFrameAfterFlush(PhysicalMemory& memory, FrameIndex frame);
  // Condemns `as` inside an open gather: its AS-generation slot is marked for
  // the deferred whole-AS bump, and until commit all page-granular publishes
  // for address spaces hashing to that slot are skipped as subsumed.  Used by
  // teardown paths (process exit, exec replace) so destroying every region of
  // a context costs one AS bump + one fence total.  Requires an open gather
  // (no-op otherwise: without a commit point there is nothing to defer to).
  void GatherCondemnAddressSpace(AsId as);

  // Set index for (as, vpn); exposed so tests can construct set conflicts.
  static size_t SetIndex(AsId as, uint64_t vpn) {
    return static_cast<size_t>(vpn ^ (static_cast<uint64_t>(as) * 0x9e3779b9u)) & (kSets - 1);
  }
  // Generation slot indices for (as, vpn) / as; exposed for the same reason.
  static size_t GenIndex(AsId as, uint64_t vpn) {
    return static_cast<size_t>(vpn ^ (static_cast<uint64_t>(as) * 0x9e3779b9u)) &
           (kGenSlots - 1);
  }
  static size_t AsGenIndex(AsId as) { return static_cast<size_t>(as) & (kAsGenSlots - 1); }

  // The simulated CPU's per-access entry point: translate + run `body(frame)`
  // under shootdown protection, as one unit.  A template so the whole hit path
  // (probe, validate, body) inlines into the caller; misses, faults, bypass
  // and the disabled configuration leave through the out-of-line slow paths.
  // `body` is any callable void(FrameIndex); pass NoBody{} for translate-only.
  struct NoBody {
    void operator()(FrameIndex) const {}
  };
  template <typename Body>
  Result<FrameIndex> AccessFast(AsId as, Vaddr va, Access access, const Body& body) {
    if (enabled_) {
      CpuSlot* cpu = ThisCpu();
      if (cpu != nullptr) {
        const uint64_t vpn = va >> page_shift_;
        // Enter the critical window (odd epoch) *before* validating the
        // generation: either a shootdown sees our odd epoch and waits for the
        // access body to finish, or we see its generation bump and miss.  The
        // store-load barrier that makes this a total order is asymmetric (see
        // the file comment): the signal fence only pins the compiler, and the
        // hardware barrier is supplied by the shootdown side — except in
        // kFenced mode, where we pay it here.
        cpu->epoch.store(++cpu->epoch_local, std::memory_order_relaxed);
        std::atomic_signal_fence(std::memory_order_seq_cst);
        if (reader_fences_) {
          std::atomic_thread_fence(std::memory_order_seq_cst);
        }
        const Entry* e = Probe(*cpu, as, vpn, /*huge=*/false);
        if (e != nullptr && e->gen == GenSum(as, vpn) &&
            ProtAllows(e->prot, AccessProt(access)) &&
            (access != Access::kWrite || e->dirty_ok)) {
          const FrameIndex frame = e->frame;
          body(frame);
          // Release: the frame contents written by `body` happen-before
          // anything a shootdown-then-recycle does with the frame.
          cpu->epoch.store(++cpu->epoch_local, std::memory_order_release);
          return frame;
        }
        if (huge_shift_ != 0) {
          // Second probe at the wide granule: one cached entry covers the
          // whole span (that is the translation-reach win), validated against
          // its own generation dimension and indexed by the huge vpn.
          const uint64_t hvpn = vpn >> huge_shift_;
          const Entry* he = Probe(*cpu, as, hvpn, /*huge=*/true);
          if (he != nullptr && he->gen == GenSumHuge(as, hvpn) &&
              ProtAllows(he->prot, AccessProt(access)) &&
              (access != Access::kWrite || he->dirty_ok)) {
            const FrameIndex frame = static_cast<FrameIndex>(
                he->frame + (vpn & ((uint64_t{1} << huge_shift_) - 1)));
            body(frame);
            Bump(cpu->huge_hits);
            cpu->epoch.store(++cpu->epoch_local, std::memory_order_release);
            return frame;
          }
        }
        cpu->epoch.store(++cpu->epoch_local, std::memory_order_release);
        return Miss(*cpu, as, va, access, FrameBodyRef(body));
      }
    }
    return Bypass(as, va, access, FrameBodyRef(body));
  }

 private:
  struct Entry {
    uint64_t vpn = 0;           // huge entries store the huge vpn (vpn >> huge_shift_)
    uint64_t gen = 0;           // generation at fill time; mismatch == invalid
    AsId as = kInvalidAsId;
    FrameIndex frame = kInvalidFrame;  // huge entries: frame of the span's first page
    Prot prot = Prot::kNone;    // rights proven by successful inner translations
    bool dirty_ok = false;      // inner PTE dirty bit known set: write hits allowed
    bool huge = false;          // wide entry: covers huge_shift_ worth of base pages
    bool valid = false;
  };

  struct alignas(64) CpuSlot {
    // Odd while the owning thread is inside probe+access; even when quiescent.
    // Advances by two per lookup, so epoch/2 is also the lookup count.
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> claimed{false};
    // Process-unique id of the claiming thread (0 = unclaimed; ids are never
    // reused).  Ownership lives in the slot, not only in the thread-local
    // binding list, so a dropped binding re-finds its slot instead of leaking
    // it by claiming a fresh one.
    std::atomic<uint64_t> owner{0};
    uint64_t epoch_local = 0;  // owner-thread copy, avoids an atomic load to bump
    // Owner-written cold-path counters (plain stores; readers aggregate
    // relaxed loads).  Hits are derived: epoch/2 - lookup_base - misses.
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> fills{0};
    std::atomic<uint64_t> huge_hits{0};    // hits served by a wide entry
    std::atomic<uint64_t> lookup_base{0};  // lookups at the last ResetTlbStats
    Entry entries[kSets][kWays];
    uint8_t next_way[kSets] = {};
  };

  // Finds (or claims) this thread's slot; nullptr when all slots are taken, in
  // which case the thread simply bypasses the TLB.
  CpuSlot* ThisCpu() {
    const tlb_internal::ThreadTlbRef& last = tlb_internal::t_last;
    if (last.mmu == this && last.id == instance_id_) {
      return static_cast<CpuSlot*>(last.slot);
    }
    return ThisCpuSlow();
  }
  CpuSlot* ThisCpuSlow();
  // An entry is valid while neither its page generation nor its address
  // space's generation has moved.  Both counters are monotonic, so caching
  // their sum at fill time and comparing sums is equivalent to comparing both
  // — and keeps Entry::gen a single word.
  uint64_t GenSum(AsId as, uint64_t vpn) const {
    // The arrays live inline in the object (not behind a pointer) so each load
    // is one this-relative access, not a base-pointer chase.
    return as_gen_[AsGenIndex(as)].load(std::memory_order_seq_cst) +
           gen_[GenIndex(as, vpn)].load(std::memory_order_seq_cst);
  }
  // Wide entries validate against their own page-generation dimension, hashed
  // by the huge vpn, plus the shared AS generation (so address-space teardown
  // retires both sizes with one bump).
  uint64_t GenSumHuge(AsId as, uint64_t hvpn) const {
    return as_gen_[AsGenIndex(as)].load(std::memory_order_seq_cst) +
           hgen_[GenIndex(as, hvpn)].load(std::memory_order_seq_cst);
  }
  // `huge` discriminates the two entry kinds: a base probe must never hit a
  // wide entry whose huge vpn happens to equal a base vpn (and vice versa).
  const Entry* Probe(const CpuSlot& cpu, AsId as, uint64_t vpn, bool huge) const {
    const Entry* set = cpu.entries[SetIndex(as, vpn)];
    for (size_t w = 0; w < kWays; ++w) {
      if (set[w].valid && set[w].huge == huge && set[w].as == as && set[w].vpn == vpn) {
        return &set[w];
      }
    }
    return nullptr;
  }
  Entry* ProbeMutable(CpuSlot& cpu, AsId as, uint64_t vpn, bool huge) {
    return const_cast<Entry*>(Probe(cpu, as, vpn, huge));
  }
  void Fill(CpuSlot& cpu, AsId as, uint64_t vpn, FrameIndex frame, Access access, uint64_t gen,
            bool huge);
  // Out-of-line slow paths for AccessFast.
  Result<FrameIndex> Miss(CpuSlot& cpu, AsId as, Vaddr va, Access access, FrameBodyRef body);
  Result<FrameIndex> Bypass(AsId as, Vaddr va, Access access, FrameBodyRef body);
  // Bumps the generation(s) covering (as, vpn) — all slots when single_page is
  // false — and waits for every CPU currently inside the critical window to
  // exit it; on return no stale translation can be used.  Under an open gather
  // only the bump happens; the wait is deferred to commit.  `huge_also` widens
  // a single-page invalidation to the covering huge-generation slot, for
  // mutations that split a span (the wide cached entry must die with it).
  void Shootdown(AsId as, uint64_t vpn, bool single_page, bool huge_also = false);
  // Publish-half of a huge invalidation over [hvpn_first, hvpn_last] (no
  // fence; the caller pays or defers it).
  void PublishHugeRange(AsId as, uint64_t hvpn_first, uint64_t hvpn_last);
  // Shared tail of the range wrappers: publishes the huge slots touched by
  // span demotions, then pays (or defers) exactly one fence covering both the
  // base run and the huge slots.
  void FinishRangeShootdown(AsId as, bool any, uint64_t first, uint64_t last, bool any_huge,
                            uint64_t hfirst, uint64_t hlast);
  // The fence half of a shootdown: force the barrier onto every thread, then
  // wait out every CPU inside its critical window.  Counts one shootdown.
  void FenceAndDrain();
  // True when `as` hashes to an AS-generation slot already marked for a
  // deferred whole-AS bump: its per-page publishes are subsumed by commit.
  bool GatherCondemned(AsId as) const {
    return gather_depth_ > 0 && ((gather_as_mask_ >> AsGenIndex(as)) & 1) != 0;
  }
  // Publishes deferred AS bumps, pays the single fence, releases parked frames.
  void CommitGather();
  static void Bump(std::atomic<uint64_t>& counter) {
    counter.store(counter.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  Mmu& inner_;
  const bool enabled_;
  const unsigned page_shift_;
  // log2 of base pages per huge page; 0 = the inner MMU has no second granule
  // (a 2:1 ratio would also be shift 1, so 0 is unambiguous as "disabled").
  const unsigned huge_shift_;
  const uint64_t instance_id_;  // globally unique; defeats address-reuse aliasing
  const FenceMode fence_;       // resolved, never kAuto
  const bool reader_fences_;    // fence_ == kFenced, tested on the hit path
  const std::string name_;
  std::unique_ptr<CpuSlot[]> cpus_;
  mutable std::atomic<uint64_t> gen_[kGenSlots] = {};        // page generations
  mutable std::atomic<uint64_t> hgen_[kGenSlots] = {};       // huge-page generations
  mutable std::atomic<uint64_t> as_gen_[kAsGenSlots] = {};   // address-space generations
  // Slots are claimed densely from index 0 and never released, so the scan in
  // Shootdown only needs to cover [0, claimed_high_).
  std::atomic<size_t> claimed_high_{0};
  std::atomic<uint64_t> shootdowns_{0};
  std::atomic<uint64_t> shootdown_pages_{0};
  std::atomic<uint64_t> shootdown_ranges_{0};
  // Gather state.  Written only by the (caller-serialized) mutating thread —
  // see the BeginGather comment — so plain fields are data-race-free.
  int gather_depth_ = 0;           // nesting depth of open gather scopes
  bool gather_pending_ = false;    // a publish happened; commit owes one fence
  uint64_t gather_as_mask_ = 0;    // AS-generation slots owed a bump at commit
  std::vector<std::pair<PhysicalMemory*, FrameIndex>> gather_frames_;
};

// RAII gather scope: opens on construction, closes (and commits if outermost)
// on destruction.  Constructing from a null TlbMmu or a disabled one is a
// no-op, so callers can write `TlbGatherScope gather(tlb());` unconditionally.
class TlbGatherScope {
 public:
  explicit TlbGatherScope(TlbMmu* tlb) : tlb_(tlb != nullptr && tlb->enabled() ? tlb : nullptr) {
    if (tlb_ != nullptr) {
      tlb_->BeginGather();
    }
  }
  ~TlbGatherScope() {
    if (tlb_ != nullptr) {
      tlb_->EndGather();
    }
  }
  TlbGatherScope(const TlbGatherScope&) = delete;
  TlbGatherScope& operator=(const TlbGatherScope&) = delete;

  // Commits pending work without closing the scope; must be called before the
  // caller drops the lock serializing its mutations.
  void Flush() {
    if (tlb_ != nullptr) {
      tlb_->FlushGather();
    }
  }

 private:
  TlbMmu* tlb_;
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_TLB_H_
