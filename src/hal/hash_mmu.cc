#include "src/hal/hash_mmu.h"

#include <bit>
#include <cassert>

#include "src/util/align.h"

namespace gvm {

HashMmu::HashMmu(size_t page_size)
    : page_size_(page_size), page_shift_(static_cast<unsigned>(std::countr_zero(page_size))) {
  assert(IsPowerOfTwo(page_size));
}

Result<AsId> HashMmu::CreateAddressSpace() {
  AsId as = next_as_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  shard.live_spaces.insert(as);
  ++shard.stats.spaces_created;
  return as;
}

Status HashMmu::DestroyAddressSpace(AsId as) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (shard.live_spaces.erase(as) == 0) {
    return Status::kNotFound;
  }
  auto it = shard.space_pages.find(as);
  if (it != shard.space_pages.end()) {
    for (uint64_t vpn : it->second) {
      shard.table.erase({as, vpn});
      ++shard.stats.unmaps;
    }
    shard.space_pages.erase(it);
  }
  ++shard.stats.spaces_destroyed;
  return Status::kOk;
}

Status HashMmu::Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (!shard.live_spaces.contains(as)) {
    return Status::kNotFound;
  }
  uint64_t vpn = Vpn(va);
  // Same-frame re-map is a protection change in place: the accessed/modified
  // bits survive, per the Mmu::Map contract (TlbMmu's write-hit path relies on
  // the dirty bit not being wiped under a still-valid cached entry).  A fresh
  // insert default-constructs the Pte with frame = kInvalidFrame, so
  // same_frame is false and the bits start clear.
  Pte& pte = shard.table[{as, vpn}];
  const bool same_frame = pte.frame == frame;
  pte = Pte{.frame = frame,
            .prot = prot,
            .referenced = same_frame && pte.referenced,
            .dirty = same_frame && pte.dirty};
  shard.space_pages[as].insert(vpn);
  ++shard.stats.maps;
  return Status::kOk;
}

Status HashMmu::Unmap(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (!shard.live_spaces.contains(as)) {
    return Status::kNotFound;
  }
  uint64_t vpn = Vpn(va);
  if (shard.table.erase({as, vpn}) != 0) {
    shard.space_pages[as].erase(vpn);
    ++shard.stats.unmaps;
  }
  return Status::kOk;
}

Result<MmuEntry> HashMmu::UnmapCollect(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (!shard.live_spaces.contains(as)) {
    return Status::kNotFound;
  }
  const uint64_t vpn = Vpn(va);
  auto it = shard.table.find({as, vpn});
  if (it == shard.table.end()) {
    return Status::kNotFound;
  }
  const MmuEntry removed{.frame = it->second.frame,
                         .prot = it->second.prot,
                         .referenced = it->second.referenced,
                         .dirty = it->second.dirty};
  shard.table.erase(it);
  shard.space_pages[as].erase(vpn);
  ++shard.stats.unmaps;
  return removed;
}

Status HashMmu::Protect(AsId as, Vaddr va, Prot prot) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  auto it = shard.table.find({as, Vpn(va)});
  if (it == shard.table.end()) {
    return Status::kNotFound;
  }
  it->second.prot = prot;
  ++shard.stats.protects;
  return Status::kOk;
}

Result<FrameIndex> HashMmu::Translate(AsId as, Vaddr va, Access access) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  return TranslateLocked(shard, as, va, access);
}

Result<FrameIndex> HashMmu::TranslateAndAccess(AsId as, Vaddr va, Access access,
                                               FrameBodyRef body) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  Result<FrameIndex> frame = TranslateLocked(shard, as, va, access);
  if (frame.ok()) {
    body(*frame);
  }
  return frame;
}

Result<FrameIndex> HashMmu::TranslateLocked(Shard& shard, AsId as, Vaddr va, Access access) {
  ++shard.stats.translations;
  auto it = shard.table.find({as, Vpn(va)});
  if (it == shard.table.end()) {
    ++shard.stats.faults;
    return Status::kSegmentationFault;
  }
  Pte& pte = it->second;
  if (!ProtAllows(pte.prot, AccessProt(access))) {
    ++shard.stats.faults;
    return Status::kProtectionFault;
  }
  pte.referenced = true;
  if (access == Access::kWrite) {
    pte.dirty = true;
  }
  return pte.frame;
}

Result<MmuEntry> HashMmu::Lookup(AsId as, Vaddr va) const {
  Shard& shard = ShardFor(as);
  ReaderLock guard(shard.mu);
  auto it = shard.table.find({as, Vpn(va)});
  if (it == shard.table.end()) {
    return Status::kNotFound;
  }
  const Pte& pte = it->second;
  return MmuEntry{
      .frame = pte.frame, .prot = pte.prot, .referenced = pte.referenced, .dirty = pte.dirty};
}

Result<bool> HashMmu::TestAndClearReferenced(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  auto it = shard.table.find({as, Vpn(va)});
  if (it == shard.table.end()) {
    return Status::kNotFound;
  }
  bool was = it->second.referenced;
  it->second.referenced = false;
  return was;
}

Mmu::Stats HashMmu::stats() const {
  Stats out;
  for (Shard& shard : shards_) {
    ReaderLock guard(shard.mu);
    out.maps += shard.stats.maps;
    out.unmaps += shard.stats.unmaps;
    out.protects += shard.stats.protects;
    out.translations += shard.stats.translations;
    out.faults += shard.stats.faults;
    out.spaces_created += shard.stats.spaces_created;
    out.spaces_destroyed += shard.stats.spaces_destroyed;
  }
  return out;
}

void HashMmu::ResetStats() {
  for (Shard& shard : shards_) {
    WriterLock guard(shard.mu);
    shard.stats = Stats{};
  }
}

}  // namespace gvm
