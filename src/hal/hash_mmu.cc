#include "src/hal/hash_mmu.h"

#include <bit>
#include <cassert>

#include "src/util/align.h"

namespace gvm {

HashMmu::HashMmu(size_t page_size)
    : page_size_(page_size), page_shift_(static_cast<unsigned>(std::countr_zero(page_size))) {
  assert(IsPowerOfTwo(page_size));
}

Result<AsId> HashMmu::CreateAddressSpace() {
  std::lock_guard<std::mutex> guard(mu_);
  AsId as = next_as_++;
  live_spaces_.insert(as);
  ++stats_.spaces_created;
  return as;
}

Status HashMmu::DestroyAddressSpace(AsId as) {
  std::lock_guard<std::mutex> guard(mu_);
  if (live_spaces_.erase(as) == 0) {
    return Status::kNotFound;
  }
  auto it = space_pages_.find(as);
  if (it != space_pages_.end()) {
    for (uint64_t vpn : it->second) {
      table_.erase({as, vpn});
      ++stats_.unmaps;
    }
    space_pages_.erase(it);
  }
  ++stats_.spaces_destroyed;
  return Status::kOk;
}

Status HashMmu::Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  std::lock_guard<std::mutex> guard(mu_);
  if (!live_spaces_.contains(as)) {
    return Status::kNotFound;
  }
  uint64_t vpn = Vpn(va);
  table_[{as, vpn}] = Pte{.frame = frame, .prot = prot, .referenced = false, .dirty = false};
  space_pages_[as].insert(vpn);
  ++stats_.maps;
  return Status::kOk;
}

Status HashMmu::Unmap(AsId as, Vaddr va) {
  std::lock_guard<std::mutex> guard(mu_);
  if (!live_spaces_.contains(as)) {
    return Status::kNotFound;
  }
  uint64_t vpn = Vpn(va);
  if (table_.erase({as, vpn}) != 0) {
    space_pages_[as].erase(vpn);
    ++stats_.unmaps;
  }
  return Status::kOk;
}

Status HashMmu::Protect(AsId as, Vaddr va, Prot prot) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = table_.find({as, Vpn(va)});
  if (it == table_.end()) {
    return Status::kNotFound;
  }
  it->second.prot = prot;
  ++stats_.protects;
  return Status::kOk;
}

Result<FrameIndex> HashMmu::Translate(AsId as, Vaddr va, Access access) {
  std::lock_guard<std::mutex> guard(mu_);
  return TranslateLocked(as, va, access);
}

Result<FrameIndex> HashMmu::TranslateAndAccess(AsId as, Vaddr va, Access access,
                                               const std::function<void(FrameIndex)>& body) {
  std::lock_guard<std::mutex> guard(mu_);
  Result<FrameIndex> frame = TranslateLocked(as, va, access);
  if (frame.ok()) {
    body(*frame);
  }
  return frame;
}

Result<FrameIndex> HashMmu::TranslateLocked(AsId as, Vaddr va, Access access) {
  ++stats_.translations;
  auto it = table_.find({as, Vpn(va)});
  if (it == table_.end()) {
    ++stats_.faults;
    return Status::kSegmentationFault;
  }
  Pte& pte = it->second;
  if (!ProtAllows(pte.prot, AccessProt(access))) {
    ++stats_.faults;
    return Status::kProtectionFault;
  }
  pte.referenced = true;
  if (access == Access::kWrite) {
    pte.dirty = true;
  }
  return pte.frame;
}

Result<MmuEntry> HashMmu::Lookup(AsId as, Vaddr va) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = table_.find({as, Vpn(va)});
  if (it == table_.end()) {
    return Status::kNotFound;
  }
  const Pte& pte = it->second;
  return MmuEntry{
      .frame = pte.frame, .prot = pte.prot, .referenced = pte.referenced, .dirty = pte.dirty};
}

Result<bool> HashMmu::TestAndClearReferenced(AsId as, Vaddr va) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = table_.find({as, Vpn(va)});
  if (it == table_.end()) {
    return Status::kNotFound;
  }
  bool was = it->second.referenced;
  it->second.referenced = false;
  return was;
}

}  // namespace gvm
