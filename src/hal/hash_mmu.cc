#include "src/hal/hash_mmu.h"

#include <bit>
#include <cassert>

#include "src/util/align.h"

namespace gvm {

namespace {

// 0 = "pick the default": a 512KB second granule, in base pages.  Anything
// that resolves to <= 1 base page disables huge mappings entirely.
size_t ResolveHugeRatio(size_t page_size, size_t huge_pages) {
  size_t ratio = huge_pages != 0 ? huge_pages : (512 * 1024) / page_size;
  if (ratio <= 1) {
    return 1;
  }
  assert(IsPowerOfTwo(ratio));
  return ratio;
}

}  // namespace

HashMmu::HashMmu(size_t page_size, size_t huge_pages)
    : page_size_(page_size),
      page_shift_(static_cast<unsigned>(std::countr_zero(page_size))),
      huge_ratio_(ResolveHugeRatio(page_size, huge_pages)),
      huge_shift_(static_cast<unsigned>(std::countr_zero(huge_ratio_))) {
  assert(IsPowerOfTwo(page_size));
}

bool HashMmu::SplitHugeLocked(Shard& shard, AsId as, uint64_t hvpn) {
  auto it = shard.huge_table.find({as, hvpn});
  if (it == shard.huge_table.end()) {
    return false;
  }
  // Fan the span out into base PTEs: contiguous frame run, uniform protection,
  // and the shared referenced/dirty bits copied to EVERY base page — a write
  // through the wide entry could have landed anywhere in the span.
  const HugePte h = it->second;
  shard.huge_table.erase(it);
  auto hit = shard.space_huge.find(as);
  if (hit != shard.space_huge.end()) {
    hit->second.erase(hvpn);
  }
  const uint64_t base_vpn = hvpn << huge_shift_;
  auto& pages = shard.space_pages[as];
  for (size_t i = 0; i < huge_ratio_; ++i) {
    shard.table[{as, base_vpn + i}] = Pte{.frame = static_cast<FrameIndex>(h.frame + i),
                                          .prot = h.prot,
                                          .referenced = h.referenced,
                                          .dirty = h.dirty};
    pages.insert(base_vpn + i);
  }
  return true;
}

Result<AsId> HashMmu::CreateAddressSpace() {
  AsId as = next_as_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  shard.live_spaces.insert(as);
  ++shard.stats.spaces_created;
  return as;
}

Status HashMmu::DestroyAddressSpace(AsId as) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (shard.live_spaces.erase(as) == 0) {
    return Status::kNotFound;
  }
  auto it = shard.space_pages.find(as);
  if (it != shard.space_pages.end()) {
    for (uint64_t vpn : it->second) {
      shard.table.erase({as, vpn});
      ++shard.stats.unmaps;
    }
    shard.space_pages.erase(it);
  }
  auto hit = shard.space_huge.find(as);
  if (hit != shard.space_huge.end()) {
    for (uint64_t hvpn : hit->second) {
      shard.huge_table.erase({as, hvpn});
      ++shard.stats.unmaps;
    }
    shard.space_huge.erase(hit);
  }
  ++shard.stats.spaces_destroyed;
  return Status::kOk;
}

Status HashMmu::Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (!shard.live_spaces.contains(as)) {
    return Status::kNotFound;
  }
  uint64_t vpn = Vpn(va);
  if (huge_ratio_ > 1) {
    SplitHugeLocked(shard, as, Hvpn(va));  // base-granule op inside a span demotes it
  }
  // Same-frame re-map is a protection change in place: the accessed/modified
  // bits survive, per the Mmu::Map contract (TlbMmu's write-hit path relies on
  // the dirty bit not being wiped under a still-valid cached entry).  A fresh
  // insert default-constructs the Pte with frame = kInvalidFrame, so
  // same_frame is false and the bits start clear.
  Pte& pte = shard.table[{as, vpn}];
  const bool same_frame = pte.frame == frame;
  pte = Pte{.frame = frame,
            .prot = prot,
            .referenced = same_frame && pte.referenced,
            .dirty = same_frame && pte.dirty};
  shard.space_pages[as].insert(vpn);
  ++shard.stats.maps;
  return Status::kOk;
}

Status HashMmu::Unmap(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (!shard.live_spaces.contains(as)) {
    return Status::kNotFound;
  }
  uint64_t vpn = Vpn(va);
  if (huge_ratio_ > 1) {
    SplitHugeLocked(shard, as, Hvpn(va));  // base-granule op inside a span demotes it
  }
  if (shard.table.erase({as, vpn}) != 0) {
    shard.space_pages[as].erase(vpn);
    ++shard.stats.unmaps;
  }
  return Status::kOk;
}

Result<MmuEntry> HashMmu::UnmapCollect(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (!shard.live_spaces.contains(as)) {
    return Status::kNotFound;
  }
  const uint64_t vpn = Vpn(va);
  const bool was_huge =
      huge_ratio_ > 1 && SplitHugeLocked(shard, as, Hvpn(va));  // demote, then collect
  auto it = shard.table.find({as, vpn});
  if (it == shard.table.end()) {
    return Status::kNotFound;
  }
  const MmuEntry removed{.frame = it->second.frame,
                         .prot = it->second.prot,
                         .referenced = it->second.referenced,
                         .dirty = it->second.dirty,
                         .huge = was_huge};
  shard.table.erase(it);
  shard.space_pages[as].erase(vpn);
  ++shard.stats.unmaps;
  return removed;
}

Status HashMmu::Protect(AsId as, Vaddr va, Prot prot) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (huge_ratio_ > 1) {
    SplitHugeLocked(shard, as, Hvpn(va));  // protection split demotes the span
  }
  auto it = shard.table.find({as, Vpn(va)});
  if (it == shard.table.end()) {
    return Status::kNotFound;
  }
  it->second.prot = prot;
  ++shard.stats.protects;
  return Status::kOk;
}

Result<FrameIndex> HashMmu::Translate(AsId as, Vaddr va, Access access) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  return TranslateLocked(shard, as, va, access, nullptr);
}

Result<FrameIndex> HashMmu::TranslateAndAccess(AsId as, Vaddr va, Access access,
                                               FrameBodyRef body) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  Result<FrameIndex> frame = TranslateLocked(shard, as, va, access, nullptr);
  if (frame.ok()) {
    body(*frame);
  }
  return frame;
}

Result<FrameIndex> HashMmu::TranslateAndAccessInfo(AsId as, Vaddr va, Access access,
                                                   FrameBodyRef body, MmuTranslateInfo* info) {
  *info = MmuTranslateInfo{};
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  Result<FrameIndex> frame = TranslateLocked(shard, as, va, access, info);
  if (frame.ok()) {
    body(*frame);
  }
  return frame;
}

Result<FrameIndex> HashMmu::TranslateLocked(Shard& shard, AsId as, Vaddr va, Access access,
                                            MmuTranslateInfo* info) {
  ++shard.stats.translations;
  auto it = shard.table.find({as, Vpn(va)});
  if (it != shard.table.end()) {
    Pte& pte = it->second;
    if (!ProtAllows(pte.prot, AccessProt(access))) {
      ++shard.stats.faults;
      return Status::kProtectionFault;
    }
    pte.referenced = true;
    if (access == Access::kWrite) {
      pte.dirty = true;
    }
    return pte.frame;
  }
  if (huge_ratio_ > 1) {
    auto hit = shard.huge_table.find({as, Hvpn(va)});
    if (hit != shard.huge_table.end()) {
      HugePte& h = hit->second;
      if (!ProtAllows(h.prot, AccessProt(access))) {
        ++shard.stats.faults;
        return Status::kProtectionFault;
      }
      h.referenced = true;
      if (access == Access::kWrite) {
        h.dirty = true;  // shared bit: the span as a whole is dirty
      }
      if (info != nullptr) {
        info->huge = true;
        info->huge_frame = h.frame;
      }
      return static_cast<FrameIndex>(h.frame + (Vpn(va) & (huge_ratio_ - 1)));
    }
  }
  ++shard.stats.faults;
  return Status::kSegmentationFault;
}

Result<MmuEntry> HashMmu::Lookup(AsId as, Vaddr va) const {
  Shard& shard = ShardFor(as);
  ReaderLock guard(shard.mu);
  auto it = shard.table.find({as, Vpn(va)});
  if (it != shard.table.end()) {
    const Pte& pte = it->second;
    return MmuEntry{
        .frame = pte.frame, .prot = pte.prot, .referenced = pte.referenced, .dirty = pte.dirty};
  }
  if (huge_ratio_ > 1) {
    // Per-base-page view of a huge span, without demoting (debug invariants
    // audit page by page).
    auto hit = shard.huge_table.find({as, Hvpn(va)});
    if (hit != shard.huge_table.end()) {
      const HugePte& h = hit->second;
      return MmuEntry{.frame = static_cast<FrameIndex>(h.frame + (Vpn(va) & (huge_ratio_ - 1))),
                      .prot = h.prot,
                      .referenced = h.referenced,
                      .dirty = h.dirty,
                      .huge = true};
    }
  }
  return Status::kNotFound;
}

Result<bool> HashMmu::TestAndClearReferenced(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  auto it = shard.table.find({as, Vpn(va)});
  if (it != shard.table.end()) {
    bool was = it->second.referenced;
    it->second.referenced = false;
    return was;
  }
  if (huge_ratio_ > 1) {
    auto hit = shard.huge_table.find({as, Hvpn(va)});
    if (hit != shard.huge_table.end()) {
      // Shared bit: clearing through any page of the span clears the span.
      bool was = hit->second.referenced;
      hit->second.referenced = false;
      return was;
    }
  }
  return Status::kNotFound;
}

Status HashMmu::MapHuge(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  if (huge_ratio_ <= 1) {
    return Status::kUnsupported;
  }
  if ((va & (page_size_ * huge_ratio_ - 1)) != 0) {
    return Status::kInvalidArgument;
  }
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (!shard.live_spaces.contains(as)) {
    return Status::kNotFound;
  }
  // The wide entry supersedes any base translations inside the span.
  const uint64_t base_vpn = Vpn(va);
  auto pit = shard.space_pages.find(as);
  for (size_t i = 0; i < huge_ratio_; ++i) {
    if (shard.table.erase({as, base_vpn + i}) != 0 && pit != shard.space_pages.end()) {
      pit->second.erase(base_vpn + i);
    }
  }
  // Same-run re-map is a protection change in place, mirroring Map's contract:
  // the shared referenced/dirty bits survive.  A fresh insert default-
  // constructs frame = kInvalidFrame, so the bits start clear.
  HugePte& h = shard.huge_table[{as, Hvpn(va)}];
  const bool same_run = h.frame == frame;
  h = HugePte{.frame = frame,
              .prot = prot,
              .referenced = same_run && h.referenced,
              .dirty = same_run && h.dirty};
  shard.space_huge[as].insert(Hvpn(va));
  ++shard.stats.maps;
  return Status::kOk;
}

Status HashMmu::DemoteHuge(AsId as, Vaddr va) {
  if (huge_ratio_ <= 1) {
    return Status::kNotFound;
  }
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (!shard.live_spaces.contains(as)) {
    return Status::kNotFound;
  }
  return SplitHugeLocked(shard, as, Hvpn(va)) ? Status::kOk : Status::kNotFound;
}

Mmu::Stats HashMmu::stats() const {
  Stats out;
  for (Shard& shard : shards_) {
    ReaderLock guard(shard.mu);
    out.maps += shard.stats.maps;
    out.unmaps += shard.stats.unmaps;
    out.protects += shard.stats.protects;
    out.translations += shard.stats.translations;
    out.faults += shard.stats.faults;
    out.spaces_created += shard.stats.spaces_created;
    out.spaces_destroyed += shard.stats.spaces_destroyed;
  }
  return out;
}

void HashMmu::ResetStats() {
  for (Shard& shard : shards_) {
    WriterLock guard(shard.mu);
    shard.stats = Stats{};
  }
}

}  // namespace gvm
