// The hardware MMU interface — the boundary between the machine-independent PVM and
// its (small) machine-dependent part (paper section 3.1 / 4, Table 5).
//
// Two implementations are provided, mirroring the paper's portability claim (the
// PVM was ported to the Sun-3 MMU, the Motorola PMMU, a custom Telmat MMU and the
// iAPX 386 by rewriting only this layer):
//   * SoftMmu — two-level page tables, in the style of the PMMU / i386.
//   * HashMmu — a hashed/inverted page table, in the style of custom MMUs.
//
// The interface deals in page-aligned virtual addresses and page frames only; all
// policy (what to map, when, with which protection) lives above it.
#ifndef GVM_SRC_HAL_MMU_H_
#define GVM_SRC_HAL_MMU_H_

#include <cstdint>

#include "src/hal/types.h"
#include "src/util/result.h"

namespace gvm {

// Non-owning reference to a callable invoked with the translated frame while the
// translation is held valid.  A plain {context, thunk} pair rather than a
// std::function: the CPU constructs one per simulated load/store, and a
// std::function whose captures exceed its small-buffer optimisation would
// heap-allocate on every access.  The referenced callable must outlive the call.
class FrameBodyRef {
 public:
  template <typename F>
  FrameBodyRef(const F& f)  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(static_cast<const void*>(&f))),
        fn_([](void* ctx, FrameIndex frame) { (*static_cast<const F*>(ctx))(frame); }) {}
  void operator()(FrameIndex frame) const { fn_(ctx_, frame); }

 private:
  void* ctx_;
  void (*fn_)(void*, FrameIndex);
};

// One translation entry as seen by software.
//
// `huge` is reported per base page: a Lookup inside a huge span returns the
// base-page view (frame = span base + page offset) with huge = true, and an
// UnmapCollect that had to split a huge span first reports huge = true so the
// caller (TlbMmu) knows to invalidate the wide cached entry too.
struct MmuEntry {
  FrameIndex frame = kInvalidFrame;
  Prot prot = Prot::kNone;
  bool referenced = false;  // set by the hardware on any successful translation
  bool dirty = false;       // set by the hardware on a successful write
  bool huge = false;        // translation is (or was, for UnmapCollect) part of a huge span
};

// Out-parameter of TranslateAndAccessInfo: tells a caching layer (TlbMmu) what
// kind of entry the walk found, so it can cache one wide entry instead of N
// base entries.  `huge_frame` is the frame of the span's first base page.
struct MmuTranslateInfo {
  bool huge = false;
  FrameIndex huge_frame = kInvalidFrame;
};

class Mmu {
 public:
  struct Stats {
    uint64_t maps = 0;
    uint64_t unmaps = 0;
    uint64_t protects = 0;
    uint64_t translations = 0;
    uint64_t faults = 0;
    uint64_t spaces_created = 0;
    uint64_t spaces_destroyed = 0;
  };

  virtual ~Mmu() = default;

  virtual Result<AsId> CreateAddressSpace() = 0;
  // Destroys the space and all its mappings.
  [[nodiscard]] virtual Status DestroyAddressSpace(AsId as) = 0;

  // Installs/replaces the translation for the page containing `va`.
  //
  // Re-mapping a page with the frame it already translates to is a protection
  // change in place and must preserve the referenced/dirty bits; installing a
  // different frame starts them clear.  TlbMmu depends on this: it does not
  // shoot down on a same-frame, non-downgrading re-map, so a cached write
  // entry stays live — if the re-map wiped the dirty bit, an actively-written
  // page would look clean to eviction and be dropped without write-back.
  [[nodiscard]] virtual Status Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) = 0;

  // Removes the translation for the page containing `va` (no-op if absent).
  [[nodiscard]] virtual Status Unmap(AsId as, Vaddr va) = 0;

  // Removes the translation for the page containing `va` and returns the entry
  // it removed (kNotFound if there was none).  Unlike a Lookup-then-Unmap
  // pair, reading the referenced/dirty bits and destroying the entry are one
  // atomic step: with the two-call form a write can translate in the gap,
  // setting a dirty bit on a PTE the Unmap then wipes — and an eviction that
  // harvested "clean" from the Lookup would drop acknowledged data.  Every
  // eviction-side unmap must use this form.
  [[nodiscard]] virtual Result<MmuEntry> UnmapCollect(AsId as, Vaddr va) = 0;

  // Batched UnmapCollect over `count` consecutive pages (count <= 64): bit i
  // of *dirty_mask is set iff page i had a dirty translation; pages without a
  // translation are skipped.  The default loops UnmapCollect — each page's
  // harvest stays atomic; batching only changes who pays the invalidation.
  // Implementations with cross-CPU invalidation costs (TlbMmu) override it to
  // cover the run with one ranged shootdown, like UnmapRange.
  [[nodiscard]] virtual Status UnmapRangeCollect(AsId as, Vaddr va, size_t count,
                                                 uint64_t* dirty_mask) {
    const size_t page = page_size();
    uint64_t mask = 0;
    for (size_t i = 0; i < count && i < 64; ++i) {
      Result<MmuEntry> removed = UnmapCollect(as, va + i * page);
      if (removed.ok() && removed->dirty) {
        mask |= uint64_t{1} << i;
      }
    }
    *dirty_mask = mask;
    return Status::kOk;
  }

  // Changes the protection of an existing translation.  kNotFound if unmapped.
  [[nodiscard]] virtual Status Protect(AsId as, Vaddr va, Prot prot) = 0;

  // Removes the translations for `count` consecutive pages starting at the page
  // containing `va`; pages without a translation are skipped.  The default just
  // loops Unmap.  Implementations that pay a cross-CPU invalidation per unmap
  // (TlbMmu) override this to batch the whole run into one shootdown — the
  // software analogue of a ranged TLBI/invlpgb instead of a per-page IPI storm.
  [[nodiscard]] virtual Status UnmapRange(AsId as, Vaddr va, size_t count) {
    const size_t page = page_size();
    for (size_t i = 0; i < count; ++i) {
      Status s = Unmap(as, va + i * page);
      if (s != Status::kOk) {
        return s;
      }
    }
    return Status::kOk;
  }

  // Changes the protection of `count` consecutive pages to `prot`.  Unlike the
  // single-page Protect, pages without a translation are skipped rather than
  // reported: a range operation's caller names a span, not a residency set.
  // Same batching contract as UnmapRange.
  [[nodiscard]] virtual Status ProtectRange(AsId as, Vaddr va, size_t count, Prot prot) {
    const size_t page = page_size();
    for (size_t i = 0; i < count; ++i) {
      Status s = Protect(as, va + i * page, prot);
      if (s != Status::kOk && s != Status::kNotFound) {
        return s;
      }
    }
    return Status::kOk;
  }

  // Hardware translation: returns the frame if the access is permitted, updating
  // referenced/dirty bits; otherwise returns kSegmentationFault (no mapping) or
  // kProtectionFault (mapping present, protection insufficient).
  virtual Result<FrameIndex> Translate(AsId as, Vaddr va, Access access) = 0;

  // Translation plus the physical access as one unit: hardware never lets a
  // store land in a frame after the kernel has finished unmapping the page
  // (TLB-shootdown semantics), so `body(frame)` must run while the translation
  // is still guaranteed valid.  Implementations with internal locking hold it
  // across both steps; the default is the unsynchronized two-step form.
  virtual Result<FrameIndex> TranslateAndAccess(AsId as, Vaddr va, Access access,
                                                FrameBodyRef body) {
    Result<FrameIndex> frame = Translate(as, va, access);
    if (frame.ok()) {
      body(*frame);
    }
    return frame;
  }

  // ---- Second translation granule (transparent large pages) ----------------
  //
  // An implementation MAY support one additional power-of-two granule of
  // huge_page_size() bytes (0 = unsupported).  A huge mapping covers a
  // huge-aligned virtual span with a contiguous physical frame run (base frame
  // + i for base page i) under one protection, with ONE shared referenced and
  // ONE shared dirty bit for the whole span.
  //
  // Base-granule operations (Map/Protect/Unmap/UnmapCollect and the range
  // forms) on an address inside a huge span transparently DEMOTE the span
  // first — the span is replaced by its base-page PTEs (frame = base + i,
  // protection copied, the shared referenced/dirty bits fanned out to every
  // base PTE) — and then apply.  The fan-out is what keeps the UnmapCollect
  // dirty-harvest contract honest: a write that translated through the wide
  // entry dirtied the whole span, so after the split every base page it could
  // have landed in reports dirty.  UnmapCollect reports huge = true on the
  // removed entry when it split a span, so TlbMmu widens the invalidation.

  // Size in bytes of the second granule; 0 if the implementation has none.
  virtual size_t huge_page_size() const { return 0; }

  // Installs one huge translation at huge-aligned `va`, mapping the span to
  // the contiguous frame run starting at `frame`.  Replaces any base-page
  // translations inside the span.  Like Map, re-mapping the span with the
  // frame run it already translates to preserves the shared referenced/dirty
  // bits; a different run starts them clear.  kInvalidArgument if `va` is not
  // huge-aligned; kUnsupported if huge_page_size() == 0.
  [[nodiscard]] virtual Status MapHuge(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
    (void)as;
    (void)va;
    (void)frame;
    (void)prot;
    return Status::kUnsupported;
  }

  // Splits the huge span containing `va` into its base-page translations
  // (frame = base + i, shared referenced/dirty fanned out).  kNotFound if no
  // huge translation covers `va`.  The caller owns TLB invalidation.
  [[nodiscard]] virtual Status DemoteHuge(AsId as, Vaddr va) {
    (void)as;
    (void)va;
    return Status::kNotFound;
  }

  // TranslateAndAccess plus entry-kind reporting, for caching layers that can
  // hold wide entries.  The default reports "not huge"; implementations with
  // a second granule override it alongside TranslateAndAccess.
  virtual Result<FrameIndex> TranslateAndAccessInfo(AsId as, Vaddr va, Access access,
                                                    FrameBodyRef body, MmuTranslateInfo* info) {
    *info = MmuTranslateInfo{};
    return TranslateAndAccess(as, va, access, body);
  }

  // Software inspection of an entry, without touching referenced/dirty bits.
  virtual Result<MmuEntry> Lookup(AsId as, Vaddr va) const = 0;

  // Reads and clears the referenced bit (for clock-style page replacement).
  // Returns kNotFound if the page is unmapped.
  virtual Result<bool> TestAndClearReferenced(AsId as, Vaddr va) = 0;

  virtual size_t page_size() const = 0;

  // Returned by value: implementations aggregate internal (possibly sharded)
  // counters into a snapshot, so concurrent callers never share storage.
  virtual Stats stats() const = 0;
  virtual void ResetStats() = 0;

  // Human-readable implementation name, for Table 5-style reporting.
  virtual const char* name() const = 0;
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_MMU_H_
