#include "src/hal/phys_memory.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/util/align.h"

namespace gvm {

namespace {

// Process-unique magazine slot per thread.  Ids are never reused, so two live
// threads only share a slot once more than kMagazineSlots threads have ever
// allocated — and sharing is merely contention, not incorrectness (the slot
// mutex serializes them).
std::atomic<uint64_t> g_next_slot_id{0};

size_t ThisThreadSlot() {
  thread_local const uint64_t id = g_next_slot_id.fetch_add(1, std::memory_order_relaxed);
  return static_cast<size_t>(id % PhysicalMemory::kMagazineSlots);
}

// Auto-sized magazines: large memories get full 32-frame magazines, tiny test
// memories get proportionally small ones (a 48-frame memory keeps at most 3
// frames per CPU) so private caches cannot swallow the working set; below 16
// frames the layer disables itself.
size_t AutoCapacity(size_t frame_count) { return std::min<size_t>(32, frame_count / 16); }

}  // namespace

PhysicalMemory::PhysicalMemory(size_t frame_count, size_t page_size, size_t magazine_capacity)
    : frame_count_(frame_count),
      page_size_(page_size),
      magazine_capacity_(magazine_capacity == kAutoMagazineCapacity ? AutoCapacity(frame_count)
                                                                    : magazine_capacity),
      // Below this many shared-free frames, magazines stop hoarding: frees go
      // straight to the shared list and refills take one frame at a time.
      pressure_floor_(magazine_capacity_ * 2) {
  assert(IsPowerOfTwo(page_size));
  assert(frame_count > 0);
  storage_.resize(frame_count * page_size);
  allocated_ = std::make_unique<std::atomic<bool>[]>(frame_count);
  magazines_ = std::make_unique<Magazine[]>(kMagazineSlots);
  MutexLock lock(mu_);
  free_list_.reserve(frame_count);
  // Push in reverse so that frame 0 is handed out first (stable test output).
  for (size_t i = frame_count; i > 0; --i) {
    free_list_.push_back(static_cast<FrameIndex>(i - 1));
  }
  shared_free_.store(free_list_.size(), std::memory_order_relaxed);
}

FrameIndex PhysicalMemory::Commission(FrameIndex frame) {
  const bool was = allocated_[frame].exchange(true, std::memory_order_relaxed);
  assert(!was && "frame handed out while already allocated");
  (void)was;
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return frame;
}

Result<FrameIndex> PhysicalMemory::AllocateFrame(AllocClass cls) {
  Result<FrameIndex> result = AllocateFrameInner(cls);
  // Low-water wakeup: fires on the allocating thread with no allocator lock
  // held (the daemon latch ranks above the manager lock a caller may hold).
  LowMemoryHook* hook = low_memory_hook_.load(std::memory_order_acquire);
  if (result.ok() && hook != nullptr &&
      free_frames() <= low_memory_threshold_.load(std::memory_order_relaxed)) {
    low_memory_kicks_.fetch_add(1, std::memory_order_relaxed);
    hook->OnLowMemory();
  }
  return result;
}

Result<FrameIndex> PhysicalMemory::AllocateFrameInner(AllocClass cls) {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector != nullptr && injector->Check(FaultSite::kFrameAlloc) != Status::kOk) {
    return Status::kNoMemory;
  }
  const size_t floor = SharedFloor(cls);
  if (magazine_capacity_ == 0) {
    MutexLock lock(mu_);
    if (free_list_.size() <= floor) {
      return Status::kNoMemory;
    }
    const FrameIndex frame = free_list_.back();
    free_list_.pop_back();
    if (cls == AllocClass::kEmergency && free_list_.size() < emergency_reserve()) {
      reserve_grants_.fetch_add(1, std::memory_order_relaxed);
    }
    shared_free_.store(free_list_.size(), std::memory_order_relaxed);
    return Commission(frame);
  }
  const size_t my_slot = ThisThreadSlot();
  {
    Magazine& mag = magazines_[my_slot];
    MutexLock lock(mag.mu);
    if (!mag.frames.empty()) {
      const FrameIndex frame = mag.frames.back();
      mag.frames.pop_back();
      mag.count.store(mag.frames.size(), std::memory_order_relaxed);
      magazine_hits_.fetch_add(1, std::memory_order_relaxed);
      return Commission(frame);
    }
    // Empty magazine: refill in one batch from the shared list — single
    // frames under pressure, so a nearly-dry system is not monopolized by
    // whichever CPU refills first.  The refill never digs into the reserve.
    MutexLock shared(mu_);
    if (free_list_.size() > floor) {
      const size_t available = free_list_.size() - floor;
      const size_t batch =
          UnderPressure() ? 1 : std::min(magazine_capacity_ / 2 + 1, available);
      // The shared stack yields oldest-first; hand the first frame to the
      // caller and stash the rest reversed, so consecutive allocs still see
      // ascending frames (the pre-magazine LIFO order tests rely on).
      const FrameIndex out = free_list_.back();
      free_list_.pop_back();
      for (size_t i = 1; i < batch; ++i) {
        mag.frames.push_back(free_list_.back());
        free_list_.pop_back();
      }
      std::reverse(mag.frames.begin(), mag.frames.end());
      shared_free_.store(free_list_.size(), std::memory_order_relaxed);
      mag.count.store(mag.frames.size(), std::memory_order_relaxed);
      if (batch > 1) {
        magazine_refills_.fetch_add(1, std::memory_order_relaxed);
      }
      if (cls == AllocClass::kEmergency && free_list_.size() < emergency_reserve()) {
        reserve_grants_.fetch_add(1, std::memory_order_relaxed);
      }
      return Commission(out);
    }
  }
  // Shared list dry and own magazine empty: raid the other magazines — one at
  // a time; holding two same-rank magazine locks would both risk deadlock and
  // trip the rank validator — so kNoMemory means the system is truly out of
  // frames, not that they are stranded in idle CPUs' caches.
  for (size_t i = 1; i <= kMagazineSlots; ++i) {
    Magazine& victim = magazines_[(my_slot + i) % kMagazineSlots];
    MutexLock lock(victim.mu);
    if (!victim.frames.empty()) {
      const FrameIndex frame = victim.frames.back();
      victim.frames.pop_back();
      victim.count.store(victim.frames.size(), std::memory_order_relaxed);
      magazine_steals_.fetch_add(1, std::memory_order_relaxed);
      return Commission(frame);
    }
  }
  // Last look at the shared list: a concurrent free may have landed after the
  // raid swept past its magazine.
  MutexLock lock(mu_);
  if (free_list_.size() > floor) {
    const FrameIndex frame = free_list_.back();
    free_list_.pop_back();
    if (cls == AllocClass::kEmergency && free_list_.size() < emergency_reserve()) {
      reserve_grants_.fetch_add(1, std::memory_order_relaxed);
    }
    shared_free_.store(free_list_.size(), std::memory_order_relaxed);
    return Commission(frame);
  }
  return Status::kNoMemory;
}

void PhysicalMemory::FreeFrame(FrameIndex frame) {
  assert(frame < frame_count_);
  const bool was = allocated_[frame].exchange(false, std::memory_order_relaxed);
  assert(was && "double free of a page frame");
  (void)was;
  frees_.fetch_add(1, std::memory_order_relaxed);
  if (magazine_capacity_ == 0 || UnderPressure()) {
    // Low-water pressure: bypass the magazine so eviction actually reaches
    // its free-frame target instead of parking pages in a private cache.
    MutexLock lock(mu_);
    free_list_.push_back(frame);
    shared_free_.store(free_list_.size(), std::memory_order_relaxed);
    return;
  }
  Magazine& mag = magazines_[ThisThreadSlot()];
  MutexLock lock(mag.mu);
  if (mag.frames.size() >= magazine_capacity_) {
    // Full: return the new frame plus half the magazine in one batched drain.
    MutexLock shared(mu_);
    free_list_.push_back(frame);
    const size_t keep = magazine_capacity_ / 2;
    while (mag.frames.size() > keep) {
      free_list_.push_back(mag.frames.back());
      mag.frames.pop_back();
    }
    shared_free_.store(free_list_.size(), std::memory_order_relaxed);
    mag.count.store(mag.frames.size(), std::memory_order_relaxed);
    magazine_drains_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  mag.frames.push_back(frame);
  mag.count.store(mag.frames.size(), std::memory_order_relaxed);
}

Result<FrameIndex> PhysicalMemory::AllocateRun(size_t count) {
  assert(count > 0);
  if (count > frame_count_) {
    run_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::kNoMemory;
  }
  if (count == 1) {
    Result<FrameIndex> one = AllocateFrame(AllocClass::kNormal);
    if (one.ok()) {
      run_allocations_.fetch_add(1, std::memory_order_relaxed);
    } else {
      run_failures_.fetch_add(1, std::memory_order_relaxed);
    }
    return one;
  }
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector != nullptr && injector->Check(FaultSite::kFrameAlloc) != Status::kOk) {
    run_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::kNoMemory;
  }
  // Contiguity is only visible on the shared list, so pull everything back
  // first.  The allocated_ bits alone cannot be trusted: a frame sitting in a
  // magazine is "not allocated" yet also not available here, and a concurrent
  // free may land in a magazine after this drain — so membership is decided
  // strictly by presence in free_list_, under mu_.
  DrainMagazines();
  MutexLock lock(mu_);
  const size_t reserve = emergency_reserve();
  if (free_list_.size() < count + reserve) {
    run_failures_.fetch_add(1, std::memory_order_relaxed);
    return Status::kNoMemory;
  }
  // Position of each free frame within free_list_, or npos if not free.
  constexpr size_t kNotFree = static_cast<size_t>(-1);
  std::vector<size_t> pos(frame_count_, kNotFree);
  for (size_t i = 0; i < free_list_.size(); ++i) {
    pos[free_list_[i]] = i;
  }
  for (size_t base = 0; base + count <= frame_count_; ++base) {
    size_t run = 0;
    while (run < count && pos[base + run] != kNotFree) {
      ++run;
    }
    if (run < count) {
      base += run;  // no frame in [base, base+run] can start a full run
      continue;
    }
    // Remove the run from the free list via swap-pop, keeping `pos` exact for
    // the element each pop moves.
    for (size_t i = 0; i < count; ++i) {
      const FrameIndex frame = static_cast<FrameIndex>(base + i);
      const size_t at = pos[frame];
      const FrameIndex moved = free_list_.back();
      free_list_[at] = moved;
      free_list_.pop_back();
      pos[moved] = at;
      pos[frame] = kNotFree;
      Commission(frame);
    }
    shared_free_.store(free_list_.size(), std::memory_order_relaxed);
    run_allocations_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<FrameIndex>(base);
  }
  run_failures_.fetch_add(1, std::memory_order_relaxed);
  return Status::kNoMemory;
}

void PhysicalMemory::DrainMagazines() {
  for (size_t i = 0; i < kMagazineSlots; ++i) {
    Magazine& mag = magazines_[i];
    MutexLock lock(mag.mu);
    if (mag.frames.empty()) {
      continue;
    }
    MutexLock shared(mu_);
    while (!mag.frames.empty()) {
      free_list_.push_back(mag.frames.back());
      mag.frames.pop_back();
    }
    shared_free_.store(free_list_.size(), std::memory_order_relaxed);
    mag.count.store(0, std::memory_order_relaxed);
    magazine_drains_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::byte* PhysicalMemory::FrameData(FrameIndex frame) {
  assert(frame < frame_count_);
  return storage_.data() + static_cast<size_t>(frame) * page_size_;
}

const std::byte* PhysicalMemory::FrameData(FrameIndex frame) const {
  assert(frame < frame_count_);
  return storage_.data() + static_cast<size_t>(frame) * page_size_;
}

void PhysicalMemory::ZeroFrame(FrameIndex frame) {
  std::memset(FrameData(frame), 0, page_size_);
  zero_fills_.fetch_add(1, std::memory_order_relaxed);
}

void PhysicalMemory::CopyFrame(FrameIndex dst, FrameIndex src) {
  assert(dst != src);
  std::memcpy(FrameData(dst), FrameData(src), page_size_);
  frame_copies_.fetch_add(1, std::memory_order_relaxed);
}

bool PhysicalMemory::IsAllocated(FrameIndex frame) const {
  assert(frame < frame_count_);
  return allocated_[frame].load(std::memory_order_relaxed);
}

PhysicalMemory::Stats PhysicalMemory::stats() const {
  Stats out;
  out.allocations = allocations_.load(std::memory_order_relaxed);
  out.frees = frees_.load(std::memory_order_relaxed);
  out.zero_fills = zero_fills_.load(std::memory_order_relaxed);
  out.frame_copies = frame_copies_.load(std::memory_order_relaxed);
  out.magazine_hits = magazine_hits_.load(std::memory_order_relaxed);
  out.magazine_refills = magazine_refills_.load(std::memory_order_relaxed);
  out.magazine_drains = magazine_drains_.load(std::memory_order_relaxed);
  out.magazine_steals = magazine_steals_.load(std::memory_order_relaxed);
  out.reserve_grants = reserve_grants_.load(std::memory_order_relaxed);
  out.low_memory_kicks = low_memory_kicks_.load(std::memory_order_relaxed);
  out.run_allocations = run_allocations_.load(std::memory_order_relaxed);
  out.run_failures = run_failures_.load(std::memory_order_relaxed);
  return out;
}

void PhysicalMemory::ResetStats() {
  allocations_.store(0, std::memory_order_relaxed);
  frees_.store(0, std::memory_order_relaxed);
  zero_fills_.store(0, std::memory_order_relaxed);
  frame_copies_.store(0, std::memory_order_relaxed);
  magazine_hits_.store(0, std::memory_order_relaxed);
  magazine_refills_.store(0, std::memory_order_relaxed);
  magazine_drains_.store(0, std::memory_order_relaxed);
  magazine_steals_.store(0, std::memory_order_relaxed);
  reserve_grants_.store(0, std::memory_order_relaxed);
  low_memory_kicks_.store(0, std::memory_order_relaxed);
  run_allocations_.store(0, std::memory_order_relaxed);
  run_failures_.store(0, std::memory_order_relaxed);
}

}  // namespace gvm

