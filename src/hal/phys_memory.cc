#include "src/hal/phys_memory.h"

#include <cassert>
#include <cstring>

#include "src/util/align.h"

namespace gvm {

PhysicalMemory::PhysicalMemory(size_t frame_count, size_t page_size)
    : frame_count_(frame_count), page_size_(page_size) {
  assert(IsPowerOfTwo(page_size));
  assert(frame_count > 0);
  storage_.resize(frame_count * page_size);
  allocated_.resize(frame_count, false);
  free_list_.reserve(frame_count);
  // Push in reverse so that frame 0 is handed out first (stable test output).
  for (size_t i = frame_count; i > 0; --i) {
    free_list_.push_back(static_cast<FrameIndex>(i - 1));
  }
}

Result<FrameIndex> PhysicalMemory::AllocateFrame() {
  if (injector_ != nullptr && injector_->Check(FaultSite::kFrameAlloc) != Status::kOk) {
    return Status::kNoMemory;
  }
  if (free_list_.empty()) {
    return Status::kNoMemory;
  }
  FrameIndex frame = free_list_.back();
  free_list_.pop_back();
  allocated_[frame] = true;
  ++stats_.allocations;
  return frame;
}

void PhysicalMemory::FreeFrame(FrameIndex frame) {
  assert(frame < frame_count_);
  assert(allocated_[frame] && "double free of a page frame");
  allocated_[frame] = false;
  free_list_.push_back(frame);
  ++stats_.frees;
}

std::byte* PhysicalMemory::FrameData(FrameIndex frame) {
  assert(frame < frame_count_);
  return storage_.data() + static_cast<size_t>(frame) * page_size_;
}

const std::byte* PhysicalMemory::FrameData(FrameIndex frame) const {
  assert(frame < frame_count_);
  return storage_.data() + static_cast<size_t>(frame) * page_size_;
}

void PhysicalMemory::ZeroFrame(FrameIndex frame) {
  std::memset(FrameData(frame), 0, page_size_);
  ++stats_.zero_fills;
}

void PhysicalMemory::CopyFrame(FrameIndex dst, FrameIndex src) {
  assert(dst != src);
  std::memcpy(FrameData(dst), FrameData(src), page_size_);
  ++stats_.frame_copies;
}

bool PhysicalMemory::IsAllocated(FrameIndex frame) const {
  assert(frame < frame_count_);
  return allocated_[frame];
}

}  // namespace gvm
