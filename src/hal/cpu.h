// The simulated CPU access path.
//
// In the real system, user loads and stores go through the MMU and trap to the
// kernel's fault handler on a miss or violation.  In this user-space simulation,
// "user programs" call Cpu::Read / Cpu::Write; each page-sized piece is translated
// by the Mmu, and on a fault the bound FaultHandler (the memory manager) is invoked
// exactly as a trap handler would be, then the access retries (section 4.1.2).
#ifndef GVM_SRC_HAL_CPU_H_
#define GVM_SRC_HAL_CPU_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/hal/mmu.h"
#include "src/hal/phys_memory.h"
#include "src/hal/types.h"
#include "src/util/status.h"

namespace gvm {

class TlbMmu;

// Implemented by the memory manager: resolve a page fault.  Returning kOk means
// "retry the access"; any other status aborts the access and is surfaced to the
// simulated user program (the paper's "segmentation fault" exception).
class FaultHandler {
 public:
  virtual ~FaultHandler() = default;
  [[nodiscard]] virtual Status HandleFault(const PageFault& fault) = 0;
};

class Cpu {
 public:
  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t faults_taken = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    // TLB observability, populated by SnapshotStats() when a software TLB
    // (TlbMmu) fronts the MMU; zero otherwise.
    uint64_t tlb_hits = 0;
    uint64_t tlb_misses = 0;
    uint64_t tlb_huge_hits = 0;  // subset of tlb_hits served by a wide entry
    uint64_t tlb_shootdowns = 0;
    uint64_t tlb_shootdown_pages = 0;
    uint64_t tlb_shootdown_ranges = 0;
  };

  // The page size is immutable per MMU, so it is cached here once instead of
  // paying a virtual call per page in the access loop.  A software TLB is also
  // detected once here: TlbMmu is final, so calling through the typed pointer
  // lets the compiler devirtualize the per-access translation call.
  Cpu(PhysicalMemory& memory, Mmu& mmu);

  void BindFaultHandler(FaultHandler* handler) { handler_ = handler; }

  // Copy `size` bytes out of / into the address space `as` at `va`.  Accesses may
  // span pages; each page is translated independently, faulting as needed.
  [[nodiscard]] Status Read(AsId as, Vaddr va, void* buffer, size_t size) {
    return AccessBytes(as, va, buffer, size, Access::kRead);
  }
  [[nodiscard]] Status Write(AsId as, Vaddr va, const void* buffer, size_t size) {
    return AccessBytes(as, va, const_cast<void*>(buffer), size, Access::kWrite);
  }
  // Instruction fetch (used by the MIX byte-code machine).
  [[nodiscard]] Status Fetch(AsId as, Vaddr va, void* buffer, size_t size) {
    return AccessBytes(as, va, buffer, size, Access::kExecute);
  }

  // Touch a single address with the given access, faulting as needed, without
  // transferring data.  Used by lockInMemory-style prefaulting and by benchmarks.
  [[nodiscard]] Status Touch(AsId as, Vaddr va, Access access);

  // Typed convenience accessors.
  template <typename T>
  Result<T> Load(AsId as, Vaddr va) {
    T value{};
    Status s = Read(as, va, &value, sizeof(T));
    if (s != Status::kOk) {
      return s;
    }
    return value;
  }
  template <typename T>
  [[nodiscard]] Status Store(AsId as, Vaddr va, T value) {
    return Write(as, va, &value, sizeof(T));
  }

  PhysicalMemory& memory() { return memory_; }
  Mmu& mmu() { return mmu_; }
  // Coherent-enough snapshot of the access counters.  One Cpu is shared by
  // every accessing thread of a manager, so the counters are relaxed atomics
  // (sharded per thread; see AtomicStats) and stats() returns a summed copy —
  // callers never see torn values.
  Stats stats() const {
    Stats out;
    for (const AtomicStats& shard : stats_) {
      out.reads += shard.reads.load(std::memory_order_relaxed);
      out.writes += shard.writes.load(std::memory_order_relaxed);
      out.faults_taken += shard.faults_taken.load(std::memory_order_relaxed);
      out.bytes_read += shard.bytes_read.load(std::memory_order_relaxed);
      out.bytes_written += shard.bytes_written.load(std::memory_order_relaxed);
    }
    return out;
  }
  // As stats(), but with the TLB counters merged in when the bound MMU is a
  // software TLB (the common case for manager-owned CPUs).
  Stats SnapshotStats() const;
  void ResetStats() {
    for (AtomicStats& shard : stats_) {
      shard.reads.store(0, std::memory_order_relaxed);
      shard.writes.store(0, std::memory_order_relaxed);
      shard.faults_taken.store(0, std::memory_order_relaxed);
      shard.bytes_read.store(0, std::memory_order_relaxed);
      shard.bytes_written.store(0, std::memory_order_relaxed);
    }
  }

 private:
  [[nodiscard]] Status AccessBytes(AsId as, Vaddr va, void* buffer, size_t size, Access access);
  // Translate one address, invoking the fault handler until it succeeds or the
  // handler reports an unrecoverable fault.
  Result<FrameIndex> TranslateWithFaults(AsId as, Vaddr va, Access access);
  // As above; with a body, the translation and the access run as one atomic step
  // via Mmu::TranslateAndAccess (the fault handler still runs outside it).
  Result<FrameIndex> AccessWithFaults(AsId as, Vaddr va, Access access,
                                      const FrameBodyRef* body);
  // One translation attempt, routed through the software TLB when present.
  Result<FrameIndex> TranslateOnce(AsId as, Vaddr va, Access access,
                                   const FrameBodyRef* body);
  // The trap path: run the fault handler and retry until the access succeeds
  // or the handler gives up.  Deliberately out of line (and never inlined)
  // so its fault-frame setup stays off the hit path's stack frame.
  __attribute__((noinline)) Result<FrameIndex> FaultRetry(AsId as, Vaddr va, Access access,
                                                          const FrameBodyRef* body,
                                                          Status first_failure);

  // Internal counter storage: multiple simulated-user threads bump these
  // concurrently on the access hot path, so they are relaxed atomics (a
  // plain struct here was a real data race under the 4-thread benches).
  // Sharded by thread and cacheline-padded: a single shared counter block
  // turns every access into cross-core cacheline ping-pong, which costs
  // double-digit percentages of bench throughput at 4 threads.
  struct alignas(64) AtomicStats {
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> faults_taken{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> bytes_written{0};
  };
  static constexpr int kStatShards = 16;  // power of two >= typical thread counts

  // The calling thread's shard (stable per thread; collisions just share —
  // the counters stay atomic, only the padding benefit degrades).
  AtomicStats& MyShard() { return stats_[ThreadStatSlot() & (kStatShards - 1)]; }
  static unsigned ThreadStatSlot();

  PhysicalMemory& memory_;
  Mmu& mmu_;
  TlbMmu* const tlb_;  // &mmu_ when it is a TlbMmu, else nullptr
  const size_t page_size_;
  FaultHandler* handler_ = nullptr;
  AtomicStats stats_[kStatShards];
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_CPU_H_
