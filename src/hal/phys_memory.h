// Simulated physical memory: a fixed array of page frames with real byte storage.
//
// This is the substitute for the Sun-3's 8 MB of RAM (DESIGN.md substitution table).
// Frames are allocated and freed by the memory manager; every frame has actual
// backing bytes so that copy-on-write, zero-fill and pushOut/pullIn move real data
// and correctness is observable end to end.
//
// Allocation is two-level, in the shape of northport's Pmm / Keyronex's page
// queues: each simulated CPU (thread) owns a small *magazine* of cached free
// frames, refilled from and drained to the shared free list in batches, so the
// fault-time alloc/free hot path normally touches only its own cache line and
// its own (uncontended) magazine lock.  The shared list is the slow path:
// one refill or drain amortizes its lock over half a magazine of frames.
// Magazines drain under low-water pressure (when the shared list is nearly
// empty, frees bypass the magazine so eviction targets are reached), and
// free_frames() reconciles exactly at quiescence (shared count + per-magazine
// counts, all tracked atomically).
#ifndef GVM_SRC_HAL_PHYS_MEMORY_H_
#define GVM_SRC_HAL_PHYS_MEMORY_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/hal/types.h"
#include "src/sync/annotated_mutex.h"
#include "src/util/result.h"

namespace gvm {

class PhysicalMemory {
 public:
  struct Stats {
    uint64_t allocations = 0;
    uint64_t frees = 0;
    uint64_t zero_fills = 0;
    uint64_t frame_copies = 0;
    // Magazine traffic split: how often the per-CPU layer absorbed an
    // operation vs. fell through to the shared free list.
    uint64_t magazine_hits = 0;     // allocations served from the caller's magazine
    uint64_t magazine_refills = 0;  // batched pulls, shared list -> magazine
    uint64_t magazine_drains = 0;   // batched returns, magazine -> shared list
    uint64_t magazine_steals = 0;   // allocations served by raiding another magazine
    uint64_t reserve_grants = 0;    // emergency allocations served from the reserve
    uint64_t low_memory_kicks = 0;  // low-memory hook invocations
    uint64_t run_allocations = 0;   // contiguous-run grants (huge-page promotion)
    uint64_t run_failures = 0;      // run requests refused (fragmentation / reserve)
  };

  // Who is asking for the frame.  kEmergency is reserved for the reclaim path
  // (the paging daemon / active sweeper): it may dip into the emergency
  // reserve, so page-out never deadlocks on needing a frame to free frames.
  enum class AllocClass { kNormal, kEmergency };

  // Callback invoked (with no PhysicalMemory lock held, on the allocating
  // thread) after a successful allocation leaves free_frames() at or below the
  // configured threshold.  Implementations must be cheap and reentrant — the
  // PagedVm daemon uses it as a wake latch.
  class LowMemoryHook {
   public:
    virtual ~LowMemoryHook() = default;
    virtual void OnLowMemory() = 0;
  };

  // One magazine per hashed thread slot; matches TlbMmu::kMaxCpus so every
  // simulated CPU in the bench matrix gets its own.
  static constexpr size_t kMagazineSlots = 64;
  // Sentinel: size magazines from frame_count (see the constructor).
  static constexpr size_t kAutoMagazineCapacity = static_cast<size_t>(-1);

  // `frame_count` frames of `page_size` bytes each.  page_size must be a power
  // of two; the paper's measurements use 8 KB pages (Sun-3).
  // `magazine_capacity` caps each per-CPU magazine (0 disables the layer —
  // every operation goes to the shared list); the default scales with the
  // frame count so tiny test memories are not swallowed by private caches.
  PhysicalMemory(size_t frame_count, size_t page_size,
                 size_t magazine_capacity = kAutoMagazineCapacity);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  // Allocates a frame (contents undefined).  kNormal fails with kNoMemory once
  // only the emergency reserve remains; kEmergency may drain the reserve too,
  // so it fails only when no frame exists anywhere (own magazine, shared list,
  // and every other magazine raided in turn).  The memory manager is expected
  // to run page-out and retry.
  Result<FrameIndex> AllocateFrame(AllocClass cls = AllocClass::kNormal);

  void FreeFrame(FrameIndex frame);

  // Allocates `count` physically contiguous frames (contents undefined) and
  // returns the first frame of the run; the caller owns [run, run + count).
  // Used by huge-page promotion, which needs a contiguous frame run so one
  // wide PTE can cover the whole span.  Always kNormal-class: a run never digs
  // into the emergency reserve.  Drains the magazines first (a run must be
  // assembled from the shared list, the only place contiguity is visible),
  // then scans for `count` adjacent free frames; fails with kNoMemory when no
  // such run exists — callers treat that as "don't promote", not an error.
  Result<FrameIndex> AllocateRun(size_t count);

  // Frames at the bottom of the shared free list withheld from kNormal
  // allocations (default 0 = no reserve).  Set once at world setup, before
  // allocation traffic starts.
  void SetEmergencyReserve(size_t frames) {
    emergency_reserve_.store(std::min(frames, frame_count_), std::memory_order_relaxed);
  }
  size_t emergency_reserve() const {
    return emergency_reserve_.load(std::memory_order_relaxed);
  }

  // Installs (or, with hook == nullptr, removes) the low-memory callback: after
  // any successful allocation that leaves free_frames() <= threshold, the hook
  // fires on the allocating thread with no allocator lock held.  Set once at
  // world setup, before allocation traffic starts.
  void SetLowMemoryHook(LowMemoryHook* hook, size_t threshold) {
    low_memory_threshold_.store(threshold, std::memory_order_relaxed);
    low_memory_hook_.store(hook, std::memory_order_release);
  }

  // Returns every magazine-cached frame to the shared free list.  Used by
  // tests and by quiescent reconciliation; the allocator itself never needs
  // it (pressure routing + raiding already make kNoMemory truthful).
  void DrainMagazines();

  // Direct access to the frame's bytes (the "physical bus").
  std::byte* FrameData(FrameIndex frame);
  const std::byte* FrameData(FrameIndex frame) const;

  void ZeroFrame(FrameIndex frame);
  void CopyFrame(FrameIndex dst, FrameIndex src);

  size_t page_size() const { return page_size_; }
  size_t frame_count() const { return frame_count_; }
  // Exact at quiescence; while threads are mid-refill a frame in motion is
  // counted at its source, so the sum never exceeds the true count.
  size_t free_frames() const {
    size_t n = shared_free_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kMagazineSlots; ++i) {
      n += magazines_[i].count.load(std::memory_order_relaxed);
    }
    return n;
  }
  size_t used_frames() const { return frame_count_ - free_frames(); }
  size_t magazine_capacity() const { return magazine_capacity_; }

  bool IsAllocated(FrameIndex frame) const;

  // By value: counters are concurrently written (relaxed atomics) once
  // magazines make allocation genuinely parallel, so callers must never share
  // a reference to aggregated storage.
  Stats stats() const;
  void ResetStats();

  // Optional fault injection at the kFrameAlloc site (injected faults surface
  // as kNoMemory, the only error AllocateFrame can legally return).  Null
  // disables injection; the injector must outlive this object.
  void BindFaultInjector(FaultInjector* injector) { injector_ = injector; }
  // The bound injector, so components downstream of this memory (the PagedVm
  // pressure paths) can evaluate their own sites without separate plumbing.
  FaultInjector* fault_injector() const {
    return injector_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) Magazine {
    mutable Mutex mu{Rank::kFrameMagazine, "PhysicalMemory::Magazine::mu"};
    // Mirrors frames.size() so free_frames() needs no locks.
    std::atomic<size_t> count{0};
    std::vector<FrameIndex> frames GVM_GUARDED_BY(mu);
  };

  Magazine& MyMagazine();
  // Marks `frame` allocated (asserting it was free) and counts the allocation.
  FrameIndex Commission(FrameIndex frame);
  // AllocateFrame minus the low-memory hook (which must run with no lock held,
  // so the wrapper fires it after the inner allocation returns).
  Result<FrameIndex> AllocateFrameInner(AllocClass cls);
  // Shared-list frames a pop of class `cls` must leave behind.
  size_t SharedFloor(AllocClass cls) const {
    return cls == AllocClass::kEmergency
               ? 0
               : emergency_reserve_.load(std::memory_order_relaxed);
  }
  // True when the shared list is low enough that magazines must stop hoarding:
  // frees go straight to the shared list and refills take single frames.
  bool UnderPressure() const {
    return shared_free_.load(std::memory_order_relaxed) <= pressure_floor_;
  }

  const size_t frame_count_;
  const size_t page_size_;
  const size_t magazine_capacity_;
  const size_t pressure_floor_;
  // Frame bytes: each frame's contents are owned by whoever holds the frame
  // allocated, per the commission/decommission protocol on allocated_.
  std::vector<std::byte> storage_;  // gvm-lint: allow(annotation-coverage): per-frame ownership protocol

  mutable Mutex mu_{Rank::kFrameFreeList, "PhysicalMemory::mu_"};
  std::vector<FrameIndex> free_list_ GVM_GUARDED_BY(mu_);  // shared LIFO free stack
  std::atomic<size_t> shared_free_{0};  // mirrors free_list_.size()

  std::unique_ptr<Magazine[]> magazines_;  // gvm-lint: allow(annotation-coverage): each Magazine carries its own lock
  // Per-frame allocation bit (atomic: concurrent allocators assert
  // exactly-once commission/decommission transitions).
  std::unique_ptr<std::atomic<bool>[]> allocated_;

  // Relaxed counters; aggregated by stats().
  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> frees_{0};
  std::atomic<uint64_t> zero_fills_{0};
  std::atomic<uint64_t> frame_copies_{0};
  std::atomic<uint64_t> magazine_hits_{0};
  std::atomic<uint64_t> magazine_refills_{0};
  std::atomic<uint64_t> magazine_drains_{0};
  std::atomic<uint64_t> magazine_steals_{0};
  std::atomic<uint64_t> reserve_grants_{0};
  std::atomic<uint64_t> low_memory_kicks_{0};
  std::atomic<uint64_t> run_allocations_{0};
  std::atomic<uint64_t> run_failures_{0};

  std::atomic<size_t> emergency_reserve_{0};
  std::atomic<size_t> low_memory_threshold_{0};
  std::atomic<LowMemoryHook*> low_memory_hook_{nullptr};

  std::atomic<FaultInjector*> injector_{nullptr};
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_PHYS_MEMORY_H_
