// Simulated physical memory: a fixed array of page frames with real byte storage.
//
// This is the substitute for the Sun-3's 8 MB of RAM (DESIGN.md substitution table).
// Frames are allocated and freed by the memory manager; every frame has actual
// backing bytes so that copy-on-write, zero-fill and pushOut/pullIn move real data
// and correctness is observable end to end.
#ifndef GVM_SRC_HAL_PHYS_MEMORY_H_
#define GVM_SRC_HAL_PHYS_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/hal/types.h"
#include "src/util/result.h"

namespace gvm {

class PhysicalMemory {
 public:
  struct Stats {
    uint64_t allocations = 0;
    uint64_t frees = 0;
    uint64_t zero_fills = 0;
    uint64_t frame_copies = 0;
  };

  // `frame_count` frames of `page_size` bytes each.  page_size must be a power of
  // two; the paper's measurements use 8 KB pages (Sun-3).
  PhysicalMemory(size_t frame_count, size_t page_size);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;

  // Allocates a frame (contents undefined).  Fails with kNoMemory when exhausted;
  // the memory manager is expected to run page-out and retry.
  Result<FrameIndex> AllocateFrame();

  void FreeFrame(FrameIndex frame);

  // Direct access to the frame's bytes (the "physical bus").
  std::byte* FrameData(FrameIndex frame);
  const std::byte* FrameData(FrameIndex frame) const;

  void ZeroFrame(FrameIndex frame);
  void CopyFrame(FrameIndex dst, FrameIndex src);

  size_t page_size() const { return page_size_; }
  size_t frame_count() const { return frame_count_; }
  size_t free_frames() const { return free_list_.size(); }
  size_t used_frames() const { return frame_count_ - free_list_.size(); }

  bool IsAllocated(FrameIndex frame) const;

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  // Optional fault injection at the kFrameAlloc site (injected faults surface
  // as kNoMemory, the only error AllocateFrame can legally return).  Null
  // disables injection; the injector must outlive this object.
  void BindFaultInjector(FaultInjector* injector) { injector_ = injector; }

 private:
  const size_t frame_count_;
  const size_t page_size_;
  std::vector<std::byte> storage_;       // frame_count_ * page_size_ bytes
  std::vector<FrameIndex> free_list_;    // LIFO free stack
  std::vector<bool> allocated_;          // per-frame allocation bit (for assertions)
  Stats stats_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_PHYS_MEMORY_H_
