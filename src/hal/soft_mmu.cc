#include "src/hal/soft_mmu.h"

#include <bit>
#include <cassert>

#include "src/util/align.h"

namespace gvm {

SoftMmu::SoftMmu(size_t page_size, unsigned leaf_bits)
    : page_size_(page_size),
      page_shift_(static_cast<unsigned>(std::countr_zero(page_size))),
      leaf_bits_(leaf_bits) {
  assert(IsPowerOfTwo(page_size));
  assert(leaf_bits >= 1 && leaf_bits <= 20);
}

Result<AsId> SoftMmu::CreateAddressSpace() {
  std::lock_guard<std::mutex> guard(mu_);
  AsId as = next_as_++;
  spaces_.emplace(as, AddressSpace{});
  ++stats_.spaces_created;
  return as;
}

Status SoftMmu::DestroyAddressSpace(AsId as) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = spaces_.find(as);
  if (it == spaces_.end()) {
    return Status::kNotFound;
  }
  spaces_.erase(it);
  ++stats_.spaces_destroyed;
  return Status::kOk;
}

SoftMmu::AddressSpace* SoftMmu::FindSpace(AsId as) {
  auto it = spaces_.find(as);
  return it == spaces_.end() ? nullptr : &it->second;
}

const SoftMmu::AddressSpace* SoftMmu::FindSpace(AsId as) const {
  auto it = spaces_.find(as);
  return it == spaces_.end() ? nullptr : &it->second;
}

SoftMmu::Pte* SoftMmu::FindPte(AsId as, Vaddr va) {
  AddressSpace* space = FindSpace(as);
  if (space == nullptr) {
    return nullptr;
  }
  auto it = space->directory.find(DirIndex(va));
  if (it == space->directory.end()) {
    return nullptr;
  }
  Pte& pte = it->second->entries[LeafIndex(va)];
  return pte.valid ? &pte : nullptr;
}

const SoftMmu::Pte* SoftMmu::FindPte(AsId as, Vaddr va) const {
  return const_cast<SoftMmu*>(this)->FindPte(as, va);
}

Status SoftMmu::Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  std::lock_guard<std::mutex> guard(mu_);
  AddressSpace* space = FindSpace(as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  auto& leaf = space->directory[DirIndex(va)];
  if (leaf == nullptr) {
    leaf = std::make_unique<LeafTable>();
    leaf->entries.resize(size_t{1} << leaf_bits_);
  }
  Pte& pte = leaf->entries[LeafIndex(va)];
  if (!pte.valid) {
    ++leaf->valid_count;
  }
  pte = Pte{.frame = frame, .prot = prot, .valid = true, .referenced = false, .dirty = false};
  ++stats_.maps;
  return Status::kOk;
}

Status SoftMmu::Unmap(AsId as, Vaddr va) {
  std::lock_guard<std::mutex> guard(mu_);
  AddressSpace* space = FindSpace(as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  auto it = space->directory.find(DirIndex(va));
  if (it == space->directory.end()) {
    return Status::kOk;  // already unmapped
  }
  Pte& pte = it->second->entries[LeafIndex(va)];
  if (pte.valid) {
    pte = Pte{};
    ++stats_.unmaps;
    if (--it->second->valid_count == 0) {
      space->directory.erase(it);  // reclaim empty leaf tables
    }
  }
  return Status::kOk;
}

Status SoftMmu::Protect(AsId as, Vaddr va, Prot prot) {
  std::lock_guard<std::mutex> guard(mu_);
  Pte* pte = FindPte(as, va);
  if (pte == nullptr) {
    return Status::kNotFound;
  }
  pte->prot = prot;
  ++stats_.protects;
  return Status::kOk;
}

Result<FrameIndex> SoftMmu::Translate(AsId as, Vaddr va, Access access) {
  std::lock_guard<std::mutex> guard(mu_);
  return TranslateLocked(as, va, access);
}

Result<FrameIndex> SoftMmu::TranslateAndAccess(AsId as, Vaddr va, Access access,
                                               const std::function<void(FrameIndex)>& body) {
  std::lock_guard<std::mutex> guard(mu_);
  Result<FrameIndex> frame = TranslateLocked(as, va, access);
  if (frame.ok()) {
    body(*frame);
  }
  return frame;
}

Result<FrameIndex> SoftMmu::TranslateLocked(AsId as, Vaddr va, Access access) {
  ++stats_.translations;
  Pte* pte = FindPte(as, va);
  if (pte == nullptr) {
    ++stats_.faults;
    return Status::kSegmentationFault;
  }
  if (!ProtAllows(pte->prot, AccessProt(access))) {
    ++stats_.faults;
    return Status::kProtectionFault;
  }
  pte->referenced = true;
  if (access == Access::kWrite) {
    pte->dirty = true;
  }
  return pte->frame;
}

Result<MmuEntry> SoftMmu::Lookup(AsId as, Vaddr va) const {
  std::lock_guard<std::mutex> guard(mu_);
  const Pte* pte = FindPte(as, va);
  if (pte == nullptr) {
    return Status::kNotFound;
  }
  return MmuEntry{
      .frame = pte->frame, .prot = pte->prot, .referenced = pte->referenced, .dirty = pte->dirty};
}

Result<bool> SoftMmu::TestAndClearReferenced(AsId as, Vaddr va) {
  std::lock_guard<std::mutex> guard(mu_);
  Pte* pte = FindPte(as, va);
  if (pte == nullptr) {
    return Status::kNotFound;
  }
  bool was = pte->referenced;
  pte->referenced = false;
  return was;
}

size_t SoftMmu::LeafTableCount(AsId as) const {
  std::lock_guard<std::mutex> guard(mu_);
  const AddressSpace* space = FindSpace(as);
  return space == nullptr ? 0 : space->directory.size();
}

}  // namespace gvm
