#include "src/hal/soft_mmu.h"

#include <bit>
#include <cassert>

#include "src/util/align.h"

namespace gvm {

SoftMmu::SoftMmu(size_t page_size, unsigned leaf_bits)
    : page_size_(page_size),
      page_shift_(static_cast<unsigned>(std::countr_zero(page_size))),
      leaf_bits_(leaf_bits) {
  assert(IsPowerOfTwo(page_size));
  assert(leaf_bits >= 1 && leaf_bits <= 20);
}

Result<AsId> SoftMmu::CreateAddressSpace() {
  AsId as = next_as_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  shard.spaces.emplace(as, AddressSpace{});
  ++shard.stats.spaces_created;
  return as;
}

Status SoftMmu::DestroyAddressSpace(AsId as) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  auto it = shard.spaces.find(as);
  if (it == shard.spaces.end()) {
    return Status::kNotFound;
  }
  shard.spaces.erase(it);
  ++shard.stats.spaces_destroyed;
  return Status::kOk;
}

SoftMmu::AddressSpace* SoftMmu::FindSpace(Shard& shard, AsId as) {
  auto it = shard.spaces.find(as);
  return it == shard.spaces.end() ? nullptr : &it->second;
}

SoftMmu::Pte* SoftMmu::FindPte(Shard& shard, AsId as, Vaddr va) const {
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return nullptr;
  }
  auto it = space->directory.find(DirIndex(va));
  if (it == space->directory.end()) {
    return nullptr;
  }
  Pte& pte = it->second->entries[LeafIndex(va)];
  return pte.valid ? &pte : nullptr;
}

Status SoftMmu::Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  auto& leaf = space->directory[DirIndex(va)];
  if (leaf == nullptr) {
    leaf = std::make_unique<LeafTable>();
    leaf->entries.resize(size_t{1} << leaf_bits_);
  }
  Pte& pte = leaf->entries[LeafIndex(va)];
  if (!pte.valid) {
    ++leaf->valid_count;
  }
  // Same-frame re-map is a protection change in place: the accessed/modified
  // bits survive, per the Mmu::Map contract (TlbMmu's write-hit path relies on
  // the dirty bit not being wiped under a still-valid cached entry).
  const bool same_frame = pte.valid && pte.frame == frame;
  pte = Pte{.frame = frame,
            .prot = prot,
            .valid = true,
            .referenced = same_frame && pte.referenced,
            .dirty = same_frame && pte.dirty};
  ++shard.stats.maps;
  return Status::kOk;
}

Status SoftMmu::Unmap(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  auto it = space->directory.find(DirIndex(va));
  if (it == space->directory.end()) {
    return Status::kOk;  // already unmapped
  }
  Pte& pte = it->second->entries[LeafIndex(va)];
  if (pte.valid) {
    pte = Pte{};
    ++shard.stats.unmaps;
    if (--it->second->valid_count == 0) {
      space->directory.erase(it);  // reclaim empty leaf tables
    }
  }
  return Status::kOk;
}

Result<MmuEntry> SoftMmu::UnmapCollect(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  auto it = space->directory.find(DirIndex(va));
  if (it == space->directory.end()) {
    return Status::kNotFound;
  }
  Pte& pte = it->second->entries[LeafIndex(va)];
  if (!pte.valid) {
    return Status::kNotFound;
  }
  const MmuEntry removed{
      .frame = pte.frame, .prot = pte.prot, .referenced = pte.referenced, .dirty = pte.dirty};
  pte = Pte{};
  ++shard.stats.unmaps;
  if (--it->second->valid_count == 0) {
    space->directory.erase(it);  // reclaim empty leaf tables
  }
  return removed;
}

Status SoftMmu::Protect(AsId as, Vaddr va, Prot prot) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  Pte* pte = FindPte(shard, as, va);
  if (pte == nullptr) {
    return Status::kNotFound;
  }
  pte->prot = prot;
  ++shard.stats.protects;
  return Status::kOk;
}

Result<FrameIndex> SoftMmu::Translate(AsId as, Vaddr va, Access access) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  return TranslateLocked(shard, as, va, access);
}

Result<FrameIndex> SoftMmu::TranslateAndAccess(AsId as, Vaddr va, Access access,
                                               FrameBodyRef body) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  Result<FrameIndex> frame = TranslateLocked(shard, as, va, access);
  if (frame.ok()) {
    body(*frame);
  }
  return frame;
}

Result<FrameIndex> SoftMmu::TranslateLocked(Shard& shard, AsId as, Vaddr va, Access access) {
  ++shard.stats.translations;
  Pte* pte = FindPte(shard, as, va);
  if (pte == nullptr) {
    ++shard.stats.faults;
    return Status::kSegmentationFault;
  }
  if (!ProtAllows(pte->prot, AccessProt(access))) {
    ++shard.stats.faults;
    return Status::kProtectionFault;
  }
  pte->referenced = true;
  if (access == Access::kWrite) {
    pte->dirty = true;
  }
  return pte->frame;
}

Result<MmuEntry> SoftMmu::Lookup(AsId as, Vaddr va) const {
  Shard& shard = ShardFor(as);
  ReaderLock guard(shard.mu);
  const Pte* pte = FindPte(shard, as, va);
  if (pte == nullptr) {
    return Status::kNotFound;
  }
  return MmuEntry{
      .frame = pte->frame, .prot = pte->prot, .referenced = pte->referenced, .dirty = pte->dirty};
}

Result<bool> SoftMmu::TestAndClearReferenced(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  Pte* pte = FindPte(shard, as, va);
  if (pte == nullptr) {
    return Status::kNotFound;
  }
  bool was = pte->referenced;
  pte->referenced = false;
  return was;
}

size_t SoftMmu::LeafTableCount(AsId as) const {
  Shard& shard = ShardFor(as);
  ReaderLock guard(shard.mu);
  const AddressSpace* space = FindSpace(shard, as);
  return space == nullptr ? 0 : space->directory.size();
}

Mmu::Stats SoftMmu::stats() const {
  Stats out;
  for (Shard& shard : shards_) {
    ReaderLock guard(shard.mu);
    out.maps += shard.stats.maps;
    out.unmaps += shard.stats.unmaps;
    out.protects += shard.stats.protects;
    out.translations += shard.stats.translations;
    out.faults += shard.stats.faults;
    out.spaces_created += shard.stats.spaces_created;
    out.spaces_destroyed += shard.stats.spaces_destroyed;
  }
  return out;
}

void SoftMmu::ResetStats() {
  for (Shard& shard : shards_) {
    WriterLock guard(shard.mu);
    shard.stats = Stats{};
  }
}

}  // namespace gvm
