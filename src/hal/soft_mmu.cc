#include "src/hal/soft_mmu.h"

#include <bit>
#include <cassert>

#include "src/util/align.h"

namespace gvm {

namespace {

// 0 = "pick the default": a 512KB second granule, in base pages.  Anything
// that resolves to <= 1 base page disables huge mappings entirely.
size_t ResolveHugeRatio(size_t page_size, size_t huge_pages) {
  size_t ratio = huge_pages != 0 ? huge_pages : (512 * 1024) / page_size;
  if (ratio <= 1) {
    return 1;
  }
  assert(IsPowerOfTwo(ratio));
  return ratio;
}

}  // namespace

SoftMmu::SoftMmu(size_t page_size, unsigned leaf_bits, size_t huge_pages)
    : page_size_(page_size),
      page_shift_(static_cast<unsigned>(std::countr_zero(page_size))),
      leaf_bits_(leaf_bits),
      huge_ratio_(ResolveHugeRatio(page_size, huge_pages)),
      huge_shift_(static_cast<unsigned>(std::countr_zero(huge_ratio_))) {
  assert(IsPowerOfTwo(page_size));
  assert(leaf_bits >= 1 && leaf_bits <= 20);
}

void SoftMmu::InstallPteLocked(Shard& shard, AddressSpace* space, Vaddr va, const Pte& pte) {
  (void)shard;  // present for the lock annotation only
  auto& leaf = space->directory[DirIndex(va)];
  if (leaf == nullptr) {
    leaf = std::make_unique<LeafTable>();
    leaf->entries.resize(size_t{1} << leaf_bits_);
  }
  Pte& slot = leaf->entries[LeafIndex(va)];
  if (!slot.valid) {
    ++leaf->valid_count;
  }
  slot = pte;
}

bool SoftMmu::SplitHugeLocked(Shard& shard, AddressSpace* space, uint64_t hvpn) {
  auto it = space->huge.find(hvpn);
  if (it == space->huge.end()) {
    return false;
  }
  // Fan the span out into base PTEs: frame run is contiguous, protection is
  // uniform, and the shared referenced/dirty bits go to EVERY base page — a
  // write through the wide entry could have landed anywhere in the span, so
  // under-marking any page would let eviction drop acknowledged data.
  const HugePte h = it->second;
  space->huge.erase(it);
  const Vaddr base_va = static_cast<Vaddr>(hvpn) << (page_shift_ + huge_shift_);
  for (size_t i = 0; i < huge_ratio_; ++i) {
    InstallPteLocked(shard, space, base_va + i * page_size_,
                     Pte{.frame = static_cast<FrameIndex>(h.frame + i),
                         .prot = h.prot,
                         .valid = true,
                         .referenced = h.referenced,
                         .dirty = h.dirty});
  }
  return true;
}

Result<AsId> SoftMmu::CreateAddressSpace() {
  AsId as = next_as_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  shard.spaces.emplace(as, AddressSpace{});
  ++shard.stats.spaces_created;
  return as;
}

Status SoftMmu::DestroyAddressSpace(AsId as) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  auto it = shard.spaces.find(as);
  if (it == shard.spaces.end()) {
    return Status::kNotFound;
  }
  shard.spaces.erase(it);
  ++shard.stats.spaces_destroyed;
  return Status::kOk;
}

SoftMmu::AddressSpace* SoftMmu::FindSpace(Shard& shard, AsId as) {
  auto it = shard.spaces.find(as);
  return it == shard.spaces.end() ? nullptr : &it->second;
}

SoftMmu::Pte* SoftMmu::FindPte(Shard& shard, AsId as, Vaddr va) const {
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return nullptr;
  }
  auto it = space->directory.find(DirIndex(va));
  if (it == space->directory.end()) {
    return nullptr;
  }
  Pte& pte = it->second->entries[LeafIndex(va)];
  return pte.valid ? &pte : nullptr;
}

Status SoftMmu::Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  if (huge_ratio_ > 1) {
    SplitHugeLocked(shard, space, Hvpn(va));  // base-granule op inside a span demotes it
  }
  auto& leaf = space->directory[DirIndex(va)];
  if (leaf == nullptr) {
    leaf = std::make_unique<LeafTable>();
    leaf->entries.resize(size_t{1} << leaf_bits_);
  }
  Pte& pte = leaf->entries[LeafIndex(va)];
  if (!pte.valid) {
    ++leaf->valid_count;
  }
  // Same-frame re-map is a protection change in place: the accessed/modified
  // bits survive, per the Mmu::Map contract (TlbMmu's write-hit path relies on
  // the dirty bit not being wiped under a still-valid cached entry).
  const bool same_frame = pte.valid && pte.frame == frame;
  pte = Pte{.frame = frame,
            .prot = prot,
            .valid = true,
            .referenced = same_frame && pte.referenced,
            .dirty = same_frame && pte.dirty};
  ++shard.stats.maps;
  return Status::kOk;
}

Status SoftMmu::Unmap(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  if (huge_ratio_ > 1) {
    SplitHugeLocked(shard, space, Hvpn(va));  // base-granule op inside a span demotes it
  }
  auto it = space->directory.find(DirIndex(va));
  if (it == space->directory.end()) {
    return Status::kOk;  // already unmapped
  }
  Pte& pte = it->second->entries[LeafIndex(va)];
  if (pte.valid) {
    pte = Pte{};
    ++shard.stats.unmaps;
    if (--it->second->valid_count == 0) {
      space->directory.erase(it);  // reclaim empty leaf tables
    }
  }
  return Status::kOk;
}

Result<MmuEntry> SoftMmu::UnmapCollect(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  const bool was_huge =
      huge_ratio_ > 1 && SplitHugeLocked(shard, space, Hvpn(va));  // demote, then collect
  auto it = space->directory.find(DirIndex(va));
  if (it == space->directory.end()) {
    return Status::kNotFound;
  }
  Pte& pte = it->second->entries[LeafIndex(va)];
  if (!pte.valid) {
    return Status::kNotFound;
  }
  const MmuEntry removed{.frame = pte.frame,
                         .prot = pte.prot,
                         .referenced = pte.referenced,
                         .dirty = pte.dirty,
                         .huge = was_huge};
  pte = Pte{};
  ++shard.stats.unmaps;
  if (--it->second->valid_count == 0) {
    space->directory.erase(it);  // reclaim empty leaf tables
  }
  return removed;
}

Status SoftMmu::Protect(AsId as, Vaddr va, Prot prot) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  if (huge_ratio_ > 1) {
    AddressSpace* space = FindSpace(shard, as);
    if (space != nullptr) {
      SplitHugeLocked(shard, space, Hvpn(va));  // protection split demotes the span
    }
  }
  Pte* pte = FindPte(shard, as, va);
  if (pte == nullptr) {
    return Status::kNotFound;
  }
  pte->prot = prot;
  ++shard.stats.protects;
  return Status::kOk;
}

Result<FrameIndex> SoftMmu::Translate(AsId as, Vaddr va, Access access) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  return TranslateLocked(shard, as, va, access, nullptr);
}

Result<FrameIndex> SoftMmu::TranslateAndAccess(AsId as, Vaddr va, Access access,
                                               FrameBodyRef body) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  Result<FrameIndex> frame = TranslateLocked(shard, as, va, access, nullptr);
  if (frame.ok()) {
    body(*frame);
  }
  return frame;
}

Result<FrameIndex> SoftMmu::TranslateAndAccessInfo(AsId as, Vaddr va, Access access,
                                                   FrameBodyRef body, MmuTranslateInfo* info) {
  *info = MmuTranslateInfo{};
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  Result<FrameIndex> frame = TranslateLocked(shard, as, va, access, info);
  if (frame.ok()) {
    body(*frame);
  }
  return frame;
}

Result<FrameIndex> SoftMmu::TranslateLocked(Shard& shard, AsId as, Vaddr va, Access access,
                                            MmuTranslateInfo* info) {
  ++shard.stats.translations;
  Pte* pte = FindPte(shard, as, va);
  if (pte != nullptr) {
    if (!ProtAllows(pte->prot, AccessProt(access))) {
      ++shard.stats.faults;
      return Status::kProtectionFault;
    }
    pte->referenced = true;
    if (access == Access::kWrite) {
      pte->dirty = true;
    }
    return pte->frame;
  }
  if (huge_ratio_ > 1) {
    AddressSpace* space = FindSpace(shard, as);
    if (space != nullptr) {
      auto it = space->huge.find(Hvpn(va));
      if (it != space->huge.end()) {
        HugePte& h = it->second;
        if (!ProtAllows(h.prot, AccessProt(access))) {
          ++shard.stats.faults;
          return Status::kProtectionFault;
        }
        h.referenced = true;
        if (access == Access::kWrite) {
          h.dirty = true;  // shared bit: the span as a whole is dirty
        }
        if (info != nullptr) {
          info->huge = true;
          info->huge_frame = h.frame;
        }
        return static_cast<FrameIndex>(h.frame + (Vpn(va) & (huge_ratio_ - 1)));
      }
    }
  }
  ++shard.stats.faults;
  return Status::kSegmentationFault;
}

Result<MmuEntry> SoftMmu::Lookup(AsId as, Vaddr va) const {
  Shard& shard = ShardFor(as);
  ReaderLock guard(shard.mu);
  const Pte* pte = FindPte(shard, as, va);
  if (pte != nullptr) {
    return MmuEntry{.frame = pte->frame,
                    .prot = pte->prot,
                    .referenced = pte->referenced,
                    .dirty = pte->dirty};
  }
  if (huge_ratio_ > 1) {
    // Per-base-page view of a huge span, without demoting: callers that audit
    // page-by-page state (debug invariants) see the frame each page resolves
    // to, flagged huge.
    auto sit = shard.spaces.find(as);
    if (sit != shard.spaces.end()) {
      auto it = sit->second.huge.find(Hvpn(va));
      if (it != sit->second.huge.end()) {
        const HugePte& h = it->second;
        return MmuEntry{.frame = static_cast<FrameIndex>(h.frame + (Vpn(va) & (huge_ratio_ - 1))),
                        .prot = h.prot,
                        .referenced = h.referenced,
                        .dirty = h.dirty,
                        .huge = true};
      }
    }
  }
  return Status::kNotFound;
}

Result<bool> SoftMmu::TestAndClearReferenced(AsId as, Vaddr va) {
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  Pte* pte = FindPte(shard, as, va);
  if (pte != nullptr) {
    bool was = pte->referenced;
    pte->referenced = false;
    return was;
  }
  if (huge_ratio_ > 1) {
    AddressSpace* space = FindSpace(shard, as);
    if (space != nullptr) {
      auto it = space->huge.find(Hvpn(va));
      if (it != space->huge.end()) {
        // Shared bit: clearing it through any page of the span clears it for
        // the whole span (the clock treats the span as one unit of reuse).
        bool was = it->second.referenced;
        it->second.referenced = false;
        return was;
      }
    }
  }
  return Status::kNotFound;
}

Status SoftMmu::MapHuge(AsId as, Vaddr va, FrameIndex frame, Prot prot) {
  if (huge_ratio_ <= 1) {
    return Status::kUnsupported;
  }
  if ((va & (page_size_ * huge_ratio_ - 1)) != 0) {
    return Status::kInvalidArgument;
  }
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  // The wide entry supersedes any base translations inside the span.
  for (size_t i = 0; i < huge_ratio_; ++i) {
    const Vaddr pva = va + i * page_size_;
    auto it = space->directory.find(DirIndex(pva));
    if (it == space->directory.end()) {
      continue;
    }
    Pte& pte = it->second->entries[LeafIndex(pva)];
    if (pte.valid) {
      pte = Pte{};
      if (--it->second->valid_count == 0) {
        space->directory.erase(it);
      }
    }
  }
  // Same-run re-map is a protection change in place, mirroring Map's contract:
  // the shared referenced/dirty bits survive.  A fresh insert default-
  // constructs frame = kInvalidFrame, so the bits start clear.
  HugePte& h = space->huge[Hvpn(va)];
  const bool same_run = h.frame == frame;
  h = HugePte{.frame = frame,
              .prot = prot,
              .referenced = same_run && h.referenced,
              .dirty = same_run && h.dirty};
  ++shard.stats.maps;
  return Status::kOk;
}

Status SoftMmu::DemoteHuge(AsId as, Vaddr va) {
  if (huge_ratio_ <= 1) {
    return Status::kNotFound;
  }
  Shard& shard = ShardFor(as);
  WriterLock guard(shard.mu);
  AddressSpace* space = FindSpace(shard, as);
  if (space == nullptr) {
    return Status::kNotFound;
  }
  return SplitHugeLocked(shard, space, Hvpn(va)) ? Status::kOk : Status::kNotFound;
}

size_t SoftMmu::LeafTableCount(AsId as) const {
  Shard& shard = ShardFor(as);
  ReaderLock guard(shard.mu);
  const AddressSpace* space = FindSpace(shard, as);
  return space == nullptr ? 0 : space->directory.size();
}

Mmu::Stats SoftMmu::stats() const {
  Stats out;
  for (Shard& shard : shards_) {
    ReaderLock guard(shard.mu);
    out.maps += shard.stats.maps;
    out.unmaps += shard.stats.unmaps;
    out.protects += shard.stats.protects;
    out.translations += shard.stats.translations;
    out.faults += shard.stats.faults;
    out.spaces_created += shard.stats.spaces_created;
    out.spaces_destroyed += shard.stats.spaces_destroyed;
  }
  return out;
}

void SoftMmu::ResetStats() {
  for (Shard& shard : shards_) {
    WriterLock guard(shard.mu);
    shard.stats = Stats{};
  }
}

}  // namespace gvm
