// HashMmu: an inverted/hashed page-table MMU model, in the style of the custom MMU
// of the Telmat T3000 mentioned in the paper's portability table (Table 5).
//
// A hash maps (address space, virtual page number) to a PTE.  It is behaviourally
// identical to SoftMmu; the PVM runs unmodified on either, which is the paper's
// portability claim made executable.
//
// Like SoftMmu, internal state is sharded by address space so concurrent CPUs in
// different address spaces do not serialize on one table lock (each shard owns
// the slice of the inverted table for its address spaces).
#ifndef GVM_SRC_HAL_HASH_MMU_H_
#define GVM_SRC_HAL_HASH_MMU_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/hal/mmu.h"
#include "src/sync/annotated_mutex.h"

namespace gvm {

class HashMmu final : public Mmu {
 public:
  static constexpr size_t kLockShards = 16;

  // `huge_pages` is the second granule in base pages (power of two); 0 picks
  // the default of 512KB / page_size, and a value <= 1 disables huge pages.
  explicit HashMmu(size_t page_size, size_t huge_pages = 0);

  Result<AsId> CreateAddressSpace() override;
  [[nodiscard]] Status DestroyAddressSpace(AsId as) override;
  [[nodiscard]] Status Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) override;
  [[nodiscard]] Status Unmap(AsId as, Vaddr va) override;
  [[nodiscard]] Result<MmuEntry> UnmapCollect(AsId as, Vaddr va) override;
  [[nodiscard]] Status Protect(AsId as, Vaddr va, Prot prot) override;
  Result<FrameIndex> Translate(AsId as, Vaddr va, Access access) override;
  Result<FrameIndex> TranslateAndAccess(AsId as, Vaddr va, Access access,
                                        FrameBodyRef body) override;
  Result<MmuEntry> Lookup(AsId as, Vaddr va) const override;
  Result<bool> TestAndClearReferenced(AsId as, Vaddr va) override;

  size_t huge_page_size() const override {
    return huge_ratio_ > 1 ? page_size_ * huge_ratio_ : 0;
  }
  [[nodiscard]] Status MapHuge(AsId as, Vaddr va, FrameIndex frame, Prot prot) override;
  [[nodiscard]] Status DemoteHuge(AsId as, Vaddr va) override;
  Result<FrameIndex> TranslateAndAccessInfo(AsId as, Vaddr va, Access access, FrameBodyRef body,
                                            MmuTranslateInfo* info) override;

  size_t page_size() const override { return page_size_; }
  // Aggregates the per-shard counters; a consistent total only at quiescence.
  Stats stats() const override;
  void ResetStats() override;
  const char* name() const override { return "HashMmu(inverted)"; }

 private:
  struct Pte {
    FrameIndex frame = kInvalidFrame;
    Prot prot = Prot::kNone;
    bool referenced = false;
    bool dirty = false;
  };

  // One huge translation: a huge-aligned span backed by the contiguous frame
  // run [frame, frame + huge_ratio_), with ONE shared referenced/dirty bit for
  // the whole span (see the Mmu huge-granule contract in mmu.h).
  struct HugePte {
    FrameIndex frame = kInvalidFrame;
    Prot prot = Prot::kNone;
    bool referenced = false;
    bool dirty = false;
  };

  struct KeyHash {
    size_t operator()(const std::pair<AsId, uint64_t>& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.first) << 40) ^ k.second);
    }
  };

  // Same atomic-walk guarantee as SoftMmu: translation and table updates for an
  // address space are serialized by its shard, so a translate-and-access cannot
  // interleave with an unmap.  No operation holds two shards at once (all
  // shards share rank kMmuShard; the lock-rank validator enforces this).
  // Read-only operations (Lookup, stats) take the shard shared.
  struct alignas(64) Shard {
    mutable SharedMutex mu{Rank::kMmuShard, "HashMmu::Shard::mu"};
    std::unordered_set<AsId> live_spaces GVM_GUARDED_BY(mu);
    // Per-space set of mapped VPNs, needed to tear a space down without scanning
    // the whole hash (real inverted-page-table systems keep similar lists).
    std::unordered_map<AsId, std::unordered_set<uint64_t>> space_pages GVM_GUARDED_BY(mu);
    std::unordered_map<std::pair<AsId, uint64_t>, Pte, KeyHash> table GVM_GUARDED_BY(mu);
    // Huge translations keyed by (as, huge vpn), plus the per-space huge-vpn
    // set that teardown walks (same reason space_pages exists).
    std::unordered_map<std::pair<AsId, uint64_t>, HugePte, KeyHash> huge_table GVM_GUARDED_BY(mu);
    std::unordered_map<AsId, std::unordered_set<uint64_t>> space_huge GVM_GUARDED_BY(mu);
    Stats stats GVM_GUARDED_BY(mu);
  };

  uint64_t Vpn(Vaddr va) const { return va >> page_shift_; }
  uint64_t Hvpn(Vaddr va) const { return Vpn(va) >> huge_shift_; }
  Shard& ShardFor(AsId as) const { return shards_[as % kLockShards]; }
  Result<FrameIndex> TranslateLocked(Shard& shard, AsId as, Vaddr va, Access access,
                                     MmuTranslateInfo* info) GVM_REQUIRES(shard.mu);
  // Splits the huge span (as, hvpn) into base PTEs.  Returns true if a span
  // existed (auto-demote sites use it to widen UnmapCollect's report).
  bool SplitHugeLocked(Shard& shard, AsId as, uint64_t hvpn) GVM_REQUIRES(shard.mu);

  const size_t page_size_;
  const unsigned page_shift_;
  const size_t huge_ratio_;   // base pages per huge page; <= 1 means disabled
  const unsigned huge_shift_;
  std::atomic<AsId> next_as_{0};
  mutable std::array<Shard, kLockShards> shards_;
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_HASH_MMU_H_
