// HashMmu: an inverted/hashed page-table MMU model, in the style of the custom MMU
// of the Telmat T3000 mentioned in the paper's portability table (Table 5).
//
// A single global hash maps (address space, virtual page number) to a PTE.  It is
// behaviourally identical to SoftMmu; the PVM runs unmodified on either, which is
// the paper's portability claim made executable.
#ifndef GVM_SRC_HAL_HASH_MMU_H_
#define GVM_SRC_HAL_HASH_MMU_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "src/hal/mmu.h"

namespace gvm {

class HashMmu final : public Mmu {
 public:
  explicit HashMmu(size_t page_size);

  Result<AsId> CreateAddressSpace() override;
  Status DestroyAddressSpace(AsId as) override;
  Status Map(AsId as, Vaddr va, FrameIndex frame, Prot prot) override;
  Status Unmap(AsId as, Vaddr va) override;
  Status Protect(AsId as, Vaddr va, Prot prot) override;
  Result<FrameIndex> Translate(AsId as, Vaddr va, Access access) override;
  Result<FrameIndex> TranslateAndAccess(AsId as, Vaddr va, Access access,
                                        const std::function<void(FrameIndex)>& body) override;
  Result<MmuEntry> Lookup(AsId as, Vaddr va) const override;
  Result<bool> TestAndClearReferenced(AsId as, Vaddr va) override;

  size_t page_size() const override { return page_size_; }
  const Stats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = Stats{}; }
  const char* name() const override { return "HashMmu(inverted)"; }

 private:
  struct Pte {
    FrameIndex frame = kInvalidFrame;
    Prot prot = Prot::kNone;
    bool referenced = false;
    bool dirty = false;
  };

  struct KeyHash {
    size_t operator()(const std::pair<AsId, uint64_t>& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.first) << 40) ^ k.second);
    }
  };

  uint64_t Vpn(Vaddr va) const { return va >> page_shift_; }
  Result<FrameIndex> TranslateLocked(AsId as, Vaddr va, Access access);

  const size_t page_size_;
  const unsigned page_shift_;
  // Same atomic-walk guarantee as SoftMmu: translation and table updates are
  // serialized so a translate-and-access cannot interleave with an unmap.
  mutable std::mutex mu_;
  AsId next_as_ = 0;
  std::unordered_set<AsId> live_spaces_;
  // Per-space set of mapped VPNs, needed to tear a space down without scanning the
  // whole hash (real inverted-page-table systems keep similar software lists).
  std::unordered_map<AsId, std::unordered_set<uint64_t>> space_pages_;
  std::unordered_map<std::pair<AsId, uint64_t>, Pte, KeyHash> table_;
  Stats stats_;
};

}  // namespace gvm

#endif  // GVM_SRC_HAL_HASH_MMU_H_
