// MinimalVm — the paper's "minimal implementation, suited for embedded real-time
// systems and small hardware configurations" (section 5.2).
//
// Real-time executives avoid demand paging entirely: creating a region eagerly
// allocates and maps every page, so no access ever faults and MMU maps stay fixed
// (the lockInMemory property holds for all memory, by construction).  Copies are
// always physical.  The point of this implementation is the GMI's portability
// claim: the Nucleus and everything above it runs unmodified on it.
#ifndef GVM_SRC_MINIMAL_MINIMAL_MM_H_
#define GVM_SRC_MINIMAL_MINIMAL_MM_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/vmbase/base_mm.h"

namespace gvm {

class MinimalVm;

class MinimalCache final : public Cache {
 public:
  MinimalCache(MinimalVm& vm, CacheId id, std::string name, SegmentDriver* driver);
  ~MinimalCache() override;

  CacheId id() const override { return id_; }
  const std::string& name() const override { return name_; }
  SegmentDriver* driver() const override { return driver_; }

  [[nodiscard]] Status CopyTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size,
                CopyPolicy policy) override;
  [[nodiscard]] Status MoveTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size) override;
  [[nodiscard]] Status Read(SegOffset offset, void* buffer, size_t size) override;
  [[nodiscard]] Status Write(SegOffset offset, const void* buffer, size_t size) override;
  [[nodiscard]] Status Destroy() override;

  [[nodiscard]] Status FillUp(SegOffset offset, const void* data, size_t size,
                Prot max_prot = Prot::kAll) override;
  [[nodiscard]] Status FillZero(SegOffset offset, size_t size) override;
  [[nodiscard]] Status CopyBack(SegOffset offset, void* buffer, size_t size) override;
  [[nodiscard]] Status MoveBack(SegOffset offset, void* buffer, size_t size) override;
  [[nodiscard]] Status Flush() override;
  [[nodiscard]] Status Sync() override;
  [[nodiscard]] Status Invalidate(SegOffset offset, size_t size) override;
  [[nodiscard]] Status SetProtection(SegOffset offset, size_t size, Prot max_prot) override;
  [[nodiscard]] Status LockInMemory(SegOffset offset, size_t size) override;
  [[nodiscard]] Status Unlock(SegOffset offset, size_t size) override;

  size_t ResidentPages() const override;
  size_t MappingCount() const override;

 private:
  friend class MinimalVm;

  MinimalVm& vm_;
  const CacheId id_;
  std::string name_;
  SegmentDriver* driver_;
  // Offset -> frame.  Everything is always resident; no stubs, no deferral.
  std::map<SegOffset, FrameIndex> frames_;
  size_t mapping_count_ = 0;
};

class MinimalVm final : public BaseMm {
 public:
  MinimalVm(PhysicalMemory& memory, Mmu& mmu);
  ~MinimalVm() override;

  Result<Cache*> CacheCreate(SegmentDriver* driver, std::string name) override;
  const char* name() const override { return "MinimalVm"; }

  size_t CacheCount() const GVM_EXCLUDES(mu_);

 protected:
  [[nodiscard]] Status ResolveFault(RegionImpl& region, const PageFault& fault, SegOffset page_offset,
                      MutexLock& lock) override GVM_REQUIRES(mu_);
  void OnRegionMapped(RegionImpl& region, MutexLock& lock) override GVM_REQUIRES(mu_);
  void OnRegionUnmapping(RegionImpl& region) override GVM_REQUIRES(mu_);
  void OnRegionSplit(RegionImpl& first, RegionImpl& second) override GVM_REQUIRES(mu_);
  void OnRegionProtection(RegionImpl& region) override GVM_REQUIRES(mu_);
  [[nodiscard]] Status OnRegionLock(RegionImpl& region, MutexLock& lock) override GVM_REQUIRES(mu_);
  [[nodiscard]] Status OnRegionUnlock(RegionImpl& region) override GVM_REQUIRES(mu_);

 private:
  friend class MinimalCache;

  // Ensure the page exists (allocating + pulling data as needed); lock held.
  Result<FrameIndex> EnsurePage(MutexLock& lock, MinimalCache& cache,
                                SegOffset page_offset) GVM_REQUIRES(mu_);
  [[nodiscard]] Status CacheAccess(MinimalCache& cache, SegOffset offset, void* buffer, size_t size,
                     bool write) GVM_EXCLUDES(mu_);

  CacheId next_cache_id_ GVM_GUARDED_BY(mu_) = 1;
  std::unordered_map<CacheId, std::unique_ptr<MinimalCache>> caches_ GVM_GUARDED_BY(mu_);
};

}  // namespace gvm

#endif  // GVM_SRC_MINIMAL_MINIMAL_MM_H_
