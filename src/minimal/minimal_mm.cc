#include "src/minimal/minimal_mm.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "src/util/align.h"

namespace gvm {

// ---------------------------------------------------------------------------
// MinimalVm
// ---------------------------------------------------------------------------

MinimalVm::MinimalVm(PhysicalMemory& memory, Mmu& mmu) : BaseMm(memory, mmu) {}

MinimalVm::~MinimalVm() {
  for (auto& [id, cache] : caches_) {
    for (auto& [offset, frame] : cache->frames_) {
      memory().FreeFrame(frame);
    }
    cache->frames_.clear();
  }
}

Result<Cache*> MinimalVm::CacheCreate(SegmentDriver* driver, std::string name) {
  MutexLock lock(mu_);
  CacheId id = next_cache_id_++;
  auto cache = std::make_unique<MinimalCache>(*this, id, std::move(name), driver);
  Cache* raw = cache.get();
  caches_.emplace(id, std::move(cache));
  return raw;
}

size_t MinimalVm::CacheCount() const {
  MutexLock lock(mu_);
  return caches_.size();
}

Result<FrameIndex> MinimalVm::EnsurePage(MutexLock& lock,
                                         MinimalCache& cache, SegOffset page_offset) {
  auto it = cache.frames_.find(page_offset);
  if (it != cache.frames_.end()) {
    return it->second;
  }
  Result<FrameIndex> frame = memory().AllocateFrame();
  if (!frame.ok()) {
    return frame.status();
  }
  memory().ZeroFrame(*frame);
  cache.frames_.emplace(page_offset, *frame);
  if (cache.driver_ != nullptr) {
    // Load the data synchronously; a real-time kernel would do this at
    // configuration time.  The driver calls FillUp, which finds the frame.
    SegmentDriver* driver = cache.driver_;
    lock.unlock();
    Status s = driver->PullIn(cache, page_offset, memory().page_size(), Access::kRead);
    lock.lock();
    if (s != Status::kOk) {
      return Status::kBusError;
    }
    auto reload = cache.frames_.find(page_offset);
    if (reload == cache.frames_.end()) {
      return Status::kBusError;
    }
    return reload->second;
  }
  return *frame;
}

// The minimal MM maps everything eagerly, so a fault can only mean a protection
// violation or an access outside the allocated pages.
Status MinimalVm::ResolveFault(RegionImpl& region, const PageFault& fault,
                               SegOffset page_offset, MutexLock& lock) {
  (void)region;
  (void)page_offset;
  (void)lock;
  return fault.protection_violation ? Status::kProtectionFault : Status::kSegmentationFault;
}

void MinimalVm::OnRegionMapped(RegionImpl& region, MutexLock& lock) {
  auto& cache = static_cast<MinimalCache&>(region.cache());
  cache.mapping_count_++;
  // Eagerly allocate and map every page of the region: no faults, ever.
  const size_t page = page_size();
  const AsId as = region.context().address_space();
  for (uint64_t delta = 0; delta < region.size(); delta += page) {
    Result<FrameIndex> frame = EnsurePage(lock, cache, region.offset() + delta);
    if (!frame.ok()) {
      break;  // partial maps surface as faults later; acceptable for the minimal MM
    }
    (void)mmu().Map(as, region.start() + delta, *frame, region.prot());
  }
}

void MinimalVm::OnRegionUnmapping(RegionImpl& region) {
  auto& cache = static_cast<MinimalCache&>(region.cache());
  cache.mapping_count_--;
  // One batched invalidation for the whole region (holes no-op).
  (void)mmu().UnmapRange(region.context().address_space(), region.start(),
                   region.size() / page_size());
}

void MinimalVm::OnRegionSplit(RegionImpl& first, RegionImpl& second) {
  (void)first;
  static_cast<MinimalCache&>(second.cache()).mapping_count_++;
}

void MinimalVm::OnRegionProtection(RegionImpl& region) {
  // The protection is uniform across the region, so this is the textbook
  // ProtectRange consumer: one shootdown covers every downgraded page.
  (void)mmu().ProtectRange(region.context().address_space(), region.start(),
                     region.size() / page_size(), region.prot());
}

Status MinimalVm::OnRegionLock(RegionImpl& region, MutexLock& lock) {
  // Everything is always locked in memory.
  (void)region;
  (void)lock;
  return Status::kOk;
}

Status MinimalVm::OnRegionUnlock(RegionImpl& region) {
  (void)region;
  return Status::kOk;
}

Status MinimalVm::CacheAccess(MinimalCache& cache, SegOffset offset, void* buffer, size_t size,
                              bool write) {
  MutexLock lock(mu_);
  const size_t page = page_size();
  auto* bytes = static_cast<std::byte*>(buffer);
  size_t done = 0;
  while (done < size) {
    const SegOffset at = offset + done;
    const SegOffset page_off = AlignDown(at, page);
    size_t chunk = page - (at - page_off);
    if (chunk > size - done) {
      chunk = size - done;
    }
    Result<FrameIndex> frame = EnsurePage(lock, cache, page_off);
    if (!frame.ok()) {
      return frame.status();
    }
    std::byte* data = memory().FrameData(*frame) + (at - page_off);
    if (write) {
      std::memcpy(data, bytes + done, chunk);
    } else {
      std::memcpy(bytes + done, data, chunk);
    }
    done += chunk;
  }
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// MinimalCache
// ---------------------------------------------------------------------------

MinimalCache::MinimalCache(MinimalVm& vm, CacheId id, std::string name, SegmentDriver* driver)
    : vm_(vm), id_(id), name_(std::move(name)), driver_(driver) {}

MinimalCache::~MinimalCache() = default;

Status MinimalCache::CopyTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset,
                            size_t size, CopyPolicy policy) {
  // Every copy is physical in the minimal MM, whatever the requested policy.
  (void)policy;
  std::vector<std::byte> bounce(size);
  GVM_RETURN_IF_ERROR(Read(src_offset, bounce.data(), size));
  return dst.Write(dst_offset, bounce.data(), size);
}

Status MinimalCache::MoveTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset,
                            size_t size) {
  GVM_RETURN_IF_ERROR(CopyTo(dst, src_offset, dst_offset, size, CopyPolicy::kEager));
  return Invalidate(src_offset, size);
}

Status MinimalCache::Read(SegOffset offset, void* buffer, size_t size) {
  return vm_.CacheAccess(*this, offset, buffer, size, /*write=*/false);
}

Status MinimalCache::Write(SegOffset offset, const void* buffer, size_t size) {
  return vm_.CacheAccess(*this, offset, const_cast<void*>(buffer), size, /*write=*/true);
}

Status MinimalCache::Destroy() {
  MutexLock lock(vm_.mu_);
  if (mapping_count_ > 0) {
    return Status::kBusy;
  }
  for (auto& [offset, frame] : frames_) {
    vm_.memory().FreeFrame(frame);
  }
  frames_.clear();
  vm_.caches_.erase(id_);  // destroys *this
  return Status::kOk;
}

Status MinimalCache::FillUp(SegOffset offset, const void* data, size_t size, Prot max_prot) {
  (void)max_prot;  // the minimal MM has no per-page protection caps
  return Write(offset, data, size);
}

Status MinimalCache::FillZero(SegOffset offset, size_t size) {
  std::vector<std::byte> zeros(size);
  return Write(offset, zeros.data(), size);
}

Status MinimalCache::CopyBack(SegOffset offset, void* buffer, size_t size) {
  return Read(offset, buffer, size);
}

Status MinimalCache::MoveBack(SegOffset offset, void* buffer, size_t size) {
  GVM_RETURN_IF_ERROR(Read(offset, buffer, size));
  return Invalidate(offset, size);
}

Status MinimalCache::Flush() {
  GVM_RETURN_IF_ERROR(Sync());
  MutexLock lock(vm_.mu_);
  if (mapping_count_ > 0) {
    return Status::kBusy;  // fixed maps: cannot discard mapped pages
  }
  for (auto& [offset, frame] : frames_) {
    vm_.memory().FreeFrame(frame);
  }
  frames_.clear();
  return Status::kOk;
}

Status MinimalCache::Sync() {
  if (driver_ == nullptr) {
    return Status::kOk;
  }
  // Push every page; the minimal MM has no dirty tracking (memory is the truth).
  std::vector<std::pair<SegOffset, FrameIndex>> pages;
  {
    MutexLock lock(vm_.mu_);
    pages.assign(frames_.begin(), frames_.end());
  }
  for (const auto& [offset, frame] : pages) {
    GVM_RETURN_IF_ERROR(driver_->PushOut(*this, offset, vm_.memory().page_size()));
  }
  return Status::kOk;
}

Status MinimalCache::Invalidate(SegOffset offset, size_t size) {
  MutexLock lock(vm_.mu_);
  const size_t page = vm_.memory().page_size();
  for (SegOffset at = AlignDown(offset, page); at < offset + size; at += page) {
    auto it = frames_.find(at);
    if (it != frames_.end()) {
      vm_.memory().FreeFrame(it->second);
      frames_.erase(it);
    }
  }
  return Status::kOk;
}

Status MinimalCache::SetProtection(SegOffset offset, size_t size, Prot max_prot) {
  (void)offset;
  (void)size;
  (void)max_prot;
  return Status::kUnsupported;  // real-time configuration: protections are static
}

Status MinimalCache::LockInMemory(SegOffset offset, size_t size) {
  (void)offset;
  (void)size;
  return Status::kOk;  // always locked
}

Status MinimalCache::Unlock(SegOffset offset, size_t size) {
  (void)offset;
  (void)size;
  return Status::kOk;
}

size_t MinimalCache::ResidentPages() const {
  MutexLock lock(vm_.mu_);
  return frames_.size();
}

size_t MinimalCache::MappingCount() const {
  MutexLock lock(vm_.mu_);
  return mapping_count_;
}

}  // namespace gvm
