// Capability-annotated mutex wrappers: the static half of the lock
// discipline.  Built on Clang Thread Safety Analysis — under clang the whole
// tree compiles with -Werror=thread-safety, so "which lock guards this field"
// and "who must hold it" are machine-checked; under GCC the attributes expand
// to nothing and the types behave like their std counterparts.  Every mutex
// also carries a lock_rank::Rank, giving the runtime validator
// (lock_rank.h) the dynamic ordering checks TSA cannot express.
//
// Lock-rank table (acquire strictly downward; full details in DESIGN.md §10):
//
//   rank | Rank enum          | capability                   | guards
//   -----+--------------------+------------------------------+------------------------------------------
//    -1  | kUnranked          | ad-hoc test mutexes          | (exempt from ordering; recursion checked)
//     4  | kSegmentManager    | SegmentManager::mu_          | entry list, mapper table, RPC stats
//     6  | kMapperServe       | MapperServer::serve_mu_      | one-at-a-time dispatch (bypassed by DSM)
//     7  | kDsmDirectory      | DsmCluster segment mu        | per-segment owner/sharer tables, registry
//     8  | kDsmNet            | SimNet::mu_                  | link seq/dedup/partition state (not held
//         |                    |                              | across handler delivery)
//    10  | kClient            | mapper/test driver locks     | segment-driver state; drivers re-enter MM
//    20  | kIpc               | Ipc::mu_                     | port table, queues, dead flags
//    30  | kMmManager         | BaseMm::mu_                  | regions, contexts, caches, stubs, stats
//    32  | kFrameMagazine     | PhysicalMemory Magazine::mu  | one CPU's cached frames (never 2 at once)
//    34  | kFrameFreeList     | PhysicalMemory::mu_          | shared frame free list (refill/drain path)
//    36  | kPageoutDaemon     | PagedVm::daemon_mu_          | paging-daemon wake latch (leaf for holders)
//    40  | kMmuShard          | SoftMmu/HashMmu Shard::mu    | one AS shard's page tables (never 2 at once)
//    50  | kSleepQueueTable   | SleepQueue::table_mutex_     | waiter table (under the caller's mu_)
//    60  | kFaultInjector     | FaultInjector::mu_           | plans, RNG, per-site counters
//    70  | kLog               | log.cc g_log_mutex           | stderr interleaving (leaf)
//
// The per-CPU TLB (src/hal/tlb.h) holds no mutexes: it is lock-free by
// construction (atomics + epoch shootdown) and is therefore absent here.
#ifndef GVM_SRC_SYNC_ANNOTATED_MUTEX_H_
#define GVM_SRC_SYNC_ANNOTATED_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/sync/lock_rank.h"

// ---------------------------------------------------------------------------
// Clang thread-safety attribute macros (no-ops elsewhere).
// ---------------------------------------------------------------------------
#if defined(__clang__) && (!defined(SWIG))
#define GVM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GVM_THREAD_ANNOTATION(x)
#endif

#define GVM_CAPABILITY(x) GVM_THREAD_ANNOTATION(capability(x))
#define GVM_SCOPED_CAPABILITY GVM_THREAD_ANNOTATION(scoped_lockable)
#define GVM_GUARDED_BY(x) GVM_THREAD_ANNOTATION(guarded_by(x))
#define GVM_PT_GUARDED_BY(x) GVM_THREAD_ANNOTATION(pt_guarded_by(x))
#define GVM_REQUIRES(...) \
  GVM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GVM_REQUIRES_SHARED(...) \
  GVM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define GVM_ACQUIRE(...) GVM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GVM_ACQUIRE_SHARED(...) \
  GVM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define GVM_RELEASE(...) GVM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GVM_RELEASE_SHARED(...) \
  GVM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define GVM_TRY_ACQUIRE(...) \
  GVM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GVM_EXCLUDES(...) GVM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GVM_ASSERT_CAPABILITY(x) GVM_THREAD_ANNOTATION(assert_capability(x))
#define GVM_RETURN_CAPABILITY(x) GVM_THREAD_ANNOTATION(lock_returned(x))
#define GVM_NO_THREAD_SAFETY_ANALYSIS \
  GVM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gvm {

using lock_rank::Rank;

// A std::mutex that is a TSA capability and participates in runtime
// lock-rank validation.  Prefer the RAII types (MutexLock) below; Lock() /
// Unlock() exist for the rare hand-over-hand or adoption-free sites.
class GVM_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(Rank rank = Rank::kUnranked, const char* name = "Mutex")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GVM_ACQUIRE() {
    lock_rank::BeforeAcquire(this, rank_, name_);
    mu_.lock();
  }
  void Unlock() GVM_RELEASE() {
    mu_.unlock();
    lock_rank::OnRelease(this);
  }
  bool TryLock() GVM_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::BeforeAcquire(this, rank_, name_);
    return true;
  }
  // Runtime check that the calling thread holds this mutex (lock_rank must
  // be enforced for it to have teeth); statically tells TSA the same.
  void AssertHeld() const GVM_ASSERT_CAPABILITY(this) {
    lock_rank::AssertHeld(this, name_);
  }

  Rank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  // For CondVar::Wait only: waiting atomically releases and reacquires the
  // native mutex, which RAII wrappers cannot express.
  std::mutex& native() { return mu_; }

  std::mutex mu_;
  const Rank rank_;
  const char* const name_;
};

// A std::shared_mutex capability with the same rank bookkeeping.  The rank
// validator treats shared and exclusive holds identically (a reader blocks a
// writer just as effectively for deadlock purposes).
class GVM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(Rank rank = Rank::kUnranked,
                       const char* name = "SharedMutex")
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() GVM_ACQUIRE() {
    lock_rank::BeforeAcquire(this, rank_, name_);
    mu_.lock();
  }
  void Unlock() GVM_RELEASE() {
    mu_.unlock();
    lock_rank::OnRelease(this);
  }
  void LockShared() GVM_ACQUIRE_SHARED() {
    lock_rank::BeforeAcquire(this, rank_, name_);
    mu_.lock_shared();
  }
  void UnlockShared() GVM_RELEASE_SHARED() {
    mu_.unlock_shared();
    lock_rank::OnRelease(this);
  }
  void AssertHeld() const GVM_ASSERT_CAPABILITY(this) {
    lock_rank::AssertHeld(this, name_);
  }

  Rank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const Rank rank_;
  const char* const name_;
};

// RAII exclusive lock over Mutex, with unique_lock-style transient drop.
//
// The lowercase unlock()/lock()/owns_lock() trio deliberately carries no TSA
// annotations: they model the "drop the manager lock across a segment-driver
// upcall, retake it after" protocol, whose dropped window TSA cannot track
// through a by-reference scoped capability.  Statically the capability is
// treated as held for the guard's whole scope (the steady-state contract
// that REQUIRES callees check); the dropped window itself is covered by the
// runtime rank validator and TSan.
class GVM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GVM_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.Lock();
  }
  ~MutexLock() GVM_RELEASE() {
    if (owned_) mu_.Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Transient drop/retake (un-annotated; see class comment).
  void unlock() {
    mu_.Unlock();
    owned_ = false;
  }
  void lock() {
    mu_.Lock();
    owned_ = true;
  }
  bool owns_lock() const { return owned_; }
  Mutex& mutex() { return mu_; }

 private:
  Mutex& mu_;
  bool owned_;
};

// RAII shared (reader) lock over SharedMutex.
class GVM_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) GVM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() GVM_RELEASE() { mu_.UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII exclusive (writer) lock over SharedMutex.
class GVM_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) GVM_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() GVM_RELEASE() { mu_.Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable over Mutex.  Wait() REQUIRES the mutex: TSA verifies
// every waiter actually holds it, and the rank validator's held stack is
// kept truthful across the sleep (the mutex is released while blocked).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) GVM_REQUIRES(mu) {
    lock_rank::OnRelease(&mu);
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
    lock_rank::BeforeAcquire(&mu, mu.rank(), mu.name());
  }
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) GVM_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }
  // Timed wait: returns false if `timeout_us` elapsed without a notification
  // (callers re-check their predicate either way — spurious wakeups allowed).
  // Same rank bookkeeping as Wait(): the held stack stays truthful across the
  // blocked window.
  bool WaitFor(Mutex& mu, uint64_t timeout_us) GVM_REQUIRES(mu) {
    lock_rank::OnRelease(&mu);
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    std::cv_status status =
        cv_.wait_for(native, std::chrono::microseconds(timeout_us));
    native.release();
    lock_rank::BeforeAcquire(&mu, mu.rank(), mu.name());
    return status == std::cv_status::no_timeout;
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gvm

#endif  // GVM_SRC_SYNC_ANNOTATED_MUTEX_H_
