#include "src/sync/sleep_queue.h"

namespace gvm {

// Correctness note: callers must hold the same mutex (`lock`) when calling Wait and
// when calling WakeAll.  That mutex — not table_mutex_ — is what closes the missed-
// wakeup window: a waiter holds it continuously from deciding to sleep until
// cv.wait() atomically releases it, so a waker cannot complete the state change and
// notify in between.  table_mutex_ only protects the waiter table itself.

void SleepQueue::Wait(uint64_t key, std::unique_lock<std::mutex>& lock) {
  Waiters* waiters;
  {
    std::lock_guard<std::mutex> table_lock(table_mutex_);
    waiters = &table_[key];  // unordered_map values are node-stable
    ++waiters->count;
  }
  waiters->cv.wait(lock);
  {
    std::lock_guard<std::mutex> table_lock(table_mutex_);
    if (--waiters->count == 0) {
      table_.erase(key);
    }
  }
}

void SleepQueue::WakeAll(uint64_t key) {
  std::lock_guard<std::mutex> table_lock(table_mutex_);
  auto it = table_.find(key);
  if (it != table_.end()) {
    ++it->second.generation;
    it->second.cv.notify_all();
  }
}

size_t SleepQueue::SleeperCount() const {
  std::lock_guard<std::mutex> table_lock(table_mutex_);
  size_t total = 0;
  for (const auto& [key, waiters] : table_) {
    total += static_cast<size_t>(waiters.count);
  }
  return total;
}

}  // namespace gvm
