#include "src/sync/sleep_queue.h"

namespace gvm {

// Correctness note: callers must hold the same mutex (`mu`) when calling Wait
// and when calling WakeAll.  That mutex — not table_mutex_ — is what closes the
// missed-wakeup window: a waiter holds it continuously from deciding to sleep
// until CondVar::Wait atomically releases it, so a waker cannot complete the
// state change and notify in between.  table_mutex_ only protects the waiter
// table itself, and ranks above every caller mutex so it can nest inside any
// of them.

void SleepQueue::Wait(uint64_t key, Mutex& mu) {
  mu.AssertHeld();
  Waiters* waiters;
  {
    MutexLock table_lock(table_mutex_);
    waiters = &table_[key];  // unordered_map values are node-stable
    ++waiters->count;
  }
  waiters->cv.Wait(mu);
  {
    MutexLock table_lock(table_mutex_);
    if (--waiters->count == 0) {
      table_.erase(key);
    }
  }
}

void SleepQueue::WakeAll(uint64_t key, Mutex& mu) {
  mu.AssertHeld();
  MutexLock table_lock(table_mutex_);
  auto it = table_.find(key);
  if (it != table_.end()) {
    ++it->second.generation;
    it->second.cv.NotifyAll();
  }
}

size_t SleepQueue::SleeperCount() const {
  MutexLock table_lock(table_mutex_);
  size_t total = 0;
  for (const auto& [key, waiters] : table_) {
    total += static_cast<size_t>(waiters.count);
  }
  return total;
}

}  // namespace gvm
