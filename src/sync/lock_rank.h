// Runtime lock-rank validation — the dynamic half of the lock discipline.
//
// Clang Thread Safety Analysis (annotated_mutex.h) proves *which* lock guards
// *what* at compile time, but it cannot express cross-instance ordering: two
// MMU shards of equal rank, a manager lock taken inside an upcall that should
// have dropped it, or a dynamic acquisition order that deadlocks only under a
// particular interleaving.  This module checks those at runtime in debug
// builds: every annotated mutex carries a Rank, each thread keeps a stack of
// the locks it holds, and an acquisition that does not strictly increase the
// rank aborts the process *before* blocking — with both the stack that
// acquired the conflicting lock and the stack attempting the new one — so an
// inversion is diagnosed at its first occurrence instead of hanging as a
// one-in-a-thousand deadlock.
//
// Enforcement defaults to on in debug builds (NDEBUG not defined) and off in
// optimized builds; the GVM_LOCK_RANK environment variable (0/1) and
// SetEnforced() override in both directions.  When enforcement is off the
// per-acquisition cost is one relaxed atomic load.
#ifndef GVM_SRC_SYNC_LOCK_RANK_H_
#define GVM_SRC_SYNC_LOCK_RANK_H_

namespace gvm {
namespace lock_rank {

// The global lock hierarchy: a thread may only acquire locks of strictly
// increasing rank.  Ranks are spaced so future subsystems can slot between
// existing levels.  See DESIGN.md section 10 for the full capability table.
enum class Rank : int {
  // Exempt from ordering (still checked for recursive acquisition).  Used by
  // ad-hoc test mutexes that have no place in the kernel hierarchy.
  kUnranked = -1,
  // SegmentManager::mu_ (entries, mapper table, RPC stats).  Below every other
  // lock: manager code calls onward into mapper stores (kClient), IPC (kIpc)
  // and the memory managers (kMmManager) while holding it — and is never
  // entered with any of those held (PVM upcalls drop the manager lock first).
  kSegmentManager = 4,
  // MapperServer::serve_mu_: serializes request dispatch into one mapper
  // instance (the in-process analogue of the serve thread).  Dispatch calls
  // into the mapper's backing store (kClient) and IPC (kIpc).  Mappers that
  // synchronize internally (the DSM coherent mapper, whose recalls nest
  // servers across sites) bypass this lock entirely — see
  // Mapper::thread_safe_dispatch().
  kMapperServe = 6,
  // The DSM home directory (per-segment owner/sharer tables and the segment
  // registry).  Entered only from coherent-mapper upcall context with no
  // kernel lock held, and held across appends to the directory WAL (kClient)
  // — never across a network send, whose delivery re-enters remote kernels.
  kDsmDirectory = 7,
  // SimNet link state (sequence numbers, dedup caches, partitions, counters).
  // Taken briefly inside SimNet::Call; always released before a message
  // handler runs (handlers recall into remote sites' kernels, whose locks
  // rank both above and below this one).
  kDsmNet = 8,
  // Mapper clients and test segment drivers: invoked via upcalls with every
  // kernel lock dropped, and may legitimately re-enter the managers below.
  kClient = 10,
  // Nucleus IPC port table.  Deliberately *below* the manager lock: blocking
  // on an IPC queue while holding a manager lock would stall every fault in
  // the system, so the validator treats it as an inversion.
  kIpc = 20,
  // The manager-wide mutex of BaseMm (PVM / ShadowVm / MinimalVm).
  kMmManager = 30,
  // PhysicalMemory per-CPU frame magazines.  Above kMmManager (frame
  // alloc/free runs under a manager lock) and below the global free list,
  // which a magazine locks while refilling/draining.  Never two magazines at
  // once on one thread (equal rank trips the validator): the raid path in
  // AllocateFrame releases the thread's own magazine before probing victims
  // one at a time.
  kFrameMagazine = 32,
  // PhysicalMemory's shared free list — the slow path magazines batch against.
  kFrameFreeList = 34,
  // The paging daemon's wake latch (PagedVm pageout thread, DESIGN.md §15).
  // Above the frame locks so PhysicalMemory's low-water hook may kick the
  // daemon right after an allocation, and above kMmManager so the manager can
  // kick it while holding mu_; the daemon itself never holds the latch while
  // acquiring any other lock.
  kPageoutDaemon = 36,
  // SoftMmu / HashMmu per-address-space lock shards.  Acquired under the
  // manager lock on the table-update path and bare on the CPU access path;
  // never two shards at once (equal rank trips the validator).
  kMmuShard = 40,
  // SleepQueue's internal waiter table (taken inside Wait/WakeAll while the
  // caller's manager lock is held).
  kSleepQueueTable = 50,
  // FaultInjector plan/counter state: Check() is called from allocation and
  // I/O sites under any of the locks above.
  kFaultInjector = 60,
  // Logging is a leaf: GVM_LOG can fire under any lock in the system.
  kLog = 70,
};

// Whether violations are currently being checked and aborted on.
bool Enforced();
// Force enforcement on or off (overrides the build-type/environment default).
// Tests force it on so death tests work in optimized builds too.
void SetEnforced(bool on);

// Called by Mutex/SharedMutex immediately *before* blocking on the underlying
// lock: validates the acquisition against this thread's held stack (aborting
// on rank inversion or recursive acquisition) and pushes the new lock.
void BeforeAcquire(const void* mu, Rank rank, const char* name);
// Called after the underlying unlock (or before a CondVar wait releases the
// mutex): pops `mu` from this thread's held stack.
void OnRelease(const void* mu);
// Aborts (when enforced) unless this thread's held stack contains `mu`.
// Backs Mutex::AssertHeld — the runtime teeth behind "caller must hold".
void AssertHeld(const void* mu, const char* name);

// Number of locks the calling thread currently holds (tests/diagnostics).
int HeldCount();

}  // namespace lock_rank
}  // namespace gvm

#endif  // GVM_SRC_SYNC_LOCK_RANK_H_
