#include "src/sync/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define GVM_LOCK_RANK_HAVE_BACKTRACE 1
#else
#define GVM_LOCK_RANK_HAVE_BACKTRACE 0
#endif

namespace gvm {
namespace lock_rank {
namespace {

constexpr int kMaxHeld = 32;
constexpr int kMaxFrames = 24;

struct HeldLock {
  const void* mu = nullptr;
  Rank rank = Rank::kUnranked;
  const char* name = nullptr;
#if GVM_LOCK_RANK_HAVE_BACKTRACE
  void* frames[kMaxFrames];
  int frame_count = 0;
#endif
};

// Per-thread stack of held locks, in acquisition order.  Fixed-size and
// trivially destructible so it is safe to use from any thread at any point
// in its lifetime (no dynamic TLS destructor ordering hazards).
thread_local HeldLock t_held[kMaxHeld];
thread_local int t_held_count = 0;

// 0 = uninitialized, 1 = off, 2 = on.  Initialized lazily from NDEBUG and
// the GVM_LOCK_RANK environment variable; SetEnforced overrides.
std::atomic<int> g_enforced{0};

int ResolveEnforcedDefault() {
#ifdef NDEBUG
  int def = 1;
#else
  int def = 2;
#endif
  const char* env = std::getenv("GVM_LOCK_RANK");
  if (env != nullptr && env[0] != '\0') {
    def = (env[0] == '0') ? 1 : 2;
  }
  return def;
}

int EnforcedState() {
  int state = g_enforced.load(std::memory_order_relaxed);
  if (state == 0) {
    state = ResolveEnforcedDefault();
    int expected = 0;
    if (!g_enforced.compare_exchange_strong(expected, state,
                                            std::memory_order_relaxed)) {
      state = expected;
    }
  }
  return state;
}

void DumpBacktrace(const char* label, void* const* frames, int count) {
#if GVM_LOCK_RANK_HAVE_BACKTRACE
  std::fprintf(stderr, "  %s\n", label);
  if (count > 0) {
    backtrace_symbols_fd(const_cast<void* const*>(frames), count, 2);
  } else {
    std::fprintf(stderr, "    (no backtrace captured)\n");
  }
#else
  (void)label;
  (void)frames;
  (void)count;
#endif
}

void DumpHeldStack() {
  std::fprintf(stderr, "lock-rank: thread holds %d lock(s):\n", t_held_count);
  for (int i = 0; i < t_held_count; ++i) {
    std::fprintf(stderr, "  [%d] %s (rank %d, %p)\n", i,
                 t_held[i].name != nullptr ? t_held[i].name : "?",
                 static_cast<int>(t_held[i].rank), t_held[i].mu);
  }
}

[[noreturn]] void Violation(const char* kind, const HeldLock& prior,
                            const void* mu, Rank rank, const char* name) {
  std::fprintf(stderr,
               "lock-rank violation: %s: acquiring %s (rank %d, %p) while "
               "holding %s (rank %d, %p)\n",
               kind, name != nullptr ? name : "?", static_cast<int>(rank), mu,
               prior.name != nullptr ? prior.name : "?",
               static_cast<int>(prior.rank), prior.mu);
  DumpHeldStack();
#if GVM_LOCK_RANK_HAVE_BACKTRACE
  DumpBacktrace("stack that acquired the held lock:", prior.frames,
                prior.frame_count);
  void* frames[kMaxFrames];
  int count = backtrace(frames, kMaxFrames);
  DumpBacktrace("stack attempting the new acquisition:", frames, count);
#endif
  std::abort();
}

}  // namespace

bool Enforced() { return EnforcedState() == 2; }

void SetEnforced(bool on) {
  g_enforced.store(on ? 2 : 1, std::memory_order_relaxed);
}

void BeforeAcquire(const void* mu, Rank rank, const char* name) {
  if (!Enforced()) return;
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i].mu == mu) {
      Violation("recursive acquisition", t_held[i], mu, rank, name);
    }
  }
  if (rank != Rank::kUnranked && t_held_count > 0) {
    // Ordering is checked against the highest-ranked lock currently held
    // (not just the most recent): rank must strictly increase, so equal
    // ranks — e.g. two MMU shards — are inversions too.
    int worst = -1;
    for (int i = 0; i < t_held_count; ++i) {
      if (t_held[i].rank == Rank::kUnranked) continue;
      if (worst < 0 || t_held[i].rank >= t_held[worst].rank) worst = i;
    }
    if (worst >= 0 && t_held[worst].rank >= rank) {
      Violation("rank inversion", t_held[worst], mu, rank, name);
    }
  }
  if (t_held_count >= kMaxHeld) {
    std::fprintf(stderr,
                 "lock-rank violation: thread holds more than %d locks "
                 "acquiring %s\n",
                 kMaxHeld, name != nullptr ? name : "?");
    DumpHeldStack();
    std::abort();
  }
  HeldLock& slot = t_held[t_held_count++];
  slot.mu = mu;
  slot.rank = rank;
  slot.name = name;
#if GVM_LOCK_RANK_HAVE_BACKTRACE
  slot.frame_count = backtrace(slot.frames, kMaxFrames);
#endif
}

void OnRelease(const void* mu) {
  // Pop even when enforcement is off, so the stack stays consistent if
  // enforcement is toggled while locks are held.
  // Locks may be released in any order; compact the stack.
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mu == mu) {
      for (int j = i; j + 1 < t_held_count; ++j) {
        t_held[j] = t_held[j + 1];
      }
      --t_held_count;
      return;
    }
  }
  // Releasing a lock we never saw acquired: tolerated, because enforcement
  // may have been flipped on while locks were already held.
}

void AssertHeld(const void* mu, const char* name) {
  if (!Enforced()) return;
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i].mu == mu) return;
  }
  std::fprintf(stderr,
               "lock-rank violation: %s (%p) required but not held by this "
               "thread\n",
               name != nullptr ? name : "?", mu);
  DumpHeldStack();
  std::abort();
}

int HeldCount() { return t_held_count; }

}  // namespace lock_rank
}  // namespace gvm
