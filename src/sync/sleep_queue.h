// Keyed sleep/wakeup queues — the "simple synchronization interface" the host
// kernel must provide to the memory manager (paper section 2).
//
// The PVM uses these for synchronization page stubs: while a pullIn or pushOut is
// in transit for some (cache, page), any concurrent access to that page sleeps on
// the key and is woken when the transfer completes (section 4.1.2).
#ifndef GVM_SRC_SYNC_SLEEP_QUEUE_H_
#define GVM_SRC_SYNC_SLEEP_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace gvm {

class SleepQueue {
 public:
  // Blocks until WakeAll(key) is called.  `lock` must be held on entry; it is
  // released while sleeping and reacquired before returning (classic kernel
  // sleep semantics).  Spurious wakeups are possible: callers re-check state.
  void Wait(uint64_t key, std::unique_lock<std::mutex>& lock);

  // Wakes every thread sleeping on `key`.  The caller should hold the same mutex
  // the sleepers used, but this is not enforced.
  void WakeAll(uint64_t key);

  // Number of threads currently asleep on any key (for tests).
  size_t SleeperCount() const;

 private:
  struct Waiters {
    std::condition_variable cv;
    int count = 0;
    uint64_t generation = 0;
  };

  mutable std::mutex table_mutex_;
  std::unordered_map<uint64_t, Waiters> table_;
};

}  // namespace gvm

#endif  // GVM_SRC_SYNC_SLEEP_QUEUE_H_
