// Keyed sleep/wakeup queues — the "simple synchronization interface" the host
// kernel must provide to the memory manager (paper section 2).
//
// The PVM uses these for synchronization page stubs: while a pullIn or pushOut is
// in transit for some (cache, page), any concurrent access to that page sleeps on
// the key and is woken when the transfer completes (section 4.1.2).
#ifndef GVM_SRC_SYNC_SLEEP_QUEUE_H_
#define GVM_SRC_SYNC_SLEEP_QUEUE_H_

#include <cstdint>
#include <unordered_map>

#include "src/sync/annotated_mutex.h"

namespace gvm {

class SleepQueue {
 public:
  // Blocks until WakeAll(key) is called.  `mu` must be held on entry (enforced
  // by TSA and by a runtime AssertHeld); it is released while sleeping and
  // reacquired before returning (classic kernel sleep semantics).  Spurious
  // wakeups are possible: callers re-check state.
  void Wait(uint64_t key, Mutex& mu) GVM_REQUIRES(mu);

  // Wakes every thread sleeping on `key`.  The caller must hold the same mutex
  // the sleepers used — that mutex, not table_mutex_, closes the missed-wakeup
  // window — so the former soft contract is now enforced like Wait's.
  void WakeAll(uint64_t key, Mutex& mu) GVM_REQUIRES(mu);

  // Number of threads currently asleep on any key (for tests).
  size_t SleeperCount() const;

 private:
  struct Waiters {
    CondVar cv;
    int count = 0;
    uint64_t generation = 0;
  };

  mutable Mutex table_mutex_{Rank::kSleepQueueTable, "SleepQueue::table_mutex_"};
  std::unordered_map<uint64_t, Waiters> table_ GVM_GUARDED_BY(table_mutex_);
};

}  // namespace gvm

#endif  // GVM_SRC_SYNC_SLEEP_QUEUE_H_
