// Deterministic, seedable fault injection for the whole memory-management stack.
//
// The paper's design assumes an unreliable outside world: segments live behind
// external mappers reached over IPC (section 5.1.1), and pullIn/pushOut can fail
// or block at any time (section 4.1.2).  This module lets tests and tools provoke
// those rare events on demand and *reproducibly*: every injection decision is
// driven either by deterministic hit counting (fail-Nth) or by a seeded SplitMix64
// stream, so a failing chaos run replays bit-identically from its seed.
//
// Usage: create one FaultInjector per simulated world, program per-site plans,
// and hand the injector to the components that host injection sites
// (PhysicalMemory, Ipc, SegmentManager, the mappers, the test drivers).  A null
// injector pointer everywhere means zero overhead and unchanged behaviour.
#ifndef GVM_SRC_FAULT_FAULT_INJECTOR_H_
#define GVM_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/sync/annotated_mutex.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace gvm {

// Named injection sites.  Each site is evaluated by the component owning it at
// the moment the real operation would be attempted.
enum class FaultSite : int {
  kMapperRead = 0,   // mapper read RPC / driver pullIn
  kMapperWrite,      // mapper write RPC / driver pushOut
  kMapperAllocTemp,  // default-mapper temporary ("swap") segment allocation RPC
  kIpcSend,          // Nucleus IPC send
  kIpcReceive,       // Nucleus IPC receive
  kFrameAlloc,       // physical page-frame allocation
  kSwapAlloc,        // backing-store allocation inside the default mapper /
                     // swap registry (distinct from the AllocTemp RPC itself)
  // Crash-class sites: instead of an error *return*, the component hosting the
  // site kills its MapperServer at the injected point (the server stops
  // serving and its port dies; in-flight callers see kPortDead).  The injected
  // Status is irrelevant for these — firing at all means "crash here".
  kCrashMapperBeforeWrite,  // before the journal record is appended: the write
                            // is lost entirely (never acknowledged)
  kCrashMapperMidWrite,     // mid-append: a torn record prefix reaches the
                            // journal; Recover() must detect and discard it
  kCrashMapperBeforeReply,  // after the operation applied durably but before
                            // the reply is sent: the ack is lost, the data not
  // Simulated-network sites (the DSM cluster's SimNet, DESIGN.md §12).
  kNetDeliver,    // one delivery attempt of one message: firing drops it (the
                  // sender retransmits under the same sequence number); planned
                  // latency delays every delivery, failing or not
  kNetPartition,  // evaluated per delivery: firing partitions that link until
                  // the harness heals it (SimNet::Heal/HealAll)
  // Site crash-class sites: firing kills the *whole site* (cached pages lost,
  // its node unreachable) at the injected protocol point.
  kCrashSiteMidRecall,  // owner dies on recall receipt, before syncing its
                        // dirty pages home: the uncommitted data is lost, the
                        // home's last committed bytes stay authoritative
  kCrashSiteBeforeAck,  // owner dies after its writeback committed at home but
                        // before the recall ack: the data survives, the ack is
                        // lost; the home must treat the dead owner as demoted
  // Memory-pressure sites (DESIGN.md §15).
  kLowMemory,     // PagedVm frame allocation under pressure: firing forces the
                  // faulting thread onto the slow reclaim path even when the
                  // fast allocator would have succeeded
  kPageoutStall,  // one paging-daemon batch push: firing skips the batch (the
                  // pages stay on the modified queue); planned latency models
                  // a slow backing store without failing the write
  kCrashMapperMidBatch,  // mid-append of a *multi-page* batch record: a torn
                         // batch prefix reaches the journal; Recover() must
                         // discard the whole batch (all-or-nothing commit)
  kSiteCount,
};

inline constexpr int kFaultSiteCount = static_cast<int>(FaultSite::kSiteCount);

// Short stable name ("read", "write", "alloctemp", "send", "recv", "frame",
// "swap", "crashwrite", "crashmidwrite", "crashreply", "netdeliver",
// "netpart", "crashsiterecall", "crashsiteack", "lowmem", "pageoutstall",
// "crashmidbatch") used by the spec grammar and in log/test output.
std::string_view FaultSiteName(FaultSite site);
bool ParseFaultSite(std::string_view name, FaultSite* out);

// A per-site fault plan.
struct FaultPlan {
  enum class Mode {
    kOff,          // site never fires
    kFailNth,      // fail deterministically starting at the nth hit (1-based)
    kProbability,  // fail each hit with probability num/den (seeded RNG)
  };

  Mode mode = Mode::kOff;
  uint64_t nth = 1;       // kFailNth: first hit to fail
  uint64_t num = 0;       // kProbability: numerator ...
  uint64_t den = 100;     // ... and denominator
  // Number of consecutive hits that fail once the plan triggers.  A transient
  // fault fails `burst` hits and then heals (so a bounded retry policy absorbs
  // it); a permanent fault never heals.
  uint64_t burst = 1;
  bool permanent = false;
  // Error surfaced by the failing site.  Sites with fixed semantics (frame
  // allocation, swap allocation) map any injected fault to their natural error.
  Status error = Status::kBusError;
  // Extra latency injected on every hit of this site (failing or not), to shake
  // out interleavings that only occur when I/O is slow.
  uint64_t latency_us = 0;
};

struct FaultSiteCounters {
  uint64_t hits = 0;      // times the site was evaluated
  uint64_t triggers = 0;  // times a fault was injected
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 1) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void SetPlan(FaultSite site, const FaultPlan& plan);
  void ClearPlan(FaultSite site);
  void ClearAllPlans();
  void Reseed(uint64_t seed);

  // Master switch: while disabled, Check() is a pass-through that neither counts
  // hits nor advances the RNG (tests use this to take authoritative readings of
  // the world mid-chaos without perturbing the injection stream).
  void set_enabled(bool enabled);
  bool enabled() const;

  // Evaluate one hit of `site`: returns kOk to let the real operation proceed,
  // or the planned error to inject a fault.  Applies planned latency either way.
  [[nodiscard]] Status Check(FaultSite site);

  FaultSiteCounters counters(FaultSite site) const;
  uint64_t total_triggers() const;
  void ResetCounters();

  // Apply a colon-separated plan spec (the replay format used by tools/):
  //   site:mode[:args][:burst=K][:seed=S][:perm][:error=name][:latency=USEC]
  // where site is a FaultSiteName and mode is
  //   nth:N       fail starting at the Nth hit
  //   prob:P      fail each hit with probability P percent
  //   prob:N/D    fail each hit with probability N/D
  // Examples: "write:nth:3", "read:prob:10:seed=42:burst=2", "swap:nth:1:perm".
  // Returns false (and fills *error_out if given) on a malformed spec.
  bool ApplySpec(std::string_view spec, std::string* error_out = nullptr);

  // Render the active plans as a space-separated list of specs (for banners).
  std::string Describe() const;

 private:
  struct SiteState {
    FaultPlan plan;
    FaultSiteCounters counters;
    uint64_t burst_left = 0;  // remaining consecutive failures of a triggered
                              // transient plan
    bool tripped = false;     // a permanent plan has triggered
  };

  // kFaultInjector ranks above every kernel lock: Check() is called from deep
  // inside the managers (frame allocation, mapper I/O) with their locks held.
  mutable Mutex mu_{Rank::kFaultInjector, "FaultInjector::mu_"};
  bool enabled_ GVM_GUARDED_BY(mu_) = true;
  Rng rng_ GVM_GUARDED_BY(mu_);
  SiteState sites_[kFaultSiteCount] GVM_GUARDED_BY(mu_);
};

}  // namespace gvm

#endif  // GVM_SRC_FAULT_FAULT_INJECTOR_H_
