#include "src/fault/fault_injector.h"

#include <chrono>
#include <thread>
#include <vector>

namespace gvm {

namespace {

struct SiteNameEntry {
  std::string_view name;
  FaultSite site;
};

constexpr SiteNameEntry kSiteNames[] = {
    {"read", FaultSite::kMapperRead},
    {"write", FaultSite::kMapperWrite},
    {"alloctemp", FaultSite::kMapperAllocTemp},
    {"send", FaultSite::kIpcSend},
    {"recv", FaultSite::kIpcReceive},
    {"frame", FaultSite::kFrameAlloc},
    {"swap", FaultSite::kSwapAlloc},
    {"crashwrite", FaultSite::kCrashMapperBeforeWrite},
    {"crashmidwrite", FaultSite::kCrashMapperMidWrite},
    {"crashreply", FaultSite::kCrashMapperBeforeReply},
    {"netdeliver", FaultSite::kNetDeliver},
    {"netpart", FaultSite::kNetPartition},
    {"crashsiterecall", FaultSite::kCrashSiteMidRecall},
    {"crashsiteack", FaultSite::kCrashSiteBeforeAck},
    {"lowmem", FaultSite::kLowMemory},
    {"pageoutstall", FaultSite::kPageoutStall},
    {"crashmidbatch", FaultSite::kCrashMapperMidBatch},
};

// Errors a spec may name; anything else is a spec error.
struct ErrorNameEntry {
  std::string_view name;
  Status status;
};

constexpr ErrorNameEntry kErrorNames[] = {
    {"buserror", Status::kBusError},
    {"nomemory", Status::kNoMemory},
    {"noswap", Status::kNoSwap},
    {"notfound", Status::kNotFound},
    {"portdead", Status::kPortDead},
    {"timeout", Status::kTimeout},
};

std::vector<std::string_view> SplitColons(std::string_view s) {
  std::vector<std::string_view> parts;
  while (true) {
    size_t colon = s.find(':');
    if (colon == std::string_view::npos) {
      parts.push_back(s);
      return parts;
    }
    parts.push_back(s.substr(0, colon));
    s.remove_prefix(colon + 1);
  }
}

bool ParseUint(std::string_view s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool SpecError(std::string* error_out, std::string message) {
  if (error_out != nullptr) {
    *error_out = std::move(message);
  }
  return false;
}

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  for (const SiteNameEntry& entry : kSiteNames) {
    if (entry.site == site) {
      return entry.name;
    }
  }
  return "?";
}

bool ParseFaultSite(std::string_view name, FaultSite* out) {
  for (const SiteNameEntry& entry : kSiteNames) {
    if (entry.name == name) {
      *out = entry.site;
      return true;
    }
  }
  return false;
}

void FaultInjector::SetPlan(FaultSite site, const FaultPlan& plan) {
  MutexLock lock(mu_);
  SiteState& state = sites_[static_cast<int>(site)];
  state.plan = plan;
  state.burst_left = 0;
  state.tripped = false;
}

void FaultInjector::ClearPlan(FaultSite site) { SetPlan(site, FaultPlan{}); }

void FaultInjector::ClearAllPlans() {
  MutexLock lock(mu_);
  for (SiteState& state : sites_) {
    state.plan = FaultPlan{};
    state.burst_left = 0;
    state.tripped = false;
  }
}

void FaultInjector::Reseed(uint64_t seed) {
  MutexLock lock(mu_);
  rng_ = Rng(seed);
}

void FaultInjector::set_enabled(bool enabled) {
  MutexLock lock(mu_);
  enabled_ = enabled;
}

bool FaultInjector::enabled() const {
  MutexLock lock(mu_);
  return enabled_;
}

Status FaultInjector::Check(FaultSite site) {
  uint64_t latency_us = 0;
  Status result = Status::kOk;
  {
    MutexLock lock(mu_);
    if (!enabled_) {
      return Status::kOk;
    }
    SiteState& state = sites_[static_cast<int>(site)];
    if (state.plan.mode == FaultPlan::Mode::kOff) {
      return Status::kOk;
    }
    ++state.counters.hits;
    latency_us = state.plan.latency_us;
    bool fail = false;
    if (state.tripped) {
      fail = true;  // permanent plans never heal
    } else if (state.burst_left > 0) {
      --state.burst_left;
      fail = true;
    } else {
      switch (state.plan.mode) {
        case FaultPlan::Mode::kOff:
          break;
        case FaultPlan::Mode::kFailNth:
          fail = state.counters.hits == state.plan.nth;
          break;
        case FaultPlan::Mode::kProbability:
          fail = state.plan.num > 0 && rng_.Chance(state.plan.num, state.plan.den);
          break;
      }
      if (fail) {
        if (state.plan.permanent) {
          state.tripped = true;
        } else if (state.plan.burst > 1) {
          state.burst_left = state.plan.burst - 1;
        }
      }
    }
    if (fail) {
      ++state.counters.triggers;
      result = state.plan.error;
    }
  }
  if (latency_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  }
  return result;
}

FaultSiteCounters FaultInjector::counters(FaultSite site) const {
  MutexLock lock(mu_);
  return sites_[static_cast<int>(site)].counters;
}

uint64_t FaultInjector::total_triggers() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const SiteState& state : sites_) {
    total += state.counters.triggers;
  }
  return total;
}

void FaultInjector::ResetCounters() {
  MutexLock lock(mu_);
  for (SiteState& state : sites_) {
    state.counters = FaultSiteCounters{};
  }
}

bool FaultInjector::ApplySpec(std::string_view spec, std::string* error_out) {
  std::vector<std::string_view> parts = SplitColons(spec);
  if (parts.size() < 2) {
    return SpecError(error_out, "spec needs at least site:mode");
  }
  FaultSite site;
  if (!ParseFaultSite(parts[0], &site)) {
    return SpecError(error_out, "unknown site '" + std::string(parts[0]) + "'");
  }
  FaultPlan plan;
  size_t next = 2;
  if (parts[1] == "nth") {
    plan.mode = FaultPlan::Mode::kFailNth;
    if (parts.size() < 3 || !ParseUint(parts[2], &plan.nth) || plan.nth == 0) {
      return SpecError(error_out, "nth needs a positive count: site:nth:N");
    }
    next = 3;
  } else if (parts[1] == "prob") {
    plan.mode = FaultPlan::Mode::kProbability;
    if (parts.size() < 3) {
      return SpecError(error_out, "prob needs a probability: site:prob:P");
    }
    std::string_view p = parts[2];
    size_t slash = p.find('/');
    if (slash == std::string_view::npos) {
      if (!ParseUint(p, &plan.num)) {
        return SpecError(error_out, "bad probability '" + std::string(p) + "'");
      }
      plan.den = 100;
    } else if (!ParseUint(p.substr(0, slash), &plan.num) ||
               !ParseUint(p.substr(slash + 1), &plan.den) || plan.den == 0) {
      return SpecError(error_out, "bad probability '" + std::string(p) + "'");
    }
    next = 3;
  } else {
    return SpecError(error_out, "unknown mode '" + std::string(parts[1]) + "'");
  }
  for (size_t i = next; i < parts.size(); ++i) {
    std::string_view part = parts[i];
    if (part == "perm") {
      plan.permanent = true;
      continue;
    }
    size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      return SpecError(error_out, "unknown option '" + std::string(part) + "'");
    }
    std::string_view key = part.substr(0, eq);
    std::string_view value = part.substr(eq + 1);
    if (key == "burst") {
      if (!ParseUint(value, &plan.burst) || plan.burst == 0) {
        return SpecError(error_out, "bad burst '" + std::string(value) + "'");
      }
    } else if (key == "seed") {
      uint64_t seed;
      if (!ParseUint(value, &seed)) {
        return SpecError(error_out, "bad seed '" + std::string(value) + "'");
      }
      Reseed(seed);
    } else if (key == "latency") {
      if (!ParseUint(value, &plan.latency_us)) {
        return SpecError(error_out, "bad latency '" + std::string(value) + "'");
      }
    } else if (key == "error") {
      bool found = false;
      for (const ErrorNameEntry& entry : kErrorNames) {
        if (entry.name == value) {
          plan.error = entry.status;
          found = true;
          break;
        }
      }
      if (!found) {
        return SpecError(error_out, "unknown error '" + std::string(value) + "'");
      }
    } else {
      return SpecError(error_out, "unknown option '" + std::string(key) + "'");
    }
  }
  SetPlan(site, plan);
  return true;
}

std::string FaultInjector::Describe() const {
  MutexLock lock(mu_);
  std::string out;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    const SiteState& state = sites_[i];
    if (state.plan.mode == FaultPlan::Mode::kOff) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += std::string(FaultSiteName(static_cast<FaultSite>(i)));
    if (state.plan.mode == FaultPlan::Mode::kFailNth) {
      out += ":nth:" + std::to_string(state.plan.nth);
    } else {
      out += ":prob:" + std::to_string(state.plan.num) + "/" + std::to_string(state.plan.den);
    }
    if (state.plan.burst > 1) {
      out += ":burst=" + std::to_string(state.plan.burst);
    }
    if (state.plan.permanent) {
      out += ":perm";
    }
  }
  return out;
}

}  // namespace gvm
