// ShadowVm implementation.  See shadow_vm.h for the design notes and the mapping
// to the paper's description of Mach's scheme.
#include "src/shadow/shadow_vm.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "src/util/align.h"
#include "src/util/log.h"

namespace gvm {

namespace {

// "Whole object" for backing links: objects shadow their original entirely.
constexpr uint64_t kWholeObject = 1ull << 62;

}  // namespace

// Adapter handed to segment drivers during pullIn/pushOut upcalls: routes the
// Table 4 data downcalls (fillUp / copyBack / moveBack) into one memory object.
// Valid only for the duration of the upcall.
class ObjectIo final : public Cache {
 public:
  ObjectIo(ShadowVm& vm, MemObject& object) : vm_(vm), object_(object) {}

  CacheId id() const override { return object_.id(); }
  const std::string& name() const override { return object_.name(); }
  SegmentDriver* driver() const override { return object_.driver_; }

  Status FillUp(SegOffset offset, const void* data, size_t size,
                Prot max_prot = Prot::kAll) override {
    (void)max_prot;  // ShadowVm keeps no per-page caps (see DESIGN.md)
    MutexLock lock(vm_.mu_);
    const size_t page = vm_.page_size();
    if (!IsAligned(offset, page)) {
      return Status::kInvalidArgument;
    }
    const auto* in = static_cast<const std::byte*>(data);
    for (size_t done = 0; done < size; done += page) {
      const SegOffset at = offset + done;
      const size_t chunk = std::min(page, size - done);
      auto it = object_.pages_.find(at);
      if (it == object_.pages_.end()) {
        Result<ShadowPage*> fresh = vm_.MakePage(object_, at, nullptr, /*dirty=*/false);
        if (!fresh.ok()) {
          return fresh.status();
        }
        it = object_.pages_.find(at);
      }
      std::byte* frame = vm_.memory().FrameData(it->second.frame);
      std::memcpy(frame, in + done, chunk);
      if (chunk < page) {
        std::memset(frame + chunk, 0, page - chunk);
      }
      it->second.dirty = false;
    }
    return Status::kOk;
  }

  Status FillZero(SegOffset offset, size_t size) override {
    std::vector<std::byte> zeros(size);
    return FillUp(offset, zeros.data(), size, Prot::kAll);
  }

  Status CopyBack(SegOffset offset, void* buffer, size_t size) override {
    return CopyBackImpl(offset, buffer, size, /*remove=*/false);
  }
  Status MoveBack(SegOffset offset, void* buffer, size_t size) override {
    return CopyBackImpl(offset, buffer, size, /*remove=*/true);
  }

  // The rest of the Cache interface is not meaningful on the adapter.
  Status CopyTo(Cache&, SegOffset, SegOffset, size_t, CopyPolicy) override {
    return Status::kUnsupported;
  }
  Status MoveTo(Cache&, SegOffset, SegOffset, size_t) override { return Status::kUnsupported; }
  Status Read(SegOffset, void*, size_t) override { return Status::kUnsupported; }
  Status Write(SegOffset, const void*, size_t) override { return Status::kUnsupported; }
  Status Destroy() override { return Status::kUnsupported; }
  Status Flush() override { return Status::kUnsupported; }
  Status Sync() override { return Status::kUnsupported; }
  Status Invalidate(SegOffset, size_t) override { return Status::kUnsupported; }
  Status SetProtection(SegOffset, size_t, Prot) override { return Status::kUnsupported; }
  Status LockInMemory(SegOffset, size_t) override { return Status::kUnsupported; }
  Status Unlock(SegOffset, size_t) override { return Status::kUnsupported; }
  size_t ResidentPages() const override { return object_.pages_.size(); }
  size_t MappingCount() const override { return 0; }

 private:
  Status CopyBackImpl(SegOffset offset, void* buffer, size_t size, bool remove) {
    MutexLock lock(vm_.mu_);
    const size_t page = vm_.page_size();
    auto* out = static_cast<std::byte*>(buffer);
    for (size_t done = 0; done < size; done += page) {
      const SegOffset at = offset + done;
      const size_t chunk = std::min(page, size - done);
      auto it = object_.pages_.find(at);
      if (it != object_.pages_.end()) {
        std::memcpy(out + done, vm_.memory().FrameData(it->second.frame), chunk);
        if (remove) {
          vm_.DropPage(object_, it->second);
        }
      } else {
        std::memset(out + done, 0, chunk);
      }
    }
    return Status::kOk;
  }

  ShadowVm& vm_;
  MemObject& object_;
};

ShadowVm::ShadowVm(PhysicalMemory& memory, Mmu& mmu, Options options)
    : BaseMm(memory, mmu), options_(options) {}

ShadowVm::~ShadowVm() {
  for (auto& [id, object] : objects_) {
    for (auto& [offset, page] : object->pages_) {
      memory().FreeFrame(page.frame);
    }
    object->pages_.clear();
  }
}

MemObject* ShadowVm::NewObject(std::string name) {
  uint64_t id = next_object_id_++;
  auto object = std::make_unique<MemObject>(id, std::move(name));
  MemObject* raw = object.get();
  objects_.emplace(id, std::move(object));
  ++mutable_stats().shadow_objects;
  return raw;
}

Result<Cache*> ShadowVm::CacheCreate(SegmentDriver* driver, std::string name) {
  MutexLock lock(mu_);
  CacheId id = next_cache_id_++;
  auto cache = std::make_unique<ShadowCache>(*this, id, name, driver);
  cache->top_ = NewObject(name + ".obj");
  cache->top_->driver_ = driver;
  cache->top_->temporary_ = driver == nullptr;
  Cache* raw = cache.get();
  caches_.emplace(id, std::move(cache));
  return raw;
}

size_t ShadowVm::CacheCount() const {
  MutexLock lock(mu_);
  return caches_.size();
}

size_t ShadowVm::ObjectCount() const {
  MutexLock lock(mu_);
  return objects_.size();
}

// ---------------------------------------------------------------------------
// Chain machinery
// ---------------------------------------------------------------------------

ShadowVm::ChainHit ShadowVm::ChainLookup(MemObject& start, SegOffset offset) {
  MemObject* cur = &start;
  SegOffset off = offset;
  size_t depth = 0;
  for (; depth < 4096; ++depth) {
    auto it = cur->pages_.find(off);
    if (it != cur->pages_.end()) {
      return ChainHit{cur, &it->second, off, depth};
    }
    const auto* link = cur->backing_.Find(off);
    if (link == nullptr) {
      return ChainHit{cur, nullptr, off, depth};
    }
    off = link->value.base + (off - link->start);
    cur = link->value.object;
  }
  GVM_LOG(Error) << "shadow chain walk exceeded depth bound";
  return ChainHit{&start, nullptr, offset, depth};
}

Result<ShadowPage*> ShadowVm::MakePage(MemObject& object, SegOffset offset,
                                       const std::byte* bytes, bool dirty) {
  Result<FrameIndex> frame = memory().AllocateFrame();
  if (!frame.ok()) {
    return frame.status();
  }
  if (bytes != nullptr) {
    std::memcpy(memory().FrameData(*frame), bytes, page_size());
  } else {
    memory().ZeroFrame(*frame);
  }
  auto [it, inserted] =
      object.pages_.emplace(offset, ShadowPage{.offset = offset, .frame = *frame,
                                               .dirty = dirty, .mappings = {}});
  assert(inserted);
  (void)inserted;
  return &it->second;
}

void ShadowVm::DropPage(MemObject& object, ShadowPage& page) {
  for (const ShadowPage::Mapping& ref : page.mappings) {
    (void)mmu().Unmap(ref.as, ref.va);
    auto rm = region_maps_.find(ref.region);
    if (rm != region_maps_.end()) {
      rm->second.erase(ref.va);
      if (rm->second.empty()) {
        region_maps_.erase(rm);
      }
    }
  }
  memory().FreeFrame(page.frame);
  object.pages_.erase(page.offset);
}

Result<const std::byte*> ShadowVm::ResolveBytes(MutexLock& lock,
                                                MemObject& start, SegOffset offset,
                                                ShadowPage** owner_page, MemObject** owner) {
  for (int rounds = 0; rounds < 64; ++rounds) {
    ChainHit hit = ChainLookup(start, offset);
    if (hit.page != nullptr) {
      *owner_page = hit.page;
      *owner = hit.object;
      return static_cast<const std::byte*>(memory().FrameData(hit.page->frame));
    }
    if (hit.object->driver_ != nullptr) {
      // Pull from the pager backing the chain root, through the object adapter.
      SegmentDriver* driver = hit.object->driver_;
      ObjectIo io(*this, *hit.object);
      ++mutable_stats().pull_ins;
      lock.unlock();
      Status pulled = driver->PullIn(io, hit.offset, page_size(), Access::kRead);
      lock.lock();
      if (pulled != Status::kOk) {
        return Status::kBusError;
      }
      continue;  // re-walk; the fill installed the page
    }
    // Absent everywhere and the root is anonymous: the value is zero.
    *owner_page = nullptr;
    *owner = hit.object;
    return static_cast<const std::byte*>(nullptr);
  }
  return Status::kBusError;
}

// ---------------------------------------------------------------------------
// Fault handling
// ---------------------------------------------------------------------------

Status ShadowVm::ResolveFault(RegionImpl& region, const PageFault& fault,
                              SegOffset page_offset, MutexLock& lock) {
  auto& cache = static_cast<ShadowCache&>(region.cache());
  const Vaddr page_va = AlignDown(fault.address, page_size());
  const AsId as = region.context().address_space();
  Status result = Status::kOk;

  for (int rounds = 0; rounds < 64; ++rounds) {
    MemObject* top = cache.top_;
    ShadowPage* page = nullptr;
    MemObject* owner = nullptr;
    Result<const std::byte*> bytes = ResolveBytes(lock, *top, page_offset, &page, &owner);
    if (!bytes.ok()) {
      result = bytes.status();
      break;
    }
    const bool is_write = fault.access == Access::kWrite;
    if (page == nullptr) {
      // Zero value.  Reads of anonymous memory and all writes materialize a
      // zero page in the top object (Mach's zero-fill goes to the mapped object).
      Result<ShadowPage*> fresh = MakePage(*top, page_offset, nullptr, /*dirty=*/is_write);
      if (!fresh.ok()) {
        result = fresh.status();
        break;
      }
      mutable_stats().zero_fills += 1;
      page = *fresh;
      owner = top;
    } else if (is_write && owner != top) {
      // Copy the page up into the top object — Mach's shadow write fault.
      Result<ShadowPage*> fresh = MakePage(*top, page_offset, *bytes, /*dirty=*/true);
      if (!fresh.ok()) {
        result = fresh.status();
        break;
      }
      ++mutable_stats().cow_copies;
      page = *fresh;
      owner = top;
    }
    // Install the mapping: writable only for pages of the top object.
    Prot prot = region.prot();
    if (owner != top) {
      prot = prot & ~Prot::kWrite;
    }
    if (is_write) {
      page->dirty = true;
    }
    // Replace whatever was mapped at this va before (e.g. the below-page after a
    // copy-up).
    auto& rmap = region_maps_[&region];
    auto prev = rmap.find(page_va);
    if (prev != rmap.end()) {
      auto obj_it = objects_.find(prev->second.first->id());
      if (obj_it != objects_.end()) {
        auto page_it = obj_it->second->pages_.find(prev->second.second);
        if (page_it != obj_it->second->pages_.end()) {
          auto& maps = page_it->second.mappings;
          for (size_t i = 0; i < maps.size(); ++i) {
            if (maps[i].region == &region && maps[i].va == page_va) {
              maps[i] = maps.back();
              maps.pop_back();
              break;
            }
          }
        }
      }
      rmap.erase(prev);
    }
    (void)mmu().Map(as, page_va, page->frame, prot);
    page->mappings.push_back(ShadowPage::Mapping{as, page_va, &region});
    rmap[page_va] = {owner, page->offset};
    result = Status::kOk;
    break;
  }

  return result;  // `lock` is owned by BaseMm::HandleFault
}

// ---------------------------------------------------------------------------
// Copy (the shadow-object scheme)
// ---------------------------------------------------------------------------

void ShadowVm::ProtectObjectRange(MemObject& object, SegOffset offset, size_t size) {
  for (auto it = object.pages_.lower_bound(offset);
       it != object.pages_.end() && it->first < offset + size; ++it) {
    for (const ShadowPage::Mapping& ref : it->second.mappings) {
      (void)mmu().Protect(ref.as, ref.va, ref.region->prot() & ~Prot::kWrite);
    }
    ++mutable_stats().deferred_copy_pages;
  }
}

Status ShadowVm::CopyRange(MutexLock& lock, ShadowCache& src,
                           SegOffset src_off, ShadowCache& dst, SegOffset dst_off, size_t size,
                           CopyPolicy policy) {
  const size_t page = page_size();
  const bool aligned =
      IsAligned(src_off, page) && IsAligned(dst_off, page) && IsAligned(size, page);
  if (policy == CopyPolicy::kEager || !aligned || &src == &dst) {
    // Physical copy through a bounce buffer.
    std::vector<std::byte> bounce(page);
    size_t done = 0;
    while (done < size) {
      size_t chunk = std::min({page - ((src_off + done) % page),
                               page - ((dst_off + done) % page), size - done});
      GVM_RETURN_IF_ERROR(
          CacheAccess(lock, src, src_off + done, bounce.data(), chunk, /*write=*/false));
      GVM_RETURN_IF_ERROR(
          CacheAccess(lock, dst, dst_off + done, bounce.data(), chunk, /*write=*/true));
      done += chunk;
      ++mutable_stats().eager_copy_pages;
    }
    return Status::kOk;
  }

  // Mach's scheme: protect the source range, then create TWO shadow objects — one
  // becomes the source's new top (keeping its future modifications), one the
  // destination's (keeping the copy's).  The original pages stay where they are.
  MemObject* original = src.top_;
  MemObject* src_shadow = NewObject("s" + std::to_string(next_object_id_));
  src_shadow->backing_.Insert(0, kWholeObject, ShadowLink{original, 0});
  MemObject* dst_shadow = NewObject("s" + std::to_string(next_object_id_));
  MemObject* dst_old_top = dst.top_;
  dst_shadow->backing_.Insert(0, kWholeObject, ShadowLink{dst_old_top, 0});
  dst_shadow->backing_.Insert(dst_off, size, ShadowLink{original, src_off});

  // The destination's own pages in the range are now logically overwritten:
  // revoke its mappings of them (the pages stay, unreachable from dst).
  for (auto it = dst_old_top->pages_.lower_bound(dst_off);
       it != dst_old_top->pages_.end() && it->first < dst_off + size; ++it) {
    for (size_t i = it->second.mappings.size(); i > 0; --i) {
      const ShadowPage::Mapping& ref = it->second.mappings[i - 1];
      if (&ref.region->cache() == &dst) {
        (void)mmu().Unmap(ref.as, ref.va);
        auto rm = region_maps_.find(ref.region);
        if (rm != region_maps_.end()) {
          rm->second.erase(ref.va);
        }
        it->second.mappings[i - 1] = it->second.mappings.back();
        it->second.mappings.pop_back();
      }
    }
  }

  src.top_ = src_shadow;
  dst.top_ = dst_shadow;
  ProtectObjectRange(*original, src_off, size);
  ++mutable_stats().history_objects;  // comparable "deferred copy set up" event
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// GC: reaping and chain collapse
// ---------------------------------------------------------------------------

bool ShadowVm::ObjectReferenced(const MemObject& object) const {
  for (const auto& [id, cache] : caches_) {
    if (cache->top_ == &object) {
      return true;
    }
  }
  for (const auto& [id, other] : objects_) {
    if (other.get() == &object) {
      continue;
    }
    bool points = false;
    other->backing_.ForEach([&](const FragmentMap<ShadowLink>::Fragment& frag) {
      if (frag.value.object == &object) {
        points = true;
      }
    });
    if (points) {
      return true;
    }
  }
  return false;
}

void ShadowVm::ReapUnreferenced(MemObject* object) {
  if (object == nullptr || ObjectReferenced(*object)) {
    return;
  }
  // Free this object and re-examine the chain below it.  Track the chain by id,
  // not pointer: `below` may name the same object twice (two fragments backed by
  // one source), and the first recursive reap frees it.
  std::vector<uint64_t> below;
  object->backing_.ForEach([&](const FragmentMap<ShadowLink>::Fragment& frag) {
    below.push_back(frag.value.object->id());
  });
  while (!object->pages_.empty()) {
    DropPage(*object, object->pages_.begin()->second);
  }
  objects_.erase(object->id());
  for (uint64_t next : below) {
    auto it = objects_.find(next);
    if (it != objects_.end()) {
      ReapUnreferenced(it->second.get());
    }
  }
}

void ShadowVm::CollapseChains() {
  // "To prevent the creation of long chains of shadow objects ... the shadow must
  // be merged with the source after the child exits.  This garbage collection is a
  // major complication of the Mach algorithm."
  bool changed = true;
  int safety = 0;
  while (changed && ++safety < 1024) {
    changed = false;
    for (auto& [below_id, below] : objects_) {
      if (below->driver_ != nullptr) {
        continue;  // never collapse pager-backed roots
      }
      // Exactly one referencing object, and no cache top?
      MemObject* above = nullptr;
      bool top_ref = false;
      int ref_count = 0;
      for (const auto& [cid, cache] : caches_) {
        if (cache->top_ == below.get()) {
          top_ref = true;
        }
      }
      if (top_ref) {
        continue;
      }
      for (auto& [oid, other] : objects_) {
        if (other.get() == below.get()) {
          continue;
        }
        bool points = false;
        other->backing_.ForEach([&](const FragmentMap<ShadowLink>::Fragment& frag) {
          if (frag.value.object == below.get()) {
            points = true;
          }
        });
        if (points) {
          ++ref_count;
          above = other.get();
        }
      }
      if (ref_count != 1 || above == nullptr) {
        continue;
      }
      // Merge `below` into `above`: move pages above lacks, then re-route
      // above's backing fragments through below's own backing.
      std::vector<FragmentMap<ShadowLink>::Fragment> windows;
      above->backing_.ForEach([&](const FragmentMap<ShadowLink>::Fragment& frag) {
        if (frag.value.object == below.get()) {
          windows.push_back(frag);
        }
      });
      std::vector<ShadowPage*> moving;
      for (auto& [off, page] : below->pages_) {
        moving.push_back(&page);
      }
      for (ShadowPage* page : moving) {
        const FragmentMap<ShadowLink>::Fragment* window = nullptr;
        for (const auto& w : windows) {
          if (page->offset >= w.value.base && page->offset < w.value.base + w.size) {
            window = &w;
            break;
          }
        }
        if (window == nullptr) {
          DropPage(*below, *page);  // unreachable
          continue;
        }
        SegOffset above_off = window->start + (page->offset - window->value.base);
        if (above->pages_.contains(above_off)) {
          DropPage(*below, *page);  // above already diverged
          continue;
        }
        // Move the page up (frames move; mappings keep pointing at the frame and
        // remain valid because the page's identity in the chain is unchanged).
        ShadowPage moved = *page;
        moved.offset = above_off;
        below->pages_.erase(page->offset);
        // Fix the region maps that referenced (below, old offset).
        for (auto& ref : moved.mappings) {
          auto rm = region_maps_.find(ref.region);
          if (rm != region_maps_.end()) {
            auto entry = rm->second.find(ref.va);
            if (entry != rm->second.end()) {
              entry->second = {above, above_off};
            }
          }
        }
        above->pages_.emplace(above_off, std::move(moved));
      }
      // Re-route above's windows through below's backing.
      for (const auto& w : windows) {
        above->backing_.Erase(w.start, w.size);
        for (const auto& deeper : below->backing_.Overlapping(w.value.base, w.size)) {
          SegOffset above_start = w.start + (deeper.start - w.value.base);
          above->backing_.Insert(above_start, deeper.size,
                                 ShadowLink{deeper.value.object, deeper.value.base});
        }
      }
      while (!below->pages_.empty()) {
        DropPage(*below, below->pages_.begin()->second);
      }
      objects_.erase(below_id);
      ++mutable_stats().shadow_collapses;
      changed = true;
      break;  // iterator invalidated; rescan
    }
  }
}

// ---------------------------------------------------------------------------
// Region hooks
// ---------------------------------------------------------------------------

void ShadowVm::OnRegionMapped(RegionImpl& region, MutexLock& lock) {
  (void)lock;
  static_cast<ShadowCache&>(region.cache()).mapping_count_++;
}

void ShadowVm::OnRegionUnmapping(RegionImpl& region) {
  auto it = region_maps_.find(&region);
  if (it != region_maps_.end()) {
    for (auto& [va, where] : it->second) {
      auto obj_it = objects_.find(where.first->id());
      if (obj_it == objects_.end()) {
        continue;
      }
      auto page_it = obj_it->second->pages_.find(where.second);
      if (page_it == obj_it->second->pages_.end()) {
        continue;
      }
      auto& maps = page_it->second.mappings;
      for (size_t i = 0; i < maps.size(); ++i) {
        if (maps[i].region == &region && maps[i].va == va) {
          maps[i] = maps.back();
          maps.pop_back();
          break;
        }
      }
    }
    // Bookkeeping done above; the MMU pays one batched UnmapRange per
    // contiguous resident run (walking the sorted rmap keeps this O(resident),
    // never O(VA span), which matters for sparse regions).
    const size_t page_bytes = page_size();
    const AsId as = region.context().address_space();
    Vaddr run_start = 0;
    Vaddr run_end = 0;  // one past the last page of the open run
    for (auto& [va, where] : it->second) {
      (void)where;
      if (run_end != 0 && va == run_end) {
        run_end += page_bytes;
        continue;
      }
      if (run_end != 0) {
        (void)mmu().UnmapRange(as, run_start, (run_end - run_start) / page_bytes);
      }
      run_start = va;
      run_end = va + page_bytes;
    }
    if (run_end != 0) {
      (void)mmu().UnmapRange(as, run_start, (run_end - run_start) / page_bytes);
    }
    region_maps_.erase(it);
  }
  static_cast<ShadowCache&>(region.cache()).mapping_count_--;
}

void ShadowVm::OnRegionSplit(RegionImpl& first, RegionImpl& second) {
  static_cast<ShadowCache&>(second.cache()).mapping_count_++;
  auto it = region_maps_.find(&first);
  if (it == region_maps_.end()) {
    return;
  }
  auto lo = it->second.lower_bound(second.start());
  auto& second_map = region_maps_[&second];
  for (auto move_it = lo; move_it != it->second.end(); ++move_it) {
    second_map.emplace(move_it->first, move_it->second);
    auto obj_it = objects_.find(move_it->second.first->id());
    if (obj_it != objects_.end()) {
      auto page_it = obj_it->second->pages_.find(move_it->second.second);
      if (page_it != obj_it->second->pages_.end()) {
        for (auto& ref : page_it->second.mappings) {
          if (ref.region == &first && ref.va == move_it->first) {
            ref.region = &second;
          }
        }
      }
    }
  }
  it->second.erase(lo, it->second.end());
}

void ShadowVm::OnRegionProtection(RegionImpl& region) {
  auto it = region_maps_.find(&region);
  if (it == region_maps_.end()) {
    return;
  }
  auto& cache = static_cast<ShadowCache&>(region.cache());
  for (auto& [va, where] : it->second) {
    Prot prot = region.prot();
    if (where.first != cache.top_) {
      prot = prot & ~Prot::kWrite;
    }
    (void)mmu().Protect(region.context().address_space(), va, prot);
  }
}

Status ShadowVm::OnRegionLock(RegionImpl& region, MutexLock& lock) {
  // Prefault the range; ShadowVm has no pager, so residency is permanent.
  const size_t page = page_size();
  const bool writable = ProtAllows(region.prot(), Prot::kWrite);
  for (Vaddr va = region.start(); va < region.end(); va += page) {
    PageFault fault{.address_space = region.context().address_space(),
                    .address = va,
                    .access = writable ? Access::kWrite : Access::kRead,
                    .protection_violation = false};
    Status s = ResolveFault(region, fault, region.OffsetOf(va), lock);
    if (s != Status::kOk) {
      return s;
    }
  }
  (void)lock;
  return Status::kOk;
}

Status ShadowVm::OnRegionUnlock(RegionImpl& region) {
  (void)region;
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// Explicit access
// ---------------------------------------------------------------------------

Status ShadowVm::CacheAccess(MutexLock& lock, ShadowCache& cache,
                             SegOffset offset, void* buffer, size_t size, bool write) {
  const size_t page = page_size();
  auto* bytes = static_cast<std::byte*>(buffer);
  size_t done = 0;
  while (done < size) {
    const SegOffset at = offset + done;
    const SegOffset page_off = AlignDown(at, page);
    size_t chunk = std::min(page - (at - page_off), size - done);
    MemObject* top = cache.top_;
    ShadowPage* owner_page = nullptr;
    MemObject* owner = nullptr;
    Result<const std::byte*> value = ResolveBytes(lock, *top, page_off, &owner_page, &owner);
    if (!value.ok()) {
      return value.status();
    }
    if (write) {
      ShadowPage* target = owner_page;
      if (target == nullptr || owner != top) {
        Result<ShadowPage*> fresh =
            MakePage(*top, page_off, owner_page != nullptr ? *value : nullptr, true);
        if (!fresh.ok()) {
          return fresh.status();
        }
        if (owner_page != nullptr) {
          ++mutable_stats().cow_copies;
        } else {
          ++mutable_stats().zero_fills;
        }
        target = *fresh;
      }
      std::memcpy(memory().FrameData(target->frame) + (at - page_off), bytes + done, chunk);
      target->dirty = true;
    } else {
      if (owner_page != nullptr) {
        std::memcpy(bytes + done, *value + (at - page_off), chunk);
      } else {
        std::memset(bytes + done, 0, chunk);
      }
    }
    done += chunk;
  }
  return Status::kOk;
}

// ---------------------------------------------------------------------------
// ShadowCache
// ---------------------------------------------------------------------------

ShadowCache::ShadowCache(ShadowVm& vm, CacheId id, std::string name, SegmentDriver* driver)
    : vm_(vm), id_(id), name_(std::move(name)) {
  (void)driver;  // recorded on the root object
}

ShadowCache::~ShadowCache() = default;

SegmentDriver* ShadowCache::driver() const {
  MutexLock lock(vm_.mu_);
  // The pager lives at the chain root.
  MemObject* cur = top_;
  for (int i = 0; i < 4096 && cur != nullptr; ++i) {
    if (cur->driver_ != nullptr) {
      return cur->driver_;
    }
    const auto* link = cur->backing_.Find(0);
    cur = link == nullptr ? nullptr : link->value.object;
  }
  return nullptr;
}

Status ShadowCache::CopyTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset, size_t size,
                           CopyPolicy policy) {
  auto& dst_cache = static_cast<ShadowCache&>(dst);
  MutexLock lock(vm_.mu_);
  return vm_.CopyRange(lock, *this, src_offset, dst_cache, dst_offset, size, policy);
}

Status ShadowCache::MoveTo(Cache& dst, SegOffset src_offset, SegOffset dst_offset,
                           size_t size) {
  // Mach has no cross-object page move; the baseline copies physically, then the
  // source contents become undefined (dropped from the top).
  GVM_RETURN_IF_ERROR(CopyTo(dst, src_offset, dst_offset, size, CopyPolicy::kEager));
  return Invalidate(src_offset, size);
}

Status ShadowCache::Read(SegOffset offset, void* buffer, size_t size) {
  MutexLock lock(vm_.mu_);
  return vm_.CacheAccess(lock, *this, offset, buffer, size, /*write=*/false);
}

Status ShadowCache::Write(SegOffset offset, const void* buffer, size_t size) {
  MutexLock lock(vm_.mu_);
  return vm_.CacheAccess(lock, *this, offset, const_cast<void*>(buffer), size, /*write=*/true);
}

Status ShadowCache::Destroy() {
  MutexLock lock(vm_.mu_);
  if (mapping_count_ > 0) {
    return Status::kBusy;
  }
  MemObject* top = top_;
  ShadowVm& vm = vm_;
  vm.caches_.erase(id_);  // destroys *this
  vm.ReapUnreferenced(top);
  if (vm.options_.collapse_shadows) {
    vm.CollapseChains();
  }
  return Status::kOk;
}

Status ShadowCache::FillUp(SegOffset offset, const void* data, size_t size, Prot max_prot) {
  (void)max_prot;
  // Fills land in the deepest pager-backed object (the segment's home), or the
  // top for purely anonymous chains.
  MemObject* target = top_;
  {
    MutexLock lock(vm_.mu_);
    MemObject* cur = top_;
    SegOffset off = offset;
    for (int i = 0; i < 4096; ++i) {
      if (cur->driver_ != nullptr) {
        target = cur;
        offset = off;
        break;
      }
      const auto* link = cur->backing_.Find(off);
      if (link == nullptr) {
        break;
      }
      off = link->value.base + (off - link->start);
      cur = link->value.object;
    }
  }
  ObjectIo io(vm_, *target);
  return io.FillUp(offset, data, size, max_prot);
}

Status ShadowCache::FillZero(SegOffset offset, size_t size) {
  std::vector<std::byte> zeros(size);
  return FillUp(offset, zeros.data(), size, Prot::kAll);
}

Status ShadowCache::CopyBack(SegOffset offset, void* buffer, size_t size) {
  return Read(offset, buffer, size);
}

Status ShadowCache::MoveBack(SegOffset offset, void* buffer, size_t size) {
  GVM_RETURN_IF_ERROR(Read(offset, buffer, size));
  return Invalidate(offset, size);
}

Status ShadowCache::Sync() {
  // Push current values of dirty pages reachable from the top.
  MutexLock lock(vm_.mu_);
  SegmentDriver* drv = nullptr;
  MemObject* root = top_;
  for (int i = 0; i < 4096; ++i) {
    if (root->driver_ != nullptr) {
      drv = root->driver_;
      break;
    }
    const auto* link = root->backing_.Find(0);
    if (link == nullptr) {
      break;
    }
    root = link->value.object;
  }
  if (drv == nullptr) {
    return Status::kOk;  // anonymous: nothing to save to
  }
  std::vector<SegOffset> dirty;
  for (auto& [off, page] : top_->pages_) {
    if (page.dirty) {
      dirty.push_back(off);
    }
  }
  MemObject* top = top_;
  for (SegOffset off : dirty) {
    ObjectIo io(vm_, *top);
    ++vm_.mutable_stats().push_outs;
    lock.unlock();
    Status s = drv->PushOut(io, off, vm_.page_size());
    lock.lock();
    if (s != Status::kOk) {
      return s;
    }
    auto it = top->pages_.find(off);
    if (it != top->pages_.end()) {
      it->second.dirty = false;
    }
  }
  return Status::kOk;
}

Status ShadowCache::Flush() {
  GVM_RETURN_IF_ERROR(Sync());
  return Invalidate(0, kWholeObject);
}

Status ShadowCache::Invalidate(SegOffset offset, size_t size) {
  MutexLock lock(vm_.mu_);
  // Drop the top object's pages in the range (private modifications).
  std::vector<SegOffset> doomed;
  for (auto it = top_->pages_.lower_bound(offset);
       it != top_->pages_.end() && it->first < offset + size; ++it) {
    doomed.push_back(it->first);
  }
  for (SegOffset off : doomed) {
    auto it = top_->pages_.find(off);
    if (it != top_->pages_.end()) {
      vm_.DropPage(*top_, it->second);
    }
  }
  return Status::kOk;
}

Status ShadowCache::SetProtection(SegOffset offset, size_t size, Prot max_prot) {
  (void)offset;
  (void)size;
  (void)max_prot;
  return Status::kUnsupported;  // the baseline has no per-page caps
}

Status ShadowCache::LockInMemory(SegOffset offset, size_t size) {
  (void)offset;
  (void)size;
  return Status::kOk;  // no pager: memory is always resident
}

Status ShadowCache::Unlock(SegOffset offset, size_t size) {
  (void)offset;
  (void)size;
  return Status::kOk;
}

size_t ShadowCache::ResidentPages() const {
  MutexLock lock(vm_.mu_);
  return top_->pages_.size();
}

size_t ShadowCache::MappingCount() const {
  MutexLock lock(vm_.mu_);
  return mapping_count_;
}

size_t ShadowCache::ChainDepth() const {
  MutexLock lock(vm_.mu_);
  size_t depth = 0;
  MemObject* cur = top_;
  for (int i = 0; i < 4096; ++i) {
    const auto* link = cur->backing_.Find(0);
    if (link == nullptr) {
      break;
    }
    cur = link->value.object;
    ++depth;
  }
  return depth;
}

}  // namespace gvm
